/**
 * @file
 * Quickstart: the smallest end-to-end use of the library.
 *
 * Builds a one-core system twice — once as the Intel x86 baseline,
 * once as StrandWeaver — runs the paper's Figure 1 undo-logging
 * pattern on both, and prints the persist timeline and speedup.
 *
 *   log A; flush; ORDER; store A; flush;   (pair 1)
 *   log B; flush; ORDER; store B; flush;   (pair 2)
 *
 * Under Intel's model the ORDER is an SFENCE and the pairs
 * serialize; under strand persistency each pair lives on its own
 * strand and the pairs drain concurrently.
 */

#include <cstdio>

#include "core/strandweaver.hh"

using namespace strand;

namespace
{

constexpr Addr logA = pmBase + 0x100000;
constexpr Addr logB = pmBase + 0x100040;
constexpr Addr dataA = pmBase + 0x200000;
constexpr Addr dataB = pmBase + 0x200040;

OpStream
undoLoggedPairs(HwDesign design)
{
    OpStream s;
    auto pair = [&](Addr log, Addr data, std::uint64_t value) {
        s.push_back(Op::store(log, value)); // undo-log entry
        s.push_back(Op::clwb(log));
        if (design == HwDesign::IntelX86)
            s.push_back(Op::sfence());
        else
            s.push_back(Op::persistBarrier());
        s.push_back(Op::store(data, value)); // in-place update
        s.push_back(Op::clwb(data));
        if (design != HwDesign::IntelX86)
            s.push_back(Op::newStrand());
    };
    pair(logA, dataA, 1);
    pair(logB, dataB, 2);
    if (design != HwDesign::IntelX86)
        s.push_back(Op::joinStrand());
    else
        s.push_back(Op::sfence());
    return s;
}

Tick
runOnce(HwDesign design)
{
    SystemConfig cfg;
    cfg.numCores = 1;
    cfg.design = design;
    System sys(cfg);
    sys.loadStreams({undoLoggedPairs(design)});
    Tick end = sys.run();

    std::printf("  [%s]\n", hwDesignName(design));
    for (const PersistRecord &p : sys.persistTrace()) {
        const char *what = p.lineAddr == lineAlign(logA)    ? "log A "
                           : p.lineAddr == lineAlign(logB)  ? "log B "
                           : p.lineAddr == lineAlign(dataA) ? "data A"
                                                            : "data B";
        std::printf("    %6llu ns  %s persists\n",
                    static_cast<unsigned long long>(p.when / 1000),
                    what);
    }
    std::printf("    finished at %llu ns\n\n",
                static_cast<unsigned long long>(end / 1000));
    return end;
}

} // namespace

int
main()
{
    std::printf("StrandWeaver quickstart: two undo-logged updates "
                "(Figure 1 of the paper)\n\n");
    Tick intel = runOnce(HwDesign::IntelX86);
    Tick sw = runOnce(HwDesign::StrandWeaver);
    std::printf("StrandWeaver finishes %.2fx faster: each log/update "
                "pair persists on its own strand,\nwhile SFENCE "
                "serializes the pairs and stalls the pipeline.\n",
                static_cast<double>(intel) / static_cast<double>(sw));
    return 0;
}
