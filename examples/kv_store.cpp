/**
 * @file
 * Running a full Table II workload: the N-Store key-value store
 * under a write-heavy YCSB mix, on every hardware design. Prints
 * throughput, CKC, persist-stall shares, and validates the persisted
 * store's structural invariants after each run.
 */

#include <cstdio>

#include "core/strandweaver.hh"

using namespace strand;

int
main()
{
    WorkloadParams params;
    params.numThreads = benchThreads(4);
    params.opsPerThread = benchOpsPerThread(80);
    params.seed = 7;

    std::printf("N-Store (10%% read / 90%% write), %u threads, %u "
                "ops/thread\n\n",
                params.numThreads, params.opsPerThread);
    RecordedWorkload recorded =
        recordWorkload(WorkloadKind::NStoreWrHeavy, params);

    std::printf("%-18s %12s %10s %10s %14s\n", "design", "time (us)",
                "ops/ms", "CKC", "persist stalls");
    for (HwDesign design : allDesigns) {
        RunMetrics metrics =
            runExperiment(recorded, design, PersistencyModel::Sfr);
        double micros = static_cast<double>(metrics.runTicks) / 1e6;
        double totalOps = static_cast<double>(params.numThreads) *
                          params.opsPerThread;
        std::printf("%-18s %12.1f %10.1f %10.2f %13.0fk\n",
                    hwDesignName(design), micros,
                    totalOps / (micros / 1000.0), metrics.ckc,
                    metrics.persistStalls / 1000.0);
    }

    std::printf("\nThe run validates the persisted KV store after "
                "every design's run\n(chains terminate, keys hash to "
                "their buckets, tuple payloads are untorn);\na "
                "violation would have aborted with a panic.\n");
    return 0;
}
