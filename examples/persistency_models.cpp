/**
 * @file
 * The three language-level persistency models (§V) on one workload.
 *
 * Shows how the same recorded region trace is lowered differently
 * for failure-atomic transactions (TXN), synchronization-free
 * regions (SFR), and outermost critical sections (ATLAS), and what
 * each lowering costs on StrandWeaver versus the Intel baseline:
 * TXN commits inside every region; SFR and ATLAS hand commits to a
 * background pruner but pay happens-before bookkeeping, ATLAS most
 * heavily.
 */

#include <cstdio>

#include "core/strandweaver.hh"

using namespace strand;

int
main()
{
    WorkloadParams params;
    params.numThreads = benchThreads(4);
    params.opsPerThread = benchOpsPerThread(80);

    std::printf("RB-tree insert/delete, %u threads, %u ops/thread\n\n",
                params.numThreads, params.opsPerThread);
    RecordedWorkload recorded =
        recordWorkload(WorkloadKind::RbTree, params);

    std::printf("%-8s %14s %14s %10s %12s %10s\n", "model",
                "intel (us)", "strandwvr (us)", "speedup",
                "log entries", "commits");
    for (PersistencyModel model : allModels) {
        RunMetrics intel =
            runExperiment(recorded, HwDesign::IntelX86, model);
        RunMetrics sw =
            runExperiment(recorded, HwDesign::StrandWeaver, model);
        std::printf("%-8s %14.1f %14.1f %9.2fx %12llu %10llu\n",
                    persistencyModelName(model),
                    static_cast<double>(intel.runTicks) / 1e6,
                    static_cast<double>(sw.runTicks) / 1e6,
                    sw.speedupOver(intel),
                    static_cast<unsigned long long>(
                        sw.lowering.logEntries),
                    static_cast<unsigned long long>(
                        sw.lowering.commits));
    }

    std::printf("\nSFR batches commits off the critical path and "
                "gains the most;\nATLAS pays the heaviest "
                "happens-before bookkeeping (§VI-B).\n");
    return 0;
}
