/**
 * @file
 * Crash-recovery walkthrough: failure-atomic bank transfers.
 *
 * Records a multi-threaded transfer workload through the
 * language-level runtime, lowers it for StrandWeaver with
 * failure-atomic transactions, runs the timing simulation, crashes
 * the machine at an arbitrary point, and runs the recovery process
 * (Figure 6 of the paper) against the surviving persistent image.
 * The sum of all balances is invariant — every transfer either fully
 * persisted or was rolled back from its undo log.
 */

#include <cstdio>

#include "core/strandweaver.hh"
#include "sim/random.hh"

using namespace strand;

namespace
{

constexpr unsigned numAccounts = 12;
constexpr unsigned threads = 4;
constexpr std::uint64_t initialBalance = 100;
constexpr Addr accountBase = pmBase + 0x2000000;

Addr
account(unsigned idx)
{
    return accountBase + idx * lineBytes;
}

} // namespace

int
main()
{
    // 1. Record the workload functionally: each region moves one
    // unit between two accounts under a global lock.
    TraceRecorder rec(threads);
    Rng rng(2026);
    for (unsigned a = 0; a < numAccounts; ++a)
        rec.preload(account(a), initialBalance);

    for (unsigned round = 0; round < 6; ++round) {
        for (CoreId t = 0; t < threads; ++t) {
            unsigned from = rng.nextBounded(numAccounts);
            unsigned to = (from + 1) % numAccounts;
            rec.lockAcquire(t, 1);
            rec.regionBegin(t);
            std::uint64_t a = rec.read(t, account(from));
            std::uint64_t b = rec.read(t, account(to));
            rec.write(t, account(from), a - 1);
            rec.write(t, account(to), b + 1);
            rec.regionEnd(t);
            rec.lockRelease(t, 1);
        }
    }

    // 2. Lower for StrandWeaver + failure-atomic transactions.
    InstrumentorParams params;
    params.design = HwDesign::StrandWeaver;
    params.model = PersistencyModel::Txn;
    Instrumentor instr(params);
    auto streams = instr.lower(rec.takeTrace());

    // 3. Reference run to learn the duration, then crash mid-way.
    Tick endTick = 0;
    {
        SystemConfig cfg;
        cfg.numCores = static_cast<unsigned>(streams.size());
        cfg.design = HwDesign::StrandWeaver;
        System sys(cfg);
        sys.seedImage(rec.preloadedWords());
        sys.loadStreams(streams);
        endTick = sys.run();
    }

    Tick crashAt = endTick * 2 / 5;
    SystemConfig cfg;
    cfg.numCores = static_cast<unsigned>(streams.size());
    cfg.design = HwDesign::StrandWeaver;
    System sys(cfg);
    sys.seedImage(rec.preloadedWords());
    sys.loadStreams(std::move(streams));
    sys.runUntil(crashAt);
    std::printf("power failure at %llu ns (full run: %llu ns)\n\n",
                static_cast<unsigned long long>(crashAt / 1000),
                static_cast<unsigned long long>(endTick / 1000));
    sys.crash();

    // 4. Recover from the persisted image.
    auto total = [&] {
        std::uint64_t sum = 0;
        for (unsigned a = 0; a < numAccounts; ++a)
            sum += sys.memory().readPersisted(account(a));
        return sum;
    };

    std::printf("before recovery: persisted total = %llu\n",
                static_cast<unsigned long long>(total()));
    RecoveryManager recovery{LogLayout{}};
    RecoveryReport report = recovery.recover(sys.memory(), threads);
    std::printf("recovery: rolled back %llu store entries on %u "
                "thread(s)\n",
                static_cast<unsigned long long>(
                    report.entriesRolledBack),
                report.threadsWithUncommittedWork);
    for (auto [addr, value] : report.rollbacks) {
        std::printf("  restored account %llu to %llu\n",
                    static_cast<unsigned long long>(
                        (addr - accountBase) / lineBytes),
                    static_cast<unsigned long long>(value));
    }

    std::uint64_t expected =
        static_cast<std::uint64_t>(numAccounts) * initialBalance;
    std::printf("\nafter recovery:  persisted total = %llu "
                "(expected %llu) -> %s\n",
                static_cast<unsigned long long>(total()),
                static_cast<unsigned long long>(expected),
                total() == expected ? "CONSISTENT" : "CORRUPT");
    return total() == expected ? 0 : 1;
}
