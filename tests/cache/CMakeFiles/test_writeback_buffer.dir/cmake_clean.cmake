file(REMOVE_RECURSE
  "CMakeFiles/test_writeback_buffer.dir/writeback_buffer_test.cc.o"
  "CMakeFiles/test_writeback_buffer.dir/writeback_buffer_test.cc.o.d"
  "test_writeback_buffer"
  "test_writeback_buffer.pdb"
  "test_writeback_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_writeback_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
