# CMake generated Testfile for 
# Source directory: /root/repo/tests/cache
# Build directory: /root/repo/tests/cache
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/cache/test_cache_array[1]_include.cmake")
include("/root/repo/tests/cache/test_writeback_buffer[1]_include.cmake")
include("/root/repo/tests/cache/test_hierarchy[1]_include.cmake")
