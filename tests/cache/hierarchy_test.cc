/**
 * @file
 * Integration-grade unit tests for the coherent cache hierarchy:
 * miss latencies, MESI transitions, cache-to-cache transfers,
 * write-backs with persist interlocks, CLWB flushes, and snoop
 * stalls (§IV mechanisms).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"

namespace strand
{
namespace
{

constexpr Addr lineA = pmBase + 0x0000;
constexpr Addr lineB = pmBase + 0x4000;

class HierarchyFixture : public ::testing::Test
{
  protected:
    void
    build(unsigned cores = 2, HierarchyParams p = HierarchyParams{})
    {
        params = p;
        pm = std::make_unique<MemController>("pm", eq, img,
                                             MemControllerParams{}, true);
        dram = std::make_unique<MemController>(
            "dram", eq, img, dramControllerParams(), false);
        hier = std::make_unique<Hierarchy>("caches", eq, img, cores,
                                           params, *pm, *dram);
    }

    /** Blocking store helper: run until the store completes. */
    void
    store(CoreId core, Addr addr, std::uint64_t value)
    {
        bool done = false;
        while (!hier->tryStore(core, addr, value, [&] { done = true; }))
            eq.serviceOne();
        while (!done)
            ASSERT_TRUE(eq.serviceOne());
    }

    void
    load(CoreId core, Addr addr)
    {
        bool done = false;
        while (!hier->tryLoad(core, addr, [&] { done = true; }))
            eq.serviceOne();
        while (!done)
            ASSERT_TRUE(eq.serviceOne());
    }

    /** Flush and report whether PM was written. */
    bool
    flush(CoreId core, Addr addr)
    {
        bool done = false;
        bool wrote = false;
        hier->tryFlush(core, addr, [&](bool w) {
            done = true;
            wrote = w;
        });
        while (!done)
            EXPECT_TRUE(eq.serviceOne());
        return wrote;
    }

    EventQueue eq;
    MemoryImage img;
    HierarchyParams params;
    std::unique_ptr<MemController> pm;
    std::unique_ptr<MemController> dram;
    std::unique_ptr<Hierarchy> hier;
};

TEST_F(HierarchyFixture, ColdLoadMissFillsExclusiveFromMemory)
{
    build();
    Tick done = 0;
    ASSERT_TRUE(hier->tryLoad(0, lineA, [&] { done = eq.curTick(); }));
    eq.run();
    // l1 lookup + snoop + l2 lookup + PM row-miss read.
    Tick expected = params.l1Latency + params.snoopLatency +
                    params.l2Latency + nsToTicks(346);
    EXPECT_EQ(done, expected);
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Exclusive);
    EXPECT_NE(hier->l2State(lineA), CoherenceState::Invalid);
    EXPECT_EQ(hier->loadMisses.value(), 1.0);
}

TEST_F(HierarchyFixture, WarmLoadHitsInL1)
{
    build();
    load(0, lineA);
    Tick before = eq.curTick();
    Tick done = 0;
    ASSERT_TRUE(hier->tryLoad(0, lineA, [&] { done = eq.curTick(); }));
    eq.run();
    EXPECT_EQ(done - before, params.l1Latency);
    EXPECT_EQ(hier->loadHits.value(), 1.0);
}

TEST_F(HierarchyFixture, StoreMissInstallsModifiedAndUpdatesImage)
{
    build();
    store(0, lineA + 8, 1234);
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Modified);
    EXPECT_TRUE(hier->l1Dirty(0, lineA));
    EXPECT_EQ(img.readArch(lineA + 8), 1234u);
    EXPECT_EQ(hier->storeMisses.value(), 1.0);
    // Nothing persisted yet.
    EXPECT_FALSE(img.persistedContains(lineA + 8));
}

TEST_F(HierarchyFixture, StoreHitOnOwnedLineIsFast)
{
    build();
    store(0, lineA, 1);
    Tick before = eq.curTick();
    Tick done = 0;
    ASSERT_TRUE(hier->tryStore(0, lineA + 8, 2,
                               [&] { done = eq.curTick(); }));
    eq.run();
    EXPECT_EQ(done - before, params.l1Latency);
    EXPECT_EQ(hier->storeHits.value(), 1.0);
}

TEST_F(HierarchyFixture, ReadSharingDemotesOwnerAndDirtiesL2)
{
    build();
    store(0, lineA, 7);
    load(1, lineA);
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Shared);
    EXPECT_EQ(hier->l1State(1, lineA), CoherenceState::Shared);
    EXPECT_TRUE(hier->l2Dirty(lineA));
    EXPECT_EQ(hier->cacheToCache.value(), 1.0);
}

TEST_F(HierarchyFixture, UpgradeInvalidatesSharers)
{
    build();
    load(0, lineA);
    load(1, lineA); // both shared now
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Shared);
    store(1, lineA, 5);
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Invalid);
    EXPECT_EQ(hier->l1State(1, lineA), CoherenceState::Modified);
    EXPECT_EQ(hier->upgrades.value(), 1.0);
}

TEST_F(HierarchyFixture, RfoStealsDirtyLineFromRemoteOwner)
{
    build();
    store(0, lineA, 1);
    store(1, lineA, 2);
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Invalid);
    EXPECT_EQ(hier->l1State(1, lineA), CoherenceState::Modified);
    EXPECT_EQ(img.readArch(lineA), 2u);
    EXPECT_EQ(hier->cacheToCache.value(), 1.0);
}

TEST_F(HierarchyFixture, RfoStallsOnOwnersPersistDrain)
{
    build();
    bool clear = false;
    int recordings = 0;
    hier->setDrainPointRecorder(0, [&] {
        ++recordings;
        return [&clear] { return clear; };
    });

    store(0, lineA, 1);
    EXPECT_EQ(recordings, 0); // stores alone record nothing

    bool done = false;
    ASSERT_TRUE(hier->tryStore(1, lineA, 2, [&] { done = true; }));
    // Run a generous amount of simulated time: the RFO must not
    // complete while the owner's persist engine has not drained.
    eq.runUntil(eq.curTick() + nsToTicks(10000));
    EXPECT_FALSE(done);
    EXPECT_EQ(recordings, 1);
    EXPECT_EQ(hier->snoopStalls.value(), 1.0);

    clear = true;
    hier->kick();
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(hier->l1State(1, lineA), CoherenceState::Modified);
}

TEST_F(HierarchyFixture, FlushDirtyLinePersistsData)
{
    build();
    store(0, lineA, 42);
    EXPECT_TRUE(flush(0, lineA));
    EXPECT_EQ(img.readPersisted(lineA), 42u);
    // CLWB retains a clean copy.
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Exclusive);
    EXPECT_FALSE(hier->l1Dirty(0, lineA));
    EXPECT_EQ(hier->flushesDirty.value(), 1.0);
}

TEST_F(HierarchyFixture, FlushCleanLineDoesNotWritePm)
{
    build();
    load(0, lineA);
    EXPECT_FALSE(flush(0, lineA));
    EXPECT_EQ(hier->flushesClean.value(), 1.0);
    EXPECT_FALSE(img.persistedContains(lineA));
}

TEST_F(HierarchyFixture, FlushAbsentLineCompletesClean)
{
    build();
    EXPECT_FALSE(flush(0, lineB));
}

TEST_F(HierarchyFixture, FlushFindsDirtyLineInRemoteL1)
{
    build();
    store(1, lineA, 9);
    EXPECT_TRUE(flush(0, lineA));
    EXPECT_EQ(img.readPersisted(lineA), 9u);
    EXPECT_FALSE(hier->l1Dirty(1, lineA));
}

TEST_F(HierarchyFixture, FlushSnapshotExcludesLaterStores)
{
    build();
    store(0, lineA, 1);
    bool done = false;
    hier->tryFlush(0, lineA, [&](bool) { done = true; });
    // Let the flush pass its lookup point, then store again before
    // the PM ack arrives.
    eq.runUntil(eq.curTick() + params.l1Latency);
    bool stored = false;
    ASSERT_TRUE(hier->tryStore(0, lineA, 2, [&] { stored = true; }));
    eq.run();
    EXPECT_TRUE(done && stored);
    EXPECT_EQ(img.readPersisted(lineA), 1u);
    EXPECT_EQ(img.readArch(lineA), 2u);
}

TEST_F(HierarchyFixture, MshrLimitBoundsOutstandingMisses)
{
    build();
    unsigned accepted = 0;
    for (unsigned i = 0; i < params.l1Mshrs + 2; ++i) {
        Addr addr = pmBase + 0x10000 + i * 0x1000;
        if (hier->tryLoad(0, addr, nullptr))
            ++accepted;
    }
    EXPECT_EQ(accepted, params.l1Mshrs);
    eq.run();
    // After draining, new misses are accepted again.
    EXPECT_TRUE(hier->tryLoad(0, pmBase + 0x80000, nullptr));
    eq.run();
}

TEST_F(HierarchyFixture, MissesToSameLineMergeInOneMshr)
{
    build();
    int completions = 0;
    ASSERT_TRUE(hier->tryLoad(0, lineA, [&] { ++completions; }));
    ASSERT_TRUE(hier->tryLoad(0, lineA + 8, [&] { ++completions; }));
    EXPECT_EQ(hier->loadMisses.value(), 2.0);
    eq.run();
    EXPECT_EQ(completions, 2);
    // Only one memory read should have been issued.
    EXPECT_EQ(pm->numReads.value(), 1.0);
}

TEST_F(HierarchyFixture, CapacityEvictionWritesBackThroughL2)
{
    // Shrink both levels so evictions happen quickly.
    HierarchyParams p;
    p.l1Size = 256;  // 2 sets x 2 ways
    p.l2Size = 2048; // 2 sets x 16 ways
    build(1, p);

    // Dirty three conflicting L1 lines (same L1 set: stride 128).
    // With 2 ways the third store evicts a dirty victim.
    store(0, pmBase + 0, 1);
    store(0, pmBase + 128, 2);
    store(0, pmBase + 256, 3);
    eq.run();
    EXPECT_GE(hier->l1Writebacks.value(), 1.0);
    // The write-back landed in the L2 and marked it dirty.
    EXPECT_TRUE(hier->l2Dirty(pmBase + 0));
}

TEST_F(HierarchyFixture, WritebackWaitsForPersistClearance)
{
    HierarchyParams p;
    p.l1Size = 256;
    build(1, p);

    bool clear = false;
    hier->setDrainPointRecorder(0, [&] {
        return [&clear] { return clear; };
    });

    store(0, pmBase + 0, 1);
    store(0, pmBase + 128, 2);
    store(0, pmBase + 256, 3); // evicts a dirty line into the WB buffer
    eq.run();
    EXPECT_EQ(hier->writebacksPending(), 1u);

    clear = true;
    hier->kick();
    eq.run();
    EXPECT_EQ(hier->writebacksPending(), 0u);
}

TEST_F(HierarchyFixture, L2CapacityEvictionPersistsDirtyData)
{
    HierarchyParams p;
    p.l1Size = 256;
    p.l2Size = 1024; // 1 set x 16 ways: 16 lines total
    p.l2Ways = 16;
    build(1, p);

    // Dirty more lines than the L2 can hold; evictions must reach PM.
    for (unsigned i = 0; i < 24; ++i)
        store(0, pmBase + i * 64, i + 1);
    eq.run();
    EXPECT_GE(hier->l2Evictions.value(), 1.0);
    EXPECT_GE(pm->numWrites.value(), 1.0);
    EXPECT_GT(img.persistedWords(), 0u);
}

TEST_F(HierarchyFixture, DramTrafficDoesNotPersist)
{
    build();
    store(0, dramBase + 0x100, 5);
    EXPECT_TRUE(flush(0, dramBase + 0x100) == true ||
                img.persistedWords() == 0u);
    eq.run();
    EXPECT_EQ(img.persistedWords(), 0u);
}

TEST_F(HierarchyFixture, ConcurrentMissesToDistinctLinesOverlap)
{
    build();
    std::vector<Tick> done;
    ASSERT_TRUE(hier->tryLoad(0, pmBase + 0x100000,
                              [&] { done.push_back(eq.curTick()); }));
    ASSERT_TRUE(hier->tryLoad(0, pmBase + 0x200000,
                              [&] { done.push_back(eq.curTick()); }));
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    // Different banks: the two fills overlap almost entirely.
    Tick serial = 2 * (params.l1Latency + params.snoopLatency +
                       params.l2Latency + nsToTicks(346));
    EXPECT_LT(done[1], serial);
}

TEST_F(HierarchyFixture, HierarchyReportsIdleAfterDraining)
{
    build();
    store(0, lineA, 1);
    flush(0, lineA);
    eq.run();
    EXPECT_TRUE(hier->idle());
}

} // namespace
} // namespace strand
