/**
 * @file
 * Integration-grade unit tests for the coherent cache hierarchy:
 * miss latencies, MESI transitions, cache-to-cache transfers,
 * write-backs with persist interlocks, CLWB flushes, and snoop
 * stalls (§IV mechanisms).
 *
 * Requests travel through a test-owned MemPort, exactly as cores and
 * persist engines mail them in production: loads answer Nack or Done,
 * stores answer Ack/Nack plus a later Done, flushes answer
 * FlushStarted and Done(wrotePm). Every quoted latency therefore
 * includes the port legs (one request leg in, one response leg out,
 * plus one more request leg for paths that reach a controller).
 */

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hh"

namespace strand
{
namespace
{

constexpr Addr lineA = pmBase + 0x0000;
constexpr Addr lineB = pmBase + 0x4000;

class HierarchyFixture : public ::testing::Test
{
  protected:
    /** Per-request response bookkeeping, keyed by token. */
    struct Outcome
    {
        bool acked = false;
        bool nacked = false;
        bool started = false;
        bool done = false;
        bool wrotePm = false;
        Tick doneAt = 0;
    };

    void
    build(unsigned cores = 2, HierarchyParams p = HierarchyParams{})
    {
        params = p;
        pm = std::make_unique<MemController>("pm", eq, img,
                                             MemControllerParams{}, true);
        dram = std::make_unique<MemController>(
            "dram", eq, img, dramControllerParams(), false);
        hier = std::make_unique<Hierarchy>("caches", eq, img, cores,
                                           params, *pm, *dram);
        port.init(eq, "test.port");
        port.bind(*hier);
        port.setResponseHandler([this](const MemResponse &resp) {
            Outcome &o = outcomes[resp.token];
            switch (resp.kind) {
              case MemResponseKind::Ack:
                o.acked = true;
                break;
              case MemResponseKind::Nack:
                o.nacked = true;
                break;
              case MemResponseKind::FlushStarted:
                o.started = true;
                break;
              case MemResponseKind::Done:
                o.done = true;
                o.doneAt = eq.curTick();
                o.wrotePm = resp.wrotePm;
                break;
            }
        });
    }

    /** Mail one request; @return its token. */
    std::uint64_t
    send(MemRequestKind kind, CoreId core, Addr addr,
         std::uint64_t value = 0)
    {
        MemRequest req;
        req.kind = kind;
        req.core = core;
        req.addr = addr;
        req.value = value;
        req.token = nextToken++;
        outcomes[req.token];
        port.send(std::move(req));
        return req.token;
    }

    const Outcome &
    out(std::uint64_t token)
    {
        return outcomes.at(token);
    }

    /** Service everything scheduled at the next live tick. */
    bool
    step()
    {
        const Tick next = eq.nextLiveTick();
        if (next == maxTick)
            return false;
        eq.runUntil(next);
        return true;
    }

    /** Blocking store helper: retry Nacks, run until completion. */
    void
    store(CoreId core, Addr addr, std::uint64_t value)
    {
        std::uint64_t tok = 0;
        for (;;) {
            tok = send(MemRequestKind::Store, core, addr, value);
            while (!out(tok).acked && !out(tok).nacked)
                ASSERT_TRUE(step());
            if (out(tok).acked)
                break; // Nack: the next send is the retry
        }
        while (!out(tok).done)
            ASSERT_TRUE(step());
    }

    /** Blocking load helper: retry Nacks, run until completion. */
    void
    load(CoreId core, Addr addr)
    {
        for (;;) {
            std::uint64_t tok = send(MemRequestKind::Load, core, addr);
            while (!out(tok).done && !out(tok).nacked)
                ASSERT_TRUE(step());
            if (out(tok).done)
                return;
        }
    }

    /** Flush and report whether PM was written. */
    bool
    flush(CoreId core, Addr addr)
    {
        std::uint64_t tok = send(MemRequestKind::Flush, core, addr);
        while (!out(tok).done)
            EXPECT_TRUE(step());
        return out(tok).wrotePm;
    }

    /** Core-to-hierarchy mail time, there and back. */
    static constexpr Tick mailRoundTrip = 2 * portLegLatency;

    EventQueue eq;
    MemoryImage img;
    HierarchyParams params;
    std::unique_ptr<MemController> pm;
    std::unique_ptr<MemController> dram;
    std::unique_ptr<Hierarchy> hier;
    MemPort port;
    std::unordered_map<std::uint64_t, Outcome> outcomes;
    std::uint64_t nextToken = 1;
};

TEST_F(HierarchyFixture, ColdLoadMissFillsExclusiveFromMemory)
{
    build();
    auto tok = send(MemRequestKind::Load, 0, lineA);
    eq.run();
    ASSERT_TRUE(out(tok).done);
    // Mail legs + l1 lookup + snoop + l2 lookup + one more mail leg
    // to the PM controller + PM row-miss read.
    Tick expected = mailRoundTrip + params.l1Latency +
                    params.snoopLatency + params.l2Latency +
                    portLegLatency + nsToTicks(346);
    EXPECT_EQ(out(tok).doneAt, expected);
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Exclusive);
    EXPECT_NE(hier->l2State(lineA), CoherenceState::Invalid);
    EXPECT_EQ(hier->loadMisses.value(), 1.0);
}

TEST_F(HierarchyFixture, WarmLoadHitsInL1)
{
    build();
    load(0, lineA);
    Tick before = eq.curTick();
    auto tok = send(MemRequestKind::Load, 0, lineA);
    eq.run();
    ASSERT_TRUE(out(tok).done);
    EXPECT_EQ(out(tok).doneAt - before, mailRoundTrip + params.l1Latency);
    EXPECT_EQ(hier->loadHits.value(), 1.0);
}

TEST_F(HierarchyFixture, StoreMissInstallsModifiedAndUpdatesImage)
{
    build();
    store(0, lineA + 8, 1234);
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Modified);
    EXPECT_TRUE(hier->l1Dirty(0, lineA));
    EXPECT_EQ(img.readArch(lineA + 8), 1234u);
    EXPECT_EQ(hier->storeMisses.value(), 1.0);
    // Nothing persisted yet.
    EXPECT_FALSE(img.persistedContains(lineA + 8));
}

TEST_F(HierarchyFixture, StoreHitOnOwnedLineIsFast)
{
    build();
    store(0, lineA, 1);
    Tick before = eq.curTick();
    auto tok = send(MemRequestKind::Store, 0, lineA + 8, 2);
    eq.run();
    ASSERT_TRUE(out(tok).done);
    EXPECT_EQ(out(tok).doneAt - before, mailRoundTrip + params.l1Latency);
    EXPECT_EQ(hier->storeHits.value(), 1.0);
}

TEST_F(HierarchyFixture, ReadSharingDemotesOwnerAndDirtiesL2)
{
    build();
    store(0, lineA, 7);
    load(1, lineA);
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Shared);
    EXPECT_EQ(hier->l1State(1, lineA), CoherenceState::Shared);
    EXPECT_TRUE(hier->l2Dirty(lineA));
    EXPECT_EQ(hier->cacheToCache.value(), 1.0);
}

TEST_F(HierarchyFixture, UpgradeInvalidatesSharers)
{
    build();
    load(0, lineA);
    load(1, lineA); // both shared now
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Shared);
    store(1, lineA, 5);
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Invalid);
    EXPECT_EQ(hier->l1State(1, lineA), CoherenceState::Modified);
    EXPECT_EQ(hier->upgrades.value(), 1.0);
}

TEST_F(HierarchyFixture, RfoStealsDirtyLineFromRemoteOwner)
{
    build();
    store(0, lineA, 1);
    store(1, lineA, 2);
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Invalid);
    EXPECT_EQ(hier->l1State(1, lineA), CoherenceState::Modified);
    EXPECT_EQ(img.readArch(lineA), 2u);
    EXPECT_EQ(hier->cacheToCache.value(), 1.0);
}

TEST_F(HierarchyFixture, RfoStallsOnOwnersPersistDrain)
{
    build();
    bool clear = false;
    int recordings = 0;
    hier->setDrainPointRecorder(0, [&] {
        ++recordings;
        return [&clear] { return clear; };
    });

    store(0, lineA, 1);
    EXPECT_EQ(recordings, 0); // stores alone record nothing

    auto tok = send(MemRequestKind::Store, 1, lineA, 2);
    while (!out(tok).acked && !out(tok).nacked)
        ASSERT_TRUE(step());
    ASSERT_TRUE(out(tok).acked);
    // Run a generous amount of simulated time: the RFO must not
    // complete while the owner's persist engine has not drained.
    eq.runUntil(eq.curTick() + nsToTicks(10000));
    EXPECT_FALSE(out(tok).done);
    EXPECT_EQ(recordings, 1);
    EXPECT_EQ(hier->snoopStalls.value(), 1.0);

    clear = true;
    hier->kick();
    eq.run();
    EXPECT_TRUE(out(tok).done);
    EXPECT_EQ(hier->l1State(1, lineA), CoherenceState::Modified);
}

TEST_F(HierarchyFixture, FlushDirtyLinePersistsData)
{
    build();
    store(0, lineA, 42);
    EXPECT_TRUE(flush(0, lineA));
    EXPECT_EQ(img.readPersisted(lineA), 42u);
    // CLWB retains a clean copy.
    EXPECT_EQ(hier->l1State(0, lineA), CoherenceState::Exclusive);
    EXPECT_FALSE(hier->l1Dirty(0, lineA));
    EXPECT_EQ(hier->flushesDirty.value(), 1.0);
}

TEST_F(HierarchyFixture, FlushCleanLineDoesNotWritePm)
{
    build();
    load(0, lineA);
    EXPECT_FALSE(flush(0, lineA));
    EXPECT_EQ(hier->flushesClean.value(), 1.0);
    EXPECT_FALSE(img.persistedContains(lineA));
}

TEST_F(HierarchyFixture, FlushAbsentLineCompletesClean)
{
    build();
    EXPECT_FALSE(flush(0, lineB));
}

TEST_F(HierarchyFixture, FlushFindsDirtyLineInRemoteL1)
{
    build();
    store(1, lineA, 9);
    EXPECT_TRUE(flush(0, lineA));
    EXPECT_EQ(img.readPersisted(lineA), 9u);
    EXPECT_FALSE(hier->l1Dirty(1, lineA));
}

TEST_F(HierarchyFixture, FlushSnapshotExcludesLaterStores)
{
    build();
    store(0, lineA, 1);
    auto flushTok = send(MemRequestKind::Flush, 0, lineA);
    // Let the flush pass its lookup point (one mail leg plus the L1
    // read, plus the response leg of the FlushStarted notification),
    // then store again before the PM ack arrives.
    eq.runUntil(eq.curTick() + 2 * portLegLatency + params.l1Latency);
    EXPECT_TRUE(out(flushTok).started);
    auto storeTok = send(MemRequestKind::Store, 0, lineA, 2);
    eq.run();
    EXPECT_TRUE(out(flushTok).done);
    EXPECT_TRUE(out(storeTok).done);
    EXPECT_EQ(img.readPersisted(lineA), 1u);
    EXPECT_EQ(img.readArch(lineA), 2u);
}

TEST_F(HierarchyFixture, MshrLimitBoundsOutstandingMisses)
{
    build();
    // Mail more loads than there are MSHRs, back to back: they all
    // reach the hierarchy in one batch, and the overflow is Nacked.
    std::vector<std::uint64_t> toks;
    for (unsigned i = 0; i < params.l1Mshrs + 2; ++i) {
        Addr addr = pmBase + 0x10000 + i * 0x1000;
        toks.push_back(send(MemRequestKind::Load, 0, addr));
    }
    eq.run();
    unsigned accepted = 0;
    unsigned nacked = 0;
    for (auto tok : toks) {
        if (out(tok).done)
            ++accepted;
        if (out(tok).nacked)
            ++nacked;
    }
    EXPECT_EQ(accepted, params.l1Mshrs);
    EXPECT_EQ(nacked, 2u);
    // After draining, new misses are accepted again.
    auto tok = send(MemRequestKind::Load, 0, pmBase + 0x80000);
    eq.run();
    EXPECT_TRUE(out(tok).done);
}

TEST_F(HierarchyFixture, MissesToSameLineMergeInOneMshr)
{
    build();
    auto a = send(MemRequestKind::Load, 0, lineA);
    auto b = send(MemRequestKind::Load, 0, lineA + 8);
    eq.run();
    EXPECT_TRUE(out(a).done);
    EXPECT_TRUE(out(b).done);
    EXPECT_EQ(hier->loadMisses.value(), 2.0);
    // Only one memory read should have been issued.
    EXPECT_EQ(pm->numReads.value(), 1.0);
}

TEST_F(HierarchyFixture, CapacityEvictionWritesBackThroughL2)
{
    // Shrink both levels so evictions happen quickly.
    HierarchyParams p;
    p.l1Size = 256;  // 2 sets x 2 ways
    p.l2Size = 2048; // 2 sets x 16 ways
    build(1, p);

    // Dirty three conflicting L1 lines (same L1 set: stride 128).
    // With 2 ways the third store evicts a dirty victim.
    store(0, pmBase + 0, 1);
    store(0, pmBase + 128, 2);
    store(0, pmBase + 256, 3);
    eq.run();
    EXPECT_GE(hier->l1Writebacks.value(), 1.0);
    // The write-back landed in the L2 and marked it dirty.
    EXPECT_TRUE(hier->l2Dirty(pmBase + 0));
}

TEST_F(HierarchyFixture, WritebackWaitsForPersistClearance)
{
    HierarchyParams p;
    p.l1Size = 256;
    build(1, p);

    bool clear = false;
    hier->setDrainPointRecorder(0, [&] {
        return [&clear] { return clear; };
    });

    store(0, pmBase + 0, 1);
    store(0, pmBase + 128, 2);
    store(0, pmBase + 256, 3); // evicts a dirty line into the WB buffer
    eq.run();
    EXPECT_EQ(hier->writebacksPending(), 1u);

    clear = true;
    hier->kick();
    eq.run();
    EXPECT_EQ(hier->writebacksPending(), 0u);
}

TEST_F(HierarchyFixture, L2CapacityEvictionPersistsDirtyData)
{
    HierarchyParams p;
    p.l1Size = 256;
    p.l2Size = 1024; // 1 set x 16 ways: 16 lines total
    p.l2Ways = 16;
    build(1, p);

    // Dirty more lines than the L2 can hold; evictions must reach PM.
    for (unsigned i = 0; i < 24; ++i)
        store(0, pmBase + i * 64, i + 1);
    eq.run();
    EXPECT_GE(hier->l2Evictions.value(), 1.0);
    EXPECT_GE(pm->numWrites.value(), 1.0);
    EXPECT_GT(img.persistedWords(), 0u);
}

TEST_F(HierarchyFixture, DramTrafficDoesNotPersist)
{
    build();
    store(0, dramBase + 0x100, 5);
    EXPECT_TRUE(flush(0, dramBase + 0x100) == true ||
                img.persistedWords() == 0u);
    eq.run();
    EXPECT_EQ(img.persistedWords(), 0u);
}

TEST_F(HierarchyFixture, ConcurrentMissesToDistinctLinesOverlap)
{
    build();
    auto a = send(MemRequestKind::Load, 0, pmBase + 0x100000);
    auto b = send(MemRequestKind::Load, 0, pmBase + 0x200000);
    eq.run();
    ASSERT_TRUE(out(a).done);
    ASSERT_TRUE(out(b).done);
    // Different banks: the two fills overlap almost entirely.
    Tick serial = 2 * (params.l1Latency + params.snoopLatency +
                       params.l2Latency + nsToTicks(346));
    EXPECT_LT(std::max(out(a).doneAt, out(b).doneAt), serial);
}

TEST_F(HierarchyFixture, HierarchyReportsIdleAfterDraining)
{
    build();
    store(0, lineA, 1);
    flush(0, lineA);
    eq.run();
    EXPECT_TRUE(hier->idle());
}

} // namespace
} // namespace strand
