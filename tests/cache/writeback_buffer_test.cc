/**
 * @file
 * Unit tests for the write-back buffer and its persist-drain
 * interlock (§IV "Managing cache writebacks").
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/writeback_buffer.hh"

namespace strand
{
namespace
{

LineData
lineAt(Addr addr, std::uint64_t word0)
{
    LineData data;
    data.lineAddr = lineAlign(addr);
    data.set(0, word0);
    return data;
}

TEST(WritebackBuffer, DrainsFifoWhenUnconstrained)
{
    WritebackBuffer buf(4);
    buf.push(0x100, lineAt(0x100, 1), {});
    buf.push(0x200, lineAt(0x200, 2), {});
    std::vector<Addr> order;
    unsigned drained =
        buf.drain([&](Addr a, const LineData &) { order.push_back(a); });
    EXPECT_EQ(drained, 2u);
    EXPECT_EQ(order, (std::vector<Addr>{0x100, 0x200}));
    EXPECT_TRUE(buf.empty());
}

TEST(WritebackBuffer, BlockedHeadBlocksYoungerEntries)
{
    WritebackBuffer buf(4);
    bool clear = false;
    buf.push(0x100, lineAt(0x100, 1), [&] { return clear; });
    buf.push(0x200, lineAt(0x200, 2), {});

    std::vector<Addr> order;
    auto fn = [&](Addr a, const LineData &) { order.push_back(a); };

    EXPECT_EQ(buf.drain(fn), 0u);
    EXPECT_EQ(buf.size(), 2u);

    clear = true;
    EXPECT_EQ(buf.drain(fn), 2u);
    EXPECT_EQ(order, (std::vector<Addr>{0x100, 0x200}));
}

TEST(WritebackBuffer, ClearanceEvaluatedLazily)
{
    WritebackBuffer buf(2);
    int evaluations = 0;
    buf.push(0x100, lineAt(0x100, 1), [&] {
        ++evaluations;
        return evaluations >= 3;
    });
    auto fn = [](Addr, const LineData &) {};
    EXPECT_EQ(buf.drain(fn), 0u);
    EXPECT_EQ(buf.drain(fn), 0u);
    EXPECT_EQ(buf.drain(fn), 1u);
}

TEST(WritebackBuffer, CapacityAndContains)
{
    WritebackBuffer buf(2);
    EXPECT_FALSE(buf.full());
    buf.push(0x100, lineAt(0x100, 1), [] { return false; });
    buf.push(0x200, lineAt(0x200, 2), [] { return false; });
    EXPECT_TRUE(buf.full());
    EXPECT_TRUE(buf.contains(0x100));
    EXPECT_TRUE(buf.contains(0x200));
    EXPECT_FALSE(buf.contains(0x300));
    EXPECT_THROW(buf.push(0x300, lineAt(0x300, 3), {}),
                 std::logic_error);
}

TEST(WritebackBuffer, DrainPassesCapturedData)
{
    WritebackBuffer buf(2);
    buf.push(0x100, lineAt(0x100, 77), {});
    std::uint64_t seen = 0;
    buf.drain([&](Addr, const LineData &d) { seen = d.words[0]; });
    EXPECT_EQ(seen, 77u);
}

TEST(WritebackBuffer, SnapshotEntriesRoundTrip)
{
    WritebackBuffer buf(4);
    bool clear = false;
    buf.push(0x100, lineAt(0x100, 7), [&] { return clear; });
    buf.push(0x200, lineAt(0x200, 9), {});
    std::deque<WritebackBuffer::Entry> entries =
        buf.snapshotEntries();

    // Drain past the capture (clearance satisfied), then rewind.
    clear = true;
    auto fn = [](Addr, const LineData &) {};
    EXPECT_EQ(buf.drain(fn), 2u);
    EXPECT_TRUE(buf.empty());
    buf.restoreEntries(std::move(entries));

    EXPECT_EQ(buf.size(), 2u);
    EXPECT_TRUE(buf.contains(0x100));
    EXPECT_TRUE(buf.contains(0x200));
    // The copied clearance closure still reads the live flag: entries
    // drain in order with their data intact.
    clear = false;
    EXPECT_EQ(buf.drain(fn), 0u);
    clear = true;
    std::vector<std::uint64_t> words;
    EXPECT_EQ(buf.drain([&](Addr, const LineData &d) {
                  words.push_back(d.words[0]);
              }),
              2u);
    EXPECT_EQ(words, (std::vector<std::uint64_t>{7, 9}));
}

TEST(WritebackBuffer, RestoreRejectsOverCapacity)
{
    WritebackBuffer big(4);
    big.push(0x100, lineAt(0x100, 1), {});
    big.push(0x200, lineAt(0x200, 2), {});
    big.push(0x300, lineAt(0x300, 3), {});
    WritebackBuffer small(2);
    EXPECT_THROW(small.restoreEntries(big.snapshotEntries()),
                 std::logic_error);
}

TEST(WritebackBuffer, ZeroCapacityPanics)
{
    EXPECT_THROW(WritebackBuffer(0), std::logic_error);
}

} // namespace
} // namespace strand
