/**
 * @file
 * Unit tests for the set-associative tag array: geometry, lookup,
 * LRU victimization, and invalidation.
 */

#include <gtest/gtest.h>

#include "cache/cache_array.hh"

namespace strand
{
namespace
{

TEST(CacheArray, GeometryFromSizeAndWays)
{
    CacheArray arr(32 * 1024, 2);
    EXPECT_EQ(arr.numWays(), 2u);
    EXPECT_EQ(arr.numSets(), 32u * 1024 / 64 / 2);
    EXPECT_EQ(arr.countValid(), 0u);
}

TEST(CacheArray, BadGeometryIsFatal)
{
    EXPECT_THROW(CacheArray(0, 2), std::invalid_argument);
    EXPECT_THROW(CacheArray(1024, 0), std::invalid_argument);
}

TEST(CacheArray, InstallAndFind)
{
    CacheArray arr(1024, 2); // 8 sets
    EXPECT_EQ(arr.findLine(0x1000), nullptr);
    CacheLineInfo &victim = arr.victimFor(0x1000);
    arr.install(victim, 0x1000, CoherenceState::Exclusive);

    CacheLineInfo *line = arr.findLine(0x1000);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, CoherenceState::Exclusive);
    EXPECT_FALSE(line->dirty());
    line->state = CoherenceState::Modified;
    EXPECT_TRUE(line->dirty());

    // Any address within the line maps to the same entry.
    EXPECT_EQ(arr.findLine(0x1000 + 63), line);
    EXPECT_EQ(arr.findLine(0x1000 + 64), nullptr);
}

TEST(CacheArray, VictimPrefersInvalid)
{
    CacheArray arr(256, 2); // 2 sets, 2 ways
    // Two lines map to set 0: line addresses 0 and 128.
    arr.install(arr.victimFor(0), 0, CoherenceState::Shared);
    CacheLineInfo &victim = arr.victimFor(128);
    EXPECT_FALSE(victim.valid());
}

TEST(CacheArray, VictimIsLeastRecentlyUsed)
{
    CacheArray arr(256, 2); // 2 sets x 2 ways; set stride is 128
    arr.install(arr.victimFor(0), 0, CoherenceState::Shared);
    arr.install(arr.victimFor(128), 128, CoherenceState::Shared);
    // Touch line 0 so that 128 becomes LRU.
    arr.touch(*arr.findLine(0));
    CacheLineInfo &victim = arr.victimFor(256);
    EXPECT_TRUE(victim.valid());
    EXPECT_EQ(victim.lineAddr, 128u);
}

TEST(CacheArray, InvalidateRemovesLine)
{
    CacheArray arr(1024, 2);
    arr.install(arr.victimFor(0x40), 0x40, CoherenceState::Modified);
    EXPECT_TRUE(arr.invalidate(0x40));
    EXPECT_EQ(arr.findLine(0x40), nullptr);
    EXPECT_FALSE(arr.invalidate(0x40));
    EXPECT_EQ(arr.countValid(), 0u);
}

TEST(CacheArray, ForEachValidVisitsAll)
{
    CacheArray arr(1024, 2);
    arr.install(arr.victimFor(0), 0, CoherenceState::Shared);
    arr.install(arr.victimFor(64), 64, CoherenceState::Modified);
    int seen = 0;
    arr.forEachValid([&](CacheLineInfo &) { ++seen; });
    EXPECT_EQ(seen, 2);
}

TEST(CacheArray, StateNames)
{
    EXPECT_STREQ(coherenceStateName(CoherenceState::Invalid), "I");
    EXPECT_STREQ(coherenceStateName(CoherenceState::Shared), "S");
    EXPECT_STREQ(coherenceStateName(CoherenceState::Exclusive), "E");
    EXPECT_STREQ(coherenceStateName(CoherenceState::Modified), "M");
}

TEST(CacheArray, SnapshotStateRoundTrips)
{
    CacheArray arr(256, 2); // 2 sets x 2 ways
    arr.install(arr.victimFor(0), 0, CoherenceState::Modified);
    arr.install(arr.victimFor(128), 128, CoherenceState::Shared);
    arr.touch(*arr.findLine(0));
    CacheArray::State state = arr.snapshotState();

    // Mutate past the capture, then rewind.
    arr.install(arr.victimFor(256), 256, CoherenceState::Exclusive);
    arr.invalidate(0);
    arr.restoreState(std::move(state));

    EXPECT_EQ(arr.countValid(), 2u);
    ASSERT_NE(arr.findLine(0), nullptr);
    EXPECT_EQ(arr.findLine(0)->state, CoherenceState::Modified);
    ASSERT_NE(arr.findLine(128), nullptr);
    EXPECT_EQ(arr.findLine(256), nullptr);
    // LRU clock is part of the capture: 128 is still the victim.
    EXPECT_EQ(arr.victimFor(256).lineAddr, 128u);
}

TEST(CacheArray, RestoreRejectsChangedGeometry)
{
    CacheArray small(256, 2);
    CacheArray big(1024, 2);
    EXPECT_THROW(big.restoreState(small.snapshotState()),
                 std::logic_error);
}

TEST(CacheArray, ConflictingLinesShareASet)
{
    CacheArray arr(256, 2); // 2 sets x 2 ways
    // Three conflicting lines for set 0: 0, 128, 256.
    arr.install(arr.victimFor(0), 0, CoherenceState::Shared);
    arr.install(arr.victimFor(128), 128, CoherenceState::Shared);
    CacheLineInfo &victim = arr.victimFor(256);
    ASSERT_TRUE(victim.valid()); // set is full, a valid line must go
    Addr evicted = victim.lineAddr;
    arr.install(victim, 256, CoherenceState::Shared);
    EXPECT_EQ(arr.findLine(evicted), nullptr);
    EXPECT_NE(arr.findLine(256), nullptr);
    EXPECT_EQ(arr.countValid(), 2u);
}

} // namespace
} // namespace strand
