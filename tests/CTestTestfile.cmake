# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("core")
subdirs("mem")
subdirs("cache")
subdirs("cpu")
subdirs("persist")
subdirs("runtime")
subdirs("workloads")
subdirs("sanitizer")
subdirs("integration")
subdirs("crash")
subdirs("fuzz")
