/**
 * Unit tests for the fuzzer's decision logs and the adversary's
 * record/replay modes: serialization round-trips, malformed input
 * dies with a line number, and a recorded schedule replays to the
 * exact same delays query by query.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fuzz/adversary.hh"
#include "fuzz/decision.hh"
#include "sim/event_queue.hh"

namespace strand
{
namespace
{

TEST(FuzzDecision, SiteNamesRoundTrip)
{
    for (unsigned i = 0; i < numFuzzSites; ++i) {
        FuzzSite site = static_cast<FuzzSite>(i);
        auto parsed = fuzzSiteFromName(fuzzSiteName(site));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, site);
    }
    EXPECT_FALSE(fuzzSiteFromName("no-such-site").has_value());
}

TEST(FuzzDecision, SerializeParseRoundTrip)
{
    DecisionLog log = {
        {FuzzSite::IntelIssue, 0, 0, 1},
        {FuzzSite::StrandIssue, 3, 17, nsToTicks(2500)},
        {FuzzSite::SbuIssue, 1, 2, 42},
        {FuzzSite::Writeback, 2, 9, nsToTicks(20)},
    };
    auto parsed = parseDecisions(serializeDecisions(log));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, log);
}

TEST(FuzzDecision, EmptyLogRoundTrips)
{
    auto parsed = parseDecisions(serializeDecisions({}));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->empty());
}

TEST(FuzzDecision, MalformedLinesRejectWithContext)
{
    std::string error;
    EXPECT_FALSE(parseDecisions("bogus-site 0 0 5", &error));
    EXPECT_NE(error.find("bogus-site"), std::string::npos);

    error.clear();
    // Missing the delay field on line 2.
    EXPECT_FALSE(
        parseDecisions("writeback 0 0 5\nwriteback 1 1\n", &error));
    EXPECT_NE(error.find('2'), std::string::npos);

    EXPECT_FALSE(parseDecisions("writeback 0 zero 5"));
}

TEST(FuzzAdversary, RecordingIsSeedDeterministic)
{
    AdversaryParams params;
    params.seed = 0xfeed;
    params.deferChance = 0.5;

    auto drive = [&params] {
        EventQueue eq;
        DrainAdversary adv = DrainAdversary::recording(params);
        for (unsigned q = 0; q < 64; ++q) {
            adv.consider(eq, FuzzSite::SbuIssue, q % 3, [] {});
        }
        return adv.log();
    };
    DecisionLog first = drive();
    DecisionLog second = drive();
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty()); // deferChance 0.5 over 64 queries
}

TEST(FuzzAdversary, ReplayAppliesExactlyTheLog)
{
    AdversaryParams params;
    params.seed = 0x5eed;
    params.deferChance = 0.4;

    EventQueue recordEq;
    DrainAdversary rec = DrainAdversary::recording(params);
    std::vector<Tick> recorded;
    for (unsigned q = 0; q < 48; ++q) {
        recorded.push_back(rec.consider(
            recordEq, FuzzSite::IntelIssue, q % 2, [] {}));
    }

    // The same query sequence against a replaying adversary returns
    // the identical delay at every step; queries past the log allow.
    EventQueue replayEq;
    DrainAdversary rep = DrainAdversary::replaying(rec.log());
    for (unsigned q = 0; q < 48; ++q) {
        EXPECT_EQ(rep.consider(replayEq, FuzzSite::IntelIssue, q % 2,
                               [] {}),
                  recorded[q])
            << "query " << q;
    }
    EXPECT_EQ(rep.consider(replayEq, FuzzSite::IntelIssue, 0, [] {}),
              0u);
    // A different site never matches the logged decisions.
    EXPECT_EQ(rep.consider(replayEq, FuzzSite::Writeback, 0, [] {}),
              0u);
}

TEST(FuzzAdversary, StateRoundTripReplaysTheSameSuffix)
{
    AdversaryParams params;
    params.seed = 0xfeed;
    params.deferChance = 0.5;
    EventQueue eq;
    DrainAdversary adv = DrainAdversary::recording(params);
    for (unsigned q = 0; q < 32; ++q)
        adv.consider(eq, FuzzSite::SbuIssue, q % 3, [] {});
    DrainAdversary::State mid = adv.snapshotState();
    const std::size_t prefix = mid.decisions.size();

    auto drive = [&] {
        for (unsigned q = 0; q < 32; ++q)
            adv.consider(eq, FuzzSite::Writeback, q % 2, [] {});
        return adv.log();
    };
    DecisionLog first = drive();
    adv.restoreState(mid);
    DecisionLog second = drive();
    EXPECT_EQ(first, second)
        << "restoring mid-run state must replay the identical "
           "decision suffix";
    EXPECT_EQ(adv.queriesSeen(), 64u);

    // Reseeding from the same prefix explores a different suffix
    // while the already-recorded prefix stays intact.
    adv.restoreState(mid);
    adv.reseed(0xb4a2c9);
    DecisionLog branched = drive();
    EXPECT_NE(branched, first);
    ASSERT_GE(branched.size(), prefix);
    EXPECT_TRUE(std::equal(branched.begin(),
                           branched.begin() +
                               static_cast<std::ptrdiff_t>(prefix),
                           first.begin()))
        << "a branch must keep the warm prefix's decisions";
}

TEST(FuzzAdversary, QueryHookSeesEveryQuery)
{
    AdversaryParams params;
    params.seed = 0x11;
    EventQueue eq;
    DrainAdversary adv = DrainAdversary::recording(params);
    std::vector<std::uint64_t> seen;
    adv.setQueryHook(
        [&](std::uint64_t queries) { seen.push_back(queries); });
    for (unsigned q = 0; q < 5; ++q)
        adv.consider(eq, FuzzSite::IntelIssue, 0, [] {});
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(FuzzAdversary, SubLogIsALegalSchedule)
{
    // Dropping entries must only turn holds into allows — the
    // property ddmin shrinking rests on.
    AdversaryParams params;
    params.seed = 0xabc;
    params.deferChance = 0.6;

    EventQueue eq;
    DrainAdversary rec = DrainAdversary::recording(params);
    for (unsigned q = 0; q < 32; ++q)
        rec.consider(eq, FuzzSite::Writeback, 0, [] {});
    DecisionLog full = rec.log();
    ASSERT_GE(full.size(), 4u);

    DecisionLog half(full.begin(),
                     full.begin() +
                         static_cast<std::ptrdiff_t>(full.size() / 2));
    EventQueue eq2;
    DrainAdversary rep = DrainAdversary::replaying(half);
    for (unsigned q = 0; q < 32; ++q) {
        Tick delay =
            rep.consider(eq2, FuzzSite::Writeback, 0, [] {});
        bool inHalf = false;
        for (const FuzzDecision &d : half)
            inHalf |= d.query == q;
        EXPECT_EQ(delay > 0, inHalf) << "query " << q;
    }
}

} // namespace
} // namespace strand
