# Empty dependencies file for test_fuzz_trial.
# This may be replaced when dependencies are built.
