file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_trial.dir/fuzz_trial_test.cc.o"
  "CMakeFiles/test_fuzz_trial.dir/fuzz_trial_test.cc.o.d"
  "test_fuzz_trial"
  "test_fuzz_trial.pdb"
  "test_fuzz_trial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_trial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
