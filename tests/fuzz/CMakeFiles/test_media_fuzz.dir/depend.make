# Empty dependencies file for test_media_fuzz.
# This may be replaced when dependencies are built.
