file(REMOVE_RECURSE
  "CMakeFiles/test_media_fuzz.dir/media_fuzz_test.cc.o"
  "CMakeFiles/test_media_fuzz.dir/media_fuzz_test.cc.o.d"
  "test_media_fuzz"
  "test_media_fuzz.pdb"
  "test_media_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_media_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
