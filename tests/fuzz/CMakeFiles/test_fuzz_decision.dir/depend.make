# Empty dependencies file for test_fuzz_decision.
# This may be replaced when dependencies are built.
