file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_decision.dir/decision_test.cc.o"
  "CMakeFiles/test_fuzz_decision.dir/decision_test.cc.o.d"
  "test_fuzz_decision"
  "test_fuzz_decision.pdb"
  "test_fuzz_decision[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
