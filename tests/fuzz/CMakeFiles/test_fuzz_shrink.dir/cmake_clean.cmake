file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_shrink.dir/shrink_test.cc.o"
  "CMakeFiles/test_fuzz_shrink.dir/shrink_test.cc.o.d"
  "test_fuzz_shrink"
  "test_fuzz_shrink.pdb"
  "test_fuzz_shrink[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_shrink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
