# Empty dependencies file for test_fuzz_shrink.
# This may be replaced when dependencies are built.
