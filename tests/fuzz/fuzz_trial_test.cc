/**
 * End-to-end tests of the fuzz-trial machinery.
 *
 *  - Replay determinism: a trial is a pure function of its spec, and
 *    replaying one decision log twice yields byte-identical outcomes
 *    (the property the shrinker's predicate rests on).
 *  - Planted-bug convergence: an IntelEngine with the test-only
 *    plantedEpochBug (an SFENCE miscounts adversarially held CLWBs
 *    as complete) fails ONLY under particular schedules; the
 *    campaign must catch it and ddmin must reduce the schedule to a
 *    handful of causal holds, emitting a replayable reproducer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/campaign.hh"
#include "fuzz/repro.hh"

namespace strand
{
namespace
{

FuzzTrialSpec
lightSpec()
{
    FuzzTrialSpec spec;
    spec.kind = WorkloadKind::Queue;
    spec.design = HwDesign::StrandWeaver;
    spec.model = PersistencyModel::Txn;
    spec.numThreads = 2;
    spec.opsPerThread = 8;
    spec.seed = 0x7e57;
    return spec;
}

TEST(FuzzTrial, TrialsAreSeedDeterministic)
{
    FuzzTrialResult first = runFuzzTrial(lightSpec());
    FuzzTrialResult second = runFuzzTrial(lightSpec());

    EXPECT_EQ(first.decisions, second.decisions);
    EXPECT_EQ(first.queries, second.queries);
    EXPECT_EQ(first.tornWords, second.tornWords);
    EXPECT_EQ(first.traceHash, second.traceHash);
    EXPECT_EQ(first.failed, second.failed);
    EXPECT_EQ(first.violation, second.violation);
    EXPECT_EQ(first.crashTick, second.crashTick);
    EXPECT_EQ(first.pointsChecked, second.pointsChecked);

    // The adversary actually perturbed the schedule, the trial
    // checked recovery along it, and replay tracked the recording.
    EXPECT_FALSE(first.decisions.empty());
    EXPECT_GT(first.pointsChecked, 0u);
    EXPECT_FALSE(first.replayDiverged);
    EXPECT_FALSE(first.failed) << first.violation;
}

TEST(FuzzTrial, ReplayingOneLogIsReproducible)
{
    FuzzTrialContext ctx = makeTrialContext(lightSpec());
    FuzzTrialResult trial = runFuzzTrial(lightSpec());

    FuzzReplayOutcome a =
        replayDecisions(ctx, trial.decisions, trial.tornWords);
    FuzzReplayOutcome b =
        replayDecisions(ctx, trial.decisions, trial.tornWords);
    EXPECT_EQ(a.traceHash, b.traceHash);
    EXPECT_EQ(a.pointsChecked, b.pointsChecked);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.endTick, b.endTick);

    // And a sub-log is still a legal, replayable schedule.
    DecisionLog half(
        trial.decisions.begin(),
        trial.decisions.begin() +
            static_cast<std::ptrdiff_t>(trial.decisions.size() / 2));
    FuzzReplayOutcome sub = replayDecisions(ctx, half, trial.tornWords);
    EXPECT_GT(sub.pointsChecked, 0u);
    EXPECT_FALSE(sub.failed) << sub.violation;
}

TEST(FuzzTrial, ForkedFastPathMatchesClassicOnPassingTrials)
{
    // The forked fast path runs the recording pass with injection
    // attached and the paged recovery scan. The injection observers
    // are pure, so the adversary's schedule — and with it every
    // field a campaign consumes — must match the classic
    // record-then-replay pair exactly.
    FuzzTrialSpec classicSpec = lightSpec();
    classicSpec.fork = false;
    FuzzTrialSpec forkedSpec = lightSpec();
    forkedSpec.fork = true;

    FuzzTrialResult classic = runFuzzTrial(classicSpec);
    FuzzTrialResult forked = runFuzzTrial(forkedSpec);

    ASSERT_FALSE(classic.failed) << classic.violation;
    EXPECT_FALSE(forked.failed) << forked.violation;
    EXPECT_EQ(forked.decisions, classic.decisions);
    EXPECT_EQ(forked.queries, classic.queries);
    EXPECT_EQ(forked.tornWords, classic.tornWords);
    EXPECT_EQ(forked.traceHash, classic.traceHash);
    EXPECT_EQ(forked.pointsChecked, classic.pointsChecked);
    EXPECT_EQ(forked.pointsFailed, classic.pointsFailed);
    EXPECT_FALSE(forked.replayDiverged);

    // The speedup mechanism: one simulation run instead of two.
    EXPECT_LT(forked.hostEvents, classic.hostEvents);
    EXPECT_LT(forked.simOps, classic.simOps);
}

TEST(FuzzTrial, ForkedFailingTrialFallsBackToClassicReplay)
{
    // A failing forked trial re-runs through the classic replay
    // path, so the reported failure is the oracle's — replayable
    // from (seed, log) and shrinkable exactly as in classic mode.
    FuzzTrialSpec classicSpec = lightSpec();
    classicSpec.design = HwDesign::NonAtomic;
    classicSpec.fork = false;
    FuzzTrialSpec forkedSpec = classicSpec;
    forkedSpec.fork = true;

    FuzzTrialResult classic = runFuzzTrial(classicSpec);
    FuzzTrialResult forked = runFuzzTrial(forkedSpec);

    ASSERT_TRUE(classic.failed);
    EXPECT_TRUE(forked.failed);
    EXPECT_FALSE(forked.replayDiverged);
    EXPECT_EQ(forked.violation, classic.violation);
    EXPECT_EQ(forked.crashTick, classic.crashTick);
    EXPECT_EQ(forked.decisions, classic.decisions);
    EXPECT_EQ(forked.traceHash, classic.traceHash);
    EXPECT_EQ(forked.pointsChecked, classic.pointsChecked);
    EXPECT_EQ(forked.pointsFailed, classic.pointsFailed);
}

TEST(FuzzTrial, ForkBranchingLeavesTheMainScheduleUntouched)
{
    // Branch suffixes are explored from restored machine snapshots
    // AFTER the main schedule completes; nothing they do may leak
    // into the fields a campaign consumes for the main schedule.
    FuzzTrialSpec plain = lightSpec();
    plain.fork = true;
    plain.forkBranches = 0;
    FuzzTrialSpec branched = lightSpec();
    branched.fork = true;
    branched.forkBranches = 3;

    FuzzTrialResult base = runFuzzTrial(plain);
    FuzzTrialResult withBranches = runFuzzTrial(branched);

    ASSERT_FALSE(base.failed) << base.violation;
    ASSERT_FALSE(withBranches.failed) << withBranches.violation;
    EXPECT_EQ(withBranches.decisions, base.decisions);
    EXPECT_EQ(withBranches.queries, base.queries);
    EXPECT_EQ(withBranches.traceHash, base.traceHash);
    EXPECT_EQ(withBranches.pointsChecked, base.pointsChecked);
    EXPECT_EQ(withBranches.tornWords, base.tornWords);
    EXPECT_EQ(withBranches.failingBranch, 0u);
    EXPECT_EQ(base.branchesExplored, 0u);
    EXPECT_EQ(withBranches.branchesExplored, 3u);
    // Branch tails are real simulation work, visible in the host
    // observability counters.
    EXPECT_GT(withBranches.hostEvents, base.hostEvents);
    EXPECT_GT(withBranches.simOps, base.simOps);
}

TEST(FuzzTrial, FailingBranchIsConfirmedThroughTheOraclePath)
{
    // A schedule-dependent bug that the main schedule misses but a
    // forked suffix hits: the planted epoch bug at a hold rate low
    // enough (2%) that the main schedule stays clean at this seed,
    // while branch reseeding finds a failing suffix from the same
    // warm prefix. The branch failure must come back confirmed by
    // the tick-zero replay of its full decision log — the predicate
    // the shrinker uses — with no divergence.
    FuzzTrialSpec spec;
    spec.kind = WorkloadKind::Queue;
    spec.design = HwDesign::IntelX86;
    spec.model = PersistencyModel::Txn;
    spec.numThreads = 2;
    spec.opsPerThread = 10;
    spec.experiment.engine.plantedEpochBug = true;
    spec.adversary.deferChance = 0.02;
    spec.seed = 3;
    spec.fork = true;

    spec.forkBranches = 0;
    FuzzTrialResult main0 = runFuzzTrial(spec);
    ASSERT_FALSE(main0.failed)
        << "precondition: the main schedule must pass at this seed: "
        << main0.violation;

    spec.forkBranches = 4;
    FuzzTrialResult branched = runFuzzTrial(spec);
    ASSERT_TRUE(branched.failed)
        << "a forked suffix must catch the planted bug";
    EXPECT_GT(branched.failingBranch, 0u);
    EXPECT_FALSE(branched.replayDiverged)
        << "replaying the branch log from tick zero must reproduce "
           "the restored-snapshot execution";
    EXPECT_FALSE(branched.violation.empty());
    EXPECT_FALSE(branched.decisions.empty());
    EXPECT_GT(branched.pointsFailed, 0u);
    // Exploration stops at the first failing branch.
    EXPECT_EQ(branched.branchesExplored, branched.failingBranch);

    // The reported decision log IS the reproducer: replaying it
    // classically (the shrinker's predicate) fails the same way.
    FuzzTrialContext ctx = makeTrialContext(spec);
    FuzzReplayOutcome replay = replayDecisions(
        ctx, branched.decisions, branched.tornWords);
    EXPECT_TRUE(replay.failed);
    EXPECT_EQ(replay.traceHash, branched.traceHash);
}

TEST(FuzzTrial, ForkBranchingIsSeedDeterministic)
{
    FuzzTrialSpec spec = lightSpec();
    spec.fork = true;
    spec.forkBranches = 2;
    FuzzTrialResult a = runFuzzTrial(spec);
    FuzzTrialResult b = runFuzzTrial(spec);
    EXPECT_EQ(a.decisions, b.decisions);
    EXPECT_EQ(a.traceHash, b.traceHash);
    EXPECT_EQ(a.branchesExplored, b.branchesExplored);
    EXPECT_EQ(a.failingBranch, b.failingBranch);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.violation, b.violation);
    EXPECT_EQ(a.hostEvents, b.hostEvents);
    EXPECT_EQ(a.simOps, b.simOps);
}

TEST(FuzzTrial, NonAtomicViolationsAreFound)
{
    FuzzTrialSpec spec = lightSpec();
    spec.design = HwDesign::NonAtomic;
    FuzzTrialResult result = runFuzzTrial(spec);
    EXPECT_TRUE(result.failed);
    EXPECT_FALSE(result.replayDiverged);
    EXPECT_FALSE(result.violation.empty());
}

TEST(FuzzTrial, PlantedBugIsCaughtAndShrunkToCausalHolds)
{
    FuzzCellConfig cfg;
    cfg.base.kind = WorkloadKind::Queue;
    cfg.base.design = HwDesign::IntelX86;
    cfg.base.model = PersistencyModel::Txn;
    cfg.base.numThreads = 2;
    cfg.base.opsPerThread = 10;
    cfg.base.experiment.engine.plantedEpochBug = true;
    cfg.trials = 1;
    cfg.seed = 0x9127;
    namespace fs = std::filesystem;
    fs::path dir =
        fs::temp_directory_path() / "sw_fuzz_planted_test";
    fs::remove_all(dir);
    cfg.reproDir = dir.string();

    FuzzCellResult result = runFuzzCell(cfg);
    ASSERT_EQ(result.failingTrials, 1u);
    ASSERT_EQ(result.failures.size(), 1u);
    const FuzzFailure &failure = result.failures.front();
    EXPECT_FALSE(failure.replayDiverged);
    // The raw adversarial schedule is large; the bug needs only a
    // few causal holds (acceptance bound: <= 10).
    EXPECT_GT(failure.rawDecisions, 10u);
    EXPECT_LE(failure.shrunkDecisions, 10u);
    EXPECT_GE(failure.shrunkDecisions, 1u)
        << "the planted bug requires a hold; an empty-schedule "
           "failure means it is not schedule-dependent";

    // The reproducer round-trips and replays to the same failure.
    ASSERT_FALSE(failure.reproPath.empty());
    std::ifstream in(failure.reproPath);
    ASSERT_TRUE(in.good());
    std::stringstream text;
    text << in.rdbuf();
    std::string error;
    auto repro = parseRepro(text.str(), &error);
    ASSERT_TRUE(repro.has_value()) << error;
    EXPECT_EQ(repro->spec.design, HwDesign::IntelX86);
    EXPECT_EQ(repro->decisions.size(), failure.shrunkDecisions);
    EXPECT_TRUE(repro->spec.experiment.engine.plantedEpochBug);

    // The shrunk schedule must still violate recovery; ddmin
    // preserves "fails", not the exact first-violation message of
    // the unshrunk schedule.
    FuzzReplayOutcome replayed = replayReproFile(failure.reproPath);
    EXPECT_TRUE(replayed.failed);
    EXPECT_GT(replayed.pointsFailed, 0u);
    fs::remove_all(dir);
}

TEST(FuzzTrial, IntelWithoutThePlantedBugPasses)
{
    // Sanity for the planted-bug test: the identical campaign with
    // the flag off finds nothing, so the catch above is the bug, not
    // fuzzer noise.
    FuzzCellConfig cfg;
    cfg.base.kind = WorkloadKind::Queue;
    cfg.base.design = HwDesign::IntelX86;
    cfg.base.model = PersistencyModel::Txn;
    cfg.base.numThreads = 2;
    cfg.base.opsPerThread = 10;
    cfg.trials = 1;
    cfg.seed = 0x9127;
    FuzzCellResult result = runFuzzCell(cfg);
    EXPECT_TRUE(result.allPassed())
        << result.failures.front().violation;
}

} // namespace
} // namespace strand
