# CMake generated Testfile for 
# Source directory: /root/repo/tests/fuzz
# Build directory: /root/repo/tests/fuzz
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/fuzz/test_fuzz_decision[1]_include.cmake")
include("/root/repo/tests/fuzz/test_fuzz_shrink[1]_include.cmake")
include("/root/repo/tests/fuzz/test_fuzz_trial[1]_include.cmake")
include("/root/repo/tests/fuzz/test_media_fuzz[1]_include.cmake")
