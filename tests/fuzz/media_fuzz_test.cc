/**
 * @file
 * Media-fault fuzzing: the adversary drives poison / bit-flip /
 * partial-drain faults from recorded decisions, so fault sets are
 * seed-deterministic, replayable, and shrinkable by ddmin exactly
 * like schedule perturbations.
 *
 * The centerpiece is the checksum regression pair: with per-entry
 * checksum verification OFF (the pre-checksum log layout), a
 * flips-only campaign finds a trial where recovery trusts a flipped
 * entry and silently corrupts the heap; the SAME trial passes with
 * verification ON, and the failing fault set shrinks to a 1-minimal
 * reproducer that round-trips through the .repro format.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/repro.hh"
#include "fuzz/shrink.hh"

namespace strand
{
namespace
{

FuzzTrialSpec
mediaSpec(std::uint64_t seed = 0x7e57)
{
    FuzzTrialSpec spec;
    spec.kind = WorkloadKind::Queue;
    spec.design = HwDesign::StrandWeaver;
    spec.model = PersistencyModel::Txn;
    spec.numThreads = 2;
    spec.opsPerThread = 8;
    spec.seed = seed;
    spec.media.poisonLines = 1;
    spec.media.bitFlips = 1;
    spec.media.dropAdmissions = 2;
    return spec;
}

bool
hasMediaDecision(const DecisionLog &log)
{
    for (const FuzzDecision &d : log) {
        if (d.site == FuzzSite::MediaPoison ||
            d.site == FuzzSite::MediaFlip ||
            d.site == FuzzSite::MediaDrop) {
            return true;
        }
    }
    return false;
}

TEST(MediaFuzz, MediaTrialsAreSeedDeterministic)
{
    FuzzTrialResult first = runFuzzTrial(mediaSpec());
    FuzzTrialResult second = runFuzzTrial(mediaSpec());

    EXPECT_EQ(first.decisions, second.decisions);
    EXPECT_EQ(first.queries, second.queries);
    EXPECT_EQ(first.tornWords, second.tornWords);
    EXPECT_EQ(first.traceHash, second.traceHash);
    EXPECT_EQ(first.failed, second.failed);
    EXPECT_EQ(first.violation, second.violation);
    EXPECT_EQ(first.pointsChecked, second.pointsChecked);
    EXPECT_GT(first.pointsChecked, 0u);
    EXPECT_FALSE(first.replayDiverged);
}

TEST(MediaFuzz, MediaDecisionsRideTheDecisionLog)
{
    // Media opportunities fire at the adversary's mediaChance; over
    // a handful of seeds the recorded logs must actually contain
    // media-site decisions (otherwise nothing here is being tested),
    // and the media stream must leave the SCHEDULE untouched: the
    // same spec with media off perturbs the run identically.
    bool sawMedia = false;
    for (std::uint64_t seed = 1; seed <= 6 && !sawMedia; ++seed)
        sawMedia =
            hasMediaDecision(runFuzzTrial(mediaSpec(seed)).decisions);
    EXPECT_TRUE(sawMedia)
        << "no media decision recorded across 6 seeds";

    FuzzTrialSpec plain = mediaSpec();
    plain.media = MediaFaultConfig{};
    FuzzTrialResult withMedia = runFuzzTrial(mediaSpec());
    FuzzTrialResult without = runFuzzTrial(plain);
    DecisionLog scheduleOnly;
    for (const FuzzDecision &d : withMedia.decisions)
        if (d.site != FuzzSite::MediaPoison &&
            d.site != FuzzSite::MediaFlip &&
            d.site != FuzzSite::MediaDrop)
            scheduleOnly.push_back(d);
    EXPECT_EQ(scheduleOnly, without.decisions);
}

TEST(MediaFuzz, ChecksummedRecoveryWithstandsMediaFaults)
{
    // With verification on (the default), a recoverable design must
    // salvage every media-faulted injection: quarantines are fine,
    // silent corruption is not.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        FuzzTrialResult result = runFuzzTrial(mediaSpec(seed));
        EXPECT_FALSE(result.failed)
            << "seed " << seed << ": " << result.violation;
        EXPECT_FALSE(result.replayDiverged);
    }
}

TEST(MediaFuzz, UncheckedFlipsShrinkToAMinimalMediaRepro)
{
    // Scan seeds for a flips-only trial that fails with checksum
    // verification off. Deterministic: the first failing seed is a
    // pure function of the spec stream.
    std::optional<FuzzTrialSpec> failingSpec;
    FuzzTrialResult failure;
    for (std::uint64_t seed = 1; seed <= 32 && !failingSpec; ++seed) {
        FuzzTrialSpec spec = mediaSpec(seed);
        spec.media.poisonLines = 0;
        spec.media.dropAdmissions = 0;
        spec.media.bitFlips = 2;
        spec.verifyChecksums = false;
        FuzzTrialResult result = runFuzzTrial(spec);
        if (result.failed) {
            failingSpec = spec;
            failure = result;
        }
    }
    ASSERT_TRUE(failingSpec.has_value())
        << "no unchecked flips-only failure in 32 seeds — the "
           "regression pair has lost its subject";
    EXPECT_FALSE(failure.replayDiverged);

    // The same trial with verification ON passes: the checksum is
    // what stands between this fault set and silent corruption.
    FuzzTrialSpec checkedSpec = *failingSpec;
    checkedSpec.verifyChecksums = true;
    FuzzTrialResult checked = runFuzzTrial(checkedSpec);
    EXPECT_FALSE(checked.failed) << checked.violation;

    // ddmin reduces the failing log; the minimal reproducer must
    // still fail and must retain at least one media-flip decision —
    // the fault, not the schedule, is the cause.
    FuzzTrialContext ctx = makeTrialContext(*failingSpec);
    ShrinkResult shrunk =
        shrinkDecisions(ctx, failure.decisions, failure.tornWords);
    ASSERT_TRUE(shrunk.stillFails);
    EXPECT_LE(shrunk.log.size(), failure.decisions.size());
    EXPECT_LE(shrunk.log.size(), 10u);
    bool hasFlip = false;
    for (const FuzzDecision &d : shrunk.log)
        hasFlip = hasFlip || d.site == FuzzSite::MediaFlip;
    EXPECT_TRUE(hasFlip)
        << "shrunk log lost every media-flip decision";

    // Round trip: the .repro records the media maxima and the
    // checksums-off switch, and replaying the file reproduces the
    // violation.
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "sw_media_fuzz_test";
    fs::remove_all(dir);
    FuzzRepro repro;
    repro.spec = *failingSpec;
    repro.decisions = shrunk.log;
    repro.tornWords = failure.tornWords;
    repro.violation = failure.violation;
    std::string path = writeRepro(repro, dir.string());
    ASSERT_FALSE(path.empty());

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream text;
    text << in.rdbuf();
    EXPECT_NE(text.str().find("mediaflips 2"), std::string::npos);
    EXPECT_NE(text.str().find("checksums 0"), std::string::npos);
    std::string error;
    auto parsed = parseRepro(text.str(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->spec.media.bitFlips, 2u);
    EXPECT_FALSE(parsed->spec.verifyChecksums);
    EXPECT_EQ(parsed->decisions, shrunk.log);

    FuzzReplayOutcome replayed = replayReproFile(path);
    EXPECT_TRUE(replayed.failed);
    EXPECT_GT(replayed.pointsFailed, 0u);
    fs::remove_all(dir);
}

} // namespace
} // namespace strand
