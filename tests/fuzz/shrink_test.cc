/**
 * Unit tests for the ddmin schedule reducer, against synthetic
 * failure predicates whose minimal failing cores are known exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "fuzz/shrink.hh"

namespace strand
{
namespace
{

DecisionLog
makeLog(std::size_t n)
{
    DecisionLog log;
    for (std::size_t i = 0; i < n; ++i) {
        log.push_back({FuzzSite::SbuIssue, 0, i, 100 + i});
    }
    return log;
}

bool
contains(const DecisionLog &log, const FuzzDecision &d)
{
    return std::find(log.begin(), log.end(), d) != log.end();
}

TEST(FuzzShrink, ConvergesToTheCausalPair)
{
    DecisionLog log = makeLog(64);
    const FuzzDecision a = log[7];
    const FuzzDecision b = log[41];
    auto fails = [&](const DecisionLog &candidate) {
        return contains(candidate, a) && contains(candidate, b);
    };

    ShrinkResult result = shrinkLog(log, fails);
    EXPECT_TRUE(result.stillFails);
    EXPECT_EQ(result.log.size(), 2u);
    EXPECT_TRUE(contains(result.log, a));
    EXPECT_TRUE(contains(result.log, b));
    EXPECT_GT(result.replays, 0u);
}

TEST(FuzzShrink, SingleCauseShrinksToOneEntry)
{
    DecisionLog log = makeLog(33);
    const FuzzDecision cause = log[20];
    auto fails = [&](const DecisionLog &candidate) {
        return contains(candidate, cause);
    };
    ShrinkResult result = shrinkLog(log, fails);
    EXPECT_TRUE(result.stillFails);
    ASSERT_EQ(result.log.size(), 1u);
    EXPECT_EQ(result.log[0], cause);
}

TEST(FuzzShrink, ScheduleIndependentFailureShrinksToEmpty)
{
    // A bug that fails with no perturbation at all (NON-ATOMIC, the
    // plain-HOPS modeling gap) must reduce to the empty schedule.
    DecisionLog log = makeLog(16);
    ShrinkResult result =
        shrinkLog(log, [](const DecisionLog &) { return true; });
    EXPECT_TRUE(result.stillFails);
    EXPECT_TRUE(result.log.empty());
}

TEST(FuzzShrink, NonFailingInputIsReportedNotShrunk)
{
    DecisionLog log = makeLog(8);
    ShrinkResult result =
        shrinkLog(log, [](const DecisionLog &) { return false; });
    EXPECT_FALSE(result.stillFails);
    EXPECT_EQ(result.log, log);
}

TEST(FuzzShrink, RespectsTheReplayBudget)
{
    DecisionLog log = makeLog(256);
    const FuzzDecision a = log[3];
    unsigned calls = 0;
    auto fails = [&](const DecisionLog &candidate) {
        ++calls;
        return contains(candidate, a);
    };
    ShrinkResult result = shrinkLog(log, fails, 10);
    EXPECT_LE(result.replays, 10u);
    EXPECT_LE(calls, 11u); // budget + the initial confirmation
    // Whatever the budget allowed must still be a failing schedule.
    EXPECT_TRUE(result.stillFails);
    EXPECT_TRUE(contains(result.log, a));
}

} // namespace
} // namespace strand
