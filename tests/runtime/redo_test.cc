/**
 * @file
 * Tests for redo logging under strand persistency — the paper's §VII
 * future-work sketch, implemented here for failure-atomic
 * transactions: the transaction's redo entries flush concurrently on
 * its strand, a persist barrier orders them before the commit
 * marker, and the in-place updates follow the marker. Recovery
 * replays committed transactions forward.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/system.hh"
#include "runtime/instrumentor.hh"
#include "runtime/recorder.hh"
#include "runtime/recovery.hh"

namespace strand
{
namespace
{

constexpr Addr dataA = pmBase + 0x2000000;
constexpr Addr dataB = pmBase + 0x2000040;

RegionTrace
twoStoreTrace()
{
    TraceRecorder rec(1);
    rec.preload(dataA, 5);
    rec.preload(dataB, 6);
    rec.lockAcquire(0, 1);
    rec.regionBegin(0);
    rec.write(0, dataA, 50);
    rec.write(0, dataB, 60);
    rec.regionEnd(0);
    rec.lockRelease(0, 1);
    return rec.takeTrace();
}

InstrumentorParams
redoParams(HwDesign design = HwDesign::StrandWeaver)
{
    InstrumentorParams p;
    p.design = design;
    p.model = PersistencyModel::Txn;
    p.logStyle = LogStyle::Redo;
    return p;
}

TEST(RedoLogging, RequiresTransactions)
{
    InstrumentorParams p = redoParams();
    p.model = PersistencyModel::Sfr;
    EXPECT_THROW(Instrumentor{p}, std::invalid_argument);
}

TEST(RedoLogging, LogsNewValuesAndDefersUpdates)
{
    Instrumentor instr(redoParams());
    auto streams = instr.lower(twoStoreTrace());
    ASSERT_EQ(streams.size(), 1u);
    const OpStream &s = streams[0];
    LogLayout layout;

    // The redo entries hold the NEW values.
    bool sawNewValueInLog = false;
    for (const Op &op : s) {
        if (op.type == OpType::Store && op.value == 50 &&
            op.addr < layout.heapBase()) {
            sawNewValueInLog = true;
        }
    }
    EXPECT_TRUE(sawNewValueInLog);

    // The in-place update of dataA appears AFTER the commit-marker
    // store of the region's terminating entry.
    std::ptrdiff_t updatePos = -1, markerPos = -1;
    for (std::ptrdiff_t i = 0; i < std::ssize(s); ++i) {
        const Op &op = s[i];
        if (op.type != OpType::Store)
            continue;
        if (op.addr == dataA)
            updatePos = i;
        if (op.value == 1 &&
            (op.addr & (lineBytes - 1)) == log_field::commitMarker &&
            markerPos < 0) {
            markerPos = i;
        }
    }
    ASSERT_GE(updatePos, 0);
    ASSERT_GE(markerPos, 0);
    EXPECT_GT(updatePos, markerPos);

    // A persist barrier separates marker and updates (StrandWeaver).
    bool barrierBetween = false;
    for (std::ptrdiff_t i = markerPos; i < updatePos; ++i)
        if (s[i].type == OpType::PersistBarrier)
            barrierBetween = true;
    EXPECT_TRUE(barrierBetween);
}

TEST(RedoLogging, EntriesShareOneStrandWithoutInternalBarriers)
{
    Instrumentor instr(redoParams());
    TraceRecorder rec(1);
    rec.preload(dataA, 1);
    rec.lockAcquire(0, 1);
    rec.regionBegin(0);
    for (int i = 0; i < 4; ++i)
        rec.write(0, dataA + 0x80 * i, 100 + i);
    rec.regionEnd(0);
    rec.lockRelease(0, 1);
    auto streams = instr.lower(rec.takeTrace());
    const OpStream &s = streams[0];

    // Between the region's first log-entry store and the commit
    // marker there must be no PersistBarrier or NewStrand: the
    // transaction's redo entries flush concurrently on one strand.
    LogLayout layout;
    std::ptrdiff_t firstEntry = -1, marker = -1;
    for (std::ptrdiff_t i = 0; i < std::ssize(s); ++i) {
        if (s[i].type == OpType::Store &&
            s[i].addr >= layout.logBase(0) &&
            s[i].addr < layout.heapBase() && firstEntry < 0) {
            firstEntry = i;
        }
        if (s[i].type == OpType::Store && s[i].value == 1 &&
            (s[i].addr & (lineBytes - 1)) == log_field::commitMarker) {
            marker = i;
            break;
        }
    }
    ASSERT_GE(firstEntry, 0);
    ASSERT_GE(marker, 0);
    unsigned barriers = 0, strands = 0;
    for (std::ptrdiff_t i = firstEntry; i < marker; ++i) {
        if (s[i].type == OpType::PersistBarrier)
            ++barriers;
        if (s[i].type == OpType::NewStrand)
            ++strands;
    }
    EXPECT_EQ(strands, 0u);
    EXPECT_EQ(barriers, 1u); // only the pre-marker barrier
}

class RedoCrash : public ::testing::TestWithParam<HwDesign>
{
};

TEST_P(RedoCrash, AtomicityHoldsAtEveryCrashPoint)
{
    // Two-account transfer under redo logging: the sum survives
    // crashes at every persist boundary.
    TraceRecorder rec(2);
    rec.preload(dataA, 100);
    rec.preload(dataB, 100);
    for (int round = 0; round < 6; ++round) {
        for (CoreId t = 0; t < 2; ++t) {
            rec.lockAcquire(t, 1);
            rec.regionBegin(t);
            std::uint64_t a = rec.read(t, dataA);
            std::uint64_t b = rec.read(t, dataB);
            rec.write(t, dataA, a - 1);
            rec.write(t, dataB, b + 1);
            rec.regionEnd(t);
            rec.lockRelease(t, 1);
        }
    }
    auto preload = rec.preloadedWords();
    RegionTrace trace = rec.takeTrace();

    InstrumentorParams p = redoParams(GetParam());
    std::vector<Tick> persistTicks;
    {
        Instrumentor instr(p);
        SystemConfig cfg;
        cfg.numCores = 2;
        cfg.design = GetParam();
        System sys(cfg);
        sys.seedImage(preload);
        sys.loadStreams(instr.lower(trace));
        sys.run();
        EXPECT_EQ(sys.memory().readPersisted(dataA) +
                      sys.memory().readPersisted(dataB),
                  200u);
        for (const PersistRecord &rec2 : sys.persistTrace())
            persistTicks.push_back(rec2.when);
    }

    RecoveryManager recovery{LogLayout{}};
    for (std::size_t i = 0; i < persistTicks.size();
         i += std::max<std::size_t>(1, persistTicks.size() / 24)) {
        Instrumentor instr(p);
        SystemConfig cfg;
        cfg.numCores = 2;
        cfg.design = GetParam();
        System sys(cfg);
        sys.seedImage(preload);
        sys.loadStreams(instr.lower(trace));
        sys.runUntil(persistTicks[i] + 1);
        sys.crash();
        recovery.recover(sys.memory(), 2);
        EXPECT_EQ(sys.memory().readPersisted(dataA) +
                      sys.memory().readPersisted(dataB),
                  200u)
            << "crash at " << persistTicks[i];
    }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, RedoCrash,
    ::testing::Values(HwDesign::IntelX86, HwDesign::StrandWeaver,
                      HwDesign::Hops),
    [](const ::testing::TestParamInfo<HwDesign> &info) {
        std::string name = hwDesignName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(RedoRecovery, ReplaysCommittedEntriesForward)
{
    LogLayout layout;
    MemoryImage img;
    // Committed region: two redo entries + TxEnd with marker; the
    // in-place updates never persisted.
    auto writeEntry = [&](std::uint64_t idx, LogType type, Addr addr,
                          std::uint64_t value, bool cm) {
        Addr base = layout.entryAddr(0, idx);
        img.writeDurable(base + log_field::type,
                         static_cast<std::uint64_t>(type));
        img.writeDurable(base + log_field::addr, addr);
        img.writeDurable(base + log_field::value, value);
        img.writeDurable(base + log_field::checksum,
                         entryChecksum(static_cast<std::uint64_t>(type),
                                       addr, value, 0, idx));
        img.writeDurable(base + log_field::seq, idx);
        img.writeDurable(base + log_field::valid, 1);
        img.writeDurable(base + log_field::commitMarker, cm ? 1 : 0);
    };
    writeEntry(0, LogType::RedoStore, dataA, 11, false);
    writeEntry(1, LogType::RedoStore, dataB, 22, false);
    writeEntry(2, LogType::TxEnd, 0, 0, true);

    RecoveryManager recovery{layout};
    auto report = recovery.recover(img, 1);
    EXPECT_EQ(img.readPersisted(dataA), 11u);
    EXPECT_EQ(img.readPersisted(dataB), 22u);
    EXPECT_EQ(report.entriesCommittedDuringRecovery, 3u);
}

TEST(RedoRecovery, DropsUncommittedEntries)
{
    LogLayout layout;
    MemoryImage img;
    img.writeDurable(dataA, 99);
    Addr base = layout.entryAddr(0, 0);
    img.writeDurable(base + log_field::type,
                     static_cast<std::uint64_t>(LogType::RedoStore));
    img.writeDurable(base + log_field::addr, dataA);
    img.writeDurable(base + log_field::value, 11);
    img.writeDurable(base + log_field::checksum,
                     entryChecksum(static_cast<std::uint64_t>(
                                       LogType::RedoStore),
                                   dataA, 11, 0, 0));
    img.writeDurable(base + log_field::seq, 0);
    img.writeDurable(base + log_field::valid, 1);

    RecoveryManager recovery{layout};
    auto report = recovery.recover(img, 1);
    // No marker: the update was held back, nothing to do.
    EXPECT_EQ(img.readPersisted(dataA), 99u);
    EXPECT_EQ(report.entriesRolledBack, 0u);
}

} // namespace
} // namespace strand
