# CMake generated Testfile for 
# Source directory: /root/repo/tests/runtime
# Build directory: /root/repo/tests/runtime
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/runtime/test_recorder[1]_include.cmake")
include("/root/repo/tests/runtime/test_instrumentor[1]_include.cmake")
include("/root/repo/tests/runtime/test_recovery[1]_include.cmake")
include("/root/repo/tests/runtime/test_recovery_wrap[1]_include.cmake")
include("/root/repo/tests/runtime/test_redo[1]_include.cmake")
include("/root/repo/tests/runtime/test_heap[1]_include.cmake")
