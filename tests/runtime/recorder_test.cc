/**
 * @file
 * Unit tests for the trace recorder: functional memory, undo-log old
 * values, region bracketing, lock tickets, and preloading.
 */

#include <gtest/gtest.h>

#include "runtime/recorder.hh"

namespace strand
{
namespace
{

constexpr Addr pmWord = pmBase + 0x100000;
constexpr Addr dramWord = dramBase + 0x1000;

TEST(Recorder, FunctionalReadWriteRoundTrip)
{
    TraceRecorder rec(2);
    EXPECT_EQ(rec.peek(pmWord), 0u);
    rec.write(0, pmWord, 42);
    EXPECT_EQ(rec.peek(pmWord), 42u);
    EXPECT_EQ(rec.read(1, pmWord), 42u);
}

TEST(Recorder, LoggedStoreCapturesOldValue)
{
    TraceRecorder rec(1);
    rec.write(0, pmWord, 1); // outside region: plain
    rec.regionBegin(0);
    rec.write(0, pmWord, 2); // logged
    rec.regionEnd(0);

    const ThreadTrace &trace = rec.threadTrace(0);
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace[0].kind, TraceEvent::Kind::PlainStore);
    EXPECT_EQ(trace[1].kind, TraceEvent::Kind::RegionBegin);
    EXPECT_EQ(trace[2].kind, TraceEvent::Kind::LoggedStore);
    EXPECT_EQ(trace[2].oldValue, 1u);
    EXPECT_EQ(trace[2].newValue, 2u);
    EXPECT_EQ(trace[3].kind, TraceEvent::Kind::RegionEnd);
}

TEST(Recorder, VolatileStoresAreNeverLogged)
{
    TraceRecorder rec(1);
    rec.regionBegin(0);
    rec.write(0, dramWord, 5);
    rec.regionEnd(0);
    EXPECT_EQ(rec.threadTrace(0)[1].kind,
              TraceEvent::Kind::PlainStore);
}

TEST(Recorder, RegionEndsAreGloballyNumbered)
{
    TraceRecorder rec(2);
    rec.regionBegin(0);
    rec.regionEnd(0);
    rec.regionBegin(1);
    rec.regionEnd(1);
    rec.regionBegin(0);
    rec.regionEnd(0);
    EXPECT_EQ(rec.threadTrace(0)[1].globalSeq, 0u);
    EXPECT_EQ(rec.threadTrace(1)[1].globalSeq, 1u);
    EXPECT_EQ(rec.threadTrace(0)[3].globalSeq, 2u);
    EXPECT_EQ(rec.regionsCompleted(), 3u);
}

TEST(Recorder, NestedRegionsPanic)
{
    TraceRecorder rec(1);
    rec.regionBegin(0);
    EXPECT_THROW(rec.regionBegin(0), std::logic_error);
    rec.regionEnd(0);
    EXPECT_THROW(rec.regionEnd(0), std::logic_error);
}

TEST(Recorder, LockTicketsFollowAcquisitionOrder)
{
    TraceRecorder rec(2);
    rec.lockAcquire(0, 9);
    rec.lockRelease(0, 9);
    rec.lockAcquire(1, 9);
    rec.lockRelease(1, 9);
    rec.lockAcquire(0, 3); // different lock: own ticket space
    EXPECT_EQ(rec.threadTrace(0)[0].ticket, 0u);
    EXPECT_EQ(rec.threadTrace(1)[0].ticket, 1u);
    EXPECT_EQ(rec.threadTrace(0)[2].ticket, 0u);
}

TEST(Recorder, PreloadBypassesTrace)
{
    TraceRecorder rec(1);
    rec.preload(pmWord, 77);
    EXPECT_EQ(rec.peek(pmWord), 77u);
    EXPECT_TRUE(rec.threadTrace(0).empty());
    EXPECT_EQ(rec.preloadedWords().at(wordAlign(pmWord)), 77u);

    // A logged store over preloaded data records the preloaded value
    // as the old value.
    rec.regionBegin(0);
    rec.write(0, pmWord, 78);
    EXPECT_EQ(rec.threadTrace(0)[1].oldValue, 77u);
}

TEST(Recorder, TakeTraceMovesAndResets)
{
    TraceRecorder rec(2);
    rec.compute(0, 10);
    rec.compute(1, 20);
    RegionTrace trace = rec.takeTrace();
    ASSERT_EQ(trace.threads.size(), 2u);
    EXPECT_EQ(trace.threads[0].size(), 1u);
    EXPECT_TRUE(rec.threadTrace(0).empty());
}

} // namespace
} // namespace strand
