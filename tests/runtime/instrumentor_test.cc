/**
 * @file
 * Unit tests for the lowering pass: per-design primitive sequences
 * (Figure 5), per-model commit strategies, and lowering statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/instrumentor.hh"
#include "runtime/recorder.hh"

namespace strand
{
namespace
{

constexpr Addr dataWord = pmBase + 0x2000000;

unsigned
count(const OpStream &stream, OpType type)
{
    return std::count_if(stream.begin(), stream.end(),
                         [type](const Op &op) {
                             return op.type == type;
                         });
}

/** A single region with one logged store, under one lock. */
RegionTrace
oneStoreTrace()
{
    TraceRecorder rec(1);
    rec.preload(dataWord, 5);
    rec.lockAcquire(0, 1);
    rec.regionBegin(0);
    rec.write(0, dataWord, 6);
    rec.regionEnd(0);
    rec.lockRelease(0, 1);
    return rec.takeTrace();
}

InstrumentorParams
makeParams(HwDesign design, PersistencyModel model)
{
    InstrumentorParams p;
    p.design = design;
    p.model = model;
    return p;
}

TEST(Instrumentor, StrandWeaverTxnShape)
{
    Instrumentor instr(
        makeParams(HwDesign::StrandWeaver, PersistencyModel::Txn));
    auto streams = instr.lower(oneStoreTrace());
    ASSERT_EQ(streams.size(), 1u);
    const OpStream &s = streams[0];

    // Log-entry creation + pairwise barrier + update + NewStrand.
    EXPECT_GT(count(s, OpType::PersistBarrier), 0u);
    EXPECT_GT(count(s, OpType::NewStrand), 0u);
    EXPECT_GT(count(s, OpType::JoinStrand), 0u);
    EXPECT_EQ(count(s, OpType::Sfence), 0u);
    EXPECT_EQ(count(s, OpType::Ofence), 0u);
    EXPECT_EQ(count(s, OpType::Dfence), 0u);

    // The data update and its flush appear, in order: the barrier
    // separating log flush from data store must come between.
    auto dataStore = std::find_if(s.begin(), s.end(), [](const Op &op) {
        return op.type == OpType::Store && op.addr == dataWord;
    });
    ASSERT_NE(dataStore, s.end());
    bool barrierBefore = false;
    for (auto it = s.begin(); it != dataStore; ++it)
        if (it->type == OpType::PersistBarrier)
            barrierBefore = true;
    EXPECT_TRUE(barrierBefore);
}

TEST(Instrumentor, IntelTxnUsesSfenceOnly)
{
    Instrumentor instr(
        makeParams(HwDesign::IntelX86, PersistencyModel::Txn));
    auto streams = instr.lower(oneStoreTrace());
    const OpStream &s = streams[0];
    EXPECT_GT(count(s, OpType::Sfence), 0u);
    EXPECT_EQ(count(s, OpType::PersistBarrier), 0u);
    EXPECT_EQ(count(s, OpType::NewStrand), 0u);
    EXPECT_EQ(count(s, OpType::JoinStrand), 0u);
}

TEST(Instrumentor, HopsUsesOfenceAndDfence)
{
    Instrumentor instr(
        makeParams(HwDesign::Hops, PersistencyModel::Txn));
    auto streams = instr.lower(oneStoreTrace());
    const OpStream &s = streams[0];
    EXPECT_GT(count(s, OpType::Ofence), 0u);
    EXPECT_GT(count(s, OpType::Dfence), 0u);
    EXPECT_EQ(count(s, OpType::Sfence), 0u);
    EXPECT_EQ(count(s, OpType::PersistBarrier), 0u);
}

TEST(Instrumentor, NonAtomicRemovesOnlyPairwiseOrdering)
{
    // §VI-A: the non-atomic design removes the ordering between log
    // entry creation and the in-place update. Synchronization-point
    // drains remain; only the pairwise primitives disappear.
    Instrumentor instr(
        makeParams(HwDesign::NonAtomic, PersistencyModel::Txn));
    auto streams = instr.lower(oneStoreTrace());
    const OpStream &s = streams[0];
    EXPECT_EQ(count(s, OpType::Sfence), 0u);
    EXPECT_EQ(count(s, OpType::PersistBarrier), 0u);
    EXPECT_EQ(count(s, OpType::Ofence), 0u);
    EXPECT_EQ(count(s, OpType::Dfence), 0u);
    EXPECT_GT(count(s, OpType::JoinStrand), 0u);
    // The logging itself still happens.
    EXPECT_GT(count(s, OpType::Clwb), 2u);

    // Contrast: StrandWeaver has strictly more ordering (the PBs).
    Instrumentor sw(
        makeParams(HwDesign::StrandWeaver, PersistencyModel::Txn));
    auto swStreams = sw.lower(oneStoreTrace());
    EXPECT_GT(count(swStreams[0], OpType::PersistBarrier), 0u);
}

TEST(Instrumentor, LogEntryWritesAllFieldsThenValid)
{
    Instrumentor instr(
        makeParams(HwDesign::StrandWeaver, PersistencyModel::Txn));
    auto streams = instr.lower(oneStoreTrace());
    const OpStream &s = streams[0];
    LogLayout layout;
    // First log entry is the region-begin entry; the store entry
    // follows. Find the store-entry's valid-field store and check
    // the old value was recorded before it.
    Addr entry = layout.entryAddr(0, 1);
    bool sawOldValue = false;
    bool sawValid = false;
    for (const Op &op : s) {
        if (op.type != OpType::Store)
            continue;
        if (op.addr == entry + log_field::value) {
            EXPECT_EQ(op.value, 5u); // preloaded old value
            EXPECT_FALSE(sawValid);
            sawOldValue = true;
        }
        if (op.addr == entry + log_field::valid && op.value == 1) {
            EXPECT_TRUE(sawOldValue);
            sawValid = true;
        }
    }
    EXPECT_TRUE(sawValid);
}

TEST(Instrumentor, TxnCommitsEveryRegionBeforeRelease)
{
    Instrumentor instr(
        makeParams(HwDesign::StrandWeaver, PersistencyModel::Txn));
    auto streams = instr.lower(oneStoreTrace());
    const OpStream &s = streams[0];
    LogLayout layout;
    // Head-pointer update (commit step 4) must precede the lock
    // release.
    auto headStore = std::find_if(s.begin(), s.end(), [&](const Op &op) {
        return op.type == OpType::Store &&
               op.addr == layout.headPtrAddr(0);
    });
    auto release = std::find_if(s.begin(), s.end(), [](const Op &op) {
        return op.type == OpType::LockRelease;
    });
    ASSERT_NE(headStore, s.end());
    ASSERT_NE(release, s.end());
    EXPECT_LT(headStore - s.begin(), release - s.begin());
    EXPECT_EQ(instr.stats().commits, 1u);
    // TXN does not use the commit gate.
    EXPECT_EQ(count(s, OpType::LockAcquire), 1u);
}

TEST(Instrumentor, SfrOffloadsCommitsToThePruner)
{
    TraceRecorder rec(1);
    rec.preload(dataWord, 0);
    for (int r = 0; r < 10; ++r) {
        rec.lockAcquire(0, 1);
        rec.regionBegin(0);
        rec.write(0, dataWord, r + 1);
        rec.regionEnd(0);
        rec.lockRelease(0, 1);
    }
    Instrumentor instr(
        makeParams(HwDesign::StrandWeaver, PersistencyModel::Sfr));
    EXPECT_TRUE(instr.usesPruner());
    auto streams = instr.lower(rec.takeTrace());
    // One program stream plus the pruner's.
    ASSERT_EQ(streams.size(), 2u);

    LogLayout layout;
    unsigned programHeadUpdates = 0;
    for (const Op &op : streams[0])
        if (op.type == OpType::Store &&
            op.addr == layout.headPtrAddr(0))
            ++programHeadUpdates;
    // The program thread never commits...
    EXPECT_EQ(programHeadUpdates, 0u);
    // ...the pruner does, once per batch (10 regions fit in one
    // window), advancing the commit frontier first.
    unsigned prunerHeadUpdates = 0;
    unsigned frontierUpdates = 0;
    for (const Op &op : streams[1]) {
        if (op.type != OpType::Store)
            continue;
        if (op.addr == layout.headPtrAddr(0))
            ++prunerHeadUpdates;
        if (op.addr == layout.frontierAddr())
            ++frontierUpdates;
    }
    EXPECT_EQ(prunerHeadUpdates, 1u);
    EXPECT_EQ(frontierUpdates, 1u);
    EXPECT_EQ(instr.stats().commits, 10u);

    // The frontier advance precedes the head update (ordering that
    // keeps crash states happens-before consistent).
    auto frontierPos = std::find_if(
        streams[1].begin(), streams[1].end(), [&](const Op &op) {
            return op.type == OpType::Store &&
                   op.addr == layout.frontierAddr();
        });
    auto headPos = std::find_if(
        streams[1].begin(), streams[1].end(), [&](const Op &op) {
            return op.type == OpType::Store &&
                   op.addr == layout.headPtrAddr(0);
        });
    EXPECT_LT(frontierPos - streams[1].begin(),
              headPos - streams[1].begin());
}

TEST(Instrumentor, PrunerCommitsInGlobalRegionOrder)
{
    TraceRecorder rec(2);
    rec.preload(dataWord, 0);
    for (int r = 0; r < 2; ++r) {
        for (CoreId t = 0; t < 2; ++t) {
            rec.lockAcquire(t, 1);
            rec.regionBegin(t);
            rec.write(t, dataWord + 64 * (t + 1), r);
            rec.regionEnd(t);
            rec.lockRelease(t, 1);
        }
    }
    Instrumentor instr(
        makeParams(HwDesign::StrandWeaver, PersistencyModel::Sfr));
    auto streams = instr.lower(rec.takeTrace());
    ASSERT_EQ(streams.size(), 3u);

    // The pruner's handshake acquires walk the regions in global
    // completion order.
    std::vector<std::uint64_t> order;
    for (const Op &op : streams.back())
        if (op.type == OpType::LockAcquire &&
            op.lockId >= regionDoneLockBase &&
            op.lockId < prunedLockBase)
            order.push_back(op.lockId - regionDoneLockBase);
    EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3}));

    // Every program-side handshake releases with ticket 0, so the
    // pruner (ticket 1) always waits for the owner.
    for (unsigned t = 0; t < 2; ++t) {
        for (const Op &op : streams[t]) {
            if (op.type == OpType::LockAcquire &&
                op.lockId >= regionDoneLockBase &&
                op.lockId < prunedLockBase) {
                EXPECT_EQ(op.ticket, 0u);
            }
        }
    }
}

TEST(Instrumentor, TxnHasNoPrunerStream)
{
    Instrumentor instr(
        makeParams(HwDesign::StrandWeaver, PersistencyModel::Txn));
    EXPECT_FALSE(instr.usesPruner());
    auto streams = instr.lower(oneStoreTrace());
    EXPECT_EQ(streams.size(), 1u);
}

TEST(Instrumentor, AtlasSyncOverheadExceedsSfr)
{
    auto cyclesFor = [&](PersistencyModel model) {
        Instrumentor instr(makeParams(HwDesign::StrandWeaver, model));
        auto streams = instr.lower(oneStoreTrace());
        std::uint64_t cycles = 0;
        for (const Op &op : streams[0])
            if (op.type == OpType::Compute)
                cycles += op.latency;
        return cycles;
    };
    EXPECT_GT(cyclesFor(PersistencyModel::Atlas),
              cyclesFor(PersistencyModel::Sfr));
    EXPECT_GT(cyclesFor(PersistencyModel::Sfr),
              cyclesFor(PersistencyModel::Txn));
}

TEST(Instrumentor, StatsCountLoweredOps)
{
    Instrumentor instr(
        makeParams(HwDesign::StrandWeaver, PersistencyModel::Txn));
    auto streams = instr.lower(oneStoreTrace());
    const LoweringStats &stats = instr.stats();
    // Region begin + store + region end = 3 log entries.
    EXPECT_EQ(stats.logEntries, 3u);
    EXPECT_GE(stats.clwbs, 4u); // 3 entries + 1 data + commit
    EXPECT_GT(stats.stores, 20u);
    EXPECT_EQ(stats.commits, 1u);
}

TEST(Instrumentor, UnmatchedReleasePanics)
{
    RegionTrace trace;
    TraceEvent release;
    release.kind = TraceEvent::Kind::LockRelease;
    release.lockId = 1;
    trace.threads.push_back({release});
    Instrumentor instr(
        makeParams(HwDesign::StrandWeaver, PersistencyModel::Txn));
    EXPECT_THROW(instr.lower(trace), std::logic_error);
}

} // namespace
} // namespace strand
