/**
 * @file
 * Wrap-around recovery regression tests: logs that lapped the
 * circular buffer several times must recover exactly — stale-lap
 * content skipped, live entries invalidated in their physical slots,
 * and the seq->slot mapping verified end to end through the real
 * lowering path.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/system.hh"
#include "runtime/recovery.hh"

namespace strand
{
namespace
{

constexpr Addr dataA = pmBase + 0x2000000;
constexpr Addr dataB = pmBase + 0x2000040;
constexpr Addr dataC = pmBase + 0x2000080;

class WrapFixture : public ::testing::Test
{
  protected:
    WrapFixture() { layout.entriesPerThread = 8; }

    void
    writeEntry(CoreId tid, std::uint64_t seq, LogType type, Addr addr,
               std::uint64_t oldValue, bool valid, bool cm = false,
               std::uint64_t globalSeq = 0)
    {
        Addr base = layout.entryAddr(tid, seq);
        img.writeDurable(base + log_field::type,
                         static_cast<std::uint64_t>(type));
        img.writeDurable(base + log_field::addr, addr);
        img.writeDurable(base + log_field::value, oldValue);
        img.writeDurable(base + log_field::checksum,
                         entryChecksum(static_cast<std::uint64_t>(type),
                                       addr, oldValue, globalSeq, seq));
        img.writeDurable(base + log_field::seq, seq);
        img.writeDurable(base + log_field::valid, valid ? 1 : 0);
        img.writeDurable(base + log_field::commitMarker, cm ? 1 : 0);
        img.writeDurable(base + log_field::globalSeq, globalSeq);
    }

    std::uint64_t
    validBit(CoreId tid, std::uint64_t seq) const
    {
        return img.readPersisted(layout.entryAddr(tid, seq) +
                                 log_field::valid);
    }

    LogLayout layout;
    MemoryImage img;
};

TEST_F(WrapFixture, MidCommitCrashOnLaterLapInvalidatesCorrectSlots)
{
    // The buffer holds 8 entries and the log is on its second lap:
    // head = 8. Slots 4-7 still hold lap-0 content (seqs 4-7) whose
    // invalidation raced the crash — valid bits stuck at 1. The
    // current region spans seqs 8-10 (slots 0-2) and crashed
    // mid-commit with the marker durable; seq 11 (slot 3) belongs to
    // the next, uncommitted region.
    img.writeDurable(layout.headPtrAddr(0), 8);
    for (std::uint64_t seq = 4; seq < 8; ++seq)
        writeEntry(0, seq, LogType::Store, dataA, 1000 + seq, true);
    img.writeDurable(dataB, 99);
    img.writeDurable(dataC, 77);
    writeEntry(0, 8, LogType::Store, dataB, 11, true);
    writeEntry(0, 9, LogType::Store, dataB, 22, true);
    writeEntry(0, 10, LogType::TxEnd, 0, 0, true, /*cm=*/true,
               /*globalSeq=*/3);
    writeEntry(0, 11, LogType::Store, dataC, 33, true,
               /*cm=*/false, /*globalSeq=*/4);
    img.writeDurable(dataA, 55); // current value; must not move

    RecoveryManager mgr{layout};
    auto report = mgr.recover(img, 1);

    // Stale lap-0 entries were skipped: dataA untouched.
    EXPECT_EQ(img.readPersisted(dataA), 55u);
    // The committed region (seqs 8-10) finished committing: its
    // slots 0-2 are now invalid and dataB kept the new value.
    EXPECT_EQ(report.entriesCommittedDuringRecovery, 3u);
    EXPECT_EQ(validBit(0, 8), 0u);
    EXPECT_EQ(validBit(0, 9), 0u);
    EXPECT_EQ(validBit(0, 10), 0u);
    EXPECT_EQ(img.readPersisted(dataB), 99u);
    // The uncommitted seq 11 rolled back into slot 3.
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(validBit(0, 11), 0u);
    EXPECT_EQ(img.readPersisted(dataC), 33u);
    // Head advanced past the committed region.
    EXPECT_EQ(img.readPersisted(layout.headPtrAddr(0)), 11u);
}

TEST_F(WrapFixture, ManyLapsKeepSeqSlotMappingConsistent)
{
    // Crash on the fifth lap: seqs 32-34 live in slots 0-2.
    img.writeDurable(layout.headPtrAddr(0), 32);
    img.writeDurable(dataA, 99);
    writeEntry(0, 32, LogType::Store, dataA, 41, true);
    writeEntry(0, 33, LogType::Store, dataA, 42, true);
    writeEntry(0, 34, LogType::Store, dataA, 43, true);

    RecoveryManager mgr{layout};
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 3u);
    // Oldest old-value wins; slots 0-2 invalidated.
    EXPECT_EQ(img.readPersisted(dataA), 41u);
    EXPECT_EQ(validBit(0, 32), 0u);
    EXPECT_EQ(validBit(0, 33), 0u);
    EXPECT_EQ(validBit(0, 34), 0u);
}

TEST_F(WrapFixture, SeqSlotMismatchIsSkippedAsTorn)
{
    // The writer always stores slot-consistent seqs, so an entry
    // whose seq cannot map to the slot it occupies is a torn
    // admission (the entry line was only partially durable at the
    // crash; see MemoryImage::clonePersistedTorn). Recovery must
    // drop it — never roll it back or invalidate some other lap's
    // entry — and report the skip.
    img.writeDurable(dataA, 55);
    Addr base = layout.entryAddr(0, 2); // slot 2
    img.writeDurable(base + log_field::type,
                     static_cast<std::uint64_t>(LogType::Store));
    img.writeDurable(base + log_field::addr, dataA);
    img.writeDurable(base + log_field::value, 7);
    img.writeDurable(base + log_field::seq, 5); // 5 % 8 != 2
    img.writeDurable(base + log_field::valid, 1);

    RecoveryManager mgr{layout};
    RecoveryReport report = mgr.recover(img, 1);
    EXPECT_EQ(report.tornEntriesSkipped, 1u);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    // The torn entry's stale old-value was not applied.
    EXPECT_EQ(img.readPersisted(dataA), 55u);
    // And no other slot's valid bit was touched.
    EXPECT_EQ(validBit(0, 2), 1u);
}

TEST(RecoveryWrapLowering, MultiLapRunsRecoverAtSampledCrashPoints)
{
    // End-to-end: a TXN run whose log laps a tiny 8-entry buffer
    // several times, crashed at persist points sampled across the
    // whole run. Recovery must map wrapped seqs to the right slots
    // (the corruption guard is live) and restore a state satisfying
    // the workload's structural invariants.
    WorkloadParams params;
    params.numThreads = 1;
    params.opsPerThread = 12;
    RecordedWorkload recorded =
        recordWorkload(WorkloadKind::Queue, params);

    LogLayout small;
    small.entriesPerThread = 8;

    InstrumentorParams ip;
    ip.design = HwDesign::StrandWeaver;
    ip.model = PersistencyModel::Txn;
    ip.layout = small;
    Instrumentor instr(ip);
    auto streams = instr.lower(recorded.trace);
    ASSERT_GT(instr.stats().logEntries, small.entriesPerThread)
        << "run too small to wrap the log";

    auto build = [&]() {
        SystemConfig cfg;
        cfg.numCores = static_cast<unsigned>(streams.size());
        cfg.design = ip.design;
        cfg.layout = small;
        auto sys = std::make_unique<System>(cfg);
        sys->seedImage(recorded.preload);
        auto copies = streams;
        sys->loadStreams(std::move(copies));
        return sys;
    };

    std::vector<Tick> persistTicks;
    {
        auto ref = build();
        ref->run();
        for (const PersistRecord &persist : ref->persistTrace())
            persistTicks.push_back(persist.when);
    }
    ASSERT_FALSE(persistTicks.empty());

    for (std::size_t i = 0; i < 8; ++i) {
        Tick when = persistTicks[i * persistTicks.size() / 8] + 1;
        auto sys = build();
        sys->runUntil(when);
        sys->crash();

        RecoveryManager mgr{small};
        mgr.recover(sys->memory(), params.numThreads);
        auto read = [&sys](Addr addr) {
            return sys->memory().readPersisted(addr);
        };
        EXPECT_EQ(recorded.workload->checkInvariants(read), "")
            << "crash at tick " << when;
    }
}

} // namespace
} // namespace strand
