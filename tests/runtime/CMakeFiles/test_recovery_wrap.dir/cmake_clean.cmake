file(REMOVE_RECURSE
  "CMakeFiles/test_recovery_wrap.dir/recovery_wrap_test.cc.o"
  "CMakeFiles/test_recovery_wrap.dir/recovery_wrap_test.cc.o.d"
  "test_recovery_wrap"
  "test_recovery_wrap.pdb"
  "test_recovery_wrap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recovery_wrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
