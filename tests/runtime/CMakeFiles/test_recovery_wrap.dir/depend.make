# Empty dependencies file for test_recovery_wrap.
# This may be replaced when dependencies are built.
