file(REMOVE_RECURSE
  "CMakeFiles/test_instrumentor.dir/instrumentor_test.cc.o"
  "CMakeFiles/test_instrumentor.dir/instrumentor_test.cc.o.d"
  "test_instrumentor"
  "test_instrumentor.pdb"
  "test_instrumentor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instrumentor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
