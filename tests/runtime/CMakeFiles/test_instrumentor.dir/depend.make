# Empty dependencies file for test_instrumentor.
# This may be replaced when dependencies are built.
