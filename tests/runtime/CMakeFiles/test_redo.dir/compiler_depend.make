# Empty compiler generated dependencies file for test_redo.
# This may be replaced when dependencies are built.
