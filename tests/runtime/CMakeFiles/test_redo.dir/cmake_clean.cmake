file(REMOVE_RECURSE
  "CMakeFiles/test_redo.dir/redo_test.cc.o"
  "CMakeFiles/test_redo.dir/redo_test.cc.o.d"
  "test_redo"
  "test_redo.pdb"
  "test_redo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_redo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
