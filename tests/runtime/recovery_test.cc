/**
 * @file
 * Unit tests for the recovery process (Figure 6), on hand-built
 * persisted images.
 */

#include <gtest/gtest.h>

#include <map>

#include "runtime/recovery.hh"

namespace strand
{
namespace
{

constexpr Addr dataA = pmBase + 0x2000000;
constexpr Addr dataB = pmBase + 0x2000040;

class RecoveryFixture : public ::testing::Test
{
  protected:
    void
    writeEntry(CoreId tid, std::uint64_t idx, LogType type, Addr addr,
               std::uint64_t oldValue, bool valid, bool cm = false)
    {
        Addr base = layout.entryAddr(tid, idx);
        img.writeDurable(base + log_field::type,
                         static_cast<std::uint64_t>(type));
        img.writeDurable(base + log_field::addr, addr);
        img.writeDurable(base + log_field::value, oldValue);
        img.writeDurable(base + log_field::size, 8);
        img.writeDurable(base + log_field::seq, idx);
        img.writeDurable(base + log_field::valid, valid ? 1 : 0);
        img.writeDurable(base + log_field::commitMarker, cm ? 1 : 0);
    }

    LogLayout layout;
    MemoryImage img;
    RecoveryManager mgr{LogLayout{}};
};

TEST_F(RecoveryFixture, CleanLogRecoversNothing)
{
    auto report = mgr.recover(img, 8);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    EXPECT_EQ(report.threadsWithUncommittedWork, 0u);
}

TEST_F(RecoveryFixture, ValidStoreEntryRollsBack)
{
    img.writeDurable(dataA, 99); // partially-updated new value
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataA), 11u);
    EXPECT_EQ(report.threadsWithUncommittedWork, 1u);
}

TEST_F(RecoveryFixture, RollbackAppliesInReverseCreationOrder)
{
    // Two entries for the same address: the older old-value must win.
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    writeEntry(0, 1, LogType::Store, dataA, 22, true);
    mgr.recover(img, 1);
    EXPECT_EQ(img.readPersisted(dataA), 11u);
}

TEST_F(RecoveryFixture, InvalidEntriesAreIgnored)
{
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, false);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    EXPECT_EQ(img.readPersisted(dataA), 99u);
}

TEST_F(RecoveryFixture, GapsFromConcurrentPersistsAreStillRolledBack)
{
    // Entry 0 never persisted (crashed in flight); entry 1 did.
    // Recovery must still roll entry 1 back (its data may have
    // persisted), even though the log has a hole.
    img.writeDurable(dataB, 99);
    writeEntry(0, 1, LogType::Store, dataB, 22, true);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataB), 22u);
}

TEST_F(RecoveryFixture, CommitMarkerFinishesInterruptedCommit)
{
    // Figure 6(b): entries 0-2 belong to a committed region whose
    // invalidation was interrupted: 0 invalidated, 1 and 2 still
    // valid, CM on entry 2. Entry 3 belongs to a newer region.
    img.writeDurable(dataA, 50);
    img.writeDurable(dataB, 99);
    writeEntry(0, 0, LogType::Store, dataA, 1, false);
    writeEntry(0, 1, LogType::Store, dataA, 2, true);
    writeEntry(0, 2, LogType::TxEnd, 0, 0, true, /*cm=*/true);
    writeEntry(0, 3, LogType::Store, dataB, 7, true);

    auto report = mgr.recover(img, 1);
    // Entries 1-2: invalidated, not rolled back.
    EXPECT_EQ(report.entriesCommittedDuringRecovery, 2u);
    EXPECT_EQ(img.readPersisted(dataA), 50u);
    // Entry 3: uncommitted, rolled back.
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataB), 7u);
    // Head advanced past the committed region.
    EXPECT_EQ(img.readPersisted(layout.headPtrAddr(0)), 3u);
}

TEST_F(RecoveryFixture, StaleLapEntriesAreIgnored)
{
    // Head has advanced beyond entry seq 0; slot 0 still holds the
    // old entry content with valid=1 (invalidation raced the crash
    // after head moved). The seq guard must skip it.
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    img.writeDurable(layout.headPtrAddr(0), 1);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    EXPECT_EQ(img.readPersisted(dataA), 99u);
}

TEST_F(RecoveryFixture, WrappedSeqsResolveToCorrectSlots)
{
    // An entry whose monotonic seq exceeds the buffer capacity lives
    // in slot seq % capacity.
    std::uint64_t seq = layout.entriesPerThread + 5;
    img.writeDurable(dataA, 99);
    img.writeDurable(layout.headPtrAddr(0), seq - 1);
    writeEntry(0, seq, LogType::Store, dataA, 33, true);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataA), 33u);
}

TEST_F(RecoveryFixture, RecoveryIsIdempotent)
{
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    mgr.recover(img, 1);
    auto second = mgr.recover(img, 1);
    EXPECT_EQ(second.entriesRolledBack, 0u);
    EXPECT_EQ(img.readPersisted(dataA), 11u);
}

TEST_F(RecoveryFixture, SyncEntriesRollBackNoData)
{
    writeEntry(0, 0, LogType::Acquire, 42, 7, true);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    EXPECT_EQ(report.threadsWithUncommittedWork, 1u);
}

TEST_F(RecoveryFixture, MultipleThreadsRecoverIndependently)
{
    img.writeDurable(dataA, 99);
    img.writeDurable(dataB, 98);
    writeEntry(0, 0, LogType::Store, dataA, 1, true);
    writeEntry(3, 0, LogType::Store, dataB, 2, true);
    auto report = mgr.recover(img, 8);
    EXPECT_EQ(report.entriesRolledBack, 2u);
    EXPECT_EQ(report.threadsWithUncommittedWork, 2u);
    EXPECT_EQ(img.readPersisted(dataA), 1u);
    EXPECT_EQ(img.readPersisted(dataB), 2u);
}

TEST_F(RecoveryFixture, PagedScanMatchesFaithfulScan)
{
    // The forked harness leans on RecoveryScan::Paged being
    // observationally identical to the word-by-word Faithful scan.
    // Build a log exercising every gather-path branch — valid
    // rollbacks, invalidated entries, an interrupted commit, a stale
    // lap entry, a torn seq/slot mismatch, wrapped seqs, and slots
    // scattered widely enough that whole log pages are absent — and
    // demand identical reports and identical recovered images.
    img.writeDurable(dataA, 99);
    img.writeDurable(dataB, 98);
    writeEntry(0, 0, LogType::Store, dataA, 1, false);
    writeEntry(0, 1, LogType::Store, dataA, 2, true);
    writeEntry(0, 2, LogType::TxEnd, 0, 0, true, /*cm=*/true);
    writeEntry(0, 3, LogType::Store, dataB, 7, true);
    // Thread 1: stale lap — head already past the entry.
    writeEntry(1, 0, LogType::Store, dataA, 11, true);
    img.writeDurable(layout.headPtrAddr(1), 1);
    // Thread 2: torn entry — seq does not map back to its slot.
    writeEntry(2, 5, LogType::Store, dataB, 22, true);
    {
        Addr base = layout.entryAddr(2, 5);
        img.writeDurable(base + log_field::seq, 6);
    }
    // Thread 3: wrapped seq plus a far slot, leaving most of the
    // thread's log pages absent between the occupied ones.
    std::uint64_t wrapped = layout.entriesPerThread + 5;
    img.writeDurable(layout.headPtrAddr(3), wrapped - 1);
    writeEntry(3, wrapped, LogType::Store, dataA, 33, true);
    writeEntry(3, wrapped + 2000, LogType::Store, dataB, 44, true);

    MemoryImage faithfulImg = img;
    MemoryImage pagedImg = img;
    auto faithful =
        mgr.recover(faithfulImg, 4, RecoveryScan::Faithful);
    auto paged = mgr.recover(pagedImg, 4, RecoveryScan::Paged);

    EXPECT_EQ(paged.entriesRolledBack, faithful.entriesRolledBack);
    EXPECT_EQ(paged.redoEntriesReplayed,
              faithful.redoEntriesReplayed);
    EXPECT_EQ(paged.entriesCommittedDuringRecovery,
              faithful.entriesCommittedDuringRecovery);
    EXPECT_EQ(paged.threadsWithUncommittedWork,
              faithful.threadsWithUncommittedWork);
    EXPECT_EQ(paged.tornEntriesSkipped, faithful.tornEntriesSkipped);
    EXPECT_EQ(paged.rollbacks, faithful.rollbacks);
    EXPECT_EQ(paged.replays, faithful.replays);

    // The scans actually hit the interesting branches.
    EXPECT_GT(faithful.entriesRolledBack, 0u);
    EXPECT_GT(faithful.entriesCommittedDuringRecovery, 0u);
    EXPECT_GT(faithful.tornEntriesSkipped, 0u);

    // Recovered persisted images are word-for-word identical.
    std::map<Addr, std::uint64_t> faithfulWords, pagedWords;
    faithfulImg.forEachPersisted(
        [&](Addr addr, std::uint64_t value) {
            faithfulWords.emplace(addr, value);
        });
    pagedImg.forEachPersisted([&](Addr addr, std::uint64_t value) {
        pagedWords.emplace(addr, value);
    });
    EXPECT_EQ(pagedWords, faithfulWords);
}

} // namespace
} // namespace strand
