/**
 * @file
 * Unit tests for the recovery process (Figure 6), on hand-built
 * persisted images.
 */

#include <gtest/gtest.h>

#include <map>

#include "runtime/recovery.hh"

namespace strand
{
namespace
{

constexpr Addr dataA = pmBase + 0x2000000;
constexpr Addr dataB = pmBase + 0x2000040;

class RecoveryFixture : public ::testing::Test
{
  protected:
    void
    writeEntry(CoreId tid, std::uint64_t idx, LogType type, Addr addr,
               std::uint64_t oldValue, bool valid, bool cm = false)
    {
        Addr base = layout.entryAddr(tid, idx);
        img.writeDurable(base + log_field::type,
                         static_cast<std::uint64_t>(type));
        img.writeDurable(base + log_field::addr, addr);
        img.writeDurable(base + log_field::value, oldValue);
        img.writeDurable(base + log_field::checksum,
                         entryChecksum(static_cast<std::uint64_t>(type),
                                       addr, oldValue, 0, idx));
        img.writeDurable(base + log_field::seq, idx);
        img.writeDurable(base + log_field::valid, valid ? 1 : 0);
        img.writeDurable(base + log_field::commitMarker, cm ? 1 : 0);
    }

    LogLayout layout;
    MemoryImage img;
    RecoveryManager mgr{LogLayout{}};
};

TEST_F(RecoveryFixture, CleanLogRecoversNothing)
{
    auto report = mgr.recover(img, 8);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    EXPECT_EQ(report.threadsWithUncommittedWork, 0u);
}

TEST_F(RecoveryFixture, ValidStoreEntryRollsBack)
{
    img.writeDurable(dataA, 99); // partially-updated new value
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataA), 11u);
    EXPECT_EQ(report.threadsWithUncommittedWork, 1u);
}

TEST_F(RecoveryFixture, RollbackAppliesInReverseCreationOrder)
{
    // Two entries for the same address: the older old-value must win.
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    writeEntry(0, 1, LogType::Store, dataA, 22, true);
    mgr.recover(img, 1);
    EXPECT_EQ(img.readPersisted(dataA), 11u);
}

TEST_F(RecoveryFixture, InvalidEntriesAreIgnored)
{
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, false);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    EXPECT_EQ(img.readPersisted(dataA), 99u);
}

TEST_F(RecoveryFixture, GapsFromConcurrentPersistsAreStillRolledBack)
{
    // Entry 0 never persisted (crashed in flight); entry 1 did.
    // Recovery must still roll entry 1 back (its data may have
    // persisted), even though the log has a hole.
    img.writeDurable(dataB, 99);
    writeEntry(0, 1, LogType::Store, dataB, 22, true);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataB), 22u);
}

TEST_F(RecoveryFixture, CommitMarkerFinishesInterruptedCommit)
{
    // Figure 6(b): entries 0-2 belong to a committed region whose
    // invalidation was interrupted: 0 invalidated, 1 and 2 still
    // valid, CM on entry 2. Entry 3 belongs to a newer region.
    img.writeDurable(dataA, 50);
    img.writeDurable(dataB, 99);
    writeEntry(0, 0, LogType::Store, dataA, 1, false);
    writeEntry(0, 1, LogType::Store, dataA, 2, true);
    writeEntry(0, 2, LogType::TxEnd, 0, 0, true, /*cm=*/true);
    writeEntry(0, 3, LogType::Store, dataB, 7, true);

    auto report = mgr.recover(img, 1);
    // Entries 1-2: invalidated, not rolled back.
    EXPECT_EQ(report.entriesCommittedDuringRecovery, 2u);
    EXPECT_EQ(img.readPersisted(dataA), 50u);
    // Entry 3: uncommitted, rolled back.
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataB), 7u);
    // Head advanced past the committed region.
    EXPECT_EQ(img.readPersisted(layout.headPtrAddr(0)), 3u);
}

TEST_F(RecoveryFixture, StaleLapEntriesAreIgnored)
{
    // Head has advanced beyond entry seq 0; slot 0 still holds the
    // old entry content with valid=1 (invalidation raced the crash
    // after head moved). The seq guard must skip it.
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    img.writeDurable(layout.headPtrAddr(0), 1);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    EXPECT_EQ(img.readPersisted(dataA), 99u);
}

TEST_F(RecoveryFixture, WrappedSeqsResolveToCorrectSlots)
{
    // An entry whose monotonic seq exceeds the buffer capacity lives
    // in slot seq % capacity.
    std::uint64_t seq = layout.entriesPerThread + 5;
    img.writeDurable(dataA, 99);
    img.writeDurable(layout.headPtrAddr(0), seq - 1);
    writeEntry(0, seq, LogType::Store, dataA, 33, true);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataA), 33u);
}

TEST_F(RecoveryFixture, RecoveryIsIdempotent)
{
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    mgr.recover(img, 1);
    auto second = mgr.recover(img, 1);
    EXPECT_EQ(second.entriesRolledBack, 0u);
    EXPECT_EQ(img.readPersisted(dataA), 11u);
}

TEST_F(RecoveryFixture, SyncEntriesRollBackNoData)
{
    writeEntry(0, 0, LogType::Acquire, 42, 7, true);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    EXPECT_EQ(report.threadsWithUncommittedWork, 1u);
}

TEST_F(RecoveryFixture, MultipleThreadsRecoverIndependently)
{
    img.writeDurable(dataA, 99);
    img.writeDurable(dataB, 98);
    writeEntry(0, 0, LogType::Store, dataA, 1, true);
    writeEntry(3, 0, LogType::Store, dataB, 2, true);
    auto report = mgr.recover(img, 8);
    EXPECT_EQ(report.entriesRolledBack, 2u);
    EXPECT_EQ(report.threadsWithUncommittedWork, 2u);
    EXPECT_EQ(img.readPersisted(dataA), 1u);
    EXPECT_EQ(img.readPersisted(dataB), 2u);
}

TEST_F(RecoveryFixture, PagedScanMatchesFaithfulScan)
{
    // The forked harness leans on RecoveryScan::Paged being
    // observationally identical to the word-by-word Faithful scan.
    // Build a log exercising every gather-path branch — valid
    // rollbacks, invalidated entries, an interrupted commit, a stale
    // lap entry, a torn seq/slot mismatch, wrapped seqs, and slots
    // scattered widely enough that whole log pages are absent — and
    // demand identical reports and identical recovered images.
    img.writeDurable(dataA, 99);
    img.writeDurable(dataB, 98);
    writeEntry(0, 0, LogType::Store, dataA, 1, false);
    writeEntry(0, 1, LogType::Store, dataA, 2, true);
    writeEntry(0, 2, LogType::TxEnd, 0, 0, true, /*cm=*/true);
    writeEntry(0, 3, LogType::Store, dataB, 7, true);
    // Thread 1: stale lap — head already past the entry.
    writeEntry(1, 0, LogType::Store, dataA, 11, true);
    img.writeDurable(layout.headPtrAddr(1), 1);
    // Thread 2: torn entry — seq does not map back to its slot.
    writeEntry(2, 5, LogType::Store, dataB, 22, true);
    {
        Addr base = layout.entryAddr(2, 5);
        img.writeDurable(base + log_field::seq, 6);
    }
    // Thread 3: wrapped seq plus a far slot, leaving most of the
    // thread's log pages absent between the occupied ones.
    std::uint64_t wrapped = layout.entriesPerThread + 5;
    img.writeDurable(layout.headPtrAddr(3), wrapped - 1);
    writeEntry(3, wrapped, LogType::Store, dataA, 33, true);
    writeEntry(3, wrapped + 2000, LogType::Store, dataB, 44, true);

    MemoryImage faithfulImg = img;
    MemoryImage pagedImg = img;
    auto faithful =
        mgr.recover(faithfulImg, 4, RecoveryScan::Faithful);
    auto paged = mgr.recover(pagedImg, 4, RecoveryScan::Paged);

    EXPECT_EQ(paged.entriesRolledBack, faithful.entriesRolledBack);
    EXPECT_EQ(paged.redoEntriesReplayed,
              faithful.redoEntriesReplayed);
    EXPECT_EQ(paged.entriesCommittedDuringRecovery,
              faithful.entriesCommittedDuringRecovery);
    EXPECT_EQ(paged.threadsWithUncommittedWork,
              faithful.threadsWithUncommittedWork);
    EXPECT_EQ(paged.tornEntriesSkipped, faithful.tornEntriesSkipped);
    EXPECT_EQ(paged.rollbacks, faithful.rollbacks);
    EXPECT_EQ(paged.replays, faithful.replays);

    // The scans actually hit the interesting branches.
    EXPECT_GT(faithful.entriesRolledBack, 0u);
    EXPECT_GT(faithful.entriesCommittedDuringRecovery, 0u);
    EXPECT_GT(faithful.tornEntriesSkipped, 0u);

    // Recovered persisted images are word-for-word identical.
    std::map<Addr, std::uint64_t> faithfulWords, pagedWords;
    faithfulImg.forEachPersisted(
        [&](Addr addr, std::uint64_t value) {
            faithfulWords.emplace(addr, value);
        });
    pagedImg.forEachPersisted([&](Addr addr, std::uint64_t value) {
        pagedWords.emplace(addr, value);
    });
    EXPECT_EQ(pagedWords, faithfulWords);
}

TEST_F(RecoveryFixture, ChecksumCatchesBitFlip)
{
    // A published entry with one flipped value bit: the publication
    // gates pass (seq intact), so only the checksum can tell this
    // apart from a good entry. The thread must be quarantined — the
    // corrupt undo value must never reach the heap.
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    img.corruptWord(layout.entryAddr(0, 0) + log_field::value,
                    1ull << 17);

    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.verdict, RecoveryVerdict::Degraded);
    EXPECT_EQ(report.corruptEntriesQuarantined, 1u);
    ASSERT_EQ(report.quarantinedThreads.size(), 1u);
    EXPECT_EQ(report.quarantinedThreads[0], 0u);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    EXPECT_EQ(img.readPersisted(dataA), 99u);
}

TEST_F(RecoveryFixture, UncheckedRecoverySilentlyAppliesBitFlip)
{
    // Regression pin for the pre-checksum layout: with verification
    // off, the same flipped entry sails through and recovery writes
    // the corrupt undo value into the heap at verdict FULL — the
    // silent-corruption failure the checksum word exists to close.
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    img.corruptWord(layout.entryAddr(0, 0) + log_field::value,
                    1ull << 17);

    RecoveryOptions noVerify;
    noVerify.verifyChecksums = false;
    auto report =
        mgr.recover(img, 1, RecoveryScan::Faithful, noVerify);
    EXPECT_EQ(report.verdict, RecoveryVerdict::Full);
    EXPECT_EQ(report.corruptEntriesQuarantined, 0u);
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataA), 11u ^ (1ull << 17));
}

TEST_F(RecoveryFixture, PoisonedLogLineQuarantinesItsThread)
{
    // Thread 0's slot-0 entry line is unreadable; thread 1 is clean.
    // Thread 0 gets no rollback at all (its log cannot be trusted),
    // thread 1 recovers normally.
    img.writeDurable(dataA, 99);
    img.writeDurable(dataB, 98);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    writeEntry(1, 0, LogType::Store, dataB, 22, true);
    img.poisonLine(layout.entryAddr(0, 0));

    auto report = mgr.recover(img, 2);
    EXPECT_EQ(report.verdict, RecoveryVerdict::Degraded);
    EXPECT_EQ(report.poisonedEntriesQuarantined, 1u);
    ASSERT_EQ(report.quarantinedThreads.size(), 1u);
    EXPECT_EQ(report.quarantinedThreads[0], 0u);
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataA), 99u); // fenced, not unwound
    EXPECT_EQ(img.readPersisted(dataB), 22u);
}

TEST_F(RecoveryFixture, PoisonedMetadataFailsRecovery)
{
    // Head pointers and the commit frontier have no redundancy: a
    // poisoned metadata line means no log can be interpreted at all.
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    img.poisonLine(lineAlign(layout.headPtrAddr(0)));

    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.verdict, RecoveryVerdict::Failed);
    EXPECT_EQ(report.entriesRolledBack, 0u);
}

TEST_F(RecoveryFixture, ResidualHeapPoisonIsQuarantinedByAddress)
{
    // A poisoned heap line outside the log area: rollback proceeds
    // normally elsewhere, but the line's words are handed back as
    // quarantined — poison is sticky, even where rollback rewrote a
    // word of the line.
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    img.poisonLine(dataA);

    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.verdict, RecoveryVerdict::Degraded);
    EXPECT_TRUE(report.quarantinedThreads.empty());
    EXPECT_EQ(report.entriesRolledBack, 1u);
    ASSERT_EQ(report.quarantinedAddrs.size(), wordsPerLine);
    EXPECT_EQ(report.quarantinedAddrs.front(), lineAlign(dataA));
    EXPECT_EQ(report.quarantinedAddrs.back(),
              lineAlign(dataA) + (wordsPerLine - 1) * wordBytes);
    // The rolled-back word itself was rewritten...
    EXPECT_EQ(img.readPersisted(dataA), 11u);
    // ...but the line stays marked unreadable for the caller.
    EXPECT_TRUE(img.isPoisoned(dataA));
}

TEST_F(RecoveryFixture, FreeSlotAnomalyIsQuarantinedWithoutChecksums)
{
    // A Free-typed slot with nonzero sibling words is structurally
    // impossible (no tear produces it — the type word is admitted
    // first), so it is quarantined even with verification off.
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    Addr base = layout.entryAddr(0, 1);
    img.writeDurable(base + log_field::value, 77); // type stays Free

    RecoveryOptions noVerify;
    noVerify.verifyChecksums = false;
    auto report =
        mgr.recover(img, 1, RecoveryScan::Faithful, noVerify);
    EXPECT_EQ(report.verdict, RecoveryVerdict::Degraded);
    EXPECT_EQ(report.corruptEntriesQuarantined, 1u);
    ASSERT_EQ(report.quarantinedThreads.size(), 1u);
    EXPECT_EQ(img.readPersisted(dataA), 99u);
}

TEST_F(RecoveryFixture, PagedScanMatchesFaithfulScanUnderMediaDamage)
{
    // The media-damage classification must also be scan-agnostic:
    // flip one published entry, plant a free-slot anomaly on a far
    // slot, and poison a heap line; both scans must agree on every
    // report field including the quarantine tallies.
    img.writeDurable(dataA, 99);
    img.writeDurable(dataB, 98);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    writeEntry(1, 0, LogType::Store, dataB, 22, true);
    img.corruptWord(layout.entryAddr(0, 0) + log_field::addr,
                    1ull << 3);
    img.writeDurable(layout.entryAddr(1, 2000) + log_field::globalSeq,
                     5); // free-slot anomaly on an absent-page slot
    img.poisonLine(dataB);

    MemoryImage faithfulImg = img;
    MemoryImage pagedImg = img;
    auto faithful =
        mgr.recover(faithfulImg, 2, RecoveryScan::Faithful);
    auto paged = mgr.recover(pagedImg, 2, RecoveryScan::Paged);

    EXPECT_EQ(paged.verdict, faithful.verdict);
    EXPECT_EQ(paged.corruptEntriesQuarantined,
              faithful.corruptEntriesQuarantined);
    EXPECT_EQ(paged.poisonedEntriesQuarantined,
              faithful.poisonedEntriesQuarantined);
    EXPECT_EQ(paged.quarantinedThreads, faithful.quarantinedThreads);
    EXPECT_EQ(paged.quarantinedAddrs, faithful.quarantinedAddrs);
    EXPECT_EQ(paged.entriesRolledBack, faithful.entriesRolledBack);
    EXPECT_EQ(paged.rollbacks, faithful.rollbacks);

    EXPECT_EQ(faithful.verdict, RecoveryVerdict::Degraded);
    EXPECT_EQ(faithful.corruptEntriesQuarantined, 2u);
    ASSERT_EQ(faithful.quarantinedThreads.size(), 2u);

    std::map<Addr, std::uint64_t> faithfulWords, pagedWords;
    faithfulImg.forEachPersisted(
        [&](Addr addr, std::uint64_t value) {
            faithfulWords.emplace(addr, value);
        });
    pagedImg.forEachPersisted([&](Addr addr, std::uint64_t value) {
        pagedWords.emplace(addr, value);
    });
    EXPECT_EQ(pagedWords, faithfulWords);
}

} // namespace
} // namespace strand
