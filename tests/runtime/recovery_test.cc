/**
 * @file
 * Unit tests for the recovery process (Figure 6), on hand-built
 * persisted images.
 */

#include <gtest/gtest.h>

#include "runtime/recovery.hh"

namespace strand
{
namespace
{

constexpr Addr dataA = pmBase + 0x2000000;
constexpr Addr dataB = pmBase + 0x2000040;

class RecoveryFixture : public ::testing::Test
{
  protected:
    void
    writeEntry(CoreId tid, std::uint64_t idx, LogType type, Addr addr,
               std::uint64_t oldValue, bool valid, bool cm = false)
    {
        Addr base = layout.entryAddr(tid, idx);
        img.writeDurable(base + log_field::type,
                         static_cast<std::uint64_t>(type));
        img.writeDurable(base + log_field::addr, addr);
        img.writeDurable(base + log_field::value, oldValue);
        img.writeDurable(base + log_field::size, 8);
        img.writeDurable(base + log_field::seq, idx);
        img.writeDurable(base + log_field::valid, valid ? 1 : 0);
        img.writeDurable(base + log_field::commitMarker, cm ? 1 : 0);
    }

    LogLayout layout;
    MemoryImage img;
    RecoveryManager mgr{LogLayout{}};
};

TEST_F(RecoveryFixture, CleanLogRecoversNothing)
{
    auto report = mgr.recover(img, 8);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    EXPECT_EQ(report.threadsWithUncommittedWork, 0u);
}

TEST_F(RecoveryFixture, ValidStoreEntryRollsBack)
{
    img.writeDurable(dataA, 99); // partially-updated new value
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataA), 11u);
    EXPECT_EQ(report.threadsWithUncommittedWork, 1u);
}

TEST_F(RecoveryFixture, RollbackAppliesInReverseCreationOrder)
{
    // Two entries for the same address: the older old-value must win.
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    writeEntry(0, 1, LogType::Store, dataA, 22, true);
    mgr.recover(img, 1);
    EXPECT_EQ(img.readPersisted(dataA), 11u);
}

TEST_F(RecoveryFixture, InvalidEntriesAreIgnored)
{
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, false);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    EXPECT_EQ(img.readPersisted(dataA), 99u);
}

TEST_F(RecoveryFixture, GapsFromConcurrentPersistsAreStillRolledBack)
{
    // Entry 0 never persisted (crashed in flight); entry 1 did.
    // Recovery must still roll entry 1 back (its data may have
    // persisted), even though the log has a hole.
    img.writeDurable(dataB, 99);
    writeEntry(0, 1, LogType::Store, dataB, 22, true);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataB), 22u);
}

TEST_F(RecoveryFixture, CommitMarkerFinishesInterruptedCommit)
{
    // Figure 6(b): entries 0-2 belong to a committed region whose
    // invalidation was interrupted: 0 invalidated, 1 and 2 still
    // valid, CM on entry 2. Entry 3 belongs to a newer region.
    img.writeDurable(dataA, 50);
    img.writeDurable(dataB, 99);
    writeEntry(0, 0, LogType::Store, dataA, 1, false);
    writeEntry(0, 1, LogType::Store, dataA, 2, true);
    writeEntry(0, 2, LogType::TxEnd, 0, 0, true, /*cm=*/true);
    writeEntry(0, 3, LogType::Store, dataB, 7, true);

    auto report = mgr.recover(img, 1);
    // Entries 1-2: invalidated, not rolled back.
    EXPECT_EQ(report.entriesCommittedDuringRecovery, 2u);
    EXPECT_EQ(img.readPersisted(dataA), 50u);
    // Entry 3: uncommitted, rolled back.
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataB), 7u);
    // Head advanced past the committed region.
    EXPECT_EQ(img.readPersisted(layout.headPtrAddr(0)), 3u);
}

TEST_F(RecoveryFixture, StaleLapEntriesAreIgnored)
{
    // Head has advanced beyond entry seq 0; slot 0 still holds the
    // old entry content with valid=1 (invalidation raced the crash
    // after head moved). The seq guard must skip it.
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    img.writeDurable(layout.headPtrAddr(0), 1);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    EXPECT_EQ(img.readPersisted(dataA), 99u);
}

TEST_F(RecoveryFixture, WrappedSeqsResolveToCorrectSlots)
{
    // An entry whose monotonic seq exceeds the buffer capacity lives
    // in slot seq % capacity.
    std::uint64_t seq = layout.entriesPerThread + 5;
    img.writeDurable(dataA, 99);
    img.writeDurable(layout.headPtrAddr(0), seq - 1);
    writeEntry(0, seq, LogType::Store, dataA, 33, true);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 1u);
    EXPECT_EQ(img.readPersisted(dataA), 33u);
}

TEST_F(RecoveryFixture, RecoveryIsIdempotent)
{
    img.writeDurable(dataA, 99);
    writeEntry(0, 0, LogType::Store, dataA, 11, true);
    mgr.recover(img, 1);
    auto second = mgr.recover(img, 1);
    EXPECT_EQ(second.entriesRolledBack, 0u);
    EXPECT_EQ(img.readPersisted(dataA), 11u);
}

TEST_F(RecoveryFixture, SyncEntriesRollBackNoData)
{
    writeEntry(0, 0, LogType::Acquire, 42, 7, true);
    auto report = mgr.recover(img, 1);
    EXPECT_EQ(report.entriesRolledBack, 0u);
    EXPECT_EQ(report.threadsWithUncommittedWork, 1u);
}

TEST_F(RecoveryFixture, MultipleThreadsRecoverIndependently)
{
    img.writeDurable(dataA, 99);
    img.writeDurable(dataB, 98);
    writeEntry(0, 0, LogType::Store, dataA, 1, true);
    writeEntry(3, 0, LogType::Store, dataB, 2, true);
    auto report = mgr.recover(img, 8);
    EXPECT_EQ(report.entriesRolledBack, 2u);
    EXPECT_EQ(report.threadsWithUncommittedWork, 2u);
    EXPECT_EQ(img.readPersisted(dataA), 1u);
    EXPECT_EQ(img.readPersisted(dataB), 2u);
}

} // namespace
} // namespace strand
