/**
 * @file
 * Unit tests for the persistent heap allocator: arena isolation,
 * line alignment, free-list reuse, and exhaustion.
 */

#include <gtest/gtest.h>

#include "runtime/heap.hh"

namespace strand
{
namespace
{

TEST(Heap, AllocationsAreLineAlignedAndInPm)
{
    LogLayout layout;
    PersistentHeap heap(layout, 2);
    for (int i = 0; i < 16; ++i) {
        Addr addr = heap.alloc(0, 24);
        EXPECT_EQ(addr % lineBytes, 0u);
        EXPECT_TRUE(isPersistentAddr(addr));
        EXPECT_GE(addr, layout.heapBase());
    }
}

TEST(Heap, SmallSizesRoundUpToALine)
{
    LogLayout layout;
    PersistentHeap heap(layout, 1);
    Addr a = heap.alloc(0, 1);
    Addr b = heap.alloc(0, 64);
    EXPECT_EQ(b - a, static_cast<Addr>(lineBytes));
    EXPECT_EQ(heap.bytesUsed(0), 2u * lineBytes);
}

TEST(Heap, ArenasAreDisjointPerThread)
{
    LogLayout layout;
    PersistentHeap heap(layout, 4);
    Addr a0 = heap.alloc(0, 64);
    Addr a1 = heap.alloc(1, 64);
    Addr a3 = heap.alloc(3, 64);
    // Arena stride: quarter of the heap each.
    Addr quarter = (layout.heapEnd() - layout.heapBase()) / 4 &
                   ~static_cast<Addr>(lineBytes - 1);
    EXPECT_EQ(a1 - a0, quarter);
    EXPECT_EQ(a3 - a0, 3 * quarter);
}

TEST(Heap, FreeListReusesSameSizeClass)
{
    LogLayout layout;
    PersistentHeap heap(layout, 1);
    Addr a = heap.alloc(0, 64);
    heap.free(0, a, 64);
    Addr b = heap.alloc(0, 64);
    EXPECT_EQ(a, b);
    // A different size class does not reuse it.
    heap.free(0, b, 64);
    Addr c = heap.alloc(0, 128);
    EXPECT_NE(c, a);
}

TEST(Heap, MultipleFreesServeLifo)
{
    LogLayout layout;
    PersistentHeap heap(layout, 1);
    Addr a = heap.alloc(0, 64);
    Addr b = heap.alloc(0, 64);
    heap.free(0, a, 64);
    heap.free(0, b, 64);
    EXPECT_EQ(heap.alloc(0, 64), b);
    EXPECT_EQ(heap.alloc(0, 64), a);
}

TEST(Heap, ExhaustionIsFatal)
{
    LogLayout layout;
    PersistentHeap heap(layout, 8);
    // One arena is (heapEnd-heapBase)/8; allocate beyond it.
    Addr arena = (layout.heapEnd() - layout.heapBase()) / 8;
    EXPECT_THROW(
        {
            for (Addr used = 0; used <= arena; used += 1 << 20)
                heap.alloc(7, 1 << 20);
        },
        std::invalid_argument);
}

TEST(Heap, ZeroThreadsIsFatal)
{
    LogLayout layout;
    EXPECT_THROW(PersistentHeap(layout, 0), std::invalid_argument);
}

} // namespace
} // namespace strand
