/**
 * @file
 * Tests for the Table II workloads: functional correctness of the
 * recorded data structures (invariants hold on the functional
 * state), trace well-formedness, and end-to-end agreement between
 * functional and persisted state after a full timing run.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "runtime/instrumentor.hh"
#include "workloads/workload.hh"

namespace strand
{
namespace
{

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.numThreads = 4;
    p.opsPerThread = 30;
    p.seed = 99;
    return p;
}

class WorkloadSuite : public ::testing::TestWithParam<WorkloadKind>
{
};

TEST_P(WorkloadSuite, FunctionalStateSatisfiesInvariants)
{
    auto workload = makeWorkload(GetParam());
    LogLayout layout;
    TraceRecorder rec(4);
    PersistentHeap heap(layout, 4);
    workload->record(rec, heap, smallParams());

    auto read = [&](Addr addr) { return rec.peek(addr); };
    EXPECT_EQ(workload->checkInvariants(read), "");
}

TEST_P(WorkloadSuite, TraceIsWellFormed)
{
    auto workload = makeWorkload(GetParam());
    LogLayout layout;
    TraceRecorder rec(4);
    PersistentHeap heap(layout, 4);
    workload->record(rec, heap, smallParams());
    RegionTrace trace = rec.takeTrace();

    ASSERT_EQ(trace.threads.size(), 4u);
    for (const ThreadTrace &thread : trace.threads) {
        int regionDepth = 0;
        int lockDepth = 0;
        std::uint64_t loggedStores = 0;
        for (const TraceEvent &ev : thread) {
            switch (ev.kind) {
              case TraceEvent::Kind::RegionBegin:
                ++regionDepth;
                EXPECT_EQ(regionDepth, 1);
                break;
              case TraceEvent::Kind::RegionEnd:
                --regionDepth;
                EXPECT_EQ(regionDepth, 0);
                break;
              case TraceEvent::Kind::LockAcquire:
                ++lockDepth;
                break;
              case TraceEvent::Kind::LockRelease:
                --lockDepth;
                EXPECT_GE(lockDepth, 0);
                break;
              case TraceEvent::Kind::LoggedStore:
                ++loggedStores;
                EXPECT_EQ(regionDepth, 1);
                EXPECT_TRUE(isPersistentAddr(ev.addr));
                break;
              default:
                break;
            }
        }
        EXPECT_EQ(regionDepth, 0);
        EXPECT_EQ(lockDepth, 0);
        EXPECT_GT(loggedStores, 0u);
    }
}

TEST_P(WorkloadSuite, FullRunPersistsFunctionalState)
{
    auto workload = makeWorkload(GetParam());
    LogLayout layout;
    WorkloadParams wp;
    wp.numThreads = 2;
    wp.opsPerThread = 12;
    wp.seed = 5;
    TraceRecorder rec(wp.numThreads);
    PersistentHeap heap(layout, wp.numThreads);
    workload->record(rec, heap, wp);

    InstrumentorParams ip;
    ip.design = HwDesign::StrandWeaver;
    ip.model = PersistencyModel::Txn;
    Instrumentor instr(ip);

    SystemConfig cfg;
    cfg.numCores = wp.numThreads;
    cfg.design = HwDesign::StrandWeaver;
    System sys(cfg);
    sys.seedImage(rec.preloadedWords());
    RegionTrace trace = rec.takeTrace();
    sys.loadStreams(instr.lower(trace));
    sys.run();

    // Every workload-visible persistent word must be durable with
    // its final functional value.
    const MemoryImage &img = sys.memory();
    for (auto [addr, value] : rec.functionalMemory()) {
        if (!isPersistentAddr(addr) || addr < layout.heapBase())
            continue;
        EXPECT_EQ(img.readPersisted(addr), value)
            << "word " << addr << " diverged";
    }

    // And structural invariants hold on the persisted view.
    auto read = [&](Addr addr) { return img.readPersisted(addr); };
    EXPECT_EQ(workload->checkInvariants(read), "");
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite,
    ::testing::ValuesIn(allWorkloads),
    [](const ::testing::TestParamInfo<WorkloadKind> &info) {
        std::string name = workloadName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(Workloads, NamesAreStable)
{
    EXPECT_STREQ(workloadName(WorkloadKind::Queue), "queue");
    EXPECT_STREQ(workloadName(WorkloadKind::NStoreWrHeavy),
                 "nstore-wr");
    EXPECT_STREQ(makeWorkload(WorkloadKind::Tpcc)->name(), "tpcc");
}

TEST(Workloads, WriteIntensityOrdering)
{
    // N-Store write-heavy must emit more logged stores than
    // read-heavy for the same op count (Table II's CKC ordering).
    auto loggedStores = [](WorkloadKind kind) {
        auto workload = makeWorkload(kind);
        LogLayout layout;
        TraceRecorder rec(2);
        PersistentHeap heap(layout, 2);
        WorkloadParams p;
        p.numThreads = 2;
        p.opsPerThread = 50;
        workload->record(rec, heap, p);
        std::uint64_t count = 0;
        RegionTrace trace = rec.takeTrace();
        for (const auto &thread : trace.threads)
            for (const auto &ev : thread)
                if (ev.kind == TraceEvent::Kind::LoggedStore)
                    ++count;
        return count;
    };
    std::uint64_t rd = loggedStores(WorkloadKind::NStoreRdHeavy);
    std::uint64_t bal = loggedStores(WorkloadKind::NStoreBalanced);
    std::uint64_t wr = loggedStores(WorkloadKind::NStoreWrHeavy);
    EXPECT_LT(rd, bal);
    EXPECT_LT(bal, wr);
}

} // namespace
} // namespace strand
