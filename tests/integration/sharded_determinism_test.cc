/**
 * @file
 * SW_SHARDS determinism: sharding is a performance knob, never a
 * semantics knob.
 *
 * The contract under test: a run at any shard count is bit-identical
 * to the serial run — same finish ticks, same persist trace (hashed
 * and compared record for record), same aggregate metrics, same
 * PMO-san counters, and same crash-recovery verdicts. The windowed
 * run loop only paces how far the kernel may advance per step; it
 * must never change what the kernel does. A mid-window
 * System::snapshot()/restore() round trip under sharding must
 * likewise replay bit-identically.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "crash/crash_harness.hh"
#include "runtime/instrumentor.hh"
#include "sanitizer/pmo_sanitizer.hh"

namespace strand
{
namespace
{

/** FNV-1a over the persist trace: the cross-shard identity digest. */
std::uint64_t
traceHash(const std::vector<PersistRecord> &trace)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (unsigned byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    for (const PersistRecord &rec : trace) {
        mix(rec.lineAddr);
        mix(rec.when);
        mix(rec.requester);
        mix(static_cast<std::uint64_t>(rec.origin));
    }
    return h;
}

/** Streams and a shard-parameterized system factory. */
struct Rig
{
    RecordedWorkload recorded;
    InstrumentorParams ip;
    std::vector<OpStream> streams;

    Rig(HwDesign design, PersistencyModel model, LogStyle style)
    {
        WorkloadParams params;
        params.numThreads = 3;
        params.opsPerThread = 10;
        params.seed = 31;
        recorded = recordWorkload(WorkloadKind::Queue, params);
        ip.design = design;
        ip.model = model;
        ip.logStyle = style;
        Instrumentor instr(ip);
        streams = instr.lower(recorded.trace);
    }

    std::unique_ptr<System>
    buildSystem(unsigned shards)
    {
        SystemConfig cfg;
        cfg.numCores = static_cast<unsigned>(streams.size());
        cfg.design = ip.design;
        cfg.layout = ip.layout;
        cfg.shards = shards;
        auto sys = std::make_unique<System>(cfg);
        sys->seedImage(recorded.preload);
        auto copies = streams;
        sys->loadStreams(std::move(copies));
        return sys;
    }
};

/** Everything that must be bit-identical across shard counts. */
struct Fingerprint
{
    std::vector<PersistRecord> trace;
    std::uint64_t hash = 0;
    Tick finish = 0;
    std::vector<Tick> coreFinish;
    double clwbs = 0;
    double cycles = 0;
    double persistStalls = 0;
    std::uint64_t sanChecked = 0;
    std::uint64_t sanViolations = 0;

    static Fingerprint
    of(System &sys, PmoSanitizer &san)
    {
        Fingerprint fp;
        fp.trace = sys.persistTrace();
        fp.hash = traceHash(fp.trace);
        fp.finish = sys.finishTick();
        for (CoreId i = 0; i < sys.numCores(); ++i)
            fp.coreFinish.push_back(sys.finishTickOf(i));
        fp.clwbs = sys.totalClwbs();
        fp.cycles = sys.totalCycles();
        fp.persistStalls = sys.totalPersistStalls();
        fp.sanChecked = san.snapshotState().checkedCount;
        fp.sanViolations = san.snapshotState().totalViolations;
        return fp;
    }

    void
    expectEqual(const Fingerprint &other, const std::string &label) const
    {
        EXPECT_EQ(hash, other.hash)
            << label << ": persist-trace hashes differ";
        EXPECT_TRUE(trace == other.trace)
            << label << ": persist traces differ (" << trace.size()
            << " vs " << other.trace.size() << " records)";
        EXPECT_EQ(finish, other.finish) << label;
        EXPECT_EQ(coreFinish, other.coreFinish) << label;
        EXPECT_EQ(clwbs, other.clwbs) << label;
        EXPECT_EQ(cycles, other.cycles) << label;
        EXPECT_EQ(persistStalls, other.persistStalls) << label;
        EXPECT_EQ(sanChecked, other.sanChecked) << label;
        EXPECT_EQ(sanViolations, other.sanViolations) << label;
    }
};

Fingerprint
runSharded(Rig &rig, unsigned shards)
{
    auto sys = rig.buildSystem(shards);
    PmoSanitizer san;
    sys->addObserver(&san);
    sys->run();
    if (shards > 1) {
        EXPECT_GT(sys->shardWindows(), 0u)
            << "sharded run never exercised the windowed loop";
    }
    Fingerprint fp = Fingerprint::of(*sys, san);
    sys->removeObserver(&san);
    return fp;
}

class ShardedDeterminism : public ::testing::TestWithParam<HwDesign>
{
};

TEST_P(ShardedDeterminism, UndoAndRedoRunsBitIdenticalAcrossShards)
{
    const HwDesign design = GetParam();
    struct Lowering
    {
        PersistencyModel model;
        LogStyle style;
        const char *label;
    };
    const Lowering lowerings[] = {
        {PersistencyModel::Sfr, LogStyle::Undo, "undo"},
        {PersistencyModel::Txn, LogStyle::Redo, "redo"},
    };
    for (const Lowering &low : lowerings) {
        Rig rig(design, low.model, low.style);
        Fingerprint serial = runSharded(rig, 1);
        ASSERT_GT(serial.trace.size(), 0u)
            << low.label << ": workload produced no persists";
        for (unsigned shards : {2u, 4u}) {
            Fingerprint sharded = runSharded(rig, shards);
            serial.expectEqual(sharded,
                               std::string(low.label) + " shards=" +
                                   std::to_string(shards));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, ShardedDeterminism, ::testing::ValuesIn(allDesigns),
    [](const ::testing::TestParamInfo<HwDesign> &info) {
        std::string name = hwDesignName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(ShardedDeterminismCrash, RecoveryVerdictsBitIdentical)
{
    WorkloadParams params;
    params.numThreads = 2;
    params.opsPerThread = 16;
    params.seed = 7;
    RecordedWorkload recorded =
        recordWorkload(WorkloadKind::Hashmap, params);

    auto cell = [&](unsigned shards) {
        CrashHarnessConfig config;
        config.pointBudget = 12;
        config.pmosan = true;
        config.experiment.baseSystem.shards = shards;
        return runCrashCell(recorded, HwDesign::StrandWeaver,
                            PersistencyModel::Sfr, config);
    };
    const CrashCellResult serial = cell(1);
    ASSERT_GT(serial.pointsTested, 0u);
    EXPECT_EQ(serial.pointsPassed, serial.pointsTested);

    for (unsigned shards : {2u, 4u}) {
        const CrashCellResult sharded = cell(shards);
        const std::string label = "shards=" + std::to_string(shards);
        EXPECT_EQ(sharded.pointsTested, serial.pointsTested) << label;
        EXPECT_EQ(sharded.pointsPassed, serial.pointsPassed) << label;
        EXPECT_EQ(sharded.pointsInjected, serial.pointsInjected)
            << label;
        EXPECT_EQ(sharded.totalRolledBack, serial.totalRolledBack)
            << label;
        EXPECT_EQ(sharded.totalReplayed, serial.totalReplayed)
            << label;
        ASSERT_EQ(sharded.failures.size(), serial.failures.size())
            << label;
        for (std::size_t i = 0; i < serial.failures.size(); ++i) {
            EXPECT_EQ(sharded.failures[i].when,
                      serial.failures[i].when)
                << label;
            EXPECT_EQ(sharded.failures[i].violation,
                      serial.failures[i].violation)
                << label;
        }
    }
}

TEST(ShardedDeterminismSnapshot, MidWindowRestoreReplaysBitIdentically)
{
    Rig rig(HwDesign::StrandWeaver, PersistencyModel::Sfr,
            LogStyle::Undo);

    // Uninterrupted sharded reference run.
    Fingerprint reference = runSharded(rig, 4);
    ASSERT_GT(reference.finish, 0u);

    // Pick a capture tick that is deliberately NOT aligned to the
    // window quantum, so the capture lands mid-window.
    const Tick mid = (reference.finish / 2) | 1;

    auto sys = rig.buildSystem(4);
    PmoSanitizer san;
    sys->addObserver(&san);
    ASSERT_FALSE(sys->runUntil(mid));
    SimSnapshot snap = sys->snapshot();
    const PmoSanitizer::State sanAtCapture = san.snapshotState();

    // Finish the interrupted run and fingerprint it.
    sys->run();
    Fingerprint first = Fingerprint::of(*sys, san);
    reference.expectEqual(first, "interrupted sharded run");

    // Rewind and replay the tail: still bit-identical.
    sys->restore(snap);
    san.restoreState(sanAtCapture);
    sys->run();
    Fingerprint replay = Fingerprint::of(*sys, san);
    reference.expectEqual(replay, "mid-window restore replay");
    sys->removeObserver(&san);
}

} // namespace
} // namespace strand
