/**
 * @file
 * End-to-end crash-consistency tests: a multi-threaded bank-transfer
 * workload is recorded, lowered per (hardware design x language
 * model), executed on the full timing stack, crashed at systematic
 * points, and recovered. Failure atomicity must hold: the sum of all
 * account balances is invariant under any crash point, for every
 * recoverable design. The NON-ATOMIC design, which removes the
 * log/update ordering, must be observably unsafe — demonstrating the
 * tests have teeth and that the ordering primitives are what provide
 * safety.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/system.hh"
#include "runtime/instrumentor.hh"
#include "runtime/recorder.hh"
#include "runtime/recovery.hh"
#include "sim/random.hh"

namespace strand
{
namespace
{

constexpr unsigned numAccounts = 16;
constexpr std::uint64_t initialBalance = 1000;
constexpr Addr accountBase = pmBase + 0x2000000;

Addr
accountAddr(unsigned idx)
{
    return accountBase + idx * lineBytes; // one line per account
}

/**
 * Record a transfer workload: @p threads threads, @p regionsPer
 * regions each, every region moves one unit between two accounts
 * under a global lock.
 */
struct RecordedWorkload
{
    RegionTrace trace;
    std::unordered_map<Addr, std::uint64_t> preload;
    std::uint64_t expectedTotal;
};

RecordedWorkload
recordTransfers(unsigned threads, unsigned regionsPer,
                std::uint64_t seed)
{
    TraceRecorder rec(threads);
    Rng rng(seed);
    for (unsigned a = 0; a < numAccounts; ++a)
        rec.preload(accountAddr(a), initialBalance);

    for (unsigned r = 0; r < regionsPer; ++r) {
        for (CoreId t = 0; t < threads; ++t) {
            unsigned from = rng.nextBounded(numAccounts);
            unsigned to = (from + 1 + rng.nextBounded(numAccounts - 1)) %
                          numAccounts;
            rec.lockAcquire(t, 1);
            rec.regionBegin(t);
            std::uint64_t balFrom = rec.read(t, accountAddr(from));
            std::uint64_t balTo = rec.read(t, accountAddr(to));
            rec.compute(t, 20);
            rec.write(t, accountAddr(from), balFrom - 1);
            rec.write(t, accountAddr(to), balTo + 1);
            rec.regionEnd(t);
            rec.lockRelease(t, 1);
        }
    }

    RecordedWorkload result;
    result.preload = rec.preloadedWords();
    result.trace = rec.takeTrace();
    result.expectedTotal =
        static_cast<std::uint64_t>(numAccounts) * initialBalance;
    return result;
}

std::uint64_t
persistedTotal(const MemoryImage &img)
{
    std::uint64_t total = 0;
    for (unsigned a = 0; a < numAccounts; ++a)
        total += img.readPersisted(accountAddr(a));
    return total;
}

/** Build a system for @p design and load the lowered workload. */
std::unique_ptr<System>
buildSystem(const RecordedWorkload &workload, HwDesign design,
            PersistencyModel model, unsigned /* threads */)
{
    InstrumentorParams ip;
    ip.design = design;
    ip.model = model;
    Instrumentor instr(ip);
    auto streams = instr.lower(workload.trace);

    SystemConfig cfg;
    cfg.numCores = static_cast<unsigned>(streams.size());
    cfg.design = design;

    auto sys = std::make_unique<System>(cfg);
    sys->seedImage(workload.preload);
    sys->loadStreams(std::move(streams));
    return sys;
}

using DesignModel = std::tuple<HwDesign, PersistencyModel>;

class CrashRecovery : public ::testing::TestWithParam<DesignModel>
{
};

TEST_P(CrashRecovery, CompletedRunMatchesFunctionalState)
{
    auto [design, model] = GetParam();
    constexpr unsigned threads = 2;
    RecordedWorkload workload = recordTransfers(threads, 8, 42);
    auto sys = buildSystem(workload, design, model, threads);
    sys->run();

    // After completion (all commits drained), every account's final
    // functional value must be durable.
    TraceRecorder check(threads);
    EXPECT_EQ(persistedTotal(sys->memory()), workload.expectedTotal);
}

TEST_P(CrashRecovery, TotalIsInvariantAcrossCrashPoints)
{
    auto [design, model] = GetParam();
    constexpr unsigned threads = 2;
    RecordedWorkload workload = recordTransfers(threads, 8, 7);

    // Reference run to learn the total duration and persist times.
    Tick endTick;
    std::vector<Tick> persistTicks;
    {
        auto sys = buildSystem(workload, design, model, threads);
        endTick = sys->run();
        for (const PersistRecord &p : sys->persistTrace())
            persistTicks.push_back(p.when);
    }
    ASSERT_FALSE(persistTicks.empty());

    // Crash at evenly spaced points plus just-after selected
    // persists (the windows where ordering bugs bite).
    std::vector<Tick> crashPoints;
    for (unsigned i = 1; i <= 6; ++i)
        crashPoints.push_back(endTick * i / 7);
    for (std::size_t i = 0; i < persistTicks.size();
         i += std::max<std::size_t>(1, persistTicks.size() / 10)) {
        crashPoints.push_back(persistTicks[i] + 1);
    }

    RecoveryManager recovery{LogLayout{}};
    for (Tick crashAt : crashPoints) {
        auto sys = buildSystem(workload, design, model, threads);
        sys->runUntil(crashAt);
        sys->crash();
        recovery.recover(sys->memory(), threads);
        EXPECT_EQ(persistedTotal(sys->memory()),
                  workload.expectedTotal)
            << "design=" << hwDesignName(design)
            << " model=" << persistencyModelName(model)
            << " crashAt=" << crashAt;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRecoverableDesigns, CrashRecovery,
    ::testing::Combine(
        ::testing::Values(HwDesign::IntelX86, HwDesign::Hops,
                          HwDesign::NoPersistQueue,
                          HwDesign::StrandWeaver),
        ::testing::Values(PersistencyModel::Txn, PersistencyModel::Sfr,
                          PersistencyModel::Atlas)),
    [](const ::testing::TestParamInfo<DesignModel> &info) {
        std::string name = hwDesignName(std::get<0>(info.param));
        name += "_";
        name += persistencyModelName(std::get<1>(info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// The NON-ATOMIC design removes the log/update pair ordering. This
// deterministic litmus drives the exact hazard: the undo-log line is
// a cold PM miss (its flush stalls on the line fill) while the data
// line is hot, so without a persist barrier the data reaches the ADR
// domain first — the state every crash-consistency argument must
// forbid. StrandWeaver's persist barrier forbids it on identical
// hardware.
TEST(CrashRecoveryNonAtomic, DataCanPersistBeforeItsLog)
{
    LogLayout layout;
    const Addr logLine = layout.entryAddr(0, 0);
    const Addr dataLine = accountAddr(0);

    auto runLitmus = [&](bool withBarrier) {
        SystemConfig cfg;
        cfg.numCores = 1;
        cfg.design = withBarrier ? HwDesign::StrandWeaver
                                 : HwDesign::NonAtomic;
        cfg.warmCaches = false; // the log line must miss to PM
        System sys(cfg);

        // Warm only the data line: store + flush + drain.
        OpStream warm;
        warm.push_back(Op::store(dataLine, 1));
        warm.push_back(Op::clwb(dataLine));
        warm.push_back(Op::joinStrand());
        // The hazard window: log write (cold miss delays its flush),
        // then the in-place update on a hot line.
        warm.push_back(Op::store(logLine, 77));
        warm.push_back(Op::clwb(logLine));
        if (withBarrier)
            warm.push_back(Op::persistBarrier());
        else
            warm.push_back(Op::newStrand());
        warm.push_back(Op::store(dataLine, 42));
        warm.push_back(Op::clwb(dataLine));
        warm.push_back(Op::joinStrand());
        sys.loadStreams({std::move(warm)});
        sys.run();

        // Inspect the persist order of the two lines (after the
        // warm-up persist of the data line).
        Tick logPersist = 0, dataPersist = 0;
        for (const PersistRecord &p : sys.persistTrace()) {
            if (p.lineAddr == lineAlign(logLine))
                logPersist = p.when;
            else if (p.lineAddr == lineAlign(dataLine))
                dataPersist = p.when; // keeps the last (value 42)
        }
        EXPECT_NE(logPersist, 0u);
        EXPECT_NE(dataPersist, 0u);
        return dataPersist < logPersist;
    };

    // Non-atomic: the new value is durable while the log is not — a
    // crash in between would be unrecoverable.
    EXPECT_TRUE(runLitmus(false));
    // StrandWeaver: the persist barrier forbids exactly this.
    EXPECT_FALSE(runLitmus(true));
}

} // namespace
} // namespace strand
