# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/integration/test_crash_recovery[1]_include.cmake")
include("/root/repo/tests/integration/test_hw_litmus[1]_include.cmake")
include("/root/repo/tests/integration/test_pmo_conformance[1]_include.cmake")
include("/root/repo/tests/integration/test_design_matrix[1]_include.cmake")
include("/root/repo/tests/integration/test_snapshot_restore[1]_include.cmake")
include("/root/repo/tests/integration/test_sharded_determinism[1]_include.cmake")
