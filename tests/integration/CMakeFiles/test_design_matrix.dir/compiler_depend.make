# Empty compiler generated dependencies file for test_design_matrix.
# This may be replaced when dependencies are built.
