file(REMOVE_RECURSE
  "CMakeFiles/test_design_matrix.dir/design_matrix_test.cc.o"
  "CMakeFiles/test_design_matrix.dir/design_matrix_test.cc.o.d"
  "test_design_matrix"
  "test_design_matrix.pdb"
  "test_design_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_design_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
