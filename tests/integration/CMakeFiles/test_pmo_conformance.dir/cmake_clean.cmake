file(REMOVE_RECURSE
  "CMakeFiles/test_pmo_conformance.dir/pmo_conformance_test.cc.o"
  "CMakeFiles/test_pmo_conformance.dir/pmo_conformance_test.cc.o.d"
  "test_pmo_conformance"
  "test_pmo_conformance.pdb"
  "test_pmo_conformance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmo_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
