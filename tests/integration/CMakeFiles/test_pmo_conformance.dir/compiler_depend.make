# Empty compiler generated dependencies file for test_pmo_conformance.
# This may be replaced when dependencies are built.
