file(REMOVE_RECURSE
  "CMakeFiles/test_hw_litmus.dir/hw_litmus_test.cc.o"
  "CMakeFiles/test_hw_litmus.dir/hw_litmus_test.cc.o.d"
  "test_hw_litmus"
  "test_hw_litmus.pdb"
  "test_hw_litmus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
