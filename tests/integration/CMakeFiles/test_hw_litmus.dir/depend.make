# Empty dependencies file for test_hw_litmus.
# This may be replaced when dependencies are built.
