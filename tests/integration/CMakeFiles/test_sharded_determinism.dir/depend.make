# Empty dependencies file for test_sharded_determinism.
# This may be replaced when dependencies are built.
