file(REMOVE_RECURSE
  "CMakeFiles/test_sharded_determinism.dir/sharded_determinism_test.cc.o"
  "CMakeFiles/test_sharded_determinism.dir/sharded_determinism_test.cc.o.d"
  "test_sharded_determinism"
  "test_sharded_determinism.pdb"
  "test_sharded_determinism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharded_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
