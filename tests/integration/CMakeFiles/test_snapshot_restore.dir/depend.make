# Empty dependencies file for test_snapshot_restore.
# This may be replaced when dependencies are built.
