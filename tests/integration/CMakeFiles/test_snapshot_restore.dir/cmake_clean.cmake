file(REMOVE_RECURSE
  "CMakeFiles/test_snapshot_restore.dir/snapshot_restore_test.cc.o"
  "CMakeFiles/test_snapshot_restore.dir/snapshot_restore_test.cc.o.d"
  "test_snapshot_restore"
  "test_snapshot_restore.pdb"
  "test_snapshot_restore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snapshot_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
