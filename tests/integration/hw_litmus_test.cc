/**
 * @file
 * Hardware litmus tests: the persist-ordering scenarios of Figure 2,
 * executed on the full timing simulator (not just the formal model).
 * Each test drives op streams through real cores, persist engines,
 * caches, and the PM controller, then checks the observed persist
 * trace: required orderings always hold; forbidden states are
 * unreachable; permitted reorderings actually occur.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/system.hh"

namespace strand
{
namespace
{

constexpr Addr A = pmBase + 0x1000000;
constexpr Addr B = pmBase + 0x1000400;
constexpr Addr C = pmBase + 0x1000800;
constexpr Addr D = pmBase + 0x1000c00;

class HwLitmus : public ::testing::Test
{
  protected:
    /** Build a system and run the given per-core streams. */
    void
    run(std::vector<OpStream> streams,
        HwDesign design = HwDesign::StrandWeaver)
    {
        SystemConfig cfg;
        cfg.numCores = static_cast<unsigned>(streams.size());
        cfg.design = design;
        sys = std::make_unique<System>(cfg);
        sys->loadStreams(std::move(streams));
        sys->run();
    }

    /** Position of the first persist of @p addr's line (or npos). */
    std::size_t
    persistPos(Addr addr) const
    {
        const auto &trace = sys->persistTrace();
        for (std::size_t i = 0; i < trace.size(); ++i)
            if (trace[i].lineAddr == lineAlign(addr))
                return i;
        return static_cast<std::size_t>(-1);
    }

    /** Position of the last persist of @p addr's line. */
    std::size_t
    lastPersistPos(Addr addr) const
    {
        const auto &trace = sys->persistTrace();
        std::size_t pos = static_cast<std::size_t>(-1);
        for (std::size_t i = 0; i < trace.size(); ++i)
            if (trace[i].lineAddr == lineAlign(addr))
                pos = i;
        return pos;
    }

    bool
    persisted(Addr addr) const
    {
        return persistPos(addr) != static_cast<std::size_t>(-1);
    }

    /** Prefix warm-up stores (plus settle time) so the litmus
     * measures persist ordering, not cold-miss serialization. */
    static OpStream
    withWarm(std::initializer_list<Addr> lines, OpStream body)
    {
        OpStream s;
        for (Addr line : lines)
            s.push_back(Op::store(line, 0));
        s.push_back(Op::compute(1600)); // let the RFOs settle
        for (const Op &op : body)
            s.push_back(op);
        return s;
    }

    std::unique_ptr<System> sys;
};

// Figure 2(a,b): PB orders A before B within a strand; C on a new
// strand is unordered and — given a head start — persists first.
TEST_F(HwLitmus, IntraStrandBarrierOrders)
{
    OpStream s = withWarm({A, B, C}, {});
    s.push_back(Op::store(A, 1));
    s.push_back(Op::clwb(A));
    s.push_back(Op::persistBarrier());
    s.push_back(Op::store(B, 1));
    s.push_back(Op::clwb(B));
    s.push_back(Op::newStrand());
    s.push_back(Op::store(C, 1));
    s.push_back(Op::clwb(C));
    s.push_back(Op::joinStrand());
    run({s});

    ASSERT_TRUE(persisted(A) && persisted(B) && persisted(C));
    EXPECT_LT(persistPos(A), persistPos(B)); // Eq. 1
    // C must not wait for the barrier: it beats B (which waits for
    // A's full flush round trip).
    EXPECT_LT(persistPos(C), persistPos(B));
}

// Figure 2(c,d): JoinStrand orders persists on prior strands before
// subsequent ones — the forbidden state "C before A or B" never
// appears.
TEST_F(HwLitmus, JoinStrandOrdersAcrossStrands)
{
    OpStream s;
    s.push_back(Op::store(A, 1));
    s.push_back(Op::clwb(A));
    s.push_back(Op::newStrand());
    s.push_back(Op::store(B, 1));
    s.push_back(Op::clwb(B));
    s.push_back(Op::joinStrand());
    s.push_back(Op::store(C, 1));
    s.push_back(Op::clwb(C));
    s.push_back(Op::joinStrand());
    run({s});

    EXPECT_LT(persistPos(A), persistPos(C));
    EXPECT_LT(persistPos(B), persistPos(C));
}

// Figure 2(e,f): strong persist atomicity across strands — two
// persists of A follow program order even on different strands, and
// B (behind a barrier on strand 1) follows transitively.
TEST_F(HwLitmus, StrongPersistAtomicityWithinThread)
{
    OpStream s;
    s.push_back(Op::store(A, 1));
    s.push_back(Op::clwb(A));
    s.push_back(Op::newStrand());
    s.push_back(Op::store(A, 2));
    s.push_back(Op::clwb(A));
    s.push_back(Op::persistBarrier());
    s.push_back(Op::store(B, 1));
    s.push_back(Op::clwb(B));
    s.push_back(Op::joinStrand());
    run({s});

    // The final durable value of A must be the program-order-last
    // store: recovery never observes A regressing.
    EXPECT_EQ(sys->memory().readPersisted(A), 2u);
    // B persists after the second A persist (barrier).
    EXPECT_LT(lastPersistPos(A), persistPos(B));
}

// Figure 2(g,h): a load of A on another strand does not order B's
// persist — B may persist while A's flush is still in flight.
TEST_F(HwLitmus, LoadsDoNotOrderPersists)
{
    OpStream s;
    // Warm both lines into the L1 first so the litmus measures
    // persist ordering, not cold-miss skew.
    s.push_back(Op::store(A, 0));
    s.push_back(Op::store(B, 0));
    s.push_back(Op::compute(800));
    s.push_back(Op::store(A, 1));
    s.push_back(Op::clwb(A));
    s.push_back(Op::newStrand());
    s.push_back(Op::load(A));
    s.push_back(Op::store(B, 1));
    s.push_back(Op::clwb(B));
    s.push_back(Op::joinStrand());
    run({s});
    ASSERT_TRUE(persisted(A) && persisted(B));
    // Both flushed concurrently: B completes within one flush round
    // of A (no serialization), i.e. they are adjacent in the trace
    // in either order.
    // The strong assertion is simply that the run did not serialize:
    // B persists before A's +200ns would imply otherwise; we check
    // tick distance.
    const auto &trace = sys->persistTrace();
    Tick tA = trace[persistPos(A)].when;
    Tick tB = trace[persistPos(B)].when;
    EXPECT_LT(tB > tA ? tB - tA : tA - tB, nsToTicks(50));
}

// Figure 2(i,j): inter-thread SPA through the snoop interlock. Core
// 0 dirties B with a CLWB in flight; core 1 steals the line and
// persists its own B. Core 0's persist must reach PM first.
TEST_F(HwLitmus, InterThreadSpaThroughSnoopStall)
{
    OpStream s0;
    s0.push_back(Op::store(A, 1));
    s0.push_back(Op::clwb(A));
    s0.push_back(Op::newStrand());
    s0.push_back(Op::store(B, 1));
    s0.push_back(Op::clwb(B));
    s0.push_back(Op::joinStrand());

    OpStream s1;
    // Give core 0 time to own B dirty with the flush in flight.
    s1.push_back(Op::compute(40));
    s1.push_back(Op::store(B, 2)); // read-exclusive steal
    s1.push_back(Op::clwb(B));
    s1.push_back(Op::persistBarrier());
    s1.push_back(Op::store(C, 1));
    s1.push_back(Op::clwb(C));
    s1.push_back(Op::joinStrand());

    run({std::move(s0), std::move(s1)});

    // Final durable value of B is core 1's (it stored last in
    // coherence order), and core 1's C follows its B persist.
    EXPECT_EQ(sys->memory().readPersisted(B), 2u);
    const auto &trace = sys->persistTrace();
    // Find core-0's B persist and core-1's B persist.
    std::size_t b0 = static_cast<std::size_t>(-1);
    std::size_t b1 = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].lineAddr != lineAlign(B))
            continue;
        if (trace[i].requester == 0 && b0 == static_cast<std::size_t>(-1))
            b0 = i;
        if (trace[i].requester == 1)
            b1 = i;
    }
    ASSERT_NE(b0, static_cast<std::size_t>(-1));
    ASSERT_NE(b1, static_cast<std::size_t>(-1));
    EXPECT_LT(b0, b1); // coherence order respected in PMO
    EXPECT_LT(b1, persistPos(C));
}

// The paper's running example (Figure 4): A | PB | B on strand 0, C
// on strand 1, JS, then D. Required: A < B, {A,B,C} < D; C
// concurrent with A.
TEST_F(HwLitmus, RunningExampleFigure4)
{
    OpStream s = withWarm({A, B, C, D}, {});
    s.push_back(Op::store(A, 1));
    s.push_back(Op::clwb(A));
    s.push_back(Op::persistBarrier());
    s.push_back(Op::store(B, 1));
    s.push_back(Op::clwb(B));
    s.push_back(Op::newStrand());
    s.push_back(Op::store(C, 1));
    s.push_back(Op::clwb(C));
    s.push_back(Op::joinStrand());
    s.push_back(Op::store(D, 1));
    s.push_back(Op::clwb(D));
    s.push_back(Op::joinStrand());
    run({s});

    EXPECT_LT(persistPos(A), persistPos(B));
    EXPECT_LT(persistPos(A), persistPos(D));
    EXPECT_LT(persistPos(B), persistPos(D));
    EXPECT_LT(persistPos(C), persistPos(D));
    // C overlaps A's flush (concurrency actually realized).
    const auto &trace = sys->persistTrace();
    Tick tA = trace[persistPos(A)].when;
    Tick tC = trace[persistPos(C)].when;
    EXPECT_LT(tC > tA ? tC - tA : tA - tC, nsToTicks(50));
}

// SFENCE on the Intel baseline orders everything — the same program
// that reorders under StrandWeaver serializes under Intel.
TEST_F(HwLitmus, IntelSerializesWhereStrandsOverlap)
{
    auto streamFor = [](HwDesign design) {
        OpStream s = withWarm({A, B, C}, {});
        s.push_back(Op::store(A, 1));
        s.push_back(Op::clwb(A));
        if (design == HwDesign::IntelX86)
            s.push_back(Op::sfence());
        else
            s.push_back(Op::persistBarrier());
        s.push_back(Op::store(B, 1));
        s.push_back(Op::clwb(B));
        if (design != HwDesign::IntelX86) {
            s.push_back(Op::newStrand());
        }
        s.push_back(Op::store(C, 1));
        s.push_back(Op::clwb(C));
        if (design == HwDesign::IntelX86)
            s.push_back(Op::sfence());
        else
            s.push_back(Op::joinStrand());
        return s;
    };

    run({streamFor(HwDesign::IntelX86)}, HwDesign::IntelX86);
    // Intel: C persists strictly after B (fence chain).
    EXPECT_LT(persistPos(B), persistPos(C));
    Tick intelEnd = sys->finishTick();

    run({streamFor(HwDesign::StrandWeaver)});
    // StrandWeaver: C is free of the barrier and beats B.
    EXPECT_LT(persistPos(C), persistPos(B));
    EXPECT_LT(sys->finishTick(), intelEnd);
}

// HOPS: ofence orders epochs within the persist buffer even across
// what StrandWeaver would treat as independent strands.
TEST_F(HwLitmus, HopsEpochsOrderWhatStrandsWouldNot)
{
    OpStream s;
    s.push_back(Op::store(A, 1));
    s.push_back(Op::clwb(A));
    s.push_back(Op::ofence());
    s.push_back(Op::store(B, 1));
    s.push_back(Op::clwb(B));
    s.push_back(Op::ofence());
    s.push_back(Op::store(C, 1));
    s.push_back(Op::clwb(C));
    s.push_back(Op::dfence());
    run({s}, HwDesign::Hops);

    EXPECT_LT(persistPos(A), persistPos(B));
    EXPECT_LT(persistPos(B), persistPos(C));
}

// Dirty eviction interlock (§IV "Managing cache writebacks"): a
// write-back initiated while CLWBs are in flight must not reach PM
// before them. Forced by thrashing one L1 set.
TEST_F(HwLitmus, WritebackWaitsForInFlightClwbs)
{
    // L1: 32 KiB 2-way => set stride 16 KiB. Three lines in one set.
    Addr x0 = pmBase + 0x1100000;
    Addr x1 = x0 + 16 * 1024;
    Addr x2 = x0 + 32 * 1024;

    OpStream s;
    s.push_back(Op::store(A, 1)); // the logged line
    s.push_back(Op::clwb(A));     // CLWB in flight...
    s.push_back(Op::store(x0, 1));
    s.push_back(Op::store(x1, 1));
    s.push_back(Op::store(x2, 1)); // evicts x0 (dirty) while A flushes
    s.push_back(Op::joinStrand());
    run({s});

    ASSERT_TRUE(persisted(A));
    std::size_t wb = persistPos(x0);
    if (wb != static_cast<std::size_t>(-1)) {
        // If the write-back reached PM during the run, it came after
        // the CLWB that was in flight when it was initiated.
        EXPECT_LT(persistPos(A), wb);
    }
}

} // namespace
} // namespace strand
