/**
 * @file
 * Full-machine mid-run snapshot determinism.
 *
 * The contract under test: capture the whole component graph mid-run
 * (from a settled inter-event boundary), let the run finish, restore
 * the capture into the same System, and re-run — the re-run must be
 * bit-identical to the uninterrupted execution. Persist traces,
 * finish ticks, aggregate metrics, and PMO-san counters all have to
 * match exactly, across every hardware design with the undo-logging
 * lowering and the sanitizer attached.
 *
 * A second System without the capture observer runs alongside to show
 * the capture machinery itself does not perturb the schedule.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/observer_util.hh"
#include "runtime/instrumentor.hh"
#include "sanitizer/pmo_sanitizer.hh"

namespace strand
{
namespace
{

/** Streams and a system factory for one (workload, design, model). */
struct Rig
{
    RecordedWorkload recorded;
    InstrumentorParams ip;
    std::vector<OpStream> streams;

    Rig(HwDesign design, PersistencyModel model)
    {
        WorkloadParams params;
        params.numThreads = 3;
        params.opsPerThread = 12;
        params.seed = 29;
        recorded = recordWorkload(WorkloadKind::Hashmap, params);
        ip.design = design;
        ip.model = model;
        ip.logStyle = LogStyle::Undo;
        Instrumentor instr(ip);
        streams = instr.lower(recorded.trace);
    }

    std::unique_ptr<System>
    buildSystem()
    {
        SystemConfig cfg;
        cfg.numCores = static_cast<unsigned>(streams.size());
        cfg.design = ip.design;
        cfg.layout = ip.layout;
        auto sys = std::make_unique<System>(cfg);
        sys->seedImage(recorded.preload);
        auto copies = streams;
        sys->loadStreams(std::move(copies));
        return sys;
    }
};

/** Everything we require to be bit-identical across executions. */
struct Fingerprint
{
    std::vector<PersistRecord> trace;
    Tick finish = 0;
    std::vector<Tick> coreFinish;
    double clwbs = 0;
    double cycles = 0;
    double committed = 0;
    double persistStalls = 0;
    std::uint64_t sanChecked = 0;
    std::uint64_t sanViolations = 0;

    static Fingerprint
    of(System &sys, PmoSanitizer &san)
    {
        Fingerprint fp;
        fp.trace = sys.persistTrace();
        fp.finish = sys.finishTick();
        for (CoreId i = 0; i < sys.numCores(); ++i)
            fp.coreFinish.push_back(sys.finishTickOf(i));
        fp.clwbs = sys.totalClwbs();
        fp.cycles = sys.totalCycles();
        fp.committed = sys.totalCommitted();
        fp.persistStalls = sys.totalPersistStalls();
        fp.sanChecked = san.snapshotState().checkedCount;
        fp.sanViolations = san.snapshotState().totalViolations;
        return fp;
    }

    void
    expectEqual(const Fingerprint &other, const char *label) const
    {
        EXPECT_EQ(trace == other.trace, true)
            << label << ": persist traces differ ("
            << trace.size() << " vs " << other.trace.size()
            << " records)";
        EXPECT_EQ(finish, other.finish) << label;
        EXPECT_EQ(coreFinish, other.coreFinish) << label;
        EXPECT_EQ(clwbs, other.clwbs) << label;
        EXPECT_EQ(cycles, other.cycles) << label;
        EXPECT_EQ(committed, other.committed) << label;
        EXPECT_EQ(persistStalls, other.persistStalls) << label;
        EXPECT_EQ(sanChecked, other.sanChecked) << label;
        EXPECT_EQ(sanViolations, other.sanViolations) << label;
    }
};

class SnapshotRestore : public ::testing::TestWithParam<HwDesign>
{
};

TEST_P(SnapshotRestore, MidRunRestoreReplaysBitIdentically)
{
    const HwDesign design = GetParam();
    Rig rig(design, PersistencyModel::Sfr);

    // Reference: an identical machine with no capture machinery.
    Fingerprint plain;
    {
        auto sys = rig.buildSystem();
        PmoSanitizer san;
        sys->addObserver(&san);
        sys->run();
        plain = Fingerprint::of(*sys, san);
    }
    ASSERT_GT(plain.trace.size(), 8u)
        << "workload too small to capture mid-run";

    // Instrumented run: capture the full machine at the 8th ADR
    // admission, from a Stat-priority one-shot so every same-tick
    // action has settled first.
    auto sys = rig.buildSystem();
    PmoSanitizer san;
    sys->addObserver(&san);
    SimSnapshot snap;
    PmoSanitizer::State sanAtCapture;
    Tick captureTick = 0;
    unsigned admissions = 0;
    AdmissionCallback capturer([&](const PersistRecord &rec) {
        if (++admissions != 8)
            return;
        sys->eventQueue().schedule(
            rec.when,
            [&] {
                captureTick = sys->eventQueue().curTick();
                snap = sys->snapshot();
                sanAtCapture = san.snapshotState();
            },
            EventPriority::Stat);
    });
    sys->addObserver(&capturer);
    sys->run();
    Fingerprint uninterrupted = Fingerprint::of(*sys, san);

    // Taking a capture must not perturb the schedule.
    uninterrupted.expectEqual(plain, "capture-perturbation");
    ASSERT_GT(snap.size(), 0u) << "capture event never fired";
    ASSERT_GT(captureTick, 0u);
    ASSERT_LT(captureTick, uninterrupted.finish)
        << "capture must be mid-run, not at completion";

    // Restore into the same graph and re-run the tail. The capture
    // observer must come off first: its closures count admissions of
    // the original run.
    sys->removeObserver(&capturer);
    sys->restore(snap);
    san.restoreState(sanAtCapture);
    EXPECT_EQ(sys->eventQueue().curTick(), captureTick)
        << "restore must rewind the clock to the capture point";
    EXPECT_LT(sys->persistTrace().size(), uninterrupted.trace.size())
        << "restore must rewind the persist trace";
    sys->run();
    Fingerprint rerun = Fingerprint::of(*sys, san);
    rerun.expectEqual(uninterrupted, "restore-rerun");
}

TEST_P(SnapshotRestore, RestoreIsRepeatable)
{
    // Restoring the same capture twice must replay the same tail
    // twice — a single snapshot supports many forks.
    const HwDesign design = GetParam();
    Rig rig(design, PersistencyModel::Sfr);
    auto sys = rig.buildSystem();
    PmoSanitizer san;
    sys->addObserver(&san);
    SimSnapshot snap;
    PmoSanitizer::State sanAtCapture;
    unsigned admissions = 0;
    AdmissionCallback capturer([&](const PersistRecord &rec) {
        if (++admissions != 4)
            return;
        sys->eventQueue().schedule(
            rec.when,
            [&] {
                snap = sys->snapshot();
                sanAtCapture = san.snapshotState();
            },
            EventPriority::Stat);
    });
    sys->addObserver(&capturer);
    sys->run();
    Fingerprint first = Fingerprint::of(*sys, san);
    ASSERT_GT(snap.size(), 0u);
    sys->removeObserver(&capturer);

    for (int fork = 0; fork < 2; ++fork) {
        sys->restore(snap);
        san.restoreState(sanAtCapture);
        sys->run();
        Fingerprint again = Fingerprint::of(*sys, san);
        again.expectEqual(first, "repeated-restore");
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, SnapshotRestore, ::testing::ValuesIn(allDesigns),
    [](const ::testing::TestParamInfo<HwDesign> &info) {
        std::string name = hwDesignName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(SnapshotRestoreRedo, RedoLoweringRoundTrips)
{
    // The redo log style takes a different lowering path; one design
    // suffices to keep it under the same determinism contract.
    Rig rig(HwDesign::StrandWeaver, PersistencyModel::Txn);
    InstrumentorParams redoIp = rig.ip;
    redoIp.logStyle = LogStyle::Redo;
    Instrumentor instr(redoIp);
    rig.streams = instr.lower(rig.recorded.trace);

    auto sys = rig.buildSystem();
    PmoSanitizer san;
    sys->addObserver(&san);
    SimSnapshot snap;
    PmoSanitizer::State sanAtCapture;
    unsigned admissions = 0;
    AdmissionCallback capturer([&](const PersistRecord &rec) {
        if (++admissions != 8)
            return;
        sys->eventQueue().schedule(
            rec.when,
            [&] {
                snap = sys->snapshot();
                sanAtCapture = san.snapshotState();
            },
            EventPriority::Stat);
    });
    sys->addObserver(&capturer);
    sys->run();
    Fingerprint uninterrupted = Fingerprint::of(*sys, san);
    ASSERT_GT(snap.size(), 0u);

    sys->removeObserver(&capturer);
    sys->restore(snap);
    san.restoreState(sanAtCapture);
    sys->run();
    Fingerprint rerun = Fingerprint::of(*sys, san);
    rerun.expectEqual(uninterrupted, "redo-restore-rerun");
}

} // namespace
} // namespace strand
