/**
 * @file
 * PMO conformance: randomized strand programs are executed on the
 * full StrandWeaver timing simulator, and the observed persist trace
 * is checked to be a linear extension of the formal persist memory
 * order (Equations 1-4) computed by the executable model. This ties
 * the hardware implementation to the paper's formal definitions over
 * thousands of generated orderings.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "core/system.hh"
#include "persist/pmo.hh"
#include "sim/random.hh"

namespace strand
{
namespace
{

constexpr Addr base = pmBase + 0x1800000;

struct GeneratedProgram
{
    OpStream ops;       ///< for the simulator
    PmoProgram program; ///< for the formal model
    /** persist id by line address. */
    std::unordered_map<Addr, std::uint64_t> idOf;
};

/**
 * Generate a random single-threaded strand program: a sequence of
 * store+CLWB persists to distinct lines, interleaved with persist
 * barriers, NewStrand, and JoinStrand, ending in a JoinStrand.
 * Occasionally a line is persisted twice (exercising same-address
 * SPA, Eq. 3).
 */
GeneratedProgram
generate(std::uint64_t seed, unsigned persists)
{
    Rng rng(seed);
    GeneratedProgram gen;
    gen.program.threads.resize(1);
    std::vector<Addr> used;

    for (unsigned i = 0; i < persists; ++i) {
        // 1-in-6 persists revisit an earlier line.
        Addr line;
        std::uint64_t id;
        if (!used.empty() && rng.chance(1.0 / 6.0)) {
            line = used[rng.nextBounded(used.size())];
            // A repeated persist needs its own id: use a fresh id
            // and rely on same-address program order in the model.
            id = 1000 + i;
        } else {
            line = base + static_cast<Addr>(used.size()) * lineBytes;
            used.push_back(line);
            id = 1000 + i;
        }
        gen.ops.push_back(Op::store(line, i + 1));
        gen.ops.push_back(Op::clwb(line));
        gen.program.threads[0].push_back(PmoOp::persist(id, line));
        gen.idOf[line] = id; // latest persist of this line

        double dice = rng.nextDouble();
        if (dice < 0.30) {
            gen.ops.push_back(Op::persistBarrier());
            gen.program.threads[0].push_back(PmoOp::barrier());
        } else if (dice < 0.60) {
            gen.ops.push_back(Op::newStrand());
            gen.program.threads[0].push_back(PmoOp::newStrand());
        } else if (dice < 0.70) {
            gen.ops.push_back(Op::joinStrand());
            gen.program.threads[0].push_back(PmoOp::joinStrand());
        }
    }
    gen.ops.push_back(Op::joinStrand());
    gen.program.threads[0].push_back(PmoOp::joinStrand());
    return gen;
}

class PmoConformance : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PmoConformance, SimulatedTraceIsLinearExtensionOfPmo)
{
    GeneratedProgram gen = generate(GetParam(), 24);

    SystemConfig cfg;
    cfg.numCores = 1;
    cfg.design = HwDesign::StrandWeaver;
    System sys(cfg);
    sys.loadStreams({gen.ops});
    sys.run();

    // Attribute trace entries to model persist ids. Same-line
    // flushes may coalesce in the cache — one flush can cover
    // several program persists of that line — so a line's k-th
    // trace entry maps to its k-th persist id, and any leftover
    // (coalesced) ids inherit the position of the line's last
    // flush, which is when their data actually became durable.
    PmoModel model(gen.program);
    std::unordered_map<Addr, std::vector<std::uint64_t>> idsByLine;
    for (const auto &threadOps : gen.program.threads)
        for (const PmoOp &op : threadOps)
            if (op.kind == PmoEvent::Persist)
                idsByLine[op.addr].push_back(op.id);

    std::unordered_map<std::uint64_t, std::size_t> position;
    std::unordered_map<Addr, std::size_t> seen;
    const auto &trace = sys.persistTrace();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        auto it = idsByLine.find(trace[i].lineAddr);
        ASSERT_NE(it, idsByLine.end()) << "unexpected persist";
        std::size_t &idx = seen[trace[i].lineAddr];
        if (idx < it->second.size())
            position[it->second[idx]] = i;
        ++idx;
    }

    // Lines where a flush coalesced several program CLWBs (fewer
    // trace entries than persists) have no unambiguous id-to-flush
    // mapping; their ids are excluded from the pair checks. Their
    // durability is still verified by EveryPersistCompletes, and
    // the vast majority of generated persists stay covered.
    std::size_t checked = 0;
    auto unambiguous = [&](Addr line) {
        return seen[line] >= idsByLine.at(line).size();
    };
    for (auto &[lineA, idsA] : idsByLine) {
        if (!unambiguous(lineA))
            continue;
        for (std::uint64_t a : idsA) {
            for (auto &[lineB, idsB] : idsByLine) {
                if (!unambiguous(lineB))
                    continue;
                for (std::uint64_t b : idsB) {
                    if (a == b || !model.orderedBefore(a, b))
                        continue;
                    ++checked;
                    EXPECT_LE(position.at(a), position.at(b))
                        << "persist " << a << " must precede " << b
                        << " (seed " << GetParam() << ")";
                }
            }
        }
    }
    // The generator must not degenerate into all-ambiguous programs.
    EXPECT_GT(checked, 10u);
}

TEST_P(PmoConformance, EveryPersistCompletes)
{
    GeneratedProgram gen = generate(GetParam() * 31 + 7, 16);
    SystemConfig cfg;
    cfg.numCores = 1;
    cfg.design = HwDesign::StrandWeaver;
    System sys(cfg);
    sys.loadStreams({gen.ops});
    sys.run();

    // Every line the program persisted is durable with its last
    // stored value.
    std::unordered_map<Addr, std::uint64_t> lastValue;
    for (const Op &op : gen.ops)
        if (op.type == OpType::Store)
            lastValue[op.addr] = op.value;
    for (auto [addr, value] : lastValue) {
        EXPECT_TRUE(sys.memory().persistedContains(addr));
        EXPECT_EQ(sys.memory().readPersisted(addr), value);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, PmoConformance,
                         ::testing::Range<std::uint64_t>(1, 33));

} // namespace
} // namespace strand
