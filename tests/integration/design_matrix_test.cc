/**
 * @file
 * Full-matrix smoke and invariant tests: every Table II workload on
 * every hardware design (SFR model). Checks that hold universally:
 *
 *  - the run completes and the persisted data structure satisfies
 *    its structural invariants,
 *  - every persistent word the workload wrote functionally is
 *    durable with its final value,
 *  - the CLWB count is identical across designs (the same region
 *    trace lowers to the same flush set; only ordering primitives
 *    differ),
 *  - the Intel baseline is never faster than StrandWeaver, and the
 *    NON-ATOMIC bound is never slower (sanity of the evaluation's
 *    directionality at test sizes).
 */

#include <gtest/gtest.h>

#include <map>

#include "core/strandweaver.hh"

namespace strand
{
namespace
{

using Cell = std::tuple<WorkloadKind, HwDesign>;

class DesignMatrix : public ::testing::TestWithParam<Cell>
{
  protected:
    static RecordedWorkload &
    recorded(WorkloadKind kind)
    {
        static std::map<WorkloadKind, RecordedWorkload> cache;
        auto it = cache.find(kind);
        if (it == cache.end()) {
            WorkloadParams params;
            params.numThreads = 3;
            params.opsPerThread = 12;
            params.seed = 17;
            it = cache.emplace(kind, recordWorkload(kind, params))
                     .first;
        }
        return it->second;
    }
};

TEST_P(DesignMatrix, RunsCleanAndPersistsEverything)
{
    auto [kind, design] = GetParam();
    RecordedWorkload &workload = recorded(kind);

    // runExperiment validates invariants itself (panics otherwise).
    RunMetrics metrics =
        runExperiment(workload, design, PersistencyModel::Sfr);
    EXPECT_GT(metrics.runTicks, 0u);
    EXPECT_GT(metrics.clwbs, 0.0);

    // CLWB counts match the Intel baseline exactly: same trace, same
    // flush set, different ordering primitives only.
    RunMetrics intel = runExperiment(workload, HwDesign::IntelX86,
                                     PersistencyModel::Sfr);
    EXPECT_EQ(metrics.lowering.clwbs, intel.lowering.clwbs);
}

TEST_P(DesignMatrix, DirectionalSanity)
{
    auto [kind, design] = GetParam();
    if (design != HwDesign::StrandWeaver)
        GTEST_SKIP() << "one comparison per workload is enough";
    RecordedWorkload &workload = recorded(kind);

    RunMetrics intel = runExperiment(workload, HwDesign::IntelX86,
                                     PersistencyModel::Sfr);
    RunMetrics sw = runExperiment(workload, HwDesign::StrandWeaver,
                                  PersistencyModel::Sfr);
    RunMetrics na = runExperiment(workload, HwDesign::NonAtomic,
                                  PersistencyModel::Sfr);
    // Allow 5% noise at these tiny sizes.
    EXPECT_LE(sw.runTicks, intel.runTicks * 21 / 20)
        << workloadName(kind);
    EXPECT_LE(na.runTicks, sw.runTicks * 21 / 20)
        << workloadName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, DesignMatrix,
    ::testing::Combine(::testing::ValuesIn(allWorkloads),
                       ::testing::ValuesIn(allDesigns)),
    [](const ::testing::TestParamInfo<Cell> &info) {
        std::string name = workloadName(std::get<0>(info.param));
        name += "_";
        name += hwDesignName(std::get<1>(info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace strand
