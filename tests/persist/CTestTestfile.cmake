# CMake generated Testfile for 
# Source directory: /root/repo/tests/persist
# Build directory: /root/repo/tests/persist
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/persist/test_pmo[1]_include.cmake")
include("/root/repo/tests/persist/test_strand_buffer_unit[1]_include.cmake")
include("/root/repo/tests/persist/test_engines[1]_include.cmake")
