file(REMOVE_RECURSE
  "CMakeFiles/test_strand_buffer_unit.dir/strand_buffer_unit_test.cc.o"
  "CMakeFiles/test_strand_buffer_unit.dir/strand_buffer_unit_test.cc.o.d"
  "test_strand_buffer_unit"
  "test_strand_buffer_unit.pdb"
  "test_strand_buffer_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strand_buffer_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
