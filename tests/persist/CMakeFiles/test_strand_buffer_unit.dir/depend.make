# Empty dependencies file for test_strand_buffer_unit.
# This may be replaced when dependencies are built.
