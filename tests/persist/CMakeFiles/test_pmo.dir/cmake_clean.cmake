file(REMOVE_RECURSE
  "CMakeFiles/test_pmo.dir/pmo_test.cc.o"
  "CMakeFiles/test_pmo.dir/pmo_test.cc.o.d"
  "test_pmo"
  "test_pmo.pdb"
  "test_pmo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
