# Empty compiler generated dependencies file for test_pmo.
# This may be replaced when dependencies are built.
