file(REMOVE_RECURSE
  "CMakeFiles/test_engines.dir/engines_test.cc.o"
  "CMakeFiles/test_engines.dir/engines_test.cc.o.d"
  "test_engines"
  "test_engines.pdb"
  "test_engines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
