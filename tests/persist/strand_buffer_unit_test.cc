/**
 * @file
 * Unit tests for the strand buffer unit (§IV): intra-strand ordering
 * by persist barriers, inter-strand concurrency, round-robin strand
 * assignment, capacity, and drain-point clearances.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "persist/strand_buffer_unit.hh"

namespace strand
{
namespace
{

constexpr Addr lineA = pmBase + 0x000;
constexpr Addr lineB = pmBase + 0x400;
constexpr Addr lineC = pmBase + 0x800;

class SbuFixture : public ::testing::Test
{
  protected:
    void
    build(StrandBufferUnitParams p = StrandBufferUnitParams{})
    {
        pm = std::make_unique<MemController>("pm", eq, img,
                                             MemControllerParams{}, true);
        dram = std::make_unique<MemController>(
            "dram", eq, img, dramControllerParams(), false);
        hier = std::make_unique<Hierarchy>("caches", eq, img, 1,
                                           HierarchyParams{}, *pm, *dram);
        sbu = std::make_unique<StrandBufferUnit>("sbu", eq, 0, *hier, p);
        sbu->setCompletionCallback([this](std::uint64_t id, bool) {
            completions.push_back(id);
        });
        pm->setPersistObserver([this](const Packet &pkt, Tick) {
            persistOrder.push_back(pkt.data.lineAddr);
        });
        storePort.init(eq, "test.storePort");
        storePort.bind(*hier);
        storePort.setResponseHandler([this](const MemResponse &resp) {
            if (resp.kind == MemResponseKind::Nack)
                storeNacked = true;
            else if (resp.kind == MemResponseKind::Done)
                storeDone = true;
        });
    }

    /** Make a line dirty in the L1 so a flush has work to do. */
    void
    dirty(Addr addr, std::uint64_t value)
    {
        for (;;) {
            storeNacked = false;
            storeDone = false;
            MemRequest req;
            req.kind = MemRequestKind::Store;
            req.core = 0;
            req.addr = addr;
            req.value = value;
            storePort.send(std::move(req));
            while (!storeDone && !storeNacked) {
                const Tick next = eq.nextLiveTick();
                ASSERT_NE(next, maxTick);
                eq.runUntil(next);
            }
            if (storeDone)
                return;
        }
    }

    EventQueue eq;
    MemoryImage img;
    std::unique_ptr<MemController> pm;
    std::unique_ptr<MemController> dram;
    std::unique_ptr<Hierarchy> hier;
    std::unique_ptr<StrandBufferUnit> sbu;
    MemPort storePort;
    bool storeDone = false;
    bool storeNacked = false;
    std::vector<std::uint64_t> completions;
    std::vector<Addr> persistOrder;
};

TEST_F(SbuFixture, CleanFlushCompletesWithoutPmWrite)
{
    build();
    sbu->pushClwb(lineA, 1);
    eq.run();
    EXPECT_EQ(completions, (std::vector<std::uint64_t>{1}));
    EXPECT_EQ(sbu->cleanFlushes.value(), 1.0);
    EXPECT_TRUE(persistOrder.empty());
    EXPECT_TRUE(sbu->drained());
}

TEST_F(SbuFixture, DirtyFlushPersistsData)
{
    build();
    dirty(lineA, 42);
    sbu->pushClwb(lineA, 1);
    eq.run();
    EXPECT_EQ(completions, (std::vector<std::uint64_t>{1}));
    EXPECT_EQ(img.readPersisted(lineA), 42u);
    EXPECT_EQ(persistOrder, (std::vector<Addr>{lineA}));
}

TEST_F(SbuFixture, BarrierOrdersPersistsWithinStrand)
{
    build();
    dirty(lineA, 1);
    dirty(lineB, 2);
    sbu->pushClwb(lineA, 1);
    sbu->pushBarrier();
    sbu->pushClwb(lineB, 2);
    eq.run();
    // B must not reach the PM controller before A.
    ASSERT_EQ(persistOrder.size(), 2u);
    EXPECT_EQ(persistOrder[0], lineA);
    EXPECT_EQ(persistOrder[1], lineB);
    EXPECT_EQ(completions, (std::vector<std::uint64_t>{1, 2}));
    // And B's flush may only start after A completed: with one
    // flush ~100ns each, ordered flushes take at least 2x.
    EXPECT_GE(eq.curTick(), 2 * nsToTicks(96));
}

TEST_F(SbuFixture, SeparateStrandsPersistConcurrently)
{
    build();
    dirty(lineA, 1);
    dirty(lineB, 2);

    // Ordered variant: measure serial latency.
    sbu->pushClwb(lineA, 1);
    sbu->pushBarrier();
    sbu->pushClwb(lineB, 2);
    eq.run();
    Tick serial = eq.curTick();

    // Concurrent variant on fresh state.
    completions.clear();
    persistOrder.clear();
    dirty(lineA, 3);
    dirty(lineC, 4);
    Tick begin = eq.curTick();
    sbu->pushClwb(lineA, 3);
    sbu->newStrand();
    sbu->pushClwb(lineC, 4);
    eq.run();
    Tick concurrent = eq.curTick() - begin;
    EXPECT_LT(concurrent, serial);
    EXPECT_EQ(completions.size(), 2u);
    EXPECT_EQ(sbu->strandsStarted.value(), 1.0);
}

TEST_F(SbuFixture, BarrierDoesNotOrderAcrossStrands)
{
    build();
    dirty(lineA, 1);
    dirty(lineB, 2);
    dirty(lineC, 3);
    // Strand 0: A, PB, B. Strand 1: C — C may persist while A is
    // still in flight (it must not wait for the barrier).
    sbu->pushClwb(lineA, 1);
    sbu->pushBarrier();
    sbu->pushClwb(lineB, 2);
    sbu->newStrand();
    sbu->pushClwb(lineC, 4);
    eq.run();
    ASSERT_EQ(persistOrder.size(), 3u);
    // A and C race; B is strictly last-or-after-A. Verify B after A.
    auto posOf = [&](Addr a) {
        for (std::size_t i = 0; i < persistOrder.size(); ++i)
            if (persistOrder[i] == a)
                return i;
        return persistOrder.size();
    };
    EXPECT_LT(posOf(lineA), posOf(lineB));
    // C persisted before B completed waiting on the barrier.
    EXPECT_LT(posOf(lineC), posOf(lineB));
}

TEST_F(SbuFixture, RoundRobinWrapsAcrossBuffers)
{
    StrandBufferUnitParams p;
    p.numBuffers = 2;
    p.entriesPerBuffer = 4;
    build(p);
    sbu->newStrand();
    sbu->newStrand(); // back to buffer 0
    sbu->pushClwb(lineA, 1);
    EXPECT_EQ(sbu->occupancy(), 1u);
    eq.run();
    EXPECT_TRUE(sbu->drained());
}

TEST_F(SbuFixture, CapacityIsPerBuffer)
{
    StrandBufferUnitParams p;
    p.numBuffers = 2;
    p.entriesPerBuffer = 2;
    build(p);
    dirty(lineA, 1);
    sbu->pushClwb(lineA, 1);
    sbu->pushBarrier();
    EXPECT_FALSE(sbu->canAcceptClwb()); // buffer 0 full
    sbu->newStrand();
    EXPECT_TRUE(sbu->canAcceptClwb()); // buffer 1 empty
    sbu->pushClwb(lineB, 2);
    eq.run();
    EXPECT_TRUE(sbu->drained());
    EXPECT_THROW(
        [&] {
            sbu->pushClwb(lineA, 3);
            sbu->pushClwb(lineB, 4);
            sbu->pushClwb(lineC, 5);
        }(),
        std::logic_error);
}

TEST_F(SbuFixture, DrainPointClearsOnlyAfterRecordedWorkRetires)
{
    build();
    dirty(lineA, 1);
    dirty(lineB, 2);
    sbu->pushClwb(lineA, 1);
    sbu->pushBarrier();
    sbu->pushClwb(lineB, 2);

    auto clearance = sbu->recordDrainPoint();
    ASSERT_TRUE(static_cast<bool>(clearance));
    EXPECT_FALSE(clearance());

    // New work pushed after the capture must not extend the wait.
    eq.run();
    EXPECT_TRUE(clearance());
}

TEST_F(SbuFixture, DrainPointOnIdleUnitIsUnconstrained)
{
    build();
    auto clearance = sbu->recordDrainPoint();
    EXPECT_FALSE(static_cast<bool>(clearance));
}

TEST_F(SbuFixture, DrainPointIgnoresWorkAddedAfterCapture)
{
    build();
    dirty(lineA, 1);
    sbu->pushClwb(lineA, 1);
    auto clearance = sbu->recordDrainPoint();

    // Append more work behind a barrier; the clearance refers only
    // to the first CLWB.
    sbu->pushBarrier();
    dirty(lineB, 2);
    sbu->pushClwb(lineB, 2);

    // Run until the first CLWB completes.
    while (completions.empty())
        ASSERT_TRUE(eq.serviceOne());
    // Let retirement settle at this tick.
    while (!completions.empty() && !clearance() && eq.serviceOne()) {
        if (completions.size() >= 2)
            break;
    }
    EXPECT_TRUE(clearance());
}

TEST_F(SbuFixture, ManyStrandsInterleaveCorrectly)
{
    StrandBufferUnitParams p;
    p.numBuffers = 4;
    p.entriesPerBuffer = 4;
    build(p);
    std::vector<Addr> lines;
    for (unsigned i = 0; i < 8; ++i) {
        Addr line = pmBase + 0x1000 + i * 0x400;
        dirty(line, i + 1);
        lines.push_back(line);
    }
    for (unsigned i = 0; i < 8; ++i) {
        sbu->pushClwb(lines[i], i);
        sbu->newStrand();
    }
    eq.run();
    EXPECT_EQ(completions.size(), 8u);
    EXPECT_EQ(persistOrder.size(), 8u);
    EXPECT_TRUE(sbu->drained());
    EXPECT_EQ(sbu->clwbsCompleted.value(), 8.0);
}

} // namespace
} // namespace strand
