/**
 * @file
 * Litmus tests for the formal strand persistency model (Equations
 * 1-4, §III), mirroring the scenarios of Figure 2 of the paper, plus
 * linear-extension trace checking.
 */

#include <gtest/gtest.h>

#include "mem/address_map.hh"
#include "persist/pmo.hh"

namespace strand
{
namespace
{

constexpr Addr A = pmBase + 0x000;
constexpr Addr B = pmBase + 0x100;
constexpr Addr C = pmBase + 0x200;
constexpr Addr D = pmBase + 0x300;

// Figure 2(a,b): persist barrier orders A before B on strand 0;
// NewStrand makes C concurrent with both.
TEST(Pmo, IntraStrandBarrierOrdersAndNewStrandClears)
{
    PmoProgram prog;
    prog.threads = {{
        PmoOp::persist(1, A),
        PmoOp::barrier(),
        PmoOp::persist(2, B),
        PmoOp::newStrand(),
        PmoOp::persist(3, C),
    }};
    PmoModel model(prog);
    EXPECT_TRUE(model.orderedBefore(1, 2)); // Eq. 1
    EXPECT_TRUE(model.concurrent(1, 3));    // NS clears order
    EXPECT_TRUE(model.concurrent(2, 3));
}

// A NewStrand between two persists defeats a barrier even when the
// barrier precedes the NewStrand.
TEST(Pmo, NewStrandAfterBarrierStillClearsOrder)
{
    PmoProgram prog;
    prog.threads = {{
        PmoOp::persist(1, A),
        PmoOp::barrier(),
        PmoOp::newStrand(),
        PmoOp::persist(2, B),
    }};
    PmoModel model(prog);
    EXPECT_TRUE(model.concurrent(1, 2));
}

// Without any primitive, persists on one strand are concurrent.
TEST(Pmo, NoPrimitivesMeansConcurrent)
{
    PmoProgram prog;
    prog.threads = {{
        PmoOp::persist(1, A),
        PmoOp::persist(2, B),
    }};
    PmoModel model(prog);
    EXPECT_TRUE(model.concurrent(1, 2));
}

// Figure 2(c,d): JoinStrand orders persists on prior strands before
// subsequent persists.
TEST(Pmo, JoinStrandOrdersAcrossStrands)
{
    PmoProgram prog;
    prog.threads = {{
        PmoOp::persist(1, A),
        PmoOp::newStrand(),
        PmoOp::persist(2, B),
        PmoOp::joinStrand(),
        PmoOp::persist(3, C),
    }};
    PmoModel model(prog);
    EXPECT_TRUE(model.concurrent(1, 2));    // separate strands
    EXPECT_TRUE(model.orderedBefore(1, 3)); // Eq. 2
    EXPECT_TRUE(model.orderedBefore(2, 3)); // Eq. 2
}

// Figure 2(e,f): strong persist atomicity across strands — two
// persists to A follow program order; B on strand 1 then follows A
// on strand 0 transitively.
TEST(Pmo, StrongPersistAtomicityAcrossStrands)
{
    PmoProgram prog;
    prog.threads = {{
        PmoOp::persist(1, A), // strand 0: A = 1
        PmoOp::newStrand(),
        PmoOp::persist(2, A), // strand 1: A = 2 (same location)
        PmoOp::barrier(),
        PmoOp::persist(3, B), // strand 1: B
    }};
    PmoModel model(prog);
    EXPECT_TRUE(model.orderedBefore(1, 2)); // Eq. 3
    EXPECT_TRUE(model.orderedBefore(2, 3)); // Eq. 1
    EXPECT_TRUE(model.orderedBefore(1, 3)); // Eq. 4 transitivity
}

// Figure 2(g,h): a load to the same location on another strand does
// not order persists — loads are simply absent from the persist
// program, so B stays concurrent with A.
TEST(Pmo, LoadsDoNotEstablishPersistOrder)
{
    PmoProgram prog;
    prog.threads = {{
        PmoOp::persist(1, A),
        PmoOp::newStrand(),
        // load A would appear here; it creates no persist event
        PmoOp::persist(2, B),
    }};
    PmoModel model(prog);
    EXPECT_TRUE(model.concurrent(1, 2));
}

// Figure 2(i,j): inter-thread SPA. Thread 0 persists A and B on
// separate strands; thread 1's store to B is visibility-ordered
// after thread 0's, and C follows by a barrier.
TEST(Pmo, InterThreadSpaWithTransitivity)
{
    PmoProgram prog;
    prog.threads = {
        {
            PmoOp::persist(1, A),
            PmoOp::newStrand(),
            PmoOp::persist(2, B),
        },
        {
            PmoOp::persist(3, B),
            PmoOp::barrier(),
            PmoOp::persist(4, C),
        },
    };
    prog.vmoEdges = {{2, 3}}; // thread 0's B visible first
    PmoModel model(prog);
    EXPECT_TRUE(model.concurrent(1, 2));    // separate strands
    EXPECT_TRUE(model.orderedBefore(2, 3)); // SPA via coherence
    EXPECT_TRUE(model.orderedBefore(3, 4)); // barrier
    EXPECT_TRUE(model.orderedBefore(2, 4)); // transitivity
    EXPECT_TRUE(model.concurrent(1, 3));    // A unrelated to B chain
}

// Undo-logging shape (Figure 5): pairwise log-before-update order
// with full cross-pair concurrency.
TEST(Pmo, UndoLoggingPairwiseOrder)
{
    PmoProgram prog;
    prog.threads = {{
        PmoOp::persist(1, C), // log for A
        PmoOp::barrier(),
        PmoOp::persist(2, A), // update A
        PmoOp::newStrand(),
        PmoOp::persist(3, D), // log for B
        PmoOp::barrier(),
        PmoOp::persist(4, B), // update B
        PmoOp::joinStrand(),
        PmoOp::persist(5, pmBase + 0x400), // commit record
    }};
    PmoModel model(prog);
    EXPECT_TRUE(model.orderedBefore(1, 2));
    EXPECT_TRUE(model.orderedBefore(3, 4));
    EXPECT_TRUE(model.concurrent(1, 3));
    EXPECT_TRUE(model.concurrent(1, 4));
    EXPECT_TRUE(model.concurrent(2, 3));
    EXPECT_TRUE(model.concurrent(2, 4));
    for (std::uint64_t id = 1; id <= 4; ++id)
        EXPECT_TRUE(model.orderedBefore(id, 5));
}

TEST(Pmo, CheckTraceAcceptsLinearExtensions)
{
    PmoProgram prog;
    prog.threads = {{
        PmoOp::persist(1, A),
        PmoOp::barrier(),
        PmoOp::persist(2, B),
        PmoOp::newStrand(),
        PmoOp::persist(3, C),
    }};
    PmoModel model(prog);
    EXPECT_FALSE(model.checkTrace({1, 2, 3}).has_value());
    EXPECT_FALSE(model.checkTrace({3, 1, 2}).has_value());
    EXPECT_FALSE(model.checkTrace({1, 3, 2}).has_value());
}

TEST(Pmo, CheckTraceRejectsViolations)
{
    PmoProgram prog;
    prog.threads = {{
        PmoOp::persist(1, A),
        PmoOp::barrier(),
        PmoOp::persist(2, B),
    }};
    PmoModel model(prog);
    auto violation = model.checkTrace({2, 1});
    ASSERT_TRUE(violation.has_value());
    EXPECT_EQ(violation->first, 1u);
    EXPECT_EQ(violation->second, 2u);
}

TEST(Pmo, CheckTraceHandlesCrashTruncation)
{
    PmoProgram prog;
    prog.threads = {{
        PmoOp::persist(1, A),
        PmoOp::barrier(),
        PmoOp::persist(2, B),
    }};
    PmoModel model(prog);
    // Crash after only the first persist: fine.
    EXPECT_FALSE(model.checkTrace({1}).has_value());
    // The dependent persist present without its predecessor: broken.
    EXPECT_TRUE(model.checkTrace({2}).has_value());
    // Nothing persisted at all: fine.
    EXPECT_FALSE(model.checkTrace({}).has_value());
}

TEST(Pmo, CycleInVmoEdgesPanics)
{
    PmoProgram prog;
    prog.threads = {
        {PmoOp::persist(1, A)},
        {PmoOp::persist(2, A)},
    };
    prog.vmoEdges = {{1, 2}, {2, 1}};
    EXPECT_THROW(PmoModel{prog}, std::logic_error);
}

TEST(Pmo, DuplicateIdsPanic)
{
    PmoProgram prog;
    prog.threads = {{PmoOp::persist(1, A), PmoOp::persist(1, B)}};
    EXPECT_THROW(PmoModel{prog}, std::logic_error);
}

} // namespace
} // namespace strand
