/**
 * @file
 * Unit tests for the persist engines: the StrandWeaver persist
 * queue, the Intel x86 SFENCE baseline, the HOPS variant, and the
 * NO-PERSIST-QUEUE coupling. These tests pin down the ordering
 * semantics the paper's performance claims rest on — in particular
 * that a persist barrier releases younger stores at CLWB *issue*
 * while SFENCE holds them to CLWB *completion*.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "persist/design.hh"
#include "persist/intel_engine.hh"
#include "persist/strand_engine.hh"

namespace strand
{
namespace
{

constexpr Addr lineA = pmBase + 0x000;
constexpr Addr lineB = pmBase + 0x400;

/** Controllable stand-in for the core's store queue. */
struct FakeStoreQueue
{
    std::set<SeqNum> pendingIssue;    ///< dispatched, not yet issued
    std::set<SeqNum> pendingComplete; ///< issued, not yet complete

    void
    addStore(SeqNum seq)
    {
        pendingIssue.insert(seq);
        pendingComplete.insert(seq);
    }

    void issue(SeqNum seq) { pendingIssue.erase(seq); }
    void complete(SeqNum seq)
    {
        pendingIssue.erase(seq);
        pendingComplete.erase(seq);
    }

    StoreQueueView
    view()
    {
        StoreQueueView v;
        v.completed = [this](SeqNum seq) {
            return !pendingComplete.contains(seq);
        };
        v.allCompletedBefore = [this](SeqNum seq) {
            return pendingComplete.empty() ||
                   *pendingComplete.begin() >= seq;
        };
        v.allIssuedBefore = [this](SeqNum seq) {
            return pendingIssue.empty() || *pendingIssue.begin() >= seq;
        };
        return v;
    }
};

class EngineFixture : public ::testing::Test
{
  protected:
    void
    build(HwDesign design, EngineConfig config = EngineConfig{})
    {
        pm = std::make_unique<MemController>("pm", eq, img,
                                             MemControllerParams{}, true);
        dram = std::make_unique<MemController>(
            "dram", eq, img, dramControllerParams(), false);
        hier = std::make_unique<Hierarchy>("caches", eq, img, 1,
                                           HierarchyParams{}, *pm, *dram);
        engine = makePersistEngine(design, "engine", eq, 0, *hier,
                                   config);
        engine->setStoreView(sqFake.view());
        storePort = std::make_unique<MemPort>();
        storePort->init(eq, "test.storePort");
        storePort->bind(*hier);
        storePort->setResponseHandler([this](const MemResponse &resp) {
            if (resp.kind == MemResponseKind::Nack)
                storeNacked = true;
            else if (resp.kind == MemResponseKind::Done)
                storeDone = true;
        });
    }

    void
    dirty(Addr addr, std::uint64_t value)
    {
        for (;;) {
            storeNacked = false;
            storeDone = false;
            MemRequest req;
            req.kind = MemRequestKind::Store;
            req.core = 0;
            req.addr = addr;
            req.value = value;
            storePort->send(std::move(req));
            while (!storeDone && !storeNacked) {
                const Tick next = eq.nextLiveTick();
                ASSERT_NE(next, maxTick);
                eq.runUntil(next);
            }
            if (storeDone)
                return;
        }
    }

    void
    dispatch(Op op, SeqNum seq, SeqNum elder = 0)
    {
        ASSERT_TRUE(engine->canAccept());
        engine->dispatch(op, seq, elder);
    }

    /**
     * Alternate engine evaluation and event servicing until both
     * settle (the role a ticking core plays in a full system).
     */
    void
    pump(unsigned rounds = 8)
    {
        for (unsigned i = 0; i < rounds; ++i) {
            engine->evaluate();
            eq.run();
        }
    }

    EventQueue eq;
    MemoryImage img;
    FakeStoreQueue sqFake;
    std::unique_ptr<MemPort> storePort;
    bool storeDone = false;
    bool storeNacked = false;
    std::unique_ptr<MemController> pm;
    std::unique_ptr<MemController> dram;
    std::unique_ptr<Hierarchy> hier;
    std::unique_ptr<PersistEngine> engine;
};

// --- StrandWeaver ---------------------------------------------------

TEST_F(EngineFixture, SwClwbFlowsThroughAndDrains)
{
    build(HwDesign::StrandWeaver);
    dirty(lineA, 7);
    dispatch(Op::clwb(lineA), 10);
    EXPECT_EQ(engine->queueOccupancy(), 1u);
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(engine->drained());
    EXPECT_EQ(img.readPersisted(lineA), 7u);
}

TEST_F(EngineFixture, SwBarrierReleasesStoresAtIssueNotCompletion)
{
    build(HwDesign::StrandWeaver);
    dirty(lineA, 1);
    dispatch(Op::clwb(lineA), 10);
    dispatch(Op::persistBarrier(), 11);
    engine->evaluate();
    // The CLWB issues and performs its cache read within the L1
    // lookup latency (2 ns) — far before its PM ack (~100 ns). The
    // younger store is released at that point, while the engine is
    // still not drained. Advance just past the cache read:
    eq.runUntil(eq.curTick() + nsToTicks(5));
    engine->evaluate();
    EXPECT_TRUE(engine->storeMayIssue(12));
    EXPECT_FALSE(engine->drained()); // flush still in flight
    pump();
    EXPECT_TRUE(engine->drained());
}

TEST_F(EngineFixture, SwBarrierWaitsForPriorStoresToComplete)
{
    build(HwDesign::StrandWeaver);
    sqFake.addStore(9); // pending store before the barrier
    engine->setStoreView(sqFake.view());
    dispatch(Op::persistBarrier(), 10);
    dispatch(Op::clwb(lineA), 11);
    engine->evaluate();
    eq.run();
    // The barrier cannot issue, so the CLWB behind it stays queued.
    EXPECT_FALSE(engine->drained());

    sqFake.complete(9);
    engine->evaluate();
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(engine->drained());
}

TEST_F(EngineFixture, SwClwbWaitsForElderSameLineStore)
{
    build(HwDesign::StrandWeaver);
    sqFake.addStore(9);
    engine->setStoreView(sqFake.view());
    dispatch(Op::clwb(lineA), 10, /*elder=*/9);
    engine->evaluate();
    eq.run();
    EXPECT_FALSE(engine->drained());

    sqFake.complete(9);
    engine->evaluate();
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(engine->drained());
}

TEST_F(EngineFixture, SwJoinStrandGatesStoresUntilClwbsComplete)
{
    build(HwDesign::StrandWeaver);
    dirty(lineA, 1);
    dispatch(Op::clwb(lineA), 10);
    dispatch(Op::joinStrand(), 11);
    engine->evaluate();
    EXPECT_FALSE(engine->storeMayIssue(12));
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(engine->storeMayIssue(12));
    EXPECT_TRUE(engine->drained());
}

TEST_F(EngineFixture, SwJoinStrandAlsoWaitsForPriorStores)
{
    build(HwDesign::StrandWeaver);
    sqFake.addStore(9);
    engine->setStoreView(sqFake.view());
    dispatch(Op::joinStrand(), 10);
    engine->evaluate();
    eq.run();
    EXPECT_FALSE(engine->storeMayIssue(11));
    sqFake.complete(9);
    engine->evaluate();
    EXPECT_TRUE(engine->storeMayIssue(11));
}

TEST_F(EngineFixture, SwNewStrandEnablesConcurrentFlushes)
{
    build(HwDesign::StrandWeaver);
    dirty(lineA, 1);
    dirty(lineB, 2);
    Tick lastPersist = 0;
    std::size_t persists = 0;
    pm->setPersistObserver([&](const Packet &, Tick when) {
        lastPersist = when;
        ++persists;
    });

    Tick begin = eq.curTick();
    dispatch(Op::clwb(lineA), 10);
    dispatch(Op::newStrand(), 11);
    dispatch(Op::clwb(lineB), 12);
    engine->evaluate();
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(engine->drained());
    EXPECT_EQ(persists, 2u);
    // Concurrent: both persist within ~one flush latency.
    EXPECT_LT(lastPersist - begin, nsToTicks(96) + nsToTicks(50));
}

TEST_F(EngineFixture, SwCapacityIsBounded)
{
    EngineConfig config;
    config.pqEntries = 2;
    build(HwDesign::StrandWeaver, config);
    sqFake.addStore(1);
    engine->setStoreView(sqFake.view());
    // Block issue via an elder store so entries stay queued.
    dispatch(Op::clwb(lineA), 10, 1);
    dispatch(Op::clwb(lineB), 11, 1);
    EXPECT_FALSE(engine->canAccept());
    sqFake.complete(1);
    engine->evaluate();
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(engine->canAccept());
}

// --- Intel x86 -------------------------------------------------------

TEST_F(EngineFixture, IntelSfenceHoldsStoresUntilClwbCompletes)
{
    build(HwDesign::IntelX86);
    dirty(lineA, 1);
    dispatch(Op::clwb(lineA), 10);
    dispatch(Op::sfence(), 11);
    engine->evaluate();
    // The key contrast with StrandWeaver: even after the CLWB has
    // issued, the store remains blocked until it completes.
    EXPECT_FALSE(engine->storeMayIssue(12));
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(engine->storeMayIssue(12));
    EXPECT_TRUE(engine->drained());
}

TEST_F(EngineFixture, IntelSfenceWaitsForPriorStores)
{
    build(HwDesign::IntelX86);
    sqFake.addStore(9);
    engine->setStoreView(sqFake.view());
    dispatch(Op::sfence(), 10);
    engine->evaluate();
    EXPECT_FALSE(engine->storeMayIssue(11));
    sqFake.complete(9);
    engine->evaluate();
    EXPECT_TRUE(engine->storeMayIssue(11));
}

TEST_F(EngineFixture, IntelClwbsWithinEpochFlushConcurrently)
{
    build(HwDesign::IntelX86);
    dirty(lineA, 1);
    dirty(lineB, 2);
    Tick lastPersist = 0;
    pm->setPersistObserver(
        [&](const Packet &, Tick when) { lastPersist = when; });
    Tick begin = eq.curTick();
    dispatch(Op::clwb(lineA), 10);
    dispatch(Op::clwb(lineB), 11);
    engine->evaluate();
    eq.run();
    EXPECT_TRUE(engine->drained());
    EXPECT_LT(lastPersist - begin, nsToTicks(96) + nsToTicks(50));
}

TEST_F(EngineFixture, IntelClwbsAcrossSfenceSerialize)
{
    build(HwDesign::IntelX86);
    dirty(lineA, 1);
    dirty(lineB, 2);
    std::vector<Addr> order;
    pm->setPersistObserver([&](const Packet &pkt, Tick) {
        order.push_back(pkt.data.lineAddr);
    });
    dispatch(Op::clwb(lineA), 10);
    dispatch(Op::sfence(), 11);
    dispatch(Op::clwb(lineB), 12);
    engine->evaluate();
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], lineA);
    EXPECT_EQ(order[1], lineB);
}

TEST_F(EngineFixture, IntelMapsStrongPrimitivesToSfence)
{
    build(HwDesign::IntelX86);
    dispatch(Op::joinStrand(), 10);
    dispatch(Op::newStrand(), 11); // dropped
    engine->evaluate();
    EXPECT_TRUE(engine->storeMayIssue(12));
    EXPECT_TRUE(engine->drained());
}

// --- HOPS ------------------------------------------------------------

TEST_F(EngineFixture, HopsOfenceDoesNotGateStores)
{
    build(HwDesign::Hops);
    dirty(lineA, 1);
    dispatch(Op::clwb(lineA), 10);
    dispatch(Op::ofence(), 11);
    // Delegated ordering: the store proceeds immediately.
    EXPECT_TRUE(engine->storeMayIssue(12));
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(engine->drained());
}

TEST_F(EngineFixture, HopsOfenceOrdersEpochsInPersistBuffer)
{
    build(HwDesign::Hops);
    dirty(lineA, 1);
    dirty(lineB, 2);
    std::vector<Addr> order;
    pm->setPersistObserver([&](const Packet &pkt, Tick) {
        order.push_back(pkt.data.lineAddr);
    });
    dispatch(Op::clwb(lineA), 10);
    dispatch(Op::ofence(), 11);
    dispatch(Op::clwb(lineB), 12);
    engine->evaluate();
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], lineA);
    EXPECT_EQ(order[1], lineB);
}

TEST_F(EngineFixture, HopsStrictAdmissionGatesStoresAcrossOfence)
{
    // The strict-admission knob closes the tolerated modeling gap:
    // a store guarded by a delegated ofence may not even enter the
    // cache until every pre-ofence CLWB has *completed* — so the log
    // entry's ADR admission strictly precedes the update's and no
    // amplified media drop can cut one without the other.
    EngineConfig config;
    config.hopsStrictAdmission = true;
    build(HwDesign::Hops, config);
    dirty(lineA, 1);
    dispatch(Op::clwb(lineA), 10);
    dispatch(Op::ofence(), 11);
    EXPECT_FALSE(engine->storeMayIssue(12));
    engine->evaluate();
    // Issue alone (the interlock's release point) is not enough.
    EXPECT_FALSE(engine->storeMayIssue(12));
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(engine->storeMayIssue(12));
}

TEST_F(EngineFixture, HopsStrictAdmissionCoversDrainPoints)
{
    // Strict admission implies the interlock's persist-queue
    // coverage at write-back drain points.
    EngineConfig config;
    config.hopsStrictAdmission = true;
    build(HwDesign::Hops, config);
    dirty(lineA, 1);
    dispatch(Op::clwb(lineA), 10);
    engine->evaluate();
    auto clearance = engine->recordDrainPoint();
    ASSERT_TRUE(static_cast<bool>(clearance));
    EXPECT_FALSE(clearance());
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(clearance());
}

TEST_F(EngineFixture, HopsDfenceEnforcesDurability)
{
    build(HwDesign::Hops);
    dirty(lineA, 1);
    dispatch(Op::clwb(lineA), 10);
    dispatch(Op::dfence(), 11);
    engine->evaluate();
    EXPECT_FALSE(engine->storeMayIssue(12));
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(engine->storeMayIssue(12));
}

// --- NO-PERSIST-QUEUE -----------------------------------------------

TEST_F(EngineFixture, NoPqSharesTheStoreQueue)
{
    build(HwDesign::NoPersistQueue);
    EXPECT_TRUE(engine->sharesStoreQueue());
    build(HwDesign::StrandWeaver);
    EXPECT_FALSE(engine->sharesStoreQueue());
}

TEST_F(EngineFixture, NoPqUnissuedClwbBlocksYoungerStores)
{
    EngineConfig config;
    config.strandBuffers = 1;
    config.entriesPerBuffer = 1;
    build(HwDesign::NoPersistQueue, config);
    dirty(lineA, 1);
    dirty(lineB, 2);
    // Fill the single strand-buffer slot so the second CLWB cannot
    // issue; in the shared-queue design it then blocks stores.
    dispatch(Op::clwb(lineA), 10);
    dispatch(Op::clwb(lineB), 11);
    engine->evaluate();
    EXPECT_FALSE(engine->storeMayIssue(12));
    pump();
    EXPECT_TRUE(engine->storeMayIssue(12));
}

TEST_F(EngineFixture, SwStoresPassUnissuedClwbs)
{
    EngineConfig config;
    config.strandBuffers = 1;
    config.entriesPerBuffer = 1;
    build(HwDesign::StrandWeaver, config);
    dirty(lineA, 1);
    dirty(lineB, 2);
    dispatch(Op::clwb(lineA), 10);
    dispatch(Op::clwb(lineB), 11);
    engine->evaluate();
    // The separate persist queue lets stores flow past queued CLWBs.
    EXPECT_TRUE(engine->storeMayIssue(12));
    eq.run();
}

TEST_F(EngineFixture, NoPqClwbWaitsForAllElderStoreIssue)
{
    build(HwDesign::NoPersistQueue);
    sqFake.addStore(9); // an elder store to an unrelated line
    engine->setStoreView(sqFake.view());
    dirty(lineA, 1);
    dispatch(Op::clwb(lineA), 10);
    engine->evaluate();
    eq.run();
    EXPECT_FALSE(engine->drained()); // FIFO coupling holds it back

    sqFake.issue(9);
    sqFake.complete(9);
    engine->evaluate();
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(engine->drained());
}

// --- Drain points ----------------------------------------------------

TEST_F(EngineFixture, DrainPointCoversInFlightClwbs)
{
    build(HwDesign::StrandWeaver);
    dirty(lineA, 1);
    dispatch(Op::clwb(lineA), 10);
    engine->evaluate();
    auto clearance = engine->recordDrainPoint();
    ASSERT_TRUE(static_cast<bool>(clearance));
    EXPECT_FALSE(clearance());
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(clearance());
}

TEST_F(EngineFixture, IntelDrainPointCoversQueue)
{
    build(HwDesign::IntelX86);
    dirty(lineA, 1);
    dispatch(Op::clwb(lineA), 10);
    engine->evaluate();
    auto clearance = engine->recordDrainPoint();
    ASSERT_TRUE(static_cast<bool>(clearance));
    EXPECT_FALSE(clearance());
    eq.run();
    engine->evaluate();
    EXPECT_TRUE(clearance());
}

TEST_F(EngineFixture, DesignAndModelNames)
{
    EXPECT_STREQ(hwDesignName(HwDesign::StrandWeaver), "strandweaver");
    EXPECT_STREQ(hwDesignName(HwDesign::IntelX86), "intel-x86");
    EXPECT_STREQ(hwDesignName(HwDesign::Hops), "hops");
    EXPECT_STREQ(hwDesignName(HwDesign::NoPersistQueue),
                 "no-persist-queue");
    EXPECT_STREQ(hwDesignName(HwDesign::NonAtomic), "non-atomic");
    EXPECT_STREQ(persistencyModelName(PersistencyModel::Txn), "txn");
    EXPECT_STREQ(persistencyModelName(PersistencyModel::Sfr), "sfr");
    EXPECT_STREQ(persistencyModelName(PersistencyModel::Atlas), "atlas");
}

} // namespace
} // namespace strand
