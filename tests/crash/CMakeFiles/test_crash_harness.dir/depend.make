# Empty dependencies file for test_crash_harness.
# This may be replaced when dependencies are built.
