file(REMOVE_RECURSE
  "CMakeFiles/test_crash_harness.dir/crash_harness_test.cc.o"
  "CMakeFiles/test_crash_harness.dir/crash_harness_test.cc.o.d"
  "test_crash_harness"
  "test_crash_harness.pdb"
  "test_crash_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
