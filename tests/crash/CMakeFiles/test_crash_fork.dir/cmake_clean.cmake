file(REMOVE_RECURSE
  "CMakeFiles/test_crash_fork.dir/crash_fork_test.cc.o"
  "CMakeFiles/test_crash_fork.dir/crash_fork_test.cc.o.d"
  "test_crash_fork"
  "test_crash_fork.pdb"
  "test_crash_fork[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
