# Empty dependencies file for test_crash_fork.
# This may be replaced when dependencies are built.
