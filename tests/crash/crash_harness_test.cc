/**
 * Crash-point fault-injection harness tests.
 *
 * Every recoverable design must pass injection at every crash point;
 * the NON-ATOMIC upper bound must be caught by the oracle (it omits
 * the log/update persist ordering, so some crash points expose
 * updates whose log entries never persisted).
 */

#include <gtest/gtest.h>

#include "crash/crash_harness.hh"
#include "runtime/layout.hh"

namespace strand
{
namespace
{

RecordedWorkload
record(WorkloadKind kind, unsigned threads = 2, unsigned ops = 30)
{
    WorkloadParams params;
    params.numThreads = threads;
    params.opsPerThread = ops;
    return recordWorkload(kind, params);
}

CrashHarnessConfig
smallConfig(unsigned budget = 12)
{
    CrashHarnessConfig cfg;
    cfg.pointBudget = budget;
    return cfg;
}

TEST(CrashHarness, QueueRecoversAtEveryPointAcrossDesigns)
{
    RecordedWorkload recorded = record(WorkloadKind::Queue);
    for (HwDesign design :
         {HwDesign::IntelX86, HwDesign::StrandWeaver}) {
        for (PersistencyModel model : allModels) {
            CrashCellResult cell = runCrashCell(recorded, design,
                                                model, smallConfig());
            EXPECT_GT(cell.pointsTested, 0u);
            EXPECT_TRUE(cell.allPassed())
                << hwDesignName(design) << "/"
                << persistencyModelName(model) << ": "
                << (cell.failures.empty()
                        ? "?"
                        : cell.failures.front().violation);
        }
    }
}

TEST(CrashHarness, HashmapRecoversUnderHopsAndNoPersistQueue)
{
    RecordedWorkload recorded = record(WorkloadKind::Hashmap);
    for (HwDesign design :
         {HwDesign::Hops, HwDesign::NoPersistQueue}) {
        CrashCellResult cell = runCrashCell(
            recorded, design, PersistencyModel::Sfr, smallConfig());
        EXPECT_GT(cell.pointsTested, 0u);
        EXPECT_TRUE(cell.allPassed())
            << hwDesignName(design) << ": "
            << (cell.failures.empty()
                    ? "?"
                    : cell.failures.front().violation);
    }
}

TEST(CrashHarness, RolledBackEntriesAreObserved)
{
    // SFR defers commits to the background pruner, so many crash
    // points land with live uncommitted entries: recovery must do
    // real rollback work, and the harness must report it.
    RecordedWorkload recorded = record(WorkloadKind::Queue);
    CrashCellResult cell =
        runCrashCell(recorded, HwDesign::StrandWeaver,
                     PersistencyModel::Sfr, smallConfig(24));
    EXPECT_TRUE(cell.allPassed());
    EXPECT_GT(cell.totalRolledBack, 0u);
    EXPECT_EQ(cell.totalReplayed, 0u); // undo logging never replays
}

TEST(CrashHarness, RedoLoggingReplaysCommittedEntries)
{
    RecordedWorkload recorded = record(WorkloadKind::Hashmap);
    CrashHarnessConfig cfg = smallConfig(24);
    cfg.logStyle = LogStyle::Redo;
    CrashCellResult cell = runCrashCell(
        recorded, HwDesign::StrandWeaver, PersistencyModel::Txn, cfg);
    EXPECT_TRUE(cell.allPassed())
        << (cell.failures.empty() ? "?"
                                  : cell.failures.front().violation);
    EXPECT_GT(cell.totalReplayed, 0u);
    EXPECT_EQ(cell.totalRolledBack, 0u); // redo never rolls back
}

TEST(CrashHarness, NonAtomicViolationsAreDetected)
{
    // The whole point of the oracle: a design without log/update
    // persist ordering must be caught losing consistency at some
    // crash point. (Deterministic: fixed seed, fixed schedule.)
    RecordedWorkload recorded = record(WorkloadKind::Hashmap);
    unsigned violations = 0;
    for (PersistencyModel model : allModels) {
        CrashCellResult cell = runCrashCell(
            recorded, HwDesign::NonAtomic, model, smallConfig(24));
        violations += cell.pointsTested - cell.pointsPassed;
    }
    EXPECT_GT(violations, 0u);
}

TEST(CrashHarness, StatsAccumulateAcrossCells)
{
    RecordedWorkload recorded = record(WorkloadKind::Queue);
    CrashStats stats("crash");
    CrashCellResult cell =
        runCrashCell(recorded, HwDesign::IntelX86,
                     PersistencyModel::Txn, smallConfig(), &stats);
    EXPECT_EQ(stats.pointsTested.value(),
              static_cast<double>(cell.pointsTested));
    EXPECT_EQ(stats.pointsPassed.value(),
              static_cast<double>(cell.pointsPassed));
    EXPECT_EQ(stats.rolledBack.samples(), cell.pointsTested);
}

TEST(CrashHarness, ZeroBudgetDisablesInjection)
{
    RecordedWorkload recorded = record(WorkloadKind::Queue, 1, 8);
    CrashCellResult cell =
        runCrashCell(recorded, HwDesign::StrandWeaver,
                     PersistencyModel::Txn, smallConfig(0));
    EXPECT_EQ(cell.pointsTested, 0u);
}

TEST(CrashHarness, TornPrefixesStayRecoverable)
{
    // Torn-line injection admits only the first k written words of
    // the final flushed line. The log-entry layout keeps seq and
    // globalSeq in the top words, so a torn log entry looks stale
    // (never-sequenced) and recovery skips it; a torn data line is
    // undone by its log entry. Either way a recoverable design must
    // still pass every point.
    RecordedWorkload recorded = record(WorkloadKind::Queue);
    for (unsigned tornWords : {1u, 4u}) {
        CrashHarnessConfig cfg = smallConfig();
        cfg.tornWords = tornWords;
        CrashCellResult cell =
            runCrashCell(recorded, HwDesign::StrandWeaver,
                         PersistencyModel::Txn, cfg);
        EXPECT_GT(cell.pointsTested, 0u);
        EXPECT_TRUE(cell.allPassed())
            << "tornWords=" << tornWords << ": "
            << (cell.failures.empty()
                    ? "?"
                    : cell.failures.front().violation);
    }
}

TEST(CrashHarness, SevenWordTearsKeepFrontierModelsRecoverable)
{
    // Regression for a latent layout bug the fuzzer surfaced: with
    // globalSeq above seq, a 7-word tear of a region-end log entry
    // kept a valid-looking seq while globalSeq read as stale zero,
    // fell below the SFR/ATLAS commit frontier, and masked the
    // region's uncommitted updates from rollback. seq now occupies
    // the line's top word, so any tear of an entry line fails the
    // seq<->slot check and the entry is dropped as unpublished.
    static_assert(log_field::seq == 56,
                  "seq must stay the top word of the entry line — "
                  "prefix tears must drop it first");
    RecordedWorkload recorded = record(WorkloadKind::Queue);
    for (PersistencyModel model :
         {PersistencyModel::Sfr, PersistencyModel::Atlas}) {
        CrashHarnessConfig cfg = smallConfig(24);
        cfg.tornWords = 7;
        CrashCellResult cell = runCrashCell(
            recorded, HwDesign::StrandWeaver, model, cfg);
        EXPECT_GT(cell.pointsTested, 0u);
        EXPECT_TRUE(cell.allPassed())
            << persistencyModelName(model) << ": "
            << (cell.failures.empty()
                    ? "?"
                    : cell.failures.front().violation);
    }
}

TEST(CrashHarness, TornCommitsAreFlaggedUnderNonAtomic)
{
    // NON-ATOMIC lacks the log/update persist ordering, so exposing
    // partially-admitted lines at the crash point must still be
    // caught by the oracle: the torn matrix cells stay meaningful.
    RecordedWorkload recorded = record(WorkloadKind::Hashmap);
    CrashHarnessConfig cfg = smallConfig(24);
    cfg.tornWords = 1;
    CrashCellResult cell = runCrashCell(
        recorded, HwDesign::NonAtomic, PersistencyModel::Txn, cfg);
    EXPECT_GT(cell.pointsTested, 0u);
    EXPECT_LT(cell.pointsPassed, cell.pointsTested);
}

TEST(CrashHarness, MediaFaultsKeepRecoverableDesignsSalvageable)
{
    // With poison / flips / partial drain struck at every crash
    // point, a recoverable design must still pass every point: each
    // verdict is FULL or DEGRADED (never FAILED — faults spare the
    // metadata area by design), and degraded points reconcile
    // against the oracle through the quarantine report.
    RecordedWorkload recorded = record(WorkloadKind::Queue);
    CrashHarnessConfig cfg = smallConfig(24);
    cfg.media.poisonLines = 2;
    cfg.media.bitFlips = 2;
    cfg.media.dropAdmissions = 2;
    for (PersistencyModel model :
         {PersistencyModel::Txn, PersistencyModel::Sfr}) {
        CrashCellResult cell = runCrashCell(
            recorded, HwDesign::StrandWeaver, model, cfg);
        EXPECT_GT(cell.pointsTested, 0u);
        EXPECT_TRUE(cell.allPassed())
            << persistencyModelName(model) << ": "
            << (cell.failures.empty()
                    ? "?"
                    : cell.failures.front().violation);
        EXPECT_EQ(cell.verdictFailed, 0u);
        EXPECT_EQ(cell.verdictFull + cell.verdictDegraded,
                  cell.pointsInjected);
        // The fault model actually bit: some point was salvaged
        // rather than fully recovered.
        EXPECT_GT(cell.verdictDegraded, 0u);
        EXPECT_GT(cell.totalPoisonedQuarantined +
                      cell.totalCorruptQuarantined +
                      cell.totalQuarantinedAddrs,
                  0u);
    }
}

TEST(CrashHarness, MediaVerdictsAreIdenticalAcrossHarnessModes)
{
    // Faults are a pure function of (media.seed, crash tick), so the
    // forked rewind and the two-run oracle must reach bit-identical
    // verdicts and quarantine tallies at the same plan.
    RecordedWorkload recorded = record(WorkloadKind::Hashmap);
    CrashHarnessConfig cfg = smallConfig(20);
    cfg.media.poisonLines = 1;
    cfg.media.bitFlips = 1;
    cfg.media.dropAdmissions = 2;
    cfg.fork = false;
    CrashCellResult tworun = runCrashCell(
        recorded, HwDesign::StrandWeaver, PersistencyModel::Atlas,
        cfg);
    cfg.fork = true;
    CrashCellResult forked = runCrashCell(
        recorded, HwDesign::StrandWeaver, PersistencyModel::Atlas,
        cfg);

    EXPECT_GT(tworun.pointsTested, 0u);
    EXPECT_EQ(forked.pointsTested, tworun.pointsTested);
    EXPECT_EQ(forked.pointsPassed, tworun.pointsPassed);
    EXPECT_EQ(forked.pointsInjected, tworun.pointsInjected);
    EXPECT_EQ(forked.verdictFull, tworun.verdictFull);
    EXPECT_EQ(forked.verdictDegraded, tworun.verdictDegraded);
    EXPECT_EQ(forked.verdictFailed, tworun.verdictFailed);
    EXPECT_EQ(forked.totalRolledBack, tworun.totalRolledBack);
    EXPECT_EQ(forked.totalReplayed, tworun.totalReplayed);
    EXPECT_EQ(forked.totalTornSkipped, tworun.totalTornSkipped);
    EXPECT_EQ(forked.totalCorruptQuarantined,
              tworun.totalCorruptQuarantined);
    EXPECT_EQ(forked.totalPoisonedQuarantined,
              tworun.totalPoisonedQuarantined);
    EXPECT_EQ(forked.totalQuarantinedAddrs,
              tworun.totalQuarantinedAddrs);
}

TEST(CrashHarness, UncheckedRecoveryUnderFlipsIsCaughtByTheOracle)
{
    // The checksum regression pair at harness level: bit flips with
    // verification OFF reproduce the un-checksummed layout, where
    // recovery trusts flipped entries and rolls corrupt values into
    // the heap — the oracle must flag that as silent corruption on
    // at least one (seed, point). The SAME seeds with verification
    // ON must pass every point.
    RecordedWorkload recorded = record(WorkloadKind::Queue);
    unsigned uncheckedFailures = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        CrashHarnessConfig cfg = smallConfig(24);
        cfg.media.bitFlips = 2;
        cfg.media.seed = seed;

        cfg.verifyChecksums = false;
        CrashCellResult unchecked = runCrashCell(
            recorded, HwDesign::StrandWeaver, PersistencyModel::Txn,
            cfg);
        uncheckedFailures +=
            unchecked.pointsTested - unchecked.pointsPassed;

        cfg.verifyChecksums = true;
        CrashCellResult checked = runCrashCell(
            recorded, HwDesign::StrandWeaver, PersistencyModel::Txn,
            cfg);
        EXPECT_TRUE(checked.allPassed())
            << "seed " << seed << ": "
            << (checked.failures.empty()
                    ? "?"
                    : checked.failures.front().violation);
    }
    EXPECT_GT(uncheckedFailures, 0u)
        << "flips with verification off must produce silent "
           "corruption the oracle can see";
}

TEST(CrashExperiment, EnvKnobRunsInjectionInsideRunExperiment)
{
    // SW_CRASH_POINTS wires injection into every validated
    // experiment; a recoverable design must pass. The env_config
    // module snapshots the environment on first use, so the knob is
    // set before anything in this process reads it and stays pinned
    // at that value for the rest of the process — there is no
    // re-read after unsetenv (that is the parse-once contract;
    // see env_config_test.cc for the validation surface).
    RecordedWorkload recorded = record(WorkloadKind::Queue, 1, 12);
    ASSERT_EQ(setenv("SW_CRASH_POINTS", "6", 1), 0);
    EXPECT_EQ(benchCrashPoints(), 6u);
    RunMetrics metrics =
        runExperiment(recorded, HwDesign::StrandWeaver,
                      PersistencyModel::Txn);
    EXPECT_GT(metrics.runTicks, 0u);
    ASSERT_EQ(unsetenv("SW_CRASH_POINTS"), 0);
    EXPECT_EQ(benchCrashPoints(), 6u) << "env is parsed once";
}

} // namespace
} // namespace strand
