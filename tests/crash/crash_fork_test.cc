/**
 * Forked-snapshot crash exploration tests.
 *
 * Two families:
 *  - planCrashPoints() regressions for the two sampler bugs: the
 *    even down-sampler used to skip the final enumerated point (the
 *    fully committed end-of-enumeration state was never tested), and
 *    the random top-up drew ticks even for empty enumerations and
 *    silently double-counted collisions.
 *  - The differential suite: forked-mode verdicts must be
 *    byte-identical to the two-run oracle across every design and
 *    model at a fixed seed, whole and torn.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "crash/crash_harness.hh"

namespace strand
{
namespace
{

CrashHarnessConfig
budgeted(unsigned budget)
{
    CrashHarnessConfig cfg;
    cfg.pointBudget = budget;
    return cfg;
}

TEST(CrashPointPlan, KeepsFirstAndLastEnumeratedUnderBudget)
{
    // 97 enumerated ticks, budget 12: the old sampler's stride
    // i*N/B never reached index N-1, so tick 970 — the state after
    // the final admission — was silently dropped. Both endpoints
    // must survive sampling.
    std::vector<Tick> enumerated;
    for (Tick t = 1; t <= 97; ++t)
        enumerated.push_back(t * 10);
    ASSERT_GT(enumerated.size(), 12u);

    CrashPointPlan plan =
        planCrashPoints(enumerated, 1000, budgeted(12));
    EXPECT_EQ(plan.requested, 12u);
    EXPECT_EQ(plan.enumerated, 97u);
    EXPECT_TRUE(std::count(plan.points.begin(), plan.points.end(),
                           Tick{10}))
        << "first enumerated point must be retained";
    EXPECT_TRUE(std::count(plan.points.begin(), plan.points.end(),
                           Tick{970}))
        << "last enumerated point must be retained";
    // Sampling is still a down-sample plus bounded top-up.
    EXPECT_GE(plan.points.size(), 12u);
    EXPECT_LE(plan.points.size(), 12u + 12u / 4 + 1);
}

TEST(CrashPointPlan, EverySampledBudgetKeepsTheLastPoint)
{
    // The acceptance property, swept: for every budget below the
    // enumeration size, the final enumerated crash point is in the
    // plan.
    std::vector<Tick> enumerated;
    for (Tick t = 1; t <= 64; ++t)
        enumerated.push_back(t * 3);
    for (unsigned budget = 1; budget < 64; ++budget) {
        CrashPointPlan plan =
            planCrashPoints(enumerated, 500, budgeted(budget));
        EXPECT_TRUE(std::count(plan.points.begin(),
                               plan.points.end(), Tick{192}))
            << "budget " << budget
            << " dropped the last enumerated point";
    }
}

TEST(CrashPointPlan, SampledTicksAreDistinctAndSorted)
{
    std::vector<Tick> enumerated;
    for (Tick t = 1; t <= 200; ++t)
        enumerated.push_back(t * 7);
    CrashPointPlan plan =
        planCrashPoints(enumerated, 2000, budgeted(16));
    EXPECT_TRUE(std::is_sorted(plan.points.begin(),
                               plan.points.end()));
    EXPECT_EQ(std::adjacent_find(plan.points.begin(),
                                 plan.points.end()),
              plan.points.end())
        << "plan must not inject the same tick twice";
}

TEST(CrashPointPlan, UnderBudgetEnumerationIsKeptWhole)
{
    std::vector<Tick> enumerated = {30, 10, 20, 10}; // dups, unsorted
    CrashPointPlan plan =
        planCrashPoints(enumerated, 100, budgeted(16));
    EXPECT_EQ(plan.enumerated, 3u);
    for (Tick t : {Tick{10}, Tick{20}, Tick{30}})
        EXPECT_TRUE(std::count(plan.points.begin(),
                               plan.points.end(), t));
}

TEST(CrashPointPlan, EmptyEnumerationDrawsNoRandomTicks)
{
    // The old top-up drew budget/4 + 1 random ticks even when the
    // run persisted nothing — pure noise against an empty image.
    CrashPointPlan plan = planCrashPoints({}, 5000, budgeted(16));
    EXPECT_EQ(plan.enumerated, 0u);
    EXPECT_TRUE(plan.points.empty());
}

TEST(CrashPointPlan, RandomTopUpsNeverDuplicateEnumeratedTicks)
{
    // endTick == 1 forces every random draw onto tick 1, which is
    // already enumerated: the old code pushed the duplicates anyway
    // (unique'd them away later, shrinking the effective budget
    // silently); now collisions are redrawn/bounded and the plan
    // stays duplicate-free.
    CrashPointPlan plan = planCrashPoints({1}, 1, budgeted(8));
    EXPECT_EQ(plan.points, std::vector<Tick>{1});
}

TEST(CrashPointPlan, ZeroBudgetPlansNothing)
{
    CrashPointPlan plan =
        planCrashPoints({10, 20, 30}, 100, budgeted(0));
    EXPECT_TRUE(plan.points.empty());
    EXPECT_EQ(plan.requested, 0u);
}

RecordedWorkload
record(WorkloadKind kind, unsigned threads = 2, unsigned ops = 24)
{
    WorkloadParams params;
    params.numThreads = threads;
    params.opsPerThread = ops;
    return recordWorkload(kind, params);
}

/** Assert two cell results are identical, field by field. */
void
expectIdentical(const CrashCellResult &fork,
                const CrashCellResult &tworun, const char *label)
{
    EXPECT_EQ(fork.pointsTested, tworun.pointsTested) << label;
    EXPECT_EQ(fork.pointsPassed, tworun.pointsPassed) << label;
    EXPECT_EQ(fork.pointsRequested, tworun.pointsRequested) << label;
    EXPECT_EQ(fork.pointsInjected, tworun.pointsInjected) << label;
    EXPECT_EQ(fork.totalRolledBack, tworun.totalRolledBack) << label;
    EXPECT_EQ(fork.totalReplayed, tworun.totalReplayed) << label;
    ASSERT_EQ(fork.failures.size(), tworun.failures.size()) << label;
    for (std::size_t i = 0; i < fork.failures.size(); ++i) {
        EXPECT_EQ(fork.failures[i].when, tworun.failures[i].when)
            << label << " failure " << i;
        EXPECT_EQ(fork.failures[i].passed,
                  tworun.failures[i].passed)
            << label << " failure " << i;
        EXPECT_EQ(fork.failures[i].entriesRolledBack,
                  tworun.failures[i].entriesRolledBack)
            << label << " failure " << i;
        EXPECT_EQ(fork.failures[i].redoEntriesReplayed,
                  tworun.failures[i].redoEntriesReplayed)
            << label << " failure " << i;
        EXPECT_EQ(fork.failures[i].violation,
                  tworun.failures[i].violation)
            << label << " failure " << i;
    }
}

TEST(CrashForkDifferential, VerdictsMatchTwoRunAcrossAllCells)
{
    // The acceptance gate in-process: 5 designs x 3 models, fixed
    // seed, same budget — forked and two-run modes must agree on
    // every verdict, including NON-ATOMIC's expected violations.
    RecordedWorkload recorded = record(WorkloadKind::Hashmap);
    for (HwDesign design : allDesigns) {
        for (PersistencyModel model : allModels) {
            CrashHarnessConfig cfg = budgeted(12);
            cfg.fork = false;
            CrashCellResult tworun =
                runCrashCell(recorded, design, model, cfg);
            cfg.fork = true;
            CrashCellResult fork =
                runCrashCell(recorded, design, model, cfg);
            std::string label =
                std::string(hwDesignName(design)) + "/" +
                persistencyModelName(model);
            expectIdentical(fork, tworun, label.c_str());
            EXPECT_GT(fork.pointsTested, 0u) << label;
        }
    }
}

TEST(CrashForkDifferential, TornVerdictsMatchTwoRun)
{
    // Torn clones depend on the rewound image's lastAdmission undo
    // record being the right one at every point — the part of the
    // backward reconstruction most worth cross-checking.
    RecordedWorkload recorded = record(WorkloadKind::Queue);
    for (unsigned tornWords : {1u, 7u}) {
        CrashHarnessConfig cfg = budgeted(24);
        cfg.tornWords = tornWords;
        cfg.fork = false;
        CrashCellResult tworun = runCrashCell(
            recorded, HwDesign::StrandWeaver,
            PersistencyModel::Sfr, cfg);
        cfg.fork = true;
        CrashCellResult fork = runCrashCell(
            recorded, HwDesign::StrandWeaver,
            PersistencyModel::Sfr, cfg);
        std::string label =
            "tornWords=" + std::to_string(tornWords);
        expectIdentical(fork, tworun, label.c_str());
    }
}

TEST(CrashForkDifferential, RedoLoggingMatchesTwoRun)
{
    // Redo replay exercises the committed-marker path of recovery;
    // keep it covered under the paged scan as well.
    RecordedWorkload recorded = record(WorkloadKind::Hashmap);
    CrashHarnessConfig cfg = budgeted(24);
    cfg.logStyle = LogStyle::Redo;
    cfg.fork = false;
    CrashCellResult tworun =
        runCrashCell(recorded, HwDesign::StrandWeaver,
                     PersistencyModel::Txn, cfg);
    cfg.fork = true;
    CrashCellResult fork =
        runCrashCell(recorded, HwDesign::StrandWeaver,
                     PersistencyModel::Txn, cfg);
    expectIdentical(fork, tworun, "redo");
    EXPECT_GT(fork.totalReplayed, 0u);
}

TEST(CrashForkDifferential, RequestedVersusInjectedIsReported)
{
    RecordedWorkload recorded = record(WorkloadKind::Queue, 1, 8);
    CrashHarnessConfig cfg = budgeted(500); // far above enumeration
    cfg.fork = true;
    CrashCellResult cell = runCrashCell(
        recorded, HwDesign::StrandWeaver, PersistencyModel::Txn,
        cfg);
    EXPECT_EQ(cell.pointsRequested, 500u);
    EXPECT_GT(cell.pointsInjected, 0u);
    EXPECT_LT(cell.pointsInjected, cell.pointsRequested)
        << "a tiny run cannot fill a 500-point budget; the gap must "
           "be visible instead of silently shrunk";
    // Every injection is tested exactly once (pmosan off).
    EXPECT_EQ(cell.pointsInjected, cell.pointsTested);
}

TEST(CrashForkDifferential, StatsAccumulateIdentically)
{
    RecordedWorkload recorded = record(WorkloadKind::Queue);
    CrashHarnessConfig cfg = budgeted(12);
    cfg.fork = true;
    CrashStats stats("crash_fork");
    CrashCellResult cell =
        runCrashCell(recorded, HwDesign::StrandWeaver,
                     PersistencyModel::Sfr, cfg, &stats);
    EXPECT_EQ(stats.pointsTested.value(),
              static_cast<double>(cell.pointsTested));
    EXPECT_EQ(stats.rolledBack.samples(), cell.pointsTested);
    EXPECT_TRUE(cell.allPassed());
    EXPECT_GT(cell.totalRolledBack, 0u);
}

} // namespace
} // namespace strand
