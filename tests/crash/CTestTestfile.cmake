# CMake generated Testfile for 
# Source directory: /root/repo/tests/crash
# Build directory: /root/repo/tests/crash
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/crash/test_crash_harness[1]_include.cmake")
include("/root/repo/tests/crash/test_crash_fork[1]_include.cmake")
