/**
 * Sweep orchestration tests: spec-order determinism across worker
 * counts, baseline-speedup wiring, the schema-1 JSON golden, and the
 * failure-isolation contract (a panicking cell reports its label
 * without wedging the pool).
 */

#include <gtest/gtest.h>

#include "core/result_sink.hh"
#include "core/sweep.hh"

namespace strand
{
namespace
{

std::shared_ptr<const RecordedWorkload>
smallWorkload(WorkloadKind kind = WorkloadKind::Queue)
{
    WorkloadParams params;
    params.numThreads = 1;
    params.opsPerThread = 10;
    return recordShared(kind, params);
}

/** A 4-cell design column under TXN with an Intel baseline. */
SweepSpec
smallSpec(const std::shared_ptr<const RecordedWorkload> &recorded)
{
    SweepSpec spec;
    spec.name = "sweep_test";
    SweepCell &intel = spec.addTiming(recorded, HwDesign::IntelX86,
                                      PersistencyModel::Txn);
    // Copy the key: later add*() calls may reallocate spec.cells.
    const std::string base = intel.key();
    intel.baseline = base;
    for (HwDesign design :
         {HwDesign::Hops, HwDesign::StrandWeaver,
          HwDesign::NonAtomic}) {
        spec.addTiming(recorded, design, PersistencyModel::Txn, base);
    }
    return spec;
}

TEST(Sweep, SerialAndParallelRunsAreByteIdentical)
{
    // The acceptance bar of the whole layer: the JSON document (and
    // everything else derived from the result) must not depend on
    // the worker count.
    auto recorded = smallWorkload();
    SweepSpec spec = smallSpec(recorded);

    spec.jobs = 1;
    SweepResult serial = runSweep(spec);
    ASSERT_TRUE(serial.allOk()) << serial.failedKeys().front();
    EXPECT_EQ(serial.jobs, 1u);

    spec.jobs = 4;
    SweepResult parallel = runSweep(spec);
    ASSERT_TRUE(parallel.allOk());
    EXPECT_EQ(parallel.jobs, 4u);

    // The deterministic document (everything but the measured host
    // wall-clock) must not depend on the worker count...
    EXPECT_EQ(sweepJson(serial, /*includeHost=*/false),
              sweepJson(parallel, /*includeHost=*/false));
    // ...and neither must the simulation-side host counters.
    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        EXPECT_EQ(serial.cells[i].host.events,
                  parallel.cells[i].host.events);
        EXPECT_EQ(serial.cells[i].host.simOps,
                  parallel.cells[i].host.simOps);
        EXPECT_GT(serial.cells[i].host.wallMs, 0.0);
    }
}

TEST(Sweep, JobsClampToCellCount)
{
    auto recorded = smallWorkload();
    SweepSpec spec;
    spec.name = "clamp";
    spec.addTiming(recorded, HwDesign::IntelX86,
                   PersistencyModel::Txn);
    spec.jobs = 16;
    SweepResult result = runSweep(spec);
    EXPECT_EQ(result.jobs, 1u);
}

TEST(Sweep, BaselineSpeedupsResolveAfterThePool)
{
    auto recorded = smallWorkload();
    SweepSpec spec = smallSpec(recorded);
    spec.jobs = 2;
    SweepResult result = runSweep(spec);
    ASSERT_TRUE(result.allOk());

    // The baseline cell names itself: exactly 1.0 by construction.
    const CellResult *intel = result.find("queue/intel-x86/txn");
    ASSERT_NE(intel, nullptr);
    EXPECT_DOUBLE_EQ(intel->speedup, 1.0);

    // Other cells normalize to the baseline's runTicks.
    const CellResult *sw = result.find("queue/strandweaver/txn");
    ASSERT_NE(sw, nullptr);
    ASSERT_GT(sw->metrics.runTicks, 0u);
    EXPECT_DOUBLE_EQ(
        sw->speedup,
        static_cast<double>(intel->metrics.runTicks) /
            static_cast<double>(sw->metrics.runTicks));
}

TEST(Sweep, CrashCellsRunThroughTheSamePool)
{
    auto recorded = smallWorkload();
    SweepSpec spec;
    spec.name = "crash";
    spec.addCrash(recorded, HwDesign::StrandWeaver,
                  PersistencyModel::Txn, 6);
    SweepCell &torn = spec.addCrash(recorded, HwDesign::StrandWeaver,
                                    PersistencyModel::Txn, 6);
    torn.variant = "torn";
    torn.tornWords = 1;
    spec.jobs = 2;
    SweepResult result = runSweep(spec);
    ASSERT_TRUE(result.allOk()) << result.failedKeys().front();
    for (const CellResult &cell : result.cells) {
        EXPECT_EQ(cell.kind, CellKind::Crash);
        EXPECT_GT(cell.crash.pointsTested, 0u);
        EXPECT_TRUE(cell.crash.allPassed());
    }
    EXPECT_EQ(result.cells.at(1).tornWords, 1u);
}

TEST(Sweep, PanickingCellReportsItsLabelWithoutWedgingThePool)
{
    auto recorded = smallWorkload();
    SweepSpec spec;
    spec.name = "panic";
    spec.addTiming(recorded, HwDesign::IntelX86,
                   PersistencyModel::Txn);
    // A cell without a recorded workload panics inside the worker.
    SweepCell ghost;
    ghost.workloadLabel = "ghost";
    spec.add(std::move(ghost));
    spec.addTiming(recorded, HwDesign::StrandWeaver,
                   PersistencyModel::Txn);
    // And a cell whose baseline is the panicking cell fails too,
    // with a distinct error.
    spec.addTiming(recorded, HwDesign::Hops, PersistencyModel::Txn,
                   "ghost/strandweaver/sfr");
    spec.jobs = 2;

    SweepResult result = runSweep(spec);
    EXPECT_FALSE(result.allOk());

    const CellResult &bad = result.cells.at(1);
    EXPECT_FALSE(bad.ok);
    // The panic message carries the cell's coordinates.
    EXPECT_NE(bad.error.find(bad.key), std::string::npos)
        << bad.error;

    // Healthy cells still completed.
    EXPECT_TRUE(result.cells.at(0).ok);
    EXPECT_TRUE(result.cells.at(2).ok);

    const CellResult &dependent = result.cells.at(3);
    EXPECT_FALSE(dependent.ok);
    EXPECT_NE(dependent.error.find("failed"), std::string::npos)
        << dependent.error;

    EXPECT_EQ(result.failedKeys(),
              (std::vector<std::string>{bad.key, dependent.key}));
}

TEST(Sweep, MissingBaselineMarksTheCellFailed)
{
    auto recorded = smallWorkload();
    SweepSpec spec;
    spec.name = "missing";
    spec.addTiming(recorded, HwDesign::StrandWeaver,
                   PersistencyModel::Txn, "no/such/cell");
    SweepResult result = runSweep(spec);
    ASSERT_EQ(result.cells.size(), 1u);
    EXPECT_FALSE(result.cells.front().ok);
    EXPECT_NE(result.cells.front().error.find("not found"),
              std::string::npos);
}

TEST(ResultSink, SchemaThreeGolden)
{
    // Hand-built result, exact bytes: any change to the document
    // layout or the number rendering must be deliberate (bump the
    // schema field when it is).
    SweepResult result;
    result.name = "golden";
    result.jobs = 8; // not part of the document

    CellResult timing;
    timing.kind = CellKind::Timing;
    timing.workload = "queue";
    timing.design = HwDesign::IntelX86;
    timing.model = PersistencyModel::Txn;
    timing.logStyle = LogStyle::Undo;
    timing.key = "queue/intel-x86/txn";
    timing.baseline = "queue/intel-x86/txn";
    timing.ok = true;
    timing.speedup = 1.0;
    timing.metrics.runTicks = 1234;
    timing.metrics.totalCycles = 5000;
    timing.metrics.clwbs = 42;
    timing.metrics.persistStalls = 7;
    timing.metrics.allStalls = 9;
    timing.metrics.snoopStalls = 0;
    timing.metrics.ckc = 8.5;
    timing.metrics.lowering.clwbs = 42;
    timing.metrics.lowering.stores = 100;
    timing.metrics.lowering.loads = 50;
    timing.metrics.lowering.barriers = 12;
    timing.metrics.lowering.drains = 3;
    timing.metrics.lowering.logEntries = 40;
    timing.metrics.lowering.commits = 10;
    timing.host.wallMs = 250;
    timing.host.events = 100000;
    timing.host.simOps = 5000;
    result.cells.push_back(timing);

    CellResult crash;
    crash.kind = CellKind::Crash;
    crash.workload = "hashmap";
    crash.design = HwDesign::NonAtomic;
    crash.model = PersistencyModel::Sfr;
    crash.key = "hashmap/non-atomic/sfr";
    crash.ok = true;
    crash.tornWords = 1;
    crash.crash.pointsTested = 5;
    crash.crash.pointsPassed = 4;
    crash.crash.pointsRequested = 6;
    crash.crash.pointsInjected = 5;
    crash.crash.totalRolledBack = 2;
    crash.crash.totalReplayed = 0;
    crash.crash.totalTornSkipped = 3;
    crash.crash.totalCorruptQuarantined = 1;
    crash.crash.totalPoisonedQuarantined = 0;
    crash.crash.totalQuarantinedAddrs = 0;
    crash.crash.verdictFull = 4;
    crash.crash.verdictDegraded = 1;
    crash.crash.verdictFailed = 0;
    crash.media.bitFlips = 1;
    crash.media.dropAdmissions = 2;
    crash.media.seed = 7;
    CrashPointResult failure;
    failure.when = 77;
    failure.violation = "lost \"x\"";
    crash.crash.failures.push_back(failure);
    crash.host.wallMs = 750;
    crash.host.events = 400000;
    crash.host.simOps = 20000;
    result.cells.push_back(crash);

    const std::string expected = R"({
  "bench": "golden",
  "schema": 3,
  "cells": [
    {
      "kind": "timing",
      "workload": "queue",
      "design": "intel-x86",
      "model": "txn",
      "log_style": "undo",
      "variant": "",
      "baseline": "queue/intel-x86/txn",
      "ok": true,
      "error": "",
      "speedup": 1,
      "metrics": {
        "run_ticks": 1234,
        "total_cycles": 5000,
        "clwbs": 42,
        "persist_stalls": 7,
        "all_stalls": 9,
        "snoop_stalls": 0,
        "ckc": 8.5,
        "lowering": {
          "clwbs": 42,
          "stores": 100,
          "loads": 50,
          "barriers": 12,
          "drains": 3,
          "log_entries": 40,
          "commits": 10
        }
      }
    },
    {
      "kind": "crash",
      "workload": "hashmap",
      "design": "non-atomic",
      "model": "sfr",
      "log_style": "undo",
      "variant": "",
      "baseline": "",
      "ok": true,
      "error": "",
      "crash": {
        "torn_words": 1,
        "points_tested": 5,
        "points_passed": 4,
        "points_requested": 6,
        "points_injected": 5,
        "rolled_back": 2,
        "replayed": 0,
        "torn_entries_skipped": 3,
        "corrupt_quarantined": 1,
        "poisoned_quarantined": 0,
        "quarantined_addrs": 0,
        "verdicts": {
          "full": 4,
          "degraded": 1,
          "failed": 0
        },
        "media": {
          "poison_lines": 0,
          "bit_flips": 1,
          "drop_admissions": 2,
          "seed": 7
        },
        "failures": [
          {
            "tick": 77,
            "violation": "lost \"x\""
          }
        ]
      }
    }
  ],
  "host": {
    "wall_ms": 1000,
    "events": 500000,
    "sim_ops": 25000,
    "events_per_sec": 500000,
    "sim_ops_per_sec": 25000,
    "cells": [
      {
        "key": "queue/intel-x86/txn",
        "wall_ms": 250,
        "events": 100000,
        "sim_ops": 5000
      },
      {
        "key": "hashmap/non-atomic/sfr",
        "wall_ms": 750,
        "events": 400000,
        "sim_ops": 20000
      }
    ]
  }
}
)";
    EXPECT_EQ(sweepJson(result), expected);

    // Schema-1 compatibility: the deterministic rendering drops the
    // host block but keeps the cells bytes unchanged.
    std::string bare = sweepJson(result, /*includeHost=*/false);
    EXPECT_EQ(bare.find("\"host\""), std::string::npos);
    EXPECT_NE(expected.find(bare.substr(
                  bare.find("\"cells\""),
                  bare.rfind(']') - bare.find("\"cells\"") + 1)),
              std::string::npos);
}

TEST(ResultSink, EmptySweepStillRendersADocument)
{
    SweepResult result;
    result.name = "empty";
    EXPECT_EQ(sweepJson(result),
              "{\n  \"bench\": \"empty\",\n  \"schema\": 3,\n"
              "  \"cells\": [],\n"
              "  \"host\": {\n"
              "    \"wall_ms\": 0,\n"
              "    \"events\": 0,\n"
              "    \"sim_ops\": 0,\n"
              "    \"events_per_sec\": 0,\n"
              "    \"sim_ops_per_sec\": 0,\n"
              "    \"cells\": []\n"
              "  }\n}\n");
}

} // namespace
} // namespace strand
