# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/core/test_domain_partition[1]_include.cmake")
include("/root/repo/tests/core/test_env_config[1]_include.cmake")
include("/root/repo/tests/core/test_sweep[1]_include.cmake")
