/**
 * @file
 * Domain partitioning for PDES sharding.
 *
 * The production component graph communicates exclusively through
 * MemPort mailboxes whose legs take at least one tick, so the honest
 * partition keeps every core group separate from the shared fabric:
 * 1 + nCores effective domains, no fusions, and a window equal to
 * the minimum port-declared leg latency. A graph with a zero-latency
 * edge still fuses, with the responsible call path logged.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/domain_partition.hh"
#include "core/system.hh"

namespace strand
{
namespace
{

TEST(DomainPartitionTest, AffinityTagsFollowTheirCore)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    System sys(cfg);
    EXPECT_EQ(sys.core(0).domainAffinity(), "core0");
    EXPECT_EQ(sys.core(1).domainAffinity(), "core1");
    EXPECT_EQ(sys.core(0).persistEngine().domainAffinity(), "core0");
    EXPECT_EQ(sys.core(1).persistEngine().domainAffinity(), "core1");
    EXPECT_EQ(sys.hierarchy().domainAffinity(), "shared");
    EXPECT_EQ(sys.pmController().domainAffinity(), "shared");
}

TEST(DomainPartitionTest, ProductionGraphKeepsCoresUnfused)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    System sys(cfg);
    DomainPartition part = computeSystemPartition(sys, 4);

    EXPECT_EQ(part.requestedShards, 4u);
    // One domain per core plus the shared fabric: the mailboxed
    // call paths all declare at least one port leg of lookahead, so
    // nothing fuses.
    ASSERT_EQ(part.effectiveDomains(), 1u + cfg.numCores);
    EXPECT_TRUE(part.fusions.empty());
    // The window is the minimum port-declared leg latency.
    EXPECT_EQ(part.windowTicks, portLegLatency);
    // Every cross-domain edge survived and is reported for logging:
    // one request and one response leg per core.
    ASSERT_EQ(part.crossEdges.size(), 2 * cfg.numCores);
    for (const DomainEdge &e : part.crossEdges) {
        EXPECT_GE(e.lookahead, portLegLatency);
        EXPECT_NE(e.why.find("port-declared"), std::string::npos);
        EXPECT_TRUE(e.a == "shared" || e.b == "shared");
    }
}

TEST(DomainPartitionTest, ProductionPartitionCapsAtSeparableClasses)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    System sys(cfg);
    // More shards than separable classes: capped, not invented.
    EXPECT_EQ(computeSystemPartition(sys, 16).effectiveDomains(), 3u);
    // Fewer shards than classes: classes pack into the shards.
    DomainPartition two = computeSystemPartition(sys, 2);
    EXPECT_EQ(two.effectiveDomains(), 2u);
    // A single shard reproduces the classic serial loop.
    EXPECT_EQ(computeSystemPartition(sys, 1).effectiveDomains(), 1u);
}

TEST(DomainPartitionTest, DecoupledGraphKeepsDomainsAndWindow)
{
    DomainPartitionBuilder b;
    b.addComponent("sys.a", "d0");
    b.addComponent("sys.b", "d1");
    b.addComponent("sys.c", "d2");
    b.addEdge("d0", "d1", 3000, "mailboxed request path");
    b.addEdge("d1", "d2", 2000, "mailboxed response path");
    DomainPartition part = b.finalize(3, 500);

    EXPECT_EQ(part.effectiveDomains(), 3u);
    EXPECT_TRUE(part.fusions.empty());
    // Window = minimum surviving cross-domain lookahead.
    EXPECT_EQ(part.windowTicks, 2000u);
    EXPECT_EQ(part.domainTags,
              (std::vector<std::string>{"d0", "d1", "d2"}));
}

TEST(DomainPartitionTest, ZeroLookaheadEdgeFusesWithReason)
{
    DomainPartitionBuilder b;
    b.addComponent("sys.a", "d0");
    b.addComponent("sys.b", "d1");
    b.addEdge("d0", "d1", 0, "synchronous call at T+0");
    DomainPartition part = b.finalize(2, 700);

    ASSERT_EQ(part.effectiveDomains(), 1u);
    EXPECT_EQ(part.domains[0].size(), 2u);
    ASSERT_EQ(part.fusions.size(), 1u);
    EXPECT_EQ(part.fusions[0].reason, "synchronous call at T+0");
    // No surviving cross-domain edge: the default window applies.
    EXPECT_EQ(part.windowTicks, 700u);
}

TEST(DomainPartitionTest, ShardCapPacksClassesDeterministically)
{
    DomainPartitionBuilder b;
    b.addComponent("sys.a", "d0");
    b.addComponent("sys.b", "d1");
    b.addComponent("sys.c", "d2");
    b.addComponent("sys.d", "d3");
    DomainPartition part = b.finalize(2, 100);

    // Four independent classes packed round-robin into two domains.
    ASSERT_EQ(part.effectiveDomains(), 2u);
    EXPECT_EQ(part.domains[0],
              (std::vector<std::string>{"sys.a", "sys.c"}));
    EXPECT_EQ(part.domains[1],
              (std::vector<std::string>{"sys.b", "sys.d"}));
    EXPECT_EQ(part.windowTicks, 100u);
}

TEST(DomainPartitionTest, UnknownEdgeGroupPanics)
{
    DomainPartitionBuilder b;
    b.addComponent("sys.a", "d0");
    b.addEdge("d0", "ghost", 0, "edge into a group with no members");
    EXPECT_THROW(b.finalize(1, 100), std::logic_error);
}

} // namespace
} // namespace strand
