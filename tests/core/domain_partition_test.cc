/**
 * @file
 * Domain partitioning for PDES sharding.
 *
 * The production component graph communicates through synchronous
 * zero-latency calls, so the honest partition fuses every core group
 * with the shared fabric — one effective domain no matter how many
 * shards are requested, with the responsible call paths logged. A
 * decoupled graph (positive lookahead on every edge) keeps its
 * domains and derives the window from the minimum edge lookahead.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/domain_partition.hh"
#include "core/system.hh"

namespace strand
{
namespace
{

TEST(DomainPartitionTest, AffinityTagsFollowTheirCore)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    System sys(cfg);
    EXPECT_EQ(sys.core(0).domainAffinity(), "core0");
    EXPECT_EQ(sys.core(1).domainAffinity(), "core1");
    EXPECT_EQ(sys.core(0).persistEngine().domainAffinity(), "core0");
    EXPECT_EQ(sys.core(1).persistEngine().domainAffinity(), "core1");
    EXPECT_EQ(sys.hierarchy().domainAffinity(), "shared");
    EXPECT_EQ(sys.pmController().domainAffinity(), "shared");
}

TEST(DomainPartitionTest, ProductionGraphFusesToOneDomain)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    System sys(cfg);
    DomainPartition part = computeSystemPartition(sys, 4);

    EXPECT_EQ(part.requestedShards, 4u);
    ASSERT_EQ(part.effectiveDomains(), 1u);
    // Every registered component landed in the single fused domain:
    // hierarchy + PM controller + two cores + two engines.
    EXPECT_EQ(part.domains[0].size(), 6u);
    // Each core group fused with the shared fabric for a logged,
    // human-readable reason naming the synchronous call path.
    ASSERT_EQ(part.fusions.size(), 2u);
    for (const DomainFusion &f : part.fusions) {
        EXPECT_NE(f.reason.find("synchronous"), std::string::npos);
        EXPECT_EQ(f.groupB, "shared");
    }
    // With everything fused the windowed loop falls back to the L1
    // latency quantum.
    EXPECT_EQ(part.windowTicks, cfg.caches.l1Latency);
}

TEST(DomainPartitionTest, DecoupledGraphKeepsDomainsAndWindow)
{
    DomainPartitionBuilder b;
    b.addComponent("sys.a", "d0");
    b.addComponent("sys.b", "d1");
    b.addComponent("sys.c", "d2");
    b.addEdge("d0", "d1", 3000, "mailboxed request path");
    b.addEdge("d1", "d2", 2000, "mailboxed response path");
    DomainPartition part = b.finalize(3, 500);

    EXPECT_EQ(part.effectiveDomains(), 3u);
    EXPECT_TRUE(part.fusions.empty());
    // Window = minimum surviving cross-domain lookahead.
    EXPECT_EQ(part.windowTicks, 2000u);
    EXPECT_EQ(part.domainTags,
              (std::vector<std::string>{"d0", "d1", "d2"}));
}

TEST(DomainPartitionTest, ZeroLookaheadEdgeFusesWithReason)
{
    DomainPartitionBuilder b;
    b.addComponent("sys.a", "d0");
    b.addComponent("sys.b", "d1");
    b.addEdge("d0", "d1", 0, "synchronous call at T+0");
    DomainPartition part = b.finalize(2, 700);

    ASSERT_EQ(part.effectiveDomains(), 1u);
    EXPECT_EQ(part.domains[0].size(), 2u);
    ASSERT_EQ(part.fusions.size(), 1u);
    EXPECT_EQ(part.fusions[0].reason, "synchronous call at T+0");
    // No surviving cross-domain edge: the default window applies.
    EXPECT_EQ(part.windowTicks, 700u);
}

TEST(DomainPartitionTest, ShardCapPacksClassesDeterministically)
{
    DomainPartitionBuilder b;
    b.addComponent("sys.a", "d0");
    b.addComponent("sys.b", "d1");
    b.addComponent("sys.c", "d2");
    b.addComponent("sys.d", "d3");
    DomainPartition part = b.finalize(2, 100);

    // Four independent classes packed round-robin into two domains.
    ASSERT_EQ(part.effectiveDomains(), 2u);
    EXPECT_EQ(part.domains[0],
              (std::vector<std::string>{"sys.a", "sys.c"}));
    EXPECT_EQ(part.domains[1],
              (std::vector<std::string>{"sys.b", "sys.d"}));
    EXPECT_EQ(part.windowTicks, 100u);
}

TEST(DomainPartitionTest, UnknownEdgeGroupPanics)
{
    DomainPartitionBuilder b;
    b.addComponent("sys.a", "d0");
    b.addEdge("d0", "ghost", 0, "edge into a group with no members");
    EXPECT_THROW(b.finalize(1, 100), std::logic_error);
}

} // namespace
} // namespace strand
