# Empty dependencies file for test_env_config.
# This may be replaced when dependencies are built.
