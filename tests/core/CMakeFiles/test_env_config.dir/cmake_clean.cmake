file(REMOVE_RECURSE
  "CMakeFiles/test_env_config.dir/env_config_test.cc.o"
  "CMakeFiles/test_env_config.dir/env_config_test.cc.o.d"
  "test_env_config"
  "test_env_config.pdb"
  "test_env_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_env_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
