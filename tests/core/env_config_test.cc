/**
 * Validation tests for the centralized SW_* environment knob parser.
 * parseEnvConfig() takes a getenv-shaped lookup, so the process
 * environment never has to be mutated here — which is also why these
 * tests can assert the full validation surface even though the
 * process-wide envConfig() snapshot is parse-once.
 */

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/env_config.hh"
#include "mem/address_map.hh"

namespace strand
{
namespace
{

EnvConfig
parse(const std::map<std::string, std::string> &env)
{
    return parseEnvConfig([&env](const char *name) -> const char * {
        auto it = env.find(name);
        return it == env.end() ? nullptr : it->second.c_str();
    });
}

TEST(EnvConfig, UnsetKnobsLeaveDefaults)
{
    EnvConfig config = parse({});
    EXPECT_FALSE(config.ops.has_value());
    EXPECT_FALSE(config.threads.has_value());
    EXPECT_FALSE(config.crashPoints.has_value());
    EXPECT_FALSE(config.jobs.has_value());
    EXPECT_FALSE(config.shards.has_value());
    EXPECT_FALSE(config.windowTicks.has_value());
    EXPECT_FALSE(config.tornWords.has_value());
    EXPECT_FALSE(config.crashSeed.has_value());
    EXPECT_FALSE(config.fuzzTrials.has_value());
    EXPECT_FALSE(config.fuzzSeed.has_value());
    EXPECT_FALSE(config.pmosan.has_value());
    EXPECT_FALSE(config.crashFork.has_value());
    EXPECT_FALSE(config.mediaPoison.has_value());
    EXPECT_FALSE(config.mediaFlips.has_value());
    EXPECT_FALSE(config.mediaDrop.has_value());
    EXPECT_FALSE(config.mediaSeed.has_value());
    EXPECT_FALSE(config.logLevel.has_value());
    EXPECT_EQ(config.outDir, "bench/out");
}

TEST(EnvConfig, LogLevelParsesAndRangeChecks)
{
    EXPECT_EQ(parse({{"SW_LOG", "0"}}).logLevel, 0u);
    EXPECT_EQ(parse({{"SW_LOG", "2"}}).logLevel, 2u);
    EXPECT_THROW(parse({{"SW_LOG", "3"}}), std::invalid_argument);
    EXPECT_THROW(parse({{"SW_LOG", "loud"}}),
                 std::invalid_argument);
}

TEST(EnvConfig, MediaKnobsParseAndRangeCheck)
{
    EnvConfig config = parse({{"SW_MEDIA_POISON", "2"},
                              {"SW_MEDIA_FLIPS", "0"},
                              {"SW_MEDIA_DROP", "8"},
                              {"SW_MEDIA_SEED", "0xed1a"}});
    EXPECT_EQ(config.mediaPoison, 2u);
    EXPECT_EQ(config.mediaFlips, 0u); // 0 is valid: class disabled
    EXPECT_EQ(config.mediaDrop, 8u);  // ring depth is the ceiling
    EXPECT_EQ(config.mediaSeed, 0xed1au);
    // Counts beyond the admission-ring depth are meaningless.
    EXPECT_THROW(parse({{"SW_MEDIA_POISON", "9"}}),
                 std::invalid_argument);
    EXPECT_THROW(parse({{"SW_MEDIA_DROP", "-1"}}),
                 std::invalid_argument);
    EXPECT_THROW(parse({{"SW_MEDIA_SEED", "0xzz"}}),
                 std::invalid_argument);
}

TEST(EnvConfig, PmosanParsesAsBool)
{
    EXPECT_EQ(parse({{"SW_PMOSAN", "1"}}).pmosan, true);
    EXPECT_EQ(parse({{"SW_PMOSAN", "0"}}).pmosan, false);
    EXPECT_FALSE(parse({}).pmosan.has_value());
    // Only 0/1 are accepted; anything else dies loudly.
    EXPECT_THROW(parse({{"SW_PMOSAN", "2"}}), std::invalid_argument);
    EXPECT_THROW(parse({{"SW_PMOSAN", "yes"}}),
                 std::invalid_argument);
}

TEST(EnvConfig, CrashForkParsesAsBool)
{
    EXPECT_EQ(parse({{"SW_CRASH_FORK", "1"}}).crashFork, true);
    EXPECT_EQ(parse({{"SW_CRASH_FORK", "0"}}).crashFork, false);
    EXPECT_FALSE(parse({}).crashFork.has_value());
    // Only 0/1 are accepted; anything else dies loudly.
    EXPECT_THROW(parse({{"SW_CRASH_FORK", "2"}}),
                 std::invalid_argument);
    EXPECT_THROW(parse({{"SW_CRASH_FORK", "fork"}}),
                 std::invalid_argument);
}

TEST(EnvConfig, FuzzForkBranchParsesAsCount)
{
    EXPECT_EQ(parse({{"SW_FUZZ_FORK_BRANCH", "3"}}).fuzzForkBranch,
              3u);
    EXPECT_EQ(parse({{"SW_FUZZ_FORK_BRANCH", "0"}}).fuzzForkBranch,
              0u); // 0 is valid: branching off
    EXPECT_FALSE(parse({}).fuzzForkBranch.has_value());
    EXPECT_THROW(parse({{"SW_FUZZ_FORK_BRANCH", "-1"}}),
                 std::invalid_argument);
    EXPECT_THROW(parse({{"SW_FUZZ_FORK_BRANCH", "branchy"}}),
                 std::invalid_argument);
}

TEST(EnvConfig, ShardKnobsParseAndValidate)
{
    EnvConfig config =
        parse({{"SW_SHARDS", "4"}, {"SW_WINDOW_TICKS", "2000"}});
    EXPECT_EQ(config.shards, 4u);
    EXPECT_EQ(config.windowTicks, 2000u);
    EXPECT_FALSE(parse({}).shards.has_value());
    EXPECT_FALSE(parse({}).windowTicks.has_value());
    // Both are >= 1: zero shards is meaningless and a zero-width
    // window can never advance the clock.
    EXPECT_THROW(parse({{"SW_SHARDS", "0"}}), std::invalid_argument);
    EXPECT_THROW(parse({{"SW_WINDOW_TICKS", "0"}}),
                 std::invalid_argument);
    EXPECT_THROW(parse({{"SW_SHARDS", "-2"}}),
                 std::invalid_argument);
    EXPECT_THROW(parse({{"SW_SHARDS", "two"}}),
                 std::invalid_argument);
    EXPECT_THROW(parse({{"SW_WINDOW_TICKS", "1e6"}}),
                 std::invalid_argument);
}

TEST(EnvConfig, KnobRegistryCoversEveryKnob)
{
    // The --help table is generated from envKnobs(); a knob missing
    // from the registry would be parsed but undocumented. Keep the
    // registry in sync with the parser by name.
    std::vector<std::string> expected = {
        "SW_OPS",         "SW_THREADS",   "SW_CRASH_POINTS",
        "SW_JOBS",        "SW_SHARDS",    "SW_WINDOW_TICKS",
        "SW_TORN_WORDS",  "SW_CRASH_SEED",
        "SW_FUZZ_TRIALS", "SW_FUZZ_SEED", "SW_PMOSAN",
        "SW_CRASH_FORK",  "SW_FUZZ_FORK_BRANCH",
        "SW_MEDIA_POISON", "SW_MEDIA_FLIPS", "SW_MEDIA_DROP",
        "SW_MEDIA_SEED",  "SW_LOG",       "SW_OUT_DIR",
    };
    std::vector<std::string> actual;
    for (const EnvKnob &knob : envKnobs())
        actual.push_back(knob.name);
    EXPECT_EQ(actual, expected);

    std::string table = envKnobTable();
    for (const std::string &name : expected)
        EXPECT_NE(table.find(name), std::string::npos)
            << name << " missing from the --help knob table";
}

TEST(EnvConfig, EmptyValuesCountAsUnset)
{
    EnvConfig config = parse({{"SW_OPS", ""}, {"SW_OUT_DIR", ""}});
    EXPECT_FALSE(config.ops.has_value());
    EXPECT_EQ(config.outDir, "bench/out");
}

TEST(EnvConfig, ParsesEveryKnob)
{
    EnvConfig config = parse({{"SW_OPS", "120"},
                              {"SW_THREADS", "4"},
                              {"SW_CRASH_POINTS", "0"},
                              {"SW_JOBS", "8"},
                              {"SW_TORN_WORDS", "3"},
                              {"SW_OUT_DIR", "/tmp/out"}});
    EXPECT_EQ(config.ops, 120u);
    EXPECT_EQ(config.threads, 4u);
    EXPECT_EQ(config.crashPoints, 0u); // 0 is valid: disables injection
    EXPECT_EQ(config.jobs, 8u);
    EXPECT_EQ(config.tornWords, 3u);
    EXPECT_EQ(config.outDir, "/tmp/out");
}

TEST(EnvConfig, SeedKnobsAcceptDecimalAndHex)
{
    EnvConfig config = parse({{"SW_CRASH_SEED", "12345"},
                              {"SW_FUZZ_SEED", "0xf022"},
                              {"SW_FUZZ_TRIALS", "0"}});
    EXPECT_EQ(config.crashSeed, 12345u);
    EXPECT_EQ(config.fuzzSeed, 0xf022u);
    EXPECT_EQ(config.fuzzTrials, 0u); // 0 trials: campaign disabled

    // Seeds use the full 64-bit range.
    config = parse({{"SW_CRASH_SEED", "0xffffffffffffffff"}});
    EXPECT_EQ(config.crashSeed, ~std::uint64_t{0});
}

TEST(EnvConfig, MalformedSeedKnobsDieLoudly)
{
    EXPECT_THROW(parse({{"SW_CRASH_SEED", "abc"}}),
                 std::invalid_argument);
    EXPECT_THROW(parse({{"SW_FUZZ_SEED", "0x12zz"}}),
                 std::invalid_argument);
    EXPECT_THROW(parse({{"SW_CRASH_SEED", "-1"}}),
                 std::invalid_argument);
    EXPECT_THROW(parse({{"SW_FUZZ_TRIALS", "many"}}),
                 std::invalid_argument);
}

TEST(EnvConfig, MalformedValuesDieLoudly)
{
    // fatal() throws std::invalid_argument (see sim/logging.hh); a
    // typo'd knob must never silently fall back to a default.
    EXPECT_THROW(parse({{"SW_OPS", "abc"}}), std::invalid_argument);
    EXPECT_THROW(parse({{"SW_OPS", "12x"}}), std::invalid_argument);
    EXPECT_THROW(parse({{"SW_THREADS", "-3"}}),
                 std::invalid_argument);
    EXPECT_THROW(parse({{"SW_CRASH_POINTS", "1e3"}}),
                 std::invalid_argument);
}

TEST(EnvConfig, OutOfRangeValuesDieLoudly)
{
    // Minimums: SW_OPS/SW_THREADS/SW_JOBS >= 1.
    EXPECT_THROW(parse({{"SW_OPS", "0"}}), std::invalid_argument);
    EXPECT_THROW(parse({{"SW_THREADS", "0"}}),
                 std::invalid_argument);
    EXPECT_THROW(parse({{"SW_JOBS", "0"}}), std::invalid_argument);
    // Admitting all words of a line is not torn at all.
    EXPECT_THROW(parse({{"SW_TORN_WORDS",
                         std::to_string(wordsPerLine)}}),
                 std::invalid_argument);
}

} // namespace
} // namespace strand
