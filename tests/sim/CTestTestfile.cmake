# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/sim/test_event_queue[1]_include.cmake")
include("/root/repo/tests/sim/test_pdes[1]_include.cmake")
include("/root/repo/tests/sim/test_stats[1]_include.cmake")
include("/root/repo/tests/sim/test_random[1]_include.cmake")
include("/root/repo/tests/sim/test_logging[1]_include.cmake")
include("/root/repo/tests/sim/test_format[1]_include.cmake")
include("/root/repo/tests/sim/test_sim_object[1]_include.cmake")
include("/root/repo/tests/sim/test_snapshot[1]_include.cmake")
