/**
 * @file
 * Unit tests for the conservative time-windowed PDES driver: window
 * causality, the deterministic barrier-merge rule, bit-identity of
 * results across worker counts, lookahead-violation panics, and
 * per-domain snapshot round-trips.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/pdes.hh"
#include "sim/snapshot.hh"

namespace strand
{
namespace
{

/**
 * A deterministic multi-domain workload: every domain runs a
 * self-rescheduling tick chain and every third fire posts a message
 * to the next domain in the ring. The trace records (domain, tick,
 * payload) triples in each domain's dispatch order, with delivered
 * messages folded in — any scheduling nondeterminism shows up as a
 * trace mismatch.
 */
struct RingHarness
{
    static constexpr Tick latency = 2000;
    static constexpr Tick period = 500;

    explicit RingHarness(unsigned numDomains, unsigned firesPerChain)
        : engine(numDomains), traces(numDomains)
    {
        for (DomainId d = 0; d < numDomains; ++d)
            engine.connect(d, (d + 1) % numDomains, latency);
        for (DomainId d = 0; d < numDomains; ++d) {
            tickFns.emplace_back();
            fires.push_back(0);
        }
        for (DomainId d = 0; d < numDomains; ++d) {
            const DomainId next = (d + 1) % numDomains;
            tickFns[d] = [this, d, next, firesPerChain,
                          numDomains] {
                EventQueue &dq = engine.domain(d);
                traces[d].push_back({d, dq.curTick(), fires[d]});
                if (++fires[d] % 3 == 0 && numDomains > 1) {
                    const std::uint64_t payload = fires[d];
                    engine.post(d, next, dq.curTick() + latency,
                                [this, next, payload] {
                                    traces[next].push_back(
                                        {next,
                                         engine.domain(next)
                                             .curTick(),
                                         1000 + payload});
                                });
                }
                if (fires[d] < firesPerChain)
                    dq.scheduleIn(period, tickFns[d],
                                  EventPriority::CpuTick);
            };
            engine.domain(d).schedule(d * 10, tickFns[d],
                                      EventPriority::CpuTick);
        }
    }

    struct Entry
    {
        DomainId domain;
        Tick when;
        std::uint64_t payload;

        bool
        operator==(const Entry &other) const
        {
            return domain == other.domain && when == other.when &&
                   payload == other.payload;
        }
    };

    ShardedEngine engine;
    std::vector<std::vector<Entry>> traces;
    std::vector<EventQueue::Callback> tickFns;
    std::vector<std::uint64_t> fires;
};

TEST(Pdes, SingleDomainRunsToCompletion)
{
    ShardedEngine engine(1);
    std::vector<Tick> fired;
    engine.domain(0).schedule(100, [&] { fired.push_back(100); });
    engine.domain(0).schedule(300, [&] { fired.push_back(300); });
    engine.run();
    EXPECT_EQ(fired, (std::vector<Tick>{100, 300}));
    // No declared edges: the whole run is one unbounded window.
    EXPECT_EQ(engine.windows(), 1u);
    EXPECT_EQ(engine.messagesDelivered(), 0u);
}

TEST(Pdes, WindowWidthDefaultsToMinEdgeLatency)
{
    ShardedEngine engine(3);
    engine.connect(0, 1, 5000);
    engine.connect(1, 2, 3000);
    engine.connect(2, 0, 8000);
    EXPECT_EQ(engine.lookahead(), 3000u);
    EXPECT_EQ(engine.windowTicks(), 3000u);
    engine.setWindowTicks(1000);
    EXPECT_EQ(engine.windowTicks(), 1000u);
}

TEST(Pdes, CrossDomainMessageDeliversAfterTheBarrier)
{
    ShardedEngine engine(2);
    engine.connect(0, 1, 1000);
    Tick deliveredAt = 0;
    engine.domain(0).schedule(250, [&] {
        engine.post(0, 1, 250 + 1000, [&] {
            deliveredAt = engine.domain(1).curTick();
        });
    });
    engine.run();
    EXPECT_EQ(deliveredAt, 1250u);
    EXPECT_GE(engine.windows(), 2u);
    EXPECT_EQ(engine.messagesDelivered(), 1u);
}

TEST(Pdes, LookaheadViolationPanics)
{
    ShardedEngine engine(2);
    engine.connect(0, 1, 1000);
    engine.domain(0).schedule(500, [&] {
        // Delivery before send + min latency breaks window causality.
        engine.post(0, 1, 1200, [] {});
    });
    EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(Pdes, UndeclaredEdgeAndSelfEdgePanic)
{
    ShardedEngine engine(2);
    EXPECT_THROW(engine.post(0, 1, 5000, [] {}),
                 std::logic_error);
    EXPECT_THROW(engine.connect(0, 0, 100), std::logic_error);
    EXPECT_THROW(engine.connect(0, 1, 0), std::logic_error);
}

TEST(Pdes, WindowWiderThanLookaheadPanicsAtRun)
{
    ShardedEngine engine(2);
    engine.connect(0, 1, 1000);
    engine.setWindowTicks(2000);
    engine.domain(0).schedule(0, [] {});
    EXPECT_THROW(engine.run(), std::logic_error);
}

/** The acceptance bar: identical traces at every worker count. */
TEST(Pdes, TracesBitIdenticalAcrossWorkerCounts)
{
    constexpr unsigned numDomains = 4;
    constexpr unsigned firesPerChain = 200;

    RingHarness serial(numDomains, firesPerChain);
    serial.engine.run(1);

    for (unsigned workers : {2u, 4u}) {
        RingHarness parallel(numDomains, firesPerChain);
        parallel.engine.run(workers);
        ASSERT_EQ(parallel.traces.size(), serial.traces.size());
        for (DomainId d = 0; d < numDomains; ++d)
            EXPECT_EQ(parallel.traces[d], serial.traces[d])
                << "domain " << d << " diverged at " << workers
                << " workers";
        EXPECT_EQ(parallel.engine.windows(),
                  serial.engine.windows());
        EXPECT_EQ(parallel.engine.messagesDelivered(),
                  serial.engine.messagesDelivered());
        EXPECT_EQ(parallel.engine.eventsServiced(),
                  serial.engine.eventsServiced());
    }
}

/**
 * The merge rule must also fix the order of same-tick deliveries from
 * *different* sources: two domains post to the same destination for
 * the same tick and priority; the lower source domain id wins.
 */
TEST(Pdes, BarrierMergeOrdersSameTickDeliveriesBySource)
{
    for (unsigned workers : {1u, 3u}) {
        ShardedEngine engine(3);
        engine.connect(1, 0, 1000);
        engine.connect(2, 0, 1000);
        std::vector<int> order;
        // Post from the higher domain id first: arrival order into
        // the mailboxes must not matter.
        engine.domain(2).schedule(100, [&engine, &order] {
            engine.post(2, 0, 2000, [&order] { order.push_back(2); });
        });
        engine.domain(1).schedule(200, [&engine, &order] {
            engine.post(1, 0, 2000, [&order] { order.push_back(1); });
        });
        engine.run(workers);
        EXPECT_EQ(order, (std::vector<int>{1, 2}))
            << "at " << workers << " workers";
    }
}

TEST(Pdes, PerSourceSeqBreaksRemainingTies)
{
    ShardedEngine engine(2);
    engine.connect(0, 1, 1000);
    std::vector<int> order;
    engine.domain(0).schedule(0, [&engine, &order] {
        engine.post(0, 1, 1500, [&order] { order.push_back(1); });
        engine.post(0, 1, 1500, [&order] { order.push_back(2); });
        engine.post(0, 1, 1500, [&order] { order.push_back(3); });
    });
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Pdes, SnapshotRoundTripsDomainQueues)
{
    ShardedEngine engine(2);
    engine.connect(0, 1, 1000);
    std::vector<std::string> log;
    engine.domain(0).schedule(100, [&] { log.push_back("a@100"); });
    engine.domain(1).schedule(700, [&] { log.push_back("b@700"); });

    SimSnapshot snap;
    engine.saveState(snap);
    EXPECT_EQ(snap.size(), 3u); // two domain queues + engine counters

    engine.run();
    std::vector<std::string> first = log;
    EXPECT_EQ(first, (std::vector<std::string>{"a@100", "b@700"}));

    log.clear();
    engine.restoreState(snap);
    engine.run();
    EXPECT_EQ(log, first);
}

TEST(Pdes, SnapshotWithParkedMessagesPanics)
{
    ShardedEngine engine(2);
    engine.connect(0, 1, 1000);
    engine.post(0, 1, 1000, [] {});
    SimSnapshot snap;
    EXPECT_THROW(engine.saveState(snap), std::logic_error);
}

} // namespace
} // namespace strand
