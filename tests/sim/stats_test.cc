/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace strand::stats
{
namespace
{

TEST(Stats, ScalarAccumulates)
{
    StatGroup group("g");
    Scalar s(&group, "counter", "a counter");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, VectorBucketsAndSum)
{
    StatGroup group("g");
    Vector v(&group, "vec", "a vector", 3);
    v[0] = 1.0;
    v[1] += 2.0;
    v[2] = 4.0;
    EXPECT_DOUBLE_EQ(v.sum(), 7.0);
    EXPECT_DOUBLE_EQ(v.value(1), 2.0);
    EXPECT_THROW(v[3], std::logic_error);
}

TEST(Stats, HistogramMoments)
{
    StatGroup group("g");
    Histogram h(&group, "h", "a histogram");
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.sample(10.0);
    h.sample(20.0);
    h.sample(0.0);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 20.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
}

TEST(Stats, PrintUsesDottedNames)
{
    StatGroup root("system");
    StatGroup child("cpu0", &root);
    Scalar s(&child, "cycles", "cycle count");
    s += 42;

    std::ostringstream os;
    root.printStats(os);
    std::string text = os.str();
    EXPECT_NE(text.find("system.cpu0.cycles 42"), std::string::npos);
    EXPECT_NE(text.find("# cycle count"), std::string::npos);
}

TEST(Stats, VectorPrintIncludesSubnamesAndTotal)
{
    StatGroup root("sys");
    Vector v(&root, "stalls", "stall cycles by cause", 2);
    v.subname(0, "sqFull");
    v.subname(1, "robFull");
    v[0] = 5;
    v[1] = 7;

    std::ostringstream os;
    root.printStats(os);
    std::string text = os.str();
    EXPECT_NE(text.find("sys.stalls::sqFull 5"), std::string::npos);
    EXPECT_NE(text.find("sys.stalls::robFull 7"), std::string::npos);
    EXPECT_NE(text.find("sys.stalls::total 12"), std::string::npos);
}

TEST(Stats, ResetRecurses)
{
    StatGroup root("sys");
    StatGroup child("cpu", &root);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetStats();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, VisitSeesEveryStatWithFullName)
{
    StatGroup root("sys");
    StatGroup child("cpu", &root);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1;
    b += 2;

    std::vector<std::string> names;
    root.visitStats([&](const std::string &name, const StatBase &) {
        names.push_back(name);
    });
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "sys.a");
    EXPECT_EQ(names[1], "sys.cpu.b");
}

TEST(Stats, ChildDestructionUnlinksFromParent)
{
    StatGroup root("sys");
    {
        StatGroup child("tmp", &root);
        Scalar s(&child, "x", "");
        s += 1;
    }
    std::ostringstream os;
    root.printStats(os);
    EXPECT_EQ(os.str().find("tmp"), std::string::npos);
}

} // namespace
} // namespace strand::stats
