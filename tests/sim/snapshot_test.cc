/**
 * @file
 * SimSnapshot container semantics and Snapshotable diagnostics.
 *
 * The container must fail loudly on every misuse (duplicate keys,
 * missing keys, type confusion), report its contents for the fork-site
 * log lines (keys, approximate bytes), and the Snapshotable default
 * implementations must name the offending component — a half-captured
 * machine is worse than no capture at all.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/snapshot.hh"

namespace strand
{
namespace
{

TEST(SimSnapshot, PutGetRoundTripsByExactType)
{
    SimSnapshot snap;
    snap.put("system.a", std::uint64_t{42});
    snap.put("system.b", std::vector<int>{1, 2, 3});
    EXPECT_EQ(snap.get<std::uint64_t>("system.a"), 42u);
    EXPECT_EQ(snap.get<std::vector<int>>("system.b"),
              (std::vector<int>{1, 2, 3}));
}

TEST(SimSnapshot, DuplicateKeyPanics)
{
    SimSnapshot snap;
    snap.put("system.x", 1);
    EXPECT_THROW(snap.put("system.x", 2), std::logic_error);
}

TEST(SimSnapshot, MissingKeyPanics)
{
    SimSnapshot snap;
    EXPECT_THROW(snap.get<int>("system.absent"), std::logic_error);
}

TEST(SimSnapshot, WrongTypePanics)
{
    SimSnapshot snap;
    snap.put("system.x", 1);
    EXPECT_THROW(snap.get<double>("system.x"), std::logic_error);
}

TEST(SimSnapshot, KeysAreSortedAndComplete)
{
    SimSnapshot snap;
    snap.put("system.cpu1", 1);
    snap.put("system.cpu0", 0);
    snap.put("system.caches", 2);
    EXPECT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap.keys(),
              (std::vector<std::string>{"system.caches",
                                        "system.cpu0",
                                        "system.cpu1"}));
    EXPECT_TRUE(snap.has("system.cpu0"));
    EXPECT_FALSE(snap.has("system.cpu7"));
}

TEST(SimSnapshot, ApproxBytesCountsContainerPayload)
{
    SimSnapshot snap;
    EXPECT_EQ(snap.approxBytes(), 0u);
    snap.put("k", std::uint32_t{7});
    const std::size_t scalarOnly = snap.approxBytes();
    EXPECT_GE(scalarOnly, sizeof(std::uint32_t) + 1);
    // A sized container adds at least its element payload.
    snap.put("v", std::vector<std::uint64_t>(100, 9));
    EXPECT_GE(snap.approxBytes(),
              scalarOnly + 100 * sizeof(std::uint64_t));
}

TEST(Snapshotable, DefaultPanicsNameTheComponent)
{
    struct Unaudited final : Snapshotable
    {
        std::string snapshotName() const override
        {
            return "system.cpu3.widget";
        }
    };
    Unaudited obj;
    SimSnapshot snap;
    // The default save/restore must refuse AND say who refused.
    try {
        obj.saveState(snap);
        FAIL() << "saveState default must panic";
    } catch (const std::logic_error &err) {
        EXPECT_NE(std::string(err.what()).find("system.cpu3.widget"),
                  std::string::npos)
            << err.what();
    }
    try {
        obj.restoreState(snap);
        FAIL() << "restoreState default must panic";
    } catch (const std::logic_error &err) {
        EXPECT_NE(std::string(err.what()).find("system.cpu3.widget"),
                  std::string::npos)
            << err.what();
    }
}

} // namespace
} // namespace strand
