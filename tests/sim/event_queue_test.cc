/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, priorities,
 * cancellation, and time-limited execution.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace strand
{
namespace
{

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.serviceOne());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] { order.push_back(2); }, EventPriority::CpuTick);
    eq.schedule(50, [&] { order.push_back(0); },
                EventPriority::MemoryResponse);
    eq.schedule(50, [&] { order.push_back(3); }, EventPriority::CpuTick);
    eq.schedule(50, [&] { order.push_back(1); },
                EventPriority::MemoryResponse);
    eq.schedule(50, [&] { order.push_back(4); }, EventPriority::Stat);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelativeToNow)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(25, [&] { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 125u);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool fired = false;
    auto handle = eq.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(handle.scheduled());
    eq.deschedule(handle);
    EXPECT_FALSE(handle.scheduled());
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleIsIdempotent)
{
    EventQueue eq;
    int count = 0;
    auto keep = eq.schedule(10, [&] { ++count; });
    auto cancel = eq.schedule(20, [&] { ++count; });
    eq.deschedule(cancel);
    eq.deschedule(cancel);
    eq.run();
    EXPECT_EQ(count, 1);
    EXPECT_FALSE(keep.scheduled());
}

TEST(EventQueue, EventsScheduledFromCallbacksRun)
{
    EventQueue eq;
    std::vector<Tick> fires;
    // A self-rescheduling event, the pattern used by clocked
    // components.
    std::function<void()> tick = [&] {
        fires.push_back(eq.curTick());
        if (fires.size() < 5)
            eq.scheduleIn(500, tick);
    };
    eq.schedule(0, tick);
    eq.run();
    EXPECT_EQ(fires, (std::vector<Tick>{0, 500, 1000, 1500, 2000}));
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.schedule(300, [&] { order.push_back(3); });
    eq.runUntil(200);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.curTick(), 200u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(order.size(), 3u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(12345);
    EXPECT_EQ(eq.curTick(), 12345u);
}

TEST(EventQueue, PendingAndServicedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(10 * (i + 1), [] {});
    EXPECT_EQ(eq.pending(), 10u);
    eq.serviceOne();
    eq.serviceOne();
    EXPECT_EQ(eq.pending(), 8u);
    EXPECT_EQ(eq.serviced(), 2u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.serviced(), 10u);
}

TEST(EventQueue, RecurringMatchesOneShotOrdering)
{
    // The same clocked pattern expressed twice — as a Recurring
    // rescheduling itself in place and as chained one-shots — must
    // interleave identically with competing same-tick events.
    auto runPattern = [](bool recurring) {
        EventQueue eq;
        std::vector<int> order;
        for (Tick t = 0; t < 5; ++t) {
            eq.schedule(t * 100, [&order] { order.push_back(-1); },
                        EventPriority::MemoryResponse);
            eq.schedule(t * 100, [&order] { order.push_back(+1); },
                        EventPriority::Stat);
        }
        EventQueue::Recurring ev;
        int fires = 0;
        std::function<void()> chained;
        if (recurring) {
            ev.init(eq, [&] {
                order.push_back(0);
                if (++fires < 5)
                    ev.reschedule(100);
            }, EventPriority::CpuTick);
            ev.schedule(0);
        } else {
            chained = [&] {
                order.push_back(0);
                if (++fires < 5)
                    eq.scheduleIn(100, chained,
                                  EventPriority::CpuTick);
            };
            eq.schedule(0, chained, EventPriority::CpuTick);
        }
        eq.run();
        return order;
    };
    EXPECT_EQ(runPattern(true), runPattern(false));
}

TEST(EventQueue, RecurringDescheduleAndRearm)
{
    EventQueue eq;
    int fires = 0;
    EventQueue::Recurring ev;
    ev.init(eq, [&] { ++fires; });
    ev.schedule(100);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 100u);
    ev.deschedule();
    EXPECT_FALSE(ev.scheduled());
    eq.run();
    EXPECT_EQ(fires, 0);
    // The same record re-arms after cancellation.
    ev.schedule(200);
    eq.run();
    EXPECT_EQ(fires, 1);
    EXPECT_FALSE(ev.scheduled());
}

TEST(EventQueue, SchedulingRecurringWhilePendingPanics)
{
    EventQueue eq;
    EventQueue::Recurring ev;
    ev.init(eq, [] {});
    ev.schedule(10);
    EXPECT_THROW(ev.schedule(20), std::logic_error);
    ev.deschedule();
}

TEST(EventQueue, PoolReusesRecordsAcrossDrainAndRefill)
{
    EventQueue eq;
    for (int i = 0; i < 64; ++i)
        eq.schedule(i + 1, [] {});
    eq.run();
    const std::size_t arena = eq.arenaRecords();
    EXPECT_EQ(eq.freeRecords(), arena);
    // A second wave of the same size must come entirely from the
    // free list: the arena does not grow.
    for (int i = 0; i < 64; ++i)
        eq.scheduleIn(i + 1, [] {});
    eq.run();
    EXPECT_EQ(eq.arenaRecords(), arena);
    EXPECT_EQ(eq.freeRecords(), arena);
}

TEST(EventQueue, RecurringSteadyStateAllocatesNoRecords)
{
    // The zero-allocation acceptance bar for the tick path: after
    // warm-up, N recurring fires grow the record arena by exactly
    // zero records.
    EventQueue eq;
    EventQueue::Recurring ev;
    int fires = 0;
    ev.init(eq, [&] {
        if (++fires < 10000)
            ev.reschedule(500);
    }, EventPriority::CpuTick);
    ev.schedule(0);
    // Warm-up: let the pool reach steady state.
    for (int i = 0; i < 16; ++i)
        eq.serviceOne();
    const std::size_t arena = eq.arenaRecords();
    eq.run();
    EXPECT_EQ(fires, 10000);
    EXPECT_EQ(eq.arenaRecords(), arena);
}

TEST(EventQueue, CancelledCarcassesAreCompactedAndBounded)
{
    EventQueue eq;
    std::vector<EventQueue::Handle> handles;
    // Far-future events cancelled in bulk: the heap must not retain
    // an unbounded carcass population.
    for (int round = 0; round < 8; ++round) {
        handles.clear();
        for (int i = 0; i < 256; ++i)
            handles.push_back(eq.schedule(1000000 + i, [] {}));
        for (auto &handle : handles)
            eq.deschedule(handle);
    }
    EXPECT_GT(eq.compactions(), 0u);
    // Lazy compaction bound: carcasses may linger only while they
    // are outnumbered by live events (plus the 64-entry floor).
    EXPECT_LE(eq.cancelledPending(), 64u);
    EXPECT_LE(eq.heapEntries(), 64u);
    bool fired = false;
    eq.schedule(2000000, [&] { fired = true; });
    eq.run();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, SnapshotRestoreReplaysIdenticalDrain)
{
    // Capture mid-run, drain to completion, rewind, drain again: the
    // second drain must reproduce the first event-for-event,
    // including same-tick priority/insertion ordering and events
    // scheduled from inside callbacks.
    EventQueue eq;
    std::vector<std::pair<Tick, int>> trace;
    auto emit = [&](int id) {
        trace.push_back({eq.curTick(), id});
    };
    eq.schedule(100, [&] {
        emit(1);
        eq.scheduleIn(50, [&] { emit(4); });
    });
    eq.schedule(200, [&] { emit(2); }, EventPriority::Stat);
    eq.schedule(200, [&] { emit(3); },
                EventPriority::MemoryResponse);
    eq.schedule(300, [&] { emit(5); });

    eq.serviceOne(); // fire the tick-100 event only
    EventQueue::Snapshot snap = eq.snapshot();
    const std::uint64_t servicedAtSnap = eq.serviced();

    eq.run();
    std::vector<std::pair<Tick, int>> first(
        trace.begin() + 1, trace.end());

    eq.restore(snap);
    EXPECT_EQ(eq.curTick(), 100u);
    EXPECT_EQ(eq.serviced(), servicedAtSnap);
    EXPECT_EQ(eq.pending(), 4u);
    trace.clear();
    eq.run();
    EXPECT_EQ(trace, first);
    EXPECT_EQ(trace, (std::vector<std::pair<Tick, int>>{
                         {150, 4}, {200, 3}, {200, 2}, {300, 5}}));
}

TEST(EventQueue, SnapshotRestoreRewindsRecurringEvents)
{
    // A Recurring's record is owned by the component and survives
    // restore in place: rewinding re-arms it at the captured tick
    // and the re-drain fires it the captured number of times.
    EventQueue eq;
    EventQueue::Recurring ev;
    int fires = 0;
    // The stop condition reads the simulated clock, which restore
    // rewinds (a host-side counter would not be).
    ev.init(eq, [&] {
        ++fires;
        if (eq.curTick() < 700)
            ev.reschedule(100);
    }, EventPriority::CpuTick);
    ev.schedule(0);
    for (int i = 0; i < 3; ++i)
        eq.serviceOne();
    EventQueue::Snapshot snap = eq.snapshot();
    ASSERT_EQ(fires, 3);

    eq.run();
    EXPECT_EQ(fires, 8);

    eq.restore(snap);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 300u);
    eq.run();
    EXPECT_EQ(fires, 13); // five more fires, exactly as before
}

TEST(EventQueue, RestoreRecyclesPostSnapshotRecords)
{
    // Events scheduled after the capture are unknown to the
    // snapshot: restore must cancel them and recycle their records
    // into the pool without growing the arena.
    EventQueue eq;
    int late = 0;
    eq.schedule(10, [] {});
    EventQueue::Snapshot snap = eq.snapshot();
    for (int i = 0; i < 32; ++i)
        eq.schedule(20 + i, [&] { ++late; });
    const std::size_t arena = eq.arenaRecords();

    eq.restore(snap);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.arenaRecords(), arena);
    EXPECT_EQ(eq.freeRecords(), arena - 1);
    eq.run();
    EXPECT_EQ(late, 0);

    // The recycled records are reusable for a fresh wave.
    for (int i = 0; i < 32; ++i)
        eq.scheduleIn(1 + i, [&] { ++late; });
    EXPECT_EQ(eq.arenaRecords(), arena);
    eq.run();
    EXPECT_EQ(late, 32);
}

TEST(EventQueue, RestoreAfterPostSnapshotRecurringBindPanics)
{
    // A Recurring bound after the capture owns a record the snapshot
    // cannot rewind — restoring into a mutated component graph is a
    // hard error, not silent corruption.
    EventQueue eq;
    eq.schedule(10, [] {});
    EventQueue::Snapshot snap = eq.snapshot();
    EventQueue::Recurring ev;
    ev.init(eq, [] {});
    EXPECT_THROW(eq.restore(snap), std::logic_error);
}

TEST(EventQueue, ManyEventsStaySorted)
{
    EventQueue eq;
    Tick last = 0;
    bool monotonic = true;
    // Insert ticks in a scrambled deterministic pattern.
    for (std::uint64_t i = 0; i < 1000; ++i) {
        Tick when = (i * 7919) % 10007;
        eq.schedule(when, [&, when] {
            if (eq.curTick() < last)
                monotonic = false;
            last = eq.curTick();
        });
    }
    eq.run();
    EXPECT_TRUE(monotonic);
}

} // namespace
} // namespace strand
