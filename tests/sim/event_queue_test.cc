/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, priorities,
 * cancellation, and time-limited execution.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace strand
{
namespace
{

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.serviceOne());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] { order.push_back(2); }, EventPriority::CpuTick);
    eq.schedule(50, [&] { order.push_back(0); },
                EventPriority::MemoryResponse);
    eq.schedule(50, [&] { order.push_back(3); }, EventPriority::CpuTick);
    eq.schedule(50, [&] { order.push_back(1); },
                EventPriority::MemoryResponse);
    eq.schedule(50, [&] { order.push_back(4); }, EventPriority::Stat);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelativeToNow)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(25, [&] { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 125u);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool fired = false;
    auto handle = eq.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(handle.scheduled());
    eq.deschedule(handle);
    EXPECT_FALSE(handle.scheduled());
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleIsIdempotent)
{
    EventQueue eq;
    int count = 0;
    auto keep = eq.schedule(10, [&] { ++count; });
    auto cancel = eq.schedule(20, [&] { ++count; });
    eq.deschedule(cancel);
    eq.deschedule(cancel);
    eq.run();
    EXPECT_EQ(count, 1);
    EXPECT_FALSE(keep.scheduled());
}

TEST(EventQueue, EventsScheduledFromCallbacksRun)
{
    EventQueue eq;
    std::vector<Tick> fires;
    // A self-rescheduling event, the pattern used by clocked
    // components.
    std::function<void()> tick = [&] {
        fires.push_back(eq.curTick());
        if (fires.size() < 5)
            eq.scheduleIn(500, tick);
    };
    eq.schedule(0, tick);
    eq.run();
    EXPECT_EQ(fires, (std::vector<Tick>{0, 500, 1000, 1500, 2000}));
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.schedule(300, [&] { order.push_back(3); });
    eq.runUntil(200);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.curTick(), 200u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(order.size(), 3u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(12345);
    EXPECT_EQ(eq.curTick(), 12345u);
}

TEST(EventQueue, PendingAndServicedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(10 * (i + 1), [] {});
    EXPECT_EQ(eq.pending(), 10u);
    eq.serviceOne();
    eq.serviceOne();
    EXPECT_EQ(eq.pending(), 8u);
    EXPECT_EQ(eq.serviced(), 2u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.serviced(), 10u);
}

TEST(EventQueue, ManyEventsStaySorted)
{
    EventQueue eq;
    Tick last = 0;
    bool monotonic = true;
    // Insert ticks in a scrambled deterministic pattern.
    for (std::uint64_t i = 0; i < 1000; ++i) {
        Tick when = (i * 7919) % 10007;
        eq.schedule(when, [&, when] {
            if (eq.curTick() < last)
                monotonic = false;
            last = eq.curTick();
        });
    }
    eq.run();
    EXPECT_TRUE(monotonic);
}

} // namespace
} // namespace strand
