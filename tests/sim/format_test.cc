/**
 * @file
 * Unit tests for the minimal formatting shim.
 */

#include <gtest/gtest.h>

#include "sim/format.hh"

namespace strand
{
namespace
{

TEST(Format, SubstitutesInOrder)
{
    EXPECT_EQ(sformat("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
}

TEST(Format, HandlesStringsAndChars)
{
    EXPECT_EQ(sformat("{} {}", "abc", std::string("def")), "abc def");
}

TEST(Format, NoPlaceholders)
{
    EXPECT_EQ(sformat("plain"), "plain");
    EXPECT_EQ(sformat("plain", 1, 2), "plain");
}

TEST(Format, ExtraPlaceholdersRenderVerbatim)
{
    EXPECT_EQ(sformat("{} {}", 1), "1 {}");
}

TEST(Format, EscapedBraces)
{
    EXPECT_EQ(sformat("{{}} {}", 7), "{} 7");
}

TEST(Format, FloatPrecisionSpec)
{
    EXPECT_EQ(sformat("{:.3}", 3.14159), "3.14");
    EXPECT_EQ(sformat("{:.6}", 2.5), "2.5");
}

TEST(Format, UnsignedAndNegative)
{
    EXPECT_EQ(sformat("{} {}", -5, 18446744073709551615ULL),
              "-5 18446744073709551615");
}

TEST(Format, UnterminatedPlaceholderIsVerbatim)
{
    EXPECT_EQ(sformat("oops {", 1), "oops {");
}

} // namespace
} // namespace strand
