# Empty compiler generated dependencies file for test_pdes.
# This may be replaced when dependencies are built.
