file(REMOVE_RECURSE
  "CMakeFiles/test_pdes.dir/pdes_test.cc.o"
  "CMakeFiles/test_pdes.dir/pdes_test.cc.o.d"
  "test_pdes"
  "test_pdes.pdb"
  "test_pdes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
