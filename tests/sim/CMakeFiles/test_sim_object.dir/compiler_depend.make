# Empty compiler generated dependencies file for test_sim_object.
# This may be replaced when dependencies are built.
