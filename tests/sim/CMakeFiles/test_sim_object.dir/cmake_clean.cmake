file(REMOVE_RECURSE
  "CMakeFiles/test_sim_object.dir/sim_object_test.cc.o"
  "CMakeFiles/test_sim_object.dir/sim_object_test.cc.o.d"
  "test_sim_object"
  "test_sim_object.pdb"
  "test_sim_object[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
