file(REMOVE_RECURSE
  "CMakeFiles/test_snapshot.dir/snapshot_test.cc.o"
  "CMakeFiles/test_snapshot.dir/snapshot_test.cc.o.d"
  "test_snapshot"
  "test_snapshot.pdb"
  "test_snapshot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
