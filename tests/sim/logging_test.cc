/**
 * @file
 * Unit tests for the error-reporting helpers.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace strand
{
namespace
{

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("boom {}", 3), std::logic_error);
}

TEST(Logging, FatalThrowsInvalidArgument)
{
    EXPECT_THROW(fatal("bad config: {}", "x"), std::invalid_argument);
}

TEST(Logging, PanicIfRespectsCondition)
{
    EXPECT_NO_THROW(panicIf(false, "never"));
    EXPECT_THROW(panicIf(true, "always"), std::logic_error);
}

TEST(Logging, FatalIfRespectsCondition)
{
    EXPECT_NO_THROW(fatalIf(false, "never"));
    EXPECT_THROW(fatalIf(true, "always"), std::invalid_argument);
}

TEST(Logging, MessageContainsFormattedText)
{
    try {
        panic("value was {} at {}", 42, "head");
        FAIL() << "panic did not throw";
    } catch (const std::logic_error &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("value was 42 at head"), std::string::npos);
    }
}

TEST(Logging, LevelRoundTrips)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    // warn/inform must not throw at any level.
    warn("suppressed {}", 1);
    inform("suppressed {}", 2);
    setLogLevel(LogLevel::Verbose);
    warn("printed {}", 3);
    inform("printed {}", 4);
    setLogLevel(old);
}

} // namespace
} // namespace strand
