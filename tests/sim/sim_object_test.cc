/**
 * @file
 * Unit tests for SimObject / ClockedObject cycle arithmetic.
 */

#include <gtest/gtest.h>

#include "sim/sim_object.hh"

namespace strand
{
namespace
{

TEST(Cycles, ArithmeticAndComparison)
{
    Cycles a(10), b(3);
    EXPECT_EQ((a + b).value(), 13u);
    EXPECT_EQ((a - b).value(), 7u);
    a += Cycles(5);
    EXPECT_EQ(a.value(), 15u);
    EXPECT_LT(b, a);
    EXPECT_EQ(Cycles(3), b);
}

TEST(ClockedObject, TickCycleConversion)
{
    EventQueue eq;
    ClockedObject obj("obj", eq, 500); // 2 GHz
    EXPECT_EQ(obj.cyclesToTicks(Cycles(4)), 2000u);
    EXPECT_EQ(obj.ticksToCycles(2000).value(), 4u);
    // Rounds up partial cycles.
    EXPECT_EQ(obj.ticksToCycles(2001).value(), 5u);
}

TEST(ClockedObject, ClockEdgeAligns)
{
    EventQueue eq;
    ClockedObject obj("obj", eq, 500);
    EXPECT_EQ(obj.clockEdge(), 0u);
    eq.schedule(750, [] {});
    eq.run(); // now = 750, off-edge
    EXPECT_EQ(obj.clockEdge(), 1000u);
    EXPECT_EQ(obj.clockEdge(Cycles(2)), 2000u);
    EXPECT_EQ(obj.curCycle().value(), 1u);
}

TEST(ClockedObject, ZeroPeriodIsFatal)
{
    EventQueue eq;
    EXPECT_THROW(ClockedObject("bad", eq, 0), std::logic_error);
}

TEST(SimObject, NamesAndQueueAccess)
{
    EventQueue eq;
    SimObject parent("system", eq);
    SimObject child("cpu", eq, &parent);
    EXPECT_EQ(child.groupName(), "cpu");
    EXPECT_EQ(&child.eventQueue(), &eq);
    EXPECT_EQ(child.curTick(), 0u);
    std::ostringstream os;
    stats::Scalar s(&child, "x", "test");
    s += 1;
    parent.printStats(os);
    EXPECT_NE(os.str().find("system.cpu.x 1"), std::string::npos);
}

TEST(Types, NsToTicks)
{
    EXPECT_EQ(nsToTicks(1), 1000u);
    EXPECT_EQ(nsToTicks(346), 346000u);
}

} // namespace
} // namespace strand
