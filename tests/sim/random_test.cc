/**
 * @file
 * Unit and statistical tests for the deterministic RNG and the
 * zipfian workload-key generator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hh"

namespace strand
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.nextRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, SaveRestoreReplaysIdenticalStream)
{
    // Snapshot support for forked crash exploration: capturing the
    // four-word state mid-stream and restoring it replays the exact
    // remaining sequence, across all draw kinds.
    Rng rng(0xfeed);
    for (int i = 0; i < 37; ++i)
        rng.next();
    auto saved = rng.saveState();

    std::vector<std::uint64_t> first;
    for (int i = 0; i < 50; ++i)
        first.push_back(rng.next());
    double firstDouble = rng.nextDouble();
    std::uint64_t firstBounded = rng.nextBounded(1000);

    rng.restoreState(saved);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.next(), first[i]);
    EXPECT_EQ(rng.nextDouble(), firstDouble);
    EXPECT_EQ(rng.nextBounded(1000), firstBounded);

    // Restoring into a different Rng object works the same way.
    Rng other(1);
    other.restoreState(saved);
    EXPECT_EQ(other.next(), first[0]);
}

TEST(Rng, ZeroBoundPanics)
{
    Rng rng(7);
    EXPECT_THROW(rng.nextBounded(0), std::logic_error);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng rng(11);
    constexpr int buckets = 8;
    constexpr int draws = 80000;
    std::vector<int> counts(buckets, 0);
    for (int i = 0; i < draws; ++i)
        ++counts[rng.nextBounded(buckets)];
    for (int c : counts) {
        // Expected 10000 per bucket; allow 5% deviation.
        EXPECT_GT(c, 9500);
        EXPECT_LT(c, 10500);
    }
}

TEST(Zipfian, StaysInDomain)
{
    Rng rng(3);
    ZipfianGenerator zipf(100, 0.99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.next(rng), 100u);
}

TEST(Zipfian, SkewFavoursLowIndices)
{
    Rng rng(5);
    ZipfianGenerator zipf(1000, 0.99);
    int low = 0;
    constexpr int draws = 20000;
    for (int i = 0; i < draws; ++i)
        if (zipf.next(rng) < 10)
            ++low;
    // With theta=0.99 over 1000 items the 10 hottest keys should take
    // a large share; uniform would give ~1%.
    EXPECT_GT(low, draws / 4);
}

TEST(Zipfian, ThetaZeroIsNearUniform)
{
    Rng rng(13);
    ZipfianGenerator zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    constexpr int draws = 50000;
    for (int i = 0; i < draws; ++i)
        ++counts[zipf.next(rng)];
    for (int c : counts) {
        EXPECT_GT(c, draws / 10 - draws / 50);
        EXPECT_LT(c, draws / 10 + draws / 50);
    }
}

TEST(Zipfian, InvalidParametersAreFatal)
{
    EXPECT_THROW(ZipfianGenerator(0, 0.5), std::logic_error);
    EXPECT_THROW(ZipfianGenerator(10, 1.0), std::logic_error);
}

} // namespace
} // namespace strand
