/**
 * @file
 * PMO-san unit tests over synthetic observer-event streams (Eq.1 and
 * Eq.2 detection, admission coverage, the violation cap) plus
 * integration runs on the full timing stack: the four recoverable
 * hardware designs must be clean, and the NON-ATOMIC design — which
 * strips the intended ordering out of the lowering — must be flagged
 * with a causal trace (the sanitizer's built-in self-test).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "cpu/op.hh"
#include "mem/address_map.hh"
#include "sanitizer/pmo_sanitizer.hh"

namespace strand
{
namespace
{

constexpr Addr lineA = pmBase + 0x000;
constexpr Addr lineB = pmBase + 0x040;

PrimitiveEvent
clwbDispatch(CoreId core, SeqNum seq, Addr line, Tick when,
             std::uint8_t intents = 0)
{
    PrimitiveEvent ev;
    ev.core = core;
    ev.kind = PrimitiveKind::Clwb;
    ev.seq = seq;
    ev.lineAddr = line;
    ev.when = when;
    ev.intents = intents;
    return ev;
}

PrimitiveEvent
intentOp(CoreId core, SeqNum seq, std::uint8_t intents, Tick when,
         PrimitiveKind kind = PrimitiveKind::Barrier)
{
    PrimitiveEvent ev;
    ev.core = core;
    ev.kind = kind;
    ev.seq = seq;
    ev.when = when;
    ev.intents = intents;
    return ev;
}

PrimitiveEvent
clwbRetire(CoreId core, SeqNum seq, Addr line, Tick when)
{
    PrimitiveEvent ev;
    ev.core = core;
    ev.kind = PrimitiveKind::Clwb;
    ev.seq = seq;
    ev.lineAddr = line;
    ev.when = when;
    return ev;
}

TEST(PmoSanitizer, Eq1BarrierOrderViolationDetected)
{
    PmoSanitizer san;
    san.onPrimitiveDispatched(clwbDispatch(0, 1, lineA, 10));
    san.onPrimitiveDispatched(
        intentOp(0, 2, kIntentBarrier, 11));
    san.onPrimitiveDispatched(clwbDispatch(0, 3, lineB, 12));

    // B acknowledges while A is neither acked nor admitted.
    san.onPrimitiveRetired(clwbRetire(0, 3, lineB, 20));
    EXPECT_FALSE(san.ok());
    ASSERT_EQ(san.violations().size(), 1u);
    EXPECT_EQ(san.violations()[0].equation, 1u);
    EXPECT_EQ(san.violations()[0].laterLine, lineB);
    EXPECT_EQ(san.violations()[0].earlierLine, lineA);

    // The causal trace names both persists and the ordering edge.
    EXPECT_NE(san.report().find("later:"), std::string::npos);
    EXPECT_NE(san.report().find("earlier:"), std::string::npos);
    EXPECT_NE(san.report().find("edge:"), std::string::npos);
}

TEST(PmoSanitizer, Eq1SatisfiedByAckOrder)
{
    PmoSanitizer san;
    san.onPrimitiveDispatched(clwbDispatch(0, 1, lineA, 10));
    san.onPrimitiveDispatched(
        intentOp(0, 2, kIntentBarrier, 11));
    san.onPrimitiveDispatched(clwbDispatch(0, 3, lineB, 12));

    san.onPrimitiveRetired(clwbRetire(0, 1, lineA, 15));
    san.onPrimitiveRetired(clwbRetire(0, 3, lineB, 20));
    EXPECT_TRUE(san.ok());
    EXPECT_EQ(san.persistsChecked(), 2u);
}

TEST(PmoSanitizer, Eq1SatisfiedByAdmissionCoverage)
{
    // The earlier CLWB never acks, but its line is admitted to the
    // ADR domain after dispatch — a whole-line admission makes the
    // earlier persist durable, so the later ack is legal.
    PmoSanitizer san;
    san.onPrimitiveDispatched(clwbDispatch(0, 1, lineA, 10));
    san.onPrimitiveDispatched(
        intentOp(0, 2, kIntentBarrier, 11));
    san.onPrimitiveDispatched(clwbDispatch(0, 3, lineB, 12));

    san.onPersistAdmitted({lineA, 18, 0, WriteOrigin::WriteBack});
    san.onPrimitiveRetired(clwbRetire(0, 3, lineB, 20));
    EXPECT_TRUE(san.ok());
}

TEST(PmoSanitizer, StaleAdmissionDoesNotCover)
{
    // An admission of the line BEFORE the persist dispatched cannot
    // carry that persist's data.
    PmoSanitizer san;
    san.onPersistAdmitted({lineA, 5, 0, WriteOrigin::WriteBack});
    san.onPrimitiveDispatched(clwbDispatch(0, 1, lineA, 10));
    san.onPrimitiveDispatched(
        intentOp(0, 2, kIntentBarrier, 11));
    san.onPrimitiveDispatched(clwbDispatch(0, 3, lineB, 12));

    san.onPrimitiveRetired(clwbRetire(0, 3, lineB, 20));
    EXPECT_FALSE(san.ok());
}

TEST(PmoSanitizer, NewStrandClearsBarrierOrder)
{
    // A -- NS -- PB -- B: the barrier is in a fresh strand, so B is
    // unordered with A and may ack first.
    PmoSanitizer san;
    san.onPrimitiveDispatched(clwbDispatch(0, 1, lineA, 10));
    san.onPrimitiveDispatched(intentOp(0, 2, kIntentNewStrand, 11,
                                       PrimitiveKind::NewStrand));
    san.onPrimitiveDispatched(
        intentOp(0, 3, kIntentBarrier, 12));
    san.onPrimitiveDispatched(clwbDispatch(0, 4, lineB, 13));

    san.onPrimitiveRetired(clwbRetire(0, 4, lineB, 20));
    san.onPrimitiveRetired(clwbRetire(0, 1, lineA, 25));
    EXPECT_TRUE(san.ok());
}

TEST(PmoSanitizer, Eq2JoinOrderViolationDetected)
{
    // A on strand 0; JoinStrand; B: the join orders every earlier
    // persist of the thread before B, across strands.
    PmoSanitizer san;
    san.onPrimitiveDispatched(clwbDispatch(0, 1, lineA, 10));
    san.onPrimitiveDispatched(intentOp(0, 2, kIntentNewStrand, 11,
                                       PrimitiveKind::NewStrand));
    san.onPrimitiveDispatched(intentOp(0, 3, kIntentJoin, 12,
                                       PrimitiveKind::JoinStrand));
    san.onPrimitiveDispatched(clwbDispatch(0, 4, lineB, 13));

    san.onPrimitiveRetired(clwbRetire(0, 4, lineB, 20));
    EXPECT_FALSE(san.ok());
    ASSERT_EQ(san.violations().size(), 1u);
    EXPECT_EQ(san.violations()[0].equation, 2u);
}

TEST(PmoSanitizer, JoinSubsumesBarrier)
{
    // A Join intent alone (no explicit barrier) still orders the
    // pre-join persist before the post-join one.
    PmoSanitizer san;
    san.onPrimitiveDispatched(clwbDispatch(0, 1, lineA, 10));
    san.onPrimitiveDispatched(intentOp(0, 2, kIntentJoin, 11,
                                       PrimitiveKind::JoinStrand));
    san.onPrimitiveDispatched(clwbDispatch(0, 3, lineB, 12));

    san.onPrimitiveRetired(clwbRetire(0, 3, lineB, 20));
    EXPECT_FALSE(san.ok());
    EXPECT_EQ(san.violations()[0].equation, 2u);
}

TEST(PmoSanitizer, CoresAreIndependent)
{
    // Ordering intents on core 0 impose nothing on core 1.
    PmoSanitizer san;
    san.onPrimitiveDispatched(clwbDispatch(0, 1, lineA, 10));
    san.onPrimitiveDispatched(
        intentOp(0, 2, kIntentBarrier, 11));
    san.onPrimitiveDispatched(clwbDispatch(1, 1, lineB, 12));

    san.onPrimitiveRetired(clwbRetire(1, 1, lineB, 20));
    san.onPrimitiveRetired(clwbRetire(0, 1, lineA, 25));
    EXPECT_TRUE(san.ok());
}

TEST(PmoSanitizer, RetirementOfUntrackedSeqIsIgnored)
{
    // Events for persists dispatched before the sanitizer attached
    // must not crash or count as checks.
    PmoSanitizer san;
    san.onPrimitiveRetired(clwbRetire(0, 99, lineA, 20));
    EXPECT_TRUE(san.ok());
    EXPECT_EQ(san.persistsChecked(), 0u);
}

TEST(PmoSanitizer, ViolationTracesAreCappedButCountIsNot)
{
    PmoSanitizerConfig cfg;
    cfg.maxViolations = 4;
    PmoSanitizer san(cfg);
    // One independent Eq.1 violation per core.
    for (CoreId core = 0; core < 10; ++core) {
        san.onPrimitiveDispatched(clwbDispatch(core, 1, lineA, 10));
        san.onPrimitiveDispatched(
            intentOp(core, 2, kIntentBarrier, 11));
        san.onPrimitiveDispatched(clwbDispatch(core, 3, lineB, 12));
        san.onPrimitiveRetired(clwbRetire(core, 3, lineB, 20));
    }
    EXPECT_EQ(san.violationCount(), 10u);
    EXPECT_EQ(san.violations().size(), 4u);
    EXPECT_NE(san.report().find("suppressed"), std::string::npos);
}

/** Shared tiny workload for the full-stack integration runs. */
const RecordedWorkload &
smallWorkload()
{
    static const RecordedWorkload recorded = [] {
        WorkloadParams params;
        params.numThreads = 2;
        params.opsPerThread = 24;
        params.seed = 7;
        return recordWorkload(WorkloadKind::Queue, params);
    }();
    return recorded;
}

TEST(PmoSanitizerIntegration, RecoverableDesignsRunClean)
{
    for (HwDesign design :
         {HwDesign::IntelX86, HwDesign::Hops,
          HwDesign::NoPersistQueue, HwDesign::StrandWeaver}) {
        ExperimentConfig config;
        config.pmosan = true;
        // runExperiment panics on sanitizer violations for
        // recoverable designs, so returning at all means clean.
        RunMetrics metrics =
            runExperiment(smallWorkload(), design,
                          PersistencyModel::Txn, config);
        EXPECT_EQ(metrics.pmosanViolations, 0u)
            << hwDesignName(design);
        EXPECT_GT(metrics.pmosanChecked, 0u) << hwDesignName(design);
        EXPECT_GT(metrics.pmAdmissions, 0u) << hwDesignName(design);
    }
}

TEST(PmoSanitizerIntegration, NonAtomicIsFlagged)
{
    // NON-ATOMIC drops the log/update ordering the models intend; the
    // sanitizer must catch the hardware acknowledging persists out of
    // the intended order. This is the expected-fail self-test: it
    // proves the checker has teeth on a real mis-ordered machine.
    ExperimentConfig config;
    config.pmosan = true;
    RunMetrics metrics =
        runExperiment(smallWorkload(), HwDesign::NonAtomic,
                      PersistencyModel::Txn, config);
    EXPECT_GT(metrics.pmosanViolations, 0u);
}

TEST(PmoSanitizerIntegration, DisabledSanitizerChangesNothing)
{
    ExperimentConfig config;
    RunMetrics off = runExperiment(
        smallWorkload(), HwDesign::StrandWeaver,
        PersistencyModel::Txn, config);
    config.pmosan = true;
    RunMetrics on = runExperiment(
        smallWorkload(), HwDesign::StrandWeaver,
        PersistencyModel::Txn, config);
    // Observation must not perturb timing or any reported metric.
    EXPECT_EQ(on.runTicks, off.runTicks);
    EXPECT_EQ(on.clwbs, off.clwbs);
    EXPECT_EQ(on.persistStalls, off.persistStalls);
    EXPECT_EQ(off.pmosanViolations, 0u);
    EXPECT_EQ(off.pmosanChecked, 0u); // sanitizer never attached
}

} // namespace
} // namespace strand
