# Empty dependencies file for test_pmo_dual.
# This may be replaced when dependencies are built.
