file(REMOVE_RECURSE
  "CMakeFiles/test_pmo_dual.dir/pmo_dual_test.cc.o"
  "CMakeFiles/test_pmo_dual.dir/pmo_dual_test.cc.o.d"
  "test_pmo_dual"
  "test_pmo_dual.pdb"
  "test_pmo_dual[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmo_dual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
