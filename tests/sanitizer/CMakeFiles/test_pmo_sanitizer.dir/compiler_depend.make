# Empty compiler generated dependencies file for test_pmo_sanitizer.
# This may be replaced when dependencies are built.
