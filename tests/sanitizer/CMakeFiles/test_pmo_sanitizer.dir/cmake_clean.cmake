file(REMOVE_RECURSE
  "CMakeFiles/test_pmo_sanitizer.dir/pmo_sanitizer_test.cc.o"
  "CMakeFiles/test_pmo_sanitizer.dir/pmo_sanitizer_test.cc.o.d"
  "test_pmo_sanitizer"
  "test_pmo_sanitizer.pdb"
  "test_pmo_sanitizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmo_sanitizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
