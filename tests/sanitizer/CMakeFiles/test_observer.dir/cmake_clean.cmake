file(REMOVE_RECURSE
  "CMakeFiles/test_observer.dir/observer_test.cc.o"
  "CMakeFiles/test_observer.dir/observer_test.cc.o.d"
  "test_observer"
  "test_observer.pdb"
  "test_observer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_observer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
