/**
 * @file
 * Tests for the multi-subscriber PersistObserver API: ObserverHub
 * registration-order dispatch and its misuse panics, plus System-level
 * behaviour — multiple subscribers see the same admission stream the
 * internal persist-trace recorder writes, deterministically.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/observer.hh"
#include "core/observer_util.hh"
#include "core/system.hh"
#include "runtime/instrumentor.hh"
#include "runtime/recorder.hh"

namespace strand
{
namespace
{

/** Records which observer instance saw each event, in order. */
struct TaggingObserver final : PersistObserver
{
    TaggingObserver(int tag, std::vector<int> &order)
        : tag(tag), order(order)
    {}

    void
    onPersistAdmitted(const PersistRecord &) override
    {
        order.push_back(tag);
    }

    int tag;
    std::vector<int> &order;
};

TEST(ObserverHub, NotifiesInRegistrationOrder)
{
    ObserverHub hub;
    std::vector<int> order;
    TaggingObserver first(1, order);
    TaggingObserver second(2, order);
    TaggingObserver third(3, order);
    hub.add(&first);
    hub.add(&second);
    hub.add(&third);

    hub.persistAdmitted({0x100, 5, 0, WriteOrigin::Clwb});
    hub.persistAdmitted({0x140, 9, 1, WriteOrigin::Clwb});
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 1, 2, 3}));

    // Removal re-establishes order among the remaining subscribers.
    order.clear();
    hub.remove(&second);
    hub.persistAdmitted({0x180, 12, 0, WriteOrigin::Clwb});
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(ObserverHub, ActiveTracksSubscribers)
{
    ObserverHub hub;
    EXPECT_FALSE(hub.active());
    std::vector<int> order;
    TaggingObserver obs(1, order);
    hub.add(&obs);
    EXPECT_TRUE(hub.active());
    hub.remove(&obs);
    EXPECT_FALSE(hub.active());
}

TEST(ObserverHub, MisusePanics)
{
    ObserverHub hub;
    std::vector<int> order;
    TaggingObserver obs(1, order);
    hub.add(&obs);
    EXPECT_THROW(hub.add(&obs), std::logic_error); // duplicate
    EXPECT_THROW(hub.add(nullptr), std::logic_error);

    TaggingObserver stranger(2, order);
    EXPECT_THROW(hub.remove(&stranger), std::logic_error);
}

TEST(ObserverHub, MutationDuringNotificationPanics)
{
    struct SelfMutating final : PersistObserver
    {
        void
        onPersistAdmitted(const PersistRecord &) override
        {
            hub->add(&extra);
        }
        ObserverHub *hub = nullptr;
        PersistObserver extra;
    };

    ObserverHub hub;
    SelfMutating obs;
    obs.hub = &hub;
    hub.add(&obs);
    EXPECT_THROW(hub.persistAdmitted({0x100, 1, 0, WriteOrigin::Clwb}),
                 std::logic_error);
}

TEST(ObserverHub, EventsDuringTeardownPanic)
{
    ObserverHub hub;
    std::vector<int> order;
    TaggingObserver obs(1, order);
    hub.add(&obs);
    hub.beginTeardown();
    EXPECT_THROW(hub.persistAdmitted({0x100, 1, 0, WriteOrigin::Clwb}),
                 std::logic_error);
    EXPECT_THROW(hub.add(&obs), std::logic_error);
}

/** A tiny two-thread persisting workload lowered for StrandWeaver. */
std::unique_ptr<System>
buildSmallSystem()
{
    constexpr unsigned threads = 2;
    TraceRecorder rec(threads);
    for (CoreId t = 0; t < threads; ++t) {
        for (unsigned i = 0; i < 6; ++i) {
            rec.regionBegin(t);
            rec.write(t, pmBase + (t * 8 + i) * lineBytes, i + 1);
            rec.regionEnd(t);
        }
    }

    InstrumentorParams ip;
    ip.design = HwDesign::StrandWeaver;
    ip.model = PersistencyModel::Txn;
    Instrumentor instr(ip);
    auto streams = instr.lower(rec.takeTrace());

    SystemConfig cfg;
    cfg.numCores = static_cast<unsigned>(streams.size());
    cfg.design = HwDesign::StrandWeaver;
    auto sys = std::make_unique<System>(cfg);
    sys->loadStreams(std::move(streams));
    return sys;
}

std::uint64_t
fnv1aOfTrace(const std::vector<PersistRecord> &trace)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](std::uint64_t value) {
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= (value >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ULL;
        }
    };
    for (const PersistRecord &rec : trace) {
        mix(rec.lineAddr);
        mix(rec.when);
        mix(rec.requester);
        mix(static_cast<std::uint64_t>(rec.origin));
    }
    return hash;
}

TEST(SystemObservers, HasherMatchesPersistTraceAndTallyCounts)
{
    auto sys = buildSmallSystem();
    TraceHasher hasher;
    AdmissionTally tally;
    sys->addObserver(&hasher);
    sys->addObserver(&tally);
    sys->run();

    ASSERT_FALSE(sys->persistTrace().empty());
    // The streaming hash must equal hashing the recorded trace after
    // the run — the internal recorder registers first, so both views
    // of the admission stream are the same.
    EXPECT_EQ(hasher.value(), fnv1aOfTrace(sys->persistTrace()));
    EXPECT_EQ(tally.admissions(), sys->persistTrace().size());
}

TEST(SystemObservers, MultipleSubscribersSeeIdenticalStreams)
{
    auto sys = buildSmallSystem();
    std::vector<PersistRecord> seenA;
    std::vector<PersistRecord> seenB;
    AdmissionCallback a([&seenA](const PersistRecord &rec) {
        seenA.push_back(rec);
    });
    AdmissionCallback b([&seenB](const PersistRecord &rec) {
        seenB.push_back(rec);
    });
    sys->addObserver(&a);
    sys->addObserver(&b);
    sys->run();

    ASSERT_EQ(seenA.size(), seenB.size());
    for (std::size_t i = 0; i < seenA.size(); ++i) {
        EXPECT_EQ(seenA[i].lineAddr, seenB[i].lineAddr);
        EXPECT_EQ(seenA[i].when, seenB[i].when);
        EXPECT_EQ(seenA[i].requester, seenB[i].requester);
    }
}

TEST(SystemObservers, ObserverRunsAreDeterministic)
{
    // Two identical systems with different observer mixes must
    // produce the same persist trace hash: subscribing is pure
    // observation and never perturbs timing.
    std::uint64_t plainHash = 0;
    {
        auto sys = buildSmallSystem();
        TraceHasher hasher;
        sys->addObserver(&hasher);
        sys->run();
        plainHash = hasher.value();
    }
    {
        auto sys = buildSmallSystem();
        TraceHasher hasher;
        AdmissionTally tally;
        AdmissionCallback noisy([](const PersistRecord &) {});
        sys->addObserver(&noisy);
        sys->addObserver(&tally);
        sys->addObserver(&hasher);
        sys->run();
        EXPECT_EQ(hasher.value(), plainHash);
    }
}

} // namespace
} // namespace strand
