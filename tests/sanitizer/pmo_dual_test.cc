/**
 * @file
 * Dual-checker edge-case tests: the same PMO corner cases are pushed
 * through BOTH the offline formal model (persist/pmo.hh, transitive
 * closure over a finished trace) and the online PMO-san sanitizer
 * (incremental, observer events), and both must reach the same
 * verdict on the same completion order:
 *
 *  1. JoinStrand with no preceding NewStrand (the join still orders
 *     everything earlier on the thread).
 *  2. Strong persist atomicity for same-address persists across
 *     threads.
 *  3. NewStrand immediately after a persist barrier (the NS defeats
 *     the barrier it follows).
 *
 * The synthetic online streams mirror real engine behaviour: a dirty
 * CLWB's line is admitted at the tick its flush acknowledges, and the
 * admission event is published before the retirement event (the PM
 * controller notifies observers before the engine's completion
 * callback runs).
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/op.hh"
#include "mem/address_map.hh"
#include "persist/pmo.hh"
#include "sanitizer/pmo_sanitizer.hh"

namespace strand
{
namespace
{

constexpr Addr A = pmBase + 0x000;
constexpr Addr B = pmBase + 0x100;

/** One persist in a synthetic single-run scenario. */
struct SynthPersist
{
    std::uint64_t id;
    CoreId core;
    Addr line;
};

/**
 * Drive @p san with the dispatch program (persists at their listed
 * positions, intent ops in between, per core) and then acknowledge
 * persists in @p ackOrder (each preceded by its line's admission).
 * @return true when the online checker saw no violation.
 */
bool
onlineVerdict(const std::vector<std::vector<PmoOp>> &threads,
              const std::vector<std::uint64_t> &ackOrder)
{
    PmoSanitizer san;
    // Map persist id -> (core, seq, line) while dispatching in
    // program order.
    struct Dispatched
    {
        CoreId core;
        SeqNum seq;
        Addr line;
        Tick when;
    };
    std::vector<std::uint64_t> ids;
    std::vector<Dispatched> info;
    Tick when = 1;
    for (CoreId core = 0; core < threads.size(); ++core) {
        SeqNum seq = 1;
        for (const PmoOp &op : threads[core]) {
            PrimitiveEvent ev;
            ev.core = core;
            ev.seq = seq++;
            ev.when = when++;
            switch (op.kind) {
            case PmoEvent::Persist:
                ev.kind = PrimitiveKind::Clwb;
                ev.lineAddr = op.addr;
                ids.push_back(op.id);
                info.push_back({ev.core, ev.seq, op.addr, ev.when});
                break;
            case PmoEvent::Barrier:
                ev.kind = PrimitiveKind::Barrier;
                ev.intents = kIntentBarrier;
                break;
            case PmoEvent::NewStrand:
                ev.kind = PrimitiveKind::NewStrand;
                ev.intents = kIntentNewStrand;
                break;
            case PmoEvent::JoinStrand:
                ev.kind = PrimitiveKind::JoinStrand;
                ev.intents = kIntentJoin;
                break;
            }
            san.onPrimitiveDispatched(ev);
        }
    }

    for (std::uint64_t id : ackOrder) {
        std::size_t at = 0;
        while (ids[at] != id)
            ++at;
        const Dispatched &d = info[at];
        // Real engines admit the dirty line as the flush completes;
        // the admission reaches observers first.
        san.onPersistAdmitted(
            {d.line, when, d.core, WriteOrigin::Clwb});
        PrimitiveEvent retire;
        retire.core = d.core;
        retire.kind = PrimitiveKind::Clwb;
        retire.seq = d.seq;
        retire.lineAddr = d.line;
        retire.when = when++;
        san.onPrimitiveRetired(retire);
    }
    return san.ok();
}

/** Offline verdict on the same program and completion order. */
bool
offlineVerdict(const PmoProgram &prog,
               const std::vector<std::uint64_t> &ackOrder)
{
    PmoModel model(prog);
    return !model.checkTrace(ackOrder).has_value();
}

// Edge case 1: a JoinStrand with no preceding NewStrand. The whole
// thread so far is one implicit strand; the join must still order
// every earlier persist before every later one.
TEST(PmoDualChecker, JoinWithoutPrecedingNewStrand)
{
    PmoProgram prog;
    prog.threads = {{
        PmoOp::persist(1, A),
        PmoOp::joinStrand(),
        PmoOp::persist(2, B),
    }};

    // In-order completion: legal by both checkers.
    EXPECT_TRUE(offlineVerdict(prog, {1, 2}));
    EXPECT_TRUE(onlineVerdict(prog.threads, {1, 2}));

    // Completing B before A breaks the join edge in both.
    EXPECT_FALSE(offlineVerdict(prog, {2, 1}));
    EXPECT_FALSE(onlineVerdict(prog.threads, {2, 1}));
}

// Edge case 2: same-address persists on different threads (strong
// persist atomicity, Eq.3). In this simulator an ADR admission
// snapshots the whole line's current architectural state, so the
// durable order of same-line persists always matches their VMO order
// — the only completion orders the machine can produce are the legal
// ones, and on those both checkers agree.
TEST(PmoDualChecker, SpaSameAddressAcrossThreads)
{
    PmoProgram prog;
    prog.threads = {
        {PmoOp::persist(1, A)},
        {PmoOp::persist(2, A)},
    };
    prog.vmoEdges = {{1, 2}}; // thread 1's store observed thread 0's

    PmoModel model(prog);
    EXPECT_TRUE(model.orderedBefore(1, 2)); // Eq.3
    EXPECT_FALSE(model.orderedBefore(2, 1));

    // The realizable completion order is legal in both checkers; the
    // online checker additionally counts the conflict edge the cache
    // hierarchy would publish for the ownership transfer.
    EXPECT_TRUE(offlineVerdict(prog, {1, 2}));
    EXPECT_TRUE(onlineVerdict(prog.threads, {1, 2}));

    PmoSanitizer san;
    san.onConflictEdge({A, 0, 1, 5});
    EXPECT_EQ(san.conflictEdgesSeen(), 1u);
    EXPECT_TRUE(san.ok());

    // The reversed order is rejected by the offline relation — and is
    // exactly the order whole-line admission makes unproducible, which
    // is why PMO-san discharges Eq.3 by construction.
    EXPECT_FALSE(offlineVerdict(prog, {2, 1}));
}

// Edge case 3: NewStrand immediately after a persist barrier. The NS
// defeats the barrier it directly follows: the post-NS persist is
// concurrent with the pre-barrier one.
TEST(PmoDualChecker, NewStrandImmediatelyAfterBarrier)
{
    PmoProgram prog;
    prog.threads = {{
        PmoOp::persist(1, A),
        PmoOp::barrier(),
        PmoOp::newStrand(),
        PmoOp::persist(2, B),
    }};

    // Both orders legal in both checkers: the strand break clears
    // the barrier's edge.
    EXPECT_TRUE(offlineVerdict(prog, {1, 2}));
    EXPECT_TRUE(onlineVerdict(prog.threads, {1, 2}));
    EXPECT_TRUE(offlineVerdict(prog, {2, 1}));
    EXPECT_TRUE(onlineVerdict(prog.threads, {2, 1}));

    // Control: with the NewStrand removed the same reversed order is
    // flagged by both checkers.
    PmoProgram ordered;
    ordered.threads = {{
        PmoOp::persist(1, A),
        PmoOp::barrier(),
        PmoOp::persist(2, B),
    }};
    EXPECT_FALSE(offlineVerdict(ordered, {2, 1}));
    EXPECT_FALSE(onlineVerdict(ordered.threads, {2, 1}));
}

} // namespace
} // namespace strand
