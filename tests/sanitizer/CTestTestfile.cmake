# CMake generated Testfile for 
# Source directory: /root/repo/tests/sanitizer
# Build directory: /root/repo/tests/sanitizer
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/sanitizer/test_observer[1]_include.cmake")
include("/root/repo/tests/sanitizer/test_pmo_sanitizer[1]_include.cmake")
include("/root/repo/tests/sanitizer/test_pmo_dual[1]_include.cmake")
