/**
 * @file
 * Port-layer tests: the latency contract (same-tick replies are
 * illegal by construction), Nack/retry ordering through a bound
 * responder, bit-identical behaviour at SW_SHARDS={1,2,4} for a
 * full port-mailboxed machine, snapshot/restore with port messages
 * in flight mid-window, and a differential check that a machine
 * quiesced with zero in-flight port traffic carries the same
 * fingerprint as the serial engine.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "mem/port.hh"
#include "runtime/instrumentor.hh"

namespace strand
{
namespace
{

// --- The latency contract --------------------------------------------

TEST(MemPortContract, ZeroLatencyLegsAreIllegal)
{
    EventQueue eq;
    MemPort a;
    EXPECT_THROW(a.init(eq, "a", 0, portLegLatency), std::logic_error);
    MemPort b;
    EXPECT_THROW(b.init(eq, "b", portLegLatency, 0), std::logic_error);
}

TEST(MemPortContract, DoubleInitIsIllegal)
{
    EventQueue eq;
    MemPort port;
    port.init(eq, "p");
    EXPECT_THROW(port.init(eq, "p"), std::logic_error);
}

TEST(MemPortContract, SendOnUnwiredPortIsIllegal)
{
    EventQueue eq;
    MemPort port;
    port.init(eq, "p");
    // Initialized but never bound: mail has nowhere to go.
    EXPECT_THROW(port.send(MemRequest{}), std::logic_error);
}

/** Records every delivery tick; replies to whatever it is told to. */
struct EchoResponder : MemResponder
{
    std::vector<std::pair<Tick, std::uint64_t>> deliveries;
    EventQueue &eq;

    explicit EchoResponder(EventQueue &eq) : eq(eq) {}

    void
    handleRequest(MemPort &port, const MemRequest &req) override
    {
        deliveries.emplace_back(eq.curTick(), req.token);
        MemResponse resp{req.kind, MemResponseKind::Done, req.token};
        port.respond(std::move(resp));
    }
};

TEST(MemPortContract, EachLegTakesItsDeclaredLatency)
{
    EventQueue eq;
    EchoResponder responder(eq);
    MemPort port;
    port.init(eq, "p", 700, 900);
    port.bind(responder);
    std::vector<Tick> responseTicks;
    port.setResponseHandler([&](const MemResponse &) {
        responseTicks.push_back(eq.curTick());
    });

    MemRequest req;
    req.kind = MemRequestKind::Kick;
    req.token = 42;
    port.send(std::move(req));
    eq.run();

    ASSERT_EQ(responder.deliveries.size(), 1u);
    EXPECT_EQ(responder.deliveries[0].first, 700u);
    ASSERT_EQ(responseTicks.size(), 1u);
    EXPECT_EQ(responseTicks[0], 700u + 900u);
    EXPECT_EQ(port.requestLatency(), 700u);
    EXPECT_EQ(port.responseLatency(), 900u);
}

// --- Nack/retry ordering ---------------------------------------------

/**
 * A single-slot responder: one request may be outstanding; further
 * requests are Nacked until the slot frees (a fixed service time
 * later). The shape the hierarchy and controller both present.
 */
struct SingleSlotResponder : MemResponder
{
    EventQueue &eq;
    bool busy = false;
    Tick serviceTime;
    std::vector<std::uint64_t> accepted; ///< service (admission) order

    SingleSlotResponder(EventQueue &eq, Tick serviceTime)
        : eq(eq), serviceTime(serviceTime)
    {
    }

    void
    handleRequest(MemPort &port, const MemRequest &req) override
    {
        if (busy) {
            port.respond({req.kind, MemResponseKind::Nack, req.token});
            return;
        }
        busy = true;
        accepted.push_back(req.token);
        const std::uint64_t token = req.token;
        const MemRequestKind kind = req.kind;
        eq.scheduleIn(serviceTime, [this, &port, token, kind] {
            busy = false;
            port.respond({kind, MemResponseKind::Done, token});
        });
    }
};

TEST(MemPortRetry, NackedRequestsRetryInOriginalSendOrder)
{
    EventQueue eq;
    SingleSlotResponder responder(eq, 4000);
    MemPort port;
    port.init(eq, "p");
    port.bind(responder);

    // The requester keeps a FIFO of rejected tokens and re-mails the
    // eldest on every Done, as Core does for its own store stream.
    std::vector<std::uint64_t> parked;
    std::vector<std::uint64_t> completed;
    port.setResponseHandler([&](const MemResponse &resp) {
        if (resp.kind == MemResponseKind::Nack) {
            parked.push_back(resp.token);
            return;
        }
        ASSERT_EQ(resp.kind, MemResponseKind::Done);
        completed.push_back(resp.token);
        if (!parked.empty()) {
            MemRequest retry;
            retry.kind = MemRequestKind::Store;
            retry.token = parked.front();
            parked.erase(parked.begin());
            port.send(std::move(retry));
        }
    });

    for (std::uint64_t token = 1; token <= 4; ++token) {
        MemRequest req;
        req.kind = MemRequestKind::Store;
        req.token = token;
        port.send(std::move(req));
    }
    eq.run();

    // Tokens 2..4 were each Nacked (the slot was busy), retried, and
    // admitted strictly in their original send order.
    EXPECT_EQ(responder.accepted,
              (std::vector<std::uint64_t>{1, 2, 3, 4}));
    EXPECT_EQ(completed, (std::vector<std::uint64_t>{1, 2, 3, 4}));
    EXPECT_TRUE(parked.empty());
}

// --- Full-machine determinism, snapshots, and quiesce ----------------

/** FNV-1a over the persist trace. */
std::uint64_t
traceHash(const std::vector<PersistRecord> &trace)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (unsigned byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    for (const PersistRecord &rec : trace) {
        mix(rec.lineAddr);
        mix(rec.when);
        mix(rec.requester);
        mix(static_cast<std::uint64_t>(rec.origin));
    }
    return h;
}

/** A small recorded workload lowered once, replayable per shard count. */
struct PortRig
{
    RecordedWorkload recorded;
    InstrumentorParams ip;
    std::vector<OpStream> streams;

    PortRig()
    {
        WorkloadParams params;
        params.numThreads = 2;
        params.opsPerThread = 12;
        params.seed = 17;
        recorded = recordWorkload(WorkloadKind::Queue, params);
        ip.design = HwDesign::StrandWeaver;
        ip.model = PersistencyModel::Sfr;
        ip.logStyle = LogStyle::Undo;
        Instrumentor instr(ip);
        streams = instr.lower(recorded.trace);
    }

    std::unique_ptr<System>
    buildSystem(unsigned shards)
    {
        SystemConfig cfg;
        cfg.numCores = static_cast<unsigned>(streams.size());
        cfg.design = ip.design;
        cfg.layout = ip.layout;
        cfg.shards = shards;
        auto sys = std::make_unique<System>(cfg);
        sys->seedImage(recorded.preload);
        auto copies = streams;
        sys->loadStreams(std::move(copies));
        return sys;
    }
};

TEST(MemPortMachine, ShardCountNeverChangesTheRun)
{
    PortRig rig;
    std::uint64_t serialHash = 0;
    Tick serialFinish = 0;
    for (unsigned shards : {1u, 2u, 4u}) {
        auto sys = rig.buildSystem(shards);
        sys->run();
        const std::uint64_t hash = traceHash(sys->persistTrace());
        ASSERT_GT(sys->persistTrace().size(), 0u);
        if (shards == 1) {
            serialHash = hash;
            serialFinish = sys->finishTick();
            continue;
        }
        EXPECT_EQ(hash, serialHash) << "shards=" << shards;
        EXPECT_EQ(sys->finishTick(), serialFinish)
            << "shards=" << shards;
        EXPECT_GT(sys->shardWindows(), 0u) << "shards=" << shards;
    }
}

TEST(MemPortMachine, InFlightPortRequestsSurviveSnapshotRestore)
{
    PortRig rig;
    auto reference = rig.buildSystem(2);
    reference->run();
    const std::uint64_t refHash = traceHash(reference->persistTrace());
    const Tick refFinish = reference->finishTick();
    ASSERT_GT(refFinish, 0u);

    // Capture mid-run at a tick not aligned to the window quantum,
    // while the machine is demonstrably NOT quiesced — port mail is
    // in flight and rides the event-queue snapshot as scheduled
    // closures.
    const Tick mid = (refFinish / 2) | 1;
    auto sys = rig.buildSystem(2);
    ASSERT_FALSE(sys->runUntil(mid));
    ASSERT_FALSE(sys->hierarchy().idle())
        << "capture tick landed on a quiesced machine; pick a "
           "busier tick for this test to mean anything";
    SimSnapshot snap = sys->snapshot();

    // Finish the interrupted run: bit-identical to the reference.
    sys->run();
    EXPECT_EQ(traceHash(sys->persistTrace()), refHash);
    EXPECT_EQ(sys->finishTick(), refFinish);

    // Rewind into the captured mid-window state and replay the tail.
    sys->restore(snap);
    sys->run();
    EXPECT_EQ(traceHash(sys->persistTrace()), refHash);
    EXPECT_EQ(sys->finishTick(), refFinish);
}

TEST(MemPortMachine, QuiescedMachineMatchesSerialEngineFingerprint)
{
    // Differential pin: once a sharded, port-mailboxed machine has
    // drained — zero in-flight port messages, hierarchy idle — its
    // observable fingerprint is exactly the serial engine's.
    PortRig rig;
    auto serial = rig.buildSystem(1);
    serial->run();
    ASSERT_TRUE(serial->hierarchy().idle());

    auto sharded = rig.buildSystem(4);
    sharded->run();
    ASSERT_TRUE(sharded->hierarchy().idle());

    EXPECT_EQ(traceHash(sharded->persistTrace()),
              traceHash(serial->persistTrace()));
    EXPECT_TRUE(sharded->persistTrace() == serial->persistTrace());
    EXPECT_EQ(sharded->finishTick(), serial->finishTick());
    EXPECT_EQ(sharded->totalClwbs(), serial->totalClwbs());
    EXPECT_EQ(sharded->totalCycles(), serial->totalCycles());
    EXPECT_EQ(sharded->totalPersistStalls(),
              serial->totalPersistStalls());
    for (CoreId i = 0; i < serial->numCores(); ++i)
        EXPECT_EQ(sharded->finishTickOf(i), serial->finishTickOf(i));
}

} // namespace
} // namespace strand
