file(REMOVE_RECURSE
  "CMakeFiles/test_mem_controller.dir/mem_controller_test.cc.o"
  "CMakeFiles/test_mem_controller.dir/mem_controller_test.cc.o.d"
  "test_mem_controller"
  "test_mem_controller.pdb"
  "test_mem_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
