# Empty compiler generated dependencies file for test_mem_controller.
# This may be replaced when dependencies are built.
