file(REMOVE_RECURSE
  "CMakeFiles/test_memory_image.dir/memory_image_test.cc.o"
  "CMakeFiles/test_memory_image.dir/memory_image_test.cc.o.d"
  "test_memory_image"
  "test_memory_image.pdb"
  "test_memory_image[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
