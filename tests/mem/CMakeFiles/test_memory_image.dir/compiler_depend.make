# Empty compiler generated dependencies file for test_memory_image.
# This may be replaced when dependencies are built.
