file(REMOVE_RECURSE
  "CMakeFiles/test_persist_order.dir/persist_order_test.cc.o"
  "CMakeFiles/test_persist_order.dir/persist_order_test.cc.o.d"
  "test_persist_order"
  "test_persist_order.pdb"
  "test_persist_order[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_persist_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
