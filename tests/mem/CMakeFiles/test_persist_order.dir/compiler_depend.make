# Empty compiler generated dependencies file for test_persist_order.
# This may be replaced when dependencies are built.
