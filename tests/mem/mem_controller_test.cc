/**
 * @file
 * Unit tests for the banked PM/DRAM controller: latencies, row-buffer
 * behaviour, ADR persist point, queue back-pressure, and retries.
 *
 * Transactions travel through a test-owned MemPort, exactly as the
 * cache hierarchy mails them in production: admission comes back as
 * an explicit Ack/Nack response one port leg later, and completion
 * arrives separately through the packet's own onResponse.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "mem/mem_controller.hh"

namespace strand
{
namespace
{

struct ControllerFixture : public ::testing::Test
{
    EventQueue eq;
    MemoryImage img;
    MemControllerParams params;
    MemPort port;
    /** Admission decisions in arrival order (Ack=true, Nack=false). */
    std::deque<bool> decisions;

    /** One request leg of mail time before the controller sees it. */
    static constexpr Tick mailLatency = portLegLatency;

    void
    wire(MemController &ctrl)
    {
        port.init(eq, "test.port");
        port.bind(ctrl);
        port.setResponseHandler([this](const MemResponse &resp) {
            decisions.push_back(resp.kind == MemResponseKind::Ack);
        });
    }

    std::unique_ptr<MemController>
    makePm()
    {
        auto ctrl = std::make_unique<MemController>("pmctrl", eq, img,
                                                    params, true);
        wire(*ctrl);
        return ctrl;
    }

    /** Mail a packet without waiting for its admission decision. */
    void
    post(const PacketPtr &pkt)
    {
        MemRequest req;
        req.kind = MemRequestKind::Packet;
        req.addr = pkt->addr;
        req.pkt = pkt;
        port.send(std::move(req));
    }

    /** Run the queue until the next admission decision arrives. */
    bool
    awaitDecision()
    {
        while (decisions.empty()) {
            const Tick next = eq.nextLiveTick();
            if (next == maxTick) {
                ADD_FAILURE() << "queue drained without a decision";
                return false;
            }
            eq.runUntil(next);
        }
        bool acked = decisions.front();
        decisions.pop_front();
        return acked;
    }

    /** Mail a packet and block on its admission decision. */
    bool
    submit(const PacketPtr &pkt)
    {
        post(pkt);
        return awaitDecision();
    }
};

TEST_F(ControllerFixture, ReadCompletesAfterDeviceLatency)
{
    auto ctrl = makePm();
    Tick done = 0;
    auto pkt = makeReadPacket(pmBase, 0, false,
                              [&] { done = eq.curTick(); });
    ASSERT_TRUE(submit(pkt));
    eq.run();
    EXPECT_EQ(done, mailLatency + params.readLatency);
    EXPECT_TRUE(ctrl->idle());
}

TEST_F(ControllerFixture, RowBufferHitIsFaster)
{
    auto ctrl = makePm();
    std::vector<Tick> done;
    auto first = makeReadPacket(pmBase, 0, false,
                                [&] { done.push_back(eq.curTick()); });
    // Same 1 KiB row, different line. Mailed back to back, both
    // requests land on the controller in the same port-leg batch.
    auto second = makeReadPacket(pmBase + 64, 0, false,
                                 [&] { done.push_back(eq.curTick()); });
    post(first);
    post(second);
    ASSERT_TRUE(awaitDecision());
    ASSERT_TRUE(awaitDecision());
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    // The row-hit read overtakes the opening read: it waits only for
    // the bank-occupancy window, then enjoys the open row, so it
    // completes first.
    EXPECT_EQ(done[0], mailLatency + params.readOccupancy +
                           params.readRowHitLatency);
    EXPECT_EQ(done[1], mailLatency + params.readLatency);
    EXPECT_EQ(ctrl->numRowHits.value(), 1.0);
    EXPECT_EQ(ctrl->numRowMisses.value(), 1.0);
}

TEST_F(ControllerFixture, BanksServiceDisjointRowsInParallel)
{
    auto ctrl = makePm();
    std::vector<Tick> done;
    // Two different banks: addresses one row apart.
    auto a = makeReadPacket(pmBase, 0, false,
                            [&] { done.push_back(eq.curTick()); });
    auto b = makeReadPacket(pmBase + params.rowBytes, 0, false,
                            [&] { done.push_back(eq.curTick()); });
    post(a);
    post(b);
    ASSERT_TRUE(awaitDecision());
    ASSERT_TRUE(awaitDecision());
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], mailLatency + params.readLatency);
    EXPECT_EQ(done[1], mailLatency + params.readLatency); // parallel
}

TEST_F(ControllerFixture, WriteAckAtAdrAdmissionAppliesPersist)
{
    auto ctrl = makePm();
    img.writeArch(pmBase, 77);
    Tick acked = 0;
    auto pkt = makeWritePacket(img.snapshotLine(pmBase), 0,
                               WriteOrigin::Clwb,
                               [&] { acked = eq.curTick(); });
    ASSERT_TRUE(submit(pkt));

    // Before the queue drains, the ack must already have arrived and
    // the data must be durable: run just past the accept latency.
    eq.runUntil(mailLatency + params.writeAcceptLatency);
    EXPECT_EQ(acked, mailLatency + params.writeAcceptLatency);
    EXPECT_EQ(img.readPersisted(pmBase), 77u);
    EXPECT_FALSE(ctrl->idle()); // media write still draining

    eq.run();
    EXPECT_TRUE(ctrl->idle());
}

TEST_F(ControllerFixture, PersistObserverSeesEveryPersist)
{
    auto ctrl = makePm();
    std::vector<std::uint64_t> ids;
    ctrl->setPersistObserver(
        [&](const Packet &pkt, Tick) { ids.push_back(pkt.id); });
    for (int i = 0; i < 3; ++i) {
        img.writeArch(pmBase + 64 * i, i);
        auto pkt = makeWritePacket(img.snapshotLine(pmBase + 64 * i), 0,
                                   WriteOrigin::Clwb, nullptr);
        pkt->id = 100 + i;
        ASSERT_TRUE(submit(pkt));
    }
    eq.run();
    EXPECT_EQ(ids, (std::vector<std::uint64_t>{100, 101, 102}));
}

TEST_F(ControllerFixture, WriteQueueFullRejectsAndRetries)
{
    params.writeQueueEntries = 2;
    auto ctrl = makePm();
    int completed = 0;
    auto mkWrite = [&](int i) {
        img.writeArch(pmBase + 64 * i, i);
        return makeWritePacket(img.snapshotLine(pmBase + 64 * i), 0,
                               WriteOrigin::Clwb, [&] { ++completed; });
    };
    ASSERT_TRUE(submit(mkWrite(0)));
    ASSERT_TRUE(submit(mkWrite(1)));
    auto third = mkWrite(2);
    EXPECT_FALSE(submit(third));
    EXPECT_EQ(ctrl->numRetries.value(), 1.0);

    // A Nacked packet is re-mailed when queue space frees up; the
    // fresh admission decision arrives like any other.
    bool resent = false;
    ctrl->addRetryCallback([&] {
        if (!resent) {
            resent = true;
            post(third);
        }
    });
    eq.run();
    EXPECT_TRUE(resent);
    ASSERT_TRUE(awaitDecision()); // the re-mailed third write
    eq.run();
    EXPECT_EQ(completed, 3);
}

TEST_F(ControllerFixture, ReadQueueFullRejects)
{
    params.readQueueEntries = 1;
    auto ctrl = makePm();
    auto a = makeReadPacket(pmBase, 0, false, nullptr);
    auto b = makeReadPacket(pmBase + 64, 0, false, nullptr);
    ASSERT_TRUE(submit(a));
    EXPECT_FALSE(submit(b));
    eq.run();
    EXPECT_TRUE(submit(b));
    eq.run();
    EXPECT_EQ(ctrl->numReads.value(), 2.0);
}

TEST_F(ControllerFixture, DramControllerDoesNotPersist)
{
    auto dram = std::make_unique<MemController>(
        "dram", eq, img, dramControllerParams(), false);
    wire(*dram);
    img.writeArch(dramBase + 64, 5);
    LineData snap = img.snapshotLine(dramBase + 64);
    auto pkt = makeWritePacket(snap, 0, WriteOrigin::WriteBack, nullptr);
    ASSERT_TRUE(submit(pkt));
    eq.run();
    EXPECT_EQ(img.persistedWords(), 0u);
}

TEST_F(ControllerFixture, WritesToSameBankSerializeOnMedia)
{
    params.banks = 1;
    auto ctrl = makePm();
    int drained = 0;
    ctrl->addRetryCallback([&] { ++drained; });
    for (int i = 0; i < 2; ++i) {
        img.writeArch(pmBase + 64 * i, i);
        post(makeWritePacket(img.snapshotLine(pmBase + 64 * i), 0,
                             WriteOrigin::Clwb, nullptr));
    }
    ASSERT_TRUE(awaitDecision());
    ASSERT_TRUE(awaitDecision());
    // Queue slots are held while the media writes retire: shortly
    // after both acks the controller still has work in flight.
    eq.runUntil(mailLatency + params.writeAcceptLatency +
                nsToTicks(10));
    EXPECT_FALSE(ctrl->idle());
    EXPECT_EQ(drained, 0);
    eq.run();
    EXPECT_EQ(drained, 2);
    EXPECT_TRUE(ctrl->idle());
}

} // namespace
} // namespace strand
