/**
 * @file
 * Unit tests for the banked PM/DRAM controller: latencies, row-buffer
 * behaviour, ADR persist point, queue back-pressure, and retries.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/mem_controller.hh"

namespace strand
{
namespace
{

struct ControllerFixture : public ::testing::Test
{
    EventQueue eq;
    MemoryImage img;
    MemControllerParams params;

    std::unique_ptr<MemController>
    makePm()
    {
        return std::make_unique<MemController>("pmctrl", eq, img, params,
                                               true);
    }
};

TEST_F(ControllerFixture, ReadCompletesAfterDeviceLatency)
{
    auto ctrl = makePm();
    Tick done = 0;
    auto pkt = makeReadPacket(pmBase, 0, false,
                              [&] { done = eq.curTick(); });
    ASSERT_TRUE(ctrl->tryRequest(pkt));
    eq.run();
    EXPECT_EQ(done, params.readLatency);
    EXPECT_TRUE(ctrl->idle());
}

TEST_F(ControllerFixture, RowBufferHitIsFaster)
{
    auto ctrl = makePm();
    std::vector<Tick> done;
    auto first = makeReadPacket(pmBase, 0, false,
                                [&] { done.push_back(eq.curTick()); });
    // Same 1 KiB row, different line.
    auto second = makeReadPacket(pmBase + 64, 0, false,
                                 [&] { done.push_back(eq.curTick()); });
    ASSERT_TRUE(ctrl->tryRequest(first));
    ASSERT_TRUE(ctrl->tryRequest(second));
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    // The row-hit read overtakes the opening read: it waits only for
    // the bank-occupancy window, then enjoys the open row, so it
    // completes first.
    EXPECT_EQ(done[0], params.readOccupancy + params.readRowHitLatency);
    EXPECT_EQ(done[1], params.readLatency);
    EXPECT_EQ(ctrl->numRowHits.value(), 1.0);
    EXPECT_EQ(ctrl->numRowMisses.value(), 1.0);
}

TEST_F(ControllerFixture, BanksServiceDisjointRowsInParallel)
{
    auto ctrl = makePm();
    std::vector<Tick> done;
    // Two different banks: addresses one row apart.
    auto a = makeReadPacket(pmBase, 0, false,
                            [&] { done.push_back(eq.curTick()); });
    auto b = makeReadPacket(pmBase + params.rowBytes, 0, false,
                            [&] { done.push_back(eq.curTick()); });
    ASSERT_TRUE(ctrl->tryRequest(a));
    ASSERT_TRUE(ctrl->tryRequest(b));
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], params.readLatency);
    EXPECT_EQ(done[1], params.readLatency); // parallel banks
}

TEST_F(ControllerFixture, WriteAckAtAdrAdmissionAppliesPersist)
{
    auto ctrl = makePm();
    img.writeArch(pmBase, 77);
    Tick acked = 0;
    auto pkt = makeWritePacket(img.snapshotLine(pmBase), 0,
                               WriteOrigin::Clwb,
                               [&] { acked = eq.curTick(); });
    ASSERT_TRUE(ctrl->tryRequest(pkt));

    // Before the queue drains, the ack must already have arrived and
    // the data must be durable: run just past the accept latency.
    eq.runUntil(params.writeAcceptLatency);
    EXPECT_EQ(acked, params.writeAcceptLatency);
    EXPECT_EQ(img.readPersisted(pmBase), 77u);
    EXPECT_FALSE(ctrl->idle()); // media write still draining

    eq.run();
    EXPECT_TRUE(ctrl->idle());
}

TEST_F(ControllerFixture, PersistObserverSeesEveryPersist)
{
    auto ctrl = makePm();
    std::vector<std::uint64_t> ids;
    ctrl->setPersistObserver(
        [&](const Packet &pkt, Tick) { ids.push_back(pkt.id); });
    for (int i = 0; i < 3; ++i) {
        img.writeArch(pmBase + 64 * i, i);
        auto pkt = makeWritePacket(img.snapshotLine(pmBase + 64 * i), 0,
                                   WriteOrigin::Clwb, nullptr);
        pkt->id = 100 + i;
        ASSERT_TRUE(ctrl->tryRequest(pkt));
    }
    eq.run();
    EXPECT_EQ(ids, (std::vector<std::uint64_t>{100, 101, 102}));
}

TEST_F(ControllerFixture, WriteQueueFullRejectsAndRetries)
{
    params.writeQueueEntries = 2;
    auto ctrl = makePm();
    int completed = 0;
    auto mkWrite = [&](int i) {
        img.writeArch(pmBase + 64 * i, i);
        return makeWritePacket(img.snapshotLine(pmBase + 64 * i), 0,
                               WriteOrigin::Clwb, [&] { ++completed; });
    };
    ASSERT_TRUE(ctrl->tryRequest(mkWrite(0)));
    ASSERT_TRUE(ctrl->tryRequest(mkWrite(1)));
    auto third = mkWrite(2);
    EXPECT_FALSE(ctrl->tryRequest(third));
    EXPECT_EQ(ctrl->numRetries.value(), 1.0);

    bool resent = false;
    ctrl->addRetryCallback([&] {
        if (!resent && ctrl->tryRequest(third))
            resent = true;
    });
    eq.run();
    EXPECT_TRUE(resent);
    EXPECT_EQ(completed, 3);
}

TEST_F(ControllerFixture, ReadQueueFullRejects)
{
    params.readQueueEntries = 1;
    auto ctrl = makePm();
    auto a = makeReadPacket(pmBase, 0, false, nullptr);
    auto b = makeReadPacket(pmBase + 64, 0, false, nullptr);
    ASSERT_TRUE(ctrl->tryRequest(a));
    EXPECT_FALSE(ctrl->tryRequest(b));
    eq.run();
    EXPECT_TRUE(ctrl->tryRequest(b));
    eq.run();
    EXPECT_EQ(ctrl->numReads.value(), 2.0);
}

TEST_F(ControllerFixture, DramControllerDoesNotPersist)
{
    auto dram = std::make_unique<MemController>(
        "dram", eq, img, dramControllerParams(), false);
    img.writeArch(dramBase + 64, 5);
    LineData snap = img.snapshotLine(dramBase + 64);
    auto pkt = makeWritePacket(snap, 0, WriteOrigin::WriteBack, nullptr);
    ASSERT_TRUE(dram->tryRequest(pkt));
    eq.run();
    EXPECT_EQ(img.persistedWords(), 0u);
}

TEST_F(ControllerFixture, WritesToSameBankSerializeOnMedia)
{
    params.banks = 1;
    auto ctrl = makePm();
    int drained = 0;
    ctrl->addRetryCallback([&] { ++drained; });
    for (int i = 0; i < 2; ++i) {
        img.writeArch(pmBase + 64 * i, i);
        ASSERT_TRUE(ctrl->tryRequest(makeWritePacket(
            img.snapshotLine(pmBase + 64 * i), 0, WriteOrigin::Clwb,
            nullptr)));
    }
    // Queue slots are held while the media writes retire: shortly
    // after both acks the controller still has work in flight.
    eq.runUntil(params.writeAcceptLatency + nsToTicks(10));
    EXPECT_FALSE(ctrl->idle());
    EXPECT_EQ(drained, 0);
    eq.run();
    EXPECT_EQ(drained, 2);
    EXPECT_TRUE(ctrl->idle());
}

} // namespace
} // namespace strand
