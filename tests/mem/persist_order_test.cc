/**
 * @file
 * Focused tests for persist-order plumbing at the memory layer: the
 * PM controller admits writes in FIFO send order (the property
 * strong persist atomicity leans on), the persist observer sees
 * admission order, and the hierarchy's per-line send queues keep
 * same-line flushes in content order across back-pressure.
 *
 * All traffic is mailed through MemPorts, as in production.
 */

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/lock_table.hh"

namespace strand
{
namespace
{

/** Mail @p pkt to @p port as a Packet request. */
void
postPacket(MemPort &port, const PacketPtr &pkt)
{
    MemRequest req;
    req.kind = MemRequestKind::Packet;
    req.addr = pkt->addr;
    req.pkt = pkt;
    port.send(std::move(req));
}

/**
 * A core's-eye view of a hierarchy: one port plus blocking helpers
 * that retry Nacks, mirroring what Core does in production.
 */
struct HierClient
{
    struct Outcome
    {
        bool acked = false;
        bool nacked = false;
        bool done = false;
        bool wrotePm = false;
    };

    EventQueue &eq;
    MemPort port;
    std::unordered_map<std::uint64_t, Outcome> outcomes;
    std::uint64_t nextToken = 1;

    HierClient(EventQueue &eq, Hierarchy &hier) : eq(eq)
    {
        port.init(eq, "test.port");
        port.bind(hier);
        port.setResponseHandler([this](const MemResponse &resp) {
            Outcome &o = outcomes[resp.token];
            switch (resp.kind) {
              case MemResponseKind::Ack:
                o.acked = true;
                break;
              case MemResponseKind::Nack:
                o.nacked = true;
                break;
              case MemResponseKind::FlushStarted:
                break;
              case MemResponseKind::Done:
                o.done = true;
                o.wrotePm = resp.wrotePm;
                break;
            }
        });
    }

    std::uint64_t
    send(MemRequestKind kind, CoreId core, Addr addr,
         std::uint64_t value = 0)
    {
        MemRequest req;
        req.kind = kind;
        req.core = core;
        req.addr = addr;
        req.value = value;
        req.token = nextToken++;
        outcomes[req.token];
        port.send(std::move(req));
        return req.token;
    }

    const Outcome &
    out(std::uint64_t token)
    {
        return outcomes.at(token);
    }

    bool
    step()
    {
        const Tick next = eq.nextLiveTick();
        if (next == maxTick)
            return false;
        eq.runUntil(next);
        return true;
    }

    void
    store(CoreId core, Addr addr, std::uint64_t value)
    {
        std::uint64_t tok = 0;
        for (;;) {
            tok = send(MemRequestKind::Store, core, addr, value);
            while (!out(tok).acked && !out(tok).nacked)
                ASSERT_TRUE(step());
            if (out(tok).acked)
                break;
        }
        while (!out(tok).done)
            ASSERT_TRUE(step());
    }
};

TEST(PersistOrder, ControllerAdmitsWritesInSendOrder)
{
    EventQueue eq;
    MemoryImage img;
    MemController pm("pm", eq, img, MemControllerParams{}, true);
    MemPort port;
    port.init(eq, "test.port");
    port.bind(pm);
    int acks = 0;
    port.setResponseHandler([&](const MemResponse &resp) {
        if (resp.kind == MemResponseKind::Ack)
            ++acks;
    });
    std::vector<std::uint64_t> order;
    pm.setPersistObserver(
        [&](const Packet &pkt, Tick) { order.push_back(pkt.id); });

    for (std::uint64_t i = 0; i < 8; ++i) {
        img.writeArch(pmBase + i * 64, i);
        auto pkt = makeWritePacket(img.snapshotLine(pmBase + i * 64),
                                   0, WriteOrigin::Clwb, nullptr);
        pkt->id = i;
        postPacket(port, pkt);
    }
    eq.run();
    EXPECT_EQ(acks, 8);
    ASSERT_EQ(order.size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(PersistOrder, SameLineFlushesStayInContentOrderUnderPressure)
{
    // Choke the PM write queue so flush sends retry; two flushes of
    // one line must still persist oldest-content-first.
    EventQueue eq;
    MemoryImage img;
    MemControllerParams pmParams;
    pmParams.writeQueueEntries = 1;
    MemController pm("pm", eq, img, pmParams, true);
    MemController dram("dram", eq, img, dramControllerParams(), false);
    Hierarchy hier("caches", eq, img, 1, HierarchyParams{}, pm, dram);
    HierClient client(eq, hier);

    const Addr line = pmBase + 0x1000;
    // Fill the single write-queue slot with an unrelated line,
    // mailed straight to the controller.
    MemPort pmPort;
    pmPort.init(eq, "test.pmPort");
    pmPort.bind(pm);
    pmPort.setResponseHandler([](const MemResponse &) {});
    img.writeArch(pmBase + 0x8000, 7);
    postPacket(pmPort, makeWritePacket(img.snapshotLine(pmBase + 0x8000),
                                       0, WriteOrigin::Clwb, nullptr));
    eq.runUntil(eq.curTick() + portLegLatency); // let it occupy the slot

    // Store + flush, then store + flush again, back to back.
    client.store(0, line, 1);
    auto flushA = client.send(MemRequestKind::Flush, 0, line);
    // Let the first flush reach its (blocked) send.
    eq.runUntil(eq.curTick() + nsToTicks(10));

    client.store(0, line, 2);
    auto flushB = client.send(MemRequestKind::Flush, 0, line);

    eq.run();
    EXPECT_TRUE(client.out(flushA).done);
    EXPECT_TRUE(client.out(flushB).done);
    // The final durable value must be the newest store: the delayed
    // first snapshot may carry value 1 or 2 depending on timing, but
    // it can never land after the second flush's fresher snapshot.
    EXPECT_EQ(img.readPersisted(line), 2u);
}

TEST(PersistOrder, LockReleaseObserversFire)
{
    LockTable locks;
    int fired = 0;
    locks.addReleaseObserver([&] { ++fired; });
    ASSERT_TRUE(locks.tryAcquire(1, 0));
    locks.release(1);
    ASSERT_TRUE(locks.tryAcquire(1, 1));
    locks.release(1);
    EXPECT_EQ(fired, 2);
}

TEST(PersistOrder, PrewarmInstallsCleanL2Lines)
{
    EventQueue eq;
    MemoryImage img;
    MemController pm("pm", eq, img, MemControllerParams{}, true);
    MemController dram("dram", eq, img, dramControllerParams(), false);
    Hierarchy hier("caches", eq, img, 1, HierarchyParams{}, pm, dram);
    HierClient client(eq, hier);

    hier.prewarmL2(pmBase, pmBase + 4 * lineBytes);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(hier.l2State(pmBase + i * lineBytes),
                  CoherenceState::Shared);
        EXPECT_FALSE(hier.l2Dirty(pmBase + i * lineBytes));
    }
    // A warm load costs an L2 hit, not a PM read.
    auto tok = client.send(MemRequestKind::Load, 0, pmBase);
    eq.run();
    EXPECT_TRUE(client.out(tok).done);
    EXPECT_EQ(pm.numReads.value(), 0.0);
}

TEST(PersistOrder, InterlockFlagDisablesDrainPoints)
{
    EventQueue eq;
    MemoryImage img;
    MemController pm("pm", eq, img, MemControllerParams{}, true);
    MemController dram("dram", eq, img, dramControllerParams(), false);
    HierarchyParams params;
    params.persistInterlocks = false;
    params.l1Size = 256; // force evictions
    Hierarchy hier("caches", eq, img, 1, params, pm, dram);
    HierClient client(eq, hier);

    bool recorderCalled = false;
    hier.setDrainPointRecorder(0, [&] {
        recorderCalled = true;
        return Hierarchy::Clearance{};
    });

    // Dirty three conflicting lines; the eviction would record a
    // drain point if interlocks were enabled.
    for (unsigned i = 0; i < 3; ++i)
        client.store(0, pmBase + i * 128, i);
    eq.run();
    EXPECT_FALSE(recorderCalled);
}

} // namespace
} // namespace strand
