/**
 * @file
 * Focused tests for persist-order plumbing at the memory layer: the
 * PM controller admits writes in FIFO send order (the property
 * strong persist atomicity leans on), the persist observer sees
 * admission order, and the hierarchy's per-line send queues keep
 * same-line flushes in content order across back-pressure.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/lock_table.hh"

namespace strand
{
namespace
{

TEST(PersistOrder, ControllerAdmitsWritesInSendOrder)
{
    EventQueue eq;
    MemoryImage img;
    MemController pm("pm", eq, img, MemControllerParams{}, true);
    std::vector<std::uint64_t> order;
    pm.setPersistObserver(
        [&](const Packet &pkt, Tick) { order.push_back(pkt.id); });

    for (std::uint64_t i = 0; i < 8; ++i) {
        img.writeArch(pmBase + i * 64, i);
        auto pkt = makeWritePacket(img.snapshotLine(pmBase + i * 64),
                                   0, WriteOrigin::Clwb, nullptr);
        pkt->id = i;
        ASSERT_TRUE(pm.tryRequest(pkt));
    }
    eq.run();
    ASSERT_EQ(order.size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(PersistOrder, SameLineFlushesStayInContentOrderUnderPressure)
{
    // Choke the PM write queue so flush sends retry; two flushes of
    // one line must still persist oldest-content-first.
    EventQueue eq;
    MemoryImage img;
    MemControllerParams pmParams;
    pmParams.writeQueueEntries = 1;
    MemController pm("pm", eq, img, pmParams, true);
    MemController dram("dram", eq, img, dramControllerParams(), false);
    Hierarchy hier("caches", eq, img, 1, HierarchyParams{}, pm, dram);

    const Addr line = pmBase + 0x1000;
    // Fill the single write-queue slot with an unrelated line.
    img.writeArch(pmBase + 0x8000, 7);
    ASSERT_TRUE(pm.tryRequest(makeWritePacket(
        img.snapshotLine(pmBase + 0x8000), 0, WriteOrigin::Clwb,
        nullptr)));

    // Store + flush, then store + flush again, back to back.
    bool stored = false;
    while (!hier.tryStore(0, line, 1, [&] { stored = true; }))
        eq.serviceOne();
    while (!stored)
        ASSERT_TRUE(eq.serviceOne());
    int flushes = 0;
    hier.tryFlush(0, line, [&](bool) { ++flushes; });
    // Let the first flush reach its (blocked) send.
    eq.runUntil(eq.curTick() + nsToTicks(10));

    stored = false;
    while (!hier.tryStore(0, line, 2, [&] { stored = true; }))
        eq.serviceOne();
    while (!stored)
        ASSERT_TRUE(eq.serviceOne());
    hier.tryFlush(0, line, [&](bool) { ++flushes; });

    eq.run();
    EXPECT_EQ(flushes, 2);
    // The final durable value must be the newest store: the delayed
    // first snapshot may carry value 1 or 2 depending on timing, but
    // it can never land after the second flush's fresher snapshot.
    EXPECT_EQ(img.readPersisted(line), 2u);
}

TEST(PersistOrder, LockReleaseObserversFire)
{
    LockTable locks;
    int fired = 0;
    locks.addReleaseObserver([&] { ++fired; });
    ASSERT_TRUE(locks.tryAcquire(1, 0));
    locks.release(1);
    ASSERT_TRUE(locks.tryAcquire(1, 1));
    locks.release(1);
    EXPECT_EQ(fired, 2);
}

TEST(PersistOrder, PrewarmInstallsCleanL2Lines)
{
    EventQueue eq;
    MemoryImage img;
    MemController pm("pm", eq, img, MemControllerParams{}, true);
    MemController dram("dram", eq, img, dramControllerParams(), false);
    Hierarchy hier("caches", eq, img, 1, HierarchyParams{}, pm, dram);

    hier.prewarmL2(pmBase, pmBase + 4 * lineBytes);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(hier.l2State(pmBase + i * lineBytes),
                  CoherenceState::Shared);
        EXPECT_FALSE(hier.l2Dirty(pmBase + i * lineBytes));
    }
    // A warm load costs an L2 hit, not a PM read.
    bool done = false;
    ASSERT_TRUE(hier.tryLoad(0, pmBase, [&] { done = true; }));
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(pm.numReads.value(), 0.0);
}

TEST(PersistOrder, InterlockFlagDisablesDrainPoints)
{
    EventQueue eq;
    MemoryImage img;
    MemController pm("pm", eq, img, MemControllerParams{}, true);
    MemController dram("dram", eq, img, dramControllerParams(), false);
    HierarchyParams params;
    params.persistInterlocks = false;
    params.l1Size = 256; // force evictions
    Hierarchy hier("caches", eq, img, 1, params, pm, dram);

    bool recorderCalled = false;
    hier.setDrainPointRecorder(0, [&] {
        recorderCalled = true;
        return Hierarchy::Clearance{};
    });

    // Dirty three conflicting lines; the eviction would record a
    // drain point if interlocks were enabled.
    for (unsigned i = 0; i < 3; ++i) {
        bool done = false;
        while (!hier.tryStore(0, pmBase + i * 128, i, [&] {
            done = true;
        }))
            eq.serviceOne();
        while (!done)
            ASSERT_TRUE(eq.serviceOne());
    }
    eq.run();
    EXPECT_FALSE(recorderCalled);
}

} // namespace
} // namespace strand
