/**
 * @file
 * Unit tests for the functional memory image: architectural vs
 * persisted views, line snapshots, and crash semantics.
 */

#include <gtest/gtest.h>

#include <map>

#include "mem/memory_image.hh"

namespace strand
{
namespace
{

constexpr Addr pmLine = pmBase + 0x1000;

TEST(AddressMap, LineAndWordHelpers)
{
    EXPECT_EQ(lineAlign(pmBase + 100), pmBase + 64);
    EXPECT_EQ(wordAlign(pmBase + 100), pmBase + 96);
    EXPECT_EQ(wordIndex(pmBase + 100), 4u);
    EXPECT_TRUE(isPersistentAddr(pmBase));
    EXPECT_TRUE(isPersistentAddr(pmBase + pmSize - 1));
    EXPECT_FALSE(isPersistentAddr(pmBase - 1));
    EXPECT_FALSE(isPersistentAddr(dramBase));
}

TEST(MemoryImage, ArchWriteReadRoundTrip)
{
    MemoryImage img;
    EXPECT_FALSE(img.archContains(pmLine));
    EXPECT_EQ(img.readArch(pmLine), 0u);
    img.writeArch(pmLine, 0xdeadbeef);
    EXPECT_TRUE(img.archContains(pmLine));
    EXPECT_EQ(img.readArch(pmLine), 0xdeadbeefu);
    // Unaligned access resolves to the containing word.
    EXPECT_EQ(img.readArch(pmLine + 3), 0xdeadbeefu);
}

TEST(MemoryImage, SnapshotCapturesOnlyWrittenWords)
{
    MemoryImage img;
    img.writeArch(pmLine + 0, 11);
    img.writeArch(pmLine + 16, 22);
    LineData snap = img.snapshotLine(pmLine + 16);
    EXPECT_EQ(snap.lineAddr, pmLine);
    EXPECT_TRUE(snap.valid(0));
    EXPECT_FALSE(snap.valid(1));
    EXPECT_TRUE(snap.valid(2));
    EXPECT_EQ(snap.words[0], 11u);
    EXPECT_EQ(snap.words[2], 22u);
}

TEST(MemoryImage, PersistAppliesSnapshotNotLaterStores)
{
    MemoryImage img;
    img.writeArch(pmLine, 1);
    LineData snap = img.snapshotLine(pmLine);
    // A later architectural store must not leak into the snapshot.
    img.writeArch(pmLine, 2);
    img.persistLine(snap);
    EXPECT_EQ(img.readPersisted(pmLine), 1u);
    EXPECT_EQ(img.readArch(pmLine), 2u);
}

TEST(MemoryImage, PersistedViewStartsEmpty)
{
    MemoryImage img;
    img.writeArch(pmLine, 42);
    EXPECT_FALSE(img.persistedContains(pmLine));
    EXPECT_EQ(img.readPersisted(pmLine), 0u);
}

TEST(MemoryImage, CrashDiscardsUnpersistedData)
{
    MemoryImage img;
    img.writeArch(pmLine, 1);
    img.persistLine(img.snapshotLine(pmLine));
    img.writeArch(pmLine, 2);
    img.writeArch(pmLine + 8, 99); // never persisted

    img.crash();

    // Post-crash architectural state equals the persisted view.
    EXPECT_EQ(img.readArch(pmLine), 1u);
    EXPECT_FALSE(img.archContains(pmLine + 8));
}

TEST(MemoryImage, PersistToVolatileAddressPanics)
{
    MemoryImage img;
    img.writeArch(dramBase + 64, 5);
    LineData snap = img.snapshotLine(dramBase + 64);
    EXPECT_THROW(img.persistLine(snap), std::logic_error);
}

TEST(MemoryImage, EmptySnapshotPersistIsNoop)
{
    MemoryImage img;
    LineData empty;
    empty.lineAddr = dramBase; // invalid range but no valid words
    EXPECT_NO_THROW(img.persistLine(empty));
    EXPECT_EQ(img.persistedWords(), 0u);
}

TEST(MemoryImage, LineDataSetAndValidMask)
{
    LineData data;
    data.set(0, 7);
    data.set(7, 9);
    EXPECT_TRUE(data.valid(0));
    EXPECT_TRUE(data.valid(7));
    EXPECT_FALSE(data.valid(3));
    EXPECT_THROW(data.set(8, 1), std::logic_error);
}

TEST(MemoryImage, ClonePersistedTornRevertsUnadmittedWords)
{
    MemoryImage img;
    // Word 0 persists once before the torn admission; word 1 never
    // persisted before it.
    img.writeArch(pmLine + 0, 1);
    img.persistLine(img.snapshotLine(pmLine));
    img.writeArch(pmLine + 0, 2);
    img.writeArch(pmLine + 8, 3);
    img.persistLine(img.snapshotLine(pmLine)); // the torn admission
    ASSERT_EQ(img.lastAdmissionMask(), 0b11u);

    // Admit only word 1: word 0 reverts to its pre-admission value.
    MemoryImage tornHigh = img.clonePersistedTorn(0b10);
    EXPECT_EQ(tornHigh.readPersisted(pmLine + 0), 1u);
    EXPECT_EQ(tornHigh.readPersisted(pmLine + 8), 3u);

    // Admit only word 0: word 1 had no pre-image, so it vanishes
    // from both the persisted and the post-crash architectural view.
    MemoryImage tornLow = img.clonePersistedTorn(0b01);
    EXPECT_EQ(tornLow.readPersisted(pmLine + 0), 2u);
    EXPECT_FALSE(tornLow.persistedContains(pmLine + 8));
    EXPECT_FALSE(tornLow.archContains(pmLine + 8));

    // A full mask admits everything; the source image is untouched.
    MemoryImage full = img.clonePersistedTorn(0xff);
    EXPECT_EQ(full.readPersisted(pmLine + 0), 2u);
    EXPECT_EQ(full.readPersisted(pmLine + 8), 3u);
    EXPECT_EQ(img.readPersisted(pmLine + 0), 2u);
    EXPECT_EQ(img.readPersisted(pmLine + 8), 3u);
}

TEST(MemoryImage, ClonePersistedTornWithoutAdmissionIsPlainClone)
{
    MemoryImage img;
    img.writeDurable(pmLine, 7);
    MemoryImage torn = img.clonePersistedTorn(0);
    EXPECT_EQ(torn.readPersisted(pmLine), 7u);
    EXPECT_EQ(torn.readArch(pmLine), 7u);
}

TEST(WordStore, SparseWritesAcrossPageBoundaries)
{
    // Words straddling a 4 KiB page boundary land in different pages
    // of the sparse store; neighbors within the same pages stay
    // unoccupied and read as zero.
    MemoryImage img;
    const Addr boundary = pmBase + WordStore::pageBytes;
    img.writeArch(boundary - wordBytes, 0x11);
    img.writeArch(boundary, 0x22);
    EXPECT_EQ(img.readArch(boundary - wordBytes), 0x11u);
    EXPECT_EQ(img.readArch(boundary), 0x22u);
    EXPECT_EQ(img.archWords(), 2u);
    EXPECT_FALSE(img.archContains(boundary - 2 * wordBytes));
    EXPECT_FALSE(img.archContains(boundary + wordBytes));
    EXPECT_EQ(img.readArch(boundary + wordBytes), 0u);

    // Widely scattered pages: one word each, no cross-talk.
    for (unsigned i = 0; i < 64; ++i)
        img.writeArch(pmBase + i * 16 * WordStore::pageBytes, i + 1);
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_EQ(
            img.readArch(pmBase + i * 16 * WordStore::pageBytes),
            i + 1);
    }
    EXPECT_EQ(img.archWords(), 66u);
}

TEST(WordStore, SnapshotAndPersistRoundTripNearPageEdges)
{
    // Cache lines never span pages (pageBytes is a multiple of
    // lineBytes), so the one-page-lookup fast path in snapshotLine /
    // persistLine must behave identically for the first and last
    // line of a page.
    MemoryImage img;
    const Addr lastLine =
        pmBase + WordStore::pageBytes - lineBytes;
    const Addr firstLine = pmBase + WordStore::pageBytes;
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        img.writeArch(lastLine + w * wordBytes, 100 + w);
        img.writeArch(firstLine + w * wordBytes, 200 + w);
    }
    img.persistLine(img.snapshotLine(lastLine));
    img.persistLine(img.snapshotLine(firstLine));
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        EXPECT_EQ(img.readPersisted(lastLine + w * wordBytes),
                  100u + w);
        EXPECT_EQ(img.readPersisted(firstLine + w * wordBytes),
                  200u + w);
    }
    EXPECT_EQ(img.persistedWords(), 2u * wordsPerLine);
}

TEST(WordStore, ForEachEnumeratesEveryOccupiedWordOnce)
{
    MemoryImage img;
    // Two partial lines in different pages plus one full line.
    img.writeDurable(pmLine, 1);
    img.writeDurable(pmLine + 24, 2);
    img.writeDurable(pmLine + 4 * WordStore::pageBytes, 3);
    std::map<Addr, std::uint64_t> seen;
    img.forEachPersisted([&seen](Addr addr, std::uint64_t value) {
        EXPECT_TRUE(seen.emplace(addr, value).second);
    });
    std::map<Addr, std::uint64_t> expected{
        {pmLine, 1},
        {pmLine + 24, 2},
        {pmLine + 4 * WordStore::pageBytes, 3},
    };
    EXPECT_EQ(seen, expected);
}

TEST(WordStore, TornCloneMatchesWordMapSemanticsOnPagedStore)
{
    // The paged store must reproduce the word-map semantics
    // ClonePersistedTornRevertsUnadmittedWords pins down, here with
    // the torn line sitting at the very end of a page and the
    // pre-image of one word living only in an earlier admission.
    MemoryImage img;
    const Addr line = pmBase + 7 * WordStore::pageBytes - lineBytes;
    img.writeArch(line + 0, 1);
    img.persistLine(img.snapshotLine(line));
    img.writeArch(line + 0, 2);
    img.writeArch(line + 8, 3);
    img.persistLine(img.snapshotLine(line));
    ASSERT_EQ(img.lastAdmissionMask(), 0b11u);

    MemoryImage torn = img.clonePersistedTorn(0b10);
    EXPECT_EQ(torn.readPersisted(line + 0), 1u);
    EXPECT_EQ(torn.readPersisted(line + 8), 3u);

    // Reverting a word with no pre-image erases it from the page;
    // the slot reads as zero and reports unoccupied.
    MemoryImage tornLow = img.clonePersistedTorn(0b01);
    EXPECT_EQ(tornLow.readPersisted(line + 0), 2u);
    EXPECT_FALSE(tornLow.persistedContains(line + 8));
    EXPECT_EQ(tornLow.readPersisted(line + 8), 0u);
    EXPECT_EQ(tornLow.persistedWords(), 1u);

    // Clones deep-copy pages: writing the clone leaves the source
    // image untouched.
    torn.writeDurable(line + 16, 77);
    EXPECT_FALSE(img.persistedContains(line + 16));
}

TEST(WordStore, TornMaskSpanningPageBoundaryRevertsBothSides)
{
    // Admissions on the last line of one page and the first line of
    // the next: the torn-word revert walks prevValid/prevWords for a
    // line whose page neighbours hold earlier admissions. The
    // boundary must not leak reverts into the adjacent page, and the
    // erase path must vacate the first/last slot of a page cleanly.
    MemoryImage img;
    const Addr boundary = pmBase + 3 * WordStore::pageBytes;
    const Addr lastLine = boundary - lineBytes;
    const Addr firstLine = boundary;

    // Earlier admission fills the last line of the low page.
    for (unsigned w = 0; w < wordsPerLine; ++w)
        img.writeArch(lastLine + w * wordBytes, 100 + w);
    img.persistLine(img.snapshotLine(lastLine));

    // The torn admission sits on the first line of the high page:
    // word 0 has a pre-image from an earlier admission, word 7 does
    // not.
    img.writeArch(firstLine + 0, 1);
    img.persistLine(img.snapshotLine(firstLine));
    img.writeArch(firstLine + 0, 2);
    img.writeArch(firstLine + 7 * wordBytes, 3);
    img.persistLine(img.snapshotLine(firstLine));
    ASSERT_EQ(img.lastAdmissionMask(), 0b1000'0001u);

    // Admit nothing of the final line: word 0 reverts to its
    // pre-image, word 7 is erased from the high page's first slots.
    MemoryImage torn = img.clonePersistedTorn(0);
    EXPECT_EQ(torn.readPersisted(firstLine + 0), 1u);
    EXPECT_FALSE(torn.persistedContains(firstLine + 7 * wordBytes));
    // The low page — the other side of the boundary — is untouched.
    for (unsigned w = 0; w < wordsPerLine; ++w)
        EXPECT_EQ(torn.readPersisted(lastLine + w * wordBytes),
                  100u + w);
    EXPECT_EQ(torn.persistedWords(), wordsPerLine + 1u);

    // Mirror image: tear an admission on the LAST line of the low
    // page with the high page already populated.
    MemoryImage mirror;
    mirror.writeArch(firstLine, 55);
    mirror.persistLine(mirror.snapshotLine(firstLine));
    mirror.writeArch(lastLine + 7 * wordBytes, 9);
    mirror.persistLine(mirror.snapshotLine(lastLine));
    MemoryImage mirrorTorn = mirror.clonePersistedTorn(0);
    EXPECT_FALSE(
        mirrorTorn.persistedContains(lastLine + 7 * wordBytes));
    EXPECT_EQ(mirrorTorn.readPersisted(firstLine), 55u);
    EXPECT_EQ(mirrorTorn.persistedWords(), 1u);
}

TEST(MemoryImage, UndoAdmissionRestoresPreAdmissionImage)
{
    // The forked harness rewinds a completed run's image by undoing
    // admissions newest-first. One step of that: fork the image
    // mid-admission (pre-image recorded, line admitted), undo, and
    // land exactly on the pre-admission persisted state.
    MemoryImage img;
    img.writeArch(pmLine + 0, 1);
    img.persistLine(img.snapshotLine(pmLine));
    MemoryImage before = img; // fork: pre-admission state

    img.writeArch(pmLine + 0, 2);
    img.writeArch(pmLine + 8, 3);
    img.persistLine(img.snapshotLine(pmLine)); // the admission
    MemoryImage::AdmissionUndo undo = img.lastAdmissionUndo();

    MemoryImage rewound = img; // fork: post-admission state
    rewound.undoAdmission(undo);
    EXPECT_EQ(rewound.readPersisted(pmLine + 0), 1u);
    EXPECT_FALSE(rewound.persistedContains(pmLine + 8));
    EXPECT_EQ(rewound.persistedWords(), before.persistedWords());
    // The source fork is untouched by the rewind.
    EXPECT_EQ(img.readPersisted(pmLine + 0), 2u);
    EXPECT_EQ(img.readPersisted(pmLine + 8), 3u);
}

TEST(MemoryImage, UndoAdmissionsNewestFirstAcrossPages)
{
    // Three admissions on two pages, undone newest-first, must strip
    // the image back to empty — including vacating a page whose only
    // occupant came from an undone admission.
    MemoryImage img;
    const Addr lineA = pmBase + WordStore::pageBytes - lineBytes;
    const Addr lineB = pmBase + WordStore::pageBytes;
    std::vector<MemoryImage::AdmissionUndo> undos;

    img.writeArch(lineA, 1);
    img.persistLine(img.snapshotLine(lineA));
    undos.push_back(img.lastAdmissionUndo());
    img.writeArch(lineB, 2);
    img.persistLine(img.snapshotLine(lineB));
    undos.push_back(img.lastAdmissionUndo());
    img.writeArch(lineA, 3);
    img.persistLine(img.snapshotLine(lineA));
    undos.push_back(img.lastAdmissionUndo());

    img.undoAdmission(undos[2]);
    EXPECT_EQ(img.readPersisted(lineA), 1u);
    img.undoAdmission(undos[1]);
    EXPECT_FALSE(img.persistedContains(lineB));
    img.undoAdmission(undos[0]);
    EXPECT_FALSE(img.persistedContains(lineA));
    EXPECT_EQ(img.persistedWords(), 0u);
}

TEST(MemoryImage, SetLastAdmissionRebindsTornCloneAfterRewind)
{
    // After rewinding past an admission, the forked harness rebinds
    // lastAdmission to the newest remaining undo so torn clones tear
    // the RIGHT line — the same line a run crashed at that point
    // would have torn.
    MemoryImage img;
    img.writeArch(pmLine + 0, 1);
    img.writeArch(pmLine + 8, 2);
    img.persistLine(img.snapshotLine(pmLine));
    MemoryImage::AdmissionUndo first = img.lastAdmissionUndo();
    MemoryImage atFirst = img; // oracle: image right after admission 1

    img.writeArch(pmLine + 64, 9);
    img.persistLine(img.snapshotLine(pmLine + 64));

    MemoryImage rewound = img;
    rewound.undoAdmission(rewound.lastAdmissionUndo());
    rewound.setLastAdmission(first);
    EXPECT_EQ(rewound.lastAdmissionMask(), atFirst.lastAdmissionMask());

    MemoryImage tornRewound = rewound.clonePersistedTorn(0b01);
    MemoryImage tornOracle = atFirst.clonePersistedTorn(0b01);
    EXPECT_EQ(tornRewound.readPersisted(pmLine + 0),
              tornOracle.readPersisted(pmLine + 0));
    EXPECT_EQ(tornRewound.persistedContains(pmLine + 8),
              tornOracle.persistedContains(pmLine + 8));
    EXPECT_EQ(tornRewound.persistedWords(),
              tornOracle.persistedWords());
}

TEST(MemoryImage, AdmissionRingKeepsTheNewestAdmissions)
{
    // The ring models the ADR buffer: partial-drain media faults can
    // only strike what was still in flight, so the image retains the
    // last admissionRingDepth undos, oldest evicted first.
    MemoryImage img;
    const unsigned depth = MemoryImage::admissionRingDepth;
    for (unsigned i = 0; i < depth + 4; ++i) {
        img.writeArch(pmLine + i * lineBytes, i + 1);
        img.persistLine(img.snapshotLine(pmLine + i * lineBytes));
    }
    const auto &ring = img.recentAdmissions();
    ASSERT_EQ(ring.size(), depth);
    EXPECT_EQ(ring.front().lineAddr, pmLine + 4 * lineBytes);
    EXPECT_EQ(ring.back().lineAddr,
              pmLine + (depth + 3) * lineBytes);

    // Undoing ring entries newest-first (the partial-drain model)
    // reconstructs earlier admission-boundary images exactly.
    MemoryImage snapshot = img;
    unsigned dropped = 0;
    while (dropped < 2) {
        snapshot.undoAdmission(ring[ring.size() - 1 - dropped]);
        ++dropped;
    }
    EXPECT_FALSE(
        snapshot.persistedContains(pmLine + (depth + 3) * lineBytes));
    EXPECT_FALSE(
        snapshot.persistedContains(pmLine + (depth + 2) * lineBytes));
    EXPECT_EQ(snapshot.readPersisted(pmLine + (depth + 1) * lineBytes),
              depth + 2);
}

TEST(MemoryImage, PoisonScramblesAndSticksThroughPartialRewrites)
{
    MemoryImage img;
    img.writeDurable(pmLine, 7);
    img.writeDurable(pmLine + 8, 9);
    img.poisonLine(pmLine + 8); // any address in the line
    EXPECT_TRUE(img.isPoisoned(pmLine));
    EXPECT_TRUE(img.isPoisoned(pmLine + 56));
    EXPECT_FALSE(img.isPoisoned(pmLine + lineBytes));
    // Occupied words are scrambled so code that trusts them fails
    // loudly instead of reading back clean values.
    EXPECT_NE(img.readPersisted(pmLine), 7u);
    EXPECT_NE(img.readPersisted(pmLine + 8), 9u);
    ASSERT_EQ(img.poisonedLines().size(), 1u);
    EXPECT_EQ(*img.poisonedLines().begin(), pmLine);

    // Poison is sticky: a single-word durable rewrite repairs that
    // word's content but not the line's ECC block, so the marker
    // survives and recovery's residual pass still fences the line.
    img.writeDurable(pmLine, 7);
    EXPECT_EQ(img.readPersisted(pmLine), 7u);
    EXPECT_TRUE(img.isPoisoned(pmLine));
    EXPECT_NE(img.readPersisted(pmLine + 8), 9u);
}

TEST(MemoryImage, CorruptWordFlipsPersistedBits)
{
    MemoryImage img;
    img.writeDurable(pmLine, 0xff);
    img.corruptWord(pmLine, 1ull << 3);
    EXPECT_EQ(img.readPersisted(pmLine), 0xffull ^ (1ull << 3));
    // Flips are silent: no poison marker, nothing for the residual
    // pass to fence — exactly the class only checksums can catch.
    EXPECT_FALSE(img.isPoisoned(pmLine));
}

TEST(MemoryImage, OverlappingPersistsLastWriterWins)
{
    MemoryImage img;
    img.writeArch(pmLine, 1);
    LineData first = img.snapshotLine(pmLine);
    img.writeArch(pmLine, 2);
    LineData second = img.snapshotLine(pmLine);
    img.persistLine(first);
    img.persistLine(second);
    EXPECT_EQ(img.readPersisted(pmLine), 2u);
    // Reversed order models a strong-persist-atomicity violation; the
    // image records whatever order the timing model produced.
    img.persistLine(first);
    EXPECT_EQ(img.readPersisted(pmLine), 1u);
}

} // namespace
} // namespace strand
