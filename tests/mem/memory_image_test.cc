/**
 * @file
 * Unit tests for the functional memory image: architectural vs
 * persisted views, line snapshots, and crash semantics.
 */

#include <gtest/gtest.h>

#include <map>

#include "mem/memory_image.hh"

namespace strand
{
namespace
{

constexpr Addr pmLine = pmBase + 0x1000;

TEST(AddressMap, LineAndWordHelpers)
{
    EXPECT_EQ(lineAlign(pmBase + 100), pmBase + 64);
    EXPECT_EQ(wordAlign(pmBase + 100), pmBase + 96);
    EXPECT_EQ(wordIndex(pmBase + 100), 4u);
    EXPECT_TRUE(isPersistentAddr(pmBase));
    EXPECT_TRUE(isPersistentAddr(pmBase + pmSize - 1));
    EXPECT_FALSE(isPersistentAddr(pmBase - 1));
    EXPECT_FALSE(isPersistentAddr(dramBase));
}

TEST(MemoryImage, ArchWriteReadRoundTrip)
{
    MemoryImage img;
    EXPECT_FALSE(img.archContains(pmLine));
    EXPECT_EQ(img.readArch(pmLine), 0u);
    img.writeArch(pmLine, 0xdeadbeef);
    EXPECT_TRUE(img.archContains(pmLine));
    EXPECT_EQ(img.readArch(pmLine), 0xdeadbeefu);
    // Unaligned access resolves to the containing word.
    EXPECT_EQ(img.readArch(pmLine + 3), 0xdeadbeefu);
}

TEST(MemoryImage, SnapshotCapturesOnlyWrittenWords)
{
    MemoryImage img;
    img.writeArch(pmLine + 0, 11);
    img.writeArch(pmLine + 16, 22);
    LineData snap = img.snapshotLine(pmLine + 16);
    EXPECT_EQ(snap.lineAddr, pmLine);
    EXPECT_TRUE(snap.valid(0));
    EXPECT_FALSE(snap.valid(1));
    EXPECT_TRUE(snap.valid(2));
    EXPECT_EQ(snap.words[0], 11u);
    EXPECT_EQ(snap.words[2], 22u);
}

TEST(MemoryImage, PersistAppliesSnapshotNotLaterStores)
{
    MemoryImage img;
    img.writeArch(pmLine, 1);
    LineData snap = img.snapshotLine(pmLine);
    // A later architectural store must not leak into the snapshot.
    img.writeArch(pmLine, 2);
    img.persistLine(snap);
    EXPECT_EQ(img.readPersisted(pmLine), 1u);
    EXPECT_EQ(img.readArch(pmLine), 2u);
}

TEST(MemoryImage, PersistedViewStartsEmpty)
{
    MemoryImage img;
    img.writeArch(pmLine, 42);
    EXPECT_FALSE(img.persistedContains(pmLine));
    EXPECT_EQ(img.readPersisted(pmLine), 0u);
}

TEST(MemoryImage, CrashDiscardsUnpersistedData)
{
    MemoryImage img;
    img.writeArch(pmLine, 1);
    img.persistLine(img.snapshotLine(pmLine));
    img.writeArch(pmLine, 2);
    img.writeArch(pmLine + 8, 99); // never persisted

    img.crash();

    // Post-crash architectural state equals the persisted view.
    EXPECT_EQ(img.readArch(pmLine), 1u);
    EXPECT_FALSE(img.archContains(pmLine + 8));
}

TEST(MemoryImage, PersistToVolatileAddressPanics)
{
    MemoryImage img;
    img.writeArch(dramBase + 64, 5);
    LineData snap = img.snapshotLine(dramBase + 64);
    EXPECT_THROW(img.persistLine(snap), std::logic_error);
}

TEST(MemoryImage, EmptySnapshotPersistIsNoop)
{
    MemoryImage img;
    LineData empty;
    empty.lineAddr = dramBase; // invalid range but no valid words
    EXPECT_NO_THROW(img.persistLine(empty));
    EXPECT_EQ(img.persistedWords(), 0u);
}

TEST(MemoryImage, LineDataSetAndValidMask)
{
    LineData data;
    data.set(0, 7);
    data.set(7, 9);
    EXPECT_TRUE(data.valid(0));
    EXPECT_TRUE(data.valid(7));
    EXPECT_FALSE(data.valid(3));
    EXPECT_THROW(data.set(8, 1), std::logic_error);
}

TEST(MemoryImage, ClonePersistedTornRevertsUnadmittedWords)
{
    MemoryImage img;
    // Word 0 persists once before the torn admission; word 1 never
    // persisted before it.
    img.writeArch(pmLine + 0, 1);
    img.persistLine(img.snapshotLine(pmLine));
    img.writeArch(pmLine + 0, 2);
    img.writeArch(pmLine + 8, 3);
    img.persistLine(img.snapshotLine(pmLine)); // the torn admission
    ASSERT_EQ(img.lastAdmissionMask(), 0b11u);

    // Admit only word 1: word 0 reverts to its pre-admission value.
    MemoryImage tornHigh = img.clonePersistedTorn(0b10);
    EXPECT_EQ(tornHigh.readPersisted(pmLine + 0), 1u);
    EXPECT_EQ(tornHigh.readPersisted(pmLine + 8), 3u);

    // Admit only word 0: word 1 had no pre-image, so it vanishes
    // from both the persisted and the post-crash architectural view.
    MemoryImage tornLow = img.clonePersistedTorn(0b01);
    EXPECT_EQ(tornLow.readPersisted(pmLine + 0), 2u);
    EXPECT_FALSE(tornLow.persistedContains(pmLine + 8));
    EXPECT_FALSE(tornLow.archContains(pmLine + 8));

    // A full mask admits everything; the source image is untouched.
    MemoryImage full = img.clonePersistedTorn(0xff);
    EXPECT_EQ(full.readPersisted(pmLine + 0), 2u);
    EXPECT_EQ(full.readPersisted(pmLine + 8), 3u);
    EXPECT_EQ(img.readPersisted(pmLine + 0), 2u);
    EXPECT_EQ(img.readPersisted(pmLine + 8), 3u);
}

TEST(MemoryImage, ClonePersistedTornWithoutAdmissionIsPlainClone)
{
    MemoryImage img;
    img.writeDurable(pmLine, 7);
    MemoryImage torn = img.clonePersistedTorn(0);
    EXPECT_EQ(torn.readPersisted(pmLine), 7u);
    EXPECT_EQ(torn.readArch(pmLine), 7u);
}

TEST(WordStore, SparseWritesAcrossPageBoundaries)
{
    // Words straddling a 4 KiB page boundary land in different pages
    // of the sparse store; neighbors within the same pages stay
    // unoccupied and read as zero.
    MemoryImage img;
    const Addr boundary = pmBase + WordStore::pageBytes;
    img.writeArch(boundary - wordBytes, 0x11);
    img.writeArch(boundary, 0x22);
    EXPECT_EQ(img.readArch(boundary - wordBytes), 0x11u);
    EXPECT_EQ(img.readArch(boundary), 0x22u);
    EXPECT_EQ(img.archWords(), 2u);
    EXPECT_FALSE(img.archContains(boundary - 2 * wordBytes));
    EXPECT_FALSE(img.archContains(boundary + wordBytes));
    EXPECT_EQ(img.readArch(boundary + wordBytes), 0u);

    // Widely scattered pages: one word each, no cross-talk.
    for (unsigned i = 0; i < 64; ++i)
        img.writeArch(pmBase + i * 16 * WordStore::pageBytes, i + 1);
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_EQ(
            img.readArch(pmBase + i * 16 * WordStore::pageBytes),
            i + 1);
    }
    EXPECT_EQ(img.archWords(), 66u);
}

TEST(WordStore, SnapshotAndPersistRoundTripNearPageEdges)
{
    // Cache lines never span pages (pageBytes is a multiple of
    // lineBytes), so the one-page-lookup fast path in snapshotLine /
    // persistLine must behave identically for the first and last
    // line of a page.
    MemoryImage img;
    const Addr lastLine =
        pmBase + WordStore::pageBytes - lineBytes;
    const Addr firstLine = pmBase + WordStore::pageBytes;
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        img.writeArch(lastLine + w * wordBytes, 100 + w);
        img.writeArch(firstLine + w * wordBytes, 200 + w);
    }
    img.persistLine(img.snapshotLine(lastLine));
    img.persistLine(img.snapshotLine(firstLine));
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        EXPECT_EQ(img.readPersisted(lastLine + w * wordBytes),
                  100u + w);
        EXPECT_EQ(img.readPersisted(firstLine + w * wordBytes),
                  200u + w);
    }
    EXPECT_EQ(img.persistedWords(), 2u * wordsPerLine);
}

TEST(WordStore, ForEachEnumeratesEveryOccupiedWordOnce)
{
    MemoryImage img;
    // Two partial lines in different pages plus one full line.
    img.writeDurable(pmLine, 1);
    img.writeDurable(pmLine + 24, 2);
    img.writeDurable(pmLine + 4 * WordStore::pageBytes, 3);
    std::map<Addr, std::uint64_t> seen;
    img.forEachPersisted([&seen](Addr addr, std::uint64_t value) {
        EXPECT_TRUE(seen.emplace(addr, value).second);
    });
    std::map<Addr, std::uint64_t> expected{
        {pmLine, 1},
        {pmLine + 24, 2},
        {pmLine + 4 * WordStore::pageBytes, 3},
    };
    EXPECT_EQ(seen, expected);
}

TEST(WordStore, TornCloneMatchesWordMapSemanticsOnPagedStore)
{
    // The paged store must reproduce the word-map semantics
    // ClonePersistedTornRevertsUnadmittedWords pins down, here with
    // the torn line sitting at the very end of a page and the
    // pre-image of one word living only in an earlier admission.
    MemoryImage img;
    const Addr line = pmBase + 7 * WordStore::pageBytes - lineBytes;
    img.writeArch(line + 0, 1);
    img.persistLine(img.snapshotLine(line));
    img.writeArch(line + 0, 2);
    img.writeArch(line + 8, 3);
    img.persistLine(img.snapshotLine(line));
    ASSERT_EQ(img.lastAdmissionMask(), 0b11u);

    MemoryImage torn = img.clonePersistedTorn(0b10);
    EXPECT_EQ(torn.readPersisted(line + 0), 1u);
    EXPECT_EQ(torn.readPersisted(line + 8), 3u);

    // Reverting a word with no pre-image erases it from the page;
    // the slot reads as zero and reports unoccupied.
    MemoryImage tornLow = img.clonePersistedTorn(0b01);
    EXPECT_EQ(tornLow.readPersisted(line + 0), 2u);
    EXPECT_FALSE(tornLow.persistedContains(line + 8));
    EXPECT_EQ(tornLow.readPersisted(line + 8), 0u);
    EXPECT_EQ(tornLow.persistedWords(), 1u);

    // Clones deep-copy pages: writing the clone leaves the source
    // image untouched.
    torn.writeDurable(line + 16, 77);
    EXPECT_FALSE(img.persistedContains(line + 16));
}

TEST(MemoryImage, OverlappingPersistsLastWriterWins)
{
    MemoryImage img;
    img.writeArch(pmLine, 1);
    LineData first = img.snapshotLine(pmLine);
    img.writeArch(pmLine, 2);
    LineData second = img.snapshotLine(pmLine);
    img.persistLine(first);
    img.persistLine(second);
    EXPECT_EQ(img.readPersisted(pmLine), 2u);
    // Reversed order models a strong-persist-atomicity violation; the
    // image records whatever order the timing model produced.
    img.persistLine(first);
    EXPECT_EQ(img.readPersisted(pmLine), 1u);
}

} // namespace
} // namespace strand
