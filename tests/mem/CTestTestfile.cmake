# CMake generated Testfile for 
# Source directory: /root/repo/tests/mem
# Build directory: /root/repo/tests/mem
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/mem/test_memory_image[1]_include.cmake")
include("/root/repo/tests/mem/test_mem_controller[1]_include.cmake")
include("/root/repo/tests/mem/test_persist_order[1]_include.cmake")
