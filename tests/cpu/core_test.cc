/**
 * @file
 * Unit tests for the core timing model: dispatch/commit flow, store
 * queue behaviour, persist-engine cross-gating, lock replay, stall
 * accounting, and the end-to-end contrast between SFENCE and persist
 * barriers that drives the paper's results.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "persist/design.hh"

namespace strand
{
namespace
{

constexpr Addr lineA = pmBase + 0x000;
constexpr Addr lineB = pmBase + 0x400;

class CoreFixture : public ::testing::Test
{
  protected:
    void
    build(HwDesign design, unsigned numCores = 1,
          CoreParams cp = CoreParams{})
    {
        pm = std::make_unique<MemController>("pm", eq, img,
                                             MemControllerParams{}, true);
        dram = std::make_unique<MemController>(
            "dram", eq, img, dramControllerParams(), false);
        hier = std::make_unique<Hierarchy>("caches", eq, img, numCores,
                                           HierarchyParams{}, *pm, *dram);
        cores.clear();
        for (unsigned i = 0; i < numCores; ++i) {
            auto engine = makePersistEngine(
                design, "engine" + std::to_string(i), eq, i, *hier,
                EngineConfig{});
            cores.push_back(std::make_unique<Core>(
                "cpu" + std::to_string(i), eq, i, *hier,
                std::move(engine), locks, cp));
        }
    }

    /** Run all cores to completion and return elapsed ticks. */
    Tick
    run(std::vector<OpStream> streams)
    {
        Tick begin = eq.curTick();
        for (std::size_t i = 0; i < cores.size(); ++i) {
            cores[i]->setStream(std::move(streams.at(i)));
            cores[i]->start();
        }
        eq.run();
        for (auto &core : cores)
            EXPECT_TRUE(core->finished());
        return eq.curTick() - begin;
    }

    EventQueue eq;
    MemoryImage img;
    LockTable locks;
    std::unique_ptr<MemController> pm;
    std::unique_ptr<MemController> dram;
    std::unique_ptr<Hierarchy> hier;
    std::vector<std::unique_ptr<Core>> cores;
};

TEST_F(CoreFixture, ComputeStreamFinishes)
{
    build(HwDesign::StrandWeaver);
    OpStream stream;
    for (int i = 0; i < 100; ++i)
        stream.push_back(Op::compute(1));
    run({stream});
    EXPECT_EQ(cores[0]->opsCommitted.value(), 100.0);
    // Compute ops execute serially: ~100 cycles plus small slack.
    EXPECT_GE(cores[0]->numCycles.value(), 100.0);
    EXPECT_LT(cores[0]->numCycles.value(), 130.0);
}

TEST_F(CoreFixture, StoresUpdateArchitecturalImage)
{
    build(HwDesign::StrandWeaver);
    OpStream stream;
    stream.push_back(Op::store(lineA, 11));
    stream.push_back(Op::store(lineA + 8, 22));
    run({stream});
    EXPECT_EQ(img.readArch(lineA), 11u);
    EXPECT_EQ(img.readArch(lineA + 8), 22u);
    EXPECT_EQ(cores[0]->storesIssued.value(), 2.0);
}

TEST_F(CoreFixture, ClwbPersistsStoredData)
{
    build(HwDesign::StrandWeaver);
    OpStream stream;
    stream.push_back(Op::store(lineA, 33));
    stream.push_back(Op::clwb(lineA));
    stream.push_back(Op::joinStrand());
    run({stream});
    EXPECT_EQ(img.readPersisted(lineA), 33u);
}

TEST_F(CoreFixture, ClwbWaitsForElderStoreData)
{
    // The CLWB is dispatched in the same cycle as the store; it must
    // still flush the store's value, not stale data.
    build(HwDesign::IntelX86);
    OpStream stream;
    stream.push_back(Op::store(lineA, 44));
    stream.push_back(Op::clwb(lineA));
    stream.push_back(Op::sfence());
    run({stream});
    EXPECT_EQ(img.readPersisted(lineA), 44u);
}

TEST_F(CoreFixture, LoadsComplete)
{
    build(HwDesign::StrandWeaver);
    OpStream stream;
    stream.push_back(Op::load(lineA));
    stream.push_back(Op::load(lineB));
    stream.push_back(Op::compute(1));
    run({stream});
    EXPECT_EQ(cores[0]->loadsIssued.value(), 2.0);
    EXPECT_EQ(cores[0]->opsCommitted.value(), 3.0);
}

TEST_F(CoreFixture, StrandWeaverBeatsIntelOnLogStorePairs)
{
    // The paper's core claim, in miniature: N independent
    // log/update pairs. Intel orders everything with SFENCE; the
    // strand primitives keep pairs independent.
    constexpr int pairs = 16;
    auto intelStream = [&] {
        OpStream s;
        for (int i = 0; i < pairs; ++i) {
            Addr log = pmBase + 0x10000 + i * 64;
            Addr data = pmBase + 0x20000 + i * 64;
            s.push_back(Op::store(log, i));
            s.push_back(Op::clwb(log));
            s.push_back(Op::sfence());
            s.push_back(Op::store(data, i));
            s.push_back(Op::clwb(data));
            s.push_back(Op::sfence());
        }
        return s;
    };
    auto swStream = [&] {
        OpStream s;
        for (int i = 0; i < pairs; ++i) {
            Addr log = pmBase + 0x10000 + i * 64;
            Addr data = pmBase + 0x20000 + i * 64;
            s.push_back(Op::store(log, i));
            s.push_back(Op::clwb(log));
            s.push_back(Op::persistBarrier());
            s.push_back(Op::store(data, i));
            s.push_back(Op::clwb(data));
            s.push_back(Op::newStrand());
        }
        s.push_back(Op::joinStrand());
        return s;
    };

    build(HwDesign::IntelX86);
    Tick intelTime = run({intelStream()});

    build(HwDesign::StrandWeaver);
    Tick swTime = run({swStream()});

    // StrandWeaver must be substantially faster.
    EXPECT_LT(swTime * 3, intelTime * 2); // at least 1.5x
    // Both persisted everything.
    for (int i = 0; i < pairs; ++i) {
        EXPECT_EQ(img.readPersisted(pmBase + 0x10000 + i * 64),
                  static_cast<std::uint64_t>(i));
        EXPECT_EQ(img.readPersisted(pmBase + 0x20000 + i * 64),
                  static_cast<std::uint64_t>(i));
    }
}

TEST_F(CoreFixture, IntelAccumulatesPersistStalls)
{
    build(HwDesign::IntelX86);
    OpStream s;
    for (int i = 0; i < 64; ++i) {
        Addr a = pmBase + 0x30000 + i * 64;
        s.push_back(Op::store(a, i));
        s.push_back(Op::clwb(a));
        s.push_back(Op::sfence());
    }
    run({s});
    EXPECT_GT(cores[0]->persistStallCycles(), 0.0);
}

TEST_F(CoreFixture, LockHandoffFollowsTickets)
{
    build(HwDesign::StrandWeaver, 2);
    // Core 1 holds ticket 0; core 0 must wait for ticket 1 even
    // though it dispatches first.
    OpStream s0;
    s0.push_back(Op::lockAcquire(7, 1));
    s0.push_back(Op::store(lineA, 2));
    s0.push_back(Op::lockRelease(7));
    OpStream s1;
    s1.push_back(Op::compute(50)); // delay before taking the lock
    s1.push_back(Op::lockAcquire(7, 0));
    s1.push_back(Op::store(lineA, 1));
    s1.push_back(Op::lockRelease(7));
    run({s0, s1});
    // Core 0 ran second: its store lands last.
    EXPECT_EQ(img.readArch(lineA), 2u);
    EXPECT_EQ(locks.nextTicket(7), 2u);
    EXPECT_GT(cores[0]->stallCycles.value(
                  static_cast<unsigned>(StallCause::Lock)),
              0.0);
}

TEST_F(CoreFixture, ReleaseWaitsForStoreVisibility)
{
    build(HwDesign::StrandWeaver);
    OpStream s;
    s.push_back(Op::lockAcquire(1, 0));
    s.push_back(Op::store(lineA, 5)); // store miss: slow
    s.push_back(Op::lockRelease(1));
    run({s});
    EXPECT_EQ(img.readArch(lineA), 5u);
    EXPECT_FALSE(locks.held(1));
}

TEST_F(CoreFixture, RobFullStallsAreCounted)
{
    CoreParams cp;
    cp.robEntries = 4;
    build(HwDesign::StrandWeaver, 1, cp);
    OpStream s;
    // Loads occupy the ROB until their (L2-latency) fill returns;
    // a 4-entry ROB backs dispatch up immediately.
    for (int i = 0; i < 64; ++i)
        s.push_back(Op::load(pmBase + 0x50000 + i * 64));
    run({s});
    EXPECT_GT(cores[0]->stallCycles.value(
                  static_cast<unsigned>(StallCause::RobFull)),
              0.0);
}

TEST_F(CoreFixture, FinishedCallbackFires)
{
    build(HwDesign::StrandWeaver);
    bool called = false;
    cores[0]->setFinishedCallback([&] { called = true; });
    run({OpStream{Op::compute(1)}});
    EXPECT_TRUE(called);
}

TEST_F(CoreFixture, NonAtomicIgnoresOrderingPrimitives)
{
    build(HwDesign::NonAtomic);
    OpStream s;
    s.push_back(Op::store(lineA, 1));
    s.push_back(Op::clwb(lineA));
    s.push_back(Op::store(lineB, 2));
    s.push_back(Op::clwb(lineB));
    run({s});
    EXPECT_EQ(img.readPersisted(lineA), 1u);
    EXPECT_EQ(img.readPersisted(lineB), 2u);
}

TEST_F(CoreFixture, SqOccupancyIsSampled)
{
    build(HwDesign::StrandWeaver);
    OpStream s;
    for (int i = 0; i < 10; ++i)
        s.push_back(Op::store(pmBase + 0x40000 + i * 64, i));
    run({s});
    EXPECT_GT(cores[0]->sqOccupancy.samples(), 0u);
}

TEST_F(CoreFixture, LockTableBasics)
{
    LockTable table;
    EXPECT_FALSE(table.held(3));
    EXPECT_FALSE(table.tryAcquire(3, 1)); // wrong ticket
    EXPECT_TRUE(table.tryAcquire(3, 0));
    EXPECT_TRUE(table.held(3));
    EXPECT_FALSE(table.tryAcquire(3, 1)); // held
    table.release(3);
    EXPECT_TRUE(table.tryAcquire(3, 1));
    table.release(3);
    EXPECT_THROW(table.release(3), std::logic_error);
}

} // namespace
} // namespace strand
