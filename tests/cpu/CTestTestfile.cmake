# CMake generated Testfile for 
# Source directory: /root/repo/tests/cpu
# Build directory: /root/repo/tests/cpu
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/cpu/test_core[1]_include.cmake")
