/**
 * @file
 * Crash-consistency matrix: crash-point fault injection across every
 * hardware design and language-level persistency model (plus the
 * §VII redo-logging variant under TXN).
 *
 * Each cell injects crashes at sampled persist-completion points and
 * random ticks, runs the Figure 6 recovery protocol on the persisted
 * snapshot, and validates the result against the recovery oracle and
 * the workload's structural invariants. All recoverable designs must
 * pass every point; NON-ATOMIC (no log/update persist ordering) is
 * expected to fail and its violations are reported as evidence the
 * oracle detects real ordering bugs.
 *
 * The matrix is a SweepSpec of Crash cells executed on SW_JOBS
 * workers; JSON (including per-point violations) lands in
 * bench/out/crash_matrix.json. Sizes scale with SW_OPS / SW_THREADS
 * / SW_CRASH_POINTS; SW_TORN_WORDS additionally tears the final
 * flushed line at every crash point, admitting only that many of its
 * 8-byte words. Matrix cells honour SW_CRASH_FORK (unset: classic
 * two-run), so the same binary run twice gives the forked-vs-two-run
 * determinism diff.
 *
 * Two extra probe cells pin a 512-point budget at a fixed coordinate
 * with the harness mode forced per cell (fork512 / tworun512),
 * measuring the forked-snapshot speedup on identical work; their
 * wall-clock ratio is printed and recorded in the JSON host block.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace strand;

int
main(int argc, char **argv)
{
    int helpRc = 0;
    if (bench::handleArgs(argc, argv,
                          "crash-point fault-injection matrix across "
                          "designs and models",
                          &helpRc))
        return helpRc;
    const unsigned threads = benchThreads(2);
    const unsigned ops = benchOpsPerThread(40);
    const unsigned points = benchCrashPoints(16);
    const unsigned tornWords =
        envConfig().tornWords.value_or(wordsPerLine);

    // Media-fault axis: seeded poison / bit-flip / partial-drain
    // faults struck at every crash point of the "media" variant
    // cells. On by default; explicit all-zero SW_MEDIA_* knobs turn
    // the axis off.
    MediaFaultConfig media;
    media.poisonLines = envConfig().mediaPoison.value_or(1);
    media.bitFlips = envConfig().mediaFlips.value_or(1);
    media.dropAdmissions = envConfig().mediaDrop.value_or(2);
    media.seed = envConfig().mediaSeed.value_or(0xed1a);

    SweepSpec spec;
    spec.name = "crash_matrix";
    for (WorkloadKind kind : {WorkloadKind::Queue,
                              WorkloadKind::Hashmap,
                              WorkloadKind::ArraySwap}) {
        WorkloadParams params;
        params.numThreads = threads;
        params.opsPerThread = ops;
        auto recorded = recordShared(kind, params);

        for (HwDesign design : allDesigns) {
            // The 3 models with undo logging, plus redo under TXN.
            for (PersistencyModel model : allModels) {
                SweepCell &cell = spec.addCrash(recorded, design,
                                                model, points);
                cell.tornWords = tornWords;
            }
            SweepCell &redo = spec.addCrash(
                recorded, design, PersistencyModel::Txn, points);
            redo.config.logStyle = LogStyle::Redo;
            redo.variant = "redo";
            redo.tornWords = tornWords;

            if (!media.any())
                continue;
            // The same coordinates again under media faults: the
            // recoverable cells must salvage every point (verdict
            // FULL or DEGRADED — never silent corruption).
            for (PersistencyModel model : allModels) {
                SweepCell &cell = spec.addCrash(recorded, design,
                                                model, points);
                cell.tornWords = tornWords;
                cell.media = media;
                cell.variant = "media";
            }
            SweepCell &redoMedia = spec.addCrash(
                recorded, design, PersistencyModel::Txn, points);
            redoMedia.config.logStyle = LogStyle::Redo;
            redoMedia.variant = "redo-media";
            redoMedia.tornWords = tornWords;
            redoMedia.media = media;

            if (design != HwDesign::Hops)
                continue;
            // The HOPS media cells again with strict log admission:
            // the knob closes the tolerated modeling gap, so these
            // cells get no tolerance — any lost point is a hard
            // matrix failure.
            for (PersistencyModel model : allModels) {
                SweepCell &strict = spec.addCrash(recorded, design,
                                                  model, points);
                strict.tornWords = tornWords;
                strict.media = media;
                strict.variant = "strict-media";
                strict.config.engine.hopsStrictAdmission = true;
            }
            SweepCell &strictRedo = spec.addCrash(
                recorded, design, PersistencyModel::Txn, points);
            strictRedo.config.logStyle = LogStyle::Redo;
            strictRedo.variant = "strict-redo-media";
            strictRedo.tornWords = tornWords;
            strictRedo.media = media;
            strictRedo.config.engine.hopsStrictAdmission = true;
        }
    }

    // Forked-vs-two-run speedup probe: one coordinate, a 512-point
    // budget, both harness modes pinned per cell. A larger recorded
    // run than the matrix cells so the enumeration can actually fill
    // the budget.
    constexpr unsigned probePoints = 512;
    {
        WorkloadParams params;
        params.numThreads = 2;
        params.opsPerThread = 400;
        auto recorded = recordShared(WorkloadKind::Queue, params);
        SweepCell &tworun =
            spec.addCrash(recorded, HwDesign::StrandWeaver,
                          PersistencyModel::Sfr, probePoints);
        tworun.variant = "tworun512";
        tworun.crashFork = false;
        SweepCell &fork =
            spec.addCrash(recorded, HwDesign::StrandWeaver,
                          PersistencyModel::Sfr, probePoints);
        fork.variant = "fork512";
        fork.crashFork = true;
        // The probe times the forked-snapshot payoff alone; the
        // mid-run determinism self-check (about one extra run tail)
        // stays on for every matrix cell above.
        fork.crashVerifyMidrunFork = false;
    }

    SweepResult result = runSweep(spec);

    std::printf("Crash-consistency matrix (%u threads, %u ops/thread, "
                "%u-point budget per cell",
                threads, ops, points);
    if (tornWords < wordsPerLine)
        std::printf(", torn lines: %u/%u words admitted", tornWords,
                    wordsPerLine);
    if (media.any())
        std::printf(", media: poison<=%u flips<=%u drop<=%u",
                    media.poisonLines, media.bitFlips,
                    media.dropAdmissions);
    std::printf(")\n\n");
    std::printf("%-10s %-16s %-12s %9s %9s %11s %10s %6s %6s\n",
                "workload", "design", "model", "tested", "passed",
                "rolledback", "replayed", "full", "degr");
    bench::rule(94);

    unsigned unexpectedFailures = 0;
    unsigned nonAtomicViolations = 0;
    unsigned hopsGapPoints = 0;
    std::string lastWorkload;
    for (const CellResult &cell : result.cells) {
        if (!lastWorkload.empty() && cell.workload != lastWorkload)
            std::printf("\n");
        lastWorkload = cell.workload;

        std::string labelText =
            cell.variant.empty() ? persistencyModelName(cell.model)
                                 : cell.variant;
        if (cell.variant == "media") {
            labelText = std::string(
                            persistencyModelName(cell.model)) +
                        "+media";
        } else if (cell.variant == "strict-media") {
            labelText = std::string(
                            persistencyModelName(cell.model)) +
                        "+strict";
        } else if (cell.variant == "strict-redo-media") {
            labelText = "redo+strict";
        }
        const char *label = labelText.c_str();
        if (!cell.ok) {
            std::printf("%-10s %-16s %-12s %9s %9s %11s %10s %6s "
                        "%6s  <-- PANIC: %s\n",
                        cell.workload.c_str(),
                        hwDesignName(cell.design), label, "-", "-",
                        "-", "-", "-", "-", cell.error.c_str());
            ++unexpectedFailures;
            continue;
        }

        const CrashCellResult &crash = cell.crash;
        bool expectedFail = cell.design == HwDesign::NonAtomic;
        // HOPS's CLWB-based emulation carries a known whole-line /
        // epoch-batching modeling gap (see EXPERIMENTS.md "Fuzz
        // campaigns"): it does not strictly order a log entry's
        // admission before its guarded update's, so an amplified
        // partial ADR drain can cut the entry while the update
        // survives. Reported but tolerated, exactly as the fuzz
        // campaign tolerates plain-hops trials. The strict-media
        // cells run with hopsStrictAdmission, which closes the gap —
        // they get no tolerance.
        bool tolerateFail =
            cell.design == HwDesign::Hops &&
            (cell.variant == "media" || cell.variant == "redo-media");
        std::printf("%-10s %-16s %-12s %9u %9u %11llu %10llu %6u "
                    "%6u%s\n",
                    cell.workload.c_str(), hwDesignName(cell.design),
                    label, crash.pointsTested, crash.pointsPassed,
                    static_cast<unsigned long long>(
                        crash.totalRolledBack),
                    static_cast<unsigned long long>(
                        crash.totalReplayed),
                    crash.verdictFull, crash.verdictDegraded,
                    crash.allPassed()
                        ? ""
                        : (expectedFail
                               ? "  (expected)"
                               : (tolerateFail
                                      ? "  (known modeling gap)"
                                      : "  <-- FAIL")));
        if (!crash.allPassed()) {
            if (expectedFail) {
                nonAtomicViolations +=
                    crash.pointsTested - crash.pointsPassed;
            } else if (tolerateFail) {
                hopsGapPoints +=
                    crash.pointsTested - crash.pointsPassed;
            } else {
                ++unexpectedFailures;
                for (const CrashPointResult &f : crash.failures)
                    std::printf("    tick %llu: %s\n",
                                static_cast<unsigned long long>(
                                    f.when),
                                f.violation.c_str());
            }
        }
    }

    std::printf("\nnon-atomic violations detected: %u "
                "(the oracle has teeth)\n",
                nonAtomicViolations);
    if (hopsGapPoints > 0)
        std::printf("hops media-fault modeling-gap points: %u "
                    "(pass at default fault amplitudes)\n",
                    hopsGapPoints);

    // Speedup probe: identical work, verdicts must agree bit for bit;
    // the wall-clock ratio is the forked-snapshot payoff.
    const CellResult *probeFork = nullptr;
    const CellResult *probeTworun = nullptr;
    for (const CellResult &cell : result.cells) {
        if (cell.variant == "fork512")
            probeFork = &cell;
        else if (cell.variant == "tworun512")
            probeTworun = &cell;
    }
    if (probeFork && probeTworun && probeFork->ok &&
        probeTworun->ok) {
        const CrashCellResult &f = probeFork->crash;
        const CrashCellResult &t = probeTworun->crash;
        if (f.pointsTested != t.pointsTested ||
            f.pointsPassed != t.pointsPassed ||
            f.pointsInjected != t.pointsInjected ||
            f.totalRolledBack != t.totalRolledBack ||
            f.totalReplayed != t.totalReplayed) {
            std::printf("speedup probe: fork/two-run verdicts "
                        "DIVERGED <-- FAIL\n");
            ++unexpectedFailures;
        } else {
            double ratio =
                probeFork->host.wallMs > 0
                    ? probeTworun->host.wallMs / probeFork->host.wallMs
                    : 0.0;
            std::printf("speedup probe (%u-point budget, %u injected): "
                        "two-run %.1f ms, forked %.1f ms -> %.1fx\n",
                        probePoints, f.pointsInjected,
                        probeTworun->host.wallMs,
                        probeFork->host.wallMs, ratio);
        }
    }
    int rc = bench::finish(result);
    if (unexpectedFailures > 0) {
        std::printf("%u recoverable cell(s) FAILED crash injection\n",
                    unexpectedFailures);
        return 1;
    }
    std::printf("all recoverable design/model cells passed\n");
    return rc;
}
