/**
 * @file
 * Crash-consistency matrix: crash-point fault injection across every
 * hardware design and language-level persistency model (plus the
 * §VII redo-logging variant under TXN).
 *
 * Each cell injects crashes at sampled persist-completion points and
 * random ticks, runs the Figure 6 recovery protocol on the persisted
 * snapshot, and validates the result against the recovery oracle and
 * the workload's structural invariants. All recoverable designs must
 * pass every point; NON-ATOMIC (no log/update persist ordering) is
 * expected to fail and its violations are reported as evidence the
 * oracle detects real ordering bugs.
 *
 * Sizes scale with SW_OPS / SW_THREADS / SW_CRASH_POINTS.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hh"
#include "crash/crash_harness.hh"

using namespace strand;

int
main()
{
    const unsigned threads = benchThreads(2);
    const unsigned ops = benchOpsPerThread(40);
    const unsigned points = benchCrashPoints(16);

    const WorkloadKind kinds[] = {WorkloadKind::Queue,
                                  WorkloadKind::Hashmap,
                                  WorkloadKind::ArraySwap};

    std::printf("Crash-consistency matrix (%u threads, %u ops/thread, "
                "%u-point budget per cell)\n\n",
                threads, ops, points);
    std::printf("%-10s %-16s %-7s %9s %9s %11s %10s\n", "workload",
                "design", "model", "tested", "passed", "rolledback",
                "replayed");
    bench::rule(78);

    stats::StatGroup root("crash_matrix");
    std::vector<std::unique_ptr<CrashStats>> cellStats;
    unsigned unexpectedFailures = 0;
    unsigned nonAtomicViolations = 0;

    for (WorkloadKind kind : kinds) {
        WorkloadParams params;
        params.numThreads = threads;
        params.opsPerThread = ops;
        RecordedWorkload recorded = recordWorkload(kind, params);

        for (HwDesign design : allDesigns) {
            // The 3 models with undo logging, plus redo under TXN.
            struct Row
            {
                PersistencyModel model;
                LogStyle style;
                const char *label;
            };
            std::vector<Row> rows;
            for (PersistencyModel model : allModels)
                rows.push_back({model, LogStyle::Undo,
                                persistencyModelName(model)});
            rows.push_back(
                {PersistencyModel::Txn, LogStyle::Redo, "redo"});

            for (const Row &row : rows) {
                CrashHarnessConfig cfg;
                cfg.pointBudget = points;
                cfg.logStyle = row.style;
                cellStats.push_back(std::make_unique<CrashStats>(
                    std::string(workloadName(kind)) + "_" +
                        hwDesignName(design) + "_" + row.label,
                    &root));
                CrashCellResult cell =
                    runCrashCell(recorded, design, row.model, cfg,
                                 cellStats.back().get());

                bool expectedFail = design == HwDesign::NonAtomic;
                std::printf("%-10s %-16s %-7s %9u %9u %11llu %10llu%s\n",
                            workloadName(kind), hwDesignName(design),
                            row.label, cell.pointsTested,
                            cell.pointsPassed,
                            static_cast<unsigned long long>(
                                cell.totalRolledBack),
                            static_cast<unsigned long long>(
                                cell.totalReplayed),
                            cell.allPassed()
                                ? ""
                                : (expectedFail ? "  (expected)"
                                                : "  <-- FAIL"));
                if (!cell.allPassed()) {
                    if (expectedFail) {
                        nonAtomicViolations +=
                            cell.pointsTested - cell.pointsPassed;
                    } else {
                        ++unexpectedFailures;
                        for (const CrashPointResult &f : cell.failures)
                            std::printf("    tick %llu: %s\n",
                                        static_cast<unsigned long long>(
                                            f.when),
                                        f.violation.c_str());
                    }
                }
            }
        }
        std::printf("\n");
    }

    if (std::getenv("SW_PRINT_STATS"))
        root.printStats(std::cout);

    std::printf("non-atomic violations detected: %u "
                "(the oracle has teeth)\n",
                nonAtomicViolations);
    if (unexpectedFailures > 0) {
        std::printf("%u recoverable cell(s) FAILED crash injection\n",
                    unexpectedFailures);
        return 1;
    }
    std::printf("all recoverable design/model cells passed\n");
    return 0;
}
