/**
 * @file
 * Figure 8 — CPU stalls as hardware enforces persist order. For each
 * workload (SFR implementation) prints the persist-induced dispatch
 * stall cycles of every design normalized to Intel x86, plus the
 * aggregate reduction the paper reports (StrandWeaver: 62.4% fewer
 * stalls than Intel; the NO-PQ intermediate design: 52.3% fewer).
 *
 * One SweepSpec over 8 workloads x 5 designs, cell-parallel on
 * SW_JOBS workers; JSON lands in bench/out/fig8_stalls.json.
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"

using namespace strand;

int
main(int argc, char **argv)
{
    int rc = 0;
    if (bench::handleArgs(argc, argv, "Figure 8 persist-induced CPU stall comparison", &rc))
        return rc;
    unsigned threads = benchThreads();
    unsigned ops = benchOpsPerThread(60);
    auto recorded = bench::recordAll(threads, ops);

    SweepSpec spec;
    spec.name = "fig8_stalls";
    for (const auto &workload : recorded) {
        std::string intel = spec.addTiming(workload,
                                           HwDesign::IntelX86,
                                           PersistencyModel::Sfr)
                                .key();
        spec.cells.back().baseline = intel;
        for (HwDesign design :
             {HwDesign::Hops, HwDesign::NoPersistQueue,
              HwDesign::StrandWeaver, HwDesign::NonAtomic}) {
            spec.addTiming(workload, design, PersistencyModel::Sfr,
                           intel);
        }
    }
    SweepResult result = runSweep(spec);

    std::printf("Figure 8: persist-ordering stall cycles, normalized "
                "to Intel x86 (SFR model)\n");
    std::printf("threads=%u ops/thread=%u\n", threads, ops);

    PivotOptions table;
    table.column = [](const CellResult &cell) {
        return cell.design == HwDesign::StrandWeaver
                   ? std::string("strandwvr")
                   : std::string(hwDesignName(cell.design));
    };
    table.value = [&result](const CellResult &cell) {
        const CellResult *base = result.find(cell.baseline);
        if (!base || !base->ok || base->metrics.persistStalls <= 0)
            return std::nan("");
        return cell.metrics.persistStalls /
               base->metrics.persistStalls;
    };
    table.geomeanRow = false;
    printPivot(result, table);

    std::map<HwDesign, double> totalStalls;
    for (const CellResult &cell : result.cells)
        if (cell.ok)
            totalStalls[cell.design] += cell.metrics.persistStalls;

    double base = totalStalls[HwDesign::IntelX86];
    if (base > 0) {
        double swReduction =
            100.0 *
            (1.0 - totalStalls[HwDesign::StrandWeaver] / base);
        double nopqReduction =
            100.0 *
            (1.0 - totalStalls[HwDesign::NoPersistQueue] / base);
        std::printf("StrandWeaver: %.1f%% fewer persist stalls than "
                    "Intel x86 (paper: 62.4%%)\n",
                    swReduction);
        std::printf("NO-PQ:        %.1f%% fewer persist stalls than "
                    "Intel x86 (paper: 52.3%%)\n",
                    nopqReduction);
    }
    return bench::finish(result);
}
