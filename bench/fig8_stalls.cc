/**
 * @file
 * Figure 8 — CPU stalls as hardware enforces persist order. For each
 * workload (SFR implementation) prints the persist-induced dispatch
 * stall cycles of every design normalized to Intel x86, plus the
 * aggregate reduction the paper reports (StrandWeaver: 62.4% fewer
 * stalls than Intel; the NO-PQ intermediate design: 52.3% fewer).
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"

using namespace strand;

int
main()
{
    unsigned threads = benchThreads();
    unsigned ops = benchOpsPerThread(60);
    auto recorded = bench::recordAll(threads, ops);

    constexpr HwDesign designs[] = {
        HwDesign::IntelX86, HwDesign::Hops, HwDesign::NoPersistQueue,
        HwDesign::StrandWeaver, HwDesign::NonAtomic};

    std::printf("Figure 8: persist-ordering stall cycles, normalized "
                "to Intel x86 (SFR model)\n");
    std::printf("threads=%u ops/thread=%u\n", threads, ops);
    bench::rule(76);
    std::printf("%-12s %10s %10s %10s %10s %10s\n", "workload",
                "intel-x86", "hops", "no-pq", "strandwvr",
                "non-atomic");
    bench::rule(76);

    std::map<HwDesign, double> totalStalls;
    for (const RecordedWorkload &workload : recorded) {
        std::map<HwDesign, double> stalls;
        for (HwDesign design : designs) {
            RunMetrics metrics = runExperiment(
                workload, design, PersistencyModel::Sfr);
            stalls[design] = metrics.persistStalls;
            totalStalls[design] += metrics.persistStalls;
        }
        double base = stalls[HwDesign::IntelX86];
        std::printf("%-12s", workloadName(workload.kind));
        for (HwDesign design : designs) {
            if (base > 0)
                std::printf(" %10.2f", stalls[design] / base);
            else
                std::printf(" %10s", "-");
        }
        std::printf("\n");
    }
    bench::rule(76);

    double base = totalStalls[HwDesign::IntelX86];
    if (base > 0) {
        double swReduction =
            100.0 *
            (1.0 - totalStalls[HwDesign::StrandWeaver] / base);
        double nopqReduction =
            100.0 *
            (1.0 - totalStalls[HwDesign::NoPersistQueue] / base);
        std::printf("StrandWeaver: %.1f%% fewer persist stalls than "
                    "Intel x86 (paper: 62.4%%)\n",
                    swReduction);
        std::printf("NO-PQ:        %.1f%% fewer persist stalls than "
                    "Intel x86 (paper: 52.3%%)\n",
                    nopqReduction);
    }
    return 0;
}
