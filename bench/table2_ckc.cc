/**
 * @file
 * Table II — benchmark write intensity: CLWBs issued per 1000 CPU
 * cycles (CKC) in the NON-ATOMIC design, next to the paper's
 * reported values. Absolute CKC depends on the substrate's op
 * density; the *ordering* across workloads is the property the
 * evaluation keys on (N-Store write-heavy most intense, queue and
 * TPCC least).
 *
 * One NON-ATOMIC/SFR sweep cell per workload, cell-parallel on
 * SW_JOBS workers; JSON lands in bench/out/table2_ckc.json.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace strand;

namespace
{

double
paperCkc(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Queue:
        return 0.78;
      case WorkloadKind::Hashmap:
        return 4.83;
      case WorkloadKind::ArraySwap:
        return 4.45;
      case WorkloadKind::RbTree:
        return 3.46;
      case WorkloadKind::Tpcc:
        return 1.58;
      case WorkloadKind::NStoreRdHeavy:
        return 4.41;
      case WorkloadKind::NStoreBalanced:
        return 8.06;
      case WorkloadKind::NStoreWrHeavy:
        return 10.05;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    int rc = 0;
    if (bench::handleArgs(argc, argv, "Table II CLWBs-per-kilocycle matrix", &rc))
        return rc;
    unsigned threads = benchThreads();
    unsigned ops = benchOpsPerThread(120);
    auto recorded = bench::recordAll(threads, ops);

    SweepSpec spec;
    spec.name = "table2_ckc";
    for (const auto &workload : recorded)
        spec.addTiming(workload, HwDesign::NonAtomic,
                       PersistencyModel::Sfr);
    SweepResult result = runSweep(spec);

    std::printf("Table II: write intensity (CKC = CLWBs per 1000 "
                "cycles, NON-ATOMIC design)\n");
    std::printf("threads=%u ops/thread=%u (set SW_OPS / SW_THREADS to "
                "scale)\n",
                threads, ops);
    bench::rule(74);
    std::printf("%-12s %-34s %10s %10s\n", "benchmark", "description",
                "paper CKC", "this CKC");
    bench::rule(74);

    const char *descriptions[] = {
        "Insert/delete to queue [16,18]",
        "Read/update to hashmap [26,17]",
        "Swap of array elements [26,17]",
        "Insert/delete to RB-tree [26,18]",
        "New Order trans. from TPCC [61,17]",
        "90% read/10% write KV workload [60]",
        "50% read/50% write KV workload [60]",
        "10% read/90% write KV workload [60]",
    };

    unsigned idx = 0;
    for (WorkloadKind kind : allWorkloads) {
        const CellResult &cell = result.cells.at(idx);
        std::printf("%-12s %-34s %10.2f %10.2f\n", workloadName(kind),
                    descriptions[idx], paperCkc(kind),
                    cell.ok ? cell.metrics.ckc : 0.0);
        ++idx;
    }
    bench::rule(74);
    return bench::finish(result);
}
