/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 *
 * Every bench prints the rows/series of one paper artifact. Sizes
 * default to a few-minute total budget and scale with:
 *   SW_OPS     operations per thread (default per bench)
 *   SW_THREADS program threads (default 8, Table I)
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace strand::bench
{

/** Print a horizontal rule sized to @p width. */
inline void
rule(unsigned width)
{
    for (unsigned i = 0; i < width; ++i)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

/** Geometric mean of a non-empty vector. */
inline double
geomean(const std::vector<double> &values)
{
    double logSum = 0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

/** Record every Table II workload once with common parameters. */
inline std::vector<RecordedWorkload>
recordAll(unsigned threads, unsigned ops, std::uint64_t seed = 1)
{
    std::vector<RecordedWorkload> recorded;
    for (WorkloadKind kind : allWorkloads) {
        WorkloadParams params;
        params.numThreads = threads;
        params.opsPerThread = ops;
        params.seed = seed;
        recorded.push_back(recordWorkload(kind, params));
    }
    return recorded;
}

} // namespace strand::bench

#endif // BENCH_BENCH_UTIL_HH
