/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 *
 * Every bench declares one SweepSpec (see core/sweep.hh), runs it on
 * the SW_JOBS worker pool, prints its rows/series from the
 * SweepResult, and writes the machine-readable JSON document via the
 * result sink.
 *
 * Every bench main() starts with handleArgs(argc, argv): `--help`
 * prints the shared SW_* knob table generated from the env_config
 * registry (core/env_config.hh), so all binaries document the same
 * knob surface automatically.
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/env_config.hh"
#include "core/result_sink.hh"
#include "core/sweep.hh"

namespace strand::bench
{

/**
 * Handle the shared command-line surface of every bench binary.
 * `--help`/`-h` prints what the bench reproduces plus the SW_* knob
 * table generated from the env_config registry, then asks main() to
 * exit successfully.
 * @return true when main() should exit (help was printed or an
 * unknown flag was rejected; *exitCode says which).
 */
inline bool
handleArgs(int argc, char **argv, const char *what, int *exitCode)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            std::printf("%s — %s\n\n%s", argv[0], what,
                        envKnobTable().c_str());
            *exitCode = 0;
            return true;
        }
        std::fprintf(stderr, "unknown argument '%s' (try --help)\n",
                     argv[i]);
        *exitCode = 2;
        return true;
    }
    *exitCode = 0;
    return false;
}

/** Print a horizontal rule sized to @p width. */
inline void
rule(unsigned width)
{
    for (unsigned i = 0; i < width; ++i)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

/** Geometric mean of a non-empty vector. */
inline double
geomean(const std::vector<double> &values)
{
    double logSum = 0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

/** Record every Table II workload once with common parameters. */
inline std::vector<std::shared_ptr<const RecordedWorkload>>
recordAll(unsigned threads, unsigned ops, std::uint64_t seed = 1)
{
    std::vector<std::shared_ptr<const RecordedWorkload>> recorded;
    for (WorkloadKind kind : allWorkloads) {
        WorkloadParams params;
        params.numThreads = threads;
        params.opsPerThread = ops;
        params.seed = seed;
        recorded.push_back(recordShared(kind, params));
    }
    return recorded;
}

/**
 * Finish a bench run: write the JSON document, report where it went,
 * and surface any panicked cells.
 * @return the process exit code (0 when every cell completed).
 */
inline int
finish(const SweepResult &result)
{
    std::printf("\nwrote %s (SW_JOBS=%u)\n",
                writeSweepJson(result).c_str(), result.jobs);
    if (result.allOk())
        return 0;
    for (const std::string &key : result.failedKeys())
        std::printf("cell %s FAILED: %s\n", key.c_str(),
                    result.find(key)->error.c_str());
    return 1;
}

} // namespace strand::bench

#endif // BENCH_BENCH_UTIL_HH
