/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 *
 * Every bench declares one SweepSpec (see core/sweep.hh), runs it on
 * the SW_JOBS worker pool, prints its rows/series from the
 * SweepResult, and writes the machine-readable JSON document via the
 * result sink. Sizes default to a few-minute total budget and scale
 * with:
 *   SW_OPS     operations per thread (default per bench)
 *   SW_THREADS program threads (default 8, Table I)
 *   SW_JOBS    sweep worker threads (default: hardware concurrency)
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/env_config.hh"
#include "core/result_sink.hh"
#include "core/sweep.hh"

namespace strand::bench
{

/** Print a horizontal rule sized to @p width. */
inline void
rule(unsigned width)
{
    for (unsigned i = 0; i < width; ++i)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

/** Geometric mean of a non-empty vector. */
inline double
geomean(const std::vector<double> &values)
{
    double logSum = 0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

/** Record every Table II workload once with common parameters. */
inline std::vector<std::shared_ptr<const RecordedWorkload>>
recordAll(unsigned threads, unsigned ops, std::uint64_t seed = 1)
{
    std::vector<std::shared_ptr<const RecordedWorkload>> recorded;
    for (WorkloadKind kind : allWorkloads) {
        WorkloadParams params;
        params.numThreads = threads;
        params.opsPerThread = ops;
        params.seed = seed;
        recorded.push_back(recordShared(kind, params));
    }
    return recorded;
}

/**
 * Finish a bench run: write the JSON document, report where it went,
 * and surface any panicked cells.
 * @return the process exit code (0 when every cell completed).
 */
inline int
finish(const SweepResult &result)
{
    std::printf("\nwrote %s (SW_JOBS=%u)\n",
                writeSweepJson(result).c_str(), result.jobs);
    if (result.allOk())
        return 0;
    for (const std::string &key : result.failedKeys())
        std::printf("cell %s FAILED: %s\n", key.c_str(),
                    result.find(key)->error.c_str());
    return 1;
}

} // namespace strand::bench

#endif // BENCH_BENCH_UTIL_HH
