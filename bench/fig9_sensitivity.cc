/**
 * @file
 * Figure 9 — sensitivity to the strand buffer unit configuration,
 * denoted (number of strand buffers, entries per buffer), under the
 * SFR implementation. The paper's finding: fewer than four entries
 * per buffer wastes strand concurrency; (4,4) captures nearly all of
 * it and (8,8) adds nothing, which is why StrandWeaver ships 4x4.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace strand;

int
main()
{
    unsigned threads = benchThreads();
    unsigned ops = benchOpsPerThread(60);
    auto recorded = bench::recordAll(threads, ops);

    struct Config
    {
        unsigned buffers;
        unsigned entries;
    };
    constexpr Config configs[] = {{1, 2}, {2, 2}, {2, 4},
                                  {4, 4}, {8, 8}};

    std::printf("Figure 9: StrandWeaver speedup over Intel x86 vs "
                "(buffers, entries/buffer), SFR model\n");
    std::printf("threads=%u ops/thread=%u\n", threads, ops);
    bench::rule(76);
    std::printf("%-12s", "workload");
    for (const Config &config : configs)
        std::printf("     (%u,%u)", config.buffers, config.entries);
    std::printf("\n");
    bench::rule(76);

    std::vector<std::vector<double>> perConfig(std::size(configs));
    for (const RecordedWorkload &workload : recorded) {
        RunMetrics intel = runExperiment(workload, HwDesign::IntelX86,
                                         PersistencyModel::Sfr);
        std::printf("%-12s", workloadName(workload.kind));
        for (std::size_t i = 0; i < std::size(configs); ++i) {
            ExperimentConfig cfg;
            cfg.engine.strandBuffers = configs[i].buffers;
            cfg.engine.entriesPerBuffer = configs[i].entries;
            RunMetrics metrics =
                runExperiment(workload, HwDesign::StrandWeaver,
                              PersistencyModel::Sfr, cfg);
            double speedup = metrics.speedupOver(intel);
            perConfig[i].push_back(speedup);
            std::printf("   %7.2f", speedup);
        }
        std::printf("\n");
    }
    bench::rule(76);
    std::printf("%-12s", "avg");
    for (const auto &values : perConfig)
        std::printf("   %7.2f", bench::geomean(values));
    std::printf("\n\nPaper: (2,4) already reaches 1.36x; (4,4) adds "
                "~7.7%%; (8,8) adds nothing beyond (4,4).\n");
    return 0;
}
