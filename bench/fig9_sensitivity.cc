/**
 * @file
 * Figure 9 — sensitivity to the strand buffer unit configuration,
 * denoted (number of strand buffers, entries per buffer), under the
 * SFR implementation. The paper's finding: fewer than four entries
 * per buffer wastes strand concurrency; (4,4) captures nearly all of
 * it and (8,8) adds nothing, which is why StrandWeaver ships 4x4.
 *
 * Each (workload, geometry) pair is one StrandWeaver sweep cell with
 * a per-cell EngineConfig override, normalized to the workload's
 * Intel cell; JSON lands in bench/out/fig9_sensitivity.json.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace strand;

int
main(int argc, char **argv)
{
    int rc = 0;
    if (bench::handleArgs(argc, argv, "Figure 9 strand-buffer-unit sensitivity sweep", &rc))
        return rc;
    unsigned threads = benchThreads();
    unsigned ops = benchOpsPerThread(60);
    auto recorded = bench::recordAll(threads, ops);

    struct Config
    {
        unsigned buffers;
        unsigned entries;
    };
    constexpr Config configs[] = {{1, 2}, {2, 2}, {2, 4},
                                  {4, 4}, {8, 8}};

    SweepSpec spec;
    spec.name = "fig9_sensitivity";
    for (const auto &workload : recorded) {
        std::string intel = spec.addTiming(workload,
                                           HwDesign::IntelX86,
                                           PersistencyModel::Sfr)
                                .key();
        for (const Config &config : configs) {
            SweepCell &cell = spec.addTiming(
                workload, HwDesign::StrandWeaver,
                PersistencyModel::Sfr, intel);
            cell.config.engine.strandBuffers = config.buffers;
            cell.config.engine.entriesPerBuffer = config.entries;
            cell.variant = "(" + std::to_string(config.buffers) +
                           "," + std::to_string(config.entries) + ")";
        }
    }
    SweepResult result = runSweep(spec);

    std::printf("Figure 9: StrandWeaver speedup over Intel x86 vs "
                "(buffers, entries/buffer), SFR model\n");
    std::printf("threads=%u ops/thread=%u\n", threads, ops);

    PivotOptions table;
    // Baseline cells carry no variant; only the geometry cells show.
    table.include = [](const CellResult &cell) {
        return !cell.variant.empty();
    };
    table.column = [](const CellResult &cell) { return cell.variant; };
    table.value = [](const CellResult &cell) { return cell.speedup; };
    printPivot(result, table);

    std::printf("\nPaper: (2,4) already reaches 1.36x; (4,4) adds "
                "~7.7%%; (8,8) adds nothing beyond (4,4).\n");
    return bench::finish(result);
}
