/**
 * @file
 * Simulator-throughput microbench: how fast the *host* executes the
 * simulation, independent of what the simulation computes. Three
 * fixed-seed sections cover the kernel hot paths this repo leans on:
 *
 *   event_churn     64 self-rescheduling one-shot chains plus a
 *                   cancel-heavy wake pattern — the shape of
 *                   Core::tick interleaved with wake() churn.
 *   recurring_churn the same chains on the EventQueue::Recurring
 *                   fast path (one pooled record re-armed in place).
 *   image_clone     MemoryImage::clonePersisted / clonePersistedTorn,
 *                   the crash- and fuzz-harness inner loop.
 *   fork_setup      the forked crash harness's per-campaign setup: one
 *                   image copy plus the full newest-first
 *                   undoAdmission rewind walk. Like image_clone it is
 *                   page-copy/page-write bound, so the CI guard
 *                   compares the two sections' RATIO against the
 *                   baseline ratio (host speed cancels out).
 *   fig7_cell       one fig7-shaped timing cell end to end, the
 *                   integrated number the sweeps are made of.
 *   midrun_fork     full-machine mid-run snapshot forking: one warm
 *                   run captured at its 64th ADR admission, then
 *                   repeated System::restore() + tail re-execution.
 *                   Simulation-bound like fig7_cell, so the CI guard
 *                   compares the two sections' RATIO against the
 *                   recorded reference (host speed cancels out).
 *   pdes_shard{1,2,4}
 *                   the conservative time-windowed PDES engine on a
 *                   synthetic 8-domain graph with genuine lookahead
 *                   (decoupled domains, cross-posts at 100k-tick
 *                   latency), run with 1/2/4 worker threads over the
 *                   IDENTICAL window schedule. Checksums are verified
 *                   bit-identical across worker counts inside the
 *                   bench; the wall-clock ratio is the threading
 *                   payoff. The CI guard compares shard2/shard1 as a
 *                   ratio (warn-only: machine load can flatten it).
 *   port_roundtrip  the MemPort mailbox itself: chained send →
 *                   handleRequest → respond round trips against a
 *                   minimal responder. Each trip costs two scheduled
 *                   events and 2*portLegLatency simulated ticks; the
 *                   section reports trips and events per second.
 *   fig7_cell_sharded
 *                   fig7_cell again at SW_SHARDS=2. The port-based
 *                   memory API gives the production graph 1+nCores
 *                   effective domains with a positive window (see
 *                   DESIGN.md §9), so this measures the windowed
 *                   pacing of the real partition; results stay
 *                   bit-identical to the serial run (asserted in the
 *                   integration suite).
 *
 * Everything is seeded and sized by constants, so the *work* is
 * identical run to run; only the wall-clock varies. Results land in
 * <SW_OUT_DIR>/BENCH_simperf.json for trajectory tooling; compare
 * against bench/baseline/simperf_seed.json (the pre-pooling kernel)
 * for speedups.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "core/env_config.hh"
#include "core/observer_util.hh"
#include "mem/memory_image.hh"
#include "mem/port.hh"
#include "runtime/instrumentor.hh"
#include "sim/event_queue.hh"
#include "sim/pdes.hh"

using namespace strand;

namespace
{

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One measured section, as printed and as written to JSON. */
struct Section
{
    std::string name;
    std::uint64_t units = 0; ///< events / clones / runs
    double wallMs = 0;
    double unitsPerSec = 0;
};

constexpr unsigned churnChains = 64;
constexpr std::uint64_t churnFires = 4'000'000;

/**
 * The one-shot churn pattern: every fire cancels the chain's pending
 * wake, schedules a fresh one, and reschedules itself — exercising
 * allocation, cancellation, and carcass compaction at once.
 */
Section
runEventChurn()
{
    EventQueue eq;
    std::uint64_t fires = 0;
    std::vector<EventQueue::Handle> wakes(churnChains);
    std::vector<std::function<void()>> tickFns(churnChains);
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < churnChains; ++c) {
        tickFns[c] = [&eq, &fires, &wakes, &tickFns, c] {
            ++fires;
            eq.deschedule(wakes[c]);
            wakes[c] =
                eq.scheduleIn(700, [] {}, EventPriority::Default);
            if (fires < churnFires)
                eq.scheduleIn(500, tickFns[c],
                              EventPriority::CpuTick);
        };
        eq.schedule(c, tickFns[c], EventPriority::CpuTick);
    }
    eq.run();
    Section s{"event_churn", eq.serviced(), msSince(t0), 0};
    s.unitsPerSec = 1e3 * static_cast<double>(s.units) / s.wallMs;
    std::printf("event_churn:     events=%llu wall_ms=%.1f "
                "events_per_sec=%.3g (arena %zu records, "
                "%llu compactions)\n",
                static_cast<unsigned long long>(s.units), s.wallMs,
                s.unitsPerSec, eq.arenaRecords(),
                static_cast<unsigned long long>(eq.compactions()));
    return s;
}

/** The same chains on the Recurring fast path: zero allocation and
 * zero cancellation in steady state. */
Section
runRecurringChurn()
{
    EventQueue eq;
    std::uint64_t fires = 0;
    std::vector<EventQueue::Recurring> ticks(churnChains);
    std::vector<EventQueue::Recurring> wakes(churnChains);
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < churnChains; ++c) {
        wakes[c].init(eq, [] {}, EventPriority::Default);
        ticks[c].init(eq, [&eq, &fires, &ticks, &wakes, c] {
            ++fires;
            if (wakes[c].scheduled())
                wakes[c].deschedule();
            wakes[c].scheduleIn(700);
            if (fires < churnFires)
                ticks[c].reschedule(500);
        }, EventPriority::CpuTick);
        ticks[c].schedule(c);
    }
    eq.run();
    Section s{"recurring_churn", eq.serviced(), msSince(t0), 0};
    s.unitsPerSec = 1e3 * static_cast<double>(s.units) / s.wallMs;
    std::printf("recurring_churn: events=%llu wall_ms=%.1f "
                "events_per_sec=%.3g (arena %zu records)\n",
                static_cast<unsigned long long>(s.units), s.wallMs,
                s.unitsPerSec, eq.arenaRecords());
    return s;
}

Section
runImageClone()
{
    MemoryImage img;
    constexpr unsigned lines = 1024;
    for (unsigned l = 0; l < lines; ++l) {
        Addr la = pmBase + static_cast<Addr>(l) * lineBytes;
        for (unsigned w = 0; w < wordsPerLine; ++w)
            img.writeArch(la + w * wordBytes, l * 8 + w + 1);
        img.persistLine(img.snapshotLine(la));
    }
    constexpr unsigned iters = 2000;
    std::uint64_t sink = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < iters; ++i) {
        MemoryImage a = img.clonePersisted();
        MemoryImage b = img.clonePersistedTorn(0x3);
        sink += a.persistedWords() + b.persistedWords();
    }
    Section s{"image_clone", 2 * iters, msSince(t0), 0};
    s.unitsPerSec = 1e3 * static_cast<double>(s.units) / s.wallMs;
    std::printf("image_clone:     clones=%llu words=%zu wall_ms=%.1f "
                "clones_per_sec=%.3g (sink %llu)\n",
                static_cast<unsigned long long>(s.units),
                img.persistedWords(), s.wallMs, s.unitsPerSec,
                static_cast<unsigned long long>(sink));
    return s;
}

Section
runForkSetup()
{
    // A run-shaped admission history: every line admitted twice, so
    // each rewind step has a pre-image to restore (the expensive
    // branch of undoAdmission).
    MemoryImage img;
    constexpr unsigned lines = 1024;
    std::vector<MemoryImage::AdmissionUndo> undos;
    undos.reserve(2 * lines);
    for (unsigned pass = 0; pass < 2; ++pass) {
        for (unsigned l = 0; l < lines; ++l) {
            Addr la = pmBase + static_cast<Addr>(l) * lineBytes;
            for (unsigned w = 0; w < wordsPerLine; ++w)
                img.writeArch(la + w * wordBytes,
                              pass * 100'000 + l * 8 + w + 1);
            img.persistLine(img.snapshotLine(la));
            undos.push_back(img.lastAdmissionUndo());
        }
    }
    constexpr unsigned iters = 400;
    std::uint64_t sink = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < iters; ++i) {
        MemoryImage machine = img;
        for (auto it = undos.rbegin(); it != undos.rend(); ++it)
            machine.undoAdmission(*it);
        sink += machine.persistedWords();
    }
    Section s{"fork_setup", iters, msSince(t0), 0};
    s.unitsPerSec = 1e3 * static_cast<double>(s.units) / s.wallMs;
    std::printf("fork_setup:      forks=%llu rewinds=%zu wall_ms=%.1f "
                "forks_per_sec=%.3g (sink %llu)\n",
                static_cast<unsigned long long>(s.units),
                iters * undos.size(), s.wallMs, s.unitsPerSec,
                static_cast<unsigned long long>(sink));
    return s;
}

Section
runFig7Cell()
{
    WorkloadParams params;
    params.numThreads = 4;
    params.opsPerThread = 80;
    params.seed = 1;
    RecordedWorkload rec = recordWorkload(WorkloadKind::Queue, params);
    constexpr unsigned runs = 3;
    auto t0 = std::chrono::steady_clock::now();
    RunMetrics m;
    for (unsigned i = 0; i < runs; ++i)
        m = runExperiment(rec, HwDesign::StrandWeaver,
                          PersistencyModel::Sfr);
    Section s{"fig7_cell", runs, msSince(t0), 0};
    s.unitsPerSec = 1e3 * static_cast<double>(s.units) / s.wallMs;
    std::printf("fig7_cell:       runs=%u run_ticks=%llu wall_ms=%.1f "
                "host_events=%llu events_per_sec=%.3g\n",
                runs, static_cast<unsigned long long>(m.runTicks),
                s.wallMs,
                static_cast<unsigned long long>(runs * m.hostEvents),
                1e3 * static_cast<double>(runs * m.hostEvents) /
                    s.wallMs);
    return s;
}

Section
runMidrunFork()
{
    // A fig7-shaped machine, captured whole at its 64th admission;
    // each measured unit is one System::restore() plus the tail
    // re-execution to completion — the cost a mid-run fork consumer
    // (crash harness, branching fuzzer) pays per explored branch.
    WorkloadParams params;
    params.numThreads = 4;
    params.opsPerThread = 80;
    params.seed = 1;
    RecordedWorkload rec = recordWorkload(WorkloadKind::Queue, params);
    InstrumentorParams ip;
    ip.design = HwDesign::StrandWeaver;
    ip.model = PersistencyModel::Sfr;
    Instrumentor instr(ip);
    std::vector<OpStream> streams = instr.lower(rec.trace);
    SystemConfig cfg;
    cfg.numCores = static_cast<unsigned>(streams.size());
    cfg.design = HwDesign::StrandWeaver;
    cfg.layout = ip.layout;
    System sys(cfg);
    sys.seedImage(rec.preload);
    sys.loadStreams(std::move(streams));

    SimSnapshot snap;
    unsigned admissions = 0;
    AdmissionCallback capturer([&](const PersistRecord &r) {
        if (++admissions != 64)
            return;
        sys.eventQueue().schedule(
            r.when, [&] { snap = sys.snapshot(); },
            EventPriority::Stat);
    });
    sys.addObserver(&capturer);
    const Tick finish = sys.run();
    sys.removeObserver(&capturer);
    fatalIf(snap.size() == 0,
            "midrun_fork: warm run admitted fewer than 64 lines");

    constexpr unsigned iters = 60;
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < iters; ++i) {
        sys.restore(snap);
        Tick again = sys.run();
        fatalIf(again != finish,
                "midrun_fork: restored run diverged ({} != {})",
                again, finish);
    }
    Section s{"midrun_fork", iters, msSince(t0), 0};
    s.unitsPerSec = 1e3 * static_cast<double>(s.units) / s.wallMs;
    std::printf("midrun_fork:     forks=%u keys=%zu snap_bytes=%zu "
                "wall_ms=%.1f forks_per_sec=%.3g\n",
                iters, snap.size(), snap.approxBytes(), s.wallMs,
                s.unitsPerSec);
    return s;
}

/**
 * The synthetic sharded-churn graph: 8 decoupled domains, each a
 * self-rescheduling chain with per-fire compute, cross-posting every
 * 16th fire at a 100k-tick latency. The latency IS the lookahead, so
 * every worker count executes the identical ~1250-window schedule;
 * only the wall-clock changes. @p checksum folds every domain's
 * event-order-sensitive digest so callers can assert bit-identity
 * across worker counts.
 */
Section
runPdesShard(unsigned workers, std::uint64_t &checksum)
{
    constexpr unsigned domains = 8;
    constexpr std::uint64_t firesPerDomain = 120'000;
    constexpr Tick crossLatency = 100'000;
    constexpr Tick period = 500;
    ShardedEngine eng(domains);
    for (unsigned d = 0; d < domains; ++d)
        eng.connect(d, (d + 1) % domains, crossLatency);

    // One cache line per domain: the workers hammer these counters
    // every event, and packing them would false-share the line.
    struct alignas(64) DomainState
    {
        std::uint64_t fires = 0;
        std::uint64_t sum = 0;
    };
    std::vector<DomainState> state(domains);
    std::vector<std::function<void()>> tick(domains);
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned d = 0; d < domains; ++d) {
        const unsigned dst = (d + 1) % domains;
        tick[d] = [&, d, dst] {
            DomainState &st = state[d];
            ++st.fires;
            // Stand-in for component work: a short LCG mix keeps the
            // section compute-bound the way a timing model is, so
            // the threading payoff is visible above kernel overhead.
            std::uint64_t x = eng.domain(d).curTick() ^
                              (st.fires * (d + 1));
            for (int k = 0; k < 64; ++k)
                x = x * 6364136223846793005ull +
                    1442695040888963407ull;
            st.sum += x;
            if (st.fires % 16 == 0)
                eng.post(d, dst,
                         eng.domain(d).curTick() + crossLatency,
                         [&state, dst] { state[dst].sum ^= 0x9e37; });
            if (st.fires < firesPerDomain)
                eng.domain(d).scheduleIn(period, tick[d],
                                         EventPriority::CpuTick);
        };
        eng.domain(d).schedule(d, tick[d], EventPriority::CpuTick);
    }
    eng.run(workers);
    checksum = 0;
    for (unsigned d = 0; d < domains; ++d)
        checksum ^= state[d].sum + 0x9e3779b97f4a7c15ull * (d + 1);
    Section s{"pdes_shard" + std::to_string(workers),
              eng.eventsServiced(), msSince(t0), 0};
    s.unitsPerSec = 1e3 * static_cast<double>(s.units) / s.wallMs;
    std::printf("pdes_shard%u:     events=%llu windows=%llu "
                "msgs=%llu wall_ms=%.1f events_per_sec=%.3g "
                "checksum=%016llx\n",
                workers, static_cast<unsigned long long>(s.units),
                static_cast<unsigned long long>(eng.windows()),
                static_cast<unsigned long long>(
                    eng.messagesDelivered()),
                s.wallMs, s.unitsPerSec,
                static_cast<unsigned long long>(checksum));
    return s;
}

/**
 * The port mailbox hot path in isolation: one requester chains
 * round trips against a responder that answers every request
 * immediately. Two event-queue schedules per trip (request leg +
 * response leg), 2*portLegLatency simulated ticks each.
 */
Section
runPortRoundtrip()
{
    struct Echo : MemResponder
    {
        void
        handleRequest(MemPort &port, const MemRequest &req) override
        {
            port.respond(
                {req.kind, MemResponseKind::Done, req.token});
        }
    };
    constexpr std::uint64_t trips = 400'000;
    EventQueue eq;
    Echo echo;
    MemPort port;
    port.init(eq, "bench.port");
    port.bind(echo);
    std::uint64_t completed = 0;
    auto t0 = std::chrono::steady_clock::now();
    port.setResponseHandler([&](const MemResponse &) {
        if (++completed < trips) {
            MemRequest next;
            next.kind = MemRequestKind::Kick;
            next.token = completed;
            port.send(std::move(next));
        }
    });
    MemRequest first;
    first.kind = MemRequestKind::Kick;
    port.send(std::move(first));
    eq.run();
    fatalIf(completed != trips,
            "port_roundtrip: {} of {} trips completed", completed,
            trips);
    fatalIf(eq.curTick() != trips * 2 * portLegLatency,
            "port_roundtrip: {} ticks for {} trips (expected {} per "
            "trip)",
            eq.curTick(), trips, 2 * portLegLatency);
    Section s{"port_roundtrip", trips, msSince(t0), 0};
    s.unitsPerSec = 1e3 * static_cast<double>(s.units) / s.wallMs;
    std::printf("port_roundtrip:  trips=%llu events=%llu "
                "ticks_per_trip=%llu wall_ms=%.1f trips_per_sec=%.3g\n",
                static_cast<unsigned long long>(trips),
                static_cast<unsigned long long>(eq.serviced()),
                static_cast<unsigned long long>(2 * portLegLatency),
                s.wallMs, s.unitsPerSec);
    return s;
}

Section
runFig7CellSharded()
{
    // The production number: SW_SHARDS=2 on the real machine. The
    // port-based API partitions the graph into 1+nCores effective
    // domains with a positive window (DESIGN.md §9); results stay
    // bit-identical to the serial run (asserted in the integration
    // suite), so this section measures the pacing cost/payoff only.
    WorkloadParams params;
    params.numThreads = 4;
    params.opsPerThread = 80;
    params.seed = 1;
    RecordedWorkload rec = recordWorkload(WorkloadKind::Queue, params);
    ExperimentConfig config;
    config.baseSystem.shards = 2;
    constexpr unsigned runs = 3;
    auto t0 = std::chrono::steady_clock::now();
    RunMetrics m;
    for (unsigned i = 0; i < runs; ++i)
        m = runExperiment(rec, HwDesign::StrandWeaver,
                          PersistencyModel::Sfr, config);
    Section s{"fig7_cell_sharded", runs, msSince(t0), 0};
    s.unitsPerSec = 1e3 * static_cast<double>(s.units) / s.wallMs;
    std::printf("fig7_sharded:    runs=%u run_ticks=%llu wall_ms=%.1f "
                "host_events=%llu events_per_sec=%.3g\n",
                runs, static_cast<unsigned long long>(m.runTicks),
                s.wallMs,
                static_cast<unsigned long long>(runs * m.hostEvents),
                1e3 * static_cast<double>(runs * m.hostEvents) /
                    s.wallMs);
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    int rc = 0;
    if (bench::handleArgs(argc, argv, "simulator host-throughput microbench", &rc))
        return rc;
    std::printf("Simulator throughput microbench (fixed seeds; only "
                "wall-clock varies)\n\n");
    std::vector<Section> sections;
    sections.push_back(runEventChurn());
    sections.push_back(runRecurringChurn());
    sections.push_back(runImageClone());
    sections.push_back(runForkSetup());
    sections.push_back(runFig7Cell());
    sections.push_back(runMidrunFork());
    // PDES scaling: identical window schedule at every worker count,
    // checksummed — the bench itself dies on any cross-count drift.
    std::uint64_t check1 = 0;
    sections.push_back(runPdesShard(1, check1));
    for (unsigned workers : {2u, 4u}) {
        std::uint64_t check = 0;
        sections.push_back(runPdesShard(workers, check));
        fatalIf(check != check1,
                "pdes_shard{} checksum {:x} diverged from serial {:x}",
                workers, check, check1);
    }
    sections.push_back(runPortRoundtrip());
    sections.push_back(runFig7CellSharded());

    namespace fs = std::filesystem;
    fs::path dir(envConfig().outDir);
    std::error_code ec;
    fs::create_directories(dir, ec);
    fatalIf(static_cast<bool>(ec),
            "cannot create result directory {}: {}", dir.string(),
            ec.message());
    fs::path path = dir / "BENCH_simperf.json";
    std::ofstream out(path);
    fatalIf(!out, "cannot open {} for writing", path.string());
    out << "{\n  \"bench\": \"simperf\",\n  \"schema\": 1,\n"
        << "  \"sections\": {\n";
    for (std::size_t i = 0; i < sections.size(); ++i) {
        const Section &s = sections[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    \"%s\": {\"units\": %llu, "
                      "\"wall_ms\": %.3f, \"units_per_sec\": %.6g}%s\n",
                      s.name.c_str(),
                      static_cast<unsigned long long>(s.units),
                      s.wallMs, s.unitsPerSec,
                      i + 1 < sections.size() ? "," : "");
        out << buf;
    }
    out << "  }\n}\n";
    out.close();
    fatalIf(!out, "failed writing {}", path.string());
    std::printf("\nwrote %s\n", path.string().c_str());
    return 0;
}
