# Empty dependencies file for table2_ckc.
# This may be replaced when dependencies are built.
