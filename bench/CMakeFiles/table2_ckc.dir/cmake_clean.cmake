file(REMOVE_RECURSE
  "CMakeFiles/table2_ckc.dir/table2_ckc.cc.o"
  "CMakeFiles/table2_ckc.dir/table2_ckc.cc.o.d"
  "table2_ckc"
  "table2_ckc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_ckc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
