# Empty dependencies file for ablation_interlocks.
# This may be replaced when dependencies are built.
