file(REMOVE_RECURSE
  "CMakeFiles/ablation_interlocks.dir/ablation_interlocks.cc.o"
  "CMakeFiles/ablation_interlocks.dir/ablation_interlocks.cc.o.d"
  "ablation_interlocks"
  "ablation_interlocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interlocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
