file(REMOVE_RECURSE
  "CMakeFiles/fig8_stalls.dir/fig8_stalls.cc.o"
  "CMakeFiles/fig8_stalls.dir/fig8_stalls.cc.o.d"
  "fig8_stalls"
  "fig8_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
