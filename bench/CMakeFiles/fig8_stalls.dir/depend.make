# Empty dependencies file for fig8_stalls.
# This may be replaced when dependencies are built.
