# Empty dependencies file for simperf.
# This may be replaced when dependencies are built.
