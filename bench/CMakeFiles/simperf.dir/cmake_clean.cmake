file(REMOVE_RECURSE
  "CMakeFiles/simperf.dir/simperf.cc.o"
  "CMakeFiles/simperf.dir/simperf.cc.o.d"
  "simperf"
  "simperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
