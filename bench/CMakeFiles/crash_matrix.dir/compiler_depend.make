# Empty compiler generated dependencies file for crash_matrix.
# This may be replaced when dependencies are built.
