file(REMOVE_RECURSE
  "CMakeFiles/crash_matrix.dir/crash_matrix.cc.o"
  "CMakeFiles/crash_matrix.dir/crash_matrix.cc.o.d"
  "crash_matrix"
  "crash_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
