file(REMOVE_RECURSE
  "CMakeFiles/fig9_sensitivity.dir/fig9_sensitivity.cc.o"
  "CMakeFiles/fig9_sensitivity.dir/fig9_sensitivity.cc.o.d"
  "fig9_sensitivity"
  "fig9_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
