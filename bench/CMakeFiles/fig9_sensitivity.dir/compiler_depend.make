# Empty compiler generated dependencies file for fig9_sensitivity.
# This may be replaced when dependencies are built.
