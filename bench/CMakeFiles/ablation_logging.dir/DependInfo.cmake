
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_logging.cc" "bench/CMakeFiles/ablation_logging.dir/ablation_logging.cc.o" "gcc" "bench/CMakeFiles/ablation_logging.dir/ablation_logging.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/core/CMakeFiles/sw_core.dir/DependInfo.cmake"
  "/root/repo/src/crash/CMakeFiles/sw_crash.dir/DependInfo.cmake"
  "/root/repo/src/fuzz/CMakeFiles/sw_fuzz.dir/DependInfo.cmake"
  "/root/repo/src/workloads/CMakeFiles/sw_workloads.dir/DependInfo.cmake"
  "/root/repo/src/runtime/CMakeFiles/sw_runtime.dir/DependInfo.cmake"
  "/root/repo/src/persist/CMakeFiles/sw_persist.dir/DependInfo.cmake"
  "/root/repo/src/cpu/CMakeFiles/sw_cpu.dir/DependInfo.cmake"
  "/root/repo/src/cache/CMakeFiles/sw_cache.dir/DependInfo.cmake"
  "/root/repo/src/mem/CMakeFiles/sw_mem.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/sw_sim.dir/DependInfo.cmake"
  "/root/repo/src/sanitizer/CMakeFiles/sw_sanitizer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
