# Empty dependencies file for fuzz_campaign.
# This may be replaced when dependencies are built.
