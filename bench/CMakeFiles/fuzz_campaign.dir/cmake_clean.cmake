file(REMOVE_RECURSE
  "CMakeFiles/fuzz_campaign.dir/fuzz_campaign.cc.o"
  "CMakeFiles/fuzz_campaign.dir/fuzz_campaign.cc.o.d"
  "fuzz_campaign"
  "fuzz_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
