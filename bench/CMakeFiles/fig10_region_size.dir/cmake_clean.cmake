file(REMOVE_RECURSE
  "CMakeFiles/fig10_region_size.dir/fig10_region_size.cc.o"
  "CMakeFiles/fig10_region_size.dir/fig10_region_size.cc.o.d"
  "fig10_region_size"
  "fig10_region_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_region_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
