# Empty compiler generated dependencies file for fig10_region_size.
# This may be replaced when dependencies are built.
