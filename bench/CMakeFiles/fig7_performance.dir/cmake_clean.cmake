file(REMOVE_RECURSE
  "CMakeFiles/fig7_performance.dir/fig7_performance.cc.o"
  "CMakeFiles/fig7_performance.dir/fig7_performance.cc.o.d"
  "fig7_performance"
  "fig7_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
