/**
 * @file
 * Ablation: the §IV coherence interlocks.
 *
 * StrandWeaver extends the write-back buffer and snoop handling with
 * per-strand-buffer drain points so that involuntary persists
 * (write-backs) and ownership steals (read-exclusive snoops) cannot
 * overtake in-flight CLWBs. This harness measures what those
 * interlocks cost: the same workloads run with the interlocks
 * disabled, which would forfeit inter-thread strong persist
 * atomicity (Figure 2 i,j) — recovery correctness for free-ish, as
 * the paper argues: the stalls are rare.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace strand;

namespace
{

RunMetrics
runWith(const RecordedWorkload &workload, bool interlocks)
{
    InstrumentorParams ip;
    ip.design = HwDesign::StrandWeaver;
    ip.model = PersistencyModel::Sfr;
    Instrumentor instr(ip);
    auto streams = instr.lower(workload.trace);

    SystemConfig cfg;
    cfg.numCores = static_cast<unsigned>(streams.size());
    cfg.design = HwDesign::StrandWeaver;
    cfg.caches.persistInterlocks = interlocks;
    System sys(cfg);
    sys.seedImage(workload.preload);
    sys.loadStreams(std::move(streams));

    RunMetrics metrics;
    sys.run();
    for (CoreId i = 0; i < workload.params.numThreads; ++i)
        metrics.runTicks =
            std::max(metrics.runTicks, sys.finishTickOf(i));
    metrics.persistStalls = sys.hierarchy().snoopStalls.value();
    return metrics;
}

} // namespace

int
main()
{
    unsigned threads = benchThreads();
    unsigned ops = benchOpsPerThread(60);
    std::printf("Ablation: §IV write-back/snoop persist interlocks "
                "(StrandWeaver, SFR), threads=%u ops/thread=%u\n",
                threads, ops);
    bench::rule(70);
    std::printf("%-12s %14s %14s %10s %12s\n", "workload",
                "with (us)", "without (us)", "overhead",
                "snoop stalls");
    bench::rule(70);

    for (WorkloadKind kind : allWorkloads) {
        WorkloadParams params;
        params.numThreads = threads;
        params.opsPerThread = ops;
        RecordedWorkload workload = recordWorkload(kind, params);
        RunMetrics with = runWith(workload, true);
        RunMetrics without = runWith(workload, false);
        double overhead =
            100.0 * (static_cast<double>(with.runTicks) /
                         static_cast<double>(without.runTicks) -
                     1.0);
        std::printf("%-12s %14.1f %14.1f %9.2f%% %12.0f\n",
                    workloadName(kind),
                    static_cast<double>(with.runTicks) / 1e6,
                    static_cast<double>(without.runTicks) / 1e6,
                    overhead, with.persistStalls);
    }
    bench::rule(70);
    std::printf("The interlocks are what make inter-thread strong "
                "persist atomicity hold\n(Figure 2 i,j); their cost "
                "is the price of correctness.\n");
    return 0;
}
