/**
 * @file
 * Ablation: the §IV coherence interlocks.
 *
 * StrandWeaver extends the write-back buffer and snoop handling with
 * per-strand-buffer drain points so that involuntary persists
 * (write-backs) and ownership steals (read-exclusive snoops) cannot
 * overtake in-flight CLWBs. This harness measures what those
 * interlocks cost: the same workloads run with the interlocks
 * disabled, which would forfeit inter-thread strong persist
 * atomicity (Figure 2 i,j) — recovery correctness for free-ish, as
 * the paper argues: the stalls are rare.
 *
 * Cells are (workload x {interlocks, no-interlocks}) via a per-cell
 * cache-config override; JSON lands in
 * bench/out/ablation_interlocks.json.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace strand;

int
main(int argc, char **argv)
{
    int rc = 0;
    if (bench::handleArgs(argc, argv, "coherence-interlock ablation", &rc))
        return rc;
    unsigned threads = benchThreads();
    unsigned ops = benchOpsPerThread(60);

    SweepSpec spec;
    spec.name = "ablation_interlocks";
    for (WorkloadKind kind : allWorkloads) {
        WorkloadParams params;
        params.numThreads = threads;
        params.opsPerThread = ops;
        auto recorded = recordShared(kind, params);

        SweepCell &with = spec.addTiming(recorded,
                                         HwDesign::StrandWeaver,
                                         PersistencyModel::Sfr);
        with.variant = "interlocks";
        SweepCell &without = spec.addTiming(recorded,
                                            HwDesign::StrandWeaver,
                                            PersistencyModel::Sfr);
        without.variant = "no-interlocks";
        without.config.baseSystem.caches.persistInterlocks = false;
        // Without the interlocks crash consistency is forfeit by
        // design, so skip validation (it would trip under
        // SW_CRASH_POINTS — correctly, but that is the point being
        // ablated).
        without.validate = false;
    }
    SweepResult result = runSweep(spec);

    std::printf("Ablation: §IV write-back/snoop persist interlocks "
                "(StrandWeaver, SFR), threads=%u ops/thread=%u\n",
                threads, ops);
    bench::rule(70);
    std::printf("%-12s %14s %14s %10s %12s\n", "workload",
                "with (us)", "without (us)", "overhead",
                "snoop stalls");
    bench::rule(70);

    for (WorkloadKind kind : allWorkloads) {
        std::string base = std::string(workloadName(kind)) +
                           "/strandweaver/sfr/";
        const CellResult *with = result.find(base + "interlocks");
        const CellResult *without =
            result.find(base + "no-interlocks");
        if (!with || !without || !with->ok || !without->ok)
            continue;
        double overhead =
            100.0 * (static_cast<double>(with->metrics.runTicks) /
                         static_cast<double>(
                             without->metrics.runTicks) -
                     1.0);
        std::printf("%-12s %14.1f %14.1f %9.2f%% %12.0f\n",
                    workloadName(kind),
                    static_cast<double>(with->metrics.runTicks) / 1e6,
                    static_cast<double>(without->metrics.runTicks) /
                        1e6,
                    overhead, with->metrics.snoopStalls);
    }
    bench::rule(70);
    std::printf("The interlocks are what make inter-thread strong "
                "persist atomicity hold\n(Figure 2 i,j); their cost "
                "is the price of correctness.\n");
    return bench::finish(result);
}
