/**
 * @file
 * Figure 10 — speedup vs failure-atomic region size. A
 * microbenchmark performs k undo-logged updates per SFR (k = 2..16);
 * more operations per region means more independent log/update
 * strands for StrandWeaver to overlap, so the speedup over Intel x86
 * grows with k (the paper reports 1.10x at two operations per SFR,
 * rising with region size).
 *
 * Each k is a synthetic recorded trace swept as an (Intel,
 * StrandWeaver) cell pair; JSON lands in
 * bench/out/fig10_region_size.json.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "runtime/layout.hh"
#include "sim/random.hh"

using namespace strand;

namespace
{

/** Record k random disjoint updates per region, per thread. */
std::shared_ptr<const RecordedWorkload>
recordSweep(unsigned threads, unsigned regions, unsigned opsPerRegion,
            std::uint64_t seed)
{
    auto result = std::make_shared<RecordedWorkload>();
    result->kind = WorkloadKind::ArraySwap; // closest label
    result->params.numThreads = threads;
    result->params.opsPerThread = regions;

    LogLayout layout;
    TraceRecorder rec(threads);
    PersistentHeap heap(layout, threads);
    Rng rng(seed);

    constexpr std::uint64_t linesPerThread = 2048;
    std::vector<Addr> bases;
    for (CoreId t = 0; t < threads; ++t) {
        Addr base = heap.alloc(t, linesPerThread * lineBytes);
        bases.push_back(base);
        for (std::uint64_t i = 0; i < linesPerThread; ++i)
            rec.preload(base + i * lineBytes, i + 1);
    }

    for (unsigned r = 0; r < regions; ++r) {
        for (CoreId t = 0; t < threads; ++t) {
            rec.lockAcquire(t, 500 + t);
            rec.regionBegin(t);
            for (unsigned k = 0; k < opsPerRegion; ++k) {
                Addr addr = bases[t] +
                            rng.nextBounded(linesPerThread) *
                                lineBytes;
                // Each operation carries the application work a real
                // microbenchmark op does (hashing, traversal,
                // allocation) — the regrouping of Figure 10 varies
                // how many such operations share one SFR.
                rec.compute(t, 100);
                rec.write(t, addr, rec.peek(addr) + 1);
            }
            rec.regionEnd(t);
            rec.lockRelease(t, 500 + t);
            rec.compute(t, 40);
        }
    }

    result->preload = rec.preloadedWords();
    result->trace = rec.takeTrace();
    result->workload = makeWorkload(WorkloadKind::ArraySwap);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    int rc = 0;
    if (bench::handleArgs(argc, argv, "Figure 10 speedup vs failure-atomic region size", &rc))
        return rc;
    unsigned threads = benchThreads();
    unsigned regions = benchOpsPerThread(60);
    constexpr unsigned opsPerSfr[] = {2, 4, 6, 8, 12, 16};

    SweepSpec spec;
    spec.name = "fig10_region_size";
    for (unsigned k : opsPerSfr) {
        auto workload = recordSweep(threads, regions, k, 7);
        std::string label = "sfr-" + std::to_string(k) + "ops";
        SweepCell &intel = spec.addTiming(
            workload, HwDesign::IntelX86, PersistencyModel::Sfr);
        intel.workloadLabel = label;
        intel.validate = false; // synthetic trace: no invariants
        SweepCell &sw = spec.addTiming(workload,
                                       HwDesign::StrandWeaver,
                                       PersistencyModel::Sfr,
                                       intel.key());
        sw.workloadLabel = label;
        sw.validate = false;
    }
    SweepResult result = runSweep(spec);

    std::printf("Figure 10: StrandWeaver speedup over Intel x86 vs "
                "operations per SFR\n");
    std::printf("threads=%u regions/thread=%u\n", threads, regions);
    bench::rule(60);
    std::printf("%-14s %12s %12s %12s\n", "ops per SFR", "intel (us)",
                "sw (us)", "speedup");
    bench::rule(60);

    for (unsigned k : opsPerSfr) {
        std::string label = "sfr-" + std::to_string(k) + "ops";
        const CellResult *intel = result.find(
            label + "/" + hwDesignName(HwDesign::IntelX86) + "/sfr");
        const CellResult *sw = result.find(
            label + "/" + hwDesignName(HwDesign::StrandWeaver) +
            "/sfr");
        if (!intel || !sw || !intel->ok || !sw->ok)
            continue;
        std::printf("%-14u %12.1f %12.1f %11.2fx\n", k,
                    static_cast<double>(intel->metrics.runTicks) / 1e6,
                    static_cast<double>(sw->metrics.runTicks) / 1e6,
                    sw->speedup);
    }
    bench::rule(60);
    std::printf("Paper: 1.10x average at 2 ops/SFR, increasing with "
                "the number of operations per region.\n");
    return bench::finish(result);
}
