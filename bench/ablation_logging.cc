/**
 * @file
 * Ablation: undo vs. redo logging under strand persistency.
 *
 * The paper implements undo logging and sketches redo logging as
 * future work (§VII): a transaction's redo entries flush
 * concurrently on one strand, a persist barrier orders them before
 * the commit marker, and the in-place updates follow. This harness
 * runs both styles on the Intel baseline and on StrandWeaver
 * (failure-atomic transactions) to test the paper's hypothesis that
 * "other logging mechanisms, such as redo logging, may also benefit
 * from the relaxed semantics under strand persistency".
 *
 * Cells are (workload x design x log style) with the style as a
 * per-cell ExperimentConfig override; JSON lands in
 * bench/out/ablation_logging.json.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace strand;

int
main(int argc, char **argv)
{
    int rc = 0;
    if (bench::handleArgs(argc, argv, "undo vs redo logging ablation", &rc))
        return rc;
    unsigned threads = benchThreads();
    unsigned ops = benchOpsPerThread(60);

    constexpr WorkloadKind kinds[] = {
        WorkloadKind::Queue, WorkloadKind::Hashmap,
        WorkloadKind::ArraySwap, WorkloadKind::RbTree,
        WorkloadKind::NStoreWrHeavy};
    constexpr LogStyle styles[] = {LogStyle::Undo, LogStyle::Redo};

    SweepSpec spec;
    spec.name = "ablation_logging";
    for (WorkloadKind kind : kinds) {
        WorkloadParams params;
        params.numThreads = threads;
        params.opsPerThread = ops;
        auto recorded = recordShared(kind, params);

        for (LogStyle style : styles) {
            const char *variant =
                style == LogStyle::Undo ? "undo" : "redo";
            SweepCell &intel = spec.addTiming(
                recorded, HwDesign::IntelX86, PersistencyModel::Txn);
            intel.config.logStyle = style;
            intel.variant = variant;
            SweepCell &sw = spec.addTiming(recorded,
                                           HwDesign::StrandWeaver,
                                           PersistencyModel::Txn,
                                           intel.key());
            sw.config.logStyle = style;
            sw.variant = variant;
        }
    }
    SweepResult result = runSweep(spec);

    std::printf("Ablation: undo vs redo logging (TXN model), "
                "threads=%u ops/thread=%u\n",
                threads, ops);
    bench::rule(78);
    std::printf("%-12s %11s %11s %11s %11s %9s %9s\n", "workload",
                "undo/intel", "redo/intel", "undo/sw", "redo/sw",
                "sw undo", "sw redo");
    std::printf("%-12s %11s %11s %11s %11s %9s %9s\n", "", "(us)",
                "(us)", "(us)", "(us)", "speedup", "speedup");
    bench::rule(78);

    auto find = [&result](WorkloadKind kind, HwDesign design,
                          const char *variant) {
        std::string key = std::string(workloadName(kind)) + "/" +
                          hwDesignName(design) + "/txn/" + variant;
        return result.find(key);
    };

    std::vector<double> undoGain, redoGain;
    for (WorkloadKind kind : kinds) {
        const CellResult *undoIntel =
            find(kind, HwDesign::IntelX86, "undo");
        const CellResult *redoIntel =
            find(kind, HwDesign::IntelX86, "redo");
        const CellResult *undoSw =
            find(kind, HwDesign::StrandWeaver, "undo");
        const CellResult *redoSw =
            find(kind, HwDesign::StrandWeaver, "redo");
        if (!undoIntel->ok || !redoIntel->ok || !undoSw->ok ||
            !redoSw->ok) {
            continue;
        }
        undoGain.push_back(undoSw->speedup);
        redoGain.push_back(redoSw->speedup);
        std::printf("%-12s %11.1f %11.1f %11.1f %11.1f %8.2fx "
                    "%8.2fx\n",
                    workloadName(kind),
                    static_cast<double>(undoIntel->metrics.runTicks) /
                        1e6,
                    static_cast<double>(redoIntel->metrics.runTicks) /
                        1e6,
                    static_cast<double>(undoSw->metrics.runTicks) /
                        1e6,
                    static_cast<double>(redoSw->metrics.runTicks) /
                        1e6,
                    undoSw->speedup, redoSw->speedup);
    }
    bench::rule(78);
    if (!undoGain.empty() && !redoGain.empty()) {
        double undo = bench::geomean(undoGain);
        double redo = bench::geomean(redoGain);
        std::printf("geomean strand speedup: undo %.2fx, redo "
                    "%.2fx\n",
                    undo, redo);
        if (redo >= 1.05) {
            std::printf("Strand persistency accelerates redo logging "
                        "too, as §VII hypothesizes.\n");
        } else {
            std::printf(
                "A counterpoint to the §VII hypothesis in this "
                "model: redo logging already\nneeds just one fence "
                "per transaction (log -> marker), so the Intel "
                "baseline\nloses most of its SFENCE stalls and "
                "strand persistency has little left to\nrecover. "
                "Redo is the faster style on BOTH designs here; the "
                "strands' win\nis specific to orderings that fences "
                "over-serialize, like undo's per-store\npairs.\n");
        }
    }
    return bench::finish(result);
}
