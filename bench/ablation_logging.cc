/**
 * @file
 * Ablation: undo vs. redo logging under strand persistency.
 *
 * The paper implements undo logging and sketches redo logging as
 * future work (§VII): a transaction's redo entries flush
 * concurrently on one strand, a persist barrier orders them before
 * the commit marker, and the in-place updates follow. This harness
 * runs both styles on the Intel baseline and on StrandWeaver
 * (failure-atomic transactions) to test the paper's hypothesis that
 * "other logging mechanisms, such as redo logging, may also benefit
 * from the relaxed semantics under strand persistency".
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace strand;

namespace
{

RunMetrics
runWith(const RecordedWorkload &workload, HwDesign design,
        LogStyle style)
{
    InstrumentorParams ip;
    ip.design = design;
    ip.model = PersistencyModel::Txn;
    ip.logStyle = style;
    Instrumentor instr(ip);
    auto streams = instr.lower(workload.trace);

    SystemConfig cfg;
    cfg.numCores = static_cast<unsigned>(streams.size());
    cfg.design = design;
    System sys(cfg);
    sys.seedImage(workload.preload);
    sys.loadStreams(std::move(streams));

    RunMetrics metrics;
    sys.run();
    for (CoreId i = 0; i < workload.params.numThreads; ++i)
        metrics.runTicks =
            std::max(metrics.runTicks, sys.finishTickOf(i));
    metrics.clwbs = sys.totalClwbs();
    return metrics;
}

} // namespace

int
main()
{
    unsigned threads = benchThreads();
    unsigned ops = benchOpsPerThread(60);
    std::printf("Ablation: undo vs redo logging (TXN model), "
                "threads=%u ops/thread=%u\n",
                threads, ops);
    bench::rule(78);
    std::printf("%-12s %11s %11s %11s %11s %9s %9s\n", "workload",
                "undo/intel", "redo/intel", "undo/sw", "redo/sw",
                "sw undo", "sw redo");
    std::printf("%-12s %11s %11s %11s %11s %9s %9s\n", "", "(us)",
                "(us)", "(us)", "(us)", "speedup", "speedup");
    bench::rule(78);

    std::vector<double> undoGain, redoGain;
    for (WorkloadKind kind :
         {WorkloadKind::Queue, WorkloadKind::Hashmap,
          WorkloadKind::ArraySwap, WorkloadKind::RbTree,
          WorkloadKind::NStoreWrHeavy}) {
        WorkloadParams params;
        params.numThreads = threads;
        params.opsPerThread = ops;
        RecordedWorkload workload = recordWorkload(kind, params);

        RunMetrics undoIntel =
            runWith(workload, HwDesign::IntelX86, LogStyle::Undo);
        RunMetrics redoIntel =
            runWith(workload, HwDesign::IntelX86, LogStyle::Redo);
        RunMetrics undoSw = runWith(workload, HwDesign::StrandWeaver,
                                    LogStyle::Undo);
        RunMetrics redoSw = runWith(workload, HwDesign::StrandWeaver,
                                    LogStyle::Redo);

        double su = undoSw.speedupOver(undoIntel);
        double sr = redoSw.speedupOver(redoIntel);
        undoGain.push_back(su);
        redoGain.push_back(sr);
        std::printf("%-12s %11.1f %11.1f %11.1f %11.1f %8.2fx "
                    "%8.2fx\n",
                    workloadName(kind),
                    static_cast<double>(undoIntel.runTicks) / 1e6,
                    static_cast<double>(redoIntel.runTicks) / 1e6,
                    static_cast<double>(undoSw.runTicks) / 1e6,
                    static_cast<double>(redoSw.runTicks) / 1e6, su,
                    sr);
    }
    bench::rule(78);
    double undo = bench::geomean(undoGain);
    double redo = bench::geomean(redoGain);
    std::printf("geomean strand speedup: undo %.2fx, redo %.2fx\n",
                undo, redo);
    if (redo >= 1.05) {
        std::printf("Strand persistency accelerates redo logging "
                    "too, as §VII hypothesizes.\n");
    } else {
        std::printf(
            "A counterpoint to the §VII hypothesis in this model: "
            "redo logging already\nneeds just one fence per "
            "transaction (log -> marker), so the Intel baseline\n"
            "loses most of its SFENCE stalls and strand persistency "
            "has little left to\nrecover. Redo is the faster style "
            "on BOTH designs here; the strands' win\nis specific "
            "to orderings that fences over-serialize, like undo's "
            "per-store\npairs.\n");
    }
    return 0;
}
