/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot
 * structures: the event queue, the cache tag array, the RNG, the
 * PMO litmus checker, and the lowering pass. These guard the
 * simulator's own performance (a full Figure 7 matrix is ~120 timed
 * runs) rather than reproducing a paper artifact.
 */

#include <benchmark/benchmark.h>

#include "cache/cache_array.hh"
#include "persist/pmo.hh"
#include "runtime/instrumentor.hh"
#include "runtime/recorder.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace strand
{
namespace
{

void
BM_EventQueueScheduleService(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<Tick>((i * 7919) % 10007),
                        [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleService);

void
BM_CacheArrayLookup(benchmark::State &state)
{
    CacheArray array(32 * 1024, 2);
    for (Addr line = 0; line < 32 * 1024; line += 64)
        array.install(array.victimFor(line), line,
                      CoherenceState::Shared);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.findLine(addr));
        addr = (addr + 64) % (32 * 1024);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void
BM_ZipfianNext(benchmark::State &state)
{
    Rng rng(1);
    ZipfianGenerator zipf(16384, 0.99);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.next(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext);

void
BM_PmoModelBuildAndCheck(benchmark::State &state)
{
    const auto persists = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        PmoProgram prog;
        prog.threads.resize(1);
        std::vector<std::uint64_t> trace;
        for (std::uint64_t i = 0; i < persists; ++i) {
            prog.threads[0].push_back(
                PmoOp::persist(i + 1, pmBase + i * 64));
            if (i % 4 == 1)
                prog.threads[0].push_back(PmoOp::barrier());
            if (i % 4 == 3)
                prog.threads[0].push_back(PmoOp::newStrand());
            trace.push_back(i + 1);
        }
        PmoModel model(prog);
        benchmark::DoNotOptimize(model.checkTrace(trace));
    }
    state.SetItemsProcessed(state.iterations() * persists);
}
BENCHMARK(BM_PmoModelBuildAndCheck)->Arg(16)->Arg(64);

void
BM_LoweringPass(benchmark::State &state)
{
    // One recorded region trace, lowered repeatedly.
    TraceRecorder rec(2);
    for (int r = 0; r < 64; ++r) {
        for (CoreId t = 0; t < 2; ++t) {
            rec.lockAcquire(t, 1);
            rec.regionBegin(t);
            rec.write(t, pmBase + 0x2000000 + (r * 2 + t) * 64,
                      r + 1);
            rec.regionEnd(t);
            rec.lockRelease(t, 1);
        }
    }
    RegionTrace trace = rec.takeTrace();
    for (auto _ : state) {
        InstrumentorParams params;
        params.design = HwDesign::StrandWeaver;
        params.model = PersistencyModel::Sfr;
        Instrumentor instr(params);
        benchmark::DoNotOptimize(instr.lower(trace));
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_LoweringPass);

} // namespace
} // namespace strand

BENCHMARK_MAIN();
