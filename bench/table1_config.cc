/**
 * @file
 * Table I — simulator specifications. Prints the configuration the
 * other harnesses run with, next to the paper's values, so any
 * deviation is visible at a glance. Runs no experiment cells; it
 * still emits an (empty) sweep JSON document so the bench/out
 * trajectory covers every bench binary.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace strand;

int
main(int argc, char **argv)
{
    int rc = 0;
    if (bench::handleArgs(argc, argv, "Table I simulator configuration vs the paper", &rc))
        return rc;
    SystemConfig cfg;
    std::printf("Table I: simulator specifications\n");
    bench::rule(72);
    std::printf("%-26s %-26s %s\n", "parameter", "paper", "this run");
    bench::rule(72);
    std::printf("%-26s %-26s %u cores, %.1f GHz\n", "Core",
                "8-core, 2 GHz OoO", cfg.numCores,
                1000.0 / static_cast<double>(cfg.core.clockPeriod));
    std::printf("%-26s %-26s %u-wide / %u-wide\n", "Dispatch/Commit",
                "6-wide / 8-wide", cfg.core.dispatchWidth,
                cfg.core.commitWidth);
    std::printf("%-26s %-26s %u entries\n", "ROB", "224 entries",
                cfg.core.robEntries);
    std::printf("%-26s %-26s %u/%u entries\n", "Load/Store Queue",
                "72/64 entries", cfg.core.lqEntries,
                cfg.core.sqEntries);
    std::printf("%-26s %-26s %llu KiB, %u-way, %llu ns, %u MSHRs\n",
                "D-Cache", "32 KiB 2-way, 2 ns, 6 MSHRs",
                static_cast<unsigned long long>(cfg.caches.l1Size /
                                                1024),
                cfg.caches.l1Ways,
                static_cast<unsigned long long>(cfg.caches.l1Latency /
                                                ticksPerNs),
                cfg.caches.l1Mshrs);
    std::printf("%-26s %-26s %llu MiB, %u-way, %llu ns, %u MSHRs\n",
                "L2-Cache", "28 MiB 16-way, 16 ns, 16 MSHRs",
                static_cast<unsigned long long>(cfg.caches.l2Size /
                                                1024 / 1024),
                cfg.caches.l2Ways,
                static_cast<unsigned long long>(cfg.caches.l2Latency /
                                                ticksPerNs),
                cfg.caches.l2Mshrs);
    std::printf("%-26s %-26s %u/%u entries\n", "PM write/read queue",
                "64/32 entries", cfg.pm.writeQueueEntries,
                cfg.pm.readQueueEntries);
    std::printf("%-26s %-26s %llu B\n", "PM row buffer", "1 KiB",
                static_cast<unsigned long long>(cfg.pm.rowBytes));
    std::printf("%-26s %-26s %llu ns\n", "PM read latency",
                "346 ns (per [58])",
                static_cast<unsigned long long>(cfg.pm.readLatency /
                                                ticksPerNs));
    std::printf("%-26s %-26s %llu ns\n", "PM write to controller",
                "96 ns (ADR ack)",
                static_cast<unsigned long long>(
                    cfg.pm.writeAcceptLatency / ticksPerNs));
    std::printf("%-26s %-26s %llu ns\n", "PM write to media",
                "500 ns",
                static_cast<unsigned long long>(
                    cfg.pm.mediaWriteLatency / ticksPerNs));
    std::printf("%-26s %-26s %u-entry PQ, %ux%u strand buffers\n",
                "StrandWeaver", "16-entry PQ, 4x4 buffers",
                cfg.engine.pqEntries, cfg.engine.strandBuffers,
                cfg.engine.entriesPerBuffer);
    bench::rule(72);

    SweepSpec spec;
    spec.name = "table1_config";
    return bench::finish(runSweep(spec));
}
