/**
 * @file
 * Adversarial persistency fuzzing campaign.
 *
 * Every cell runs SW_FUZZ_TRIALS seeded trials of one (workload,
 * design, model): each trial randomizes the workload op mix, drives
 * the persist engines and the write-back drain through an adversarial
 * schedule of legal delays, and validates Figure 6 recovery at every
 * PM admission (with per-trial torn-word injection). Failing trials
 * are shrunk by ddmin to a minimal decision log and written as
 * replayable reproducer files under <outDir>/repro/.
 *
 * Expectations mirror crash_matrix: every recoverable design must
 * pass every trial; NON-ATOMIC must *fail* (its violations prove the
 * fuzzer finds real ordering bugs); and the HOPS cells run twice —
 * the plain CLWB-based emulation, whose known whole-line modeling gap
 * the fuzzer reproduces, and the opt-in epoch-interlock variant,
 * which must pass (see EXPERIMENTS.md "Fuzz campaigns").
 *
 * Sizes scale with SW_FUZZ_TRIALS / SW_FUZZ_SEED / SW_THREADS /
 * SW_OPS; cells run on SW_JOBS workers with byte-identical output at
 * any job count. `fuzz_campaign --replay <file>` re-executes one
 * reproducer instead of the matrix.
 */

#include <cstdio>
#include <cstring>

#include "bench/bench_util.hh"
#include "fuzz/repro.hh"

using namespace strand;

namespace
{

int
replayMode(const char *path)
{
    std::printf("replaying %s\n", path);
    FuzzReplayOutcome outcome = replayReproFile(path);
    std::printf("points checked: %u, failed: %u\n",
                outcome.pointsChecked, outcome.pointsFailed);
    if (!outcome.failed) {
        std::printf("reproducer PASSED (violation not reproduced)\n");
        return 1;
    }
    std::printf("violation at tick %llu: %s\n",
                static_cast<unsigned long long>(outcome.crashTick),
                outcome.violation.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::strcmp(argv[1], "--replay") == 0)
        return replayMode(argv[2]);
    if (argc == 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0)) {
        std::printf("%s — adversarial persistency fuzzing campaign\n"
                    "usage: %s [--replay <file.repro>]\n\n%s",
                    argv[0], argv[0], envKnobTable().c_str());
        return 0;
    }
    if (argc != 1) {
        std::fprintf(stderr,
                     "usage: %s [--replay <file.repro>]\n", argv[0]);
        return 2;
    }

    const unsigned threads = benchThreads(2);
    const unsigned ops = benchOpsPerThread(10);
    const unsigned trials = benchFuzzTrials(6);
    const std::uint64_t seed = benchFuzzSeed();
    const std::string reproDir = envConfig().outDir + "/repro";

    // Media-fault fuzzing is opt-in here (unlike crash_matrix, where
    // the axis defaults on): set any SW_MEDIA_* count and every
    // trial's injections gain adversary-driven poison/flip/drop
    // opportunities, recorded in the decision log and shrunk by
    // ddmin like schedule holds.
    MediaFaultConfig media;
    media.poisonLines = envConfig().mediaPoison.value_or(0);
    media.bitFlips = envConfig().mediaFlips.value_or(0);
    media.dropAdmissions = envConfig().mediaDrop.value_or(0);

    SweepSpec spec;
    spec.name = "fuzz_campaign";
    for (WorkloadKind kind : {WorkloadKind::Queue,
                              WorkloadKind::Hashmap,
                              WorkloadKind::RbTree,
                              WorkloadKind::NStoreBalanced}) {
        for (HwDesign design : allDesigns) {
            for (PersistencyModel model : allModels) {
                FuzzCellConfig campaign;
                campaign.base.kind = kind;
                campaign.base.design = design;
                campaign.base.model = model;
                campaign.base.numThreads = threads;
                campaign.base.opsPerThread = ops;
                // Pin the sanitizer into the spec (rather than rely
                // on the replaying environment's SW_PMOSAN) so any
                // .repro this campaign writes replays with the same
                // checker attached.
                if (benchPmosan())
                    campaign.base.pmosan = true;
                campaign.base.media = media;
                campaign.trials = trials;
                campaign.seed = seed;
                campaign.reproDir = reproDir;
                spec.addFuzz(campaign);

                if (design == HwDesign::Hops) {
                    // The opt-in modeling-gap fix must hold up under
                    // the same schedules the plain emulation fails.
                    campaign.base.experiment.engine
                        .hopsEpochInterlock = true;
                    SweepCell &cell = spec.addFuzz(campaign);
                    cell.variant = "interlock";
                }
            }
        }
    }
    SweepResult result = runSweep(spec);

    std::printf("Fuzz campaign (%u threads, %u ops/thread, %u trials "
                "per cell, seed 0x%llx)\n\n",
                threads, ops, trials,
                static_cast<unsigned long long>(seed));
    std::printf("%-10s %-16s %-10s %7s %7s %9s %7s\n", "workload",
                "design", "model", "trials", "failing", "points",
                "holds");
    bench::rule(74);

    unsigned unexpectedFailures = 0;
    unsigned unexpectedPasses = 0;
    unsigned nonAtomicViolations = 0;
    unsigned hopsGapTrials = 0;
    std::string lastWorkload;
    for (const CellResult &cell : result.cells) {
        if (!lastWorkload.empty() && cell.workload != lastWorkload)
            std::printf("\n");
        lastWorkload = cell.workload;

        std::string label = persistencyModelName(cell.model);
        if (!cell.variant.empty())
            label += "+" + cell.variant;
        if (!cell.ok) {
            std::printf("%-10s %-16s %-10s %7s %7s %9s %7s  "
                        "<-- PANIC: %s\n",
                        cell.workload.c_str(),
                        hwDesignName(cell.design), label.c_str(), "-",
                        "-", "-", "-", cell.error.c_str());
            ++unexpectedFailures;
            continue;
        }

        const FuzzCellResult &fuzz = cell.fuzz;
        // NON-ATOMIC must fail (oracle evidence); plain HOPS carries
        // a known whole-line modeling gap on update-in-place
        // workloads, reported but tolerated. Everything else —
        // including hops+interlock — must pass every trial.
        const bool expectFail = cell.design == HwDesign::NonAtomic;
        const bool tolerateFail = cell.design == HwDesign::Hops &&
                                  cell.variant.empty();
        const char *note = "";
        if (!fuzz.allPassed()) {
            if (expectFail) {
                note = "  (expected)";
                nonAtomicViolations += fuzz.failingTrials;
            } else if (tolerateFail) {
                note = "  (known modeling gap)";
                hopsGapTrials += fuzz.failingTrials;
            } else {
                note = "  <-- FAIL";
                ++unexpectedFailures;
            }
        } else if (expectFail) {
            // A fuzzer that cannot find NON-ATOMIC's missing ordering
            // has lost its teeth; fail loudly.
            note = "  <-- expected violations, found none";
            ++unexpectedPasses;
        }
        std::printf("%-10s %-16s %-10s %7u %7u %9llu %7llu%s\n",
                    cell.workload.c_str(), hwDesignName(cell.design),
                    label.c_str(), fuzz.trials, fuzz.failingTrials,
                    static_cast<unsigned long long>(
                        fuzz.pointsChecked),
                    static_cast<unsigned long long>(fuzz.holds),
                    note);
        for (const FuzzFailure &f : fuzz.failures) {
            if (expectFail || tolerateFail)
                continue;
            std::printf("    seed %llx, tick %llu, %zu->%zu "
                        "decisions: %s\n",
                        static_cast<unsigned long long>(f.trialSeed),
                        static_cast<unsigned long long>(f.crashTick),
                        f.rawDecisions, f.shrunkDecisions,
                        f.violation.c_str());
            if (!f.reproPath.empty())
                std::printf("    repro: %s\n", f.reproPath.c_str());
        }
    }

    std::printf("\nnon-atomic violating trials: %u "
                "(the fuzzer has teeth)\n",
                nonAtomicViolations);
    if (hopsGapTrials > 0)
        std::printf("hops (plain) modeling-gap trials: %u "
                    "(pass under hops/interlock)\n",
                    hopsGapTrials);
    int rc = bench::finish(result);
    if (unexpectedFailures > 0 || unexpectedPasses > 0) {
        std::printf("%u unexpected failure(s), %u missing expected "
                    "failure(s)\n",
                    unexpectedFailures, unexpectedPasses);
        return 1;
    }
    std::printf("fuzz expectations met for every cell\n");
    return rc;
}
