/**
 * @file
 * Figure 7 — performance comparison. For each language-level
 * persistency model (TXN / SFR / ATLAS) and each Table II workload,
 * prints the speedup of HOPS, NO-PERSIST-QUEUE, StrandWeaver, and
 * NON-ATOMIC normalized to the Intel x86 baseline, plus per-model
 * and overall averages against the paper's headline numbers
 * (StrandWeaver: 1.45x avg / up to 1.97x over Intel; 1.20x avg / up
 * to 1.55x over HOPS; NO-PQ 1.29x avg; SFR > TXN > ATLAS).
 *
 * The 3 models x 8 workloads x 5 designs matrix is declared as one
 * SweepSpec and executed cell-parallel on SW_JOBS workers; results
 * also land in bench/out/fig7_performance.json.
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"

using namespace strand;

int
main(int argc, char **argv)
{
    int rc = 0;
    if (bench::handleArgs(argc, argv, "Figure 7 speedup comparison across designs and models", &rc))
        return rc;
    unsigned threads = benchThreads();
    unsigned ops = benchOpsPerThread(60);
    auto recorded = bench::recordAll(threads, ops);

    SweepSpec spec;
    spec.name = "fig7_performance";
    for (PersistencyModel model : allModels) {
        for (const auto &workload : recorded) {
            std::string intel =
                spec.addTiming(workload, HwDesign::IntelX86, model)
                    .key();
            // The baseline normalizes itself to 1.00 for the table.
            spec.cells.back().baseline = intel;
            for (HwDesign design :
                 {HwDesign::Hops, HwDesign::NoPersistQueue,
                  HwDesign::StrandWeaver, HwDesign::NonAtomic}) {
                spec.addTiming(workload, design, model, intel);
            }
        }
    }
    SweepResult result = runSweep(spec);

    std::printf("Figure 7: speedup over the Intel x86 baseline\n");
    std::printf("threads=%u ops/thread=%u (set SW_OPS / SW_THREADS to "
                "scale)\n\n",
                threads, ops);

    for (PersistencyModel model : allModels) {
        std::printf("[%s]\n", persistencyModelName(model));
        PivotOptions table;
        table.include = [model](const CellResult &cell) {
            return cell.model == model;
        };
        table.column = [](const CellResult &cell) {
            return cell.design == HwDesign::StrandWeaver
                       ? std::string("strandwvr")
                       : std::string(hwDesignName(cell.design));
        };
        table.value = [](const CellResult &cell) {
            return cell.speedup;
        };
        printPivot(result, table);
        std::printf("\n");
    }

    // Headline aggregates straight from the result cells.
    std::vector<double> sw, nopq, swOverHops;
    std::map<PersistencyModel, std::vector<double>> swPerModel;
    for (const CellResult &cell : result.cells) {
        if (!cell.ok)
            continue;
        if (cell.design == HwDesign::StrandWeaver) {
            sw.push_back(cell.speedup);
            swPerModel[cell.model].push_back(cell.speedup);
            std::string hopsKey =
                cell.workload + "/" +
                hwDesignName(HwDesign::Hops) + "/" +
                persistencyModelName(cell.model);
            if (const CellResult *hops = result.find(hopsKey))
                swOverHops.push_back(cell.speedup / hops->speedup);
        }
        if (cell.design == HwDesign::NoPersistQueue)
            nopq.push_back(cell.speedup);
    }

    if (!sw.empty() && !swOverHops.empty() && !nopq.empty()) {
        std::printf("Summary vs paper (Section VI-B):\n");
        bench::rule(76);
        std::printf(
            "  StrandWeaver over Intel x86: %.2fx avg, %.2fx max "
            "(paper: 1.45x avg, 1.97x max)\n",
            bench::geomean(sw), *std::max_element(sw.begin(),
                                                  sw.end()));
        std::printf(
            "  StrandWeaver over HOPS:      %.2fx avg, %.2fx max "
            "(paper: 1.20x avg, 1.55x max)\n",
            bench::geomean(swOverHops),
            *std::max_element(swOverHops.begin(), swOverHops.end()));
        std::printf("  NO-PERSIST-QUEUE over Intel: %.2fx avg "
                    "(paper: 1.29x avg)\n",
                    bench::geomean(nopq));
        std::printf(
            "  Per-model StrandWeaver avg:  sfr %.2fx, txn %.2fx, "
            "atlas %.2fx (paper: 1.50 / 1.45 / 1.40)\n",
            bench::geomean(swPerModel[PersistencyModel::Sfr]),
            bench::geomean(swPerModel[PersistencyModel::Txn]),
            bench::geomean(swPerModel[PersistencyModel::Atlas]));
        bench::rule(76);
    }
    return bench::finish(result);
}
