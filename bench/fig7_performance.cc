/**
 * @file
 * Figure 7 — performance comparison. For each language-level
 * persistency model (TXN / SFR / ATLAS) and each Table II workload,
 * prints the speedup of HOPS, NO-PERSIST-QUEUE, StrandWeaver, and
 * NON-ATOMIC normalized to the Intel x86 baseline, plus per-model
 * and overall averages against the paper's headline numbers
 * (StrandWeaver: 1.45x avg / up to 1.97x over Intel; 1.20x avg / up
 * to 1.55x over HOPS; NO-PQ 1.29x avg; SFR > TXN > ATLAS).
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"

using namespace strand;

int
main()
{
    unsigned threads = benchThreads();
    unsigned ops = benchOpsPerThread(60);
    auto recorded = bench::recordAll(threads, ops);

    constexpr HwDesign designs[] = {
        HwDesign::Hops, HwDesign::NoPersistQueue,
        HwDesign::StrandWeaver, HwDesign::NonAtomic};

    std::printf("Figure 7: speedup over the Intel x86 baseline\n");
    std::printf("threads=%u ops/thread=%u (set SW_OPS / SW_THREADS to "
                "scale)\n\n",
                threads, ops);

    std::map<HwDesign, std::vector<double>> overall;
    std::map<PersistencyModel, std::vector<double>> swPerModel;
    std::vector<double> swOverHops;

    for (PersistencyModel model : allModels) {
        std::printf("[%s]\n", persistencyModelName(model));
        bench::rule(76);
        std::printf("%-12s %10s %10s %10s %10s %10s\n", "workload",
                    "intel-x86", "hops", "no-pq", "strandwvr",
                    "non-atomic");
        bench::rule(76);

        for (const RecordedWorkload &workload : recorded) {
            RunMetrics intel = runExperiment(
                workload, HwDesign::IntelX86, model);
            std::printf("%-12s %10.2f", workloadName(workload.kind),
                        1.0);
            double hops = 0, sw = 0;
            for (HwDesign design : designs) {
                RunMetrics metrics =
                    runExperiment(workload, design, model);
                double speedup = metrics.speedupOver(intel);
                std::printf(" %10.2f", speedup);
                overall[design].push_back(speedup);
                if (design == HwDesign::Hops)
                    hops = speedup;
                if (design == HwDesign::StrandWeaver) {
                    sw = speedup;
                    swPerModel[model].push_back(speedup);
                }
            }
            swOverHops.push_back(sw / hops);
            std::printf("\n");
        }
        bench::rule(76);
        std::printf("%-12s %10s", "avg", "1.00");
        for (HwDesign design : designs) {
            std::vector<double> modelValues;
            std::size_t n = recorded.size();
            auto &all = overall[design];
            modelValues.assign(all.end() - n, all.end());
            std::printf(" %10.2f", bench::geomean(modelValues));
        }
        std::printf("\n\n");
    }

    std::printf("Summary vs paper (Section VI-B):\n");
    bench::rule(76);
    auto &sw = overall[HwDesign::StrandWeaver];
    double swAvg = bench::geomean(sw);
    double swMax = *std::max_element(sw.begin(), sw.end());
    std::printf("  StrandWeaver over Intel x86: %.2fx avg, %.2fx max "
                "(paper: 1.45x avg, 1.97x max)\n",
                swAvg, swMax);
    double vsHopsAvg = bench::geomean(swOverHops);
    double vsHopsMax =
        *std::max_element(swOverHops.begin(), swOverHops.end());
    std::printf("  StrandWeaver over HOPS:      %.2fx avg, %.2fx max "
                "(paper: 1.20x avg, 1.55x max)\n",
                vsHopsAvg, vsHopsMax);
    std::printf("  NO-PERSIST-QUEUE over Intel: %.2fx avg "
                "(paper: 1.29x avg)\n",
                bench::geomean(overall[HwDesign::NoPersistQueue]));
    std::printf("  Per-model StrandWeaver avg:  sfr %.2fx, txn %.2fx, "
                "atlas %.2fx (paper: 1.50 / 1.45 / 1.40)\n",
                bench::geomean(swPerModel[PersistencyModel::Sfr]),
                bench::geomean(swPerModel[PersistencyModel::Txn]),
                bench::geomean(swPerModel[PersistencyModel::Atlas]));
    bench::rule(76);
    return 0;
}
