/**
 * @file
 * The hardware designs and language-level persistency models
 * evaluated in the paper (§VI-A), and the factory producing a persist
 * engine for a design.
 */

#ifndef PERSIST_DESIGN_HH
#define PERSIST_DESIGN_HH

#include <memory>
#include <string>

#include "persist/persist_engine.hh"

namespace strand
{

class DrainAdversary;

/** The five hardware designs compared in §VI. */
enum class HwDesign
{
    IntelX86,       ///< CLWB + SFENCE epochs (baseline).
    Hops,           ///< Delegated epoch persistency (ofence/dfence).
    NoPersistQueue, ///< StrandWeaver minus the persist queue.
    StrandWeaver,   ///< Full proposal (§IV).
    NonAtomic,      ///< No log/update ordering (upper bound).
};

/** The three language-level persistency models (§V). */
enum class PersistencyModel
{
    Txn,   ///< Failure-atomic transactions (PMDK-style).
    Sfr,   ///< Synchronization-free regions.
    Atlas, ///< Outermost critical sections.
};

const char *hwDesignName(HwDesign design);
const char *persistencyModelName(PersistencyModel model);

/** All designs, in the paper's presentation order. */
inline constexpr HwDesign allDesigns[] = {
    HwDesign::IntelX86, HwDesign::Hops, HwDesign::NoPersistQueue,
    HwDesign::StrandWeaver, HwDesign::NonAtomic,
};

/** All language-level models. */
inline constexpr PersistencyModel allModels[] = {
    PersistencyModel::Txn, PersistencyModel::Sfr,
    PersistencyModel::Atlas,
};

/** Knobs forwarded to the engines (used by the sensitivity study). */
struct EngineConfig
{
    unsigned pqEntries = 16;
    unsigned strandBuffers = 4;
    unsigned entriesPerBuffer = 4;
    /** Record persist-completion ticks (crash-point enumeration). */
    bool recordCompletionTicks = false;
    /**
     * Opt-in HOPS epoch interlock (closes the modeling gap the fuzzer
     * exposes): write-back drain points additionally cover CLWBs
     * still waiting in the persist queue, and stores may not drain
     * into a line an in-flight older CLWB has not read yet even
     * across a delegated ofence. See EXPERIMENTS.md "Fuzz campaigns".
     */
    bool hopsEpochInterlock = false;
    /**
     * Opt-in HOPS strict log admission (closes the remaining
     * modeling gap the media-fault campaign exposes): stores younger
     * than a delegated ofence may not drain until every pre-ofence
     * CLWB has *completed* — not merely read the cache — so the
     * guarded update's line can never reach the ADR admission ring
     * before its log entry's. Stronger (and slower) than
     * hopsEpochInterlock, which only orders the cache read.
     */
    bool hopsStrictAdmission = false;
    /** Test-only planted ordering bug (see IntelEngineParams). */
    bool plantedEpochBug = false;
    /** Fuzzing hook (non-owning); null leaves schedules untouched. */
    DrainAdversary *adversary = nullptr;
};

/**
 * Create the persist engine implementing @p design for one core.
 */
std::unique_ptr<PersistEngine>
makePersistEngine(HwDesign design, std::string name, EventQueue &eq,
                  CoreId core, Hierarchy &hier,
                  const EngineConfig &config,
                  stats::StatGroup *parent = nullptr);

} // namespace strand

#endif // PERSIST_DESIGN_HH
