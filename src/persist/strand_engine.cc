#include "persist/strand_engine.hh"

#include <vector>

#include "fuzz/adversary.hh"

namespace strand
{

StrandEngineParams
strandWeaverParams()
{
    return StrandEngineParams{};
}

StrandEngineParams
noPersistQueueParams()
{
    StrandEngineParams p;
    // Persist ops live in the 64-entry store queue; the engine-side
    // bound is effectively the store queue's and is enforced by the
    // core through sharesStoreQueue().
    p.pqEntries = 64;
    p.sharedStoreQueue = true;
    return p;
}

StrandEngineParams
hopsParams()
{
    StrandEngineParams p;
    // One persist buffer per core; ofences delegate ordering to it.
    p.sbu.numBuffers = 1;
    p.sbu.entriesPerBuffer = 16;
    p.pbGatesStores = false;
    return p;
}

StrandEngine::StrandEngine(std::string name, EventQueue &eq, CoreId core,
                           Hierarchy &hier,
                           const StrandEngineParams &params,
                           stats::StatGroup *parent)
    : PersistEngine(std::move(name), eq, parent),
      clwbsDispatched(this, "clwbs", "CLWBs dispatched"),
      barriersDispatched(this, "barriers",
                         "persist barriers / ofences dispatched"),
      newStrands(this, "newStrands", "NewStrand ops dispatched"),
      joinStrands(this, "joinStrands",
                  "JoinStrand / dfence ops dispatched"),
      pqOccupancyHist(this, "pqOccupancy",
                      "persist queue occupancy at dispatch"),
      core(core), params(params),
      sbu("sbu", eq, core, hier, params.sbu, this)
{
    // Strand buffers are private to their core and follow its PDES
    // domain when the simulation is sharded.
    sbu.setDomainAffinity("core" + std::to_string(core));
    sbu.setCompletionCallback([this](std::uint64_t seq, bool wrotePm) {
        onClwbComplete(seq, wrotePm);
    });
    sbu.setStartedCallback(
        [this](std::uint64_t seq) { onClwbStarted(seq); });
    // Buffered entries carry their elder-store seq as a plain
    // descriptor; the unit resolves it through this query at issue
    // time (capture-friendly: no per-entry closures).
    sbu.setElderQuery([this](SeqNum seq) {
        return !sq.completed || sq.completed(seq);
    });
    retryEvaluate = [this] { evaluate(); };
}

bool
StrandEngine::canAccept() const
{
    return queue.size() < params.pqEntries;
}

void
StrandEngine::beginCycle()
{
    // The shared store queue has a single drain port: at most one
    // entry (store or persist op) leaves per cycle.
    issueBudget = params.sharedStoreQueue ? 1 : ~0u;
    usedPort = false;
}

bool
StrandEngine::portBusy() const
{
    return params.sharedStoreQueue && usedPort;
}

void
StrandEngine::dispatch(const Op &op, SeqNum seq, SeqNum elderStoreSeq)
{
    panicIf(!canAccept(), "persist queue overflow");
    pqOccupancyHist.sample(static_cast<double>(queue.size()));

    Entry entry;
    entry.addr = op.addr;
    entry.seq = seq;
    entry.elderStoreSeq = elderStoreSeq;

    switch (op.type) {
      case OpType::Clwb:
        entry.type = OpType::Clwb;
        ++clwbsDispatched;
        break;
      case OpType::PersistBarrier:
      case OpType::Ofence:
        entry.type = op.type;
        ++barriersDispatched;
        break;
      case OpType::NewStrand:
        entry.type = OpType::NewStrand;
        ++newStrands;
        break;
      case OpType::JoinStrand:
      case OpType::Dfence:
      case OpType::Sfence:
        // SFENCE is accepted defensively and treated as a full
        // drain, which is a superset of its semantics.
        entry.type = OpType::JoinStrand;
        ++joinStrands;
        break;
      default:
        panic("op {} is not a persist op", opTypeName(op.type));
    }
    queue.push_back(entry);
    evaluate();
}

bool
StrandEngine::storeMayIssue(SeqNum seq) const
{
    // For each older CLWB, note whether a persist barrier separates
    // it from this store *within the same strand*: such a CLWB must
    // have performed its cache read before the store may drain (else
    // the flush could capture post-barrier data). A NewStrand clears
    // the constraint (Eq. 1), so barriers do not gate stores of
    // later strands.
    std::vector<bool> barrierBetween(queue.size(), false);
    {
        bool seen = false;
        for (std::size_t i = queue.size(); i-- > 0;) {
            if (queue[i].seq >= seq)
                continue;
            barrierBetween[i] = seen;
            if (queue[i].type == OpType::PersistBarrier)
                seen = true;
            else if ((params.epochInterlock ||
                      params.strictAdmission) &&
                     queue[i].type == OpType::Ofence)
                // The delegated ofence normally orders nothing on the
                // CPU side; under the epoch interlock it gates stores
                // from overwriting lines of pre-ofence CLWBs that
                // have not read the cache yet, exactly as a persist
                // barrier does.
                seen = true;
            else if (queue[i].type == OpType::NewStrand)
                seen = false;
        }
    }
    std::size_t idx = static_cast<std::size_t>(-1);
    for (const Entry &entry : queue) {
        ++idx;
        bool barrierSince = barrierBetween[idx];
        if (entry.seq >= seq)
            break;
        switch (entry.type) {
          case OpType::Clwb:
            // NO-PERSIST-QUEUE head-of-line blocking (§VI-A): the
            // store queue drains strictly in order, so a younger
            // store waits until an older CLWB has left for the
            // strand buffer unit (which stalls whenever the target
            // buffer is full of long-latency flushes). The separate
            // persist queue exists precisely to let stores pass.
            if (params.sharedStoreQueue && !entry.issued)
                return false;
            // Under any strand design, a store must not drain into a
            // line an in-flight older CLWB has not read yet, or the
            // flush would capture post-barrier data (§IV orders
            // prior CLWB issue before subsequent stores).
            if ((params.pbGatesStores || params.epochInterlock ||
                 params.strictAdmission) &&
                barrierSince) {
                // Strict admission demands full completion: the log
                // line must already be in the ADR ring before the
                // guarded store may touch the cache, so no media
                // drop can reorder their admissions. The interlock
                // only orders the flush's cache read.
                if (params.strictAdmission ? !entry.completed
                                           : !entry.flushStarted)
                    return false;
            }
            break;
          case OpType::PersistBarrier:
            // Unlike SFENCE, a persist barrier stalls younger stores
            // only until it (and, by FIFO order, all earlier CLWBs)
            // has *issued*, not completed.
            if (params.pbGatesStores && !entry.issued)
                return false;
            break;
          case OpType::Ofence:
            break; // fully delegated
          case OpType::JoinStrand:
            if (!entry.completed)
                return false;
            break;
          default:
            break;
        }
    }
    return true;
}

bool
StrandEngine::joinComplete(const Entry &entry) const
{
    // All earlier CLWBs must have completed...
    for (const Entry &other : queue) {
        if (other.seq >= entry.seq)
            break;
        if (other.type == OpType::Clwb && !other.completed)
            return false;
    }
    // ...and all earlier stores must have written the L1.
    return !sq.allCompletedBefore || sq.allCompletedBefore(entry.seq);
}

bool
StrandEngine::headMayIssue(const Entry &entry) const
{
    switch (entry.type) {
      case OpType::Clwb:
        // Paper §IV: the persist queue holds a CLWB only until the
        // elder same-location store has *issued*; the flush itself
        // waits (per line, in the strand buffer) for the store to
        // reach the L1.
        if (entry.elderStoreSeq != 0 && sq.issued &&
            !sq.issued(entry.elderStoreSeq)) {
            return false;
        }
        if (params.sharedStoreQueue && sq.allIssuedBefore &&
            !sq.allIssuedBefore(entry.seq)) {
            // Single FIFO with stores: all elder stores must have
            // issued before the CLWB may leave.
            return false;
        }
        return sbu.canAcceptClwb();
      case OpType::PersistBarrier:
        // The barrier orders *issue* of prior stores before
        // subsequent CLWBs (§IV) — it does not wait for their
        // completion; flush freshness is separately guaranteed by
        // each CLWB's same-line elder-store gating.
        if (sq.allIssuedBefore && !sq.allIssuedBefore(entry.seq))
            return false;
        return sbu.canAcceptBarrier();
      case OpType::Ofence:
        return sbu.canAcceptBarrier();
      case OpType::NewStrand:
        return true;
      case OpType::JoinStrand:
        return false; // never issued to the strand buffer unit
      default:
        return false;
    }
}

void
StrandEngine::issueHead()
{
    // Issue strictly in order: find the first non-issued entry; stop
    // at a JoinStrand that has not completed.
    for (Entry &entry : queue) {
        if (entry.type == OpType::JoinStrand) {
            if (!entry.completed) {
                if (joinComplete(entry)) {
                    entry.completed = true;
                    emitRetired(PrimitiveKind::JoinStrand, entry.seq);
                    noteProgress();
                } else {
                    return;
                }
            }
            continue;
        }
        if (entry.issued)
            continue;
        if (!headMayIssue(entry))
            return;
        if (params.adversary) {
            // Fuzzing: the persist queue drains strictly in order, so
            // a hold here delays everything younger — a legal (if
            // slow) schedule that stresses drain-point interlocks.
            if (curTick() < entry.heldUntil)
                return;
            Tick delay = params.adversary->consider(
                eq, FuzzSite::StrandIssue, core, retryEvaluate);
            if (delay > 0) {
                entry.heldUntil = curTick() + delay;
                return;
            }
        }
        if (issueBudget == 0)
            return;
        --issueBudget;
        usedPort = true;
        entry.issued = true;
        noteProgress();
        switch (entry.type) {
          case OpType::Clwb:
            sbu.pushClwb(entry.addr, entry.seq, entry.elderStoreSeq);
            break;
          case OpType::PersistBarrier:
          case OpType::Ofence:
            sbu.pushBarrier();
            entry.completed = true;
            emitRetired(PrimitiveKind::Barrier, entry.seq);
            break;
          case OpType::NewStrand:
            sbu.newStrand();
            entry.completed = true;
            emitRetired(PrimitiveKind::NewStrand, entry.seq);
            break;
          default:
            panic("unexpected entry type at issue");
        }
    }
}

void
StrandEngine::retire()
{
    while (!queue.empty() && queue.front().completed) {
        // Shared-queue (NO-PERSIST-QUEUE) slots free strictly in
        // order across stores and persist ops: a completed persist
        // entry behind an older incomplete store keeps its slot.
        if (params.sharedStoreQueue && sq.oldestIncompleteStore &&
            sq.oldestIncompleteStore() < queue.front().seq) {
            break;
        }
        queue.pop_front();
    }
}

SeqNum
StrandEngine::oldestIncompleteSeq() const
{
    if (!params.sharedStoreQueue || queue.empty())
        return ~static_cast<SeqNum>(0);
    return queue.front().seq;
}

void
StrandEngine::onClwbStarted(SeqNum seq)
{
    for (Entry &entry : queue) {
        if (entry.type == OpType::Clwb && entry.seq == seq) {
            entry.flushStarted = true;
            noteProgress();
            break;
        }
    }
}

void
StrandEngine::onClwbComplete(SeqNum seq, bool wrotePm)
{
    for (Entry &entry : queue) {
        if (entry.type == OpType::Clwb && entry.seq == seq) {
            entry.completed = true;
            noteCompletion();
            emitRetired(PrimitiveKind::Clwb, seq,
                        lineAlign(entry.addr), !wrotePm);
            noteProgress();
            break;
        }
    }
    evaluate();
}

void
StrandEngine::evaluate()
{
    issueHead();
    retire();
    sbu.evaluate();
}

bool
StrandEngine::drained() const
{
    return queue.empty() && sbu.drained();
}

std::size_t
StrandEngine::queueOccupancy() const
{
    return queue.size();
}

bool
StrandEngine::sharesStoreQueue() const
{
    return params.sharedStoreQueue;
}

Tick
StrandEngine::portRequestLatency() const
{
    return sbu.memPort().requestLatency();
}

Tick
StrandEngine::portResponseLatency() const
{
    return sbu.memPort().responseLatency();
}

void
StrandEngine::saveState(SimSnapshot &snap) const
{
    Snapshot s;
    s.base = baseState();
    s.queue = queue;
    s.issueBudget = issueBudget;
    s.usedPort = usedPort;
    snap.put(snapshotName(), s);
    sbu.saveState(snap);
}

void
StrandEngine::restoreState(const SimSnapshot &snap)
{
    const Snapshot &s = snap.get<Snapshot>(snapshotName());
    restoreBaseState(s.base);
    queue = s.queue;
    issueBudget = s.issueBudget;
    usedPort = s.usedPort;
    sbu.restoreState(snap);
}

Hierarchy::Clearance
StrandEngine::recordDrainPoint()
{
    Hierarchy::Clearance sbuClear = sbu.recordDrainPoint();
    if ((!params.epochInterlock && !params.strictAdmission) ||
        queue.empty())
        return sbuClear;
    // Epoch interlock: with the delegated ofence, the departing dirty
    // line may already hold data from stores younger than CLWBs still
    // waiting in the persist queue — covering only the strand buffers
    // would let that data reach PM before its guarding log entry.
    // Also hold the write-back until every CLWB dispatched so far has
    // persisted.
    SeqNum tail = queue.back().seq;
    auto pqClear = [this, tail] {
        for (const Entry &entry : queue) {
            if (entry.seq > tail)
                break;
            if (entry.type == OpType::Clwb && !entry.completed)
                return false;
        }
        return true;
    };
    if (!sbuClear)
        return pqClear;
    return [sbuClear = std::move(sbuClear),
            pqClear = std::move(pqClear)] {
        return sbuClear() && pqClear();
    };
}

} // namespace strand
