/**
 * @file
 * The strand buffer unit (§IV of the paper).
 *
 * An array of strand buffers sits beside the L1 cache. Each buffer
 * manages persist ordering within one strand: CLWBs separated by a
 * persist barrier complete in order, while CLWBs in different
 * buffers issue to the PM controller concurrently. A NewStrand
 * operation advances the ongoing-buffer index (round-robin), so
 * subsequent CLWBs land in the next buffer.
 *
 * The same structure models HOPS's per-core persist buffer: a single
 * buffer whose persist barriers are ofences.
 *
 * The unit exposes recordDrainPoint(), which captures the current
 * tail index of every buffer and returns a predicate that holds once
 * all buffers have drained past the captured points — the interlock
 * used by the write-back buffer and snoop handling.
 */

#ifndef PERSIST_STRAND_BUFFER_UNIT_HH
#define PERSIST_STRAND_BUFFER_UNIT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"

namespace strand
{

class DrainAdversary;

/** Configuration of the strand buffer unit. */
struct StrandBufferUnitParams
{
    unsigned numBuffers = 4;
    unsigned entriesPerBuffer = 4;
    /** Fuzzing hook (non-owning); null leaves issue order untouched. */
    DrainAdversary *adversary = nullptr;
};

/**
 * The strand buffer unit for one core.
 */
class StrandBufferUnit : public SimObject
{
  public:
    /** Entry kinds tracked inside a strand buffer. */
    enum class Kind : std::uint8_t
    {
        Clwb,
        Barrier,
    };

    /**
     * @param core The owning core (used for cache requests).
     * @param hier The cache hierarchy used to perform flushes.
     */
    StrandBufferUnit(std::string name, EventQueue &eq, CoreId core,
                     Hierarchy &hier,
                     const StrandBufferUnitParams &params,
                     stats::StatGroup *parent = nullptr);

    /** @return true if the ongoing buffer can take another entry. */
    bool canAcceptClwb() const;

    /** @return true if the ongoing buffer can take a barrier. */
    bool canAcceptBarrier() const { return canAcceptClwb(); }

    /**
     * Append a CLWB to the ongoing strand buffer.
     * @param id Token reported back through the completion callback.
     * @param elderStoreSeq Seq of the elder same-line store that must
     * write the L1 before this flush may start, or 0 for none. The
     * wait is per-line: other entries and buffers proceed. Stored as
     * a plain descriptor (not a captured closure) so buffered
     * entries survive snapshot/restore; the owning engine installs
     * the store-queue query once via setElderQuery().
     */
    void pushClwb(Addr addr, std::uint64_t id,
                  SeqNum elderStoreSeq = 0);

    /**
     * Install the store-completion query used to resolve buffered
     * elder-store descriptors. Set once at engine construction;
     * unset, elder-store gating is disabled.
     */
    void
    setElderQuery(std::function<bool(SeqNum)> query)
    {
        elderCompleted = std::move(query);
    }

    /** Append a persist barrier to the ongoing strand buffer. */
    void pushBarrier();

    /**
     * Begin a new strand: advance the ongoing buffer index
     * (round-robin). Completes immediately.
     */
    void newStrand();

    /**
     * Invoked (with the CLWB id and whether the flush actually wrote
     * PM — false for a clean lookup) when a CLWB completes.
     */
    void
    setCompletionCallback(std::function<void(std::uint64_t, bool)> cb)
    {
        completionCallback = std::move(cb);
    }

    /**
     * Invoked (with the CLWB id) when a CLWB has performed its cache
     * read — the point after which post-barrier stores may safely
     * drain (§IV: persist barriers order prior CLWBs before
     * subsequent stores).
     */
    void
    setStartedCallback(std::function<void(std::uint64_t)> cb)
    {
        startedCallback = std::move(cb);
    }

    /** @return true once every buffer is empty. */
    bool drained() const;

    /** Number of CLWB entries currently buffered (all strands). */
    std::size_t occupancy() const;

    /**
     * Capture the current tail of every buffer; the returned
     * predicate holds once every buffer has retired everything that
     * was buffered at capture time (§IV write-back/snoop interlock).
     */
    Hierarchy::Clearance recordDrainPoint();

    /** Issue any entries whose dependencies have resolved. */
    void evaluate();

    /** The unit's mailbox to the hierarchy (partitioner reads its
     * declared leg latencies as cross-domain lookahead). */
    const MemPort &memPort() const { return port; }

    /** Capture / restore buffered entries and the ongoing index. */
    void saveState(SimSnapshot &snap) const override;
    void restoreState(const SimSnapshot &snap) override;

    /** @name Statistics @{ */
    stats::Scalar clwbsIssued;
    stats::Scalar clwbsCompleted;
    stats::Scalar cleanFlushes;
    stats::Scalar barriersRetired;
    stats::Scalar strandsStarted;
    stats::Histogram flushLatency;
    /** @} */

  private:
    /** Plain data: snapshot/restore copies entries wholesale. */
    struct Entry
    {
        Kind kind = Kind::Clwb;
        Addr addr = 0;
        std::uint64_t id = 0;
        bool hasIssued = false;
        bool completed = false;
        Tick issuedAt = 0;
        /** Elder same-line store gating the flush (0 = none);
         * resolved against elderCompleted at issue time. */
        SeqNum elderStoreSeq = 0;
        /** Monotonic position used by drain-point predicates. */
        std::uint64_t position = 0;
        /** Adversarial hold on this entry's issue (fuzzing). */
        Tick heldUntil = 0;
    };

    struct Buffer
    {
        std::deque<Entry> entries;
        /** Position of the most recently retired entry. */
        std::uint64_t retiredUpTo = 0;
        /** Position assigned to the next appended entry. */
        std::uint64_t nextPosition = 1;
    };

    /** Volatile machine state captured by saveState(). */
    struct Snapshot
    {
        std::vector<Buffer> buffers;
        unsigned ongoing = 0;
    };

    void issueFrom(Buffer &buffer);
    void retireCompleted(Buffer &buffer);
    /** Route one flush response. The token encodes the entry's home:
     * (bufferIndex << 48) | position. */
    void onMemResponse(const MemResponse &resp);

    CoreId core;
    StrandBufferUnitParams params;
    /** Mailbox to the hierarchy; all flushes travel here. */
    MemPort port;
    std::vector<Buffer> buffers;
    unsigned ongoing = 0;
    std::function<void(std::uint64_t, bool)> completionCallback;
    std::function<void(std::uint64_t)> startedCallback;
    std::function<bool(SeqNum)> elderCompleted;
    /** Prebuilt adversary-hold retry; built once, borrowed per query. */
    EventQueue::Callback retryEvaluate;
};

} // namespace strand

#endif // PERSIST_STRAND_BUFFER_UNIT_HH
