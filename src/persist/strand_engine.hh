/**
 * @file
 * StrandWeaver's persist queue plus strand buffer unit, and its two
 * parameterized siblings (§IV, §VI-A).
 *
 * The persist queue tracks in-flight CLWBs, persist barriers,
 * NewStrand and JoinStrand operations, issuing them to the strand
 * buffer unit in order. JoinStrand is not issued; it completes when
 * all earlier CLWBs and stores complete and, until then, gates issue
 * of younger stores and persist ops.
 *
 * Parameterizations:
 *  - StrandWeaver: separate 16-entry queue, 4x4 strand buffers,
 *    persist barriers gate younger stores until they issue.
 *  - NO-PERSIST-QUEUE: persist ops share the store queue, coupling
 *    store and CLWB issue into one FIFO.
 *  - HOPS: a single persist buffer; ofence is delegated (no
 *    CPU-side gating) and dfence enforces durability like
 *    JoinStrand.
 */

#ifndef PERSIST_STRAND_ENGINE_HH
#define PERSIST_STRAND_ENGINE_HH

#include <deque>

#include "persist/persist_engine.hh"
#include "persist/strand_buffer_unit.hh"

namespace strand
{

/** Parameters selecting which design variant the engine models. */
struct StrandEngineParams
{
    /** Persist queue capacity (entries). */
    unsigned pqEntries = 16;
    StrandBufferUnitParams sbu;
    /**
     * Persist barriers stall younger stores until the barrier has
     * issued to the strand buffer unit (true for StrandWeaver;
     * false for HOPS's delegated ofence).
     */
    bool pbGatesStores = true;
    /**
     * Persist ops occupy store-queue slots and issue in one FIFO
     * with stores (NO-PERSIST-QUEUE design).
     */
    bool sharedStoreQueue = false;
    /**
     * Opt-in HOPS epoch interlock (see EngineConfig): write-back
     * drain points cover persist-queue CLWBs in addition to the
     * strand buffers, and ofences gate stores from draining into a
     * line whose in-flight older CLWB has not read it yet.
     */
    bool epochInterlock = false;
    /**
     * Opt-in HOPS strict log admission (see EngineConfig): stores
     * younger than an ofence wait until every pre-ofence CLWB has
     * completed, strictly ordering the log entry's ADR admission
     * before the guarded update can even enter the cache. Implies
     * the drain-point persist-queue coverage of the interlock.
     */
    bool strictAdmission = false;
    /** Fuzzing hook (non-owning); null leaves issue order untouched. */
    DrainAdversary *adversary = nullptr;
};

/** @return the StrandWeaver configuration (Table: 16-entry PQ, 4x4). */
StrandEngineParams strandWeaverParams();

/** @return the NO-PERSIST-QUEUE intermediate design. */
StrandEngineParams noPersistQueueParams();

/** @return the HOPS delegated epoch-persistency configuration. */
StrandEngineParams hopsParams();

/**
 * Persist engine built from a persist queue and strand buffer unit.
 */
class StrandEngine : public PersistEngine
{
  public:
    StrandEngine(std::string name, EventQueue &eq, CoreId core,
                 Hierarchy &hier, const StrandEngineParams &params,
                 stats::StatGroup *parent = nullptr);

    bool canAccept() const override;
    void beginCycle() override;
    bool portBusy() const override;
    void dispatch(const Op &op, SeqNum seq,
                  SeqNum elderStoreSeq) override;
    bool storeMayIssue(SeqNum seq) const override;
    void evaluate() override;
    bool drained() const override;
    std::size_t queueOccupancy() const override;
    bool sharesStoreQueue() const override;
    SeqNum oldestIncompleteSeq() const override;
    Hierarchy::Clearance recordDrainPoint() override;
    Tick portRequestLatency() const override;
    Tick portResponseLatency() const override;

    /** Capture / restore the persist queue and the buffer unit. */
    void saveState(SimSnapshot &snap) const override;
    void restoreState(const SimSnapshot &snap) override;

    /** The strand buffer unit (exposed for tests and stats). */
    StrandBufferUnit &bufferUnit() { return sbu; }

    /** @name Statistics @{ */
    stats::Scalar clwbsDispatched;
    stats::Scalar barriersDispatched;
    stats::Scalar newStrands;
    stats::Scalar joinStrands;
    stats::Histogram pqOccupancyHist;
    /** @} */

  private:
    struct Entry
    {
        OpType type = OpType::Clwb;
        Addr addr = 0;
        SeqNum seq = 0;
        SeqNum elderStoreSeq = 0;
        bool issued = false;
        /** CLWB has performed its cache read (flush started). */
        bool flushStarted = false;
        bool completed = false;
        /** Adversarial hold on this entry's issue (fuzzing). */
        Tick heldUntil = 0;
    };

    /** Volatile machine state captured by saveState(). */
    struct Snapshot
    {
        BaseState base;
        std::deque<Entry> queue;
        unsigned issueBudget = ~0u;
        bool usedPort = false;
    };

    /** True when the head entry's issue preconditions hold. */
    bool headMayIssue(const Entry &entry) const;

    void issueHead();
    void retire();
    void onClwbComplete(SeqNum seq, bool wrotePm);
    void onClwbStarted(SeqNum seq);

    /** @return true if a JoinStrand-like entry is complete. */
    bool joinComplete(const Entry &entry) const;

    CoreId core;
    StrandEngineParams params;
    StrandBufferUnit sbu;
    std::deque<Entry> queue;
    /** Shared-queue designs: issues left this cycle (one drain port). */
    unsigned issueBudget = ~0u;
    bool usedPort = false;
    /** Prebuilt adversary-hold retry; built once, borrowed per query. */
    EventQueue::Callback retryEvaluate;
};

} // namespace strand

#endif // PERSIST_STRAND_ENGINE_HH
