#include "persist/pmo.hh"

#include <unordered_map>

namespace strand
{

namespace
{

/** Positions of persists and primitives within one thread. */
struct ThreadScan
{
    /** (position, persist index) pairs in program order. */
    std::vector<std::pair<std::size_t, std::size_t>> persists;
    std::vector<std::size_t> barriers;
    std::vector<std::size_t> newStrands;
    std::vector<std::size_t> joins;
};

bool
anyBetween(const std::vector<std::size_t> &positions, std::size_t lo,
           std::size_t hi)
{
    for (std::size_t pos : positions)
        if (pos > lo && pos < hi)
            return true;
    return false;
}

} // namespace

PmoModel::PmoModel(const PmoProgram &program)
{
    std::unordered_map<std::uint64_t, std::size_t> index;

    // Collect persists and assign matrix indices.
    std::vector<ThreadScan> scans(program.threads.size());
    for (std::size_t t = 0; t < program.threads.size(); ++t) {
        const auto &thread = program.threads[t];
        for (std::size_t pos = 0; pos < thread.size(); ++pos) {
            const PmoOp &op = thread[pos];
            switch (op.kind) {
              case PmoEvent::Persist: {
                panicIf(index.contains(op.id),
                        "duplicate persist id {}", op.id);
                index[op.id] = ids.size();
                scans[t].persists.emplace_back(pos, ids.size());
                ids.push_back(op.id);
                break;
              }
              case PmoEvent::Barrier:
                scans[t].barriers.push_back(pos);
                break;
              case PmoEvent::NewStrand:
                scans[t].newStrands.push_back(pos);
                break;
              case PmoEvent::JoinStrand:
                scans[t].joins.push_back(pos);
                break;
            }
        }
    }

    std::size_t n = ids.size();
    ordered.assign(n, std::vector<bool>(n, false));

    // Intra-thread edges: Eq. 1 (barrier, no intervening NewStrand),
    // Eq. 2 (JoinStrand), Eq. 3 same-address program order.
    for (const ThreadScan &scan : scans) {
        for (std::size_t a = 0; a < scan.persists.size(); ++a) {
            for (std::size_t b = a + 1; b < scan.persists.size(); ++b) {
                auto [posA, idxA] = scan.persists[a];
                auto [posB, idxB] = scan.persists[b];
                bool order = false;
                if (anyBetween(scan.joins, posA, posB)) {
                    order = true; // Eq. 2
                } else if (anyBetween(scan.barriers, posA, posB) &&
                           !anyBetween(scan.newStrands, posA, posB)) {
                    order = true; // Eq. 1
                }
                if (order)
                    ordered[idxA][idxB] = true;
            }
        }
    }

    // Eq. 3 intra-thread same-address pairs (needs the addresses).
    for (std::size_t t = 0; t < program.threads.size(); ++t) {
        const auto &thread = program.threads[t];
        const ThreadScan &scan = scans[t];
        for (std::size_t a = 0; a < scan.persists.size(); ++a) {
            for (std::size_t b = a + 1; b < scan.persists.size(); ++b) {
                auto [posA, idxA] = scan.persists[a];
                auto [posB, idxB] = scan.persists[b];
                if (thread[posA].addr == thread[posB].addr)
                    ordered[idxA][idxB] = true;
            }
        }
    }

    // Cross-thread/strand visibility edges (Eq. 3).
    for (auto [earlier, later] : program.vmoEdges) {
        panicIf(!index.contains(earlier), "unknown VMO id {}", earlier);
        panicIf(!index.contains(later), "unknown VMO id {}", later);
        ordered[index[earlier]][index[later]] = true;
    }

    // Eq. 4: transitive closure (Floyd-Warshall; litmus-scale).
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
            if (!ordered[i][k])
                continue;
            for (std::size_t j = 0; j < n; ++j) {
                if (ordered[k][j])
                    ordered[i][j] = true;
            }
        }
    }

    // Irreflexivity check: a cycle means the program's VMO edges
    // contradict program order.
    for (std::size_t i = 0; i < n; ++i)
        panicIf(ordered[i][i], "PMO contains a cycle through id {}",
                ids[i]);
}

std::size_t
PmoModel::indexOf(std::uint64_t id) const
{
    for (std::size_t i = 0; i < ids.size(); ++i)
        if (ids[i] == id)
            return i;
    panic("unknown persist id {}", id);
}

bool
PmoModel::orderedBefore(std::uint64_t a, std::uint64_t b) const
{
    return ordered[indexOf(a)][indexOf(b)];
}

std::optional<PmoModel::Violation>
PmoModel::checkTrace(const std::vector<std::uint64_t> &observed) const
{
    constexpr std::size_t absent = static_cast<std::size_t>(-1);
    std::vector<std::size_t> position(ids.size(), absent);
    for (std::size_t pos = 0; pos < observed.size(); ++pos)
        position[indexOf(observed[pos])] = pos;

    for (std::size_t a = 0; a < ids.size(); ++a) {
        for (std::size_t b = 0; b < ids.size(); ++b) {
            if (!ordered[a][b])
                continue;
            if (position[b] == absent)
                continue; // b never persisted; nothing to violate
            if (position[a] == absent || position[a] > position[b])
                return Violation{ids[a], ids[b]};
        }
    }
    return std::nullopt;
}

} // namespace strand
