#include "persist/intel_engine.hh"

#include "fuzz/adversary.hh"

namespace strand
{

IntelEngine::IntelEngine(std::string name, EventQueue &eq, CoreId core,
                         Hierarchy &hier,
                         const IntelEngineParams &params,
                         stats::StatGroup *parent)
    : PersistEngine(std::move(name), eq, parent),
      clwbsDispatched(this, "clwbs", "CLWBs dispatched"),
      sfencesDispatched(this, "sfences", "SFENCEs dispatched"),
      clwbsCompleted(this, "clwbsCompleted", "CLWBs completed"),
      flushLatency(this, "flushLatency",
                   "CLWB issue-to-completion latency in ticks"),
      core(core), params(params)
{
    port.init(eq, fullName() + ".port");
    port.bind(hier);
    port.setResponseHandler(
        [this](const MemResponse &resp) { onMemResponse(resp); });
}

Tick
IntelEngine::portRequestLatency() const
{
    return port.requestLatency();
}

Tick
IntelEngine::portResponseLatency() const
{
    return port.responseLatency();
}

void
IntelEngine::onMemResponse(const MemResponse &resp)
{
    panicIf(resp.req != MemRequestKind::Flush,
            "{}: unexpected memory response", fullName());
    if (resp.kind == MemResponseKind::FlushStarted)
        return; // SFENCE gating keys off completion, not the read
    const SeqNum seq = resp.token;
    for (Entry &e : queue) {
        if (e.type == OpType::Clwb && e.seq == seq) {
            e.completed = true;
            noteCompletion();
            emitRetired(PrimitiveKind::Clwb, seq, lineAlign(e.addr),
                        !resp.wrotePm);
            noteProgress();
            ++clwbsCompleted;
            flushLatency.sample(
                static_cast<double>(curTick() - e.issuedAt));
            break;
        }
    }
    evaluate();
    // Retirement just moved the drain-point frontier, strictly after
    // the hierarchy's own completion kick ran — ring its doorbell so
    // parked snoops/write-backs re-check their clearances.
    MemRequest kick;
    kick.kind = MemRequestKind::Kick;
    kick.core = core;
    port.send(std::move(kick));
}

bool
IntelEngine::canAccept() const
{
    return queue.size() < params.queueEntries;
}

void
IntelEngine::dispatch(const Op &op, SeqNum seq, SeqNum elderStoreSeq)
{
    panicIf(!canAccept(), "Intel persist structure overflow");

    Entry entry;
    entry.addr = op.addr;
    entry.seq = seq;
    entry.elderStoreSeq = elderStoreSeq;

    switch (op.type) {
      case OpType::Clwb:
        entry.type = OpType::Clwb;
        ++clwbsDispatched;
        break;
      case OpType::Sfence:
        entry.type = OpType::Sfence;
        ++sfencesDispatched;
        break;
      case OpType::PersistBarrier:
      case OpType::Ofence:
      case OpType::Dfence:
      case OpType::JoinStrand:
        // Any stronger primitive maps onto SFENCE on this hardware.
        entry.type = OpType::Sfence;
        ++sfencesDispatched;
        break;
      case OpType::NewStrand:
        // No equivalent exists; the op is a no-op here.
        return;
      default:
        panic("op {} is not a persist op", opTypeName(op.type));
    }
    queue.push_back(entry);
    evaluate();
}

bool
IntelEngine::storeMayIssue(SeqNum seq) const
{
    // SFENCE delays visibility of younger stores until all earlier
    // CLWBs complete (via the fence's own completion).
    for (const Entry &entry : queue) {
        if (entry.seq >= seq)
            break;
        if (entry.type == OpType::Sfence && !entry.completed)
            return false;
    }
    return true;
}

void
IntelEngine::issueEligible()
{
    // Every CLWB with no incomplete SFENCE ahead of it may flush;
    // CLWBs within an epoch proceed concurrently.
    bool blocked = false;
    for (Entry &entry : queue) {
        if (entry.type == OpType::Sfence) {
            if (!entry.completed) {
                // Try to complete the fence: all earlier CLWBs done
                // and all earlier stores drained.
                bool clwbsDone = true;
                for (const Entry &other : queue) {
                    if (other.seq >= entry.seq)
                        break;
                    if (params.plantedEpochBug && !other.issued &&
                        curTick() < other.heldUntil) {
                        // Planted bug (see IntelEngineParams): a held
                        // flush is miscounted as done, breaching the
                        // epoch exactly when the adversary says so.
                        continue;
                    }
                    if (other.type == OpType::Clwb && !other.completed) {
                        clwbsDone = false;
                        break;
                    }
                }
                if (clwbsDone &&
                    (!sq.allCompletedBefore ||
                     sq.allCompletedBefore(entry.seq))) {
                    entry.completed = true;
                    emitRetired(PrimitiveKind::Barrier, entry.seq);
                    noteProgress();
                } else {
                    blocked = true;
                }
            }
            if (blocked)
                return;
            continue;
        }
        if (entry.issued || blocked)
            continue;
        if (entry.elderStoreSeq != 0 && sq.completed &&
            !sq.completed(entry.elderStoreSeq)) {
            // CLWB waits for the elder store to the same line so it
            // flushes fresh data; younger independent CLWBs in the
            // same epoch may still proceed.
            continue;
        }
        if (params.adversary) {
            // Fuzzing: CLWBs within an epoch may flush in any order,
            // so the adversary is free to hold this one while
            // younger epoch-mates proceed.
            if (curTick() < entry.heldUntil)
                continue;
            Tick delay = params.adversary->consider(
                eq, FuzzSite::IntelIssue, core,
                [this] { evaluate(); });
            if (delay > 0) {
                entry.heldUntil = curTick() + delay;
                continue;
            }
        }
        entry.issued = true;
        entry.issuedAt = curTick();
        noteProgress();
        MemRequest req;
        req.kind = MemRequestKind::Flush;
        req.core = core;
        req.addr = entry.addr;
        req.token = entry.seq;
        port.send(std::move(req));
    }
}

void
IntelEngine::retire()
{
    while (!queue.empty() && queue.front().completed) {
        lastRetiredSeq = queue.front().seq;
        queue.pop_front();
    }
}

void
IntelEngine::evaluate()
{
    issueEligible();
    retire();
}

bool
IntelEngine::drained() const
{
    return queue.empty();
}

std::size_t
IntelEngine::queueOccupancy() const
{
    return queue.size();
}

void
IntelEngine::saveState(SimSnapshot &snap) const
{
    Snapshot s;
    s.base = baseState();
    s.queue = queue;
    s.lastRetiredSeq = lastRetiredSeq;
    snap.put(snapshotName(), s);
}

void
IntelEngine::restoreState(const SimSnapshot &snap)
{
    const Snapshot &s = snap.get<Snapshot>(snapshotName());
    restoreBaseState(s.base);
    queue = s.queue;
    lastRetiredSeq = s.lastRetiredSeq;
}

Hierarchy::Clearance
IntelEngine::recordDrainPoint()
{
    if (queue.empty())
        return {};
    SeqNum tail = queue.back().seq;
    return [this, tail] { return lastRetiredSeq >= tail || queue.empty() ||
                                 queue.front().seq > tail; };
}

} // namespace strand
