/**
 * @file
 * Intel x86's persistency mechanisms: CLWB ordered by SFENCE
 * (§II-B), and the NON-ATOMIC upper bound (same hardware driven by a
 * fence-free instruction stream).
 *
 * Semantics modeled:
 *  - CLWBs between two SFENCEs may flush concurrently (epoch
 *    concurrency), bounded by the queue capacity.
 *  - SFENCE completes only when all earlier CLWBs have completed and
 *    all earlier stores have drained; until then it stalls issue of
 *    younger stores *and* younger CLWBs (the bidirectional
 *    constraint the paper contrasts against).
 */

#ifndef PERSIST_INTEL_ENGINE_HH
#define PERSIST_INTEL_ENGINE_HH

#include <deque>

#include "persist/persist_engine.hh"

namespace strand
{

class DrainAdversary;

/** Parameters for the Intel-style engine. */
struct IntelEngineParams
{
    /** Outstanding CLWB/SFENCE entries tracked by the core. */
    unsigned queueEntries = 16;
    /** Fuzzing hook (non-owning); null leaves issue order untouched. */
    DrainAdversary *adversary = nullptr;
    /**
     * Test-only fault injection: an SFENCE counts adversarially held
     * CLWBs as already complete, so holding a log-entry flush lets
     * younger stores (and their flushes) persist ahead of it — an
     * ordering bug that exists ONLY under particular adversarial
     * schedules. tests/fuzz/ uses it to prove the fuzzer catches
     * schedule-dependent bugs and that ddmin keeps the causal holds.
     */
    bool plantedEpochBug = false;
};

/**
 * The baseline Intel x86 persist engine.
 */
class IntelEngine : public PersistEngine
{
  public:
    IntelEngine(std::string name, EventQueue &eq, CoreId core,
                Hierarchy &hier, const IntelEngineParams &params,
                stats::StatGroup *parent = nullptr);

    bool canAccept() const override;
    void dispatch(const Op &op, SeqNum seq,
                  SeqNum elderStoreSeq) override;
    bool storeMayIssue(SeqNum seq) const override;
    void evaluate() override;
    bool drained() const override;
    std::size_t queueOccupancy() const override;
    Hierarchy::Clearance recordDrainPoint() override;
    Tick portRequestLatency() const override;
    Tick portResponseLatency() const override;

    /** Capture / restore the CLWB/SFENCE queue. */
    void saveState(SimSnapshot &snap) const override;
    void restoreState(const SimSnapshot &snap) override;

    /** @name Statistics @{ */
    stats::Scalar clwbsDispatched;
    stats::Scalar sfencesDispatched;
    stats::Scalar clwbsCompleted;
    stats::Histogram flushLatency;
    /** @} */

  private:
    struct Entry
    {
        OpType type = OpType::Clwb;
        Addr addr = 0;
        SeqNum seq = 0;
        SeqNum elderStoreSeq = 0;
        bool issued = false;
        bool completed = false;
        Tick issuedAt = 0;
        /** Adversarial hold on this entry's issue (fuzzing). */
        Tick heldUntil = 0;
    };

    /** Volatile machine state captured by saveState(). */
    struct Snapshot
    {
        BaseState base;
        std::deque<Entry> queue;
        SeqNum lastRetiredSeq = 0;
    };

    void issueEligible();
    void retire();
    /** Route one flush response (token = CLWB seq). */
    void onMemResponse(const MemResponse &resp);

    CoreId core;
    IntelEngineParams params;
    /** Mailbox to the hierarchy; all CLWB flushes travel here. */
    MemPort port;
    std::deque<Entry> queue;
    /** Seq of the newest entry retired; monotonic. */
    SeqNum lastRetiredSeq = 0;
};

} // namespace strand

#endif // PERSIST_INTEL_ENGINE_HH
