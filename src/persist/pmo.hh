/**
 * @file
 * Executable formal model of persist memory order (PMO) under strand
 * persistency — Equations 1-4 of §III.
 *
 * Programs are given per thread as sequences of events: persists
 * (PM-writing operations), persist barriers, NewStrand, and
 * JoinStrand. Cross-thread (and cross-strand) visibility order of
 * conflicting accesses is supplied as explicit VMO edges. The model
 * computes the transitive ordering relation:
 *
 *  Eq.1 (intra-strand):  Mx <=v PB <=v My and no NS between Mx and
 *        My implies Mx <=p My.
 *  Eq.2 (inter-strand):  Mx <=v JS <=v My implies Mx <=p My.
 *  Eq.3 (strong persist atomicity): conflicting stores ordered in
 *        VMO are ordered in PMO; same-thread same-address persists
 *        follow program order.
 *  Eq.4 (transitivity).
 *
 * Tests validate both the relation itself (the figure-2 litmus
 * tests) and that simulated persist traces are linear extensions of
 * PMO.
 */

#ifndef PERSIST_PMO_HH
#define PERSIST_PMO_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace strand
{

/** Kinds of events in a PMO program. */
enum class PmoEvent : std::uint8_t
{
    Persist,
    Barrier,
    NewStrand,
    JoinStrand,
};

/** One event in one thread of a PMO program. */
struct PmoOp
{
    PmoEvent kind = PmoEvent::Persist;
    Addr addr = 0;
    /** Unique id for persists; ignored for primitives. */
    std::uint64_t id = 0;

    static PmoOp
    persist(std::uint64_t id, Addr addr)
    {
        return {PmoEvent::Persist, addr, id};
    }

    static PmoOp barrier() { return {PmoEvent::Barrier, 0, 0}; }
    static PmoOp newStrand() { return {PmoEvent::NewStrand, 0, 0}; }
    static PmoOp joinStrand() { return {PmoEvent::JoinStrand, 0, 0}; }
};

/**
 * A multi-threaded program over persist events plus explicit VMO
 * edges between conflicting persists on different threads or
 * strands.
 */
struct PmoProgram
{
    std::vector<std::vector<PmoOp>> threads;
    /** (earlier id, later id) visibility edges for conflicts. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> vmoEdges;
};

/**
 * The computed persist memory order for one program.
 */
class PmoModel
{
  public:
    explicit PmoModel(const PmoProgram &program);

    /** @return true if persist @p a must persist before @p b. */
    bool orderedBefore(std::uint64_t a, std::uint64_t b) const;

    /** @return true if neither order is required. */
    bool
    concurrent(std::uint64_t a, std::uint64_t b) const
    {
        return !orderedBefore(a, b) && !orderedBefore(b, a);
    }

    /** Number of persists in the program. */
    std::size_t numPersists() const { return ids.size(); }

    /** A violation found while checking an observed trace. */
    struct Violation
    {
        std::uint64_t first;  ///< Must persist first...
        std::uint64_t second; ///< ...but was observed after this.
    };

    /**
     * Check that @p observed (persist ids in completion order; may
     * omit persists that never completed, e.g. due to a crash) is a
     * linear extension of PMO. A persist missing from the trace must
     * not have PMO successors in the trace.
     *
     * @return the first violation found, or nullopt.
     */
    std::optional<Violation>
    checkTrace(const std::vector<std::uint64_t> &observed) const;

  private:
    std::size_t indexOf(std::uint64_t id) const;

    std::vector<std::uint64_t> ids;
    /** orderedMatrix[a][b] == true means a <=p b (a before b). */
    std::vector<std::vector<bool>> ordered;
};

} // namespace strand

#endif // PERSIST_PMO_HH
