file(REMOVE_RECURSE
  "libsw_persist.a"
)
