file(REMOVE_RECURSE
  "CMakeFiles/sw_persist.dir/design.cc.o"
  "CMakeFiles/sw_persist.dir/design.cc.o.d"
  "CMakeFiles/sw_persist.dir/intel_engine.cc.o"
  "CMakeFiles/sw_persist.dir/intel_engine.cc.o.d"
  "CMakeFiles/sw_persist.dir/pmo.cc.o"
  "CMakeFiles/sw_persist.dir/pmo.cc.o.d"
  "CMakeFiles/sw_persist.dir/strand_buffer_unit.cc.o"
  "CMakeFiles/sw_persist.dir/strand_buffer_unit.cc.o.d"
  "CMakeFiles/sw_persist.dir/strand_engine.cc.o"
  "CMakeFiles/sw_persist.dir/strand_engine.cc.o.d"
  "libsw_persist.a"
  "libsw_persist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
