# Empty dependencies file for sw_persist.
# This may be replaced when dependencies are built.
