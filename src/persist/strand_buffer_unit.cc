#include "persist/strand_buffer_unit.hh"

#include "fuzz/adversary.hh"

namespace strand
{

StrandBufferUnit::StrandBufferUnit(std::string name, EventQueue &eq,
                                   CoreId core, Hierarchy &hier,
                                   const StrandBufferUnitParams &params,
                                   stats::StatGroup *parent)
    : SimObject(std::move(name), eq, parent),
      clwbsIssued(this, "clwbsIssued", "CLWBs issued to the hierarchy"),
      clwbsCompleted(this, "clwbsCompleted", "CLWBs completed"),
      cleanFlushes(this, "cleanFlushes",
                   "CLWBs that found no dirty data"),
      barriersRetired(this, "barriersRetired",
                      "persist barriers retired"),
      strandsStarted(this, "strandsStarted", "NewStrand operations"),
      flushLatency(this, "flushLatency",
                   "CLWB issue-to-completion latency in ticks"),
      core(core), params(params), buffers(params.numBuffers)
{
    fatalIf(params.numBuffers == 0 || params.entriesPerBuffer == 0,
            "strand buffer unit needs at least one buffer and entry");
    retryEvaluate = [this] { evaluate(); };
    port.init(eq, fullName() + ".port");
    port.bind(hier);
    port.setResponseHandler(
        [this](const MemResponse &resp) { onMemResponse(resp); });
}

namespace
{

/** Flush tokens carry the entry's home buffer in the top bits. */
constexpr unsigned tokenBufferShift = 48;
constexpr std::uint64_t tokenPositionMask =
    (std::uint64_t{1} << tokenBufferShift) - 1;

} // namespace

void
StrandBufferUnit::onMemResponse(const MemResponse &resp)
{
    panicIf(resp.req != MemRequestKind::Flush,
            "{}: unexpected memory response", fullName());
    const std::size_t bi = resp.token >> tokenBufferShift;
    const std::uint64_t position = resp.token & tokenPositionMask;
    panicIf(bi >= buffers.size(), "{}: flush token names buffer {}",
            fullName(), bi);
    Buffer &buffer = buffers[bi];
    // Find the entry by position; earlier entries may have retired
    // meanwhile but this one cannot have (it is not yet complete).
    for (Entry &e : buffer.entries) {
        if (e.position != position)
            continue;
        if (resp.kind == MemResponseKind::FlushStarted) {
            // The cache read happened: post-barrier stores may drain.
            if (startedCallback)
                startedCallback(e.id);
            return;
        }
        e.completed = true;
        if (!resp.wrotePm)
            ++cleanFlushes;
        ++clwbsCompleted;
        flushLatency.sample(
            static_cast<double>(curTick() - e.issuedAt));
        if (completionCallback)
            completionCallback(e.id, resp.wrotePm);
        break;
    }
    if (resp.kind == MemResponseKind::FlushStarted)
        return;
    retireCompleted(buffer);
    issueFrom(buffer);
    // Retirement just moved the drain-point frontier, strictly after
    // the hierarchy's own completion kick ran — ring its doorbell so
    // parked snoops/write-backs re-check their clearances.
    MemRequest kick;
    kick.kind = MemRequestKind::Kick;
    kick.core = core;
    port.send(std::move(kick));
}

bool
StrandBufferUnit::canAcceptClwb() const
{
    return buffers[ongoing].entries.size() < params.entriesPerBuffer;
}

void
StrandBufferUnit::pushClwb(Addr addr, std::uint64_t id,
                           SeqNum elderStoreSeq)
{
    panicIf(!canAcceptClwb(), "strand buffer overflow");
    Buffer &buffer = buffers[ongoing];
    Entry entry;
    entry.kind = Kind::Clwb;
    entry.addr = addr;
    entry.id = id;
    entry.elderStoreSeq = elderStoreSeq;
    entry.position = buffer.nextPosition++;
    buffer.entries.push_back(entry);
    issueFrom(buffer);
}

void
StrandBufferUnit::pushBarrier()
{
    panicIf(!canAcceptBarrier(), "strand buffer overflow");
    Buffer &buffer = buffers[ongoing];
    Entry entry;
    entry.kind = Kind::Barrier;
    entry.position = buffer.nextPosition++;
    buffer.entries.push_back(entry);
    // A barrier with nothing ahead of it is immediately complete;
    // retire it eagerly so it does not block issue.
    retireCompleted(buffer);
}

void
StrandBufferUnit::newStrand()
{
    ++strandsStarted;
    ongoing = (ongoing + 1) % buffers.size();
}

bool
StrandBufferUnit::drained() const
{
    for (const Buffer &buffer : buffers)
        if (!buffer.entries.empty())
            return false;
    return true;
}

std::size_t
StrandBufferUnit::occupancy() const
{
    std::size_t total = 0;
    for (const Buffer &buffer : buffers)
        total += buffer.entries.size();
    return total;
}

Hierarchy::Clearance
StrandBufferUnit::recordDrainPoint()
{
    // Capture the tail position of every buffer. The predicate holds
    // once each buffer has retired everything up to its captured
    // tail. Empty buffers contribute no constraint.
    std::vector<std::uint64_t> tails(buffers.size(), 0);
    bool anyPending = false;
    for (std::size_t i = 0; i < buffers.size(); ++i) {
        if (!buffers[i].entries.empty()) {
            tails[i] = buffers[i].entries.back().position;
            anyPending = true;
        }
    }
    if (!anyPending)
        return {};
    return [this, tails = std::move(tails)] {
        for (std::size_t i = 0; i < buffers.size(); ++i)
            if (buffers[i].retiredUpTo < tails[i])
                return false;
        return true;
    };
}

void
StrandBufferUnit::issueFrom(Buffer &buffer)
{
    // Issue every CLWB ahead of the first incomplete barrier. CLWBs
    // in the same barrier-free prefix may flush concurrently.
    for (Entry &entry : buffer.entries) {
        if (entry.kind == Kind::Barrier) {
            if (!entry.completed)
                break;
            continue;
        }
        if (entry.hasIssued)
            continue;
        if (entry.elderStoreSeq != 0 && elderCompleted &&
            !elderCompleted(entry.elderStoreSeq))
            continue; // not flushable yet; later entries may proceed
        if (params.adversary) {
            // Fuzzing: entries in a barrier-free prefix (and in other
            // strands) carry no mutual ordering, so holding this one
            // while its neighbours flush is a legal schedule.
            if (curTick() < entry.heldUntil)
                continue;
            Tick delay = params.adversary->consider(
                eq, FuzzSite::SbuIssue, core, retryEvaluate);
            if (delay > 0) {
                entry.heldUntil = curTick() + delay;
                continue;
            }
        }
        entry.hasIssued = true;
        entry.issuedAt = curTick();
        ++clwbsIssued;
        const std::size_t bi =
            static_cast<std::size_t>(&buffer - buffers.data());
        MemRequest req;
        req.kind = MemRequestKind::Flush;
        req.core = core;
        req.addr = entry.addr;
        req.token = (static_cast<std::uint64_t>(bi)
                     << tokenBufferShift) | entry.position;
        port.send(std::move(req));
    }
}

void
StrandBufferUnit::retireCompleted(Buffer &buffer)
{
    // Retire from the head: completed CLWBs, and barriers whose
    // predecessors have all retired.
    while (!buffer.entries.empty()) {
        Entry &head = buffer.entries.front();
        if (head.kind == Kind::Barrier) {
            head.completed = true;
            ++barriersRetired;
        } else if (!head.completed) {
            break;
        }
        buffer.retiredUpTo = head.position;
        buffer.entries.pop_front();
    }
}

void
StrandBufferUnit::evaluate()
{
    for (Buffer &buffer : buffers) {
        retireCompleted(buffer);
        issueFrom(buffer);
    }
}

void
StrandBufferUnit::saveState(SimSnapshot &snap) const
{
    // Entries are plain descriptors (elder-store gating is a SeqNum
    // resolved against elderCompleted at issue time), so a wholesale
    // copy captures everything. In-flight flush requests/responses
    // live in the hierarchy/event queue and are captured there; they
    // find their entry again by the position in their token.
    Snapshot s;
    s.buffers = buffers;
    s.ongoing = ongoing;
    snap.put(snapshotName(), s);
}

void
StrandBufferUnit::restoreState(const SimSnapshot &snap)
{
    const Snapshot &s = snap.get<Snapshot>(snapshotName());
    panicIf(s.buffers.size() != buffers.size(),
            "{}: restore with a different buffer count",
            snapshotName());
    buffers = s.buffers;
    ongoing = s.ongoing;
}

} // namespace strand
