/**
 * @file
 * The per-core persist engine interface.
 *
 * The persist engine owns the hardware that orders persists for one
 * core. The core dispatches CLWBs and ordering primitives into it,
 * and consults it before issuing stores from the store queue (the
 * cross-gating of §IV: persist barriers order prior stores before
 * subsequent CLWBs and prior CLWBs before subsequent stores).
 *
 * Five hardware designs from the paper's evaluation are implemented:
 *  - IntelX86Engine: CLWB + SFENCE epochs (also used, fence-free,
 *    for the NON-ATOMIC upper bound),
 *  - StrandEngine: the StrandWeaver persist queue + strand buffer
 *    unit; parameterized to also model NO-PERSIST-QUEUE (persist ops
 *    share the store queue) and HOPS (one persist buffer, delegated
 *    ofence, durable dfence).
 */

#ifndef PERSIST_PERSIST_ENGINE_HH
#define PERSIST_PERSIST_ENGINE_HH

#include <functional>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/observer.hh"
#include "cpu/op.hh"
#include "sim/sim_object.hh"

namespace strand
{

/**
 * Queries the engine makes against the core's store queue. Installed
 * by the core at construction; keeps the engine decoupled from the
 * store queue implementation.
 */
struct StoreQueueView
{
    /** Has the store with this dispatch seq written the L1? */
    std::function<bool(SeqNum)> completed;
    /** Has the store with this dispatch seq been issued to the L1? */
    std::function<bool(SeqNum)> issued;
    /** Have all stores dispatched before @p seq written the L1? */
    std::function<bool(SeqNum)> allCompletedBefore;
    /** Have all stores dispatched before @p seq been issued to L1? */
    std::function<bool(SeqNum)> allIssuedBefore;
    /** Seq of the oldest store not yet completed (max if none). */
    std::function<SeqNum()> oldestIncompleteStore;
};

/** Abstract persist engine. */
class PersistEngine : public SimObject
{
  public:
    using SimObject::SimObject;
    virtual ~PersistEngine() = default;

    void setStoreView(StoreQueueView view) { sq = std::move(view); }

    /** Invoked whenever the engine makes progress outside the core's
     * tick (e.g. a flush completion), so a sleeping core re-ticks. */
    void setWakeCallback(std::function<void()> cb)
    {
        wake = std::move(cb);
    }

    /** Monotonic count of issue/complete/retire steps; lets the core
     * detect engine progress made during its own tick. */
    std::uint64_t progressCount() const { return progress; }

    /** @return true if one more persist op can be dispatched. */
    virtual bool canAccept() const = 0;

    /**
     * Dispatch a persist op.
     * @param seq The op's position in the thread's dispatch order
     * (shared sequence space with stores).
     * @param elderStoreSeq Seq of the youngest earlier store to the
     * same cache line that is still outstanding, or 0.
     */
    virtual void dispatch(const Op &op, SeqNum seq,
                          SeqNum elderStoreSeq) = 0;

    /** May the store with dispatch seq @p seq be issued to the L1? */
    virtual bool storeMayIssue(SeqNum seq) const = 0;

    /** Called by the core at the top of each cycle. */
    virtual void beginCycle() {}

    /** @return true if the engine consumed the shared store-queue
     * drain port this cycle (NO-PERSIST-QUEUE design). */
    virtual bool portBusy() const { return false; }

    /** Issue whatever has become eligible. */
    virtual void evaluate() = 0;

    /** @return true when no persist work is pending. */
    virtual bool drained() const = 0;

    /** @return persist-queue entries currently occupied. */
    virtual std::size_t queueOccupancy() const = 0;

    /**
     * @return true if persist ops consume store-queue slots
     * (NO-PERSIST-QUEUE design).
     */
    virtual bool sharesStoreQueue() const { return false; }

    /** Seq of the oldest persist entry still occupying a slot (max
     * if none); shared-queue stores behind it cannot free theirs. */
    virtual SeqNum
    oldestIncompleteSeq() const
    {
        return ~static_cast<SeqNum>(0);
    }

    /** Capture a drain point for write-back / snoop interlocks. */
    virtual Hierarchy::Clearance recordDrainPoint() = 0;

    /**
     * Declared latency of the engine's request leg to the shared
     * cache fabric (its flush mailbox), used by the domain
     * partitioner as cross-domain lookahead. Engines that mail
     * nothing themselves report maxTick (no constraint).
     */
    virtual Tick portRequestLatency() const { return maxTick; }

    /** Declared latency of the fabric→engine response leg. */
    virtual Tick portResponseLatency() const { return maxTick; }

    /**
     * Enable recording of persist-completion ticks. The crash
     * harness enumerates these as injectable crash points: every
     * tick at which this engine observed a flush reach the ADR
     * domain is a boundary where a failure may expose an ordering
     * bug.
     */
    void
    setRecordCompletions(bool enable)
    {
        recordCompletions = enable;
    }

    /** Ticks at which persists completed (when recording enabled). */
    const std::vector<Tick> &
    completionTicks() const
    {
        return completions;
    }

    /** Attach the system's observer hub; retirement events carry
     * @p core as their core id. */
    void
    setObserverHub(ObserverHub *hub, CoreId core)
    {
        obsHub = hub;
        obsCore = core;
    }

  protected:
    /** Publish a primitive-retired event (no-op without observers). */
    void
    emitRetired(PrimitiveKind kind, SeqNum seq, Addr lineAddr = 0,
                bool clean = false)
    {
        if (!obsHub || !obsHub->active())
            return;
        PrimitiveEvent ev;
        ev.core = obsCore;
        ev.kind = kind;
        ev.seq = seq;
        ev.lineAddr = lineAddr;
        ev.when = curTick();
        ev.clean = clean;
        obsHub->primitiveRetired(ev);
    }

    /** Engines call this when a CLWB/flush completes. */
    void
    noteCompletion()
    {
        if (recordCompletions)
            completions.push_back(curTick());
    }

    void
    noteProgress()
    {
        ++progress;
        if (wake)
            wake();
    }

    /**
     * Base-class engine state every concrete engine folds into its
     * own snapshot: the progress counter the core polls, and the
     * crash harness's completion-tick recording.
     */
    struct BaseState
    {
        std::uint64_t progress = 0;
        bool recordCompletions = false;
        std::vector<Tick> completions;
    };

    BaseState
    baseState() const
    {
        return {progress, recordCompletions, completions};
    }

    void
    restoreBaseState(const BaseState &s)
    {
        progress = s.progress;
        recordCompletions = s.recordCompletions;
        completions = s.completions;
    }

    StoreQueueView sq;
    std::function<void()> wake;
    std::uint64_t progress = 0;
    ObserverHub *obsHub = nullptr;
    CoreId obsCore = 0;

  private:
    bool recordCompletions = false;
    std::vector<Tick> completions;
};

} // namespace strand

#endif // PERSIST_PERSIST_ENGINE_HH
