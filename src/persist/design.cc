#include "persist/design.hh"

#include "persist/intel_engine.hh"
#include "persist/strand_engine.hh"

namespace strand
{

const char *
hwDesignName(HwDesign design)
{
    switch (design) {
      case HwDesign::IntelX86:
        return "intel-x86";
      case HwDesign::Hops:
        return "hops";
      case HwDesign::NoPersistQueue:
        return "no-persist-queue";
      case HwDesign::StrandWeaver:
        return "strandweaver";
      case HwDesign::NonAtomic:
        return "non-atomic";
    }
    return "?";
}

const char *
persistencyModelName(PersistencyModel model)
{
    switch (model) {
      case PersistencyModel::Txn:
        return "txn";
      case PersistencyModel::Sfr:
        return "sfr";
      case PersistencyModel::Atlas:
        return "atlas";
    }
    return "?";
}

std::unique_ptr<PersistEngine>
makePersistEngine(HwDesign design, std::string name, EventQueue &eq,
                  CoreId core, Hierarchy &hier,
                  const EngineConfig &config, stats::StatGroup *parent)
{
    auto build = [&]() -> std::unique_ptr<PersistEngine> {
        switch (design) {
          case HwDesign::IntelX86: {
            IntelEngineParams p;
            p.queueEntries = config.pqEntries;
            p.adversary = config.adversary;
            p.plantedEpochBug = config.plantedEpochBug;
            return std::make_unique<IntelEngine>(std::move(name), eq,
                                                 core, hier, p, parent);
          }
          case HwDesign::NonAtomic: {
            // The upper bound runs on StrandWeaver hardware; its
            // stream simply omits the pairwise log/update ordering.
            StrandEngineParams p = strandWeaverParams();
            p.pqEntries = config.pqEntries;
            p.sbu.numBuffers = config.strandBuffers;
            p.sbu.entriesPerBuffer = config.entriesPerBuffer;
            p.adversary = config.adversary;
            p.sbu.adversary = config.adversary;
            return std::make_unique<StrandEngine>(std::move(name), eq,
                                                  core, hier, p, parent);
          }
          case HwDesign::Hops: {
            StrandEngineParams p = hopsParams();
            p.pqEntries = config.pqEntries;
            p.epochInterlock = config.hopsEpochInterlock;
            p.strictAdmission = config.hopsStrictAdmission;
            p.adversary = config.adversary;
            p.sbu.adversary = config.adversary;
            return std::make_unique<StrandEngine>(std::move(name), eq,
                                                  core, hier, p, parent);
          }
          case HwDesign::NoPersistQueue: {
            StrandEngineParams p = noPersistQueueParams();
            p.sbu.numBuffers = config.strandBuffers;
            p.sbu.entriesPerBuffer = config.entriesPerBuffer;
            p.adversary = config.adversary;
            p.sbu.adversary = config.adversary;
            return std::make_unique<StrandEngine>(std::move(name), eq,
                                                  core, hier, p, parent);
          }
          case HwDesign::StrandWeaver: {
            StrandEngineParams p = strandWeaverParams();
            p.pqEntries = config.pqEntries;
            p.sbu.numBuffers = config.strandBuffers;
            p.sbu.entriesPerBuffer = config.entriesPerBuffer;
            p.adversary = config.adversary;
            p.sbu.adversary = config.adversary;
            return std::make_unique<StrandEngine>(std::move(name), eq,
                                                  core, hier, p, parent);
          }
        }
        panic("unknown hardware design");
    };
    auto engine = build();
    engine->setRecordCompletions(config.recordCompletionTicks);
    // The engine rides with its core's PDES domain when sharded.
    engine->setDomainAffinity("core" + std::to_string(core));
    return engine;
}

} // namespace strand
