/**
 * @file
 * Functional memory state with separate architectural and persisted
 * views.
 *
 * The architectural view reflects the newest value each word has
 * taken on in the cache hierarchy (updated when a store drains from
 * the store queue into the L1). The persisted view reflects only the
 * data that has reached the ADR domain of the PM controller. A
 * simulated crash freezes the persisted view; recovery code then
 * reads it to reconstruct program state.
 */

#ifndef MEM_MEMORY_IMAGE_HH
#define MEM_MEMORY_IMAGE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "mem/address_map.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace strand
{

/**
 * A snapshot of (part of) one cache line, captured when a flush or
 * write-back leaves the caches and applied to the persisted view when
 * the PM controller accepts it.
 */
struct LineData
{
    Addr lineAddr = 0;
    std::array<std::uint64_t, wordsPerLine> words{};
    /** Bit i set means words[i] holds a captured value. */
    std::uint8_t validMask = 0;

    bool
    valid(unsigned idx) const
    {
        return validMask & (1u << idx);
    }

    void
    set(unsigned idx, std::uint64_t value)
    {
        panicIf(idx >= wordsPerLine, "line word index out of range");
        words[idx] = value;
        validMask |= static_cast<std::uint8_t>(1u << idx);
    }
};

/**
 * The global functional memory image for one simulated system.
 */
class MemoryImage
{
  public:
    /** Architectural store: called when a store reaches the L1. */
    void
    writeArch(Addr addr, std::uint64_t value)
    {
        arch[wordAlign(addr)] = value;
    }

    /** @return the architectural value of the word at @p addr. */
    std::uint64_t
    readArch(Addr addr) const
    {
        auto it = arch.find(wordAlign(addr));
        return it == arch.end() ? 0 : it->second;
    }

    /** @return true if the word has ever been written architecturally. */
    bool
    archContains(Addr addr) const
    {
        return arch.contains(wordAlign(addr));
    }

    /**
     * Capture the current architectural content of the line holding
     * @p addr. Words never written are left invalid in the snapshot.
     */
    LineData
    snapshotLine(Addr addr) const
    {
        LineData data;
        data.lineAddr = lineAlign(addr);
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            Addr wa = data.lineAddr + i * wordBytes;
            auto it = arch.find(wa);
            if (it != arch.end())
                data.set(i, it->second);
        }
        return data;
    }

    /**
     * Apply a snapshot to the persisted view. Called by the PM
     * controller at ADR admission, the point of persistence. The
     * admission's pre-image is remembered so torn-cacheline fault
     * injection can re-crash with only part of this line durable
     * (see clonePersistedTorn()).
     */
    void
    persistLine(const LineData &data)
    {
        panicIf(!isPersistentAddr(data.lineAddr) && data.validMask != 0,
                "persist to non-PM address {}", data.lineAddr);
        lastAdmission.lineAddr = data.lineAddr;
        lastAdmission.writtenMask = data.validMask;
        lastAdmission.prevValidMask = 0;
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            if (!data.valid(i))
                continue;
            Addr wa = data.lineAddr + i * wordBytes;
            if (auto it = persisted.find(wa); it != persisted.end()) {
                lastAdmission.prevWords[i] = it->second;
                lastAdmission.prevValidMask |=
                    static_cast<std::uint8_t>(1u << i);
            }
            persisted[wa] = data.words[i];
        }
    }

    /**
     * Write a word durably in one step: both the architectural and
     * persisted views are updated. Used to seed preloaded data
     * before a run and by recovery code (whose writes are flushed
     * before recovery completes).
     */
    void
    writeDurable(Addr addr, std::uint64_t value)
    {
        arch[wordAlign(addr)] = value;
        persisted[wordAlign(addr)] = value;
    }

    /** @return the persisted value of the word at @p addr. */
    std::uint64_t
    readPersisted(Addr addr) const
    {
        auto it = persisted.find(wordAlign(addr));
        return it == persisted.end() ? 0 : it->second;
    }

    /** @return true if the word has persisted at least once. */
    bool
    persistedContains(Addr addr) const
    {
        return persisted.contains(wordAlign(addr));
    }

    /**
     * Simulate a failure: volatile state disappears; the persisted
     * view survives untouched. The architectural view is replaced by
     * the persisted view, which is what a restarted program observes.
     */
    void
    crash()
    {
        arch = persisted;
    }

    /**
     * Clone the persisted view into a fresh post-crash image: both
     * views of the clone hold exactly what had reached the ADR
     * domain. The crash-injection harness snapshots the running
     * system this way at every crash point, then runs recovery on
     * the clone while the original run continues undisturbed.
     */
    MemoryImage
    clonePersisted() const
    {
        MemoryImage snapshot;
        snapshot.persisted = persisted;
        snapshot.arch = persisted;
        return snapshot;
    }

    /**
     * Like clonePersisted(), but model a *torn* final admission: PM
     * devices write below ADR line granularity, so a failure racing
     * the last admitted line can leave only a subset of its 8-byte
     * words durable. Words of the most recent persistLine() call
     * whose bit is clear in @p admitMask are reverted to their
     * pre-admission persisted value (or dropped, if the word had
     * never persisted). With no admission yet, or a full mask, the
     * clone equals clonePersisted().
     */
    MemoryImage
    clonePersistedTorn(std::uint8_t admitMask) const
    {
        MemoryImage snapshot = clonePersisted();
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            if (!(lastAdmission.writtenMask & (1u << i)) ||
                (admitMask & (1u << i))) {
                continue;
            }
            Addr wa = lastAdmission.lineAddr + i * wordBytes;
            if (lastAdmission.prevValidMask & (1u << i)) {
                snapshot.persisted[wa] = lastAdmission.prevWords[i];
                snapshot.arch[wa] = lastAdmission.prevWords[i];
            } else {
                snapshot.persisted.erase(wa);
                snapshot.arch.erase(wa);
            }
        }
        return snapshot;
    }

    /** Valid-word mask of the most recent ADR admission (0 if none). */
    std::uint8_t
    lastAdmissionMask() const
    {
        return lastAdmission.writtenMask;
    }

    /** Walk every persisted word (unordered). */
    void
    forEachPersisted(
        const std::function<void(Addr, std::uint64_t)> &visit) const
    {
        for (const auto &[addr, value] : persisted)
            visit(addr, value);
    }

    std::size_t archWords() const { return arch.size(); }
    std::size_t persistedWords() const { return persisted.size(); }

  private:
    /** Pre-image of the most recent admission, for torn injection. */
    struct AdmissionUndo
    {
        Addr lineAddr = 0;
        /** Words the admission wrote. */
        std::uint8_t writtenMask = 0;
        /** Of those, words that had a prior persisted value. */
        std::uint8_t prevValidMask = 0;
        std::array<std::uint64_t, wordsPerLine> prevWords{};
    };

    std::unordered_map<Addr, std::uint64_t> arch;
    std::unordered_map<Addr, std::uint64_t> persisted;
    AdmissionUndo lastAdmission;
};

} // namespace strand

#endif // MEM_MEMORY_IMAGE_HH
