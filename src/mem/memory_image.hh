/**
 * @file
 * Functional memory state with separate architectural and persisted
 * views.
 *
 * The architectural view reflects the newest value each word has
 * taken on in the cache hierarchy (updated when a store drains from
 * the store queue into the L1). The persisted view reflects only the
 * data that has reached the ADR domain of the PM controller. A
 * simulated crash freezes the persisted view; recovery code then
 * reads it to reconstruct program state.
 */

#ifndef MEM_MEMORY_IMAGE_HH
#define MEM_MEMORY_IMAGE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "mem/address_map.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace strand
{

/**
 * A snapshot of (part of) one cache line, captured when a flush or
 * write-back leaves the caches and applied to the persisted view when
 * the PM controller accepts it.
 */
struct LineData
{
    Addr lineAddr = 0;
    std::array<std::uint64_t, wordsPerLine> words{};
    /** Bit i set means words[i] holds a captured value. */
    std::uint8_t validMask = 0;

    bool
    valid(unsigned idx) const
    {
        return validMask & (1u << idx);
    }

    void
    set(unsigned idx, std::uint64_t value)
    {
        panicIf(idx >= wordsPerLine, "line word index out of range");
        words[idx] = value;
        validMask |= static_cast<std::uint8_t>(1u << idx);
    }
};

/**
 * The global functional memory image for one simulated system.
 */
class MemoryImage
{
  public:
    /** Architectural store: called when a store reaches the L1. */
    void
    writeArch(Addr addr, std::uint64_t value)
    {
        arch[wordAlign(addr)] = value;
    }

    /** @return the architectural value of the word at @p addr. */
    std::uint64_t
    readArch(Addr addr) const
    {
        auto it = arch.find(wordAlign(addr));
        return it == arch.end() ? 0 : it->second;
    }

    /** @return true if the word has ever been written architecturally. */
    bool
    archContains(Addr addr) const
    {
        return arch.contains(wordAlign(addr));
    }

    /**
     * Capture the current architectural content of the line holding
     * @p addr. Words never written are left invalid in the snapshot.
     */
    LineData
    snapshotLine(Addr addr) const
    {
        LineData data;
        data.lineAddr = lineAlign(addr);
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            Addr wa = data.lineAddr + i * wordBytes;
            auto it = arch.find(wa);
            if (it != arch.end())
                data.set(i, it->second);
        }
        return data;
    }

    /**
     * Apply a snapshot to the persisted view. Called by the PM
     * controller at ADR admission, the point of persistence.
     */
    void
    persistLine(const LineData &data)
    {
        panicIf(!isPersistentAddr(data.lineAddr) && data.validMask != 0,
                "persist to non-PM address {}", data.lineAddr);
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            if (data.valid(i))
                persisted[data.lineAddr + i * wordBytes] = data.words[i];
        }
    }

    /**
     * Write a word durably in one step: both the architectural and
     * persisted views are updated. Used to seed preloaded data
     * before a run and by recovery code (whose writes are flushed
     * before recovery completes).
     */
    void
    writeDurable(Addr addr, std::uint64_t value)
    {
        arch[wordAlign(addr)] = value;
        persisted[wordAlign(addr)] = value;
    }

    /** @return the persisted value of the word at @p addr. */
    std::uint64_t
    readPersisted(Addr addr) const
    {
        auto it = persisted.find(wordAlign(addr));
        return it == persisted.end() ? 0 : it->second;
    }

    /** @return true if the word has persisted at least once. */
    bool
    persistedContains(Addr addr) const
    {
        return persisted.contains(wordAlign(addr));
    }

    /**
     * Simulate a failure: volatile state disappears; the persisted
     * view survives untouched. The architectural view is replaced by
     * the persisted view, which is what a restarted program observes.
     */
    void
    crash()
    {
        arch = persisted;
    }

    /**
     * Clone the persisted view into a fresh post-crash image: both
     * views of the clone hold exactly what had reached the ADR
     * domain. The crash-injection harness snapshots the running
     * system this way at every crash point, then runs recovery on
     * the clone while the original run continues undisturbed.
     */
    MemoryImage
    clonePersisted() const
    {
        MemoryImage snapshot;
        snapshot.persisted = persisted;
        snapshot.arch = persisted;
        return snapshot;
    }

    /** Walk every persisted word (unordered). */
    void
    forEachPersisted(
        const std::function<void(Addr, std::uint64_t)> &visit) const
    {
        for (const auto &[addr, value] : persisted)
            visit(addr, value);
    }

    std::size_t archWords() const { return arch.size(); }
    std::size_t persistedWords() const { return persisted.size(); }

  private:
    std::unordered_map<Addr, std::uint64_t> arch;
    std::unordered_map<Addr, std::uint64_t> persisted;
};

} // namespace strand

#endif // MEM_MEMORY_IMAGE_HH
