/**
 * @file
 * Functional memory state with separate architectural and persisted
 * views.
 *
 * The architectural view reflects the newest value each word has
 * taken on in the cache hierarchy (updated when a store drains from
 * the store queue into the L1). The persisted view reflects only the
 * data that has reached the ADR domain of the PM controller. A
 * simulated crash freezes the persisted view; recovery code then
 * reads it to reconstruct program state.
 */

#ifndef MEM_MEMORY_IMAGE_HH
#define MEM_MEMORY_IMAGE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <vector>

#include "mem/address_map.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace strand
{

/**
 * A snapshot of (part of) one cache line, captured when a flush or
 * write-back leaves the caches and applied to the persisted view when
 * the PM controller accepts it.
 */
struct LineData
{
    Addr lineAddr = 0;
    std::array<std::uint64_t, wordsPerLine> words{};
    /** Bit i set means words[i] holds a captured value. */
    std::uint8_t validMask = 0;

    bool
    valid(unsigned idx) const
    {
        return validMask & (1u << idx);
    }

    void
    set(unsigned idx, std::uint64_t value)
    {
        panicIf(idx >= wordsPerLine, "line word index out of range");
        words[idx] = value;
        validMask |= static_cast<std::uint8_t>(1u << idx);
    }
};

/**
 * Sparse word storage, page-granular.
 *
 * Words live in fixed-size pages (512 words / 4 KiB of data) keyed by
 * page base address, each with an occupancy bitmap distinguishing
 * written words from the implicit zero background. Compared to a
 * per-word hash map this costs one hash probe per *page* on the
 * line-granular paths (snapshot, persist) and — the reason it exists —
 * makes whole-image copies a handful of page memcpys instead of a
 * rehash of every word ever written. Cache lines never span pages
 * (pageBytes is a multiple of lineBytes), so line operations touch
 * exactly one page.
 */
class WordStore
{
  public:
    static constexpr unsigned pageWords = 512;
    static constexpr Addr pageBytes =
        static_cast<Addr>(pageWords) * wordBytes;
    static_assert(pageBytes % lineBytes == 0,
                  "lines must not span pages");

    struct Page
    {
        std::array<std::uint64_t, pageWords> words{};
        /** Bit w set means words[w] has been written. */
        std::array<std::uint64_t, pageWords / 64> occupancy{};
    };

    /** @return the base address of the page holding @p wordAddr. */
    static Addr
    pageBase(Addr wordAddr)
    {
        return wordAddr & ~(pageBytes - 1);
    }

    /** @return @p wordAddr's word slot within its page. */
    static unsigned
    slotOf(Addr wordAddr)
    {
        return static_cast<unsigned>((wordAddr & (pageBytes - 1)) /
                                     wordBytes);
    }

    static bool
    occupied(const Page &page, unsigned slot)
    {
        return (page.occupancy[slot >> 6] >> (slot & 63)) & 1;
    }

    /** Write one slot of @p page, maintaining the word count. */
    void
    setSlot(Page &page, unsigned slot, std::uint64_t value)
    {
        if (!occupied(page, slot)) {
            page.occupancy[slot >> 6] |= std::uint64_t{1} << (slot & 63);
            ++occupiedWords;
        }
        page.words[slot] = value;
    }

    void
    set(Addr wordAddr, std::uint64_t value)
    {
        setSlot(pages[pageBase(wordAddr)], slotOf(wordAddr), value);
    }

    /** @return the word's value, or 0 if never written. */
    std::uint64_t
    get(Addr wordAddr) const
    {
        const Page *page = findPage(wordAddr);
        // Unwritten slots of an existing page read as zero from the
        // zero-initialized array, matching the sparse background.
        return page ? page->words[slotOf(wordAddr)] : 0;
    }

    bool
    contains(Addr wordAddr) const
    {
        const Page *page = findPage(wordAddr);
        return page && occupied(*page, slotOf(wordAddr));
    }

    void
    erase(Addr wordAddr)
    {
        auto it = pages.find(pageBase(wordAddr));
        if (it == pages.end())
            return;
        unsigned slot = slotOf(wordAddr);
        if (!occupied(it->second, slot))
            return;
        it->second.occupancy[slot >> 6] &=
            ~(std::uint64_t{1} << (slot & 63));
        // Restore the zero background so get() stays consistent.
        it->second.words[slot] = 0;
        --occupiedWords;
    }

    /** @return the page holding @p wordAddr, or nullptr. */
    const Page *
    findPage(Addr wordAddr) const
    {
        auto it = pages.find(pageBase(wordAddr));
        return it == pages.end() ? nullptr : &it->second;
    }

    /** @return the page holding @p wordAddr, creating it if absent. */
    Page &
    touchPage(Addr wordAddr)
    {
        return pages[pageBase(wordAddr)];
    }

    /** Number of written words across all pages. */
    std::size_t size() const { return occupiedWords; }

    /** Walk every written word (unordered). */
    template <typename Visit>
    void
    forEach(Visit &&visit) const
    {
        for (const auto &[base, page] : pages) {
            for (unsigned slot = 0; slot < pageWords; ++slot) {
                if (occupied(page, slot))
                    visit(base + slot * wordBytes, page.words[slot]);
            }
        }
    }

  private:
    std::unordered_map<Addr, Page> pages;
    std::size_t occupiedWords = 0;
};

/**
 * The global functional memory image for one simulated system.
 */
class MemoryImage
{
  public:
    /**
     * Pre-image of one ADR admission: which words the admission
     * wrote, and what each of them held in the persisted view just
     * before. Recorded by persistLine() for torn-cacheline injection
     * (clonePersistedTorn()); the forked crash harness additionally
     * collects one per admission so a final image can be rewound
     * admission by admission (undoAdmission()).
     */
    struct AdmissionUndo
    {
        Addr lineAddr = 0;
        /** Words the admission wrote. */
        std::uint8_t writtenMask = 0;
        /** Of those, words that had a prior persisted value. */
        std::uint8_t prevValidMask = 0;
        std::array<std::uint64_t, wordsPerLine> prevWords{};
    };

    /** Architectural store: called when a store reaches the L1. */
    void
    writeArch(Addr addr, std::uint64_t value)
    {
        arch.set(wordAlign(addr), value);
    }

    /** @return the architectural value of the word at @p addr. */
    std::uint64_t
    readArch(Addr addr) const
    {
        return arch.get(wordAlign(addr));
    }

    /** @return true if the word has ever been written architecturally. */
    bool
    archContains(Addr addr) const
    {
        return arch.contains(wordAlign(addr));
    }

    /**
     * Capture the current architectural content of the line holding
     * @p addr. Words never written are left invalid in the snapshot.
     */
    LineData
    snapshotLine(Addr addr) const
    {
        LineData data;
        data.lineAddr = lineAlign(addr);
        const WordStore::Page *page = arch.findPage(data.lineAddr);
        if (!page)
            return data;
        unsigned base = WordStore::slotOf(data.lineAddr);
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            if (WordStore::occupied(*page, base + i))
                data.set(i, page->words[base + i]);
        }
        return data;
    }

    /**
     * Apply a snapshot to the persisted view. Called by the PM
     * controller at ADR admission, the point of persistence. The
     * admission's pre-image is remembered so torn-cacheline fault
     * injection can re-crash with only part of this line durable
     * (see clonePersistedTorn()).
     */
    void
    persistLine(const LineData &data)
    {
        panicIf(!isPersistentAddr(data.lineAddr) && data.validMask != 0,
                "persist to non-PM address {}", data.lineAddr);
        lastAdmission.lineAddr = data.lineAddr;
        lastAdmission.writtenMask = data.validMask;
        lastAdmission.prevValidMask = 0;
        if (data.validMask == 0) {
            pushAdmission(lastAdmission);
            return;
        }
        WordStore::Page &page = persisted.touchPage(data.lineAddr);
        unsigned base = WordStore::slotOf(data.lineAddr);
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            if (!data.valid(i))
                continue;
            if (WordStore::occupied(page, base + i)) {
                lastAdmission.prevWords[i] = page.words[base + i];
                lastAdmission.prevValidMask |=
                    static_cast<std::uint8_t>(1u << i);
            }
            persisted.setSlot(page, base + i, data.words[i]);
        }
        pushAdmission(lastAdmission);
    }

    /**
     * Write a word durably in one step: both the architectural and
     * persisted views are updated. Used to seed preloaded data
     * before a run and by recovery code (whose writes are flushed
     * before recovery completes).
     */
    void
    writeDurable(Addr addr, std::uint64_t value)
    {
        arch.set(wordAlign(addr), value);
        persisted.set(wordAlign(addr), value);
        // Poison is deliberately NOT cleared here: it marks the whole
        // line's ECC block uncorrectable, and a single-word overwrite
        // leaves the line's other words scrambled. Clearing on partial
        // writes would let rollback "repair" one word of a poisoned
        // line and silently expose the rest — the exact corruption
        // class recovery must quarantine instead (its residual-poison
        // pass fences every still-poisoned line).
    }

    /** @return the persisted value of the word at @p addr. */
    std::uint64_t
    readPersisted(Addr addr) const
    {
        return persisted.get(wordAlign(addr));
    }

    /** @return true if the word has persisted at least once. */
    bool
    persistedContains(Addr addr) const
    {
        return persisted.contains(wordAlign(addr));
    }

    /**
     * Simulate a failure: volatile state disappears; the persisted
     * view survives untouched. The architectural view is replaced by
     * the persisted view, which is what a restarted program observes.
     */
    void
    crash()
    {
        arch = persisted;
    }

    /**
     * Clone the persisted view into a fresh post-crash image: both
     * views of the clone hold exactly what had reached the ADR
     * domain. The crash-injection harness snapshots the running
     * system this way at every crash point, then runs recovery on
     * the clone while the original run continues undisturbed.
     */
    MemoryImage
    clonePersisted() const
    {
        MemoryImage snapshot;
        snapshot.persisted = persisted;
        snapshot.arch = persisted;
        return snapshot;
    }

    /**
     * Like clonePersisted(), but model a *torn* final admission: PM
     * devices write below ADR line granularity, so a failure racing
     * the last admitted line can leave only a subset of its 8-byte
     * words durable. Words of the most recent persistLine() call
     * whose bit is clear in @p admitMask are reverted to their
     * pre-admission persisted value (or dropped, if the word had
     * never persisted). With no admission yet, or a full mask, the
     * clone equals clonePersisted().
     */
    MemoryImage
    clonePersistedTorn(std::uint8_t admitMask) const
    {
        MemoryImage snapshot = clonePersisted();
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            if (!(lastAdmission.writtenMask & (1u << i)) ||
                (admitMask & (1u << i))) {
                continue;
            }
            Addr wa = lastAdmission.lineAddr + i * wordBytes;
            if (lastAdmission.prevValidMask & (1u << i)) {
                snapshot.persisted.set(wa, lastAdmission.prevWords[i]);
                snapshot.arch.set(wa, lastAdmission.prevWords[i]);
            } else {
                snapshot.persisted.erase(wa);
                snapshot.arch.erase(wa);
            }
        }
        return snapshot;
    }

    /** Valid-word mask of the most recent ADR admission (0 if none). */
    std::uint8_t
    lastAdmissionMask() const
    {
        return lastAdmission.writtenMask;
    }

    /** Pre-image of the most recent ADR admission. */
    const AdmissionUndo &
    lastAdmissionUndo() const
    {
        return lastAdmission;
    }

    /**
     * Overwrite the remembered last admission. The forked crash
     * harness rewinds a final image admission by admission; after
     * each rewind the previous admission in the chain becomes the
     * "most recent" one, so torn clones at the rewound point tear
     * the right line.
     */
    void
    setLastAdmission(const AdmissionUndo &undo)
    {
        lastAdmission = undo;
    }

    /**
     * Revert one admission in BOTH views: every word @p undo wrote
     * goes back to its pre-admission persisted value (or to the
     * never-written background). Only meaningful on an image whose
     * views coincide with the persisted state at the time of the
     * admission — i.e. while rewinding a completed run's final image
     * newest-admission-first; undoing out of order restores stale
     * pre-images.
     */
    void
    undoAdmission(const AdmissionUndo &undo)
    {
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            if (!(undo.writtenMask & (1u << i)))
                continue;
            Addr wa = undo.lineAddr + i * wordBytes;
            if (undo.prevValidMask & (1u << i)) {
                persisted.set(wa, undo.prevWords[i]);
                arch.set(wa, undo.prevWords[i]);
            } else {
                persisted.erase(wa);
                arch.erase(wa);
            }
        }
    }

    /**
     * Media-fault model: how many trailing ADR admissions the image
     * remembers for partial-drain injection. Matches the depth a
     * small ADR buffer could lose on power failure; the fault model
     * never reaches further back than this.
     */
    static constexpr std::size_t admissionRingDepth = 8;

    /**
     * The last admissionRingDepth ADR admissions, oldest first.
     * Includes empty-mask admissions so the ring lines up one-to-one
     * with the forked harness's admission callback stream (required
     * for fork/two-run fault parity).
     */
    const std::vector<AdmissionUndo> &
    recentAdmissions() const
    {
        return admissionRing;
    }

    /**
     * Replace the remembered admission ring. The forked crash
     * harness rewinds a final image admission by admission and must
     * restore the ring a mid-run crash point would have seen, so
     * partial-drain faults pick from the same candidates in both
     * harness modes.
     */
    void
    setRecentAdmissions(std::vector<AdmissionUndo> ring)
    {
        admissionRing = std::move(ring);
        while (admissionRing.size() > admissionRingDepth)
            admissionRing.erase(admissionRing.begin());
    }

    /**
     * Media fault: mark the line holding @p addr as poisoned
     * (uncorrectable media error) and deterministically scramble its
     * occupied persisted words. Reads of a poisoned line fault on
     * real hardware; the scramble guarantees that any code path that
     * *trusts* poisoned content instead of quarantining it produces
     * observably wrong values rather than silently correct ones.
     */
    void
    poisonLine(Addr addr)
    {
        Addr line = lineAlign(addr);
        poisoned.insert(line);
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            Addr wa = line + i * wordBytes;
            if (persisted.contains(wa)) {
                std::uint64_t junk = 0xbadbadbadbad0000ULL ^ wa;
                persisted.set(wa, junk);
                arch.set(wa, junk);
            }
        }
    }

    /** @return true when @p addr's line is poisoned and unrepaired. */
    bool
    isPoisoned(Addr addr) const
    {
        return poisoned.count(lineAlign(addr)) != 0;
    }

    /** Poisoned, not-yet-repaired line addresses, ascending. */
    const std::set<Addr> &
    poisonedLines() const
    {
        return poisoned;
    }

    /**
     * Media fault: flip bits of one persisted word in place (silent
     * corruption — no poison flag, no trace). Both views change so a
     * post-crash reader sees the flipped value everywhere; a word
     * never written before simply becomes occupied holding the mask.
     */
    void
    corruptWord(Addr addr, std::uint64_t xorMask)
    {
        Addr wa = wordAlign(addr);
        std::uint64_t value = persisted.get(wa) ^ xorMask;
        persisted.set(wa, value);
        arch.set(wa, value);
    }

    /**
     * @return the persisted-view page holding @p addr, or nullptr if
     * no word of that page ever persisted. Page-granular access for
     * scans that would otherwise pay a hash probe per word (the
     * recovery log scan); absent pages and unoccupied slots read as
     * zero through WordStore::get(), so a caller that treats a null
     * page as all-zero words sees exactly readPersisted()'s values.
     */
    const WordStore::Page *
    persistedPage(Addr addr) const
    {
        return persisted.findPage(wordAlign(addr));
    }

    /** Walk every persisted word (unordered). */
    void
    forEachPersisted(
        const std::function<void(Addr, std::uint64_t)> &visit) const
    {
        persisted.forEach(visit);
    }

    std::size_t archWords() const { return arch.size(); }
    std::size_t persistedWords() const { return persisted.size(); }

  private:
    void
    pushAdmission(const AdmissionUndo &undo)
    {
        if (admissionRing.size() >= admissionRingDepth)
            admissionRing.erase(admissionRing.begin());
        admissionRing.push_back(undo);
    }

    WordStore arch;
    WordStore persisted;
    AdmissionUndo lastAdmission;
    /** Trailing admissions, oldest first (partial-drain faults). */
    std::vector<AdmissionUndo> admissionRing;
    /** Poisoned (uncorrectable) line addresses; ordered for
     * deterministic iteration by recovery's quarantine pre-pass. */
    std::set<Addr> poisoned;
};

} // namespace strand

#endif // MEM_MEMORY_IMAGE_HH
