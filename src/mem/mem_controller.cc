#include "mem/mem_controller.hh"

namespace strand
{

MemControllerParams
dramControllerParams()
{
    MemControllerParams p;
    p.readQueueEntries = 32;
    p.writeQueueEntries = 64;
    p.banks = 16;
    p.rowBytes = 2048;
    p.readLatency = nsToTicks(80);
    p.readRowHitLatency = nsToTicks(40);
    p.writeAcceptLatency = nsToTicks(40);
    p.mediaWriteLatency = nsToTicks(80);
    p.mediaWriteRowHitLatency = nsToTicks(40);
    p.readOccupancy = nsToTicks(20);
    p.writeOccupancy = nsToTicks(20);
    p.writeRowHitOccupancy = nsToTicks(20);
    return p;
}

MemController::MemController(std::string name, EventQueue &eq,
                             MemoryImage &image,
                             const MemControllerParams &params,
                             bool persistent, stats::StatGroup *parent)
    : ClockedObject(std::move(name), eq, 500, parent),
      numReads(this, "reads", "read requests serviced"),
      numWrites(this, "writes", "write requests serviced"),
      numRowHits(this, "rowHits", "row buffer hits"),
      numRowMisses(this, "rowMisses", "row buffer misses"),
      numRetries(this, "retries", "requests rejected due to full queues"),
      readLatencyHist(this, "readLatency",
                      "read service latency in ticks"),
      image(image), params(params), persistent(persistent),
      banks(params.banks)
{
    fatalIf(params.banks == 0, "controller must have at least one bank");
    // Memory controllers service the shared cache fabric's ports, so
    // they anchor the shared PDES domain when sharded.
    setDomainAffinity("shared");
    // Build every pooled slot (and its recurring completion event)
    // up front. Snapshot restore requires that no recurring event be
    // bound after a capture, and the pools are bounded by the
    // queue-entry limits anyway. Free-list order mimics on-demand
    // growth: slot 0 is acquired first.
    for (unsigned i = 0; i < params.readQueueEntries; ++i)
        newReadSlot();
    for (auto it = readSlots.rbegin(); it != readSlots.rend(); ++it)
        freeReadSlots.push_back(it->get());
    for (unsigned i = 0; i < params.writeQueueEntries; ++i)
        newWriteSlot();
    for (auto it = writeSlots.rbegin(); it != writeSlots.rend(); ++it)
        freeWriteSlots.push_back(it->get());
}

MemController::Bank &
MemController::bankFor(Addr addr)
{
    return banks[(addr / params.rowBytes) % banks.size()];
}

Tick
MemController::serviceOnBank(Addr addr, Tick earliest, Tick missLatency,
                             Tick hitLatency, Tick occupancy,
                             Tick hitOccupancy)
{
    Bank &bank = bankFor(addr);
    Addr row = addr / params.rowBytes;
    bool hit = bank.openRow == row;
    if (hit)
        ++numRowHits;
    else
        ++numRowMisses;
    Tick start = std::max(earliest, bank.freeAt);
    Tick end = start + (hit ? hitLatency : missLatency);
    bank.freeAt = start + (hit ? hitOccupancy : occupancy);
    bank.openRow = row;
    return end;
}

void
MemController::handleRequest(MemPort &port, const MemRequest &req)
{
    panicIf(req.kind != MemRequestKind::Packet,
            "{}: controllers only service Packet requests", fullName());
    const PacketPtr &pkt = req.pkt;
    panicIf(!pkt, "null packet");

    bool accepted = false;
    switch (pkt->cmd) {
      case MemCmd::Read:
      case MemCmd::ReadExclusive:
        accepted = readsInFlight < params.readQueueEntries;
        if (accepted)
            handleRead(pkt);
        break;
      case MemCmd::Write:
        accepted = writesInFlight < params.writeQueueEntries;
        if (accepted)
            handleWrite(pkt);
        break;
    }
    if (!accepted)
        ++numRetries;

    MemResponse resp;
    resp.req = MemRequestKind::Packet;
    resp.kind = accepted ? MemResponseKind::Ack : MemResponseKind::Nack;
    resp.token = req.token;
    resp.pkt = pkt;
    port.respond(std::move(resp));
}

MemController::ReadSlot *
MemController::acquireReadSlot()
{
    if (!freeReadSlots.empty()) {
        ReadSlot *slot = freeReadSlots.back();
        freeReadSlots.pop_back();
        return slot;
    }
    // Unreachable while admission bounds in-flight requests below
    // the eagerly built pool; kept as a defensive fallback.
    return newReadSlot();
}

MemController::ReadSlot *
MemController::newReadSlot()
{
    readSlots.push_back(std::make_unique<ReadSlot>());
    ReadSlot *slot = readSlots.back().get();
    slot->ev.init(eq, [this, slot] {
        // Free the slot before the response runs so a request issued
        // from the callback can reuse it.
        PacketPtr pkt = std::move(slot->pkt);
        freeReadSlots.push_back(slot);
        --readsInFlight;
        if (pkt->onResponse)
            pkt->onResponse();
        notifyRetry();
    }, EventPriority::MemoryResponse);
    return slot;
}

MemController::WriteSlot *
MemController::acquireWriteSlot()
{
    if (!freeWriteSlots.empty()) {
        WriteSlot *slot = freeWriteSlots.back();
        freeWriteSlots.pop_back();
        return slot;
    }
    // Unreachable while admission bounds in-flight requests below
    // the eagerly built pool; kept as a defensive fallback.
    return newWriteSlot();
}

MemController::WriteSlot *
MemController::newWriteSlot()
{
    writeSlots.push_back(std::make_unique<WriteSlot>());
    WriteSlot *slot = writeSlots.back().get();
    slot->ev.init(eq, [this, slot] {
        if (!slot->inMedia) {
            // ADR admission: the write is now in the persist domain
            // and is acknowledged; the media program follows.
            const PacketPtr &pkt = slot->pkt;
            if (persistent) {
                image.persistLine(pkt->data);
                if (persistObserver)
                    persistObserver(*pkt, curTick());
            }
            if (pkt->onResponse)
                pkt->onResponse();
            // Media program happens after admission; the queue slot
            // is held until the media write retires (back-pressure).
            Tick done = serviceOnBank(pkt->addr, curTick(),
                                      params.mediaWriteLatency,
                                      params.mediaWriteRowHitLatency,
                                      params.writeOccupancy,
                                      params.writeRowHitOccupancy);
            slot->inMedia = true;
            slot->ev.schedule(done);
        } else {
            slot->pkt.reset();
            slot->inMedia = false;
            freeWriteSlots.push_back(slot);
            --writesInFlight;
            notifyRetry();
        }
    }, EventPriority::MemoryResponse);
    return slot;
}

void
MemController::handleRead(const PacketPtr &pkt)
{
    ++readsInFlight;
    ++numReads;
    Tick issued = curTick();
    Tick done = serviceOnBank(pkt->addr, issued, params.readLatency,
                              params.readRowHitLatency,
                              params.readOccupancy,
                              params.readOccupancy);
    readLatencyHist.sample(static_cast<double>(done - issued));
    ReadSlot *slot = acquireReadSlot();
    slot->pkt = pkt;
    slot->ev.schedule(done);
}

void
MemController::handleWrite(const PacketPtr &pkt)
{
    ++writesInFlight;
    ++numWrites;
    // ADR admission: transit to the controller, then the write is in
    // the persist domain. The ack back to the flushing unit is sent
    // at the same point.
    WriteSlot *slot = acquireWriteSlot();
    slot->pkt = pkt;
    slot->ev.schedule(curTick() + params.writeAcceptLatency);
}

void
MemController::notifyRetry()
{
    for (auto &cb : retryCallbacks)
        cb();
}

void
MemController::saveState(SimSnapshot &snap) const
{
    Snapshot s;
    s.banks = banks;
    s.readsInFlight = readsInFlight;
    s.writesInFlight = writesInFlight;
    s.readPkts.reserve(readSlots.size());
    for (const auto &slot : readSlots)
        s.readPkts.push_back(slot->pkt);
    s.writePkts.reserve(writeSlots.size());
    s.writeInMedia.reserve(writeSlots.size());
    for (const auto &slot : writeSlots) {
        s.writePkts.push_back(slot->pkt);
        s.writeInMedia.push_back(slot->inMedia);
    }
    auto indicesOf = [](const auto &pool, const auto &free) {
        std::vector<std::size_t> out;
        out.reserve(free.size());
        for (const auto *slot : free) {
            std::size_t index = 0;
            while (pool[index].get() != slot)
                ++index;
            out.push_back(index);
        }
        return out;
    };
    s.freeReads = indicesOf(readSlots, freeReadSlots);
    s.freeWrites = indicesOf(writeSlots, freeWriteSlots);
    snap.put(snapshotName(), std::move(s));
}

void
MemController::restoreState(const SimSnapshot &snap)
{
    const Snapshot &s = snap.get<Snapshot>(snapshotName());
    panicIf(s.readPkts.size() != readSlots.size() ||
                s.writePkts.size() != writeSlots.size(),
            "{}: slot pool changed size across a snapshot",
            snapshotName());
    banks = s.banks;
    readsInFlight = s.readsInFlight;
    writesInFlight = s.writesInFlight;
    for (std::size_t i = 0; i < readSlots.size(); ++i)
        readSlots[i]->pkt = s.readPkts[i];
    for (std::size_t i = 0; i < writeSlots.size(); ++i) {
        writeSlots[i]->pkt = s.writePkts[i];
        writeSlots[i]->inMedia = s.writeInMedia[i];
    }
    freeReadSlots.clear();
    for (std::size_t index : s.freeReads)
        freeReadSlots.push_back(readSlots[index].get());
    freeWriteSlots.clear();
    for (std::size_t index : s.freeWrites)
        freeWriteSlots.push_back(writeSlots[index].get());
}

} // namespace strand
