#include "mem/mem_controller.hh"

namespace strand
{

MemControllerParams
dramControllerParams()
{
    MemControllerParams p;
    p.readQueueEntries = 32;
    p.writeQueueEntries = 64;
    p.banks = 16;
    p.rowBytes = 2048;
    p.readLatency = nsToTicks(80);
    p.readRowHitLatency = nsToTicks(40);
    p.writeAcceptLatency = nsToTicks(40);
    p.mediaWriteLatency = nsToTicks(80);
    p.mediaWriteRowHitLatency = nsToTicks(40);
    p.readOccupancy = nsToTicks(20);
    p.writeOccupancy = nsToTicks(20);
    p.writeRowHitOccupancy = nsToTicks(20);
    return p;
}

MemController::MemController(std::string name, EventQueue &eq,
                             MemoryImage &image,
                             const MemControllerParams &params,
                             bool persistent, stats::StatGroup *parent)
    : ClockedObject(std::move(name), eq, 500, parent),
      numReads(this, "reads", "read requests serviced"),
      numWrites(this, "writes", "write requests serviced"),
      numRowHits(this, "rowHits", "row buffer hits"),
      numRowMisses(this, "rowMisses", "row buffer misses"),
      numRetries(this, "retries", "requests rejected due to full queues"),
      readLatencyHist(this, "readLatency",
                      "read service latency in ticks"),
      image(image), params(params), persistent(persistent),
      banks(params.banks)
{
    fatalIf(params.banks == 0, "controller must have at least one bank");
}

MemController::Bank &
MemController::bankFor(Addr addr)
{
    return banks[(addr / params.rowBytes) % banks.size()];
}

Tick
MemController::serviceOnBank(Addr addr, Tick earliest, Tick missLatency,
                             Tick hitLatency, Tick occupancy,
                             Tick hitOccupancy)
{
    Bank &bank = bankFor(addr);
    Addr row = addr / params.rowBytes;
    bool hit = bank.openRow == row;
    if (hit)
        ++numRowHits;
    else
        ++numRowMisses;
    Tick start = std::max(earliest, bank.freeAt);
    Tick end = start + (hit ? hitLatency : missLatency);
    bank.freeAt = start + (hit ? hitOccupancy : occupancy);
    bank.openRow = row;
    return end;
}

bool
MemController::tryRequest(const PacketPtr &pkt)
{
    panicIf(!pkt, "null packet");
    switch (pkt->cmd) {
      case MemCmd::Read:
      case MemCmd::ReadExclusive:
        if (readsInFlight >= params.readQueueEntries) {
            ++numRetries;
            return false;
        }
        handleRead(pkt);
        return true;
      case MemCmd::Write:
        if (writesInFlight >= params.writeQueueEntries) {
            ++numRetries;
            return false;
        }
        handleWrite(pkt);
        return true;
    }
    panic("unreachable memory command");
}

MemController::ReadSlot *
MemController::acquireReadSlot()
{
    if (!freeReadSlots.empty()) {
        ReadSlot *slot = freeReadSlots.back();
        freeReadSlots.pop_back();
        return slot;
    }
    readSlots.push_back(std::make_unique<ReadSlot>());
    ReadSlot *slot = readSlots.back().get();
    slot->ev.init(eq, [this, slot] {
        // Free the slot before the response runs so a request issued
        // from the callback can reuse it.
        PacketPtr pkt = std::move(slot->pkt);
        freeReadSlots.push_back(slot);
        --readsInFlight;
        if (pkt->onResponse)
            pkt->onResponse();
        notifyRetry();
    }, EventPriority::MemoryResponse);
    return slot;
}

MemController::WriteSlot *
MemController::acquireWriteSlot()
{
    if (!freeWriteSlots.empty()) {
        WriteSlot *slot = freeWriteSlots.back();
        freeWriteSlots.pop_back();
        return slot;
    }
    writeSlots.push_back(std::make_unique<WriteSlot>());
    WriteSlot *slot = writeSlots.back().get();
    slot->ev.init(eq, [this, slot] {
        if (!slot->inMedia) {
            // ADR admission: the write is now in the persist domain
            // and is acknowledged; the media program follows.
            const PacketPtr &pkt = slot->pkt;
            if (persistent) {
                image.persistLine(pkt->data);
                if (persistObserver)
                    persistObserver(*pkt, curTick());
            }
            if (pkt->onResponse)
                pkt->onResponse();
            // Media program happens after admission; the queue slot
            // is held until the media write retires (back-pressure).
            Tick done = serviceOnBank(pkt->addr, curTick(),
                                      params.mediaWriteLatency,
                                      params.mediaWriteRowHitLatency,
                                      params.writeOccupancy,
                                      params.writeRowHitOccupancy);
            slot->inMedia = true;
            slot->ev.schedule(done);
        } else {
            slot->pkt.reset();
            slot->inMedia = false;
            freeWriteSlots.push_back(slot);
            --writesInFlight;
            notifyRetry();
        }
    }, EventPriority::MemoryResponse);
    return slot;
}

void
MemController::handleRead(const PacketPtr &pkt)
{
    ++readsInFlight;
    ++numReads;
    Tick issued = curTick();
    Tick done = serviceOnBank(pkt->addr, issued, params.readLatency,
                              params.readRowHitLatency,
                              params.readOccupancy,
                              params.readOccupancy);
    readLatencyHist.sample(static_cast<double>(done - issued));
    ReadSlot *slot = acquireReadSlot();
    slot->pkt = pkt;
    slot->ev.schedule(done);
}

void
MemController::handleWrite(const PacketPtr &pkt)
{
    ++writesInFlight;
    ++numWrites;
    // ADR admission: transit to the controller, then the write is in
    // the persist domain. The ack back to the flushing unit is sent
    // at the same point.
    WriteSlot *slot = acquireWriteSlot();
    slot->pkt = pkt;
    slot->ev.schedule(curTick() + params.writeAcceptLatency);
}

void
MemController::notifyRetry()
{
    for (auto &cb : retryCallbacks)
        cb();
}

} // namespace strand
