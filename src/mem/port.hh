/**
 * @file
 * Port-based memory-access API: the mailbox between a requester
 * (core, persist engine, strand buffer unit) and a responder
 * (hierarchy, memory controller).
 *
 * A MemPort carries typed MemRequest messages toward its bound
 * MemResponder and delivers MemResponse messages back to the
 * requester's handler. Both legs are latency-carrying: a request
 * arrives at the responder requestLatency() ticks after send(), and
 * a response arrives at the requester responseLatency() ticks after
 * respond(). Same-tick replies are illegal by construction — init()
 * panics on a zero leg — because a zero-lookahead edge between two
 * PDES domains forces the partitioner to fuse them back into one
 * (the exact pathology the port API exists to remove). The declared
 * leg latencies are what computeSystemPartition() reads as the
 * cross-domain lookahead.
 *
 * Back-pressure is an explicit response: a responder that cannot
 * accept a request replies Nack and the requester retries on its own
 * schedule. Nothing about admission is decided on the sender's call
 * stack.
 *
 * The port itself is stateless (latencies and wiring are fixed at
 * init), so there is nothing to snapshot: in-flight messages live in
 * the EventQueue as scheduled closures that capture only the stable
 * port pointer and value copies of the message, which is exactly the
 * closure shape the queue's snapshot machinery supports.
 */

#ifndef MEM_PORT_HH
#define MEM_PORT_HH

#include <functional>
#include <string>
#include <utility>

#include "mem/packet.hh"
#include "sim/event_queue.hh"

namespace strand
{

class MemPort;

/** One-cycle (2 GHz) default for each port leg. */
constexpr Tick portLegLatency = 500;

/**
 * The service side of a port. Hierarchy and MemController implement
 * this; responses travel back through the same port the request
 * arrived on, so one responder can serve many requesters.
 */
class MemResponder
{
  public:
    virtual ~MemResponder() = default;

    /** Service @p req; reply (if the kind warrants one) via
     * @p port .respond(). Runs from the responder's own domain's
     * event stream, requestLatency() ticks after the send. */
    virtual void handleRequest(MemPort &port, const MemRequest &req) = 0;
};

/**
 * A requester-owned mailbox to one responder. The owning component
 * constructs it as a member, init()s it with its event queue and leg
 * latencies, bind()s the responder, and installs a response handler.
 */
class MemPort
{
  public:
    MemPort() = default;

    MemPort(const MemPort &) = delete;
    MemPort &operator=(const MemPort &) = delete;

    /**
     * Wire the port. Must run exactly once before the first send().
     * Panics if either leg is zero: a same-tick reply would put the
     * responder's state mutation back on the requester's call stack
     * and re-fuse the PDES partition.
     */
    void
    init(EventQueue &eq, std::string name,
         Tick requestLatency = portLegLatency,
         Tick responseLatency = portLegLatency)
    {
        panicIf(queue != nullptr, "port {} already initialized", name);
        panicIf(requestLatency == 0 || responseLatency == 0,
                "port {}: zero-latency port legs are illegal "
                "(same-tick replies would fuse the PDES partition)",
                name);
        queue = &eq;
        portName = std::move(name);
        reqLat = requestLatency;
        respLat = responseLatency;
    }

    /** Attach the responder that will service this port's requests. */
    void
    bind(MemResponder &responder)
    {
        peer = &responder;
    }

    /** Install the handler that receives this port's responses. */
    void
    setResponseHandler(std::function<void(const MemResponse &)> handler)
    {
        onResponse = std::move(handler);
    }

    /**
     * Mail @p req to the bound responder; it is serviced
     * requestLatency() ticks from now. Always succeeds — admission
     * is the responder's decision, delivered as an Ack/Nack/Done
     * response, never as a same-tick return value.
     */
    void
    send(MemRequest req)
    {
        panicIf(!queue || !peer, "send on unwired port {}", portName);
        queue->scheduleIn(
            reqLat,
            [this, req = std::move(req)] {
                peer->handleRequest(*this, req);
            },
            EventPriority::MemoryResponse);
    }

    /**
     * Mail @p resp back to the requester; its handler runs
     * responseLatency() ticks from now. Called by the responder
     * while servicing handleRequest().
     */
    void
    respond(MemResponse resp)
    {
        panicIf(!onResponse, "respond on port {} with no handler",
                portName);
        queue->scheduleIn(
            respLat,
            [this, resp = std::move(resp)] { onResponse(resp); },
            EventPriority::MemoryResponse);
    }

    /** @name The latencies the PDES partitioner reads as lookahead @{ */
    Tick requestLatency() const { return reqLat; }
    Tick responseLatency() const { return respLat; }
    /** @} */

    const std::string &name() const { return portName; }

  private:
    EventQueue *queue = nullptr;
    MemResponder *peer = nullptr;
    std::function<void(const MemResponse &)> onResponse;
    std::string portName;
    Tick reqLat = 0;
    Tick respLat = 0;
};

} // namespace strand

#endif // MEM_PORT_HH
