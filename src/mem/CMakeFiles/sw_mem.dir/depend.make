# Empty dependencies file for sw_mem.
# This may be replaced when dependencies are built.
