file(REMOVE_RECURSE
  "CMakeFiles/sw_mem.dir/mem_controller.cc.o"
  "CMakeFiles/sw_mem.dir/mem_controller.cc.o.d"
  "libsw_mem.a"
  "libsw_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
