file(REMOVE_RECURSE
  "libsw_mem.a"
)
