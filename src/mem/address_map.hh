/**
 * @file
 * Physical address map and line-granularity helpers.
 *
 * The simulated machine exposes volatile DRAM at low addresses and
 * persistent memory (PM) in a disjoint high range. All caches use
 * 64-byte lines; stores are modeled at 8-byte word granularity.
 */

#ifndef MEM_ADDRESS_MAP_HH
#define MEM_ADDRESS_MAP_HH

#include "sim/types.hh"

namespace strand
{

/** Cache line size in bytes, fixed across the hierarchy (Table I). */
constexpr unsigned lineBytes = 64;

/** Word size for functional store values. */
constexpr unsigned wordBytes = 8;

/** Words per cache line. */
constexpr unsigned wordsPerLine = lineBytes / wordBytes;

/** Base of the persistent memory range. */
constexpr Addr pmBase = 0x4000'0000;

/** Size of the persistent memory range (1 GiB). */
constexpr Addr pmSize = 0x4000'0000;

/** Base of volatile DRAM. */
constexpr Addr dramBase = 0x0;

/** Size of volatile DRAM. */
constexpr Addr dramSize = pmBase;

/** @return true if @p addr falls in persistent memory. */
constexpr bool
isPersistentAddr(Addr addr)
{
    return addr >= pmBase && addr < pmBase + pmSize;
}

/** @return the base address of the 64-byte line containing @p addr. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(lineBytes - 1);
}

/** @return the base address of the 8-byte word containing @p addr. */
constexpr Addr
wordAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(wordBytes - 1);
}

/** @return the word index of @p addr within its line. */
constexpr unsigned
wordIndex(Addr addr)
{
    return static_cast<unsigned>((addr & (lineBytes - 1)) / wordBytes);
}

} // namespace strand

#endif // MEM_ADDRESS_MAP_HH
