/**
 * @file
 * Memory messages: the typed requests/responses exchanged over
 * MemPorts (core/engine <-> hierarchy, hierarchy <-> controller) and
 * the line-granular packets that carry fills and persists.
 */

#ifndef MEM_PACKET_HH
#define MEM_PACKET_HH

#include <functional>
#include <memory>

#include "mem/memory_image.hh"
#include "sim/types.hh"

namespace strand
{

/** Kind of memory transaction. */
enum class MemCmd
{
    /** Line fill (shared) on behalf of a load miss. */
    Read,
    /** Line fill with exclusive ownership (store miss / RFO). */
    ReadExclusive,
    /**
     * A persist: data leaving the cache domain for the PM (or DRAM)
     * controller, either from an explicit CLWB flush or a dirty
     * write-back.
     */
    Write,
};

/** What produced a Write packet; persists are attributed per source. */
enum class WriteOrigin
{
    Clwb,
    WriteBack,
    None,
};

/**
 * One memory transaction. Requests travel down the hierarchy; the
 * response is delivered by invoking onResponse at completion time.
 */
struct Packet
{
    MemCmd cmd = MemCmd::Read;
    Addr addr = 0;
    CoreId requester = 0;
    WriteOrigin origin = WriteOrigin::None;

    /** Data captured at flush time; meaningful for Write only. */
    LineData data;

    /** Monotonic id for debugging and persist-order tracing. */
    std::uint64_t id = 0;

    /** Tick at which the packet was created. */
    Tick created = 0;

    /** Completion callback, run when the transaction finishes. */
    std::function<void()> onResponse;
};

using PacketPtr = std::shared_ptr<Packet>;

/** Build a read request. */
inline PacketPtr
makeReadPacket(Addr addr, CoreId requester, bool exclusive,
               std::function<void()> onResponse)
{
    auto pkt = std::make_shared<Packet>();
    pkt->cmd = exclusive ? MemCmd::ReadExclusive : MemCmd::Read;
    pkt->addr = lineAlign(addr);
    pkt->requester = requester;
    pkt->onResponse = std::move(onResponse);
    return pkt;
}

/** Build a write (persist) request carrying a line snapshot. */
inline PacketPtr
makeWritePacket(LineData data, CoreId requester, WriteOrigin origin,
                std::function<void()> onResponse)
{
    auto pkt = std::make_shared<Packet>();
    pkt->cmd = MemCmd::Write;
    pkt->addr = data.lineAddr;
    pkt->requester = requester;
    pkt->origin = origin;
    pkt->data = data;
    pkt->onResponse = std::move(onResponse);
    return pkt;
}

/**
 * What a port request asks its responder to do. Load/Store/Flush are
 * the CPU-side operations the hierarchy services; Packet carries a
 * line-granular transaction from the hierarchy to a memory
 * controller; Kick is a response-less doorbell that re-evaluates the
 * responder's parked work (persist engines ring it when a drain
 * point clears).
 */
enum class MemRequestKind : std::uint8_t
{
    Load,
    Store,
    Flush,
    Packet,
    Kick,
};

/**
 * How a responder answered. Ack/Nack are the explicit admission
 * decision (Nack = back-pressure, retry later); FlushStarted marks
 * the point a flush performed its cache read; Done is the
 * completion.
 */
enum class MemResponseKind : std::uint8_t
{
    Ack,
    Nack,
    FlushStarted,
    Done,
};

/**
 * One mailed request. The token is an opaque requester-chosen id
 * echoed in every response to the request, so a requester with many
 * outstanding operations can route completions without side tables.
 */
struct MemRequest
{
    MemRequestKind kind = MemRequestKind::Load;
    CoreId core = 0;
    Addr addr = 0;
    /** Store data (Store kind only). */
    std::uint64_t value = 0;
    /** Requester-chosen id echoed in responses. */
    std::uint64_t token = 0;
    /** The transaction (Packet kind only). */
    PacketPtr pkt;
};

/**
 * One mailed response. @c req names the request kind being answered;
 * the token is echoed from the request. Packet-kind responses carry
 * the PacketPtr back so the requester can route on the packet's own
 * cmd/origin/addr.
 */
struct MemResponse
{
    MemRequestKind req = MemRequestKind::Load;
    MemResponseKind kind = MemResponseKind::Done;
    std::uint64_t token = 0;
    /** Flush Done only: the flush found dirty data and wrote PM. */
    bool wrotePm = false;
    PacketPtr pkt;
};

} // namespace strand

#endif // MEM_PACKET_HH
