/**
 * @file
 * Memory request packets exchanged between caches and memory
 * controllers.
 */

#ifndef MEM_PACKET_HH
#define MEM_PACKET_HH

#include <functional>
#include <memory>

#include "mem/memory_image.hh"
#include "sim/types.hh"

namespace strand
{

/** Kind of memory transaction. */
enum class MemCmd
{
    /** Line fill (shared) on behalf of a load miss. */
    Read,
    /** Line fill with exclusive ownership (store miss / RFO). */
    ReadExclusive,
    /**
     * A persist: data leaving the cache domain for the PM (or DRAM)
     * controller, either from an explicit CLWB flush or a dirty
     * write-back.
     */
    Write,
};

/** What produced a Write packet; persists are attributed per source. */
enum class WriteOrigin
{
    Clwb,
    WriteBack,
    None,
};

/**
 * One memory transaction. Requests travel down the hierarchy; the
 * response is delivered by invoking onResponse at completion time.
 */
struct Packet
{
    MemCmd cmd = MemCmd::Read;
    Addr addr = 0;
    CoreId requester = 0;
    WriteOrigin origin = WriteOrigin::None;

    /** Data captured at flush time; meaningful for Write only. */
    LineData data;

    /** Monotonic id for debugging and persist-order tracing. */
    std::uint64_t id = 0;

    /** Tick at which the packet was created. */
    Tick created = 0;

    /** Completion callback, run when the transaction finishes. */
    std::function<void()> onResponse;
};

using PacketPtr = std::shared_ptr<Packet>;

/** Build a read request. */
inline PacketPtr
makeReadPacket(Addr addr, CoreId requester, bool exclusive,
               std::function<void()> onResponse)
{
    auto pkt = std::make_shared<Packet>();
    pkt->cmd = exclusive ? MemCmd::ReadExclusive : MemCmd::Read;
    pkt->addr = lineAlign(addr);
    pkt->requester = requester;
    pkt->onResponse = std::move(onResponse);
    return pkt;
}

/** Build a write (persist) request carrying a line snapshot. */
inline PacketPtr
makeWritePacket(LineData data, CoreId requester, WriteOrigin origin,
                std::function<void()> onResponse)
{
    auto pkt = std::make_shared<Packet>();
    pkt->cmd = MemCmd::Write;
    pkt->addr = data.lineAddr;
    pkt->requester = requester;
    pkt->origin = origin;
    pkt->data = data;
    pkt->onResponse = std::move(onResponse);
    return pkt;
}

} // namespace strand

#endif // MEM_PACKET_HH
