/**
 * @file
 * Memory controllers for persistent memory and DRAM.
 *
 * Both controllers share a banked row-buffer timing model with
 * bounded read/write queues. The PM controller additionally models
 * the ADR (asynchronous data refresh) persist domain: a write is
 * durable — and is acknowledged — once it is admitted to the
 * controller, which is when its data is applied to the persisted view
 * of the memory image. Media writes drain asynchronously and only
 * affect back-pressure.
 *
 * Timing follows Table I of the paper (values from the Izraelevitz et
 * al. Optane characterization): 346 ns PM read, 96 ns write latency
 * to the controller, 500 ns write latency to the PM media, 1 KiB row
 * buffer, 64/32-entry write/read queues.
 */

#ifndef MEM_MEM_CONTROLLER_HH
#define MEM_MEM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"

namespace strand
{

/** Timing and capacity parameters for a memory controller. */
struct MemControllerParams
{
    unsigned readQueueEntries = 32;
    unsigned writeQueueEntries = 64;
    /** Aggregate bank-level parallelism across the PM DIMMs. */
    unsigned banks = 24;
    Addr rowBytes = 1024;
    /** Device read access, row-buffer miss / hit. */
    Tick readLatency = nsToTicks(346);
    Tick readRowHitLatency = nsToTicks(170);
    /** Request transit + admission into the controller (ADR point). */
    Tick writeAcceptLatency = nsToTicks(96);
    /** Media program time, row-buffer miss / hit. */
    Tick mediaWriteLatency = nsToTicks(500);
    Tick mediaWriteRowHitLatency = nsToTicks(200);
    /**
     * How long an access keeps its bank busy (bandwidth), as opposed
     * to the end-to-end latency above, which includes controller and
     * transit time that pipelines across banks.
     */
    Tick readOccupancy = nsToTicks(60);
    /**
     * Sequential 64-byte writes to an open row coalesce in the
     * controller's write-combining buffers (Optane's 256-byte
     * XPLine), so the effective per-line occupancy of a row hit is
     * far below a full media program.
     */
    Tick writeOccupancy = nsToTicks(60);
    Tick writeRowHitOccupancy = nsToTicks(15);
};

/** DRAM-ish defaults for the volatile controller. */
MemControllerParams dramControllerParams();

/**
 * A banked memory controller with bounded queues.
 *
 * Transactions arrive as Packet-kind port requests. Admission is
 * answered explicitly: Ack when the packet entered its queue, Nack
 * (with the retry stat bumped) when the queue was full — the sender
 * retries after the controller's retry callback fires. Completion is
 * delivered separately through the packet's own onResponse.
 */
class MemController : public ClockedObject, public MemResponder
{
  public:
    /**
     * @param persistent When true, admitted writes are applied to the
     * persisted view of @p image (ADR semantics).
     */
    MemController(std::string name, EventQueue &eq, MemoryImage &image,
                  const MemControllerParams &params, bool persistent,
                  stats::StatGroup *parent = nullptr);

    /** Service one mailed Packet request: Ack or Nack its admission. */
    void handleRequest(MemPort &port, const MemRequest &req) override;

    /** Register a callback invoked whenever queue space frees up. */
    void
    addRetryCallback(std::function<void()> cb)
    {
        retryCallbacks.push_back(std::move(cb));
    }

    /** @return true once all queued work has drained. */
    bool
    idle() const
    {
        return readsInFlight == 0 && writesInFlight == 0;
    }

    bool isPersistent() const { return persistent; }

    /** Observer hook fired at each persist (ADR admission). */
    void
    setPersistObserver(
        std::function<void(const Packet &, Tick)> observer)
    {
        persistObserver = std::move(observer);
    }

    /**
     * Capture / restore the banks and the pooled in-flight request
     * slots (by stable slot index; completion timing lives in the
     * event queue's own snapshot).
     */
    void saveState(SimSnapshot &snap) const override;
    void restoreState(const SimSnapshot &snap) override;

    /** @name Statistics @{ */
    stats::Scalar numReads;
    stats::Scalar numWrites;
    stats::Scalar numRowHits;
    stats::Scalar numRowMisses;
    stats::Scalar numRetries;
    stats::Histogram readLatencyHist;
    /** @} */

  private:
    struct Bank
    {
        Tick freeAt = 0;
        Addr openRow = ~static_cast<Addr>(0);
    };

    /**
     * Pooled in-flight request state. Each slot owns one Recurring
     * completion event whose callback is built once, when the slot is
     * first created, so steady-state request traffic schedules
     * without allocating. The pools are bounded by the queue-entry
     * limits enforced at admission.
     */
    struct ReadSlot
    {
        PacketPtr pkt;
        EventQueue::Recurring ev;
    };

    /** Write slots step through ADR admission, then media program. */
    struct WriteSlot
    {
        PacketPtr pkt;
        bool inMedia = false;
        EventQueue::Recurring ev;
    };

    /** Build one pooled slot with its completion event bound. */
    ReadSlot *newReadSlot();
    WriteSlot *newWriteSlot();

    ReadSlot *acquireReadSlot();
    WriteSlot *acquireWriteSlot();

    /** Volatile machine state captured by saveState(). Packets are
     * immutable once submitted, so the snapshot shares them with the
     * live run. */
    struct Snapshot
    {
        std::vector<Bank> banks;
        unsigned readsInFlight = 0;
        unsigned writesInFlight = 0;
        /** Per-slot in-flight packet (null for free slots). */
        std::vector<PacketPtr> readPkts;
        std::vector<PacketPtr> writePkts;
        std::vector<bool> writeInMedia;
        /** Free lists as slot indices, preserving pop order. */
        std::vector<std::size_t> freeReads;
        std::vector<std::size_t> freeWrites;
    };

    Bank &bankFor(Addr addr);

    /** @return the device access completion tick for @p addr. */
    Tick serviceOnBank(Addr addr, Tick earliest, Tick missLatency,
                       Tick hitLatency, Tick occupancy,
                       Tick hitOccupancy);

    void handleRead(const PacketPtr &pkt);
    void handleWrite(const PacketPtr &pkt);
    void notifyRetry();

    MemoryImage &image;
    MemControllerParams params;
    bool persistent;

    std::vector<Bank> banks;
    unsigned readsInFlight = 0;
    unsigned writesInFlight = 0;

    /** unique_ptr keeps slot addresses stable (Recurring is pinned). */
    std::vector<std::unique_ptr<ReadSlot>> readSlots;
    std::vector<std::unique_ptr<WriteSlot>> writeSlots;
    std::vector<ReadSlot *> freeReadSlots;
    std::vector<WriteSlot *> freeWriteSlots;

    std::vector<std::function<void()>> retryCallbacks;
    std::function<void(const Packet &, Tick)> persistObserver;
};

} // namespace strand

#endif // MEM_MEM_CONTROLLER_HH
