/**
 * @file
 * Fuzz campaigns: many seeded trials of one (workload, design, model)
 * cell, with automatic shrinking and reproducer emission for every
 * failure class found.
 *
 * Per-trial seeds derive from the campaign seed and the trial index
 * alone, so a campaign is deterministic regardless of how cells are
 * scheduled across worker threads (SW_JOBS).
 */

#ifndef FUZZ_CAMPAIGN_HH
#define FUZZ_CAMPAIGN_HH

#include "fuzz/fuzz_trial.hh"
#include "fuzz/shrink.hh"

namespace strand
{

/** One cell's campaign configuration. */
struct FuzzCellConfig
{
    /** Trial template; its seed field is overwritten per trial. */
    FuzzTrialSpec base;
    unsigned trials = 8;
    /** Campaign seed; trial i runs with mixSeed(seed, i + 1). */
    std::uint64_t seed = 0xf022;
    /** Shrink each failing trial's log (ddmin) before reporting. */
    bool shrink = true;
    /** Replay budget per shrink. */
    unsigned shrinkBudget = 192;
    /** Directory for reproducer files; empty writes none. */
    std::string reproDir;
    /** Keep at most this many failures' details. */
    unsigned maxFailures = 8;
};

/** One failing trial, after shrinking. */
struct FuzzFailure
{
    std::uint64_t trialSeed = 0;
    Tick crashTick = 0;
    unsigned tornWords = 8;
    std::string violation;
    std::size_t rawDecisions = 0;
    std::size_t shrunkDecisions = 0;
    DecisionLog shrunk;
    /** Reproducer path (empty when not written). */
    std::string reproPath;
    bool replayDiverged = false;
};

/** Aggregate over one cell's trials. */
struct FuzzCellResult
{
    unsigned trials = 0;
    unsigned failingTrials = 0;
    /** Recovery checks performed over all trials. */
    std::uint64_t pointsChecked = 0;
    /** Adversary queries answered over all recording runs. */
    std::uint64_t queries = 0;
    /** Adversary holds recorded over all recording runs. */
    std::uint64_t holds = 0;
    /** Kernel events serviced over all trials (host observability). */
    std::uint64_t hostEvents = 0;
    /** Ops committed over all trials (host observability). */
    std::uint64_t simOps = 0;
    std::vector<FuzzFailure> failures;

    bool allPassed() const { return failingTrials == 0; }
};

/** Run @p config.trials seeded trials of one cell. */
FuzzCellResult runFuzzCell(const FuzzCellConfig &config);

} // namespace strand

#endif // FUZZ_CAMPAIGN_HH
