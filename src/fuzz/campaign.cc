#include "fuzz/campaign.hh"

#include "fuzz/repro.hh"

namespace strand
{

FuzzCellResult
runFuzzCell(const FuzzCellConfig &config)
{
    FuzzCellResult result;
    for (unsigned i = 0; i < config.trials; ++i) {
        FuzzTrialSpec spec = config.base;
        spec.seed = mixSeed(config.seed, i + 1);

        FuzzTrialResult trial = runFuzzTrial(spec);
        ++result.trials;
        result.pointsChecked += trial.pointsChecked;
        result.queries += trial.queries;
        result.holds += trial.decisions.size();
        result.hostEvents += trial.hostEvents;
        result.simOps += trial.simOps;
        if (!trial.failed)
            continue;
        ++result.failingTrials;
        if (result.failures.size() >= config.maxFailures)
            continue;

        FuzzFailure failure;
        failure.trialSeed = spec.seed;
        failure.crashTick = trial.crashTick;
        failure.tornWords = trial.tornWords;
        failure.violation = trial.violation;
        failure.rawDecisions = trial.decisions.size();
        failure.replayDiverged = trial.replayDiverged;

        DecisionLog reduced = trial.decisions;
        if (config.shrink && !trial.replayDiverged) {
            // Rebuild the context once and reuse it across the
            // shrinker's replays (the workload recording dominates
            // per-replay cost otherwise).
            FuzzTrialContext ctx = makeTrialContext(spec);
            ShrinkResult shrunk = shrinkDecisions(
                ctx, trial.decisions, trial.tornWords,
                config.shrinkBudget);
            if (shrunk.stillFails)
                reduced = std::move(shrunk.log);
        }
        failure.shrunkDecisions = reduced.size();
        failure.shrunk = std::move(reduced);

        if (!config.reproDir.empty()) {
            FuzzRepro repro;
            repro.spec = spec;
            repro.tornWords = trial.tornWords;
            repro.decisions = failure.shrunk;
            repro.violation = failure.violation;
            failure.reproPath = writeRepro(repro, config.reproDir);
        }
        result.failures.push_back(std::move(failure));
    }
    return result;
}

} // namespace strand
