#include "fuzz/decision.hh"

#include <cstdio>
#include <sstream>

namespace strand
{

const char *
fuzzSiteName(FuzzSite site)
{
    switch (site) {
      case FuzzSite::IntelIssue:
        return "intel-issue";
      case FuzzSite::StrandIssue:
        return "strand-issue";
      case FuzzSite::SbuIssue:
        return "sbu-issue";
      case FuzzSite::Writeback:
        return "writeback";
      case FuzzSite::MediaPoison:
        return "media-poison";
      case FuzzSite::MediaFlip:
        return "media-flip";
      case FuzzSite::MediaDrop:
        return "media-drop";
    }
    return "?";
}

std::optional<FuzzSite>
fuzzSiteFromName(const std::string &name)
{
    for (unsigned i = 0; i < numFuzzSites; ++i) {
        FuzzSite site = static_cast<FuzzSite>(i);
        if (name == fuzzSiteName(site))
            return site;
    }
    return std::nullopt;
}

std::string
serializeDecisions(const DecisionLog &log)
{
    std::string out;
    for (const FuzzDecision &d : log) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s %u %llu %llu\n",
                      fuzzSiteName(d.site), d.core,
                      static_cast<unsigned long long>(d.query),
                      static_cast<unsigned long long>(d.delay));
        out += buf;
    }
    return out;
}

std::optional<DecisionLog>
parseDecisions(const std::string &text, std::string *error)
{
    DecisionLog log;
    std::istringstream in(text);
    std::string line;
    unsigned lineNo = 0;
    auto fail = [&](const std::string &why) -> std::optional<DecisionLog> {
        if (error)
            *error = "decision line " + std::to_string(lineNo) + ": " +
                     why;
        return std::nullopt;
    };
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string siteName;
        unsigned long long core = 0, query = 0, delay = 0;
        if (!(fields >> siteName >> core >> query >> delay))
            return fail("expected '<site> <core> <query> <delay>'");
        std::string extra;
        if (fields >> extra)
            return fail("trailing token '" + extra + "'");
        auto site = fuzzSiteFromName(siteName);
        if (!site)
            return fail("unknown site '" + siteName + "'");
        FuzzDecision d;
        d.site = *site;
        d.core = static_cast<CoreId>(core);
        d.query = query;
        d.delay = delay;
        log.push_back(d);
    }
    return log;
}

} // namespace strand
