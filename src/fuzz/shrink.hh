/**
 * @file
 * Delta-debugging (ddmin) reduction of failing adversarial schedules.
 *
 * The decision log is a sparse list of perturbations whose absence is
 * always legal (an unmatched query simply proceeds), so every subset
 * of a failing log is a replayable schedule. ddmin exploits that:
 * partition the log, try each chunk and each complement, and keep any
 * candidate that still fails, doubling granularity until no chunk can
 * be removed. A final greedy pass drops single entries. The result is
 * a minimal (1-minimal) schedule that still produces a recovery
 * violation — typically a handful of holds pointing straight at the
 * interleaving that matters.
 */

#ifndef FUZZ_SHRINK_HH
#define FUZZ_SHRINK_HH

#include <functional>

#include "fuzz/fuzz_trial.hh"

namespace strand
{

/** Outcome of a shrink run. */
struct ShrinkResult
{
    /** The reduced log (still failing), or the input if none fail. */
    DecisionLog log;
    /** Replays spent. */
    unsigned replays = 0;
    /** True when the reduced log still reproduces the failure. */
    bool stillFails = false;
};

/**
 * ddmin over an arbitrary failure predicate. Exposed for tests; the
 * predicate must be deterministic.
 * @param maxReplays Budget on predicate evaluations.
 */
ShrinkResult
shrinkLog(const DecisionLog &log,
          const std::function<bool(const DecisionLog &)> &fails,
          unsigned maxReplays = 256);

/**
 * Shrink a failing trial's log by replaying candidates against the
 * trial context with the trial's torn-word mask.
 */
ShrinkResult shrinkDecisions(const FuzzTrialContext &ctx,
                             const DecisionLog &log,
                             unsigned tornWords,
                             unsigned maxReplays = 256);

} // namespace strand

#endif // FUZZ_SHRINK_HH
