/**
 * @file
 * One fuzz trial: a workload run under an adversarial drain schedule
 * with crash-recovery checking at every PM admission.
 *
 * A trial derives three sub-seeds from its trial seed (workload op
 * mix, adversary schedule, torn-word selection), then runs twice:
 *
 *  1. A recording run executes the cell under a recording
 *     DrainAdversary, producing the decision log and a hash of the
 *     persist trace.
 *  2. A replay run applies that exact log through a replaying
 *     adversary and, at every ADR admission (plus the completed
 *     run), snapshots the persisted image — torn at the trial's
 *     word mask — recovers it with the Figure 6 protocol and
 *     validates it against the CrashOracle and the workload's
 *     structural invariants. The persist-trace hash of the replay
 *     must equal the recording run's: any divergence is itself
 *     reported as a trial failure (it would mean the trial is not
 *     replayable from (seed, log), breaking shrinking).
 *
 * replayDecisions() is the shrinker's predicate: because the
 * adversary treats queries without a log entry as "proceed", any
 * sub-log is a legal schedule and can be replayed unchanged.
 */

#ifndef FUZZ_FUZZ_TRIAL_HH
#define FUZZ_FUZZ_TRIAL_HH

#include <optional>

#include "core/experiment.hh"
#include "crash/media_faults.hh"
#include "fuzz/adversary.hh"

namespace strand
{

/** Everything defining one fuzz trial. */
struct FuzzTrialSpec
{
    WorkloadKind kind = WorkloadKind::Queue;
    HwDesign design = HwDesign::StrandWeaver;
    PersistencyModel model = PersistencyModel::Txn;
    LogStyle logStyle = LogStyle::Undo;
    unsigned numThreads = 2;
    unsigned opsPerThread = 12;
    /** Engine/system knobs (hopsEpochInterlock travels in here). */
    ExperimentConfig experiment;
    /** Recording-mode knobs; the seed is overwritten per trial. */
    AdversaryParams adversary;
    /** Master seed; workload/adversary/torn seeds derive from it. */
    std::uint64_t seed = 1;
    /**
     * Attach the PMO-san online persist-order checker to the replay
     * run; its violations fail the trial through the same shrinkable
     * path as recovery violations. Unset defers to SW_PMOSAN.
     */
    std::optional<bool> pmosan;
    /**
     * Forked-trial fast path: run the recording pass WITH injection
     * attached (the observers are pure, so the schedule is the one a
     * recording-only run produces) and the cheap paged recovery
     * scan, skipping the replay for passing trials. A failing trial
     * falls back to the classic record+replay pair — faithful scan,
     * divergence check — so campaign failures remain replayable from
     * (seed, log) and shrinkable exactly as in classic mode. The
     * trade-off: passing trials skip the replay-divergence check.
     * Unset defers to SW_CRASH_FORK.
     */
    std::optional<bool> fork;
    /**
     * Media-fault fuzzing: per-crash-point maxima for the three
     * fault classes. Unlike the crash harness's seeded applier, the
     * fuzzer decides each fault opportunity through the adversary's
     * decision log (sites media-poison / media-flip / media-drop), so
     * fault sets shrink with ddmin like schedules. config.seed is
     * unused here — entropy rides in the decisions. Any non-zero
     * class forces the forked trial path: the classic recording run
     * has no injection attached, so it would never see (and thus
     * never log) a media opportunity.
     */
    MediaFaultConfig media;
    /**
     * Verify per-entry checksums during recovery. Off replays the
     * pre-checksum layout's behavior — the regression mode proving
     * silent corruption slips through unchecksummed recovery.
     */
    bool verifyChecksums = true;
    /**
     * Forked schedule branching (needs fork): snapshot the whole
     * machine at adversary decision sites during the recording run,
     * then explore this many extra schedule suffixes from the warm
     * prefix, each under a reseeded adversary. A failing branch is
     * confirmed by replaying its full decision log from tick zero —
     * the exact predicate the shrinker uses — so branch failures
     * shrink like main-schedule failures. Unset defers to
     * SW_FUZZ_FORK_BRANCH.
     */
    std::optional<unsigned> forkBranches;
};

/** A trial spec with its derived seeds and recorded workload. */
struct FuzzTrialContext
{
    FuzzTrialSpec spec;
    std::uint64_t workloadSeed = 0;
    std::uint64_t adversarySeed = 0;
    std::uint64_t tornSeed = 0;
    RecordedWorkload recorded;
};

/** Outcome of replaying one decision log with injection. */
struct FuzzReplayOutcome
{
    bool failed = false;
    /** First violation message (empty when passed). */
    std::string violation;
    /** Tick of the first failing injection. */
    Tick crashTick = 0;
    unsigned pointsChecked = 0;
    unsigned pointsFailed = 0;
    /** FNV-1a hash of the persist trace (replay-divergence check). */
    std::uint64_t traceHash = 0;
    Tick endTick = 0;
    /** Kernel events serviced by the replay run (host observability). */
    std::uint64_t hostEvents = 0;
    /** Ops committed by the replay run (host observability). */
    std::uint64_t simOps = 0;
};

/** Outcome of a full trial. */
struct FuzzTrialResult
{
    bool failed = false;
    std::string violation;
    Tick crashTick = 0;
    /** Words admitted of each injection's final line (8 = whole). */
    unsigned tornWords = 8;
    unsigned pointsChecked = 0;
    unsigned pointsFailed = 0;
    /** The recorded adversarial schedule (replay input). */
    DecisionLog decisions;
    /** consider() queries the recording run answered. */
    std::uint64_t queries = 0;
    std::uint64_t workloadSeed = 0;
    std::uint64_t adversarySeed = 0;
    std::uint64_t traceHash = 0;
    /** True when record and replay persist traces diverged. */
    bool replayDiverged = false;
    /** Extra schedule suffixes explored from mid-run snapshots. */
    unsigned branchesExplored = 0;
    /** 0 = the main schedule; else the 1-based failing branch. */
    unsigned failingBranch = 0;
    /** Kernel events over record + replay runs (host observability). */
    std::uint64_t hostEvents = 0;
    /** Ops committed over record + replay runs (host observability). */
    std::uint64_t simOps = 0;
};

/** SplitMix64 — derives independent sub-seeds from a master seed. */
std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t stream);

/** Record the workload and derive sub-seeds (once per trial). */
FuzzTrialContext makeTrialContext(const FuzzTrialSpec &spec);

/**
 * Replay @p log against @p ctx, injecting a (possibly torn)
 * crash-recovery check at every PM admission and after completion.
 * Deterministic in (ctx, log, tornWords).
 */
FuzzReplayOutcome replayDecisions(const FuzzTrialContext &ctx,
                                  const DecisionLog &log,
                                  unsigned tornWords);

/** Run one complete trial (record, then replay with injection). */
FuzzTrialResult runFuzzTrial(const FuzzTrialSpec &spec);

} // namespace strand

#endif // FUZZ_FUZZ_TRIAL_HH
