/**
 * @file
 * The adversarial drain policy of the persistency fuzzer.
 *
 * Hook sites (persist-engine issue loops, the write-back drain path)
 * consult the adversary immediately before performing an action that
 * the design's ordering rules leave them free to time: issuing a CLWB
 * flush, handing a persist-queue head to the strand buffer unit, or
 * draining an eligible write-back. The adversary either lets the
 * action proceed (returning 0) or holds it for a bounded number of
 * ticks — and *delaying a legal action is always legal*, so every
 * schedule the adversary produces stays within the design's
 * specification. On a hold the adversary schedules the site-provided
 * retry closure on the event queue, which guarantees forward progress
 * (the simulator panics if the event queue drains with unfinished
 * cores, so a hold must always leave a wake-up behind).
 *
 * Two modes share one query-numbering scheme (each consider() call
 * increments a per-(site, core) counter):
 *  - recording: holds are drawn from a private Rng and appended to
 *    the decision log, making the whole trial replayable from
 *    (seed, log);
 *  - replaying: holds come only from a given decision log; queries
 *    without a matching entry proceed immediately. Any sub-log is a
 *    valid schedule, which is what lets ddmin shrink failures.
 */

#ifndef FUZZ_ADVERSARY_HH
#define FUZZ_ADVERSARY_HH

#include <functional>
#include <map>
#include <tuple>

#include "fuzz/decision.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace strand
{

/** Knobs of the recording mode. */
struct AdversaryParams
{
    std::uint64_t seed = 0xad5eed;
    /** Probability that a query is held rather than allowed. */
    double deferChance = 0.25;
    /** Hold durations are drawn uniformly from [minDelay, maxDelay]. */
    Tick minDelay = nsToTicks(20);
    Tick maxDelay = nsToTicks(3000);
    /** Stop perturbing (allow everything) after this many holds. */
    std::size_t maxDecisions = 4096;
    /** Probability a considerMedia() opportunity fires its fault. */
    double mediaChance = 0.15;
};

/**
 * A drain adversary for one simulated system. Systems hold a
 * non-owning pointer; a null adversary means "always allow" with no
 * query accounting, so un-fuzzed runs take the untouched fast path.
 */
class DrainAdversary
{
  public:
    /** @return an adversary drawing fresh decisions from @p params. */
    static DrainAdversary recording(const AdversaryParams &params);

    /** @return an adversary applying exactly @p log. */
    static DrainAdversary replaying(DecisionLog log);

    /**
     * Consult the adversary before performing @p site's action for
     * @p core. @return 0 to proceed now; otherwise the action must be
     * held for the returned number of ticks — @p retry has already
     * been scheduled on @p eq at that point.
     *
     * @p retry is borrowed and only copied when a hold is issued, so
     * call sites can pass one long-lived callback instead of
     * constructing a closure per query. Each hold stays its own
     * one-shot event: coalescing retries would reorder the queries
     * the adversary sees and break decision-log replay.
     */
    Tick consider(EventQueue &eq, FuzzSite site, CoreId core,
                  const std::function<void()> &retry);

    /**
     * Consult the adversary at a media-fault opportunity (@p site
     * must be one of the Media* sites). @return the fault's entropy
     * word when it should fire, nullopt to skip. Recording mode draws
     * the fire/skip choice and the entropy from a dedicated media
     * Rng (so the schedule stream is untouched by media fuzzing) and
     * logs fired faults with the entropy in the delay field; replay
     * fires exactly the logged queries. Media queries do not count
     * toward queriesSeen() and never invoke the query hook — they are
     * crash-time events, not schedule points.
     */
    std::optional<std::uint64_t> considerMedia(FuzzSite site,
                                               CoreId core = 0);

    /** Decisions recorded (recording mode) or applied (replay). */
    const DecisionLog &log() const { return decisions; }

    /** Total consider() calls, over all sites and cores. */
    std::uint64_t queriesSeen() const { return totalQueries; }

    /**
     * Hook invoked after every consider() with the updated total
     * query count. The branching fuzzer uses it to pick snapshot
     * points at adversary decision sites; the hook must not re-enter
     * consider().
     */
    void
    setQueryHook(std::function<void(std::uint64_t)> hook)
    {
        queryHook = std::move(hook);
    }

    /**
     * Restart the decision stream from @p seed (recording mode).
     * Restored schedule branches call this so each branch explores a
     * different suffix from the same warm prefix.
     */
    void
    reseed(std::uint64_t seed)
    {
        rng = Rng(seed);
    }

    /** Mutable decision state captured by the fuzzer's snapshots
     * (the replay plan and parameters are fixed wiring). */
    struct State
    {
        std::array<std::uint64_t, 4> rng{};
        std::array<std::uint64_t, 4> mediaRng{};
        DecisionLog decisions;
        std::uint64_t totalQueries = 0;
        std::map<std::pair<unsigned, CoreId>, std::uint64_t> counters;
    };

    State
    snapshotState() const
    {
        return {rng.saveState(), mediaRng.saveState(), decisions,
                totalQueries, counters};
    }

    void
    restoreState(const State &s)
    {
        rng.restoreState(s.rng);
        mediaRng.restoreState(s.mediaRng);
        decisions = s.decisions;
        totalQueries = s.totalQueries;
        counters = s.counters;
    }

  private:
    DrainAdversary() = default;

    bool record = false;
    AdversaryParams params;
    Rng rng{0};
    /** Media-fault stream, independent of the schedule stream. */
    Rng mediaRng{0};
    DecisionLog decisions;
    std::uint64_t totalQueries = 0;
    /** Next query number per (site, core). */
    std::map<std::pair<unsigned, CoreId>, std::uint64_t> counters;
    /** Replay mode: (site, core, query) -> delay. */
    std::map<std::tuple<unsigned, CoreId, std::uint64_t>, Tick> plan;
    std::function<void(std::uint64_t)> queryHook;
};

} // namespace strand

#endif // FUZZ_ADVERSARY_HH
