#include "fuzz/adversary.hh"

namespace strand
{

DrainAdversary
DrainAdversary::recording(const AdversaryParams &params)
{
    DrainAdversary adv;
    adv.record = true;
    adv.params = params;
    adv.rng = Rng(params.seed);
    adv.mediaRng = Rng(params.seed ^ 0x3ed1a5eedULL);
    return adv;
}

DrainAdversary
DrainAdversary::replaying(DecisionLog log)
{
    DrainAdversary adv;
    adv.record = false;
    for (const FuzzDecision &d : log) {
        adv.plan[{static_cast<unsigned>(d.site), d.core, d.query}] =
            d.delay;
    }
    adv.decisions = std::move(log);
    return adv;
}

Tick
DrainAdversary::consider(EventQueue &eq, FuzzSite site, CoreId core,
                         const std::function<void()> &retry)
{
    ++totalQueries;
    std::uint64_t query =
        counters[{static_cast<unsigned>(site), core}]++;

    Tick delay = 0;
    if (record) {
        if (decisions.size() < params.maxDecisions &&
            rng.chance(params.deferChance)) {
            delay = rng.nextRange(params.minDelay, params.maxDelay);
            decisions.push_back({site, core, query, delay});
        }
    } else {
        auto it = plan.find(
            {static_cast<unsigned>(site), core, query});
        if (it != plan.end())
            delay = it->second;
    }

    if (delay > 0)
        eq.scheduleIn(delay, retry);
    if (queryHook)
        queryHook(totalQueries);
    return delay;
}

std::optional<std::uint64_t>
DrainAdversary::considerMedia(FuzzSite site, CoreId core)
{
    std::uint64_t query =
        counters[{static_cast<unsigned>(site), core}]++;
    if (record) {
        if (decisions.size() >= params.maxDecisions ||
            !mediaRng.chance(params.mediaChance)) {
            return std::nullopt;
        }
        std::uint64_t entropy = mediaRng.next();
        decisions.push_back({site, core, query, entropy});
        return entropy;
    }
    auto it = plan.find({static_cast<unsigned>(site), core, query});
    if (it == plan.end())
        return std::nullopt;
    return it->second;
}

} // namespace strand
