/**
 * @file
 * Decision logs for the adversarial persistency fuzzer.
 *
 * A fuzz trial perturbs the persist schedule at a small set of hook
 * sites (persist-engine issue points and the write-back drain path).
 * Each perturbation is one FuzzDecision: "the query-th time site S on
 * core C was about to act, hold the action for delay ticks". Allowing
 * an action is the default and is *not* logged, so a decision log is
 * a sparse list of perturbations and — crucially for shrinking — any
 * subset of a log is itself a valid, legal schedule: removing an
 * entry merely lets that action proceed immediately.
 *
 * Logs serialize to a stable one-decision-per-line text form used by
 * the bench/out/repro/ reproducer files.
 */

#ifndef FUZZ_DECISION_HH
#define FUZZ_DECISION_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace strand
{

/**
 * The schedule points the adversary may perturb, plus the media-fault
 * decision sites it may fire at crash-injection points. Media sites
 * reuse the decision-log machinery — one logged decision means "apply
 * this fault at the query-th opportunity", the delay field carries
 * the fault's entropy instead of a hold duration, and removing a
 * decision merely skips that fault — so ddmin shrinks fault sets
 * exactly like schedules.
 */
enum class FuzzSite : std::uint8_t
{
    IntelIssue,  ///< IntelEngine: CLWB issue within an epoch.
    StrandIssue, ///< StrandEngine: persist-queue head issue to the SBU.
    SbuIssue,    ///< StrandBufferUnit: CLWB flush issue from a buffer.
    Writeback,   ///< Hierarchy: draining an eligible L1 write-back.
    MediaPoison, ///< Crash point: poison one in-flight line.
    MediaFlip,   ///< Crash point: flip one bit of a log-entry line.
    MediaDrop,   ///< Crash point: drop the newest ADR admission.
};

inline constexpr unsigned numFuzzSites = 7;

const char *fuzzSiteName(FuzzSite site);

/** @return the site named @p name, or nullopt. */
std::optional<FuzzSite> fuzzSiteFromName(const std::string &name);

/** One recorded perturbation of the persist schedule. */
struct FuzzDecision
{
    FuzzSite site = FuzzSite::SbuIssue;
    CoreId core = 0;
    /** Per-(site, core) query counter value the decision applies to. */
    std::uint64_t query = 0;
    /** Ticks the action is held before its retry fires. */
    Tick delay = 0;

    bool operator==(const FuzzDecision &) const = default;
};

using DecisionLog = std::vector<FuzzDecision>;

/** Render @p log one decision per line: "<site> <core> <query> <delay>". */
std::string serializeDecisions(const DecisionLog &log);

/**
 * Parse serializeDecisions() output. @return nullopt (with a message
 * in @p error when given) on any malformed line.
 */
std::optional<DecisionLog> parseDecisions(const std::string &text,
                                          std::string *error = nullptr);

} // namespace strand

#endif // FUZZ_DECISION_HH
