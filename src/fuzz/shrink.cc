#include "fuzz/shrink.hh"

#include <algorithm>

namespace strand
{

namespace
{

DecisionLog
without(const DecisionLog &log, std::size_t begin, std::size_t end)
{
    DecisionLog out;
    out.reserve(log.size() - (end - begin));
    out.insert(out.end(), log.begin(),
               log.begin() + static_cast<std::ptrdiff_t>(begin));
    out.insert(out.end(),
               log.begin() + static_cast<std::ptrdiff_t>(end),
               log.end());
    return out;
}

} // namespace

ShrinkResult
shrinkLog(const DecisionLog &log,
          const std::function<bool(const DecisionLog &)> &fails,
          unsigned maxReplays)
{
    ShrinkResult result;
    result.log = log;

    auto check = [&](const DecisionLog &candidate) {
        if (result.replays >= maxReplays)
            return false;
        ++result.replays;
        return fails(candidate);
    };

    // The empty log is the best possible outcome (the failure needs
    // no perturbation at all); test it first — it is also ddmin's
    // complement of the whole.
    if (check({})) {
        result.log.clear();
        result.stillFails = true;
        return result;
    }
    if (!check(result.log))
        return result; // not reproducible; return the input unshrunk
    result.stillFails = true;

    // ddmin: remove ever-finer chunks while the failure persists.
    std::size_t chunks = 2;
    while (result.log.size() >= 2 && result.replays < maxReplays) {
        chunks = std::min(chunks, result.log.size());
        const std::size_t n = result.log.size();
        bool reduced = false;
        for (std::size_t i = 0; i < chunks; ++i) {
            std::size_t begin = i * n / chunks;
            std::size_t end = (i + 1) * n / chunks;
            if (begin == end)
                continue;
            DecisionLog candidate = without(result.log, begin, end);
            if (check(candidate)) {
                result.log = std::move(candidate);
                chunks = std::max<std::size_t>(2, chunks - 1);
                reduced = true;
                break;
            }
        }
        if (reduced)
            continue;
        if (chunks >= result.log.size())
            break;
        chunks = std::min(result.log.size(), chunks * 2);
    }

    // Greedy polish: drop single entries until 1-minimal.
    for (std::size_t i = 0;
         i < result.log.size() && result.replays < maxReplays;) {
        DecisionLog candidate = without(result.log, i, i + 1);
        if (check(candidate))
            result.log = std::move(candidate);
        else
            ++i;
    }
    return result;
}

ShrinkResult
shrinkDecisions(const FuzzTrialContext &ctx, const DecisionLog &log,
                unsigned tornWords, unsigned maxReplays)
{
    return shrinkLog(
        log,
        [&ctx, tornWords](const DecisionLog &candidate) {
            return replayDecisions(ctx, candidate, tornWords).failed;
        },
        maxReplays);
}

} // namespace strand
