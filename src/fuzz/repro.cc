#include "fuzz/repro.hh"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace strand
{

namespace
{

const char *
logStyleToken(LogStyle style)
{
    return style == LogStyle::Undo ? "undo" : "redo";
}

std::optional<WorkloadKind>
workloadFromName(const std::string &name)
{
    for (WorkloadKind kind : allWorkloads)
        if (name == workloadName(kind))
            return kind;
    return std::nullopt;
}

std::optional<HwDesign>
designFromName(const std::string &name)
{
    for (HwDesign design : allDesigns)
        if (name == hwDesignName(design))
            return design;
    return std::nullopt;
}

std::optional<PersistencyModel>
modelFromName(const std::string &name)
{
    for (PersistencyModel model : allModels)
        if (name == persistencyModelName(model))
            return model;
    return std::nullopt;
}

} // namespace

std::string
serializeRepro(const FuzzRepro &repro)
{
    std::ostringstream out;
    out << "# strand persistency fuzz reproducer\n";
    if (!repro.violation.empty()) {
        std::string oneline = repro.violation;
        for (char &c : oneline)
            if (c == '\n' || c == '\r')
                c = ' ';
        out << "# violation: " << oneline << "\n";
    }
    char buf[64];
    out << "workload " << workloadName(repro.spec.kind) << "\n";
    out << "design " << hwDesignName(repro.spec.design) << "\n";
    out << "model " << persistencyModelName(repro.spec.model) << "\n";
    out << "logstyle " << logStyleToken(repro.spec.logStyle) << "\n";
    out << "threads " << repro.spec.numThreads << "\n";
    out << "ops " << repro.spec.opsPerThread << "\n";
    out << "interlock "
        << (repro.spec.experiment.engine.hopsEpochInterlock ? 1 : 0)
        << "\n";
    // Written only when set so ordinary reproducers keep the stable
    // key set; the planted bug exists purely for harness self-tests.
    if (repro.spec.experiment.engine.plantedEpochBug)
        out << "planted 1\n";
    // Pinned when the trial ran with an explicit PMO-san setting, so
    // a sanitizer-found violation replays with the sanitizer attached
    // regardless of the replaying environment's SW_PMOSAN.
    if (repro.spec.pmosan)
        out << "pmosan " << (*repro.spec.pmosan ? 1 : 0) << "\n";
    std::snprintf(buf, sizeof(buf), "seed 0x%" PRIx64 "\n",
                  repro.spec.seed);
    out << buf;
    out << "tornwords " << repro.tornWords << "\n";
    // Media keys appear only for media-fuzzed trials, keeping the
    // stable key set for ordinary reproducers. The class maxima are
    // part of the trial identity: they fix how many media queries
    // each injection makes, which the decision log's query numbers
    // depend on.
    if (repro.spec.media.any()) {
        out << "mediapoison " << repro.spec.media.poisonLines << "\n";
        out << "mediaflips " << repro.spec.media.bitFlips << "\n";
        out << "mediadrop " << repro.spec.media.dropAdmissions
            << "\n";
    }
    if (!repro.spec.verifyChecksums)
        out << "checksums 0\n";
    out << "decisions\n";
    out << serializeDecisions(repro.decisions);
    return out.str();
}

std::optional<FuzzRepro>
parseRepro(const std::string &text, std::string *error)
{
    auto fail = [&](const std::string &message) {
        if (error)
            *error = message;
        return std::nullopt;
    };

    FuzzRepro repro;
    std::istringstream in(text);
    std::string line;
    bool inDecisions = false;
    std::string decisionText;
    unsigned lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        if (inDecisions) {
            decisionText += line;
            decisionText += '\n';
            continue;
        }
        std::istringstream fields(line);
        std::string key, value;
        fields >> key;
        if (key == "decisions") {
            inDecisions = true;
            continue;
        }
        if (!(fields >> value))
            return fail("line " + std::to_string(lineNo) +
                        ": missing value for '" + key + "'");
        if (key == "workload") {
            auto kind = workloadFromName(value);
            if (!kind)
                return fail("unknown workload '" + value + "'");
            repro.spec.kind = *kind;
        } else if (key == "design") {
            auto design = designFromName(value);
            if (!design)
                return fail("unknown design '" + value + "'");
            repro.spec.design = *design;
        } else if (key == "model") {
            auto model = modelFromName(value);
            if (!model)
                return fail("unknown model '" + value + "'");
            repro.spec.model = *model;
        } else if (key == "logstyle") {
            if (value == "undo")
                repro.spec.logStyle = LogStyle::Undo;
            else if (value == "redo")
                repro.spec.logStyle = LogStyle::Redo;
            else
                return fail("unknown logstyle '" + value + "'");
        } else if (key == "threads") {
            repro.spec.numThreads =
                static_cast<unsigned>(std::stoul(value));
        } else if (key == "ops") {
            repro.spec.opsPerThread =
                static_cast<unsigned>(std::stoul(value));
        } else if (key == "interlock") {
            repro.spec.experiment.engine.hopsEpochInterlock =
                value != "0";
        } else if (key == "planted") {
            repro.spec.experiment.engine.plantedEpochBug =
                value != "0";
        } else if (key == "pmosan") {
            repro.spec.pmosan = value != "0";
        } else if (key == "seed") {
            repro.spec.seed = std::stoull(value, nullptr, 0);
        } else if (key == "tornwords") {
            repro.tornWords =
                static_cast<unsigned>(std::stoul(value));
        } else if (key == "mediapoison") {
            repro.spec.media.poisonLines =
                static_cast<unsigned>(std::stoul(value));
        } else if (key == "mediaflips") {
            repro.spec.media.bitFlips =
                static_cast<unsigned>(std::stoul(value));
        } else if (key == "mediadrop") {
            repro.spec.media.dropAdmissions =
                static_cast<unsigned>(std::stoul(value));
        } else if (key == "checksums") {
            repro.spec.verifyChecksums = value != "0";
        } else {
            return fail("line " + std::to_string(lineNo) +
                        ": unknown key '" + key + "'");
        }
    }
    if (!inDecisions)
        return fail("missing 'decisions' section");
    auto log = parseDecisions(decisionText, error);
    if (!log)
        return std::nullopt;
    repro.decisions = std::move(*log);
    return repro;
}

std::string
writeRepro(const FuzzRepro &repro, const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return {};

    char seedHex[32];
    std::snprintf(seedHex, sizeof(seedHex), "%" PRIx64,
                  repro.spec.seed);
    std::string name = std::string(workloadName(repro.spec.kind)) +
                       "-" + hwDesignName(repro.spec.design) + "-" +
                       persistencyModelName(repro.spec.model);
    if (repro.spec.experiment.engine.hopsEpochInterlock)
        name += "-interlock";
    if (repro.spec.logStyle == LogStyle::Redo)
        name += "-redo";
    name += "-t";
    name += seedHex;
    name += ".repro";

    std::string path = dir + "/" + name;
    std::ofstream out(path);
    if (!out)
        return {};
    out << serializeRepro(repro);
    return out ? path : std::string{};
}

FuzzReplayOutcome
replayReproFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open reproducer '{}'", path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    auto repro = parseRepro(buffer.str(), &error);
    fatalIf(!repro, "bad reproducer '{}': {}", path, error);

    FuzzTrialContext ctx = makeTrialContext(repro->spec);
    return replayDecisions(ctx, repro->decisions, repro->tornWords);
}

} // namespace strand
