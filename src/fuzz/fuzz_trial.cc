#include "fuzz/fuzz_trial.hh"

#include "core/env_config.hh"
#include "core/observer_util.hh"
#include "crash/crash_oracle.hh"
#include "runtime/instrumentor.hh"
#include "runtime/recovery.hh"
#include "sanitizer/pmo_sanitizer.hh"
#include "sim/random.hh"

namespace strand
{

std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t stream)
{
    // SplitMix64 of (seed + stream * golden gamma): the standard way
    // to fan one master seed out into independent streams.
    std::uint64_t z = seed + stream * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

FuzzTrialContext
makeTrialContext(const FuzzTrialSpec &spec)
{
    FuzzTrialContext ctx;
    ctx.spec = spec;
    ctx.workloadSeed = mixSeed(spec.seed, 1);
    ctx.adversarySeed = mixSeed(spec.seed, 2);
    ctx.tornSeed = mixSeed(spec.seed, 3);

    WorkloadParams params;
    params.numThreads = spec.numThreads;
    params.opsPerThread = spec.opsPerThread;
    params.seed = ctx.workloadSeed;
    ctx.recorded = recordWorkload(spec.kind, params);
    return ctx;
}

namespace
{

bool
pmosanEnabled(const FuzzTrialSpec &spec)
{
    return spec.pmosan.value_or(envConfig().pmosan.value_or(false));
}

/** Streams, oracle, and a system factory for one (ctx, adversary). */
struct TrialRig
{
    InstrumentorParams ip;
    std::vector<OpStream> streams;
    CrashOracle oracle;

    TrialRig(const FuzzTrialContext &ctx)
        : ip(), streams(), oracle([&]() -> CrashOracle {
              ip.design = ctx.spec.design;
              ip.model = ctx.spec.model;
              ip.logStyle = ctx.spec.logStyle;
              Instrumentor instr(ip);
              streams = instr.lower(ctx.recorded.trace);
              return CrashOracle(ctx.recorded.trace,
                                 instr.regionLog(),
                                 ctx.recorded.preload, ip.layout);
          }())
    {
    }

    std::unique_ptr<System>
    buildSystem(const FuzzTrialContext &ctx, DrainAdversary *adv)
    {
        SystemConfig sysCfg = ctx.spec.experiment.baseSystem;
        sysCfg.numCores = static_cast<unsigned>(streams.size());
        sysCfg.design = ctx.spec.design;
        sysCfg.engine = ctx.spec.experiment.engine;
        sysCfg.layout = ip.layout;
        sysCfg.adversary = adv;
        auto sys = std::make_unique<System>(sysCfg);
        sys->seedImage(ctx.recorded.preload);
        auto copies = streams;
        sys->loadStreams(std::move(copies));
        return sys;
    }
};

/**
 * Run one system under @p adv with crash-recovery injection at every
 * admission and after completion. The shared core of the replay run
 * (replaying adversary, faithful scan) and of the forked fast path
 * (recording adversary, paged scan).
 */
FuzzReplayOutcome
runWithInjection(const FuzzTrialContext &ctx, DrainAdversary &adv,
                 unsigned tornWords, RecoveryScan scan)
{
    FuzzReplayOutcome outcome;
    TrialRig rig(ctx);

    auto sys = rig.buildSystem(ctx, &adv);
    RecoveryManager recovery{rig.ip.layout};
    const unsigned programThreads = ctx.recorded.params.numThreads;

    auto inject = [&](Tick when, bool tearLast) {
        MemoryImage snapshot;
        if (!tearLast || tornWords >= wordsPerLine) {
            snapshot = sys->memory().clonePersisted();
        } else {
            // Tear the admission that just happened: keep only the
            // first tornWords of its written words.
            std::uint8_t written = sys->memory().lastAdmissionMask();
            std::uint8_t admit = 0;
            unsigned kept = 0;
            for (unsigned i = 0;
                 i < wordsPerLine && kept < tornWords; ++i) {
                if (written & (1u << i)) {
                    admit |= static_cast<std::uint8_t>(1u << i);
                    ++kept;
                }
            }
            snapshot = sys->memory().clonePersistedTorn(admit);
        }
        std::vector<bool> committed =
            rig.oracle.committedRegions(snapshot);
        recovery.recover(snapshot, programThreads, scan);

        std::string err = rig.oracle.checkRecovered(snapshot, committed);
        if (err.empty() && ctx.recorded.workload) {
            auto read = [&snapshot](Addr addr) {
                return snapshot.readPersisted(addr);
            };
            err = ctx.recorded.workload->checkInvariants(read);
        }
        ++outcome.pointsChecked;
        if (err.empty())
            return;
        ++outcome.pointsFailed;
        if (!outcome.failed) {
            outcome.failed = true;
            outcome.crashTick = when;
            outcome.violation = std::move(err);
        }
    };

    // Persisted state changes only at ADR admissions, so checking in
    // an admission observer covers every distinct post-crash image
    // this schedule can produce.
    AdmissionCallback injector([&inject](const PersistRecord &rec) {
        inject(rec.when, true);
    });
    TraceHasher hasher;
    PmoSanitizer sanitizer;
    sys->addObserver(&injector);
    sys->addObserver(&hasher);
    if (pmosanEnabled(ctx.spec))
        sys->addObserver(&sanitizer);
    outcome.endTick = sys->run();
    // A crash after the last persist must recover to the final state.
    inject(outcome.endTick, false);

    if (!sanitizer.ok()) {
        // Persist-order violations ride the same failure path as
        // recovery violations, so shrinking and .repro dumps apply.
        outcome.pointsFailed += 1;
        if (!outcome.failed) {
            outcome.failed = true;
            outcome.crashTick = sanitizer.violations().empty()
                                    ? outcome.endTick
                                    : sanitizer.violations()[0].when;
            outcome.violation = sanitizer.report();
        }
    }

    outcome.traceHash = hasher.value();
    outcome.hostEvents = sys->eventsServiced();
    outcome.simOps =
        static_cast<std::uint64_t>(sys->totalCommitted());
    return outcome;
}

} // namespace

FuzzReplayOutcome
replayDecisions(const FuzzTrialContext &ctx, const DecisionLog &log,
                unsigned tornWords)
{
    DrainAdversary adv = DrainAdversary::replaying(log);
    return runWithInjection(ctx, adv, tornWords,
                            RecoveryScan::Faithful);
}

FuzzTrialResult
runFuzzTrial(const FuzzTrialSpec &spec)
{
    FuzzTrialContext ctx = makeTrialContext(spec);

    FuzzTrialResult result;
    result.workloadSeed = ctx.workloadSeed;
    result.adversarySeed = ctx.adversarySeed;

    // Torn-word mask for every injection of this trial: half the
    // trials keep admissions whole, the rest tear the final line
    // after 1..7 words. Drawn from its own seed stream, so both
    // trial modes see the same mask.
    Rng torn(ctx.tornSeed);
    result.tornWords =
        torn.chance(0.5) ? wordsPerLine
                         : static_cast<unsigned>(
                               torn.nextRange(1, wordsPerLine - 1));

    const bool forked =
        spec.fork.value_or(envConfig().crashFork.value_or(false));
    if (forked) {
        // Forked fast path: ONE recording run with injection
        // attached. The injection observers are pure (they clone the
        // image and recover the clone), so the adversary sees the
        // schedule of a recording-only run and logs the identical
        // decisions; the paged recovery scan keeps the per-admission
        // checks cheap. A passing trial is done after this single
        // run — roughly half the classic wall-clock.
        AdversaryParams ap = spec.adversary;
        ap.seed = ctx.adversarySeed;
        DrainAdversary adv = DrainAdversary::recording(ap);
        FuzzReplayOutcome fast = runWithInjection(
            ctx, adv, result.tornWords, RecoveryScan::Paged);
        result.decisions = adv.log();
        result.queries = adv.queriesSeen();
        result.hostEvents += fast.hostEvents;
        result.simOps += fast.simOps;
        if (!fast.failed) {
            result.pointsChecked = fast.pointsChecked;
            result.pointsFailed = fast.pointsFailed;
            result.traceHash = fast.traceHash;
            return result;
        }
        // Confirm the failure through the oracle path: replay the
        // recorded log from tick 0 with the faithful scan, exactly
        // what the shrinker will do. The divergence check below
        // compares against the fast run's trace.
        FuzzReplayOutcome outcome = replayDecisions(
            ctx, result.decisions, result.tornWords);
        result.failed = outcome.failed;
        result.violation = outcome.violation;
        result.crashTick = outcome.crashTick;
        result.pointsChecked = outcome.pointsChecked;
        result.pointsFailed = outcome.pointsFailed;
        result.traceHash = outcome.traceHash;
        result.hostEvents += outcome.hostEvents;
        result.simOps += outcome.simOps;
        if (outcome.traceHash != fast.traceHash) {
            result.replayDiverged = true;
            result.failed = true;
            if (result.violation.empty())
                result.violation =
                    "replay divergence: persist trace of the replay "
                    "run does not match the recording run";
        }
        return result;
    }

    // Recording run: execute under a fresh adversarial schedule, no
    // injection, capture the decision log and the persist trace.
    std::uint64_t recordHash = 0;
    {
        AdversaryParams ap = spec.adversary;
        ap.seed = ctx.adversarySeed;
        DrainAdversary adv = DrainAdversary::recording(ap);
        TrialRig rig(ctx);
        auto sys = rig.buildSystem(ctx, &adv);
        TraceHasher hasher;
        sys->addObserver(&hasher);
        sys->run();
        recordHash = hasher.value();
        result.decisions = adv.log();
        result.queries = adv.queriesSeen();
        result.hostEvents += sys->eventsServiced();
        result.simOps +=
            static_cast<std::uint64_t>(sys->totalCommitted());
    }

    FuzzReplayOutcome outcome =
        replayDecisions(ctx, result.decisions, result.tornWords);
    result.failed = outcome.failed;
    result.violation = outcome.violation;
    result.crashTick = outcome.crashTick;
    result.pointsChecked = outcome.pointsChecked;
    result.pointsFailed = outcome.pointsFailed;
    result.traceHash = outcome.traceHash;
    result.hostEvents += outcome.hostEvents;
    result.simOps += outcome.simOps;

    if (outcome.traceHash != recordHash) {
        // The replayed schedule did not reproduce the recorded run —
        // an infrastructure bug, reported as its own failure class so
        // campaigns surface it instead of silently mis-shrinking.
        result.replayDiverged = true;
        result.failed = true;
        if (result.violation.empty())
            result.violation = "replay divergence: persist trace of "
                               "the replay run does not match the "
                               "recording run";
    }
    return result;
}

} // namespace strand
