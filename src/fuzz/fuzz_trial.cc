#include "fuzz/fuzz_trial.hh"

#include <deque>

#include "core/env_config.hh"
#include "core/observer_util.hh"
#include "crash/crash_oracle.hh"
#include "runtime/instrumentor.hh"
#include "runtime/recovery.hh"
#include "sanitizer/pmo_sanitizer.hh"
#include "sim/random.hh"

namespace strand
{

std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t stream)
{
    // SplitMix64 of (seed + stream * golden gamma): the standard way
    // to fan one master seed out into independent streams.
    std::uint64_t z = seed + stream * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

FuzzTrialContext
makeTrialContext(const FuzzTrialSpec &spec)
{
    FuzzTrialContext ctx;
    ctx.spec = spec;
    ctx.workloadSeed = mixSeed(spec.seed, 1);
    ctx.adversarySeed = mixSeed(spec.seed, 2);
    ctx.tornSeed = mixSeed(spec.seed, 3);

    WorkloadParams params;
    params.numThreads = spec.numThreads;
    params.opsPerThread = spec.opsPerThread;
    params.seed = ctx.workloadSeed;
    ctx.recorded = recordWorkload(spec.kind, params);
    return ctx;
}

namespace
{

bool
pmosanEnabled(const FuzzTrialSpec &spec)
{
    return spec.pmosan.value_or(envConfig().pmosan.value_or(false));
}

/** Streams, oracle, and a system factory for one (ctx, adversary). */
struct TrialRig
{
    InstrumentorParams ip;
    std::vector<OpStream> streams;
    CrashOracle oracle;

    TrialRig(const FuzzTrialContext &ctx)
        : ip(), streams(), oracle([&]() -> CrashOracle {
              ip.design = ctx.spec.design;
              ip.model = ctx.spec.model;
              ip.logStyle = ctx.spec.logStyle;
              Instrumentor instr(ip);
              streams = instr.lower(ctx.recorded.trace);
              return CrashOracle(ctx.recorded.trace,
                                 instr.regionLog(),
                                 ctx.recorded.preload, ip.layout);
          }())
    {
    }

    std::unique_ptr<System>
    buildSystem(const FuzzTrialContext &ctx, DrainAdversary *adv)
    {
        SystemConfig sysCfg = ctx.spec.experiment.baseSystem;
        sysCfg.numCores = static_cast<unsigned>(streams.size());
        sysCfg.design = ctx.spec.design;
        sysCfg.engine = ctx.spec.experiment.engine;
        sysCfg.layout = ip.layout;
        sysCfg.adversary = adv;
        auto sys = std::make_unique<System>(sysCfg);
        sys->seedImage(ctx.recorded.preload);
        auto copies = streams;
        sys->loadStreams(std::move(copies));
        return sys;
    }
};

/**
 * Forked schedule branching: inputs and outcome of the extra suffix
 * explorations run from mid-run machine snapshots.
 */
struct BranchProbe
{
    /** Suffixes to explore from the warm prefix (0 = off). */
    unsigned branches = 0;
    /** SplitMix stream base for the per-branch adversary seeds. */
    std::uint64_t seedBase = 0;

    unsigned branchesRun = 0;
    bool failed = false;
    /** 1-based index of the first failing branch. */
    unsigned failingBranch = 0;
    /** Full decision log of the failing branch (prefix + suffix). */
    DecisionLog failingLog;
    /** queriesSeen() at the end of the failing branch. */
    std::uint64_t failingQueries = 0;
    /** End-to-end persist-trace hash of the failing branch. */
    std::uint64_t traceHash = 0;
    /** Kernel events / committed ops spent on branch tails. */
    std::uint64_t hostEvents = 0;
    std::uint64_t simOps = 0;
};

/**
 * Run one system under @p adv with crash-recovery injection at every
 * admission and after completion. The shared core of the replay run
 * (replaying adversary, faithful scan) and of the forked fast path
 * (recording adversary, paged scan). A non-null @p probe with a
 * branch budget additionally snapshots the machine at power-of-two
 * adversary query counts and, when the main schedule passes, explores
 * @c probe->branches reseeded suffixes from the older capture.
 */
FuzzReplayOutcome
runWithInjection(const FuzzTrialContext &ctx, DrainAdversary &adv,
                 unsigned tornWords, RecoveryScan scan,
                 BranchProbe *probe = nullptr)
{
    FuzzReplayOutcome outcome;
    TrialRig rig(ctx);

    auto sys = rig.buildSystem(ctx, &adv);
    RecoveryManager recovery{rig.ip.layout};
    const unsigned programThreads = ctx.recorded.params.numThreads;

    auto inject = [&](Tick when, bool tearLast) {
        MemoryImage snapshot;
        if (!tearLast || tornWords >= wordsPerLine) {
            snapshot = sys->memory().clonePersisted();
        } else {
            // Tear the admission that just happened: keep only the
            // first tornWords of its written words.
            std::uint8_t written = sys->memory().lastAdmissionMask();
            std::uint8_t admit = 0;
            unsigned kept = 0;
            for (unsigned i = 0;
                 i < wordsPerLine && kept < tornWords; ++i) {
                if (written & (1u << i)) {
                    admit |= static_cast<std::uint8_t>(1u << i);
                    ++kept;
                }
            }
            snapshot = sys->memory().clonePersistedTorn(admit);
        }
        // Media faults strike the frozen snapshot before the oracle
        // computes committed regions, so the oracle reasons over
        // exactly the image recovery sees. Each fault class asks the
        // adversary per opportunity; fired decisions carry their
        // entropy in the log, so replay and ddmin apply them exactly.
        if (ctx.spec.media.any()) {
            const AdmissionRing ring =
                sys->memory().recentAdmissions();
            unsigned dropped = 0;
            for (unsigned i = 0;
                 i < ctx.spec.media.dropAdmissions; ++i) {
                if (!adv.considerMedia(FuzzSite::MediaDrop))
                    continue;
                if (!mediaDropNewest(snapshot, ring, dropped))
                    break;
            }
            for (unsigned i = 0; i < ctx.spec.media.bitFlips; ++i) {
                if (auto entropy =
                        adv.considerMedia(FuzzSite::MediaFlip)) {
                    mediaFlipBit(snapshot, ring, dropped,
                                 rig.ip.layout, *entropy);
                }
            }
            for (unsigned i = 0; i < ctx.spec.media.poisonLines;
                 ++i) {
                if (auto entropy =
                        adv.considerMedia(FuzzSite::MediaPoison)) {
                    mediaPoisonLine(snapshot, ring, dropped,
                                    rig.ip.layout, *entropy);
                }
            }
        }
        std::vector<bool> committed =
            rig.oracle.committedRegions(snapshot);
        RecoveryOptions ropts;
        ropts.verifyChecksums = ctx.spec.verifyChecksums;
        RecoveryReport report =
            recovery.recover(snapshot, programThreads, scan, ropts);

        std::string err;
        if (report.verdict == RecoveryVerdict::Failed)
            err = "recovery FAILED: metadata area poisoned";
        else
            err = rig.oracle.checkRecovered(snapshot, committed,
                                            &report);
        // Structural invariants only bind un-degraded recoveries: a
        // quarantined region legitimately leaves the structure
        // partial ("degraded but consistent").
        if (err.empty() && report.verdict == RecoveryVerdict::Full &&
            ctx.recorded.workload) {
            auto read = [&snapshot](Addr addr) {
                return snapshot.readPersisted(addr);
            };
            err = ctx.recorded.workload->checkInvariants(read);
        }
        ++outcome.pointsChecked;
        if (err.empty())
            return;
        ++outcome.pointsFailed;
        if (!outcome.failed) {
            outcome.failed = true;
            outcome.crashTick = when;
            outcome.violation = std::move(err);
        }
    };

    // Persisted state changes only at ADR admissions, so checking in
    // an admission observer covers every distinct post-crash image
    // this schedule can produce.
    AdmissionCallback injector([&inject](const PersistRecord &rec) {
        inject(rec.when, true);
    });
    TraceHasher hasher;
    PmoSanitizer sanitizer;
    sys->addObserver(&injector);
    sys->addObserver(&hasher);
    if (pmosanEnabled(ctx.spec))
        sys->addObserver(&sanitizer);

    auto foldSanitizer = [&] {
        if (sanitizer.ok())
            return;
        // Persist-order violations ride the same failure path as
        // recovery violations, so shrinking and .repro dumps apply.
        outcome.pointsFailed += 1;
        if (!outcome.failed) {
            outcome.failed = true;
            outcome.crashTick = sanitizer.violations().empty()
                                    ? outcome.endTick
                                    : sanitizer.violations()[0].when;
            outcome.violation = sanitizer.report();
        }
    };

    // Branching mode: capture the whole machine at power-of-two
    // adversary query counts. The capture itself runs in a deferred
    // Stat-priority one-shot, after every same-tick action has
    // settled and with the capture event already released — a restore
    // resumes exactly at the inter-event boundary. Only the last two
    // captures are kept; branches fork from the older one, so a
    // non-trivial suffix of the schedule remains to explore. The
    // extra events shift kernel seq numbers uniformly, which cannot
    // reorder dispatch, so the main schedule is unperturbed.
    struct Capture
    {
        Tick when = 0;
        SimSnapshot snap;
        DrainAdversary::State adv;
        PmoSanitizer::State san;
        std::uint64_t hash = 0;
        FuzzReplayOutcome outcome;
        std::uint64_t serviced = 0;
        std::uint64_t committed = 0;
    };
    std::deque<Capture> captures;
    bool capturing = true;
    if (probe && probe->branches > 0) {
        adv.setQueryHook([&](std::uint64_t queries) {
            if (!capturing || (queries & (queries - 1)) != 0)
                return;
            sys->eventQueue().schedule(
                sys->eventQueue().curTick(),
                [&] {
                    if (!capturing)
                        return;
                    Capture cap;
                    cap.when = sys->eventQueue().curTick();
                    cap.snap = sys->snapshot();
                    cap.adv = adv.snapshotState();
                    cap.san = sanitizer.snapshotState();
                    cap.hash = hasher.value();
                    cap.outcome = outcome;
                    cap.serviced = sys->eventsServiced();
                    cap.committed = static_cast<std::uint64_t>(
                        sys->totalCommitted());
                    inform("fuzz-fork capture @{}: {} keys, ~{} "
                           "bytes",
                           cap.when, cap.snap.size(),
                           cap.snap.approxBytes());
                    captures.push_back(std::move(cap));
                    if (captures.size() > 2)
                        captures.pop_front();
                },
                EventPriority::Stat);
        });
    }

    outcome.endTick = sys->run();
    // A crash after the last persist must recover to the final state.
    inject(outcome.endTick, false);
    foldSanitizer();

    outcome.traceHash = hasher.value();
    outcome.hostEvents = sys->eventsServiced();
    outcome.simOps =
        static_cast<std::uint64_t>(sys->totalCommitted());

    if (probe && !captures.empty() && !outcome.failed) {
        // The main schedule passed: rewind to the older capture and
        // explore reseeded suffixes. Each branch restores machine,
        // adversary, hasher, and sanitizer to the same warm prefix,
        // then lets a fresh decision stream produce a different legal
        // schedule tail. The first failing branch stops exploration;
        // its full log is handed back for oracle confirmation.
        capturing = false;
        const Capture &cap = captures.front();
        const FuzzReplayOutcome mainOutcome = outcome;
        const DrainAdversary::State mainAdv = adv.snapshotState();
        for (unsigned b = 1;
             b <= probe->branches && !probe->failed; ++b) {
            sys->restore(cap.snap);
            adv.restoreState(cap.adv);
            adv.reseed(mixSeed(probe->seedBase, b));
            hasher.restoreValue(cap.hash);
            sanitizer.restoreState(cap.san);
            outcome = cap.outcome;
            inform("fuzz-fork branch {} from @{}", b, cap.when);
            outcome.endTick = sys->run();
            inject(outcome.endTick, false);
            foldSanitizer();
            ++probe->branchesRun;
            probe->hostEvents +=
                sys->eventsServiced() - cap.serviced;
            probe->simOps +=
                static_cast<std::uint64_t>(sys->totalCommitted()) -
                cap.committed;
            if (outcome.failed) {
                probe->failed = true;
                probe->failingBranch = b;
                probe->failingLog = adv.log();
                probe->failingQueries = adv.queriesSeen();
                probe->traceHash = hasher.value();
            }
        }
        // Hand the main schedule's log and outcome back to the
        // caller; the branches' state lives in the probe.
        adv.restoreState(mainAdv);
        outcome = mainOutcome;
    }
    return outcome;
}

} // namespace

FuzzReplayOutcome
replayDecisions(const FuzzTrialContext &ctx, const DecisionLog &log,
                unsigned tornWords)
{
    DrainAdversary adv = DrainAdversary::replaying(log);
    return runWithInjection(ctx, adv, tornWords,
                            RecoveryScan::Faithful);
}

FuzzTrialResult
runFuzzTrial(const FuzzTrialSpec &spec)
{
    FuzzTrialContext ctx = makeTrialContext(spec);

    FuzzTrialResult result;
    result.workloadSeed = ctx.workloadSeed;
    result.adversarySeed = ctx.adversarySeed;

    // Torn-word mask for every injection of this trial: half the
    // trials keep admissions whole, the rest tear the final line
    // after 1..7 words. Drawn from its own seed stream, so both
    // trial modes see the same mask.
    Rng torn(ctx.tornSeed);
    result.tornWords =
        torn.chance(0.5) ? wordsPerLine
                         : static_cast<unsigned>(
                               torn.nextRange(1, wordsPerLine - 1));

    // Branch exploration needs the single warm run's snapshots, so a
    // non-zero branch count implies the forked trial path.
    const unsigned forkBranches = spec.forkBranches.value_or(
        envConfig().fuzzForkBranch.value_or(0));
    // Media fuzzing also implies it: the classic recording run has no
    // injection attached, so media opportunities would never be seen
    // (and never logged) outside the forked path.
    const bool forked =
        spec.fork.value_or(envConfig().crashFork.value_or(false)) ||
        forkBranches > 0 || spec.media.any();
    if (forked) {
        // Forked fast path: ONE recording run with injection
        // attached. The injection observers are pure (they clone the
        // image and recover the clone), so the adversary sees the
        // schedule of a recording-only run and logs the identical
        // decisions; the paged recovery scan keeps the per-admission
        // checks cheap. A passing trial is done after this single
        // run — roughly half the classic wall-clock.
        AdversaryParams ap = spec.adversary;
        ap.seed = ctx.adversarySeed;
        DrainAdversary adv = DrainAdversary::recording(ap);
        BranchProbe probe;
        probe.branches = forkBranches;
        // Branch seeds come from their own SplitMix stream so branch
        // k never collides with the trial's workload/adversary/torn
        // sub-seeds (streams 1..3).
        probe.seedBase = mixSeed(ctx.adversarySeed, 0x5eed);
        FuzzReplayOutcome fast =
            runWithInjection(ctx, adv, result.tornWords,
                             RecoveryScan::Paged, &probe);
        result.decisions = adv.log();
        result.queries = adv.queriesSeen();
        result.hostEvents += fast.hostEvents + probe.hostEvents;
        result.simOps += fast.simOps + probe.simOps;
        result.branchesExplored = probe.branchesRun;
        if (!fast.failed && probe.failed) {
            // The main schedule passed but a forked suffix failed:
            // confirm by replaying the branch's full decision log
            // from tick zero with the faithful scan — the exact
            // predicate the shrinker applies to sub-logs. The replay
            // must also reproduce the restored-prefix execution's
            // persist trace bit for bit; a mismatch means snapshot
            // restore is not deterministic and is reported as its
            // own failure class.
            FuzzReplayOutcome confirm = replayDecisions(
                ctx, probe.failingLog, result.tornWords);
            result.decisions = probe.failingLog;
            result.queries = probe.failingQueries;
            result.failingBranch = probe.failingBranch;
            result.failed = confirm.failed;
            result.violation = confirm.violation;
            result.crashTick = confirm.crashTick;
            result.pointsChecked = confirm.pointsChecked;
            result.pointsFailed = confirm.pointsFailed;
            result.traceHash = confirm.traceHash;
            result.hostEvents += confirm.hostEvents;
            result.simOps += confirm.simOps;
            if (confirm.traceHash != probe.traceHash) {
                result.replayDiverged = true;
                result.failed = true;
                if (result.violation.empty())
                    result.violation =
                        "replay divergence: replaying the forked "
                        "branch's decision log does not reproduce "
                        "the restored-snapshot execution";
            }
            return result;
        }
        if (!fast.failed) {
            result.pointsChecked = fast.pointsChecked;
            result.pointsFailed = fast.pointsFailed;
            result.traceHash = fast.traceHash;
            return result;
        }
        // Confirm the failure through the oracle path: replay the
        // recorded log from tick 0 with the faithful scan, exactly
        // what the shrinker will do. The divergence check below
        // compares against the fast run's trace.
        FuzzReplayOutcome outcome = replayDecisions(
            ctx, result.decisions, result.tornWords);
        result.failed = outcome.failed;
        result.violation = outcome.violation;
        result.crashTick = outcome.crashTick;
        result.pointsChecked = outcome.pointsChecked;
        result.pointsFailed = outcome.pointsFailed;
        result.traceHash = outcome.traceHash;
        result.hostEvents += outcome.hostEvents;
        result.simOps += outcome.simOps;
        if (outcome.traceHash != fast.traceHash) {
            result.replayDiverged = true;
            result.failed = true;
            if (result.violation.empty())
                result.violation =
                    "replay divergence: persist trace of the replay "
                    "run does not match the recording run";
        }
        return result;
    }

    // Recording run: execute under a fresh adversarial schedule, no
    // injection, capture the decision log and the persist trace.
    std::uint64_t recordHash = 0;
    {
        AdversaryParams ap = spec.adversary;
        ap.seed = ctx.adversarySeed;
        DrainAdversary adv = DrainAdversary::recording(ap);
        TrialRig rig(ctx);
        auto sys = rig.buildSystem(ctx, &adv);
        TraceHasher hasher;
        sys->addObserver(&hasher);
        sys->run();
        recordHash = hasher.value();
        result.decisions = adv.log();
        result.queries = adv.queriesSeen();
        result.hostEvents += sys->eventsServiced();
        result.simOps +=
            static_cast<std::uint64_t>(sys->totalCommitted());
    }

    FuzzReplayOutcome outcome =
        replayDecisions(ctx, result.decisions, result.tornWords);
    result.failed = outcome.failed;
    result.violation = outcome.violation;
    result.crashTick = outcome.crashTick;
    result.pointsChecked = outcome.pointsChecked;
    result.pointsFailed = outcome.pointsFailed;
    result.traceHash = outcome.traceHash;
    result.hostEvents += outcome.hostEvents;
    result.simOps += outcome.simOps;

    if (outcome.traceHash != recordHash) {
        // The replayed schedule did not reproduce the recorded run —
        // an infrastructure bug, reported as its own failure class so
        // campaigns surface it instead of silently mis-shrinking.
        result.replayDiverged = true;
        result.failed = true;
        if (result.violation.empty())
            result.violation = "replay divergence: persist trace of "
                               "the replay run does not match the "
                               "recording run";
    }
    return result;
}

} // namespace strand
