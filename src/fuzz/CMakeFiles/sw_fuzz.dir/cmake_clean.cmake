file(REMOVE_RECURSE
  "CMakeFiles/sw_fuzz.dir/adversary.cc.o"
  "CMakeFiles/sw_fuzz.dir/adversary.cc.o.d"
  "CMakeFiles/sw_fuzz.dir/campaign.cc.o"
  "CMakeFiles/sw_fuzz.dir/campaign.cc.o.d"
  "CMakeFiles/sw_fuzz.dir/decision.cc.o"
  "CMakeFiles/sw_fuzz.dir/decision.cc.o.d"
  "CMakeFiles/sw_fuzz.dir/fuzz_trial.cc.o"
  "CMakeFiles/sw_fuzz.dir/fuzz_trial.cc.o.d"
  "CMakeFiles/sw_fuzz.dir/repro.cc.o"
  "CMakeFiles/sw_fuzz.dir/repro.cc.o.d"
  "CMakeFiles/sw_fuzz.dir/shrink.cc.o"
  "CMakeFiles/sw_fuzz.dir/shrink.cc.o.d"
  "libsw_fuzz.a"
  "libsw_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
