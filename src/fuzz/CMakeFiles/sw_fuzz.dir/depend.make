# Empty dependencies file for sw_fuzz.
# This may be replaced when dependencies are built.
