file(REMOVE_RECURSE
  "libsw_fuzz.a"
)
