/**
 * @file
 * Reproducer files for failing fuzz trials.
 *
 * A reproducer captures everything needed to re-execute one failing
 * (usually shrunk) schedule byte-for-byte: the cell coordinates, the
 * trial seed (from which the workload op mix derives), the torn-word
 * mask, and the decision log. The format is a line-oriented text
 * file — `key value` header lines, then one decision per line after
 * a `decisions` marker — so a reproducer can be read, diffed, and
 * hand-edited. `bench/fuzz_campaign --replay <file>` re-runs one.
 */

#ifndef FUZZ_REPRO_HH
#define FUZZ_REPRO_HH

#include <optional>
#include <string>

#include "fuzz/fuzz_trial.hh"

namespace strand
{

/** A self-contained failing-schedule description. */
struct FuzzRepro
{
    FuzzTrialSpec spec;
    unsigned tornWords = 8;
    DecisionLog decisions;
    /** The violation observed when the reproducer was written. */
    std::string violation;
};

/** Serialize to the reproducer text format. */
std::string serializeRepro(const FuzzRepro &repro);

/**
 * Parse a reproducer. @return nullopt (and set @p error) on any
 * malformed or unknown field.
 */
std::optional<FuzzRepro> parseRepro(const std::string &text,
                                    std::string *error = nullptr);

/**
 * Write @p repro under @p dir (created if missing) with a name
 * derived from the cell coordinates and trial seed.
 * @return the path written, or empty on I/O failure.
 */
std::string writeRepro(const FuzzRepro &repro, const std::string &dir);

/** Load the file and replay it. Dies loudly if unreadable. */
FuzzReplayOutcome replayReproFile(const std::string &path);

} // namespace strand

#endif // FUZZ_REPRO_HH
