/**
 * @file
 * The core timing model.
 *
 * Approximates the evaluated out-of-order core (Table I: 2 GHz,
 * 6-wide dispatch, 8-wide commit, 224-entry ROB, 72/64-entry
 * load/store queues) at the level the persistency mechanisms
 * exercise: bounded queues, in-order commit, TSO store drain, and a
 * persist engine that cross-gates store issue. Register renaming and
 * branch prediction are not modeled — replayed traces have no
 * control or data misspeculation — so dispatch stalls only on
 * structural back-pressure, which is exactly the effect the paper
 * measures (Figure 8).
 *
 * Stall accounting distinguishes persist-induced stalls (persist
 * queue full, or store queue full while its head is gated by the
 * persist engine) from cache-induced and lock-induced stalls.
 */

#ifndef CPU_CORE_HH
#define CPU_CORE_HH

#include <deque>
#include <memory>
#include <set>

#include "cache/hierarchy.hh"
#include "cpu/lock_table.hh"
#include "cpu/op.hh"
#include "mem/port.hh"
#include "persist/persist_engine.hh"
#include "sim/sim_object.hh"

namespace strand
{

/** Core configuration (Table I defaults). */
struct CoreParams
{
    Tick clockPeriod = 500; ///< 2 GHz.
    unsigned dispatchWidth = 6;
    unsigned commitWidth = 8;
    unsigned robEntries = 224;
    unsigned lqEntries = 72;
    unsigned sqEntries = 64;
    /** Cycles charged for acquiring / releasing a lock. */
    unsigned lockAcquireCycles = 40;
    unsigned lockReleaseCycles = 10;
};

/** Why dispatch could not proceed in a given cycle. */
enum class StallCause : unsigned
{
    None = 0,
    RobFull,
    LqFull,
    SqFullPersist, ///< SQ full, head gated by the persist engine.
    SqFullMemory,  ///< SQ full, head waiting on the cache.
    PersistQueueFull,
    Lock,
    /** Nothing dispatchable; waiting for in-flight completions. */
    Idle,
    NumCauses,
};

/**
 * One simulated core executing a fixed operation stream.
 */
class Core : public ClockedObject
{
  public:
    Core(std::string name, EventQueue &eq, CoreId id, Hierarchy &hier,
         std::unique_ptr<PersistEngine> engine, LockTable &locks,
         const CoreParams &params,
         stats::StatGroup *parent = nullptr);

    /** Supply the stream to execute; resets progress. */
    void setStream(OpStream stream);

    /** Begin self-scheduled execution. */
    void start();

    /**
     * Re-arm the clock if the core went to sleep after a cycle with
     * no progress. Invoked by completion callbacks, the persist
     * engine, the lock table, and the cache hierarchy.
     */
    void wake();

    /** @return true once the whole stream has drained. */
    bool finished() const { return isFinished; }

    /** Invoked once when the core finishes. */
    void setFinishedCallback(std::function<void()> cb)
    {
        finishedCallback = std::move(cb);
    }

    CoreId id() const { return coreId; }
    PersistEngine &persistEngine() { return *engine; }

    /** The core's mailbox to the hierarchy (partitioner reads its
     * declared leg latencies as cross-domain lookahead). */
    const MemPort &memPort() const { return port; }

    /** Attach the system's observer hub (dispatch events). */
    void setObserverHub(ObserverHub *hub) { obsHub = hub; }

    /** Total persist-induced stall cycles (Figure 8 metric). */
    double persistStallCycles() const;

    /**
     * Capture / restore the pipeline (op-stream cursor, ROB, store
     * and load queues, pending releases, sleep state) and recurse
     * into the persist engine. The op stream itself is fixed input
     * and is not captured; restore targets the same loaded system.
     */
    void saveState(SimSnapshot &snap) const override;
    void restoreState(const SimSnapshot &snap) override;

    /** @name Statistics @{ */
    stats::Scalar numCycles;
    stats::Scalar opsDispatched;
    stats::Scalar opsCommitted;
    stats::Scalar storesIssued;
    stats::Scalar loadsIssued;
    stats::Vector stallCycles;
    stats::Histogram sqOccupancy;
    /** @} */

  private:
    struct RobEntry
    {
        SeqNum seq;
        bool done;
    };

    struct SqEntry
    {
        SeqNum seq = 0;
        Addr addr = 0;
        std::uint64_t value = 0;
        /** Accepted by the L1 (the hierarchy Acked the request). */
        bool issued = false;
        bool completed = false;
        /** In the mail, awaiting the hierarchy's Ack/Nack decision. */
        bool sent = false;
    };

    struct LqEntry
    {
        SeqNum seq = 0;
        Addr addr = 0;
        bool issued = false;
        bool completed = false;
    };

    void tick();
    /** Route one port response (load/store Ack/Nack/Done). */
    void onMemResponse(const MemResponse &resp);
    void dispatchOps();
    /** Free completed store-queue slots (in order; in the shared
     * NO-PERSIST-QUEUE design a slot waits for older persist ops). */
    void drainStoreQueue();
    void issueStores();
    void issueLoads();
    void commitOps();
    void markRobDone(SeqNum seq);
    void recordStall(StallCause cause);

    /** @return seq of the youngest incomplete elder store to the
     * same line, or 0. */
    SeqNum elderStoreTo(Addr addr) const;

    /** Attempt to dispatch the op at the stream head.
     * @return true on success; sets stallReason otherwise. */
    bool dispatchOne(const Op &op);

    /**
     * Publish a primitive-dispatched event for @p op (just
     * dispatched as @p seq). Only successful dispatches are
     * announced — a stalled op retries next cycle and must not be
     * observed twice. CLWBs and any op carrying ordering intents are
     * interesting; plain data ops are not.
     */
    void notifyDispatch(const Op &op, SeqNum seq);

    CoreId coreId;
    Hierarchy &hier;
    std::unique_ptr<PersistEngine> engine;
    LockTable &locks;
    CoreParams params;

    /** Mailbox to the hierarchy; all loads and stores travel here. */
    MemPort port;
    /**
     * A store request is in the mail and its Ack/Nack has not come
     * back. At most one store awaits its admission decision at a
     * time, so acceptance stays in program order (a Nacked elder
     * store can never be overtaken by a younger one).
     */
    bool storeDecisionPending = false;

    OpStream stream;
    std::size_t pc = 0;
    SeqNum nextSeq = 1;

    std::deque<RobEntry> rob;
    std::deque<SqEntry> storeQueue;
    std::deque<LqEntry> loadQueue;

    /** Seqs of stores dispatched but not yet issued / completed. */
    std::set<SeqNum> unissuedStores;
    std::set<SeqNum> incompleteStores;

    /**
     * Releases that have retired from the pipeline but whose lock
     * handoff waits for prior stores to drain and for any preceding
     * drain primitive to complete (release-store semantics).
     */
    struct PendingRelease
    {
        std::uint32_t lockId;
        SeqNum seq;
    };
    std::deque<PendingRelease> pendingReleases;

    /** Volatile machine state captured by saveState(). */
    struct Snapshot
    {
        std::size_t pc = 0;
        SeqNum nextSeq = 1;
        std::deque<RobEntry> rob;
        std::deque<SqEntry> storeQueue;
        std::deque<LqEntry> loadQueue;
        std::set<SeqNum> unissuedStores;
        std::set<SeqNum> incompleteStores;
        std::deque<PendingRelease> pendingReleases;
        bool storeDecisionPending = false;
        Tick computeBusyUntil = 0;
        StallCause stallReason = StallCause::None;
        bool isFinished = false;
        bool started = false;
        bool sleeping = false;
        Tick sleptSince = 0;
        StallCause sleepCause = StallCause::Idle;
        std::uint64_t workDone = 0;
    };

    /** Perform any pending releases whose ordering has resolved. */
    void serviceReleases();

    /** Dispatch is busy executing serial application work. */
    Tick computeBusyUntil = 0;

    /** The single per-cycle evaluation event, re-armed in place. */
    EventQueue::Recurring tickEvent;

    StallCause stallReason = StallCause::None;
    bool isFinished = false;
    bool started = false;
    /** True while no tick event is scheduled (idle core). */
    bool sleeping = false;
    /** Tick at which the core went to sleep (0 = not sleeping). */
    Tick sleptSince = 0;
    /** Stall cause attributed to the current sleep period. */
    StallCause sleepCause = StallCause::Idle;
    /** Bumped by completion callbacks; progress marker. */
    std::uint64_t workDone = 0;
    std::function<void()> finishedCallback;
    ObserverHub *obsHub = nullptr;
};

} // namespace strand

#endif // CPU_CORE_HH
