#include "cpu/core.hh"

namespace strand
{

Core::Core(std::string name, EventQueue &eq, CoreId id, Hierarchy &hier,
           std::unique_ptr<PersistEngine> engine, LockTable &locks,
           const CoreParams &params, stats::StatGroup *parent)
    : ClockedObject(std::move(name), eq, params.clockPeriod, parent),
      numCycles(this, "cycles", "active cycles"),
      opsDispatched(this, "dispatched", "ops dispatched"),
      opsCommitted(this, "committed", "ops committed"),
      storesIssued(this, "storesIssued", "stores issued to the L1"),
      loadsIssued(this, "loadsIssued",
                  "load requests mailed to the L1 (retries included)"),
      stallCycles(this, "stallCycles", "dispatch stall cycles by cause",
                  static_cast<std::size_t>(StallCause::NumCauses)),
      sqOccupancy(this, "sqOccupancy", "store queue occupancy"),
      coreId(id), hier(hier), engine(std::move(engine)), locks(locks),
      params(params)
{
    // The core and everything that rides with it (persist engine,
    // strand buffers) follow one PDES domain when sharded.
    setDomainAffinity("core" + std::to_string(id));

    stallCycles.subname(static_cast<unsigned>(StallCause::None), "none");
    stallCycles.subname(static_cast<unsigned>(StallCause::RobFull),
                        "robFull");
    stallCycles.subname(static_cast<unsigned>(StallCause::LqFull),
                        "lqFull");
    stallCycles.subname(
        static_cast<unsigned>(StallCause::SqFullPersist),
        "sqFullPersist");
    stallCycles.subname(static_cast<unsigned>(StallCause::SqFullMemory),
                        "sqFullMemory");
    stallCycles.subname(
        static_cast<unsigned>(StallCause::PersistQueueFull), "pqFull");
    stallCycles.subname(static_cast<unsigned>(StallCause::Lock), "lock");
    stallCycles.subname(static_cast<unsigned>(StallCause::Idle), "idle");

    StoreQueueView view;
    view.completed = [this](SeqNum seq) {
        return !incompleteStores.contains(seq);
    };
    view.issued = [this](SeqNum seq) {
        return !unissuedStores.contains(seq);
    };
    view.allCompletedBefore = [this](SeqNum seq) {
        return incompleteStores.empty() ||
               *incompleteStores.begin() >= seq;
    };
    view.allIssuedBefore = [this](SeqNum seq) {
        return unissuedStores.empty() || *unissuedStores.begin() >= seq;
    };
    view.oldestIncompleteStore = [this] {
        return incompleteStores.empty() ? ~static_cast<SeqNum>(0)
                                        : *incompleteStores.begin();
    };
    this->engine->setStoreView(std::move(view));

    // Write-back and snoop interlocks capture this core's persist
    // drain points (§IV).
    hier.setDrainPointRecorder(id, [this] {
        return this->engine->recordDrainPoint();
    });
    // Anything that can unblock the core re-arms its clock.
    this->engine->setWakeCallback([this] { wake(); });
    locks.addReleaseObserver([this] { wake(); });

    port.init(eq, fullName() + ".port");
    port.bind(hier);
    port.setResponseHandler(
        [this](const MemResponse &resp) { onMemResponse(resp); });

    tickEvent.init(eq, [this] { tick(); }, EventPriority::CpuTick);
}

void
Core::onMemResponse(const MemResponse &resp)
{
    const SeqNum seq = resp.token;
    switch (resp.req) {
      case MemRequestKind::Load:
        if (resp.kind == MemResponseKind::Nack) {
            // No MSHR was free: clear the issue mark and retry from
            // the next cycle.
            for (LqEntry &e : loadQueue) {
                if (e.seq == seq) {
                    e.issued = false;
                    break;
                }
            }
            wake();
            return;
        }
        for (LqEntry &e : loadQueue) {
            if (e.seq == seq) {
                e.completed = true;
                break;
            }
        }
        markRobDone(seq);
        while (!loadQueue.empty() && loadQueue.front().completed)
            loadQueue.pop_front();
        ++workDone;
        wake();
        return;
      case MemRequestKind::Store:
        switch (resp.kind) {
          case MemResponseKind::Ack:
            // Admitted: the next store may go into the mail.
            storeDecisionPending = false;
            for (SqEntry &e : storeQueue) {
                if (e.seq == seq) {
                    e.issued = true;
                    break;
                }
            }
            unissuedStores.erase(seq);
            ++storesIssued;
            ++workDone;
            wake();
            return;
          case MemResponseKind::Nack:
            // No MSHR was free: the entry returns to the unsent pool
            // and is remailed once the core ticks again.
            storeDecisionPending = false;
            for (SqEntry &e : storeQueue) {
                if (e.seq == seq) {
                    e.sent = false;
                    break;
                }
            }
            wake();
            return;
          case MemResponseKind::Done:
            for (SqEntry &e : storeQueue) {
                if (e.seq == seq) {
                    e.completed = true;
                    break;
                }
            }
            incompleteStores.erase(seq);
            drainStoreQueue();
            ++workDone;
            wake();
            return;
          default:
            break;
        }
        break;
      default:
        break;
    }
    panic("{}: unexpected memory response kind", fullName());
}

void
Core::wake()
{
    if (!started || isFinished || !sleeping)
        return;
    sleeping = false;
    tickEvent.schedule(clockEdge(Cycles(1)));
}

void
Core::setStream(OpStream newStream)
{
    panicIf(started && !isFinished, "stream replaced while running");
    stream = std::move(newStream);
    pc = 0;
    isFinished = false;
    started = false;
}

void
Core::start()
{
    panicIf(started, "core started twice");
    started = true;
    tickEvent.schedule(clockEdge());
}

void
Core::saveState(SimSnapshot &snap) const
{
    Snapshot s;
    s.pc = pc;
    s.nextSeq = nextSeq;
    s.rob = rob;
    s.storeQueue = storeQueue;
    s.loadQueue = loadQueue;
    s.unissuedStores = unissuedStores;
    s.incompleteStores = incompleteStores;
    s.pendingReleases = pendingReleases;
    s.storeDecisionPending = storeDecisionPending;
    s.computeBusyUntil = computeBusyUntil;
    s.stallReason = stallReason;
    s.isFinished = isFinished;
    s.started = started;
    s.sleeping = sleeping;
    s.sleptSince = sleptSince;
    s.sleepCause = sleepCause;
    s.workDone = workDone;
    snap.put(snapshotName(), s);
    engine->saveState(snap);
}

void
Core::restoreState(const SimSnapshot &snap)
{
    const Snapshot &s = snap.get<Snapshot>(snapshotName());
    pc = s.pc;
    nextSeq = s.nextSeq;
    rob = s.rob;
    storeQueue = s.storeQueue;
    loadQueue = s.loadQueue;
    unissuedStores = s.unissuedStores;
    incompleteStores = s.incompleteStores;
    pendingReleases = s.pendingReleases;
    storeDecisionPending = s.storeDecisionPending;
    computeBusyUntil = s.computeBusyUntil;
    stallReason = s.stallReason;
    isFinished = s.isFinished;
    started = s.started;
    sleeping = s.sleeping;
    sleptSince = s.sleptSince;
    sleepCause = s.sleepCause;
    workDone = s.workDone;
    engine->restoreState(snap);
}

double
Core::persistStallCycles() const
{
    return stallCycles.value(
               static_cast<unsigned>(StallCause::SqFullPersist)) +
           stallCycles.value(
               static_cast<unsigned>(StallCause::PersistQueueFull));
}

SeqNum
Core::elderStoreTo(Addr addr) const
{
    Addr la = lineAlign(addr);
    SeqNum youngest = 0;
    for (const SqEntry &entry : storeQueue) {
        if (!entry.completed && lineAlign(entry.addr) == la)
            youngest = entry.seq;
    }
    return youngest;
}

void
Core::recordStall(StallCause cause)
{
    stallReason = cause;
}

namespace
{

PrimitiveKind
primitiveKindOf(OpType type)
{
    switch (type) {
      case OpType::Clwb:
        return PrimitiveKind::Clwb;
      case OpType::PersistBarrier:
      case OpType::Sfence:
      case OpType::Ofence:
        return PrimitiveKind::Barrier;
      case OpType::NewStrand:
        return PrimitiveKind::NewStrand;
      case OpType::JoinStrand:
      case OpType::Dfence:
        return PrimitiveKind::JoinStrand;
      default:
        return PrimitiveKind::Other;
    }
}

} // namespace

void
Core::notifyDispatch(const Op &op, SeqNum seq)
{
    if (!obsHub || !obsHub->active())
        return;
    const std::uint8_t intents = effectiveIntents(op);
    if (op.type != OpType::Clwb && intents == 0)
        return;
    PrimitiveEvent ev;
    ev.core = coreId;
    ev.kind = primitiveKindOf(op.type);
    ev.seq = seq;
    ev.lineAddr = op.type == OpType::Clwb ? lineAlign(op.addr) : 0;
    ev.when = curTick();
    ev.intents = intents;
    obsHub->primitiveDispatched(ev);
}

bool
Core::dispatchOne(const Op &op)
{
    if (rob.size() >= params.robEntries) {
        recordStall(StallCause::RobFull);
        return false;
    }

    bool sharedSq = engine->sharesStoreQueue();
    std::size_t sqUsed =
        storeQueue.size() + (sharedSq ? engine->queueOccupancy() : 0);

    switch (op.type) {
      case OpType::Load: {
        if (loadQueue.size() >= params.lqEntries) {
            recordStall(StallCause::LqFull);
            return false;
        }
        SeqNum seq = nextSeq++;
        rob.push_back({seq, false});
        loadQueue.push_back({seq, op.addr, false, false});
        notifyDispatch(op, seq);
        return true;
      }
      case OpType::Store: {
        if (sqUsed >= params.sqEntries) {
            // Attribute the back-pressure: is the oldest store that
            // has not yet issued held by the persist engine, or is
            // the queue draining at memory speed?
            bool persistGated = false;
            for (const SqEntry &entry : storeQueue) {
                if (entry.issued)
                    continue;
                persistGated = !engine->storeMayIssue(entry.seq);
                break;
            }
            recordStall(persistGated ? StallCause::SqFullPersist
                                     : StallCause::SqFullMemory);
            return false;
        }
        SeqNum seq = nextSeq++;
        rob.push_back({seq, true}); // retires into the SQ
        storeQueue.push_back({seq, op.addr, op.value, false, false});
        unissuedStores.insert(seq);
        incompleteStores.insert(seq);
        notifyDispatch(op, seq);
        return true;
      }
      case OpType::Clwb:
      case OpType::PersistBarrier:
      case OpType::NewStrand:
      case OpType::JoinStrand:
      case OpType::Sfence:
      case OpType::Ofence:
      case OpType::Dfence: {
        if (!engine->canAccept() ||
            (sharedSq && sqUsed >= params.sqEntries)) {
            recordStall(StallCause::PersistQueueFull);
            return false;
        }
        SeqNum seq = nextSeq++;
        rob.push_back({seq, true});
        SeqNum elder =
            op.type == OpType::Clwb ? elderStoreTo(op.addr) : 0;
        // Announce before handing to the engine: a primitive that
        // completes within dispatch still observes dispatch-before-
        // retirement order.
        notifyDispatch(op, seq);
        engine->dispatch(op, seq, elder);
        return true;
      }
      case OpType::Compute: {
        // Application work occupies the front end serially (a trace
        // has no registers to rename, so ILP within recorded compute
        // is already folded into its latency). Memory operations
        // issued earlier keep draining in the background.
        SeqNum seq = nextSeq++;
        rob.push_back({seq, true});
        Tick delay = cyclesToTicks(Cycles(std::max<std::uint32_t>(
            op.latency, 1)));
        computeBusyUntil = curTick() + delay;
        eq.scheduleIn(delay, [this] { wake(); },
                      EventPriority::CpuTick);
        notifyDispatch(op, seq);
        return true;
      }
      case OpType::LockAcquire: {
        if (!locks.tryAcquire(op.lockId, op.ticket)) {
            recordStall(StallCause::Lock);
            return false;
        }
        SeqNum seq = nextSeq++;
        rob.push_back({seq, false});
        Tick delay = cyclesToTicks(Cycles(params.lockAcquireCycles));
        eq.scheduleIn(delay, [this, seq] { markRobDone(seq); },
                      EventPriority::CpuTick);
        notifyDispatch(op, seq);
        return true;
      }
      case OpType::LockRelease: {
        // Program order: the unlock executes only after the critical
        // section's in-flight work (loads, compute) has finished.
        for (const RobEntry &entry : rob) {
            if (!entry.done) {
                recordStall(StallCause::Lock);
                return false;
            }
        }
        // The releasing core continues immediately (the release is
        // just a store into its queue); the lock hands off only once
        // prior stores are visible and any preceding drain primitive
        // (JS / SFENCE / dfence) has completed — so persist ordering
        // extends lock hold time, not the releaser's pipeline.
        SeqNum seq = nextSeq++;
        rob.push_back({seq, false});
        pendingReleases.push_back({op.lockId, seq});
        Tick delay = cyclesToTicks(Cycles(params.lockReleaseCycles));
        eq.scheduleIn(delay, [this, seq] { markRobDone(seq); },
                      EventPriority::CpuTick);
        notifyDispatch(op, seq);
        return true;
      }
    }
    panic("unhandled op type in dispatch");
}

void
Core::dispatchOps()
{
    stallReason = StallCause::None;
    if (curTick() < computeBusyUntil)
        return; // executing serial application work
    unsigned dispatched = 0;
    while (dispatched < params.dispatchWidth && pc < stream.size()) {
        if (!dispatchOne(stream[pc]))
            break;
        ++pc;
        ++dispatched;
        ++opsDispatched;
        if (curTick() < computeBusyUntil)
            break; // a compute op consumed the rest of this window
    }
    if (dispatched == 0 && pc < stream.size() &&
        stallReason != StallCause::None) {
        stallCycles[static_cast<unsigned>(stallReason)] += 1;
    }
}

void
Core::drainStoreQueue()
{
    while (!storeQueue.empty() && storeQueue.front().completed &&
           engine->oldestIncompleteSeq() > storeQueue.front().seq) {
        storeQueue.pop_front();
    }
}

void
Core::issueStores()
{
    // One store issue per cycle (single L1 store port); issue stays
    // in order, completions may overlap through MSHRs. In the
    // NO-PERSIST-QUEUE design the port is shared with persist-op
    // drain, so a cycle that issued a persist op issues no store.
    if (engine->portBusy())
        return;
    // Admission is asynchronous now: while an elder store's Ack/Nack
    // is outstanding no younger store may go into the mail, or a
    // Nacked elder could be overtaken and acceptance would leave
    // program order.
    if (storeDecisionPending)
        return;
    for (SqEntry &entry : storeQueue) {
        if (entry.sent || entry.issued)
            continue;
        if (!engine->storeMayIssue(entry.seq))
            return;
        entry.sent = true;
        storeDecisionPending = true;
        MemRequest req;
        req.kind = MemRequestKind::Store;
        req.core = coreId;
        req.addr = entry.addr;
        req.value = entry.value;
        req.token = entry.seq;
        port.send(std::move(req));
        return;
    }
}

void
Core::issueLoads()
{
    // Up to two load issues per cycle. Loads need no acceptance
    // ordering between each other; a Nack simply clears the issue
    // mark and the entry is remailed.
    unsigned issued = 0;
    for (LqEntry &entry : loadQueue) {
        if (issued >= 2)
            break;
        if (entry.issued)
            continue;
        entry.issued = true;
        ++loadsIssued;
        ++issued;
        MemRequest req;
        req.kind = MemRequestKind::Load;
        req.core = coreId;
        req.addr = entry.addr;
        req.token = entry.seq;
        port.send(std::move(req));
    }
}

void
Core::markRobDone(SeqNum seq)
{
    for (RobEntry &entry : rob) {
        if (entry.seq == seq) {
            entry.done = true;
            ++workDone;
            wake();
            return;
        }
    }
}

void
Core::serviceReleases()
{
    while (!pendingReleases.empty()) {
        const PendingRelease &head = pendingReleases.front();
        bool storesVisible = incompleteStores.empty() ||
                             *incompleteStores.begin() >= head.seq;
        if (!storesVisible || !engine->storeMayIssue(head.seq))
            return;
        locks.release(head.lockId);
        pendingReleases.pop_front();
    }
}

void
Core::commitOps()
{
    unsigned committed = 0;
    while (committed < params.commitWidth && !rob.empty() &&
           rob.front().done) {
        rob.pop_front();
        ++committed;
        ++opsCommitted;
    }
}

void
Core::tick()
{
    // Account a completed sleep period as stall cycles of the cause
    // that sent the core to sleep (Figure 8 accounting is preserved
    // even though idle cycles are skipped, not simulated).
    if (sleptSince != 0) {
        std::uint64_t slept =
            (curTick() - sleptSince) / clockPeriod();
        numCycles += static_cast<double>(slept);
        stallCycles[static_cast<unsigned>(sleepCause)] +=
            static_cast<double>(slept);
        sleptSince = 0;
    }
    ++numCycles;
    engine->beginCycle();

    double dispatchedBefore = opsDispatched.value();
    double committedBefore = opsCommitted.value();
    double storesBefore = storesIssued.value();
    double loadsBefore = loadsIssued.value();
    std::uint64_t engineBefore = engine->progressCount();
    std::uint64_t workBefore = workDone;

    engine->evaluate();
    drainStoreQueue();
    serviceReleases();
    issueLoads();
    issueStores();
    commitOps();
    dispatchOps();
    sqOccupancy.sample(static_cast<double>(storeQueue.size()));

    bool drained = pc >= stream.size() && rob.empty() &&
                   storeQueue.empty() && loadQueue.empty() &&
                   pendingReleases.empty() && engine->drained();
    if (drained) {
        isFinished = true;
        if (finishedCallback)
            finishedCallback();
        return;
    }

    bool progressed = opsDispatched.value() != dispatchedBefore ||
                      opsCommitted.value() != committedBefore ||
                      storesIssued.value() != storesBefore ||
                      loadsIssued.value() != loadsBefore ||
                      engine->progressCount() != engineBefore ||
                      workDone != workBefore;
    if (progressed) {
        tickEvent.reschedule(clockPeriod());
        return;
    }

    // No progress this cycle: sleep until a completion, lock
    // release, engine step, or hierarchy kick re-arms the clock. A
    // missed wake surfaces as an explicit deadlock panic when the
    // event queue drains, never as silent time skew.
    sleeping = true;
    sleptSince = curTick();
    sleepCause = stallReason == StallCause::None ? StallCause::Idle
                                                 : stallReason;
}

} // namespace strand
