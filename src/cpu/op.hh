/**
 * @file
 * The ISA-level operation stream executed by the core timing model.
 *
 * Workload region traces are lowered (per hardware design and
 * language-level persistency model) into streams of these
 * operations. Persist-ordering primitives cover every design studied
 * in the paper: CLWB plus SFENCE (Intel x86), ofence/dfence (HOPS),
 * and persist barrier / NewStrand / JoinStrand (StrandWeaver).
 */

#ifndef CPU_OP_HH
#define CPU_OP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace strand
{

/** Operation kinds in a core's instruction stream. */
enum class OpType : std::uint8_t
{
    Load,           ///< Read a word (address in @c addr).
    Store,          ///< Write @c value to @c addr.
    Clwb,           ///< Flush the line of @c addr toward PM.
    PersistBarrier, ///< StrandWeaver: order persists within a strand.
    NewStrand,      ///< StrandWeaver: begin a new strand.
    JoinStrand,     ///< StrandWeaver: merge prior strands.
    Sfence,         ///< Intel x86: order stores/CLWBs on completion.
    Ofence,         ///< HOPS: lightweight ordering fence (delegated).
    Dfence,         ///< HOPS: durability fence (drain persist buffer).
    Compute,        ///< Busy the pipeline for @c latency cycles.
    LockAcquire,    ///< Acquire lock @c lockId at recorded @c ticket.
    LockRelease,    ///< Release lock @c lockId.
};

/** @return a short mnemonic for tracing. */
const char *opTypeName(OpType type);

/** @return true for ops handled by the persist engine. */
constexpr bool
isPersistOp(OpType type)
{
    switch (type) {
      case OpType::Clwb:
      case OpType::PersistBarrier:
      case OpType::NewStrand:
      case OpType::JoinStrand:
      case OpType::Sfence:
      case OpType::Ofence:
      case OpType::Dfence:
        return true;
      default:
        return false;
    }
}

/** One operation in a thread's stream. */
struct Op
{
    OpType type = OpType::Compute;
    Addr addr = 0;
    std::uint64_t value = 0;
    /** Compute ops: busy cycles. */
    std::uint32_t latency = 1;
    /** Lock ops: which lock and this thread's recorded turn. */
    std::uint32_t lockId = 0;
    std::uint64_t ticket = 0;

    static Op
    load(Addr addr)
    {
        return {OpType::Load, addr, 0, 1, 0, 0};
    }

    static Op
    store(Addr addr, std::uint64_t value)
    {
        return {OpType::Store, addr, value, 1, 0, 0};
    }

    static Op
    clwb(Addr addr)
    {
        return {OpType::Clwb, addr, 0, 1, 0, 0};
    }

    static Op
    persistBarrier()
    {
        return {OpType::PersistBarrier, 0, 0, 1, 0, 0};
    }

    static Op
    newStrand()
    {
        return {OpType::NewStrand, 0, 0, 1, 0, 0};
    }

    static Op
    joinStrand()
    {
        return {OpType::JoinStrand, 0, 0, 1, 0, 0};
    }

    static Op
    sfence()
    {
        return {OpType::Sfence, 0, 0, 1, 0, 0};
    }

    static Op
    ofence()
    {
        return {OpType::Ofence, 0, 0, 1, 0, 0};
    }

    static Op
    dfence()
    {
        return {OpType::Dfence, 0, 0, 1, 0, 0};
    }

    static Op
    compute(std::uint32_t cycles)
    {
        return {OpType::Compute, 0, 0, cycles, 0, 0};
    }

    static Op
    lockAcquire(std::uint32_t lockId, std::uint64_t ticket)
    {
        return {OpType::LockAcquire, 0, 0, 1, lockId, ticket};
    }

    static Op
    lockRelease(std::uint32_t lockId)
    {
        return {OpType::LockRelease, 0, 0, 1, lockId, 0};
    }
};

/** A per-thread sequence of operations. */
using OpStream = std::vector<Op>;

} // namespace strand

#endif // CPU_OP_HH
