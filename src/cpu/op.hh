/**
 * @file
 * The ISA-level operation stream executed by the core timing model.
 *
 * Workload region traces are lowered (per hardware design and
 * language-level persistency model) into streams of these
 * operations. Persist-ordering primitives cover every design studied
 * in the paper: CLWB plus SFENCE (Intel x86), ofence/dfence (HOPS),
 * and persist barrier / NewStrand / JoinStrand (StrandWeaver).
 */

#ifndef CPU_OP_HH
#define CPU_OP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace strand
{

/** Operation kinds in a core's instruction stream. */
enum class OpType : std::uint8_t
{
    Load,           ///< Read a word (address in @c addr).
    Store,          ///< Write @c value to @c addr.
    Clwb,           ///< Flush the line of @c addr toward PM.
    PersistBarrier, ///< StrandWeaver: order persists within a strand.
    NewStrand,      ///< StrandWeaver: begin a new strand.
    JoinStrand,     ///< StrandWeaver: merge prior strands.
    Sfence,         ///< Intel x86: order stores/CLWBs on completion.
    Ofence,         ///< HOPS: lightweight ordering fence (delegated).
    Dfence,         ///< HOPS: durability fence (drain persist buffer).
    Compute,        ///< Busy the pipeline for @c latency cycles.
    LockAcquire,    ///< Acquire lock @c lockId at recorded @c ticket.
    LockRelease,    ///< Release lock @c lockId.
};

/** @return a short mnemonic for tracing. */
const char *opTypeName(OpType type);

/**
 * Design-independent persist-ordering intents, as bits. The lowering
 * annotates each op with the strand-persistency ordering the source
 * program *means* at that point — even when the target design emits
 * no hardware primitive for it (e.g. Intel x86 has no NewStrand op,
 * so the intent rides on the next lowered op). Intents apply
 * immediately before the op, in NewStrand, Join, Barrier order.
 * PMO-san reconstructs the intended PMO relation from these bits and
 * checks the hardware's actual admission order against it.
 */
constexpr std::uint8_t kIntentBarrier = 1;
constexpr std::uint8_t kIntentNewStrand = 2;
constexpr std::uint8_t kIntentJoin = 4;

/** @return true for ops handled by the persist engine. */
constexpr bool
isPersistOp(OpType type)
{
    switch (type) {
      case OpType::Clwb:
      case OpType::PersistBarrier:
      case OpType::NewStrand:
      case OpType::JoinStrand:
      case OpType::Sfence:
      case OpType::Ofence:
      case OpType::Dfence:
        return true;
      default:
        return false;
    }
}

/** One operation in a thread's stream. */
struct Op
{
    OpType type = OpType::Compute;
    Addr addr = 0;
    std::uint64_t value = 0;
    /** Compute ops: busy cycles. */
    std::uint32_t latency = 1;
    /** Lock ops: which lock and this thread's recorded turn. */
    std::uint32_t lockId = 0;
    std::uint64_t ticket = 0;
    /**
     * Explicit kIntent* bits (set by the lowering). Zero means "use
     * the op type's intrinsic intents" — see effectiveIntents().
     * Non-zero overrides the intrinsic value: a NewStrand op lowered
     * purely as a barrier replacement (NON-ATOMIC pair ordering)
     * carries kIntentBarrier, not its intrinsic NewStrand intent.
     */
    std::uint8_t intents = 0;

    static Op
    load(Addr addr)
    {
        return {OpType::Load, addr, 0, 1, 0, 0};
    }

    static Op
    store(Addr addr, std::uint64_t value)
    {
        return {OpType::Store, addr, value, 1, 0, 0};
    }

    static Op
    clwb(Addr addr)
    {
        return {OpType::Clwb, addr, 0, 1, 0, 0};
    }

    static Op
    persistBarrier()
    {
        return {OpType::PersistBarrier, 0, 0, 1, 0, 0};
    }

    static Op
    newStrand()
    {
        return {OpType::NewStrand, 0, 0, 1, 0, 0};
    }

    static Op
    joinStrand()
    {
        return {OpType::JoinStrand, 0, 0, 1, 0, 0};
    }

    static Op
    sfence()
    {
        return {OpType::Sfence, 0, 0, 1, 0, 0};
    }

    static Op
    ofence()
    {
        return {OpType::Ofence, 0, 0, 1, 0, 0};
    }

    static Op
    dfence()
    {
        return {OpType::Dfence, 0, 0, 1, 0, 0};
    }

    static Op
    compute(std::uint32_t cycles)
    {
        return {OpType::Compute, 0, 0, cycles, 0, 0};
    }

    static Op
    lockAcquire(std::uint32_t lockId, std::uint64_t ticket)
    {
        return {OpType::LockAcquire, 0, 0, 1, lockId, ticket};
    }

    static Op
    lockRelease(std::uint32_t lockId)
    {
        return {OpType::LockRelease, 0, 0, 1, lockId, 0};
    }
};

/**
 * Intrinsic persist-ordering intents of an op type: what the
 * primitive means under the design that natively uses it. SFENCE is
 * both a barrier and a drain point on Intel; dfence is HOPS's drain.
 */
constexpr std::uint8_t
intrinsicIntents(OpType type)
{
    switch (type) {
      case OpType::PersistBarrier:
      case OpType::Ofence:
        return kIntentBarrier;
      case OpType::Sfence:
        return kIntentBarrier | kIntentJoin;
      case OpType::NewStrand:
        return kIntentNewStrand;
      case OpType::JoinStrand:
      case OpType::Dfence:
        return kIntentJoin;
      default:
        return 0;
    }
}

/** @return the op's explicit intents, or the type's intrinsic ones
 *  when the lowering left the field at zero. */
constexpr std::uint8_t
effectiveIntents(const Op &op)
{
    return op.intents ? op.intents : intrinsicIntents(op.type);
}

/** A per-thread sequence of operations. */
using OpStream = std::vector<Op>;

} // namespace strand

#endif // CPU_OP_HH
