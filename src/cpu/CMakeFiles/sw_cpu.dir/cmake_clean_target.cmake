file(REMOVE_RECURSE
  "libsw_cpu.a"
)
