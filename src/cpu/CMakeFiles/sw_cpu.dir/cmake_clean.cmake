file(REMOVE_RECURSE
  "CMakeFiles/sw_cpu.dir/core.cc.o"
  "CMakeFiles/sw_cpu.dir/core.cc.o.d"
  "CMakeFiles/sw_cpu.dir/op.cc.o"
  "CMakeFiles/sw_cpu.dir/op.cc.o.d"
  "libsw_cpu.a"
  "libsw_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
