# Empty dependencies file for sw_cpu.
# This may be replaced when dependencies are built.
