/**
 * @file
 * Ticketed lock table used to replay recorded lock acquisition
 * order.
 *
 * Workloads execute functionally first; each acquire in the trace
 * records the ticket (per-lock acquisition index) it obtained. During
 * timing replay, an acquire with ticket t succeeds only when all
 * earlier ticket holders have released, reproducing the recorded
 * inter-thread serialization (and hence contention) faithfully on
 * every hardware design.
 */

#ifndef CPU_LOCK_TABLE_HH
#define CPU_LOCK_TABLE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"

namespace strand
{

/** Shared ticketed lock table. */
class LockTable
{
  public:
    /** Per-lock state (plain data; snapshot support copies it). */
    struct Lock
    {
        bool held = false;
        std::uint64_t nextTicket = 0;
    };

    /**
     * Attempt to acquire @p lockId with @p ticket.
     * @return true on success; false if earlier holders still exist.
     */
    bool
    tryAcquire(std::uint32_t lockId, std::uint64_t ticket)
    {
        Lock &lock = locks[lockId];
        if (lock.held || lock.nextTicket != ticket)
            return false;
        lock.held = true;
        return true;
    }

    /** Release @p lockId, passing it to the next ticket holder. */
    void
    release(std::uint32_t lockId)
    {
        Lock &lock = locks[lockId];
        panicIf(!lock.held, "release of un-held lock {}", lockId);
        lock.held = false;
        ++lock.nextTicket;
        for (auto &observer : releaseObservers)
            observer();
    }

    /** Register a callback invoked after every release (used to wake
     * cores spinning on an acquire). */
    void
    addReleaseObserver(std::function<void()> observer)
    {
        releaseObservers.push_back(std::move(observer));
    }

    /** @return true if @p lockId is currently held. */
    bool
    held(std::uint32_t lockId) const
    {
        auto it = locks.find(lockId);
        return it != locks.end() && it->second.held;
    }

    /** Tickets granted so far for @p lockId. */
    std::uint64_t
    nextTicket(std::uint32_t lockId) const
    {
        auto it = locks.find(lockId);
        return it == locks.end() ? 0 : it->second.nextTicket;
    }

    /** Copy the full lock map (snapshot support). */
    std::unordered_map<std::uint32_t, Lock>
    snapshotLocks() const
    {
        return locks;
    }

    /** Replace the lock map with a captured copy. Observers stay. */
    void
    restoreLocks(std::unordered_map<std::uint32_t, Lock> state)
    {
        locks = std::move(state);
    }

  private:
    std::unordered_map<std::uint32_t, Lock> locks;
    std::vector<std::function<void()>> releaseObservers;
};

} // namespace strand

#endif // CPU_LOCK_TABLE_HH
