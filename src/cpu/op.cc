#include "cpu/op.hh"

namespace strand
{

const char *
opTypeName(OpType type)
{
    switch (type) {
      case OpType::Load:
        return "LD";
      case OpType::Store:
        return "ST";
      case OpType::Clwb:
        return "CLWB";
      case OpType::PersistBarrier:
        return "PB";
      case OpType::NewStrand:
        return "NS";
      case OpType::JoinStrand:
        return "JS";
      case OpType::Sfence:
        return "SFENCE";
      case OpType::Ofence:
        return "OFENCE";
      case OpType::Dfence:
        return "DFENCE";
      case OpType::Compute:
        return "COMP";
      case OpType::LockAcquire:
        return "LOCK";
      case OpType::LockRelease:
        return "UNLOCK";
    }
    return "?";
}

} // namespace strand
