#include "cache/hierarchy.hh"

#include <algorithm>

#include "fuzz/adversary.hh"

namespace strand
{

Hierarchy::Hierarchy(std::string name, EventQueue &eq, MemoryImage &image,
                     unsigned numCores, const HierarchyParams &params,
                     MemController &pmCtrl, MemController &dramCtrl,
                     stats::StatGroup *parent)
    : SimObject(std::move(name), eq, parent),
      // The tag-only hierarchy is one monolithic component that
      // anchors the shared PDES domain; cores reach it exclusively
      // through latency-carrying MemPorts, so its MSHR state is only
      // ever mutated from the shared domain's own event stream.
      loadHits(this, "loadHits", "L1 load hits"),
      loadMisses(this, "loadMisses", "L1 load misses"),
      storeHits(this, "storeHits", "L1 store hits (owned line)"),
      storeMisses(this, "storeMisses", "L1 store misses (RFO)"),
      upgrades(this, "upgrades", "S->M upgrade transactions"),
      cacheToCache(this, "cacheToCache", "L1-to-L1 transfers"),
      l1Writebacks(this, "l1Writebacks", "dirty L1 evictions"),
      l2Evictions(this, "l2Evictions", "dirty L2 evictions to memory"),
      flushesDirty(this, "flushesDirty", "CLWB flushes that wrote PM"),
      flushesClean(this, "flushesClean", "CLWB flushes of clean lines"),
      snoopStalls(this, "snoopStalls",
                  "read-exclusive snoops stalled on persist drain"),
      writebackStalls(this, "writebackStalls",
                      "fills stalled on a full write-back buffer"),
      image(image), params(params), pmCtrl(pmCtrl), dramCtrl(dramCtrl),
      l2(params.l2Size, params.l2Ways)
{
    fatalIf(numCores == 0, "hierarchy needs at least one core");
    cores.reserve(numCores);
    for (unsigned i = 0; i < numCores; ++i) {
        cores.emplace_back(params);
        cores.back().mshrLimit = params.l1Mshrs;
    }
    pmCtrl.addRetryCallback([this] { scheduleKick(); });
    dramCtrl.addRetryCallback([this] { scheduleKick(); });
    kickEvent.init(eq, [this] { kick(); }, EventPriority::Default);
    retryKick = [this] { scheduleKick(); };

    pmPort.init(eq, fullName() + ".pmPort");
    pmPort.bind(pmCtrl);
    pmPort.setResponseHandler(
        [this](const MemResponse &resp) { onControllerResponse(resp); });
    dramPort.init(eq, fullName() + ".dramPort");
    dramPort.bind(dramCtrl);
    dramPort.setResponseHandler(
        [this](const MemResponse &resp) { onControllerResponse(resp); });
}

MemPort &
Hierarchy::portFor(Addr addr)
{
    return isPersistentAddr(addr) ? pmPort : dramPort;
}

void
Hierarchy::sendToController(PacketPtr pkt)
{
    MemRequest req;
    req.kind = MemRequestKind::Packet;
    req.core = pkt->requester;
    req.addr = pkt->addr;
    req.pkt = pkt;
    portFor(req.addr).send(std::move(req));
}

Hierarchy::Clearance
Hierarchy::recordDrainPoint(CoreId core)
{
    if (!params.persistInterlocks)
        return {};
    auto &recorder = cores.at(core).recorder;
    return recorder ? recorder() : Clearance{};
}

void
Hierarchy::park(std::function<bool()> attempt)
{
    parked.push_back({std::move(attempt)});
    scheduleKick();
}

void
Hierarchy::scheduleKick()
{
    if (kickEvent.scheduled())
        return;
    kickEvent.schedule(curTick());
}

void
Hierarchy::kick()
{
    drainWritebacks();
    drainL2Evicts();
    drainAllLineWrites();
    // Retry parked transactions in arrival order; anything still
    // blocked goes back on the list.
    std::deque<Parked> work;
    work.swap(parked);
    for (auto &item : work) {
        if (!item.attempt())
            parked.push_back(std::move(item));
    }
}

void
Hierarchy::prewarmL2(Addr start, Addr end)
{
    for (Addr la = lineAlign(start); la < end; la += lineBytes) {
        if (l2.findLine(la))
            continue;
        CacheLineInfo &victim = l2.victimFor(la);
        // Warm-up only targets an empty cache; skip on conflict
        // rather than evicting real state.
        if (victim.valid())
            continue;
        l2.install(victim, la, CoherenceState::Shared);
    }
}

// ---------------------------------------------------------------------
// CPU-side interface (port request servicing)
// ---------------------------------------------------------------------

void
Hierarchy::handleRequest(MemPort &port, const MemRequest &req)
{
    // The port outlives every in-flight message (both are owned by
    // permanent components), so capturing its address in completion
    // closures is snapshot-safe.
    MemPort *reply = &port;
    const std::uint64_t token = req.token;
    switch (req.kind) {
    case MemRequestKind::Load: {
        bool accepted = startLoad(req.core, req.addr, [reply, token] {
            reply->respond({MemRequestKind::Load, MemResponseKind::Done,
                            token});
        });
        if (!accepted)
            port.respond({MemRequestKind::Load, MemResponseKind::Nack,
                          token});
        return;
    }
    case MemRequestKind::Store: {
        bool accepted =
            startStore(req.core, req.addr, req.value, [reply, token] {
                reply->respond({MemRequestKind::Store,
                                MemResponseKind::Done, token});
            });
        // The admission decision always goes back explicitly: Ack so
        // the requester may issue its next store, Nack to retry this
        // one. Completion (Done) follows an Ack strictly later —
        // the L1 latency exceeds any port leg.
        port.respond({MemRequestKind::Store,
                      accepted ? MemResponseKind::Ack
                               : MemResponseKind::Nack,
                      token});
        return;
    }
    case MemRequestKind::Flush: {
        startFlush(
            req.core, req.addr,
            [reply, token](bool wrotePm) {
                MemResponse resp{MemRequestKind::Flush,
                                 MemResponseKind::Done, token};
                resp.wrotePm = wrotePm;
                reply->respond(std::move(resp));
            },
            [reply, token] {
                reply->respond({MemRequestKind::Flush,
                                MemResponseKind::FlushStarted, token});
            });
        return;
    }
    case MemRequestKind::Kick:
        // Response-less doorbell: a persist engine's drain point
        // cleared after our own completion kick had already run.
        scheduleKick();
        return;
    case MemRequestKind::Packet:
        break;
    }
    panic("hierarchy cannot service request kind {}",
          static_cast<int>(req.kind));
}

bool
Hierarchy::startLoad(CoreId core, Addr addr, std::function<void()> onDone)
{
    Addr la = lineAlign(addr);
    L1 &l1 = cores.at(core);

    if (CacheLineInfo *line = l1.array.findLine(la)) {
        l1.array.touch(*line);
        ++loadHits;
        eq.scheduleIn(params.l1Latency, std::move(onDone),
                      EventPriority::MemoryResponse);
        return true;
    }

    auto it = l1.mshrs.find(la);
    if (it != l1.mshrs.end()) {
        // Merge with the outstanding miss; any fill satisfies a load.
        it->second.waiters.push_back(std::move(onDone));
        ++loadMisses;
        return true;
    }
    if (l1.mshrs.size() >= l1.mshrLimit)
        return false;

    ++loadMisses;
    auto &mshr = l1.mshrs[la];
    mshr.exclusive = false;
    mshr.waiters.push_back(std::move(onDone));
    ++activeTransactions;
    startMiss(core, la, false);
    return true;
}

bool
Hierarchy::startStore(CoreId core, Addr addr, std::uint64_t value,
                      std::function<void()> onDone)
{
    Addr la = lineAlign(addr);
    L1 &l1 = cores.at(core);
    CacheLineInfo *line = l1.array.findLine(la);

    if (line && (line->state == CoherenceState::Modified ||
                 line->state == CoherenceState::Exclusive)) {
        l1.array.touch(*line);
        ++storeHits;
        eq.scheduleIn(params.l1Latency,
                      [this, core, la, addr, value,
                       onDone = std::move(onDone)] {
            // Re-find: the line cannot have moved (no transaction can
            // run on it without an MSHR/busy entry, and owned lines
            // are only demoted by transactions).
            // The line can only vanish if an L2 replacement
            // back-invalidated it mid-store; treat it as a store that
            // squeaked in before the invalidation.
            if (CacheLineInfo *l = cores.at(core).array.findLine(la))
                l->state = CoherenceState::Modified;
            image.writeArch(addr, value);
            if (onDone)
                onDone();
        }, EventPriority::MemoryResponse);
        return true;
    }

    if (line && line->state == CoherenceState::Shared) {
        // Upgrade. Serialize against other transactions on the line.
        if (busyLines.contains(la))
            return false;
        busyLines.insert(la);
        ++upgrades;
        ++activeTransactions;
        eq.scheduleIn(params.l1Latency + params.snoopLatency,
                      [this, core, la, addr, value,
                       onDone = std::move(onDone)] {
            for (unsigned i = 0; i < cores.size(); ++i) {
                if (i != core)
                    cores[i].array.invalidate(la);
            }
            // Tolerate an L2 back-invalidation racing the upgrade.
            if (CacheLineInfo *l = cores.at(core).array.findLine(la))
                l->state = CoherenceState::Modified;
            image.writeArch(addr, value);
            busyLines.erase(la);
            --activeTransactions;
            if (onDone)
                onDone();
            scheduleKick();
        }, EventPriority::MemoryResponse);
        return true;
    }

    // Miss: RFO.
    auto it = l1.mshrs.find(la);
    if (it != l1.mshrs.end()) {
        if (!it->second.exclusive) {
            // A shared fill is in flight; retry once it lands and
            // take the upgrade path.
            return false;
        }
        it->second.waiters.push_back(
            [this, core, la, addr, value, onDone = std::move(onDone)] {
                if (CacheLineInfo *l = cores.at(core).array.findLine(la))
                    l->state = CoherenceState::Modified;
                image.writeArch(addr, value);
                if (onDone)
                    onDone();
            });
        ++storeMisses;
        return true;
    }
    if (l1.mshrs.size() >= l1.mshrLimit)
        return false;

    ++storeMisses;
    auto &mshr = l1.mshrs[la];
    mshr.exclusive = true;
    mshr.waiters.push_back(
        [this, core, la, addr, value, onDone = std::move(onDone)] {
            if (CacheLineInfo *l = cores.at(core).array.findLine(la))
                l->state = CoherenceState::Modified;
            image.writeArch(addr, value);
            if (onDone)
                onDone();
        });
    ++activeTransactions;
    startMiss(core, la, true);
    return true;
}

// ---------------------------------------------------------------------
// Miss handling
// ---------------------------------------------------------------------

void
Hierarchy::startMiss(CoreId core, Addr lineAddr, bool exclusive)
{
    if (busyLines.contains(lineAddr)) {
        park([this, core, lineAddr, exclusive] {
            if (busyLines.contains(lineAddr))
                return false;
            busyLines.insert(lineAddr);
            eq.scheduleIn(params.l1Latency, [this, core, lineAddr,
                                             exclusive] {
                serviceMiss(core, lineAddr, exclusive);
            }, EventPriority::MemoryResponse);
            return true;
        });
        return;
    }
    busyLines.insert(lineAddr);
    eq.scheduleIn(params.l1Latency, [this, core, lineAddr, exclusive] {
        serviceMiss(core, lineAddr, exclusive);
    }, EventPriority::MemoryResponse);
}

void
Hierarchy::serviceMiss(CoreId core, Addr lineAddr, bool exclusive)
{
    // 1. Snoop remote L1s for a dirty owner.
    for (unsigned i = 0; i < cores.size(); ++i) {
        if (i == core)
            continue;
        CacheLineInfo *remote = cores[i].array.findLine(lineAddr);
        if (!remote || remote->state != CoherenceState::Modified)
            continue;

        // Dirty remote owner. For read-exclusive requests the reply
        // stalls until the owner's persist engine drains past the
        // point recorded now (§IV, inter-thread persist order).
        Clearance clearance;
        if (exclusive)
            clearance = recordDrainPoint(i);

        auto transfer = [this, core, lineAddr, exclusive, i] {
            CacheLineInfo *owner = cores[i].array.findLine(lineAddr);
            ++cacheToCache;
            // A read-exclusive steal of a dirty PM line is a VMO
            // conflict edge: the old owner's earlier stores to the
            // line are ordered before the requester's later ones.
            if (obsHub && obsHub->active() && exclusive &&
                isPersistentAddr(lineAddr)) {
                obsHub->conflictEdge(
                    {lineAddr, i, core, curTick()});
            }
            if (exclusive) {
                if (owner)
                    cores[i].array.invalidate(lineAddr);
                // Ownership moves to the requester; the (inclusive)
                // L2 copy is stale and clean.
                if (CacheLineInfo *l2line = l2.findLine(lineAddr))
                    l2line->state = CoherenceState::Shared;
            } else {
                if (owner)
                    owner->state = CoherenceState::Shared;
                // The L2 absorbs the dirty data.
                if (CacheLineInfo *l2line = l2.findLine(lineAddr)) {
                    l2line->state = CoherenceState::Modified;
                } else {
                    // Inclusion was broken by an L2 eviction racing
                    // this transfer; fall back to a direct memory
                    // write-back of the fresh data.
                    queueL2Evict(lineAddr);
                }
            }
            eq.scheduleIn(params.l2Latency, [this, core, lineAddr,
                                             exclusive] {
                finishFill(core, lineAddr, exclusive,
                           exclusive ? CoherenceState::Exclusive
                                     : CoherenceState::Shared);
            }, EventPriority::MemoryResponse);
        };

        if (clearance && !clearance()) {
            ++snoopStalls;
            park([clearance, transfer] {
                if (!clearance())
                    return false;
                transfer();
                return true;
            });
        } else {
            eq.scheduleIn(params.snoopLatency, transfer,
                          EventPriority::MemoryResponse);
        }
        return;
    }

    // 2. Clean remote copies and the shared L2.
    eq.scheduleIn(params.snoopLatency + params.l2Latency,
                  [this, core, lineAddr, exclusive] {
        bool remoteCopies = false;
        for (unsigned i = 0; i < cores.size(); ++i) {
            if (i == core)
                continue;
            CacheLineInfo *remote = cores[i].array.findLine(lineAddr);
            if (!remote)
                continue;
            remoteCopies = true;
            if (exclusive)
                cores[i].array.invalidate(lineAddr);
            else if (remote->state == CoherenceState::Exclusive)
                remote->state = CoherenceState::Shared;
        }

        if (l2.findLine(lineAddr)) {
            CoherenceState fill;
            if (exclusive)
                fill = CoherenceState::Exclusive;
            else
                fill = remoteCopies ? CoherenceState::Shared
                                    : CoherenceState::Exclusive;
            finishFill(core, lineAddr, exclusive, fill);
            return;
        }

        // 3. Fetch from memory. The L2 MSHR is claimed before the
        // packet is mailed; a controller Nack keeps the claim and
        // remails the same packet once the controller signals space.
        auto fetch = [this, core, lineAddr, exclusive]() -> bool {
            if (l2MissesInFlight >= params.l2Mshrs)
                return false;
            auto pkt = makeReadPacket(
                lineAddr, core, exclusive,
                [this, core, lineAddr, exclusive] {
                    --l2MissesInFlight;
                    // Fill L2 (inclusive), then the L1.
                    park([this, core, lineAddr, exclusive] {
                        if (!installLineL2(lineAddr))
                            return false;
                        finishFill(core, lineAddr, exclusive,
                                   CoherenceState::Exclusive);
                        return true;
                    });
                });
            pkt->id = nextPacketId++;
            ++l2MissesInFlight;
            sendToController(std::move(pkt));
            return true;
        };
        if (!fetch())
            park(fetch);
    }, EventPriority::MemoryResponse);
}

void
Hierarchy::finishFill(CoreId core, Addr lineAddr, bool exclusive,
                      CoherenceState fillState)
{
    if (!installLine(core, lineAddr, fillState)) {
        // Victim write-back buffer full; retry when it drains.
        ++writebackStalls;
        park([this, core, lineAddr, exclusive, fillState] {
            if (!installLine(core, lineAddr, fillState))
                return false;
            finishFill(core, lineAddr, exclusive, fillState);
            return true;
        });
        return;
    }

    L1 &l1 = cores.at(core);
    auto it = l1.mshrs.find(lineAddr);
    panicIf(it == l1.mshrs.end(), "fill without MSHR");
    auto waiters = std::move(it->second.waiters);
    l1.mshrs.erase(it);
    busyLines.erase(lineAddr);
    --activeTransactions;
    for (auto &waiter : waiters)
        if (waiter)
            waiter();
    scheduleKick();
}

bool
Hierarchy::installLine(CoreId core, Addr lineAddr, CoherenceState state)
{
    L1 &l1 = cores.at(core);
    if (l1.array.findLine(lineAddr)) {
        // Already present (e.g. re-entered finishFill); just set state.
        l1.array.findLine(lineAddr)->state = state;
        return true;
    }
    CacheLineInfo &victim = l1.array.victimFor(lineAddr);
    if (victim.valid() && victim.dirty()) {
        if (l1.writebacks.full())
            return false;
        pushWriteback(core, victim.lineAddr);
    }
    if (victim.valid())
        victim.state = CoherenceState::Invalid;
    l1.array.install(victim, lineAddr, state);
    // Maintain inclusion: make sure the L2 tracks the line too. A
    // cache-to-cache or L2 fill already has it; memory fills insert
    // it in the fetch path. If it is somehow absent, add it cheaply.
    if (!l2.findLine(lineAddr))
        installLineL2(lineAddr);
    return true;
}

void
Hierarchy::pushWriteback(CoreId core, Addr lineAddr)
{
    L1 &l1 = cores.at(core);
    ++l1Writebacks;
    // Record the persist drain point at write-back initiation (§IV).
    Clearance clearance = recordDrainPoint(core);
    l1.writebacks.push(lineAddr, image.snapshotLine(lineAddr),
                       std::move(clearance));
    drainWritebacks();
}

void
Hierarchy::drainWritebacks()
{
    auto drainFn = [this](Addr lineAddr, const LineData &data) {
        if (CacheLineInfo *l2line = l2.findLine(lineAddr)) {
            l2line->state = CoherenceState::Modified;
            l2.touch(*l2line);
        } else {
            // The L2 evicted the line while the write-back sat in
            // the buffer; forward the data to memory directly.
            pendingL2Evicts.push_back({lineAddr, data, {}});
        }
    };
    for (unsigned i = 0; i < cores.size(); ++i) {
        L1 &l1 = cores[i];
        if (!params.adversary) {
            l1.writebacks.drain(drainFn);
            continue;
        }
        // Fuzzing: an eligible (clearance-met) write-back may still
        // be held by the adversary; the retry is a kick, which
        // re-enters this drain once the hold expires.
        auto hold = [this, &l1, i] {
            if (curTick() < l1.wbHeldUntil)
                return true;
            Tick delay = params.adversary->consider(
                eq, FuzzSite::Writeback, i, retryKick);
            if (delay > 0) {
                l1.wbHeldUntil = curTick() + delay;
                return true;
            }
            return false;
        };
        l1.writebacks.drain(drainFn, hold);
    }
    drainL2Evicts();
}

bool
Hierarchy::installLineL2(Addr lineAddr)
{
    if (l2.findLine(lineAddr))
        return true;
    if (pendingL2Evicts.size() >= params.l2EvictEntries)
        return false;

    CacheLineInfo &victim = l2.victimFor(lineAddr);
    if (victim.valid()) {
        // Avoid victimizing a line with an in-flight coherence
        // transaction; retry once it settles.
        if (busyLines.contains(victim.lineAddr))
            return false;
        Addr victimAddr = victim.lineAddr;
        // Inclusive hierarchy: force the line out of every L1 first.
        // A dirty L1 copy departs the cache domain here, so record
        // the owning core's persist drain point (same interlock as a
        // voluntary write-back, §IV).
        bool wasDirtyAnywhere = victim.dirty();
        Clearance clearance;
        for (unsigned i = 0; i < cores.size(); ++i) {
            if (CacheLineInfo *line = cores[i].array.findLine(victimAddr)) {
                if (line->dirty()) {
                    wasDirtyAnywhere = true;
                    clearance = recordDrainPoint(i);
                }
                cores[i].array.invalidate(victimAddr);
            }
        }
        if (wasDirtyAnywhere)
            queueL2Evict(victimAddr, std::move(clearance));
        victim.state = CoherenceState::Invalid;
    }
    l2.install(victim, lineAddr, CoherenceState::Shared);
    return true;
}

void
Hierarchy::queueL2Evict(Addr lineAddr, Clearance clearance)
{
    ++l2Evictions;
    pendingL2Evicts.push_back({lineAddr, image.snapshotLine(lineAddr),
                               std::move(clearance)});
    drainL2Evicts();
}

void
Hierarchy::drainL2Evicts()
{
    // One eviction is in the mail at a time; the next departs when
    // the controller's Ack pops the head (a Nack leaves it queued
    // for the retry kick).
    if (evictInFlight || pendingL2Evicts.empty())
        return;
    PendingEvict &head = pendingL2Evicts.front();
    if (head.clearance && !head.clearance())
        return;
    auto pkt = makeWritePacket(head.data, 0, WriteOrigin::WriteBack,
                               nullptr);
    pkt->id = nextPacketId++;
    evictInFlight = true;
    sendToController(std::move(pkt));
}

// ---------------------------------------------------------------------
// CLWB flush path
// ---------------------------------------------------------------------

void
Hierarchy::sendLineWrite(Addr lineAddr, PacketPtr pkt)
{
    lineSendQueues[lineAddr].queue.push_back(std::move(pkt));
    drainLineWrites(lineAddr);
}

void
Hierarchy::drainLineWrites(Addr lineAddr)
{
    auto it = lineSendQueues.find(lineAddr);
    if (it == lineSendQueues.end())
        return;
    LineSendQueue &q = it->second;
    // One write per line in the mail: the successor departs only on
    // the predecessor's Ack, so same-line snapshots enter the
    // controller strictly in content order even across Nack retries.
    if (q.inFlight || q.queue.empty())
        return;
    q.inFlight = true;
    sendToController(q.queue.front());
}

void
Hierarchy::drainAllLineWrites()
{
    for (auto &entry : lineSendQueues)
        drainLineWrites(entry.first);
}

void
Hierarchy::onControllerResponse(const MemResponse &resp)
{
    const PacketPtr &pkt = resp.pkt;
    panicIf(!pkt, "controller response without a packet");
    const bool acked = resp.kind == MemResponseKind::Ack;

    switch (pkt->cmd) {
    case MemCmd::Read:
    case MemCmd::ReadExclusive:
        // Completion arrives separately through pkt->onResponse; the
        // admission decision is all that is routed here. A Nack
        // remails the identical packet when the controller's retry
        // callback kicks us (the L2 MSHR claim is still held).
        if (!acked) {
            park([this, pkt] {
                sendToController(pkt);
                return true;
            });
        }
        return;
    case MemCmd::Write:
        if (pkt->origin == WriteOrigin::WriteBack) {
            panicIf(!evictInFlight,
                    "evict admission reply without an evict in the mail");
            evictInFlight = false;
            if (acked) {
                pendingL2Evicts.pop_front();
                drainL2Evicts();
            }
            return;
        }
        // CLWB flush write: the head of this line's send queue.
        {
            auto it = lineSendQueues.find(pkt->addr);
            panicIf(it == lineSendQueues.end() || !it->second.inFlight ||
                        it->second.queue.front() != pkt,
                    "flush-write admission reply does not match the "
                    "line head");
            it->second.inFlight = false;
            if (acked) {
                it->second.queue.pop_front();
                if (it->second.queue.empty())
                    lineSendQueues.erase(it);
                else
                    drainLineWrites(pkt->addr);
            }
        }
        return;
    }
    panic("controller response with unknown packet command");
}

void
Hierarchy::startFlush(CoreId core, Addr addr,
                      std::function<void(bool)> onDone,
                      std::function<void()> onStarted)
{
    Addr la = lineAlign(addr);
    ++activeTransactions;

    // Flushes deliberately do not serialize on busyLines: a
    // read-exclusive snoop parked on this core's persist drain point
    // must not block the very CLWB it is waiting for (§IV —
    // "CLWBs never stall ... so there is no possibility of circular
    // dependency and deadlock"). Concurrent transactions tolerate
    // the dirty-bit cleaning the flush performs.
    {
        // Fast path: the flushing core's own L1 owns the dirty line.
        L1 &own = cores.at(core);
        CacheLineInfo *line = own.array.findLine(la);
        bool ownDirty = line && line->dirty();
        Tick lookup = ownDirty
                          ? params.l1Latency
                          : params.l1Latency + params.snoopLatency +
                                params.l2Latency;

        eq.scheduleIn(lookup, [this, core, la, onDone,
                               onStarted = std::move(onStarted)] {
            // The flush performs its cache read here; stores gated
            // behind a persist barrier may drain only after this
            // point (the notification below), so the snapshot can
            // never include post-barrier data.
            if (onStarted)
                onStarted();
            bool dirty = false;
            // Clean every dirty copy in the domain; CLWB retains
            // clean copies (non-invalidating).
            for (auto &l1 : cores) {
                if (CacheLineInfo *l = l1.array.findLine(la)) {
                    if (l->dirty()) {
                        dirty = true;
                        l->state = CoherenceState::Exclusive;
                    }
                }
                if (l1.writebacks.contains(la))
                    dirty = true;
            }
            if (CacheLineInfo *l2line = l2.findLine(la)) {
                if (l2line->dirty()) {
                    dirty = true;
                    l2line->state = CoherenceState::Shared;
                }
            }

            if (!dirty) {
                ++flushesClean;
                --activeTransactions;
                if (onDone)
                    onDone(false);
                scheduleKick();
                return;
            }

            ++flushesDirty;
            auto pkt = makeWritePacket(
                image.snapshotLine(la), core, WriteOrigin::Clwb,
                [this, onDone] {
                    --activeTransactions;
                    if (onDone)
                        onDone(true);
                    scheduleKick();
                });
            pkt->id = nextPacketId++;
            // Same-line writes enter the controller in snapshot
            // order even if back-pressure forces retries.
            sendLineWrite(la, std::move(pkt));
        }, EventPriority::MemoryResponse);
    }
}

// ---------------------------------------------------------------------
// Snapshot support
// ---------------------------------------------------------------------

void
Hierarchy::saveState(SimSnapshot &snap) const
{
    Snapshot s;
    s.cores.reserve(cores.size());
    for (const L1 &l1 : cores) {
        L1State cs;
        cs.array = l1.array.snapshotState();
        cs.writebacks = l1.writebacks.snapshotEntries();
        cs.mshrs = l1.mshrs;
        cs.wbHeldUntil = l1.wbHeldUntil;
        s.cores.push_back(std::move(cs));
    }
    s.l2 = l2.snapshotState();
    s.l2MissesInFlight = l2MissesInFlight;
    s.busyLines = busyLines;
    // Packets are immutable once submitted, so the snapshot may share
    // them with the live run.
    s.lineSendQueues = lineSendQueues;
    s.pendingL2Evicts = pendingL2Evicts;
    s.evictInFlight = evictInFlight;
    s.parked = parked;
    s.activeTransactions = activeTransactions;
    s.nextPacketId = nextPacketId;
    snap.put(snapshotName(), std::move(s));
}

void
Hierarchy::restoreState(const SimSnapshot &snap)
{
    const Snapshot &s = snap.get<Snapshot>(snapshotName());
    panicIf(s.cores.size() != cores.size(),
            "hierarchy core count changed across a snapshot");
    for (std::size_t i = 0; i < cores.size(); ++i) {
        L1 &l1 = cores[i];
        const L1State &cs = s.cores[i];
        l1.array.restoreState(cs.array);
        l1.writebacks.restoreEntries(cs.writebacks);
        l1.mshrs = cs.mshrs;
        l1.wbHeldUntil = cs.wbHeldUntil;
    }
    l2.restoreState(s.l2);
    l2MissesInFlight = s.l2MissesInFlight;
    busyLines = s.busyLines;
    lineSendQueues = s.lineSendQueues;
    pendingL2Evicts = s.pendingL2Evicts;
    evictInFlight = s.evictInFlight;
    parked = s.parked;
    activeTransactions = s.activeTransactions;
    nextPacketId = s.nextPacketId;
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

CoherenceState
Hierarchy::l1State(CoreId core, Addr addr) const
{
    const CacheLineInfo *line =
        cores.at(core).array.findLine(lineAlign(addr));
    return line ? line->state : CoherenceState::Invalid;
}

bool
Hierarchy::l1Dirty(CoreId core, Addr addr) const
{
    const CacheLineInfo *line =
        cores.at(core).array.findLine(lineAlign(addr));
    return line && line->dirty();
}

CoherenceState
Hierarchy::l2State(Addr addr) const
{
    const CacheLineInfo *line = l2.findLine(lineAlign(addr));
    return line ? line->state : CoherenceState::Invalid;
}

bool
Hierarchy::l2Dirty(Addr addr) const
{
    const CacheLineInfo *line = l2.findLine(lineAlign(addr));
    return line && line->dirty();
}

std::size_t
Hierarchy::writebacksPending() const
{
    std::size_t total = 0;
    for (const auto &l1 : cores)
        total += l1.writebacks.size();
    return total;
}

} // namespace strand
