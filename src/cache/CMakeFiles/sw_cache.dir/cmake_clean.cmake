file(REMOVE_RECURSE
  "CMakeFiles/sw_cache.dir/cache_array.cc.o"
  "CMakeFiles/sw_cache.dir/cache_array.cc.o.d"
  "CMakeFiles/sw_cache.dir/hierarchy.cc.o"
  "CMakeFiles/sw_cache.dir/hierarchy.cc.o.d"
  "libsw_cache.a"
  "libsw_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
