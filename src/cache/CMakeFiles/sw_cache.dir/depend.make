# Empty dependencies file for sw_cache.
# This may be replaced when dependencies are built.
