file(REMOVE_RECURSE
  "libsw_cache.a"
)
