/**
 * @file
 * Set-associative tag array with MESI state and LRU replacement.
 *
 * The timing model is tag-only: functional data lives in the global
 * MemoryImage and is snapshotted when a line departs toward the
 * memory controllers. The array tracks presence, coherence state,
 * and dirtiness, which is all the persistency mechanisms need.
 */

#ifndef CACHE_CACHE_ARRAY_HH
#define CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/address_map.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace strand
{

/** MESI coherence states. */
enum class CoherenceState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** @return a short name for tracing. */
const char *coherenceStateName(CoherenceState state);

/** One cache line's bookkeeping. */
struct CacheLineInfo
{
    Addr lineAddr = 0;
    CoherenceState state = CoherenceState::Invalid;
    /** LRU timestamp; larger is more recent. */
    std::uint64_t lastUse = 0;

    bool valid() const { return state != CoherenceState::Invalid; }
    bool dirty() const { return state == CoherenceState::Modified; }
};

/**
 * Tag array for one cache. Geometry is (sizeBytes / 64) lines,
 * arranged as sets of @p ways lines each.
 */
class CacheArray
{
  public:
    /**
     * @param sizeBytes Total capacity; must be a multiple of
     * ways * 64.
     * @param ways Set associativity.
     */
    CacheArray(std::uint64_t sizeBytes, unsigned ways);

    unsigned numSets() const { return sets; }
    unsigned numWays() const { return ways; }

    /** @return the line's info if present, else nullptr. */
    CacheLineInfo *findLine(Addr addr);
    const CacheLineInfo *findLine(Addr addr) const;

    /** Record a use for LRU purposes. */
    void touch(CacheLineInfo &line) { line.lastUse = ++useClock; }

    /**
     * Choose a victim way in the set of @p addr. Prefers invalid
     * lines; otherwise the least recently used. The returned line may
     * be valid and dirty — the caller must handle the eviction.
     */
    CacheLineInfo &victimFor(Addr addr);

    /**
     * Install @p addr into @p victim (which must belong to the right
     * set) with the given state.
     */
    void
    install(CacheLineInfo &victim, Addr addr, CoherenceState state)
    {
        victim.lineAddr = lineAlign(addr);
        victim.state = state;
        touch(victim);
    }

    /** Invalidate a line if present. @return true if it was valid. */
    bool invalidate(Addr addr);

    /** Full tag state captured by the hierarchy's snapshot. */
    struct State
    {
        std::uint64_t useClock = 0;
        std::vector<CacheLineInfo> lines;
    };

    /** Copy out the tag state (snapshot support). */
    State snapshotState() const { return {useClock, lines}; }

    /** Replace the tag state with a captured copy. Geometry is fixed
     * at construction, so a snapshot only restores into the array it
     * was taken from. */
    void
    restoreState(State state)
    {
        panicIf(state.lines.size() != lines.size(),
                "cache array geometry changed across a snapshot");
        useClock = state.useClock;
        lines = std::move(state.lines);
    }

    /** @return number of valid lines (linear scan; tests only). */
    std::uint64_t countValid() const;

    /** Iterate all valid lines (tests and draining). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &line : lines)
            if (line.valid())
                fn(line);
    }

  private:
    std::uint64_t setIndex(Addr addr) const;

    unsigned sets;
    unsigned ways;
    std::uint64_t useClock = 0;
    std::vector<CacheLineInfo> lines;
};

} // namespace strand

#endif // CACHE_CACHE_ARRAY_HH
