/**
 * @file
 * The L1 write-back buffer, extended per the paper (§IV, "Managing
 * cache writebacks").
 *
 * When a dirty line leaves an L1, the departing write-back records a
 * drain point in the core's persist engine (the tail indices of all
 * strand buffers). The write-back may only drain below the L1 once
 * the strand buffers have drained past the recorded indices,
 * guaranteeing that CLWBs that were in flight when the write-back was
 * initiated persist first.
 */

#ifndef CACHE_WRITEBACK_BUFFER_HH
#define CACHE_WRITEBACK_BUFFER_HH

#include <deque>
#include <functional>

#include "mem/memory_image.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace strand
{

/**
 * A bounded FIFO of in-progress write-backs for one L1 cache.
 */
class WritebackBuffer
{
  public:
    /** Predicate that reports whether the recorded drain point has
     * been passed. An empty function means "no constraint". */
    using Clearance = std::function<bool()>;

    /** Action performed when an entry drains (move data to L2). */
    using DrainFn = std::function<void(Addr, const LineData &)>;

    /**
     * One buffered write-back. Public so the hierarchy's snapshot can
     * copy the FIFO; the clearance is a this-plus-values closure from
     * the persist engine, so a copy stays valid when restored into
     * the same component graph.
     */
    struct Entry
    {
        Addr lineAddr;
        LineData data;
        Clearance clearance;
    };

    explicit WritebackBuffer(unsigned capacity) : capacity(capacity)
    {
        panicIf(capacity == 0, "write-back buffer needs capacity");
    }

    bool full() const { return entries.size() >= capacity; }
    bool empty() const { return entries.empty(); }
    std::size_t size() const { return entries.size(); }

    /**
     * Add a departing dirty line. @p clearance is evaluated lazily;
     * the entry drains only once it returns true.
     */
    void
    push(Addr lineAddr, LineData data, Clearance clearance)
    {
        panicIf(full(), "write-back buffer overflow");
        entries.push_back({lineAddr, std::move(data),
                           std::move(clearance)});
    }

    /**
     * Drain every leading entry whose clearance has been met. Entries
     * drain strictly in FIFO order so a blocked write-back also
     * blocks younger ones (conservative, deadlock-free: CLWBs never
     * wait on write-backs).
     *
     * @param hold Optional extra gate, evaluated per drainable head
     * (after its clearance passes); returning true stops the drain.
     * The fuzzer's adversarial delays enter through here.
     * @return the number of entries drained.
     */
    unsigned
    drain(const DrainFn &drainFn,
          const std::function<bool()> &hold = {})
    {
        unsigned drained = 0;
        while (!entries.empty()) {
            Entry &head = entries.front();
            if (head.clearance && !head.clearance())
                break;
            if (hold && hold())
                break;
            drainFn(head.lineAddr, head.data);
            entries.pop_front();
            ++drained;
        }
        return drained;
    }

    /** @return true if @p lineAddr is waiting in the buffer. */
    bool
    contains(Addr lineAddr) const
    {
        for (const Entry &entry : entries)
            if (entry.lineAddr == lineAddr)
                return true;
        return false;
    }

    /** Copy out the buffered entries (snapshot support). */
    std::deque<Entry> snapshotEntries() const { return entries; }

    /** Replace the buffered entries with a captured copy. */
    void
    restoreEntries(std::deque<Entry> state)
    {
        panicIf(state.size() > capacity,
                "restored write-back entries exceed capacity");
        entries = std::move(state);
    }

  private:
    unsigned capacity;
    std::deque<Entry> entries;
};

} // namespace strand

#endif // CACHE_WRITEBACK_BUFFER_HH
