/**
 * @file
 * The coherent cache hierarchy: per-core L1 data caches, a shared
 * inclusive L2, MESI snooping between the L1s, MSHRs, write-back
 * buffers with persist interlocks, and routing to the PM and DRAM
 * controllers.
 *
 * Geometry and latencies default to Table I of the paper: 32 KiB
 * 2-way L1 (2 ns hit, 6 MSHRs), 28 MiB 16-way shared L2 (16 ns hit,
 * 16 MSHRs).
 *
 * The hierarchy is tag-only: functional data lives in the global
 * MemoryImage; a line's content is snapshotted from the image at the
 * moment it departs toward a memory controller (CLWB flush or dirty
 * eviction), which matches the content of the unique dirty copy.
 *
 * Persistency hooks (§IV of the paper):
 *  - Departing dirty L1 lines record a drain point in the owning
 *    core's persist engine and wait for it in the write-back buffer.
 *  - Read-exclusive snoops that hit a dirty remote L1 line stall
 *    until that core's persist engine drains past the point recorded
 *    when the snoop arrived.
 */

#ifndef CACHE_HIERARCHY_HH
#define CACHE_HIERARCHY_HH

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/writeback_buffer.hh"
#include "core/observer.hh"
#include "mem/mem_controller.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"

namespace strand
{

class DrainAdversary;

/** Cache hierarchy parameters (Table I defaults). */
struct HierarchyParams
{
    std::uint64_t l1Size = 32 * 1024;
    unsigned l1Ways = 2;
    unsigned l1Mshrs = 6;
    Tick l1Latency = nsToTicks(2);

    std::uint64_t l2Size = 28 * 1024 * 1024;
    unsigned l2Ways = 16;
    unsigned l2Mshrs = 16;
    Tick l2Latency = nsToTicks(16);

    /** Snoop/arbitration overhead for bus transactions. */
    Tick snoopLatency = nsToTicks(4);

    unsigned writebackEntries = 8;
    /** Pending dirty L2 evictions allowed before fills stall. */
    unsigned l2EvictEntries = 16;
    /**
     * Enable the §IV persist interlocks (write-back drain points and
     * read-exclusive snoop stalls). Disabling them is an ablation:
     * faster coherence, but inter-thread persist order (Fig. 2 i,j)
     * is no longer guaranteed.
     */
    bool persistInterlocks = true;
    /**
     * Fuzzing hook (non-owning): when set, the write-back drain path
     * consults the adversary before draining an eligible entry, so a
     * fuzz trial can delay write-backs within what the interlocks
     * already permit. Null leaves the drain path untouched.
     */
    DrainAdversary *adversary = nullptr;
};

/**
 * The complete coherent cache subsystem for one simulated machine.
 *
 * CPU-side access is exclusively through MemPorts: cores and persist
 * engines mail Load/Store/Flush/Kick requests and receive
 * Ack/Nack/FlushStarted/Done responses one port leg later. The
 * hierarchy in turn owns one port per memory controller for its own
 * fills and persists, so every admission decision in the machine is
 * an explicit asynchronous response, never a same-tick return value.
 */
class Hierarchy : public SimObject, public MemResponder
{
  public:
    /**
     * Re-arms when a persist engine makes progress; evaluated lazily
     * by blocked write-backs and snoops. An empty function means no
     * constraint.
     */
    using Clearance = std::function<bool()>;

    /**
     * Per-core recorder installed by the persist engine: invoked when
     * a dirty line departs or is stolen, it captures the current
     * strand-buffer tail indices and returns the clearance predicate.
     */
    using DrainPointRecorder = std::function<Clearance()>;

    Hierarchy(std::string name, EventQueue &eq, MemoryImage &image,
              unsigned numCores, const HierarchyParams &params,
              MemController &pmCtrl, MemController &dramCtrl,
              stats::StatGroup *parent = nullptr);

    /** Install the persist-interlock recorder for @p core. */
    void
    setDrainPointRecorder(CoreId core, DrainPointRecorder recorder)
    {
        cores.at(core).recorder = std::move(recorder);
    }

    /** Attach the system's observer hub (VMO conflict edges). */
    void setObserverHub(ObserverHub *hub) { obsHub = hub; }

    /**
     * Install the lines covering [start, end) into the L2 as clean
     * copies. Models steady-state cache residency of long-lived
     * structures (log buffers, preloaded tables) without simulating
     * a warm-up phase.
     */
    void prewarmL2(Addr start, Addr end);

    /**
     * Service one mailed request, from the shared domain's event
     * stream:
     *  - Load: Nack if no MSHR is available (requester retries);
     *    otherwise Done(token) when data is available.
     *  - Store: Nack if no MSHR (retry), else Ack(token) at
     *    admission and Done(token) when the store is written into
     *    the (exclusively owned) L1 line; the architectural image is
     *    updated at that point.
     *  - Flush: always absorbed (internal queuing hides controller
     *    back-pressure); FlushStarted(token) when the cache read
     *    happens, then Done(token, wrotePm) — wrotePm true at the
     *    ADR ack of a dirty line, false after a clean lookup.
     *  - Kick: response-less doorbell; re-evaluates parked work.
     */
    void handleRequest(MemPort &port, const MemRequest &req) override;

    /**
     * Re-evaluate parked work (blocked write-backs, stalled snoops,
     * deferred fills). Persist engines call this when their buffers
     * drain; controllers call it when queue space frees.
     */
    void kick();

    /** @return true when no transactions are in flight. */
    bool
    idle() const
    {
        return activeTransactions == 0 && parked.empty() &&
               pendingL2Evicts.empty() && writebacksPending() == 0;
    }

    /**
     * Capture / restore the tag arrays, write-back buffers, MSHRs,
     * parked transactions, and in-flight packet queues. The captured
     * closures (MSHR waiters, clearances, parked attempts) reference
     * only `this` and immutable values, so restore targets the same
     * component graph the capture was taken from.
     */
    void saveState(SimSnapshot &snap) const override;
    void restoreState(const SimSnapshot &snap) override;

    /** @name Introspection for tests @{ */
    CoherenceState l1State(CoreId core, Addr addr) const;
    bool l1Dirty(CoreId core, Addr addr) const;
    CoherenceState l2State(Addr addr) const;
    bool l2Dirty(Addr addr) const;
    std::size_t writebacksPending() const;
    /** @} */

    /** @name Statistics @{ */
    stats::Scalar loadHits;
    stats::Scalar loadMisses;
    stats::Scalar storeHits;
    stats::Scalar storeMisses;
    stats::Scalar upgrades;
    stats::Scalar cacheToCache;
    stats::Scalar l1Writebacks;
    stats::Scalar l2Evictions;
    stats::Scalar flushesDirty;
    stats::Scalar flushesClean;
    stats::Scalar snoopStalls;
    stats::Scalar writebackStalls;
    /** @} */

  private:
    /** A coherence transaction parked on a busy resource. */
    struct Parked
    {
        std::function<bool()> attempt; ///< true = made progress, unpark
    };

    struct L1
    {
        explicit L1(const HierarchyParams &p)
            : array(p.l1Size, p.l1Ways), writebacks(p.writebackEntries)
        {
        }

        CacheArray array;
        WritebackBuffer writebacks;
        DrainPointRecorder recorder;
        /** Adversarial hold on the write-back drain (fuzzing). */
        Tick wbHeldUntil = 0;
        /** Outstanding misses keyed by line address. */
        struct Mshr
        {
            bool exclusive = false;
            std::vector<std::function<void()>> waiters;
        };
        std::unordered_map<Addr, Mshr> mshrs;
        unsigned mshrLimit = 0;
    };

    /** @name Port request servicing (one per MemRequestKind) @{ */

    /** @return false if no MSHR is available (the caller Nacks). */
    bool startLoad(CoreId core, Addr addr, std::function<void()> onDone);

    /** @return false if no MSHR is available (the caller Nacks). */
    bool startStore(CoreId core, Addr addr, std::uint64_t value,
                    std::function<void()> onDone);

    /** Always accepted; see handleRequest() for the response shape. */
    void startFlush(CoreId core, Addr addr,
                    std::function<void(bool)> onDone,
                    std::function<void()> onStarted);

    /** @} */

    /** Begin a miss transaction; assumes MSHR already allocated. */
    void startMiss(CoreId core, Addr lineAddr, bool exclusive);

    /** Snoop remote L1s and the L2, fill, and complete the MSHR. */
    void serviceMiss(CoreId core, Addr lineAddr, bool exclusive);

    /** Complete an MSHR: install the line and run waiters. */
    void finishFill(CoreId core, Addr lineAddr, bool exclusive,
                    CoherenceState fillState);

    /** Install @p lineAddr into @p core's L1, evicting as needed.
     * @return false if the eviction is blocked (write-back full). */
    bool installLine(CoreId core, Addr lineAddr,
                     CoherenceState state);

    /** Move a dirty departing L1 line into its write-back buffer. */
    void pushWriteback(CoreId core, Addr lineAddr);

    /** Ensure the line exists in L2 (inclusive fill from memory). */
    bool installLineL2(Addr lineAddr);

    /** Evict a dirty L2 line toward the right controller. */
    void queueL2Evict(Addr lineAddr, Clearance clearance = {});

    /** Try to send pending L2 evictions to the controllers. */
    void drainL2Evicts();

    /** Drain eligible write-backs from every L1 into the L2. */
    void drainWritebacks();

    /** Record a drain point with @p core's persist engine. */
    Clearance recordDrainPoint(CoreId core);

    /** The port toward the controller that owns @p addr. */
    MemPort &portFor(Addr addr);

    /** Mail @p pkt to its controller as a Packet request. */
    void sendToController(PacketPtr pkt);

    /** Route a controller Ack/Nack by the packet it carries. */
    void onControllerResponse(const MemResponse &resp);

    void park(std::function<bool()> attempt);
    void scheduleKick();

    MemoryImage &image;
    HierarchyParams params;
    MemController &pmCtrl;
    MemController &dramCtrl;

    /** Mailboxes toward the two memory controllers. */
    MemPort pmPort;
    MemPort dramPort;

    std::vector<L1> cores;
    CacheArray l2;
    unsigned l2MissesInFlight = 0;

    /** Lines with an active coherence transaction. */
    std::unordered_set<Addr> busyLines;

    /** Send one line's PM writes in snapshot order even across
     * controller back-pressure retries (strong persist atomicity:
     * a stale snapshot must never overwrite a fresher one). */
    void sendLineWrite(Addr lineAddr, PacketPtr pkt);
    void drainLineWrites(Addr lineAddr);
    /** Pump every line queue; kick() calls this on controller retry. */
    void drainAllLineWrites();

    /**
     * Per-line FIFO of flush writes awaiting controller admission.
     * At most one write per line is in the mail at a time (inFlight);
     * the next departs when its predecessor's Ack returns, a Nack
     * leaves the head queued for the next kick.
     */
    struct LineSendQueue
    {
        std::deque<PacketPtr> queue;
        bool inFlight = false;
    };
    std::unordered_map<Addr, LineSendQueue> lineSendQueues;

    struct PendingEvict
    {
        Addr lineAddr;
        LineData data;
        /** Persist interlock; empty means unconstrained. */
        Clearance clearance;
    };
    std::deque<PendingEvict> pendingL2Evicts;
    /** Head of pendingL2Evicts is in the mail, awaiting Ack/Nack. */
    bool evictInFlight = false;

    /** Volatile machine state captured by saveState(). */
    struct L1State
    {
        CacheArray::State array;
        std::deque<WritebackBuffer::Entry> writebacks;
        std::unordered_map<Addr, L1::Mshr> mshrs;
        Tick wbHeldUntil = 0;
    };
    struct Snapshot
    {
        std::vector<L1State> cores;
        CacheArray::State l2;
        unsigned l2MissesInFlight = 0;
        std::unordered_set<Addr> busyLines;
        std::unordered_map<Addr, LineSendQueue> lineSendQueues;
        std::deque<PendingEvict> pendingL2Evicts;
        bool evictInFlight = false;
        std::deque<Parked> parked;
        unsigned activeTransactions = 0;
        std::uint64_t nextPacketId = 1;
    };

    std::deque<Parked> parked;
    ObserverHub *obsHub = nullptr;
    /** Retry/drain pump; armed at most once per tick. */
    EventQueue::Recurring kickEvent;
    /** Prebuilt adversary-hold retry; built once, borrowed per query. */
    EventQueue::Callback retryKick;
    unsigned activeTransactions = 0;
    std::uint64_t nextPacketId = 1;
};

} // namespace strand

#endif // CACHE_HIERARCHY_HH
