#include "cache/cache_array.hh"

namespace strand
{

const char *
coherenceStateName(CoherenceState state)
{
    switch (state) {
      case CoherenceState::Invalid:
        return "I";
      case CoherenceState::Shared:
        return "S";
      case CoherenceState::Exclusive:
        return "E";
      case CoherenceState::Modified:
        return "M";
    }
    return "?";
}

CacheArray::CacheArray(std::uint64_t sizeBytes, unsigned ways)
    : ways(ways)
{
    fatalIf(ways == 0, "cache must have at least one way");
    std::uint64_t numLines = sizeBytes / lineBytes;
    fatalIf(numLines == 0 || numLines % ways != 0,
            "cache size {} not divisible into {}-way sets", sizeBytes,
            ways);
    sets = static_cast<unsigned>(numLines / ways);
    lines.resize(numLines);
}

std::uint64_t
CacheArray::setIndex(Addr addr) const
{
    return (lineAlign(addr) / lineBytes) % sets;
}

CacheLineInfo *
CacheArray::findLine(Addr addr)
{
    Addr la = lineAlign(addr);
    std::uint64_t base = setIndex(addr) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        CacheLineInfo &line = lines[base + w];
        if (line.valid() && line.lineAddr == la)
            return &line;
    }
    return nullptr;
}

const CacheLineInfo *
CacheArray::findLine(Addr addr) const
{
    return const_cast<CacheArray *>(this)->findLine(addr);
}

CacheLineInfo &
CacheArray::victimFor(Addr addr)
{
    std::uint64_t base = setIndex(addr) * ways;
    CacheLineInfo *victim = &lines[base];
    for (unsigned w = 0; w < ways; ++w) {
        CacheLineInfo &line = lines[base + w];
        if (!line.valid())
            return line;
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }
    return *victim;
}

bool
CacheArray::invalidate(Addr addr)
{
    CacheLineInfo *line = findLine(addr);
    if (!line)
        return false;
    line->state = CoherenceState::Invalid;
    return true;
}

std::uint64_t
CacheArray::countValid() const
{
    std::uint64_t count = 0;
    for (const auto &line : lines)
        if (line.valid())
            ++count;
    return count;
}

} // namespace strand
