/**
 * @file
 * Persistent-memory layout used by the logging runtime.
 *
 * The PM range is carved into three areas:
 *  - a metadata page holding each thread's persistent log head
 *    pointer (one cache line per thread),
 *  - one circular undo-log buffer per thread (64-byte entries, §V
 *    "Log structure"),
 *  - the persistent heap used by workload data structures.
 *
 * Log entries occupy one cache line with one 8-byte word per field:
 * Type, Addr, Value, Checksum, Valid, CommitMarker (the paper's entry
 * format, with the Size word repurposed as an integrity checksum —
 * every entry is exactly one 8-byte word of payload, so the field
 * carried no information). The tail pointer lives only in volatile
 * state.
 */

#ifndef RUNTIME_LAYOUT_HH
#define RUNTIME_LAYOUT_HH

#include "mem/address_map.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace strand
{

/** Log entry types (§V). */
enum class LogType : std::uint64_t
{
    Free = 0, ///< Slot never used.
    Store = 1,
    Acquire = 2,
    Release = 3,
    TxBegin = 4,
    TxEnd = 5,
    /** Redo-log entry: value holds the NEW data (§VII future work:
     * redo logging under strand persistency). */
    RedoStore = 6,
};

/** Field offsets within a 64-byte log entry. */
namespace log_field
{
constexpr Addr type = 0;
constexpr Addr addr = 8;
constexpr Addr value = 16;
/**
 * Integrity checksum over the entry's immutable words (type, addr,
 * value, globalSeq, seq) — see entryChecksum(). valid and
 * commitMarker are deliberately NOT covered: both are flipped
 * in place by single-word stores after publication (commit,
 * invalidation), and folding them in would require a read-modify-
 * write of the checksum word alongside — destroying the single-store
 * crash atomicity those transitions rely on.
 */
constexpr Addr checksum = 24;
constexpr Addr valid = 32;
constexpr Addr commitMarker = 40;
/** Global creation order (scalar clock, consistent with
 * happens-before): cross-thread rollback order after a crash. */
constexpr Addr globalSeq = 48;
/**
 * Monotonic entry index; distinguishes live entries from stale
 * content of previous laps around the circular buffer.
 *
 * seq occupies the line's TOP word on purpose: torn-line injection
 * admits a low-index prefix of the written words, so any tear of an
 * entry line drops seq first and recovery's seq<->slot check rejects
 * the whole entry as unpublished. With globalSeq above seq (as the
 * layout once had it), a 7-word tear kept a valid-looking entry whose
 * globalSeq read as stale zero — and a torn region-end entry then
 * fell below the SFR/ATLAS commit frontier, masking uncommitted
 * updates from rollback.
 */
constexpr Addr seq = 56;
} // namespace log_field

/** One fold step of the entry checksum: xor, then a 64-bit mix. */
constexpr std::uint64_t
mixChecksumWord(std::uint64_t hash, std::uint64_t word)
{
    hash ^= word;
    hash *= 0xff51afd7ed558ccdULL;
    hash ^= hash >> 33;
    return hash;
}

/**
 * Checksum over a log entry's immutable words, stored in the entry's
 * Checksum field at publication and verified by recovery. A media
 * bit flip in any covered word (or in the checksum itself) breaks
 * the equation and the entry is quarantined instead of trusted.
 *
 * Plain tears never reach this check: the seq word is admitted last
 * (prefix tearing, see log_field::seq), so a torn entry already
 * fails the seq<->slot publication gate. A checksum mismatch on a
 * gate-passing entry is therefore evidence of media corruption, not
 * of an interrupted write.
 *
 * The init constant is nonzero so an all-zero entry does not
 * checksum to its own (zero) checksum word.
 */
constexpr std::uint64_t
entryChecksum(std::uint64_t type, std::uint64_t addr,
              std::uint64_t value, std::uint64_t globalSeq,
              std::uint64_t seq)
{
    std::uint64_t hash = 0x5ca1ab1e0ddba11ULL;
    hash = mixChecksumWord(hash, type);
    hash = mixChecksumWord(hash, addr);
    hash = mixChecksumWord(hash, value);
    hash = mixChecksumWord(hash, globalSeq);
    hash = mixChecksumWord(hash, seq);
    return hash;
}

/** Geometry of the per-thread logs and the heap. */
struct LogLayout
{
    unsigned maxThreads = 8;
    /** Entries per thread's circular buffer. */
    std::uint64_t entriesPerThread = 8192;

    /** One cache line per thread for the persistent head pointer. */
    Addr
    headPtrAddr(CoreId tid) const
    {
        checkThread(tid);
        return pmBase + static_cast<Addr>(tid) * lineBytes;
    }

    /**
     * The global commit frontier: one past the globalSeq of the last
     * region committed by the background pruner (SFR/ATLAS batched
     * commits). Regions whose end-entry globalSeq is below the
     * frontier are durable and committed; recovery never rolls them
     * back.
     */
    Addr
    frontierAddr() const
    {
        return pmBase + static_cast<Addr>(maxThreads) * lineBytes;
    }

    /** Base of thread @p tid's log buffer. */
    Addr
    logBase(CoreId tid) const
    {
        checkThread(tid);
        return pmBase + 0x10000 +
               static_cast<Addr>(tid) * entriesPerThread * lineBytes;
    }

    /** Address of entry @p idx (mod capacity) in @p tid's buffer. */
    Addr
    entryAddr(CoreId tid, std::uint64_t idx) const
    {
        return logBase(tid) + (idx % entriesPerThread) * lineBytes;
    }

    /** First address past all log buffers: heap begins here. */
    Addr
    heapBase() const
    {
        return pmBase + 0x10000 +
               static_cast<Addr>(maxThreads) * entriesPerThread *
                   lineBytes;
    }

    Addr heapEnd() const { return pmBase + pmSize; }

    /**
     * Media-fault region classification: the metadata area (head
     * pointers + commit frontier) is the single point whose loss
     * recovery cannot degrade around, so a poisoned line here means
     * a FAILED verdict.
     */
    bool
    isMetadataLine(Addr lineAddr) const
    {
        return lineAddr >= pmBase &&
               lineAddr < frontierAddr() + lineBytes;
    }

    /** @return true when @p lineAddr falls in a per-thread log. */
    bool
    isLogLine(Addr lineAddr) const
    {
        return lineAddr >= pmBase + 0x10000 && lineAddr < heapBase();
    }

    bool
    isHeapLine(Addr lineAddr) const
    {
        return lineAddr >= heapBase() && lineAddr < heapEnd();
    }

    /** Owning thread of a log-region line (isLogLine() required). */
    CoreId
    logThreadOf(Addr lineAddr) const
    {
        panicIf(!isLogLine(lineAddr),
                "address {:#x} is not in a log region", lineAddr);
        return static_cast<CoreId>((lineAddr - (pmBase + 0x10000)) /
                                   (entriesPerThread * lineBytes));
    }

  private:
    void
    checkThread(CoreId tid) const
    {
        panicIf(tid >= maxThreads, "thread id {} out of range", tid);
    }
};

} // namespace strand

#endif // RUNTIME_LAYOUT_HH
