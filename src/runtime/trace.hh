/**
 * @file
 * Region traces: the runtime-level events recorded during functional
 * workload execution and later lowered (per hardware design and
 * language-level persistency model) into ISA op streams.
 */

#ifndef RUNTIME_TRACE_HH
#define RUNTIME_TRACE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace strand
{

/** One runtime-level event in a thread's execution. */
struct TraceEvent
{
    enum class Kind : std::uint8_t
    {
        RegionBegin, ///< Failure-atomic region begins.
        RegionEnd,   ///< Region ends; globalSeq orders ends globally.
        LoggedStore, ///< Persistent store inside a region (undo-logged).
        PlainStore,  ///< Store without logging (volatile or setup).
        Load,
        LockAcquire, ///< lockId + recorded ticket.
        LockRelease,
        Compute, ///< cycles of non-memory work.
    };

    Kind kind = Kind::Compute;
    Addr addr = 0;
    std::uint64_t oldValue = 0; ///< LoggedStore: value being replaced.
    std::uint64_t newValue = 0;
    std::uint32_t lockId = 0;
    std::uint64_t ticket = 0;
    std::uint32_t cycles = 0;
    /** RegionEnd: global region completion order (happens-before
     * consistent); used to serialize log commits across threads. */
    std::uint64_t globalSeq = 0;
    /** LoggedStore: global store creation order (scalar clock),
     * recorded into the log entry for cross-thread rollback order. */
    std::uint64_t storeSeq = 0;
};

/** Per-thread sequence of runtime events. */
using ThreadTrace = std::vector<TraceEvent>;

/** A complete multi-threaded region trace. */
struct RegionTrace
{
    std::vector<ThreadTrace> threads;
};

} // namespace strand

#endif // RUNTIME_TRACE_HH
