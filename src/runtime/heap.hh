/**
 * @file
 * A simple persistent-heap allocator for workload data structures.
 *
 * Allocation is a per-thread bump pointer over disjoint arenas so
 * that functional execution needs no cross-thread coordination and
 * replay is deterministic. A free list per size class supports
 * reuse; allocator metadata is volatile (recovery re-derives
 * reachability from the data structures themselves, as PM allocators
 * built on garbage-collected roots do).
 */

#ifndef RUNTIME_HEAP_HH
#define RUNTIME_HEAP_HH

#include <unordered_map>
#include <vector>

#include "runtime/layout.hh"

namespace strand
{

/** Per-thread bump allocator over the PM heap area. */
class PersistentHeap
{
  public:
    PersistentHeap(const LogLayout &layout, unsigned numThreads)
    {
        fatalIf(numThreads == 0, "heap needs at least one thread");
        Addr base = layout.heapBase();
        Addr size = (layout.heapEnd() - base) / numThreads;
        // Keep arenas line-aligned.
        size &= ~static_cast<Addr>(lineBytes - 1);
        for (unsigned i = 0; i < numThreads; ++i)
            arenas.push_back({base + i * size, base + (i + 1) * size});
    }

    /**
     * Allocate @p bytes (rounded up to a multiple of 64 so objects
     * never share cache lines, the common PM practice).
     */
    Addr
    alloc(CoreId tid, std::uint64_t bytes)
    {
        std::uint64_t rounded =
            (bytes + lineBytes - 1) & ~static_cast<std::uint64_t>(
                                          lineBytes - 1);
        Arena &arena = arenas.at(tid);
        auto &freeList = arena.freeLists[rounded];
        if (!freeList.empty()) {
            Addr addr = freeList.back();
            freeList.pop_back();
            return addr;
        }
        fatalIf(arena.next + rounded > arena.end,
                "persistent heap arena exhausted for thread {}", tid);
        Addr addr = arena.next;
        arena.next += rounded;
        return addr;
    }

    /** Return an allocation of @p bytes to the free list. */
    void
    free(CoreId tid, Addr addr, std::uint64_t bytes)
    {
        std::uint64_t rounded =
            (bytes + lineBytes - 1) & ~static_cast<std::uint64_t>(
                                          lineBytes - 1);
        arenas.at(tid).freeLists[rounded].push_back(addr);
    }

    /** Bytes bump-allocated so far by @p tid (excludes reuse). */
    std::uint64_t
    bytesUsed(CoreId tid) const
    {
        const Arena &arena = arenas.at(tid);
        return arena.next - arena.base;
    }

  private:
    struct Arena
    {
        Addr base;
        Addr end;
        Addr next = 0;
        std::unordered_map<std::uint64_t, std::vector<Addr>> freeLists;

        Arena(Addr base, Addr end) : base(base), end(end), next(base) {}
    };

    std::vector<Arena> arenas;
};

} // namespace strand

#endif // RUNTIME_HEAP_HH
