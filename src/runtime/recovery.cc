#include "runtime/recovery.hh"

#include <algorithm>

namespace strand
{

const char *
recoveryVerdictName(RecoveryVerdict verdict)
{
    switch (verdict) {
      case RecoveryVerdict::Full:
        return "FULL";
      case RecoveryVerdict::Degraded:
        return "DEGRADED";
      case RecoveryVerdict::Failed:
        return "FAILED";
    }
    return "?";
}

RecoveryManager::EntryView
RecoveryManager::readEntry(const MemoryImage &image, CoreId tid,
                           std::uint64_t slot) const
{
    Addr base = layout.entryAddr(tid, slot);
    EntryView view;
    view.seq = image.readPersisted(base + log_field::seq);
    view.type = static_cast<LogType>(
        image.readPersisted(base + log_field::type));
    view.addr = image.readPersisted(base + log_field::addr);
    view.value = image.readPersisted(base + log_field::value);
    view.checksum = image.readPersisted(base + log_field::checksum);
    view.valid = image.readPersisted(base + log_field::valid) != 0;
    view.commitMarker =
        image.readPersisted(base + log_field::commitMarker) != 0;
    view.globalSeq = image.readPersisted(base + log_field::globalSeq);
    view.slot = slot;
    view.tid = tid;
    // A Free type with any nonzero sibling word is impossible both
    // for fresh slots (all-zero background) and for tears (the type
    // word is admitted first, and a used slot's type never returns
    // to Free — invalidation clears only the valid word).
    view.freeAnomaly =
        view.type == LogType::Free &&
        ((view.seq | view.addr | view.value | view.checksum |
          view.globalSeq) != 0 ||
         view.valid || view.commitMarker);
    return view;
}

void
RecoveryManager::gatherPaged(
    const MemoryImage &image, CoreId tid,
    const std::function<void(const EntryView &)> &consider) const
{
    // Entry lines never span pages (pageBytes % lineBytes == 0), so
    // the region decomposes into page-sized runs of consecutive
    // slots. An absent page is all zero background — every slot in
    // it reads as LogType::Free — and is skipped without touching
    // its 64 would-be entries; a present page serves all field reads
    // straight from its word array, with unoccupied slots already
    // holding the zero that readPersisted() would return.
    constexpr unsigned wordsPerEntry = lineBytes / wordBytes;
    std::uint64_t slot = 0;
    while (slot < layout.entriesPerThread) {
        Addr lineAddr = layout.entryAddr(tid, slot);
        Addr pageOffset = lineAddr & (WordStore::pageBytes - 1);
        std::uint64_t run =
            (WordStore::pageBytes - pageOffset) / lineBytes;
        run = std::min<std::uint64_t>(
            run, layout.entriesPerThread - slot);
        const WordStore::Page *page = image.persistedPage(lineAddr);
        if (!page) {
            slot += run;
            continue;
        }
        unsigned wordSlot = WordStore::slotOf(lineAddr);
        for (std::uint64_t i = 0; i < run;
             ++i, ++slot, wordSlot += wordsPerEntry) {
            const std::uint64_t *words = &page->words[wordSlot];
            EntryView view;
            view.type = static_cast<LogType>(
                words[log_field::type / wordBytes]);
            view.seq = words[log_field::seq / wordBytes];
            view.addr = words[log_field::addr / wordBytes];
            view.value = words[log_field::value / wordBytes];
            view.checksum = words[log_field::checksum / wordBytes];
            view.valid = words[log_field::valid / wordBytes] != 0;
            view.commitMarker =
                words[log_field::commitMarker / wordBytes] != 0;
            view.globalSeq =
                words[log_field::globalSeq / wordBytes];
            if (view.type == LogType::Free) {
                // All-zero is a genuinely never-used slot; anything
                // else is the free-slot anomaly (see readEntry) and
                // must reach consider() like any other damage.
                if ((view.seq | view.addr | view.value |
                     view.checksum | view.globalSeq) == 0 &&
                    !view.valid && !view.commitMarker) {
                    continue;
                }
                view.freeAnomaly = true;
            }
            view.slot = slot;
            view.tid = tid;
            consider(view);
        }
    }
}

RecoveryReport
RecoveryManager::recover(MemoryImage &image, unsigned numThreads,
                         RecoveryScan scan,
                         const RecoveryOptions &options) const
{
    RecoveryReport report;
    std::vector<EntryView> allLive;

    // Media-fault pre-pass: classify every poisoned line before any
    // interpretation. The metadata area is unrecoverable (head
    // pointers and the commit frontier have no redundancy), poisoned
    // log lines quarantine their owning thread, and poisoned heap
    // lines are fenced off after rollback.
    std::vector<bool> threadQuarantined(numThreads, false);
    for (Addr line : image.poisonedLines()) {
        if (layout.isMetadataLine(line)) {
            report.verdict = RecoveryVerdict::Failed;
            return report;
        }
        if (layout.isLogLine(line)) {
            ++report.poisonedEntriesQuarantined;
            CoreId tid = layout.logThreadOf(line);
            if (tid < numThreads)
                threadQuarantined[tid] = true;
        }
    }

    std::uint64_t frontier =
        image.readPersisted(layout.frontierAddr());

    for (CoreId tid = 0; tid < numThreads; ++tid) {
        if (threadQuarantined[tid]) {
            report.quarantinedThreads.push_back(tid);
            continue;
        }
        std::uint64_t head =
            image.readPersisted(layout.headPtrAddr(tid));

        // Gather live entries: one pass over the whole buffer.
        std::vector<EntryView> live;
        std::uint64_t committedUpTo = 0; // seq+1 of CM entry, if any
        bool corrupt = false;
        auto consider = [&](const EntryView &entry) {
            // Structurally impossible Free slot: media corruption
            // regardless of checksum verification (no tear produces
            // it — the type word is admitted first).
            if (entry.freeAnomaly) {
                ++report.corruptEntriesQuarantined;
                corrupt = true;
                return;
            }
            // Stale lap content: ignore.
            if (entry.seq < head)
                return;
            // A live entry's monotonic seq must map back to the slot
            // it occupies; the writer guarantees that, so a mismatch
            // means the entry line itself tore at the crash — it was
            // only partially admitted to the ADR domain. The entry
            // never fully persisted, so drop it: on recoverable
            // designs the update it guards cannot be durable yet,
            // and on NON-ATOMIC the orphaned update is exactly what
            // the oracle must catch.
            if (entry.seq % layout.entriesPerThread != entry.slot) {
                ++report.tornEntriesSkipped;
                return;
            }
            // Publication gates passed: the entry fully persisted,
            // so a checksum mismatch is media corruption, not an
            // interrupted write. Quarantine the thread — a corrupt
            // undo value must not be rolled back into the heap.
            if (options.verifyChecksums &&
                entry.checksum !=
                    entryChecksum(
                        static_cast<std::uint64_t>(entry.type),
                        entry.addr, entry.value, entry.globalSeq,
                        entry.seq)) {
                ++report.corruptEntriesQuarantined;
                corrupt = true;
                return;
            }
            if (entry.commitMarker && entry.seq + 1 > committedUpTo)
                committedUpTo = entry.seq + 1;
            if (entry.valid)
                live.push_back(entry);
        };

        if (scan == RecoveryScan::Faithful) {
            for (std::uint64_t slot = 0;
                 slot < layout.entriesPerThread; ++slot) {
                EntryView entry = readEntry(image, tid, slot);
                if (entry.type != LogType::Free || entry.freeAnomaly)
                    consider(entry);
            }
        } else {
            gatherPaged(image, tid, consider);
        }

        // Detected damage fences off the whole thread: its log
        // cannot be trusted, so neither commit completion nor
        // rollback runs. The thread's region survives as the crash
        // left it — degraded, but never silently wrong.
        if (corrupt) {
            report.quarantinedThreads.push_back(tid);
            continue;
        }

        // Step 2 (Figure 6(b)): a crash during commit left a marker;
        // everything up to it is committed — finish invalidating.
        // Undo entries are simply dropped; redo entries of committed
        // regions are REPLAYED forward (their in-place updates may
        // not have persisted yet).
        if (committedUpTo > head) {
            std::sort(live.begin(), live.end(),
                      [](const EntryView &a, const EntryView &b) {
                          return a.seq < b.seq;
                      });
            for (auto it = live.begin(); it != live.end();) {
                if (it->seq < committedUpTo) {
                    if (it->type == LogType::RedoStore) {
                        image.writeDurable(it->addr, it->value);
                        ++report.redoEntriesReplayed;
                        report.replays.emplace_back(it->addr,
                                                    it->value);
                    }
                    Addr base = layout.entryAddr(tid, it->slot);
                    image.writeDurable(base + log_field::valid, 0);
                    ++report.entriesCommittedDuringRecovery;
                    it = live.erase(it);
                } else {
                    ++it;
                }
            }
            head = committedUpTo;
            image.writeDurable(layout.headPtrAddr(tid), head);
        }

        // Uncommitted redo entries carry no obligation: their
        // in-place updates were held back until the commit marker,
        // so dropping them is the correct outcome.
        for (auto it = live.begin(); it != live.end();) {
            if (it->type == LogType::RedoStore) {
                Addr base = layout.entryAddr(tid, it->slot);
                image.writeDurable(base + log_field::valid, 0);
                it = live.erase(it);
            } else {
                ++it;
            }
        }

        // Frontier filtering (SFR/ATLAS batched commits): regions
        // whose end entry is below the pruner's durable commit
        // frontier are committed; their surviving entries are dead.
        std::sort(live.begin(), live.end(),
                  [](const EntryView &a, const EntryView &b) {
                      return a.seq < b.seq;
                  });
        std::vector<EntryView> uncommitted;
        std::vector<EntryView> pending;
        for (const EntryView &entry : live) {
            if (entry.type == LogType::Release ||
                entry.type == LogType::TxEnd) {
                if (entry.globalSeq < frontier) {
                    pending.clear(); // committed region
                } else {
                    uncommitted.insert(uncommitted.end(),
                                       pending.begin(), pending.end());
                    pending.clear();
                }
                continue;
            }
            pending.push_back(entry);
        }
        // Entries after the last region end: crashed mid-region.
        uncommitted.insert(uncommitted.end(), pending.begin(),
                           pending.end());

        if (uncommitted.empty())
            continue;
        ++report.threadsWithUncommittedWork;
        allLive.insert(allLive.end(), uncommitted.begin(),
                       uncommitted.end());
    }

    // Step 3: roll back store entries across all threads in reverse
    // global creation order; conflicting updates from different
    // threads unwind newest-first, leaving the oldest displaced
    // value in place.
    std::sort(allLive.begin(), allLive.end(),
              [](const EntryView &a, const EntryView &b) {
                  if (a.globalSeq != b.globalSeq)
                      return a.globalSeq > b.globalSeq;
                  return a.seq > b.seq;
              });
    for (const EntryView &entry : allLive) {
        if (entry.type == LogType::Store) {
            image.writeDurable(entry.addr, entry.value);
            ++report.entriesRolledBack;
            report.rollbacks.emplace_back(entry.addr, entry.value);
        }
        // Invalidate the entry so recovery is idempotent.
        Addr base = layout.entryAddr(entry.tid, entry.slot);
        image.writeDurable(base + log_field::valid, 0);
    }

    // Poisoned heap lines stay unreadable — a partial rollback
    // rewrite repairs single words but not the line's ECC block —
    // so hand their word addresses to the caller as quarantined.
    for (Addr line : image.poisonedLines()) {
        if (!layout.isHeapLine(line))
            continue;
        for (unsigned i = 0; i < wordsPerLine; ++i)
            report.quarantinedAddrs.push_back(line + i * wordBytes);
    }

    report.verdict = (report.corruptEntriesQuarantined ||
                      report.poisonedEntriesQuarantined ||
                      !report.quarantinedThreads.empty() ||
                      !report.quarantinedAddrs.empty())
                         ? RecoveryVerdict::Degraded
                         : RecoveryVerdict::Full;
    return report;
}

} // namespace strand
