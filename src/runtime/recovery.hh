/**
 * @file
 * Post-crash recovery (§V "Log structure", Figure 6).
 *
 * Recovery reads only the persisted view of memory (what survived
 * the crash):
 *  1. Read each thread's persistent head pointer.
 *  2. If an entry at-or-after head has its commit marker set, the
 *     crash interrupted a commit: the entries up to the marker are
 *     committed — finish invalidating them and advance head.
 *  3. Roll back remaining valid entries — across all threads — in
 *     reverse global creation order (each store entry carries a
 *     scalar clock consistent with happens-before, the role the
 *     sync-entry metadata plays in ATLAS/SFR), restoring each
 *     logged old value durably.
 *
 * Entries store their monotonic sequence number, so stale content
 * from previous laps around the circular buffer (seq < head) is
 * ignored regardless of its valid bit.
 */

#ifndef RUNTIME_RECOVERY_HH
#define RUNTIME_RECOVERY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/memory_image.hh"
#include "runtime/layout.hh"

namespace strand
{

/** Outcome of one recovery pass. */
struct RecoveryReport
{
    /** Store entries rolled back, over all threads. */
    std::uint64_t entriesRolledBack = 0;
    /** Redo entries of committed regions replayed forward. These are
     * not rollbacks: the marker made the region durable, so recovery
     * re-applies the new values. */
    std::uint64_t redoEntriesReplayed = 0;
    /** Entries that a crashed commit had left valid. */
    std::uint64_t entriesCommittedDuringRecovery = 0;
    /** Threads that had any uncommitted work. */
    unsigned threadsWithUncommittedWork = 0;
    /**
     * Entries dropped because their seq did not map back to the slot
     * holding them: the entry line itself tore at the crash (partial
     * ADR admission; see MemoryImage::clonePersistedTorn). The writer
     * always stores slot-consistent seqs, so a mismatch proves the
     * entry never fully persisted — and on designs that order entry
     * persist before the guarded update, that update is not durable
     * either, making the drop safe.
     */
    std::uint64_t tornEntriesSkipped = 0;

    /** Rolled-back (addr, restoredValue) pairs, for diagnostics. */
    std::vector<std::pair<Addr, std::uint64_t>> rollbacks;
    /** Replayed (addr, newValue) pairs, for diagnostics. */
    std::vector<std::pair<Addr, std::uint64_t>> replays;
};

/**
 * How recover() reads the per-thread log buffers. Both scans observe
 * identical values for every entry field — WordStore::get() reads
 * absent pages and unoccupied slots as zero, exactly the background
 * the paged scan assumes — so they produce identical reports; they
 * differ only in cost.
 */
enum class RecoveryScan
{
    /**
     * One readPersisted() hash probe per field of every slot. The
     * slow, trusted reference; the two-run crash harness and the
     * fuzz replay oracle stay on it.
     */
    Faithful,
    /**
     * Page-cursor scan: walk each thread's log region a persisted
     * page at a time, skipping absent pages (8 KiB of Free slots)
     * outright and reading entry fields straight out of the page
     * array. This is what makes forked crash exploration cheap —
     * recovery dominates the per-point cost, and the scan dominates
     * recovery.
     */
    Paged,
};

/**
 * The recovery process. Stateless aside from its layout.
 */
class RecoveryManager
{
  public:
    explicit RecoveryManager(const LogLayout &layout) : layout(layout) {}

    /**
     * Recover @p image in place after a crash. Reads the persisted
     * view; writes restored values durably.
     */
    RecoveryReport recover(MemoryImage &image, unsigned numThreads,
                           RecoveryScan scan =
                               RecoveryScan::Faithful) const;

  private:
    struct EntryView
    {
        std::uint64_t seq;
        std::uint64_t globalSeq;
        /** Physical slot the entry was read from. Invalidation must
         * target this slot; seq alone is a monotonic count that only
         * coincides with the slot through the layout's wrap. */
        std::uint64_t slot;
        CoreId tid;
        LogType type;
        Addr addr;
        std::uint64_t value;
        bool valid;
        bool commitMarker;
    };

    EntryView readEntry(const MemoryImage &image, CoreId tid,
                        std::uint64_t slot) const;

    /**
     * RecoveryScan::Paged gather: walk @p tid's log region one
     * persisted page at a time and hand every non-Free entry to
     * @p consider.
     */
    void gatherPaged(
        const MemoryImage &image, CoreId tid,
        const std::function<void(const EntryView &)> &consider) const;

    LogLayout layout;
};

} // namespace strand

#endif // RUNTIME_RECOVERY_HH
