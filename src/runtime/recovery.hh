/**
 * @file
 * Post-crash recovery (§V "Log structure", Figure 6).
 *
 * Recovery reads only the persisted view of memory (what survived
 * the crash):
 *  1. Read each thread's persistent head pointer.
 *  2. If an entry at-or-after head has its commit marker set, the
 *     crash interrupted a commit: the entries up to the marker are
 *     committed — finish invalidating them and advance head.
 *  3. Roll back remaining valid entries — across all threads — in
 *     reverse global creation order (each store entry carries a
 *     scalar clock consistent with happens-before, the role the
 *     sync-entry metadata plays in ATLAS/SFR), restoring each
 *     logged old value durably.
 *
 * Entries store their monotonic sequence number, so stale content
 * from previous laps around the circular buffer (seq < head) is
 * ignored regardless of its valid bit.
 *
 * Under the media-fault model recovery additionally degrades
 * gracefully: entries whose checksum fails (bit flips), structurally
 * impossible Free slots, and poisoned log lines quarantine the owning
 * thread instead of being trusted or panicking; residual poisoned
 * heap lines are reported as unreadable addresses. The
 * RecoveryReport verdict (FULL / DEGRADED / FAILED) tells the caller
 * which guarantee survives.
 */

#ifndef RUNTIME_RECOVERY_HH
#define RUNTIME_RECOVERY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/memory_image.hh"
#include "runtime/layout.hh"

namespace strand
{

/**
 * Overall recovery outcome under the media-fault model.
 *
 * Recovery degrades gracefully instead of panicking: damage it can
 * detect and fence off (checksum-failing entries, poisoned log
 * lines, unrepaired poisoned heap lines) quarantines the affected
 * thread or address range and yields Degraded; only loss of the
 * metadata area — the one structure recovery cannot reconstruct or
 * route around — yields Failed.
 */
enum class RecoveryVerdict
{
    /** No damage detected; every log entry was trusted. */
    Full,
    /** Damage detected and quarantined; the surviving state is
     * consistent outside the quarantined threads/addresses. */
    Degraded,
    /** The metadata area (head pointers / commit frontier) was
     * poisoned; recovery has no trustworthy starting point. */
    Failed,
};

const char *recoveryVerdictName(RecoveryVerdict verdict);

/** Caller-selectable recovery behavior. */
struct RecoveryOptions
{
    /**
     * Verify each published entry's checksum word and quarantine
     * mismatches. Off reproduces the un-checksummed layout's
     * failure mode — recovery trusting silently corrupted entries
     * and "succeeding" over wrong data (pinned as a regression
     * test; the crash oracle catches the resulting bad rollbacks).
     */
    bool verifyChecksums = true;
};

/** Outcome of one recovery pass. */
struct RecoveryReport
{
    /** Store entries rolled back, over all threads. */
    std::uint64_t entriesRolledBack = 0;
    /** Redo entries of committed regions replayed forward. These are
     * not rollbacks: the marker made the region durable, so recovery
     * re-applies the new values. */
    std::uint64_t redoEntriesReplayed = 0;
    /** Entries that a crashed commit had left valid. */
    std::uint64_t entriesCommittedDuringRecovery = 0;
    /** Threads that had any uncommitted work. */
    unsigned threadsWithUncommittedWork = 0;
    /**
     * Entries dropped because their seq did not map back to the slot
     * holding them: the entry line itself tore at the crash (partial
     * ADR admission; see MemoryImage::clonePersistedTorn). The writer
     * always stores slot-consistent seqs, so a mismatch proves the
     * entry never fully persisted — and on designs that order entry
     * persist before the guarded update, that update is not durable
     * either, making the drop safe.
     */
    std::uint64_t tornEntriesSkipped = 0;

    /** Media-fault verdict; Full whenever no damage was detected. */
    RecoveryVerdict verdict = RecoveryVerdict::Full;
    /**
     * Published entries quarantined for failing their checksum, plus
     * structurally impossible slots (type reads Free while sibling
     * words are nonzero — a state no tear can produce, since the
     * type word is admitted first under prefix tearing).
     */
    std::uint64_t corruptEntriesQuarantined = 0;
    /** Poisoned log-region lines (each holds one entry). */
    std::uint64_t poisonedEntriesQuarantined = 0;
    /**
     * Threads whose logs held quarantined damage, ascending. Their
     * entries are not trusted at all: no commit completion and no
     * rollback — the thread's uncommitted region survives in
     * whatever state the crash left, fenced off rather than half
     * rolled back from corrupt undo values.
     */
    std::vector<CoreId> quarantinedThreads;
    /**
     * Word addresses on poisoned heap lines, ascending. Poison is
     * sticky — rollback's single-word rewrites cannot repair a
     * line's ECC block — so every poisoned heap line is fenced off
     * here. Reads of these fault on real hardware.
     */
    std::vector<Addr> quarantinedAddrs;

    /** Rolled-back (addr, restoredValue) pairs, for diagnostics. */
    std::vector<std::pair<Addr, std::uint64_t>> rollbacks;
    /** Replayed (addr, newValue) pairs, for diagnostics. */
    std::vector<std::pair<Addr, std::uint64_t>> replays;
};

/**
 * How recover() reads the per-thread log buffers. Both scans observe
 * identical values for every entry field — WordStore::get() reads
 * absent pages and unoccupied slots as zero, exactly the background
 * the paged scan assumes — so they produce identical reports; they
 * differ only in cost.
 */
enum class RecoveryScan
{
    /**
     * One readPersisted() hash probe per field of every slot. The
     * slow, trusted reference; the two-run crash harness and the
     * fuzz replay oracle stay on it.
     */
    Faithful,
    /**
     * Page-cursor scan: walk each thread's log region a persisted
     * page at a time, skipping absent pages (8 KiB of Free slots)
     * outright and reading entry fields straight out of the page
     * array. This is what makes forked crash exploration cheap —
     * recovery dominates the per-point cost, and the scan dominates
     * recovery.
     */
    Paged,
};

/**
 * The recovery process. Stateless aside from its layout.
 */
class RecoveryManager
{
  public:
    explicit RecoveryManager(const LogLayout &layout) : layout(layout) {}

    /**
     * Recover @p image in place after a crash. Reads the persisted
     * view; writes restored values durably.
     */
    RecoveryReport recover(MemoryImage &image, unsigned numThreads,
                           RecoveryScan scan = RecoveryScan::Faithful,
                           const RecoveryOptions &options = {}) const;

  private:
    struct EntryView
    {
        std::uint64_t seq;
        std::uint64_t globalSeq;
        /** Physical slot the entry was read from. Invalidation must
         * target this slot; seq alone is a monotonic count that only
         * coincides with the slot through the layout's wrap. */
        std::uint64_t slot;
        CoreId tid;
        LogType type;
        Addr addr;
        std::uint64_t value;
        /** The stored checksum word (not yet verified). */
        std::uint64_t checksum;
        bool valid;
        bool commitMarker;
        /** Type reads Free but sibling words are nonzero: media
         * corruption, never a tear (type is admitted first). */
        bool freeAnomaly = false;
    };

    EntryView readEntry(const MemoryImage &image, CoreId tid,
                        std::uint64_t slot) const;

    /**
     * RecoveryScan::Paged gather: walk @p tid's log region one
     * persisted page at a time and hand every non-Free entry to
     * @p consider.
     */
    void gatherPaged(
        const MemoryImage &image, CoreId tid,
        const std::function<void(const EntryView &)> &consider) const;

    LogLayout layout;
};

} // namespace strand

#endif // RUNTIME_RECOVERY_HH
