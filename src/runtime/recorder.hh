/**
 * @file
 * The trace recorder: the functional execution environment workloads
 * run against.
 *
 * Workloads perform loads, stores, lock operations, and
 * failure-atomic regions against the recorder; it maintains the
 * functional memory contents (so data structures really work),
 * records old values for undo logging, assigns lock tickets in
 * acquisition order, and numbers region completions globally so that
 * log commits can later be serialized in a happens-before-consistent
 * order.
 */

#ifndef RUNTIME_RECORDER_HH
#define RUNTIME_RECORDER_HH

#include <unordered_map>
#include <vector>

#include "mem/address_map.hh"
#include "runtime/trace.hh"
#include "sim/logging.hh"

namespace strand
{

/** Functional execution and trace recording for all threads. */
class TraceRecorder
{
  public:
    explicit TraceRecorder(unsigned numThreads)
        : traces(numThreads), inRegion(numThreads, false)
    {
    }

    unsigned numThreads() const { return traces.size(); }

    /** Functional read; records a Load event. */
    std::uint64_t
    read(CoreId tid, Addr addr)
    {
        TraceEvent ev;
        ev.kind = TraceEvent::Kind::Load;
        ev.addr = addr;
        trace(tid).push_back(ev);
        return peek(addr);
    }

    /** Functional read with no trace event (bookkeeping reads). */
    std::uint64_t
    peek(Addr addr) const
    {
        auto it = memory.find(wordAlign(addr));
        return it == memory.end() ? 0 : it->second;
    }

    /**
     * Functional write. Inside a region on persistent memory it
     * records a LoggedStore with the displaced value; otherwise a
     * PlainStore.
     */
    void
    write(CoreId tid, Addr addr, std::uint64_t value)
    {
        TraceEvent ev;
        ev.addr = addr;
        ev.newValue = value;
        if (inRegion.at(tid) && isPersistentAddr(addr)) {
            ev.kind = TraceEvent::Kind::LoggedStore;
            ev.oldValue = peek(addr);
            ev.storeSeq = ++nextStoreSeq;
        } else {
            ev.kind = TraceEvent::Kind::PlainStore;
        }
        trace(tid).push_back(ev);
        memory[wordAlign(addr)] = value;
    }

    /** Begin a failure-atomic region. */
    void
    regionBegin(CoreId tid)
    {
        panicIf(inRegion.at(tid), "nested region on thread {}", tid);
        inRegion[tid] = true;
        TraceEvent ev;
        ev.kind = TraceEvent::Kind::RegionBegin;
        trace(tid).push_back(ev);
    }

    /** End a region; assigns the global completion number. */
    void
    regionEnd(CoreId tid)
    {
        panicIf(!inRegion.at(tid), "regionEnd outside region");
        inRegion[tid] = false;
        TraceEvent ev;
        ev.kind = TraceEvent::Kind::RegionEnd;
        ev.globalSeq = nextRegionSeq++;
        trace(tid).push_back(ev);
    }

    /** Acquire @p lockId; tickets replay the recorded order. */
    void
    lockAcquire(CoreId tid, std::uint32_t lockId)
    {
        TraceEvent ev;
        ev.kind = TraceEvent::Kind::LockAcquire;
        ev.lockId = lockId;
        ev.ticket = lockTickets[lockId]++;
        trace(tid).push_back(ev);
    }

    void
    lockRelease(CoreId tid, std::uint32_t lockId)
    {
        TraceEvent ev;
        ev.kind = TraceEvent::Kind::LockRelease;
        ev.lockId = lockId;
        trace(tid).push_back(ev);
    }

    /** Record @p cycles of non-memory work. */
    void
    compute(CoreId tid, std::uint32_t cycles)
    {
        TraceEvent ev;
        ev.kind = TraceEvent::Kind::Compute;
        ev.cycles = cycles;
        trace(tid).push_back(ev);
    }

    /**
     * Seed a word as already-durable initial state (setup data that
     * the timed run starts from). No trace event is recorded; the
     * system copies preloaded words into the memory image (both
     * views) before timing replay.
     */
    void
    preload(Addr addr, std::uint64_t value)
    {
        memory[wordAlign(addr)] = value;
        preloaded[wordAlign(addr)] = value;
    }

    const std::unordered_map<Addr, std::uint64_t> &
    preloadedWords() const
    {
        return preloaded;
    }

    /** Regions completed so far. */
    std::uint64_t regionsCompleted() const { return nextRegionSeq; }

    /** Move the recorded traces out. */
    RegionTrace
    takeTrace()
    {
        RegionTrace result;
        result.threads = std::move(traces);
        traces.assign(result.threads.size(), {});
        return result;
    }

    const ThreadTrace &threadTrace(CoreId tid) const
    {
        return traces.at(tid);
    }

    /** The complete functional memory, for validating final state. */
    const std::unordered_map<Addr, std::uint64_t> &
    functionalMemory() const
    {
        return memory;
    }

  private:
    ThreadTrace &trace(CoreId tid) { return traces.at(tid); }

    std::vector<ThreadTrace> traces;
    std::vector<bool> inRegion;
    std::unordered_map<Addr, std::uint64_t> memory;
    std::unordered_map<Addr, std::uint64_t> preloaded;
    std::unordered_map<std::uint32_t, std::uint64_t> lockTickets;
    std::uint64_t nextRegionSeq = 0;
    std::uint64_t nextStoreSeq = 0;
};

} // namespace strand

#endif // RUNTIME_RECORDER_HH
