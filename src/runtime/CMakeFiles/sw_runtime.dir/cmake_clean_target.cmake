file(REMOVE_RECURSE
  "libsw_runtime.a"
)
