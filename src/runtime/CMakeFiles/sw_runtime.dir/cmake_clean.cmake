file(REMOVE_RECURSE
  "CMakeFiles/sw_runtime.dir/instrumentor.cc.o"
  "CMakeFiles/sw_runtime.dir/instrumentor.cc.o.d"
  "CMakeFiles/sw_runtime.dir/recovery.cc.o"
  "CMakeFiles/sw_runtime.dir/recovery.cc.o.d"
  "libsw_runtime.a"
  "libsw_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
