# Empty dependencies file for sw_runtime.
# This may be replaced when dependencies are built.
