#include "runtime/instrumentor.hh"

#include <algorithm>

namespace strand
{

Instrumentor::Instrumentor(const InstrumentorParams &params)
    : params(params)
{
    fatalIf(params.logStyle == LogStyle::Redo &&
                params.model != PersistencyModel::Txn,
            "redo logging is defined for failure-atomic transactions "
            "(paper §VII)");
}

void
Instrumentor::push(OpStream &out, Op op)
{
    op.intents |= pendingIntents;
    pendingIntents = 0;
    out.push_back(op);
}

void
Instrumentor::emitPairOrder(OpStream &out)
{
    ++loweringStats.barriers;
    pendingIntents |= kIntentBarrier;
    switch (params.design) {
      case HwDesign::IntelX86:
        push(out, Op::sfence());
        break;
      case HwDesign::Hops:
        push(out, Op::ofence());
        break;
      case HwDesign::NoPersistQueue:
      case HwDesign::StrandWeaver:
        push(out, Op::persistBarrier());
        break;
      case HwDesign::NonAtomic:
        // No pairwise ordering at all: the log and the update drain
        // on separate strands and may persist in either order. The
        // emitted op is a NewStrand, but its *intent* stays Barrier
        // (explicit intents override the intrinsic NewStrand), so
        // PMO-san checks the ordering the source program meant and
        // flags this design's reorderings — the expected-fail
        // self-test.
        --loweringStats.barriers;
        push(out, Op::newStrand());
        break;
    }
}

void
Instrumentor::emitStrandSep(OpStream &out)
{
    pendingIntents |= kIntentNewStrand;
    switch (params.design) {
      case HwDesign::NoPersistQueue:
      case HwDesign::StrandWeaver:
      case HwDesign::NonAtomic:
        push(out, Op::newStrand());
        break;
      default:
        // No hardware primitive; the intent rides the next op.
        break;
    }
}

void
Instrumentor::emitDrain(OpStream &out)
{
    ++loweringStats.drains;
    pendingIntents |= kIntentJoin;
    switch (params.design) {
      case HwDesign::IntelX86:
        push(out, Op::sfence());
        break;
      case HwDesign::Hops:
        push(out, Op::dfence());
        break;
      case HwDesign::NoPersistQueue:
      case HwDesign::StrandWeaver:
      case HwDesign::NonAtomic:
        // NON-ATOMIC removes only the log/update pair ordering
        // (§VI-A); persists still drain at synchronization points.
        push(out, Op::joinStrand());
        break;
    }
}

std::uint64_t
Instrumentor::emitLogEntry(OpStream &out, ThreadState &state, CoreId tid,
                           LogType type, Addr addr, std::uint64_t value,
                           std::uint64_t globalSeq)
{
    const LogLayout &layout = params.layout;
    fatalIf(state.tail - state.head >= layout.entriesPerThread,
            "log buffer exhausted: the pruner cannot keep up or a "
            "region exceeds log capacity");
    std::uint64_t idx = state.tail++;
    Addr base = layout.entryAddr(tid, idx);

    push(out, Op::store(base + log_field::type,
                            static_cast<std::uint64_t>(type)));
    push(out, Op::store(base + log_field::addr, addr));
    push(out, Op::store(base + log_field::value, value));
    // Integrity checksum over the immutable words; recovery verifies
    // it on published entries to catch media bit flips (commit and
    // invalidation touch only the uncovered valid/commitMarker words,
    // so the checksum stays true for the entry's whole lifetime).
    push(out, Op::store(base + log_field::checksum,
                        entryChecksum(static_cast<std::uint64_t>(type),
                                      addr, value, globalSeq, idx)));
    push(out, Op::store(base + log_field::commitMarker, 0));
    // The entry sequence distinguishes live entries from stale laps.
    push(out, Op::store(base + log_field::seq, idx));
    // Cross-thread rollback order (scalar clock).
    push(out, Op::store(base + log_field::globalSeq, globalSeq));
    // Valid is written last.
    push(out, Op::store(base + log_field::valid, 1));
    push(out, Op::clwb(base));

    loweringStats.stores += 8;
    loweringStats.clwbs += 1;
    ++loweringStats.logEntries;
    state.regionEntries.push_back(idx);
    return idx;
}

void
Instrumentor::emitSyncEntryOverhead(OpStream &out)
{
    // Models the happens-before bookkeeping cost of each
    // language-level model (§VI-B "Sensitivity to language-level
    // persistency model"): ATLAS maintains a heavier-weight global
    // ordering graph than SFR; TXN relies on external isolation and
    // keeps almost nothing.
    switch (params.model) {
      case PersistencyModel::Atlas:
        // ATLAS walks and updates a global happens-before graph on
        // every outermost-critical-section boundary — the
        // heavyweight mechanism the paper contrasts with SFR
        // (§VI-B); published ATLAS overheads are severe.
        push(out, Op::compute(520));
        break;
      case PersistencyModel::Sfr:
        // SFR logs happens-before relations at each boundary.
        push(out, Op::compute(130));
        break;
      case PersistencyModel::Txn:
        push(out, Op::compute(5));
        break;
    }
}

void
Instrumentor::emitTxnCommit(OpStream &out, ThreadState &state,
                            CoreId tid, const RegionCommitInfo &region)
{
    const LogLayout &layout = params.layout;

    // 0. Everything this region logged and updated must be durable.
    emitDrain(out);

    // 1. Set the commit marker on the terminating entry (Figure 6
    // step 2) and make it durable before invalidation begins.
    Addr cmEntry = layout.entryAddr(tid, region.lastEntry);
    push(out, Op::store(cmEntry + log_field::commitMarker, 1));
    push(out, Op::clwb(cmEntry));
    loweringStats.stores += 1;
    loweringStats.clwbs += 1;
    emitDrain(out);

    // 2. Invalidate the region's entries (step 3); independent
    // entries invalidate concurrently (separate strands / one epoch).
    for (std::uint64_t idx : region.entries) {
        Addr base = layout.entryAddr(tid, idx);
        push(out, Op::store(base + log_field::valid, 0));
        push(out, Op::clwb(base));
        loweringStats.stores += 1;
        loweringStats.clwbs += 1;
        emitStrandSep(out);
    }
    emitDrain(out);

    // 3. Advance and flush the persistent head pointer (step 4).
    state.head = region.lastEntry + 1;
    push(out, Op::store(layout.headPtrAddr(tid), state.head));
    push(out, Op::clwb(layout.headPtrAddr(tid)));
    loweringStats.stores += 1;
    loweringStats.clwbs += 1;
    emitDrain(out);

    ++loweringStats.commits;
}

void
Instrumentor::emitRedoCommit(OpStream &out, ThreadState &state,
                             CoreId tid, const RegionCommitInfo &region)
{
    const LogLayout &layout = params.layout;

    // 1. All redo entries must be durable before the commit marker
    // (within the transaction's strand a persist barrier suffices;
    // entries flush concurrently ahead of it).
    emitPairOrder(out);

    // 2. Commit marker on the terminating entry. Once durable, the
    // transaction is logically applied: recovery replays it forward.
    Addr cmEntry = layout.entryAddr(tid, region.lastEntry);
    push(out, Op::store(cmEntry + log_field::commitMarker, 1));
    push(out, Op::clwb(cmEntry));
    loweringStats.stores += 1;
    loweringStats.clwbs += 1;

    // 3. In-place updates follow the marker (ordered by a persist
    // barrier: their stores may not drain before the marker's flush
    // has read its line).
    emitPairOrder(out);
    Addr lastLine = ~static_cast<Addr>(0);
    for (std::size_t i = 0; i < state.deferredUpdates.size(); ++i) {
        auto [addr, value] = state.deferredUpdates[i];
        push(out, Op::store(addr, value));
        loweringStats.stores += 1;
        bool nextSameLine =
            i + 1 < state.deferredUpdates.size() &&
            lineAlign(state.deferredUpdates[i + 1].first) ==
                lineAlign(addr);
        if (!nextSameLine) {
            push(out, Op::clwb(addr));
            loweringStats.clwbs += 1;
        }
        lastLine = lineAlign(addr);
    }
    (void)lastLine;
    state.deferredUpdates.clear();

    // 4. Updates durable, then truncate the log (entries invalid,
    // head past the region) exactly as the undo commit does.
    emitDrain(out);
    for (std::uint64_t idx : region.entries) {
        Addr base = layout.entryAddr(tid, idx);
        push(out, Op::store(base + log_field::valid, 0));
        push(out, Op::clwb(base));
        loweringStats.stores += 1;
        loweringStats.clwbs += 1;
        emitStrandSep(out);
    }
    emitDrain(out);
    state.head = region.lastEntry + 1;
    push(out, Op::store(layout.headPtrAddr(tid), state.head));
    push(out, Op::clwb(layout.headPtrAddr(tid)));
    loweringStats.stores += 1;
    loweringStats.clwbs += 1;
    emitDrain(out);

    ++loweringStats.commits;
}

OpStream
Instrumentor::buildPrunerStream(
    const std::vector<RegionCommitInfo> &regions)
{
    const LogLayout &layout = params.layout;
    OpStream out;
    pendingIntents = 0;

    // Batched commits (the decoupled-SFR pruning discipline): wait
    // for a window of regions to complete, then make the whole batch
    // durable with a single commit-frontier advance followed by the
    // owners' head-pointer updates. Per-entry invalidation is
    // unnecessary — entries below a thread's head, and regions below
    // the frontier, are dead to recovery.
    std::size_t next = 0;
    while (next < regions.size()) {
        std::size_t batchEnd =
            std::min(next + static_cast<std::size_t>(
                                prunerWindowRegions),
                     regions.size());

        // 1. Wait until every region in the batch has completed
        // (handshakes in global order; each release follows the
        // owner's drain, so the regions are durable).
        for (std::size_t i = next; i < batchEnd; ++i) {
            auto gate = static_cast<std::uint32_t>(
                regionDoneLockBase + regions[i].globalSeq);
            push(out, Op::lockAcquire(gate, 1));
            push(out, Op::lockRelease(gate));
        }

        // 2. Advance the commit frontier durably. Everything at or
        // below it is committed from recovery's point of view.
        std::uint64_t frontier = regions[batchEnd - 1].globalSeq + 1;
        push(out, Op::store(layout.frontierAddr(), frontier));
        push(out, Op::clwb(layout.frontierAddr()));
        loweringStats.stores += 1;
        loweringStats.clwbs += 1;
        emitDrain(out);

        // 3. Only after the frontier is durable may the per-thread
        // head pointers pass the batch (a head beyond an uncommitted
        // region would hide entries recovery still needs).
        std::uint64_t newHead[64] = {};
        bool touched[64] = {};
        for (std::size_t i = next; i < batchEnd; ++i) {
            const RegionCommitInfo &region = regions[i];
            touched[region.owner] = true;
            if (region.lastEntry + 1 > newHead[region.owner])
                newHead[region.owner] = region.lastEntry + 1;
        }
        for (CoreId t = 0; t < layout.maxThreads; ++t) {
            if (!touched[t])
                continue;
            push(out, 
                Op::store(layout.headPtrAddr(t), newHead[t]));
            push(out, Op::clwb(layout.headPtrAddr(t)));
            loweringStats.stores += 1;
            loweringStats.clwbs += 1;
            emitStrandSep(out);
        }
        emitDrain(out);

        // 4. Publish per-region pruned tickets (run-ahead window).
        for (std::size_t i = next; i < batchEnd; ++i) {
            auto done = static_cast<std::uint32_t>(
                prunedLockBase + regions[i].globalSeq);
            push(out, Op::lockAcquire(done, 0));
            push(out, Op::lockRelease(done));
        }
        loweringStats.commits += batchEnd - next;
        next = batchEnd;
    }
    return out;
}

std::vector<OpStream>
Instrumentor::lower(const RegionTrace &trace)
{
    std::vector<OpStream> streams(trace.threads.size());
    std::vector<ThreadState> states(trace.threads.size());
    std::vector<RegionCommitInfo> regions;
    regionLogInfos.clear();

    for (CoreId tid = 0; tid < trace.threads.size(); ++tid) {
        OpStream &out = streams[tid];
        ThreadState &state = states[tid];
        std::size_t pendingRun = 0;
        pendingIntents = 0;

        for (const TraceEvent &ev : trace.threads[tid]) {
            switch (ev.kind) {
              case TraceEvent::Kind::Load:
                push(out, Op::load(ev.addr));
                ++loweringStats.loads;
                break;

              case TraceEvent::Kind::PlainStore:
                push(out, Op::store(ev.addr, ev.newValue));
                ++loweringStats.stores;
                break;

              case TraceEvent::Kind::Compute:
                push(out, Op::compute(ev.cycles));
                break;

              case TraceEvent::Kind::LockAcquire:
                push(out, Op::lockAcquire(ev.lockId, ev.ticket));
                ++state.lockDepth;
                // Strand persistency decouples persist from
                // visibility order, so persists inside the critical
                // section could reorder before the acquire; a
                // JoinStrand after the acquire forbids it (§III).
                // Intel x86 and HOPS need nothing here: their
                // epoch ordering already covers it.
                switch (params.design) {
                  case HwDesign::NoPersistQueue:
                  case HwDesign::StrandWeaver:
                  case HwDesign::NonAtomic:
                    emitDrain(out);
                    break;
                  default:
                    break;
                }
                break;

              case TraceEvent::Kind::LockRelease:
                // Persists must complete before the lock hands off;
                // the core orders the release behind this drain.
                emitDrain(out);
                push(out, Op::lockRelease(ev.lockId));
                panicIf(state.lockDepth == 0,
                        "lock release without acquire in trace");
                --state.lockDepth;
                // Hand completed regions to the pruner once no data
                // locks are held (the release above is ordered after
                // the drain, so the regions are durable).
                if (usesPruner() && state.lockDepth == 0) {
                    for (std::uint64_t seq : state.pendingHandshakes) {
                        auto gate = static_cast<std::uint32_t>(
                            regionDoneLockBase + seq);
                        push(out, Op::lockAcquire(gate, 0));
                        push(out, Op::lockRelease(gate));
                    }
                    state.pendingHandshakes.clear();
                    // Bounded run-ahead: wait for the pruner to have
                    // committed this thread's region from a window
                    // ago, so the circular log is never lapped.
                    while (state.myRegions.size() >
                           prunerWindowRegions) {
                        auto done = static_cast<std::uint32_t>(
                            prunedLockBase + state.myRegions.front());
                        state.myRegions.pop_front();
                        push(out, Op::lockAcquire(done, 1));
                        push(out, Op::lockRelease(done));
                    }
                }
                break;

              case TraceEvent::Kind::RegionBegin: {
                LogType type = params.model == PersistencyModel::Txn
                                   ? LogType::TxBegin
                                   : LogType::Acquire;
                state.regionEntries.clear();
                state.regionFirstEntry = state.tail;
                emitSyncEntryOverhead(out);
                if (params.logStyle == LogStyle::Redo) {
                    // Each transaction runs on its own strand (§VII).
                    emitStrandSep(out);
                    emitLogEntry(out, state, tid, type, 0, 0, 0);
                    break;
                }
                emitLogEntry(out, state, tid, type, 0, 0, 0);
                emitPairOrder(out);
                emitStrandSep(out);
                break;
              }

              case TraceEvent::Kind::LoggedStore: {
                state.regionStores.emplace_back(ev.addr, ev.newValue);
                if (params.logStyle == LogStyle::Redo) {
                    // Redo: record the NEW value in the log now; the
                    // in-place update waits for the commit marker.
                    // Entries within the transaction's strand flush
                    // concurrently (no intervening barriers).
                    emitLogEntry(out, state, tid, LogType::RedoStore,
                                 ev.addr, ev.newValue, ev.storeSeq);
                    state.deferredUpdates.emplace_back(ev.addr,
                                                       ev.newValue);
                    break;
                }
                // Figure 5: log; flush; order; update; flush; new
                // strand. A run of consecutive stores to the same
                // cache line is batched (the coalescing real
                // instrumentation performs): its log entries flush
                // concurrently on the strand, one barrier orders
                // them before the run's stores, and the line is
                // flushed once.
                if (pendingRun > 0) {
                    --pendingRun;
                    break; // already lowered as part of the run
                }
                const TraceEvent *events = trace.threads[tid].data();
                std::size_t here = &ev - events;
                std::size_t runEnd = here + 1;
                // A batch must fit one strand buffer (4 entries):
                // two log flushes, the barrier, and the line flush.
                while (runEnd < here + 2 &&
                       runEnd < trace.threads[tid].size() &&
                       events[runEnd].kind ==
                           TraceEvent::Kind::LoggedStore &&
                       lineAlign(events[runEnd].addr) ==
                           lineAlign(ev.addr)) {
                    ++runEnd;
                }
                pendingRun = runEnd - here - 1;
                for (std::size_t i = here; i < runEnd; ++i) {
                    emitLogEntry(out, state, tid, LogType::Store,
                                 events[i].addr, events[i].oldValue,
                                 events[i].storeSeq);
                }
                emitPairOrder(out);
                for (std::size_t i = here; i < runEnd; ++i) {
                    push(out, Op::store(events[i].addr,
                                            events[i].newValue));
                    loweringStats.stores += 1;
                }
                push(out, Op::clwb(ev.addr));
                loweringStats.clwbs += 1;
                emitStrandSep(out);
                break;
              }

              case TraceEvent::Kind::RegionEnd: {
                LogType type = params.model == PersistencyModel::Txn
                                   ? LogType::TxEnd
                                   : LogType::Release;
                emitSyncEntryOverhead(out);
                // The end entry records the region's global sequence
                // so recovery can compare it against the pruner's
                // commit frontier.
                std::uint64_t idx = emitLogEntry(
                    out, state, tid, type, 0, 0, ev.globalSeq);
                if (params.logStyle != LogStyle::Redo) {
                    emitPairOrder(out);
                    emitStrandSep(out);
                }

                RegionCommitInfo info;
                info.owner = tid;
                info.globalSeq = ev.globalSeq;
                info.entries = state.regionEntries;
                info.lastEntry = idx;

                RegionLogInfo logInfo;
                logInfo.owner = tid;
                logInfo.globalSeq = ev.globalSeq;
                logInfo.firstEntry = state.regionFirstEntry;
                logInfo.lastEntry = idx;
                logInfo.stores = std::move(state.regionStores);
                regionLogInfos.push_back(std::move(logInfo));
                state.regionStores.clear();

                if (params.model == PersistencyModel::Txn) {
                    // Commit inside the critical section, before the
                    // locks release.
                    if (params.logStyle == LogStyle::Redo)
                        emitRedoCommit(out, state, tid, info);
                    else
                        emitTxnCommit(out, state, tid, info);
                } else {
                    regions.push_back(std::move(info));
                    state.pendingHandshakes.push_back(ev.globalSeq);
                    state.myRegions.push_back(ev.globalSeq);
                    // The windowed pruned-ticket wait bounds how far
                    // the log can run ahead of the pruner.
                    state.head = idx + 1;
                }
                state.regionEntries.clear();
                break;
              }
            }
        }

        // Hand over any regions whose enclosing sync pattern ended
        // the stream.
        if (usesPruner()) {
            for (std::uint64_t seq : state.pendingHandshakes) {
                auto gate = static_cast<std::uint32_t>(
                    regionDoneLockBase + seq);
                push(out, Op::lockAcquire(gate, 0));
                push(out, Op::lockRelease(gate));
            }
            state.pendingHandshakes.clear();
        }
        emitDrain(out);
    }

    if (usesPruner()) {
        std::sort(regions.begin(), regions.end(),
                  [](const RegionCommitInfo &a,
                     const RegionCommitInfo &b) {
                      return a.globalSeq < b.globalSeq;
                  });
        streams.push_back(buildPrunerStream(regions));
    }
    return streams;
}

} // namespace strand
