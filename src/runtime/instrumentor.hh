/**
 * @file
 * The lowering pass: region traces to ISA op streams (§V, Figure 5).
 *
 * For each (hardware design, language-level persistency model) pair
 * the instrumentor expands runtime events into the exact primitive
 * sequences the paper prescribes:
 *
 *  - Every LoggedStore becomes: create + flush a 64-byte undo-log
 *    entry, a pairwise ordering primitive, the in-place update and
 *    its flush, and a strand separator:
 *      Intel x86:   log; CLWB; SFENCE; store; CLWB
 *      HOPS:        log; CLWB; ofence; store; CLWB
 *      StrandWeaver log; CLWB; PB;     store; CLWB; NewStrand
 *      non-atomic:  log; CLWB;         store; CLWB
 *  - Lock acquires are followed and releases preceded by the
 *    design's drain primitive (JoinStrand / SFENCE / dfence) so
 *    persists never leak across synchronization (§III).
 *  - TXN commits every region inside its critical section, before
 *    the enclosing locks release (Figure 6 protocol).
 *  - SFR and ATLAS do not stall program threads for log commits:
 *    each completed region is handed to a background *pruner* (an
 *    extra core, the role of Decoupled-SFR's log pruning) through a
 *    per-region ticket handshake. The pruner commits regions in
 *    global region-completion order — which keeps post-crash
 *    rollback a happens-before-consistent cut — and pays the
 *    commit-marker / invalidation / head-update PM traffic off the
 *    program threads' critical paths.
 */

#ifndef RUNTIME_INSTRUMENTOR_HH
#define RUNTIME_INSTRUMENTOR_HH

#include <deque>
#include <vector>

#include "cpu/op.hh"
#include "persist/design.hh"
#include "runtime/layout.hh"
#include "runtime/trace.hh"

namespace strand
{

/** Base lock id for the per-region completion handshake. */
constexpr std::uint32_t regionDoneLockBase = 0x4000'0000;

/** Base lock id for the pruner's per-region done tickets. */
constexpr std::uint32_t prunedLockBase = 0x8000'0000;

/** Regions a thread may run ahead of the pruner (bounds log use). */
constexpr unsigned prunerWindowRegions = 32;

/** Write-ahead logging style. */
enum class LogStyle
{
    /** Undo logging: old values, logs persist before updates. */
    Undo,
    /**
     * Redo logging (the paper's §VII sketch, implemented here): a
     * transaction records new values in its log on one strand,
     * issues a persist barrier, sets the commit marker, and only
     * then performs and flushes the in-place updates. Recovery
     * replays committed regions forward. TXN model only.
     */
    Redo,
};

/** Instrumentor configuration. */
struct InstrumentorParams
{
    HwDesign design = HwDesign::StrandWeaver;
    PersistencyModel model = PersistencyModel::Txn;
    LogStyle logStyle = LogStyle::Undo;
    LogLayout layout;
};

/**
 * One region's footprint in the per-thread log, recorded during
 * lowering. The crash harness's recovery oracle uses this to decide,
 * from post-crash log metadata alone, whether a region's updates must
 * (committed) or must not (rolled back) survive recovery.
 */
struct RegionLogInfo
{
    CoreId owner = 0;
    std::uint64_t globalSeq = 0;
    /** Monotonic index of the region's first log entry. */
    std::uint64_t firstEntry = 0;
    /** Monotonic index of the terminating (TxEnd/Release) entry. */
    std::uint64_t lastEntry = 0;
    /** Logged (addr, newValue) pairs, in program order. */
    std::vector<std::pair<Addr, std::uint64_t>> stores;
};

/** Per-run lowering statistics (for Table II style reporting). */
struct LoweringStats
{
    std::uint64_t clwbs = 0;
    std::uint64_t stores = 0;
    std::uint64_t loads = 0;
    std::uint64_t barriers = 0; ///< pairwise primitives emitted
    std::uint64_t drains = 0;   ///< JS / SFENCE / dfence emitted
    std::uint64_t logEntries = 0;
    std::uint64_t commits = 0;
};

/**
 * Lowers a RegionTrace into one op stream per thread, plus — for the
 * SFR and ATLAS models — a trailing pruner stream that must run on
 * an additional core.
 */
class Instrumentor
{
  public:
    explicit Instrumentor(const InstrumentorParams &params);

    /**
     * Lower all threads. For SFR/ATLAS the returned vector has
     * trace.threads.size() + 1 streams; the last is the pruner's.
     */
    std::vector<OpStream> lower(const RegionTrace &trace);

    const LoweringStats &stats() const { return loweringStats; }

    /** Region → log-entry map of the last lower() call, in per-
     * thread discovery order. */
    const std::vector<RegionLogInfo> &
    regionLog() const
    {
        return regionLogInfos;
    }

    /** @return true if lower() appends a pruner stream. */
    bool
    usesPruner() const
    {
        return params.model != PersistencyModel::Txn;
    }

  private:
    struct ThreadState
    {
        /** Monotonic index of the next log entry to allocate. */
        std::uint64_t tail = 0;
        /** Oldest entry not yet committed (monotonic). */
        std::uint64_t head = 0;
        /** Entries (monotonic indices) of the open/last region. */
        std::vector<std::uint64_t> regionEntries;
        /** First entry index of the open region. */
        std::uint64_t regionFirstEntry = 0;
        /** Current lock nesting depth (during lowering). */
        unsigned lockDepth = 0;
        /** Regions completed but not yet handed to the pruner. */
        std::vector<std::uint64_t> pendingHandshakes;
        /** This thread's region seqs not yet known-pruned. */
        std::deque<std::uint64_t> myRegions;
        /** Redo: in-place updates deferred to region commit. */
        std::vector<std::pair<Addr, std::uint64_t>> deferredUpdates;
        /** Logged (addr, newValue) pairs of the open region. */
        std::vector<std::pair<Addr, std::uint64_t>> regionStores;
    };

    /** A completed region, as the pruner needs to commit it. */
    struct RegionCommitInfo
    {
        CoreId owner = 0;
        std::uint64_t globalSeq = 0;
        std::vector<std::uint64_t> entries;
        std::uint64_t lastEntry = 0;
    };

    /**
     * Append @p op, stamping any pending ordering intents onto it.
     * All ops must be emitted through here: emitPairOrder /
     * emitStrandSep / emitDrain accumulate kIntent* bits in
     * pendingIntents, and the next emitted op carries them — which is
     * how designs without a dedicated primitive (e.g. no NewStrand op
     * on Intel x86 / HOPS) still record the intended strand
     * boundaries for PMO-san.
     */
    void push(OpStream &out, Op op);

    /** Emit the design's pairwise ordering primitive. */
    void emitPairOrder(OpStream &out);
    /** Emit the design's strand separator (NewStrand), if any. */
    void emitStrandSep(OpStream &out);
    /** Emit the design's durability drain (JS/SFENCE/dfence). */
    void emitDrain(OpStream &out);

    /**
     * Emit creation + flush of one log entry.
     * @return the entry's monotonic index.
     */
    std::uint64_t emitLogEntry(OpStream &out, ThreadState &state,
                               CoreId tid, LogType type, Addr addr,
                               std::uint64_t value,
                               std::uint64_t globalSeq);

    /** Model-specific extra work for sync log entries. */
    void emitSyncEntryOverhead(OpStream &out);

    /**
     * TXN: commit the just-ended region in place (Figure 6
     * protocol), inside the enclosing critical section.
     */
    void emitTxnCommit(OpStream &out, ThreadState &state, CoreId tid,
                       const RegionCommitInfo &region);

    /**
     * Redo: commit marker, then the deferred in-place updates, then
     * log truncation — all inside the critical section.
     */
    void emitRedoCommit(OpStream &out, ThreadState &state, CoreId tid,
                        const RegionCommitInfo &region);

    /** Build the background pruner's stream (SFR/ATLAS). */
    OpStream buildPrunerStream(
        const std::vector<RegionCommitInfo> &regions);

    InstrumentorParams params;
    LoweringStats loweringStats;
    std::vector<RegionLogInfo> regionLogInfos;
    /** kIntent* bits awaiting the next push()ed op. */
    std::uint8_t pendingIntents = 0;
};

} // namespace strand

#endif // RUNTIME_INSTRUMENTOR_HH
