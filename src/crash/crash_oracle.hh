/**
 * @file
 * Recovery oracle for crash-point fault injection.
 *
 * Given a workload's region trace, the instrumentor's region -> log
 * mapping, and a snapshot of PM taken at an arbitrary crash point,
 * the oracle decides from the snapshot's log metadata alone which
 * failure-atomic regions were durably committed at the crash, and
 * checks that the post-recovery image reflects exactly those regions:
 *
 *  - committed regions' logged stores must survive recovery
 *    (durability), and
 *  - uncommitted regions' stores must be rolled back to the value of
 *    the last committed store (atomicity).
 *
 * A region counts as committed when any of the commit protocol's
 * durable outcomes is visible in the pre-recovery snapshot: its
 * owner's persistent head pointer has passed the region's terminating
 * entry, the terminating entry carries a durable commit marker
 * (Figure 6 step 2), or the region's global sequence lies below the
 * pruner's commit frontier (SFR/ATLAS batched commits). Because the
 * commit protocols drain all of a region's persists before making any
 * of these outcomes durable, "committed" implies every logged update
 * (undo) or log entry (redo) already reached PM.
 */

#ifndef CRASH_CRASH_ORACLE_HH
#define CRASH_CRASH_ORACLE_HH

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/memory_image.hh"
#include "runtime/instrumentor.hh"
#include "runtime/recovery.hh"
#include "runtime/trace.hh"

namespace strand
{

class CrashOracle
{
  public:
    /**
     * @param trace The recorded region trace (plain-store addresses
     * are excluded from value checks).
     * @param regionLog The instrumentor's region -> log-entry map
     * for the lowering under test.
     * @param preload Words durable before the run began.
     */
    CrashOracle(const RegionTrace &trace,
                const std::vector<RegionLogInfo> &regionLog,
                const std::unordered_map<Addr, std::uint64_t> &preload,
                const LogLayout &layout);

    /**
     * Classify every region against a pre-recovery snapshot.
     * @return one flag per region, in globalSeq order.
     */
    std::vector<bool>
    committedRegions(const MemoryImage &snapshot) const;

    /**
     * Check a recovered image against the expected per-address
     * values implied by @p committed.
     *
     * With a RecoveryReport, the oracle distinguishes "degraded but
     * consistent" from silent corruption: a mismatch is excused iff
     * recovery explicitly quarantined the address (residual poisoned
     * heap line) or every value in the address's history comes from
     * threads recovery quarantined (their logs were fenced off, so
     * their regions' outcomes are declared unknown rather than
     * wrong). A FULL verdict quarantines nothing, so recovery
     * claiming success over corrupted data still fails here — the
     * teeth behind the checksum regression test.
     *
     * @return empty string if consistent, else a description of the
     * first violation.
     */
    std::string
    checkRecovered(const MemoryImage &recovered,
                   const std::vector<bool> &committed,
                   const RecoveryReport *report = nullptr) const;

    /** Regions known to the oracle (globalSeq order). */
    std::size_t numRegions() const { return regions.size(); }

    /** Logged addresses subject to value checks. */
    std::size_t numCheckedAddrs() const { return writes.size(); }

  private:
    /** One logged store, attributed to its region. */
    struct WriteRec
    {
        std::size_t region; ///< index into the sorted region vector
        std::uint64_t value;
    };

    std::vector<RegionLogInfo> regions; ///< sorted by globalSeq
    /** Per-address store history, in commit order. */
    std::unordered_map<Addr, std::vector<WriteRec>> writes;
    /** Pre-run durable value of each logged address. */
    std::unordered_map<Addr, std::uint64_t> initial;
    /** Addresses also touched by unlogged stores: not checkable. */
    std::unordered_set<Addr> excluded;
    LogLayout layout;
};

} // namespace strand

#endif // CRASH_CRASH_ORACLE_HH
