/**
 * @file
 * Crash-point fault-injection harness.
 *
 * For one (hardware design, persistency model, workload) cell the
 * harness evaluates the Figure 6 recovery protocol at a planned set
 * of crash points, in one of two modes:
 *
 * Two-run mode (the oracle, default):
 *
 *  1. A reference run enumerates injectable crash points: every PM
 *     admission (the persist trace), every persist-engine flush
 *     completion, and a configurable number of random ticks drawn
 *     from the deterministic Rng. Between admissions the persisted
 *     image cannot change, so admission points cover every distinct
 *     post-crash state; completion and random points exercise the
 *     same states through an independent path.
 *  2. An injection run re-executes the identical schedule and, at
 *     each selected crash point, snapshots the persisted image (the
 *     state a real power failure would leave), runs recovery on the
 *     snapshot, and validates the result against the CrashOracle
 *     plus the workload's own structural invariants. The snapshot is
 *     discarded afterwards, so the run itself is never perturbed.
 *
 * Forked mode (SW_CRASH_FORK=1 / CrashHarnessConfig::fork): ONE warm
 * run both enumerates the points and captures the pre-image of every
 * ADR admission (MemoryImage::AdmissionUndo). The harness then forks
 * the final image and rewinds it admission by admission, newest
 * first, evaluating each planned point on the reconstructed persisted
 * state — so only recovery re-executes per point:
 * O(run + points x recovery) instead of O(points x run). A crash
 * point "at tick T" means the persisted state after every admission
 * with when <= T in both modes (injection runs at EventPriority::Stat,
 * admissions at MemoryResponse), and the point plan is shared, so
 * verdicts are bit-identical between the modes at a fixed seed; the
 * two-run mode is retained as the slow trusted oracle (CI diffs the
 * two JSON outputs).
 *
 * The NON-ATOMIC design is expected to fail these checks (it omits
 * the log/update persist ordering); the harness records its
 * violations without treating them as errors, so the matrix doubles
 * as evidence that the oracle has teeth.
 */

#ifndef CRASH_CRASH_HARNESS_HH
#define CRASH_CRASH_HARNESS_HH

#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "crash/crash_oracle.hh"
#include "crash/media_faults.hh"
#include "sim/stats.hh"

namespace strand
{

/** Harness knobs. */
struct CrashHarnessConfig
{
    /**
     * Target number of injected crash points per cell. Enumerated
     * points (admissions + completions) are sampled evenly down to
     * this budget, always keeping the first and last; additional
     * random ticks are drawn from the Rng and deduplicated against
     * the selection (see planCrashPoints()). 0 disables injection
     * entirely.
     */
    unsigned pointBudget = 32;
    /** Seed for random crash-tick selection. */
    std::uint64_t seed = 0xc4a54;
    /** Undo or redo logging (redo is TXN-only). */
    LogStyle logStyle = LogStyle::Undo;
    /**
     * Torn-cacheline injection: at each crash point, admit only the
     * first tornWords written 8-byte words of the final flushed line
     * (PM write granularity sits below ADR line atomicity). Values
     * >= wordsPerLine leave the admission whole. Wired to
     * SW_TORN_WORDS by the benches.
     */
    unsigned tornWords = wordsPerLine;
    /** Forwarded to the systems built for both runs. */
    ExperimentConfig experiment;
    /**
     * Attach the PMO-san online persist-order checker to the
     * injection run; violations are recorded as an extra failing
     * point. Unset defers to SW_PMOSAN.
     */
    std::optional<bool> pmosan;
    /**
     * Forked-snapshot exploration: rewind one warm run's final image
     * instead of re-simulating per point (see the file comment).
     * Unset defers to SW_CRASH_FORK; the default is two-run mode.
     */
    std::optional<bool> fork;
    /**
     * Media-fault injection applied to every crash-point snapshot
     * (poisoned lines, bit flips, partial ADR drain — see
     * media_faults.hh). Faults are a pure function of (media.seed,
     * crash tick), so forked and two-run verdicts stay
     * bit-identical. All-zero (the default) disables the model and
     * preserves the historical behavior exactly.
     */
    MediaFaultConfig media;
    /**
     * Verify log-entry checksums during recovery. Off reproduces
     * the un-checksummed layout (see RecoveryOptions); the crash
     * oracle then catches recovery trusting flipped entries.
     */
    bool verifyChecksums = true;
    /**
     * In forked mode, additionally take full-machine snapshots at
     * power-of-two admission counts during the warm run, then
     * restore the older of the last two and re-run the tail,
     * panicking unless finish tick and persist trace are
     * bit-identical to the uninterrupted run (the mid-run fork
     * determinism self-check, DESIGN.md §6). Costs roughly one
     * extra run tail per cell; timing probes that only measure the
     * forked-snapshot payoff turn it off.
     */
    bool verifyMidrunFork = true;
};

/**
 * The crash points selected for one cell, shared by both harness
 * modes so their injections are identical by construction.
 */
struct CrashPointPlan
{
    /**
     * Sorted, distinct injection ticks. The end-of-run state is
     * always evaluated in addition to these.
     */
    std::vector<Tick> points;
    /** The budget the caller asked for (pointBudget). */
    unsigned requested = 0;
    /** Distinct enumerated candidates before sampling. */
    std::size_t enumerated = 0;
};

/**
 * Select the injected crash points for one cell from the enumerated
 * candidate ticks (admissions + completions, duplicates allowed).
 *
 * Enumerated points beyond the budget are sampled evenly, always
 * retaining the first AND last enumerated points — the fully
 * committed end-of-enumeration state must never be skipped. Random
 * top-up ticks (budget/4 + 1) probe the same states through an
 * independent path; they are drawn only when enumeration found
 * anything at all, and deduplicated against the selected points so
 * every tick in the plan is a distinct injection.
 */
CrashPointPlan planCrashPoints(std::vector<Tick> enumerated,
                               Tick endTick,
                               const CrashHarnessConfig &config);

/** Outcome of one injected crash point. */
struct CrashPointResult
{
    Tick when = 0;
    bool passed = false;
    std::uint64_t entriesRolledBack = 0;
    std::uint64_t redoEntriesReplayed = 0;
    std::string violation; ///< empty when passed
};

/** Outcome of one (design, model, workload) cell. */
struct CrashCellResult
{
    HwDesign design = HwDesign::StrandWeaver;
    PersistencyModel model = PersistencyModel::Txn;
    std::string workload;
    unsigned pointsTested = 0;
    unsigned pointsPassed = 0;
    /** The crash-point budget the cell was asked for (pointBudget). */
    unsigned pointsRequested = 0;
    /**
     * Distinct injections actually performed: the planned points
     * plus the end-of-run check. Can sit below pointsRequested when
     * enumeration found fewer states or random top-ups collided with
     * enumerated ticks (they are deduplicated, not silently
     * double-counted).
     */
    unsigned pointsInjected = 0;
    /** Violations observed (all points kept; messages capped). */
    std::vector<CrashPointResult> failures;
    std::uint64_t totalRolledBack = 0;
    std::uint64_t totalReplayed = 0;
    /** Torn entries dropped by the publication gate, all points. */
    std::uint64_t totalTornSkipped = 0;
    /** Checksum-failing / structurally impossible entries
     * quarantined, all points. */
    std::uint64_t totalCorruptQuarantined = 0;
    /** Poisoned log lines quarantined, all points. */
    std::uint64_t totalPoisonedQuarantined = 0;
    /** Residual unreadable heap words reported, all points. */
    std::uint64_t totalQuarantinedAddrs = 0;
    /** Per-point RecoveryVerdict tallies (injected points only). */
    unsigned verdictFull = 0;
    unsigned verdictDegraded = 0;
    unsigned verdictFailed = 0;
    /** Kernel events serviced over both runs (host observability). */
    std::uint64_t hostEvents = 0;
    /** Ops committed over both runs (host observability). */
    std::uint64_t simOps = 0;

    bool allPassed() const { return pointsTested == pointsPassed; }
};

/**
 * Per-cell stats, attachable to a StatGroup tree so crash results
 * print alongside the timing stats.
 */
class CrashStats : public stats::StatGroup
{
  public:
    CrashStats(std::string name, stats::StatGroup *parent = nullptr)
        : stats::StatGroup(std::move(name), parent),
          pointsTested(this, "crash_points_tested",
                       "crash points injected"),
          pointsPassed(this, "crash_points_passed",
                       "crash points that recovered consistently"),
          violations(this, "crash_violations",
                     "crash points with recovery violations"),
          rolledBack(this, "recovery_rolled_back",
                     "undo entries rolled back per recovery"),
          replayed(this, "recovery_redo_replayed",
                   "redo entries replayed per recovery")
    {
    }

    void
    record(const CrashCellResult &result)
    {
        pointsTested += result.pointsTested;
        pointsPassed += result.pointsPassed;
        violations += result.pointsTested - result.pointsPassed;
    }

    stats::Scalar pointsTested;
    stats::Scalar pointsPassed;
    stats::Scalar violations;
    stats::Histogram rolledBack;
    stats::Histogram replayed;
};

/**
 * Run crash injection for one cell.
 * @param stats Optional sink for per-point recovery stats.
 */
CrashCellResult runCrashCell(const RecordedWorkload &recorded,
                             HwDesign design, PersistencyModel model,
                             const CrashHarnessConfig &config = {},
                             CrashStats *stats = nullptr);

} // namespace strand

#endif // CRASH_CRASH_HARNESS_HH
