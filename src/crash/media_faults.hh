/**
 * @file
 * Seeded, deterministic media-fault model applied to crash-point
 * snapshots.
 *
 * Crash injection so far assumed a perfect PM device: whatever the
 * ADR domain admitted, recovery reads back bit for bit. Real devices
 * fail in three additional ways, modeled here and applied to the
 * frozen snapshot at crash time:
 *
 *  - Partial ADR drain: the ADR buffer holds the last few admitted
 *    lines; on power failure only K of them land. Modeled by undoing
 *    the newest admissions from MemoryImage's admission ring.
 *  - Poisoned lines: an uncorrectable media error marks a whole line
 *    unreadable. Modeled by MemoryImage::poisonLine(), which also
 *    scrambles the content so code trusting it fails loudly.
 *  - Bit flips: silent single-bit corruption inside a line, the
 *    failure class only the per-entry checksum can catch.
 *
 * Faults are a pure function of (seed, crash tick): the forked and
 * two-run crash harnesses draw identical faults at the same point,
 * keeping their verdicts bit-identical. The fuzz adversary drives
 * the same primitives from recorded decisions instead, so ddmin can
 * shrink a failing fault set to a 1-minimal reproducer.
 *
 * Fault targeting is deliberately bounded:
 *  - only lines of ring admissions are candidates (the blast radius
 *    of a power failure is the in-flight tail, not cold storage);
 *  - the metadata area is never targeted, so the sweep exercises
 *    FULL/DEGRADED salvage rather than trivially FAILED verdicts;
 *  - bit flips never target an entry's seq word (a flip there is
 *    indistinguishable from a torn admission, which the publication
 *    gate already covers) or its valid/commitMarker words (mutable
 *    commit state is uncheckummable by design — see log_field).
 */

#ifndef CRASH_MEDIA_FAULTS_HH
#define CRASH_MEDIA_FAULTS_HH

#include <cstdint>
#include <vector>

#include "mem/memory_image.hh"
#include "runtime/layout.hh"

namespace strand
{

/** Per-crash-point media-fault intensities (all off by default). */
struct MediaFaultConfig
{
    /** Max poisoned lines per crash point (uniform 0..N draw). */
    unsigned poisonLines = 0;
    /** Max in-line bit flips per crash point. */
    unsigned bitFlips = 0;
    /** Max trailing ADR admissions dropped per crash point. */
    unsigned dropAdmissions = 0;
    /** Seed of the fault stream (remixed with the crash tick). */
    std::uint64_t seed = 0xed1a;

    bool
    any() const
    {
        return poisonLines || bitFlips || dropAdmissions;
    }
};

/** What applyMediaFaults() actually did at one crash point. */
struct MediaFaultOutcome
{
    unsigned dropped = 0;
    unsigned flipped = 0;
    unsigned poisoned = 0;
};

using AdmissionRing = std::vector<MemoryImage::AdmissionUndo>;

/**
 * Partial-drain primitive: undo the newest not-yet-dropped ring
 * admission on @p snapshot. @p dropped counts prior drops and is
 * advanced; empty-mask admissions still consume a ring slot (they
 * occupied an ADR buffer entry). @return false once the ring is
 * exhausted.
 */
bool mediaDropNewest(MemoryImage &snapshot, const AdmissionRing &ring,
                     unsigned &dropped);

/**
 * Bit-flip primitive: flip one bit of one surviving ring admission's
 * line, all choices derived from @p entropy. Targets only log-entry
 * lines and only checksummed words (see the file comment).
 * @return false when no candidate line exists.
 */
bool mediaFlipBit(MemoryImage &snapshot, const AdmissionRing &ring,
                  unsigned dropped, const LogLayout &layout,
                  std::uint64_t entropy);

/**
 * Poison primitive: poison one surviving ring admission's line
 * (log-entry or heap; never metadata), chosen by @p entropy.
 * @return false when no candidate line exists.
 */
bool mediaPoisonLine(MemoryImage &snapshot, const AdmissionRing &ring,
                     unsigned dropped, const LogLayout &layout,
                     std::uint64_t entropy);

/**
 * Seeded applier used by the crash harness: draw fault counts and
 * entropy from an Rng keyed by (config.seed, @p when) and apply
 * drops, then flips, then poison. Deterministic per crash point and
 * identical across harness modes.
 */
MediaFaultOutcome applyMediaFaults(MemoryImage &snapshot,
                                   const AdmissionRing &ring,
                                   const MediaFaultConfig &config,
                                   const LogLayout &layout, Tick when);

} // namespace strand

#endif // CRASH_MEDIA_FAULTS_HH
