file(REMOVE_RECURSE
  "libsw_crash.a"
)
