file(REMOVE_RECURSE
  "CMakeFiles/sw_crash.dir/crash_harness.cc.o"
  "CMakeFiles/sw_crash.dir/crash_harness.cc.o.d"
  "CMakeFiles/sw_crash.dir/crash_oracle.cc.o"
  "CMakeFiles/sw_crash.dir/crash_oracle.cc.o.d"
  "CMakeFiles/sw_crash.dir/media_faults.cc.o"
  "CMakeFiles/sw_crash.dir/media_faults.cc.o.d"
  "libsw_crash.a"
  "libsw_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
