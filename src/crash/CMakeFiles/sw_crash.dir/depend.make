# Empty dependencies file for sw_crash.
# This may be replaced when dependencies are built.
