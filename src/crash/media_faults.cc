#include "crash/media_faults.hh"

#include <algorithm>

#include "fuzz/fuzz_trial.hh" // mixSeed
#include "sim/random.hh"

namespace strand
{

namespace
{

/**
 * Candidate lines for content faults: the surviving (not dropped)
 * ring admissions that actually wrote something, deduplicated in
 * ring order. Metadata lines are excluded outright; @p entryOnly
 * further restricts to log-entry lines (bit flips), otherwise
 * log-entry and heap lines both qualify (poison).
 */
std::vector<Addr>
candidateLines(const AdmissionRing &ring, unsigned dropped,
               const LogLayout &layout, bool entryOnly)
{
    std::vector<Addr> lines;
    std::size_t live =
        ring.size() > dropped ? ring.size() - dropped : 0;
    for (std::size_t i = 0; i < live; ++i) {
        const MemoryImage::AdmissionUndo &undo = ring[i];
        if (!undo.writtenMask)
            continue;
        if (layout.isMetadataLine(undo.lineAddr))
            continue;
        if (entryOnly && !layout.isLogLine(undo.lineAddr))
            continue;
        if (!entryOnly && !layout.isLogLine(undo.lineAddr) &&
            !layout.isHeapLine(undo.lineAddr)) {
            continue;
        }
        if (std::find(lines.begin(), lines.end(), undo.lineAddr) ==
            lines.end()) {
            lines.push_back(undo.lineAddr);
        }
    }
    return lines;
}

} // namespace

bool
mediaDropNewest(MemoryImage &snapshot, const AdmissionRing &ring,
                unsigned &dropped)
{
    if (dropped >= ring.size())
        return false;
    const MemoryImage::AdmissionUndo &undo =
        ring[ring.size() - 1 - dropped];
    snapshot.undoAdmission(undo);
    ++dropped;
    return true;
}

bool
mediaFlipBit(MemoryImage &snapshot, const AdmissionRing &ring,
             unsigned dropped, const LogLayout &layout,
             std::uint64_t entropy)
{
    std::vector<Addr> lines =
        candidateLines(ring, dropped, layout, /*entryOnly=*/true);
    if (lines.empty())
        return false;
    // Flippable words of an entry line: type, addr, value, checksum,
    // globalSeq. seq aliases a tear; valid/commitMarker are the
    // uncheckummable mutable commit words (see media_faults.hh).
    static constexpr unsigned flipWords[] = {0, 1, 2, 3, 6};
    Addr line = lines[mixSeed(entropy, 1) % lines.size()];
    unsigned word = flipWords[mixSeed(entropy, 2) % 5];
    unsigned bit = static_cast<unsigned>(mixSeed(entropy, 3) % 64);
    snapshot.corruptWord(line + word * wordBytes,
                         std::uint64_t{1} << bit);
    return true;
}

bool
mediaPoisonLine(MemoryImage &snapshot, const AdmissionRing &ring,
                unsigned dropped, const LogLayout &layout,
                std::uint64_t entropy)
{
    std::vector<Addr> lines =
        candidateLines(ring, dropped, layout, /*entryOnly=*/false);
    if (lines.empty())
        return false;
    snapshot.poisonLine(lines[mixSeed(entropy, 1) % lines.size()]);
    return true;
}

MediaFaultOutcome
applyMediaFaults(MemoryImage &snapshot, const AdmissionRing &ring,
                 const MediaFaultConfig &config,
                 const LogLayout &layout, Tick when)
{
    MediaFaultOutcome outcome;
    Rng rng(mixSeed(mixSeed(config.seed, 0xfa017), when));
    if (config.dropAdmissions) {
        unsigned n = rng.nextRange(0, config.dropAdmissions);
        for (unsigned i = 0; i < n; ++i) {
            if (mediaDropNewest(snapshot, ring, outcome.dropped))
                continue;
            break;
        }
    }
    if (config.bitFlips) {
        unsigned n = rng.nextRange(0, config.bitFlips);
        for (unsigned i = 0; i < n; ++i) {
            if (mediaFlipBit(snapshot, ring, outcome.dropped, layout,
                             rng.next())) {
                ++outcome.flipped;
            }
        }
    }
    if (config.poisonLines) {
        unsigned n = rng.nextRange(0, config.poisonLines);
        for (unsigned i = 0; i < n; ++i) {
            if (mediaPoisonLine(snapshot, ring, outcome.dropped,
                                layout, rng.next())) {
                ++outcome.poisoned;
            }
        }
    }
    return outcome;
}

} // namespace strand
