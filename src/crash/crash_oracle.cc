#include "crash/crash_oracle.hh"

#include <algorithm>

#include "sim/format.hh"

namespace strand
{

CrashOracle::CrashOracle(
    const RegionTrace &trace,
    const std::vector<RegionLogInfo> &regionLog,
    const std::unordered_map<Addr, std::uint64_t> &preload,
    const LogLayout &layout)
    : regions(regionLog), layout(layout)
{
    std::sort(regions.begin(), regions.end(),
              [](const RegionLogInfo &a, const RegionLogInfo &b) {
                  return a.globalSeq < b.globalSeq;
              });

    for (std::size_t i = 0; i < regions.size(); ++i)
        for (auto [addr, value] : regions[i].stores)
            writes[wordAlign(addr)].push_back({i, value});

    for (const ThreadTrace &thread : trace.threads)
        for (const TraceEvent &ev : thread)
            if (ev.kind == TraceEvent::Kind::PlainStore)
                excluded.insert(wordAlign(ev.addr));

    for (const auto &[addr, history] : writes) {
        (void)history;
        auto it = preload.find(addr);
        initial[addr] = it == preload.end() ? 0 : it->second;
    }
}

std::vector<bool>
CrashOracle::committedRegions(const MemoryImage &snapshot) const
{
    std::uint64_t frontier =
        snapshot.readPersisted(layout.frontierAddr());
    std::vector<bool> committed(regions.size(), false);

    for (std::size_t i = 0; i < regions.size(); ++i) {
        const RegionLogInfo &region = regions[i];
        std::uint64_t head =
            snapshot.readPersisted(layout.headPtrAddr(region.owner));

        // Outcome 1: the owner's durable head passed the region.
        if (head > region.lastEntry) {
            committed[i] = true;
            continue;
        }
        // Outcome 2: the pruner's commit frontier passed the region.
        if (region.globalSeq < frontier) {
            committed[i] = true;
            continue;
        }
        // Outcome 3: a durable commit marker on the terminating
        // entry (the slot must still hold this region's entry; a
        // stale lap's marker says nothing about this region).
        Addr base = layout.entryAddr(region.owner, region.lastEntry);
        bool slotIsOurs =
            snapshot.readPersisted(base + log_field::seq) ==
            region.lastEntry;
        bool marker =
            snapshot.readPersisted(base + log_field::commitMarker) != 0;
        if (slotIsOurs && marker)
            committed[i] = true;
    }
    return committed;
}

std::string
CrashOracle::checkRecovered(const MemoryImage &recovered,
                            const std::vector<bool> &committed,
                            const RecoveryReport *report) const
{
    auto threadQuarantined = [&](CoreId tid) {
        return report &&
               std::binary_search(report->quarantinedThreads.begin(),
                                  report->quarantinedThreads.end(),
                                  tid);
    };
    for (const auto &[addr, history] : writes) {
        if (excluded.count(addr))
            continue;

        std::uint64_t expected = initial.at(addr);
        std::size_t winner = regions.size(); // none
        for (const WriteRec &write : history) {
            if (committed[write.region]) {
                expected = write.value;
                winner = write.region;
            }
        }

        std::uint64_t actual = recovered.readPersisted(addr);
        if (actual != expected) {
            // Degraded-but-consistent excusals: recovery explicitly
            // declared this address unreadable, or a quarantined
            // thread touched it (its fenced-off log makes the
            // address's outcome unknowable, not wrong).
            if (report &&
                std::binary_search(report->quarantinedAddrs.begin(),
                                   report->quarantinedAddrs.end(),
                                   wordAlign(addr))) {
                continue;
            }
            bool touchedByQuarantined = false;
            for (const WriteRec &write : history) {
                if (threadQuarantined(regions[write.region].owner)) {
                    touchedByQuarantined = true;
                    break;
                }
            }
            if (touchedByQuarantined)
                continue;
            return sformat(
                "addr {}: recovered {}, expected {} ({})",
                addr, actual, expected,
                winner == regions.size()
                    ? std::string("initial value; no committed store")
                    : sformat("last committed store, region gseq {} "
                             "of thread {}",
                             regions[winner].globalSeq,
                             regions[winner].owner));
        }
    }
    return {};
}

} // namespace strand
