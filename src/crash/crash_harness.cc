#include "crash/crash_harness.hh"

#include <algorithm>

#include "core/env_config.hh"
#include "core/observer_util.hh"
#include "runtime/recovery.hh"
#include "sanitizer/pmo_sanitizer.hh"
#include "sim/random.hh"

namespace strand
{

CrashCellResult
runCrashCell(const RecordedWorkload &recorded, HwDesign design,
             PersistencyModel model, const CrashHarnessConfig &config,
             CrashStats *stats)
{
    CrashCellResult result;
    result.design = design;
    result.model = model;
    result.workload =
        recorded.workload ? recorded.workload->name() : "?";

    InstrumentorParams ip;
    ip.design = design;
    ip.model = model;
    ip.logStyle = config.logStyle;
    Instrumentor instr(ip);
    auto streams = instr.lower(recorded.trace);
    CrashOracle oracle(recorded.trace, instr.regionLog(),
                       recorded.preload, ip.layout);

    auto buildSystem = [&]() {
        SystemConfig sysCfg = config.experiment.baseSystem;
        sysCfg.numCores = static_cast<unsigned>(streams.size());
        sysCfg.design = design;
        sysCfg.engine = config.experiment.engine;
        sysCfg.engine.recordCompletionTicks = true;
        sysCfg.layout = ip.layout;
        auto sys = std::make_unique<System>(sysCfg);
        sys->seedImage(recorded.preload);
        auto copies = streams;
        sys->loadStreams(std::move(copies));
        return sys;
    };

    if (config.pointBudget == 0)
        return result;

    // Reference run: enumerate candidate crash points. Persisted
    // state only changes at ADR admissions, so the admission ticks
    // cover every distinct post-crash image; engine completion ticks
    // and random ticks probe the same states via independent paths.
    std::vector<Tick> points;
    Tick endTick = 0;
    {
        auto ref = buildSystem();
        AdmissionCallback admissions(
            [&points](const PersistRecord &rec) {
                points.push_back(rec.when);
            });
        ref->addObserver(&admissions);
        endTick = ref->run();
        result.hostEvents += ref->eventsServiced();
        result.simOps +=
            static_cast<std::uint64_t>(ref->totalCommitted());
        for (CoreId i = 0; i < ref->numCores(); ++i) {
            const std::vector<Tick> &ticks =
                ref->core(i).persistEngine().completionTicks();
            points.insert(points.end(), ticks.begin(), ticks.end());
        }
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()),
                 points.end());
    if (points.size() > config.pointBudget) {
        std::vector<Tick> sampled;
        sampled.reserve(config.pointBudget);
        for (unsigned i = 0; i < config.pointBudget; ++i)
            sampled.push_back(
                points[i * points.size() / config.pointBudget]);
        points.swap(sampled);
    }
    // Random ticks between admissions hit the same persisted states,
    // so a budget beyond the enumerated points buys nothing — clamp it
    // to keep oversized SW_CRASH_POINTS values from exploding the run.
    const std::size_t effectiveBudget =
        std::min<std::size_t>(config.pointBudget, points.size());
    Rng rng(config.seed);
    if (endTick > 0)
        for (std::size_t i = 0; i < effectiveBudget / 4 + 1; ++i)
            points.push_back(rng.nextRange(1, endTick));
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()),
                 points.end());

    // Injection run: identical schedule; the snapshot callbacks are
    // pure observers, so timing is not perturbed.
    auto sys = buildSystem();
    PmoSanitizer sanitizer;
    if (config.pmosan.value_or(envConfig().pmosan.value_or(false)))
        sys->addObserver(&sanitizer);
    RecoveryManager recovery{ip.layout};
    const unsigned programThreads = recorded.params.numThreads;

    auto inject = [&](Tick when) {
        MemoryImage snapshot;
        if (config.tornWords >= wordsPerLine) {
            snapshot = sys->memory().clonePersisted();
        } else {
            // Tear the final admission: keep the first tornWords of
            // its written words, revert the rest to their prior
            // persisted state.
            std::uint8_t written = sys->memory().lastAdmissionMask();
            std::uint8_t admit = 0;
            unsigned kept = 0;
            for (unsigned i = 0;
                 i < wordsPerLine && kept < config.tornWords; ++i) {
                if (written & (1u << i)) {
                    admit |= static_cast<std::uint8_t>(1u << i);
                    ++kept;
                }
            }
            snapshot = sys->memory().clonePersistedTorn(admit);
        }
        std::vector<bool> committed =
            oracle.committedRegions(snapshot);
        RecoveryReport report =
            recovery.recover(snapshot, programThreads);

        std::string err = oracle.checkRecovered(snapshot, committed);
        if (err.empty() && recorded.workload) {
            auto read = [&snapshot](Addr addr) {
                return snapshot.readPersisted(addr);
            };
            err = recorded.workload->checkInvariants(read);
        }

        ++result.pointsTested;
        result.totalRolledBack += report.entriesRolledBack;
        result.totalReplayed += report.redoEntriesReplayed;
        if (stats) {
            stats->rolledBack.sample(
                static_cast<double>(report.entriesRolledBack));
            stats->replayed.sample(
                static_cast<double>(report.redoEntriesReplayed));
        }
        if (err.empty()) {
            ++result.pointsPassed;
            return;
        }
        CrashPointResult point;
        point.when = when;
        point.passed = false;
        point.entriesRolledBack = report.entriesRolledBack;
        point.redoEntriesReplayed = report.redoEntriesReplayed;
        if (result.failures.size() < 32)
            point.violation = std::move(err);
        result.failures.push_back(std::move(point));
    };

    for (Tick when : points)
        sys->eventQueue().schedule(when,
                                   [&inject, when] { inject(when); });
    sys->run();
    result.hostEvents += sys->eventsServiced();
    result.simOps +=
        static_cast<std::uint64_t>(sys->totalCommitted());
    // The completed run is one more crash point: a failure after the
    // last persist must recover to the final state.
    inject(sys->finishTick());

    if (!sanitizer.ok()) {
        // A persist-order violation is a failure of the cell even when
        // every snapshot happened to recover: it means an ordering the
        // program asked for was not honored by the hardware model.
        CrashPointResult point;
        point.when = sanitizer.violations().empty()
                         ? sys->finishTick()
                         : sanitizer.violations()[0].when;
        point.passed = false;
        ++result.pointsTested;
        if (result.failures.size() < 32)
            point.violation = sanitizer.report();
        result.failures.push_back(std::move(point));
    }

    if (stats)
        stats->record(result);
    return result;
}

} // namespace strand
